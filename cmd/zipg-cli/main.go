// Command zipg-cli is an interactive shell over a ZipG cluster (connect
// with -servers) or over a freshly generated local graph (default). It
// exposes the Table 1 API:
//
//	props <id> [propertyID...]      get_node_property
//	find <key>=<value> ...          get_node_ids
//	neighbors <id> [type] [k=v...]  get_neighbor_ids
//	record <id> <type>              get_edge_record (+ all edge data)
//	count <id> <type>               assoc_count
//	add-node <id> k=v ...           append
//	add-edge <src> <dst> <type> <ts> [k=v...]
//	del-node <id>                   delete
//	del-edge <src> <type> <dst>     delete
//	window <id> <type> <tLo> <tHi>  assoc_time_range (in-window edges)
//	wcount <id> <type> <tLo> <tHi>  assoc_count_in_window
//	path <src> <dst> <tLo> <tHi> <maxHops>
//	                                temporal reachability in the window
//	subscribe [node=N] [etype=T] [max=N] [since=S] [part=P]
//	                                stream live change events: local
//	                                engine directly, or -admin's
//	                                /stream/subscribe NDJSON feed
//	save <path> / load <path>       persist / restore (local mode)
//	trace [id]                      fetch + pretty-print a distributed
//	                                span tree from -admin (no id: list)
//	codecs                          per-shard codec/α report: local
//	                                store directly, or /debug/codecs
//	                                from -admin
//	quit
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"zipg"
	"zipg/internal/cluster"
	"zipg/internal/gen"
	"zipg/internal/graphapi"
	"zipg/internal/store"
	"zipg/internal/telemetry"
	"zipg/internal/temporal"
)

func main() {
	servers := flag.String("servers", "", "comma-separated cluster addresses (empty: local generated graph)")
	dataset := flag.String("dataset", "orkut", "dataset for local mode")
	base := flag.Int64("base", 128<<10, "local dataset base size")
	admin := flag.String("admin", "", "a server's admin HTTP address (host:port), enables the trace command")
	flag.Parse()

	var store graphapi.Store
	var local *zipg.Graph
	if *servers != "" {
		client, err := cluster.NewClient(strings.Split(*servers, ","))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer client.Close()
		store = client
		fmt.Printf("connected to %s\n", *servers)
	} else {
		var d *gen.Dataset
		for _, spec := range gen.StandardSpecs(*base) {
			if spec.Name == *dataset {
				d = spec.Generate()
			}
		}
		if d == nil {
			fmt.Fprintf(os.Stderr, "unknown dataset %q\n", *dataset)
			os.Exit(2)
		}
		fmt.Printf("compressing local %s (%d nodes, %d edges)...\n", *dataset, d.NumNodes(), d.NumEdges())
		g, err := zipg.Compress(zipg.GraphData{Nodes: d.Nodes, Edges: d.Edges}, zipg.Options{NumShards: 2})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("footprint: %d bytes (raw %d)\n", g.CompressedFootprint(), g.RawSize())
		store = g
		local = g
	}

	sc := bufio.NewScanner(os.Stdin)
	fmt.Print("zipg> ")
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line != "" {
			if line == "quit" || line == "exit" {
				return
			}
			fields := strings.Fields(line)
			switch {
			case fields[0] == "save" && len(fields) == 2:
				if err := saveLocal(local, fields[1]); err != nil {
					fmt.Println("error:", err)
				}
			case fields[0] == "trace":
				if err := traceCmd(*admin, fields[1:]); err != nil {
					fmt.Println("error:", err)
				}
			case fields[0] == "codecs":
				if err := codecsCmd(local, *admin); err != nil {
					fmt.Println("error:", err)
				}
			case fields[0] == "window" || fields[0] == "wcount" || fields[0] == "path":
				if err := temporalCmd(store, local, fields); err != nil {
					fmt.Println("error:", err)
				}
			case fields[0] == "subscribe":
				if err := subscribeCmd(local, *admin, fields[1:]); err != nil {
					fmt.Println("error:", err)
				}
			case fields[0] == "load" && len(fields) == 2:
				g, err := loadLocal(fields[1])
				if err != nil {
					fmt.Println("error:", err)
				} else {
					store, local = g, g
					fmt.Println("loaded", fields[1])
				}
			default:
				if err := run(store, fields); err != nil {
					fmt.Println("error:", err)
				}
			}
		}
		fmt.Print("zipg> ")
	}
}

// codecsCmd prints the per-shard codec report: which codec each region
// (Ψ, SA/ISA samples, offset columns) chose, its size and decode speed,
// and each shard's sampling rate α and read heat. In local mode it
// reads the store directly; otherwise it fetches /debug/codecs from
// the -admin endpoint.
func codecsCmd(local *zipg.Graph, admin string) error {
	if local != nil {
		fmt.Print(store.FormatCodecReport(local.Store().CodecReport()))
		return nil
	}
	if admin == "" {
		return fmt.Errorf("codecs requires local mode or -admin host:port (a zipg-server admin endpoint)")
	}
	if !strings.Contains(admin, "://") {
		admin = "http://" + admin
	}
	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get(admin + "/debug/codecs")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s from %s/debug/codecs", resp.Status, admin)
	}
	_, err = io.Copy(os.Stdout, resp.Body)
	return err
}

// traceCmd fetches one assembled distributed span tree from a server's
// admin endpoint and pretty-prints it; with no ID it lists the most
// recent trace IDs instead.
func traceCmd(admin string, args []string) error {
	if admin == "" {
		return fmt.Errorf("trace requires -admin host:port (a zipg-server admin endpoint)")
	}
	if !strings.Contains(admin, "://") {
		admin = "http://" + admin
	}
	url := admin + "/debug/trace/"
	if len(args) > 0 {
		url += args[0]
	}
	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var msg strings.Builder
		fmt.Fprintf(&msg, "%s: ", resp.Status)
		buf := make([]byte, 256)
		n, _ := resp.Body.Read(buf)
		msg.Write(buf[:n])
		return fmt.Errorf("%s", strings.TrimSpace(msg.String()))
	}
	if len(args) == 0 {
		var ids []string
		if err := json.NewDecoder(resp.Body).Decode(&ids); err != nil {
			return err
		}
		if len(ids) == 0 {
			fmt.Println("no traces recorded (is telemetry on and the trace sampled?)")
			return nil
		}
		for _, id := range ids {
			fmt.Println(id)
		}
		return nil
	}
	var tree telemetry.TraceTree
	if err := json.NewDecoder(resp.Body).Decode(&tree); err != nil {
		return err
	}
	fmt.Printf("trace %s: %d spans\n", tree.TraceID, tree.SpanCount)
	for _, root := range tree.Roots {
		printSpanTree(root, 0)
	}
	return nil
}

// printSpanTree renders one node of the span tree: op, origin server,
// duration, then each phase with its share of the span's own duration.
func printSpanTree(n *telemetry.TraceNode, depth int) {
	indent := strings.Repeat("  ", depth)
	where := "client"
	if n.Span.Server >= 0 {
		where = fmt.Sprintf("server %d", n.Span.Server)
	}
	fmt.Printf("%s%s  [%s]  %s", indent, n.Span.Op, where, n.Span.Duration)
	if n.Span.Err != "" {
		fmt.Printf("  ERR %q", n.Span.Err)
	}
	fmt.Println()
	for _, p := range n.Span.Phases {
		d := time.Duration(p.Ns)
		pct := 0.0
		if n.Span.Duration > 0 {
			pct = 100 * float64(p.Ns) / float64(n.Span.Duration)
		}
		fmt.Printf("%s  · %-13s %12s  %5.1f%%\n", indent, p.Name, d, pct)
	}
	for _, c := range n.Children {
		printSpanTree(c, depth+1)
	}
}

// temporalCmd runs the windowed analytics / temporal reachability
// commands: on the local engine directly, or through the cluster
// client's routed temporal calls.
func temporalCmd(s graphapi.Store, local *zipg.Graph, args []string) error {
	cl, _ := s.(*cluster.Client)
	if local == nil && cl == nil {
		return fmt.Errorf("temporal commands need local mode or a cluster connection")
	}
	switch args[0] {
	case "window", "wcount":
		if len(args) != 5 {
			return fmt.Errorf("usage: %s <id> <type> <tLo> <tHi>", args[0])
		}
		var vals [4]int64
		for i := range vals {
			v, err := parseID(args[1+i])
			if err != nil {
				return err
			}
			vals[i] = v
		}
		id, etype, tLo, tHi := vals[0], vals[1], vals[2], vals[3]
		if args[0] == "wcount" {
			if local != nil {
				fmt.Println(local.AssocCountInWindow(id, etype, tLo, tHi))
			} else {
				fmt.Println(cl.AssocCountInWindow(id, etype, tLo, tHi))
			}
			return nil
		}
		var edges []graphapi.EdgeData
		if local != nil {
			edges = local.AssocTimeRange(id, etype, tLo, tHi, 0)
		} else {
			edges = cl.AssocTimeRange(id, etype, tLo, tHi, 0)
		}
		fmt.Printf("count=%d\n", len(edges))
		for i, d := range edges {
			fmt.Printf("  [%d] dst=%d ts=%d props=%v\n", i, d.Dst, d.Timestamp, d.Props)
		}
	case "path":
		if len(args) != 6 {
			return fmt.Errorf("usage: path <src> <dst> <tLo> <tHi> <maxHops>")
		}
		var vals [5]int64
		for i := range vals {
			v, err := parseID(args[1+i])
			if err != nil {
				return err
			}
			vals[i] = v
		}
		var res zipg.PathResult
		if local != nil {
			res = local.PathInWindow(vals[0], vals[1], vals[2], vals[3], int(vals[4]))
		} else {
			res = cl.PathInWindow(vals[0], vals[1], vals[2], vals[3], int(vals[4]))
		}
		if !res.Found {
			fmt.Println("no path")
			return nil
		}
		fmt.Printf("found: %d hops, path %v\n", res.Hops, res.Path)
	}
	return nil
}

// subscribeCmd streams live change events. Local mode subscribes on
// the graph's engine and polls until max events (default 16) arrive;
// cluster mode streams the -admin endpoint's NDJSON change feed.
// Interrupt with Ctrl-C (the whole shell exits) or bound with max=N.
func subscribeCmd(local *zipg.Graph, admin string, args []string) error {
	params, err := parseProps(args)
	if err != nil {
		return err
	}
	max := 16
	if v, ok := params["max"]; ok {
		if max, err = strconv.Atoi(v); err != nil {
			return err
		}
	}
	if local != nil {
		var f zipg.SubscriptionFilter
		if v, ok := params["node"]; ok {
			n, err := parseID(v)
			if err != nil {
				return err
			}
			f.Node, f.HasNode = n, true
		}
		if v, ok := params["etype"]; ok {
			t, err := parseID(v)
			if err != nil {
				return err
			}
			f.Type, f.HasType = t, true
		}
		sub := local.Subscribe(f, 0)
		defer sub.Close()
		fmt.Printf("subscribed (waiting for up to %d events; run writes from another command)\n", max)
		seen := 0
		for seen < max {
			evs, err := sub.Next(context.Background(), max-seen)
			if err != nil || evs == nil {
				return err
			}
			for _, ev := range evs {
				b, _ := json.Marshal(temporal.ToWire(ev))
				fmt.Println(string(b))
				seen++
			}
		}
		return nil
	}
	if admin == "" {
		return fmt.Errorf("subscribe requires local mode or -admin host:port (a zipg-server admin endpoint)")
	}
	if !strings.Contains(admin, "://") {
		admin = "http://" + admin
	}
	q := make([]string, 0, len(params)+1)
	q = append(q, fmt.Sprintf("max=%d", max))
	for _, k := range []string{"node", "etype", "since", "part"} {
		if v, ok := params[k]; ok {
			q = append(q, k+"="+v)
		}
	}
	resp, err := http.Get(admin + "/stream/subscribe?" + strings.Join(q, "&"))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s from %s/stream/subscribe", resp.Status, admin)
	}
	_, err = io.Copy(os.Stdout, resp.Body)
	return err
}

// saveLocal persists a local graph to path.
func saveLocal(g *zipg.Graph, path string) error {
	if g == nil {
		return fmt.Errorf("save works in local mode only")
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := g.Save(f); err != nil {
		return err
	}
	fmt.Println("saved", path)
	return f.Sync()
}

// loadLocal restores a graph persisted by saveLocal.
func loadLocal(path string) (*zipg.Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return zipg.Load(f, nil)
}

func parseProps(args []string) (map[string]string, error) {
	props := map[string]string{}
	for _, a := range args {
		k, v, ok := strings.Cut(a, "=")
		if !ok {
			return nil, fmt.Errorf("expected key=value, got %q", a)
		}
		props[k] = v
	}
	return props, nil
}

func parseID(s string) (int64, error) { return strconv.ParseInt(s, 10, 64) }

func run(s graphapi.Store, args []string) error {
	switch args[0] {
	case "props":
		if len(args) < 2 {
			return fmt.Errorf("usage: props <id> [propertyID...]")
		}
		id, err := parseID(args[1])
		if err != nil {
			return err
		}
		vals, ok := s.GetNodeProperty(id, args[2:])
		if !ok {
			return fmt.Errorf("node %d not found", id)
		}
		fmt.Println(vals)
	case "find":
		props, err := parseProps(args[1:])
		if err != nil {
			return err
		}
		fmt.Println(s.GetNodeIDs(props))
	case "neighbors":
		if len(args) < 2 {
			return fmt.Errorf("usage: neighbors <id> [type] [k=v...]")
		}
		id, err := parseID(args[1])
		if err != nil {
			return err
		}
		etype := graphapi.WildcardType
		rest := args[2:]
		if len(rest) > 0 && !strings.Contains(rest[0], "=") {
			if etype, err = parseID(rest[0]); err != nil {
				return err
			}
			rest = rest[1:]
		}
		props, err := parseProps(rest)
		if err != nil {
			return err
		}
		fmt.Println(s.GetNeighborIDs(id, etype, props))
	case "record":
		if len(args) != 3 {
			return fmt.Errorf("usage: record <id> <type>")
		}
		id, err := parseID(args[1])
		if err != nil {
			return err
		}
		etype, err := parseID(args[2])
		if err != nil {
			return err
		}
		rec, ok := s.GetEdgeRecord(id, etype)
		if !ok {
			return fmt.Errorf("no record (%d,%d)", id, etype)
		}
		fmt.Printf("count=%d\n", rec.Count())
		for i := 0; i < rec.Count(); i++ {
			d, err := rec.Data(i)
			if err != nil {
				return err
			}
			fmt.Printf("  [%d] dst=%d ts=%d props=%v\n", i, d.Dst, d.Timestamp, d.Props)
		}
	case "count":
		if len(args) != 3 {
			return fmt.Errorf("usage: count <id> <type>")
		}
		id, err := parseID(args[1])
		if err != nil {
			return err
		}
		etype, err := parseID(args[2])
		if err != nil {
			return err
		}
		if rec, ok := s.GetEdgeRecord(id, etype); ok {
			fmt.Println(rec.Count())
		} else {
			fmt.Println(0)
		}
	case "add-node":
		if len(args) < 2 {
			return fmt.Errorf("usage: add-node <id> [k=v...]")
		}
		id, err := parseID(args[1])
		if err != nil {
			return err
		}
		props, err := parseProps(args[2:])
		if err != nil {
			return err
		}
		return s.AppendNode(id, props)
	case "add-edge":
		if len(args) < 5 {
			return fmt.Errorf("usage: add-edge <src> <dst> <type> <ts> [k=v...]")
		}
		var vals [4]int64
		for i := 0; i < 4; i++ {
			v, err := parseID(args[1+i])
			if err != nil {
				return err
			}
			vals[i] = v
		}
		props, err := parseProps(args[5:])
		if err != nil {
			return err
		}
		return s.AppendEdge(graphapi.Edge{Src: vals[0], Dst: vals[1], Type: vals[2], Timestamp: vals[3], Props: props})
	case "del-node":
		if len(args) != 2 {
			return fmt.Errorf("usage: del-node <id>")
		}
		id, err := parseID(args[1])
		if err != nil {
			return err
		}
		return s.DeleteNode(id)
	case "del-edge":
		if len(args) != 4 {
			return fmt.Errorf("usage: del-edge <src> <type> <dst>")
		}
		src, err := parseID(args[1])
		if err != nil {
			return err
		}
		etype, err := parseID(args[2])
		if err != nil {
			return err
		}
		dst, err := parseID(args[3])
		if err != nil {
			return err
		}
		n, err := s.DeleteEdges(src, etype, dst)
		if err != nil {
			return err
		}
		fmt.Printf("deleted %d edges\n", n)
	default:
		return fmt.Errorf("unknown command %q", args[0])
	}
	return nil
}
