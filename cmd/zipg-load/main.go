// Command zipg-load generates one of the evaluation datasets, partitions
// it for a cluster, and writes one partition file per server for
// cmd/zipg-server to load.
//
// Usage:
//
//	zipg-load -dataset orkut -base 1048576 -servers 3 -out /tmp/zipg
//
// writes /tmp/zipg/part-0.graph ... part-2.graph.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"zipg"
	"zipg/internal/cluster"
	"zipg/internal/datafile"
	"zipg/internal/gen"
)

func main() {
	dataset := flag.String("dataset", "orkut", "dataset name (orkut, twitter, uk, lb-small, lb-medium, lb-large)")
	base := flag.Int64("base", 1<<20, "base dataset size in bytes")
	servers := flag.Int("servers", 1, "number of cluster servers to partition for")
	out := flag.String("out", ".", "output directory")
	flag.Parse()

	var d *gen.Dataset
	for _, spec := range gen.StandardSpecs(*base) {
		if spec.Name == *dataset {
			d = spec.Generate()
		}
	}
	if d == nil {
		fmt.Fprintf(os.Stderr, "unknown dataset %q\n", *dataset)
		os.Exit(2)
	}
	nodeSchema, edgeSchema, err := zipg.DeriveSchemas(zipg.GraphData{Nodes: d.Nodes, Edges: d.Edges})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	partNodes, partEdges := cluster.Partition(d.Nodes, d.Edges, *servers)
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	for sid := 0; sid < *servers; sid++ {
		path := filepath.Join(*out, fmt.Sprintf("part-%d.graph", sid))
		err := datafile.Write(path, &datafile.Graph{
			Nodes:      partNodes[sid],
			Edges:      partEdges[sid],
			NodeSchema: nodeSchema.Spec(),
			EdgeSchema: edgeSchema.Spec(),
			ServerID:   sid,
			NumServers: *servers,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%d nodes, %d edges)\n", path, len(partNodes[sid]), len(partEdges[sid]))
	}
}
