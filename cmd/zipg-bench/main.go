// Command zipg-bench regenerates the paper's tables and figures. Each
// experiment builds the systems under test over generated datasets and
// prints the corresponding table; EXPERIMENTS.md records how the shapes
// compare with the paper.
//
// Usage:
//
//	zipg-bench -experiment fig6 [-base 1048576] [-ops 4000] [-v]
//	zipg-bench -experiment all
//	zipg-bench -list
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"zipg/internal/bench"
)

func main() {
	experiment := flag.String("experiment", "", "experiment to run (see -list), or 'all'")
	base := flag.Int64("base", 256<<10, "base dataset size in bytes (the smallest dataset; others scale 12.5x and 32x)")
	ops := flag.Int("ops", 2000, "operations per throughput measurement")
	verbose := flag.Bool("v", false, "print progress")
	list := flag.Bool("list", false, "list experiments and exit")
	flag.Parse()

	if *list {
		fmt.Println("experiments:", strings.Join(bench.ExperimentNames(), " "))
		return
	}
	if *experiment == "" {
		fmt.Fprintln(os.Stderr, "usage: zipg-bench -experiment <id|all> [-base N] [-ops N] [-v]")
		fmt.Fprintln(os.Stderr, "experiments:", strings.Join(bench.ExperimentNames(), " "))
		os.Exit(2)
	}

	opts := bench.Options{BaseBytes: *base, Ops: *ops, Verbose: *verbose}
	names := []string{*experiment}
	if *experiment == "all" {
		names = bench.ExperimentNames()
	}
	for _, name := range names {
		fn, ok := bench.Experiments[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; available: %s\n", name, strings.Join(bench.ExperimentNames(), " "))
			os.Exit(2)
		}
		start := time.Now()
		r, err := fn(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Print(r.Format())
		fmt.Printf("(%s in %.1fs)\n\n", name, time.Since(start).Seconds())
	}
}
