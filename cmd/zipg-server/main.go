// Command zipg-server runs one ZipG cluster server (§4.1): it loads its
// partition (written by cmd/zipg-load), compresses it into shards, binds
// the aggregator endpoint and serves queries, shipping subqueries to its
// peers as needed.
//
// Usage (3-server cluster on one machine):
//
//	zipg-load -dataset orkut -servers 3 -out /tmp/zipg
//	zipg-server -id 0 -data /tmp/zipg/part-0.graph -addr :7070 -peers :7070,:7071,:7072 &
//	zipg-server -id 1 -data /tmp/zipg/part-1.graph -addr :7071 -peers :7070,:7071,:7072 &
//	zipg-server -id 2 -data /tmp/zipg/part-2.graph -addr :7072 -peers :7070,:7071,:7072
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"zipg/internal/bitutil"
	"zipg/internal/cluster"
	"zipg/internal/datafile"
	"zipg/internal/telemetry"
	"zipg/internal/temporal"
)

func main() {
	id := flag.Int("id", 0, "this server's ID")
	data := flag.String("data", "", "partition file from zipg-load")
	addr := flag.String("addr", "127.0.0.1:7070", "listen address")
	peers := flag.String("peers", "", "comma-separated addresses of all servers, in ID order")
	shards := flag.Int("shards", 4, "shards per server (paper default: one per core)")
	alpha := flag.Int("alpha", 32, "succinct sampling rate")
	codec := flag.String("codec", "auto", "region codec policy: auto, legacy, simple8b or varint")
	autoTune := flag.Bool("autotune-alpha", false, "let compactions retune per-shard alpha from read heat")
	groupCommit := flag.Bool("group-commit", true, "batch concurrent appends through the group-commit leader (false: one store lock per record)")
	compactInterval := flag.Duration("compact-interval", 0, "run a full online compaction every interval (0 to disable; enables the background worker)")
	compactRollovers := flag.Int("compact-rollovers", 0, "run a full online compaction after this many log rollovers (0 to disable; enables the background worker)")
	admin := flag.String("admin", "127.0.0.1:0",
		"admin HTTP address serving /metrics, /healthz, /debug/vars, /debug/traces, /debug/trace/{id}, /debug/slow and /debug/pprof (empty to disable)")
	noTelemetry := flag.Bool("no-telemetry", false, "disable telemetry recording (admin endpoints stay up)")
	slowThreshold := flag.Duration("slow-threshold", telemetry.DefaultSlowThreshold,
		"queries at least this slow enter the /debug/slow ring")
	flag.Parse()

	if *data == "" || *peers == "" {
		fmt.Fprintln(os.Stderr, "usage: zipg-server -id N -data part-N.graph -addr HOST:PORT -peers A0,A1,...")
		os.Exit(2)
	}
	g, err := datafile.Read(*data)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	peerList := strings.Split(*peers, ",")
	if g.ServerID != *id || g.NumServers != len(peerList) {
		fmt.Fprintf(os.Stderr, "partition file is for server %d of %d; got -id %d with %d peers\n",
			g.ServerID, g.NumServers, *id, len(peerList))
		os.Exit(2)
	}
	nodeSchema, err := g.NodeSchema.Build()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	edgeSchema, err := g.EdgeSchema.Build()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	// Enable telemetry before the build so build-time series (codec
	// region/bytes/trial counters) record the initial compression.
	if !*noTelemetry {
		telemetry.Enable()
	}
	fmt.Printf("server %d: compressing %d nodes, %d edges into %d shards...\n",
		*id, len(g.Nodes), len(g.Edges), *shards)
	policy, err := bitutil.PolicyByName(*codec)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	srv, err := cluster.NewServer(g.Nodes, g.Edges, nodeSchema, edgeSchema, cluster.ServerConfig{
		ID:                    *id,
		NumServers:            g.NumServers,
		ShardsPerServer:       *shards,
		SamplingRate:          *alpha,
		Codec:                 policy,
		AutoTuneAlpha:         *autoTune,
		DisableGroupCommit:    !*groupCommit,
		CompactInterval:       *compactInterval,
		CompactAfterRollovers: *compactRollovers,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	bound, err := srv.Listen(*addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	srv.ConnectPeers(peerList)
	fmt.Printf("server %d: serving on %s\n", *id, bound)

	// The change feed streams this partition's events as chunked NDJSON.
	telemetry.RegisterAdminStream("subscribe", temporal.StreamHandler(srv.Temporal()))

	telemetry.SetSlowThreshold(*slowThreshold)
	var adminSrv *telemetry.AdminServer
	if *admin != "" {
		adminSrv, err = telemetry.ServeAdmin(*admin)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer adminSrv.Close()
		fmt.Printf("server %d: admin endpoints on http://%s (/metrics /healthz /debug/vars /debug/traces /debug/trace/{id} /debug/slow /debug/codecs /debug/pprof /stream/subscribe)\n",
			*id, adminSrv.Addr)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Printf("server %d: shutting down\n", *id)
	srv.Close()
}
