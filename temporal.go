package zipg

import (
	"zipg/internal/store"
	"zipg/internal/temporal"
)

// Temporal API: windowed analytics, live change subscriptions and
// bounded temporal reachability over the same compressed substrate.
// The engine is built lazily on first use; graphs that never run a
// temporal query pay nothing beyond the store's bounded event tail.

// Event is one sequence-numbered change event (node/edge put or
// tombstone); see the store's event taxonomy in DESIGN.md.
type Event = store.Event

// Event kinds.
const (
	EvNodePut = store.EvNodePut
	EvEdgeAdd = store.EvEdgeAdd
	EvNodeDel = store.EvNodeDel
	EvEdgeDel = store.EvEdgeDel
)

// SubscriptionFilter selects the events a subscription receives; the
// zero value is the firehose.
type SubscriptionFilter = temporal.Filter

// Subscription is a live change feed with a bounded buffer and
// drop-oldest backpressure.
type Subscription = temporal.Subscription

// PathResult is a PathInWindow answer.
type PathResult = temporal.PathResult

// Temporal returns the graph's temporal query engine, building it (and
// tapping the store's event stream) on first call.
func (g *Graph) Temporal() *temporal.Engine {
	g.tempOnce.Do(func() { g.temp = temporal.NewEngine(g.s) })
	return g.temp
}

// AssocTimeRange returns the live edges of (src, etype) with timestamps
// in [tLo, tHi) (WildcardTime leaves a bound open), timestamp-sorted,
// at most limit entries (limit <= 0: unbounded). Fragments whose
// hot-header span misses the window are skipped without decompression.
func (g *Graph) AssocTimeRange(src NodeID, etype EdgeType, tLo, tHi int64, limit int) []EdgeData {
	return g.Temporal().AssocTimeRange(src, etype, tLo, tHi, limit)
}

// AssocCountInWindow counts the live edges of (src, etype) with
// timestamps in [tLo, tHi) without materializing edge data.
func (g *Graph) AssocCountInWindow(src NodeID, etype EdgeType, tLo, tHi int64) int {
	return g.Temporal().AssocCountInWindow(src, etype, tLo, tHi)
}

// PathInWindow searches for a path src → dst of at most maxHops edges
// whose timestamps all fall in [tLo, tHi).
func (g *Graph) PathInWindow(src, dst NodeID, tLo, tHi int64, maxHops int) PathResult {
	return g.Temporal().PathInWindow(src, dst, tLo, tHi, maxHops)
}

// Subscribe opens a live change subscription with the given filter and
// buffer capacity (0 = default). Close it when done.
func (g *Graph) Subscribe(f SubscriptionFilter, bufCap int) *Subscription {
	return g.Temporal().Subscribe(f, bufCap)
}
