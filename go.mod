module zipg

go 1.22
