// Cluster: a 3-server distributed ZipG on loopback TCP (§4.1 of the
// paper): hash-partitioned shards, one aggregator per server, and
// function shipping for neighbor queries whose property checks live on
// other servers (Figure 4).
package main

import (
	"fmt"
	"log"

	"zipg"
	"zipg/internal/cluster"
	"zipg/internal/gen"
)

func main() {
	d := gen.DatasetSpec{
		Name: "clustered", Kind: gen.RealWorld,
		TargetBytes: 256 << 10, AvgDegree: 10, NumEdgeTypes: 3, Seed: 21,
	}.Generate()
	nodeSchema, edgeSchema, err := zipg.DeriveSchemas(zipg.GraphData{Nodes: d.Nodes, Edges: d.Edges})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("launching 3 servers over %d nodes / %d edges...\n", d.NumNodes(), d.NumEdges())
	c, err := cluster.Launch(d.Nodes, d.Edges, nodeSchema, edgeSchema, cluster.LaunchConfig{
		NumServers:      3,
		ShardsPerServer: 2,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()
	for sid, addr := range c.Addrs {
		fmt.Printf("  server %d on %s\n", sid, addr)
	}

	client, err := c.Client()
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	// A node query routes to its owner server.
	id := zipg.NodeID(5)
	fmt.Printf("node %d lives on server %d\n", id, cluster.OwnerOf(id, 3))
	props, ok := client.GetNodeProperty(id, nil)
	fmt.Printf("props: %d values (found=%v)\n", len(props), ok)

	// A filtered neighbor query ships property checks to the neighbors'
	// owners (Figure 4: "Carol & Dan's cities?").
	loc := d.Vocab["prop01"][0]
	nbr := client.GetNeighborIDs(id, zipg.WildcardType, map[string]string{"prop01": loc})
	fmt.Printf("neighbors of %d with prop01=%q: %v\n", id, loc, nbr)

	// get_node_ids fans out to every server and aggregates.
	found := client.GetNodeIDs(map[string]string{"prop01": loc})
	fmt.Printf("all nodes with prop01=%q: %d (aggregated across 3 servers)\n", loc, len(found))

	// Writes route to the owner; reads see them cluster-wide.
	if err := client.AppendNode(777777, map[string]string{"prop01": loc}); err != nil {
		log.Fatal(err)
	}
	if err := client.AppendEdge(zipg.Edge{Src: id, Dst: 777777, Type: 0, Timestamp: 42}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after append: neighbors of %d with prop01=%q: %v\n",
		id, loc, client.GetNeighborIDs(id, zipg.WildcardType, map[string]string{"prop01": loc}))
}
