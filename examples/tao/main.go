// TAO: serve Facebook TAO's object/association API (Table 2 and
// Algorithms 1–3 of the paper) on top of ZipG, then drive it with the
// TAO production query mix and report per-operation counts.
package main

import (
	"fmt"
	"log"

	"zipg"
	"zipg/internal/gen"
	"zipg/internal/workloads"
)

func main() {
	d := gen.DatasetSpec{
		Name: "tao", Kind: gen.RealWorld,
		TargetBytes: 512 << 10, AvgDegree: 15, NumEdgeTypes: 5, Seed: 11,
	}.Generate()
	g, err := zipg.Compress(zipg.GraphData{Nodes: d.Nodes, Edges: d.Edges}, zipg.Options{NumShards: 2})
	if err != nil {
		log.Fatal(err)
	}
	tao := workloads.TAO{S: g}

	obj := zipg.NodeID(2)
	const atype = 1

	// obj_get: all properties of an object.
	props, _ := tao.ObjGet(obj)
	fmt.Printf("obj_get(%d): %d properties\n", obj, len(props))

	// assoc_count: association-list size straight from the EdgeRecord
	// metadata.
	fmt.Printf("assoc_count(%d,%d) = %d\n", obj, atype, tao.AssocCount(obj, atype))

	// assoc_range (Algorithm 1): a page of the newest associations.
	page, err := tao.AssocRange(obj, atype, 0, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("assoc_range(%d,%d,0,5): %d assocs\n", obj, atype, len(page))
	for _, a := range page {
		fmt.Printf("  -> %d at %d\n", a.Dst, a.Timestamp)
	}

	// assoc_time_range (Algorithm 3): "all comments since last login".
	lastLogin := int64(1_400_000_000 + 25*24*3600)
	recent, err := tao.AssocTimeRange(obj, atype, lastLogin, 1<<62, 10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("assoc_time_range since day 25: %d assocs\n", len(recent))

	// assoc_add / assoc_del: mutate an association list.
	if err := tao.AssocAdd(zipg.Edge{Src: obj, Dst: 999999, Type: atype, Timestamp: 1_500_000_000}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after assoc_add: count = %d\n", tao.AssocCount(obj, atype))
	if err := tao.AssocDel(obj, atype, 999999); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after assoc_del: count = %d\n", tao.AssocCount(obj, atype))

	// Drive the production mix (Table 2's TAO column: 99.8% reads).
	ops := workloads.GenerateOps(d, workloads.MixConfig{Mix: workloads.TAOMix, Seed: 12}, 5000)
	counts := map[workloads.OpKind]int{}
	for _, op := range ops {
		if _, err := workloads.Execute(g, op); err != nil {
			log.Fatal(err)
		}
		counts[op.Kind]++
	}
	fmt.Println("executed TAO mix:")
	for k := workloads.OpKind(0); int(k) < len(counts)+4; k++ {
		if c, ok := counts[k]; ok {
			fmt.Printf("  %-18s %5d (%.1f%%)\n", k, c, 100*float64(c)/float64(len(ops)))
		}
	}
}
