// Quickstart: build a small property graph, compress it, and run every
// query of ZipG's API (Table 1 of the paper) — the running example from
// the paper's Figures 1 and 2 (Alice, Bob, Eve and their typed,
// timestamped edges).
package main

import (
	"fmt"
	"log"

	"zipg"
)

const (
	alice = zipg.NodeID(0)
	bob   = zipg.NodeID(1)
	eve   = zipg.NodeID(2)

	friend  = zipg.EdgeType(0)
	comment = zipg.EdgeType(1)
)

func main() {
	data := zipg.GraphData{
		Nodes: []zipg.Node{
			{ID: alice, Props: map[string]string{"nickname": "Ally", "age": "42", "location": "Ithaca"}},
			{ID: bob, Props: map[string]string{"nickname": "Bobby", "location": "Princeton"}},
			{ID: eve, Props: map[string]string{"age": "24", "nickname": "Cat"}},
		},
		Edges: []zipg.Edge{
			{Src: alice, Dst: bob, Type: friend, Timestamp: 100},
			{Src: alice, Dst: eve, Type: friend, Timestamp: 200},
			{Src: alice, Dst: bob, Type: comment, Timestamp: 150, Props: map[string]string{"text": "hello Bob!"}},
			{Src: bob, Dst: alice, Type: friend, Timestamp: 100},
		},
	}

	// compress(graph): build the memory-efficient representation.
	g, err := zipg.Compress(data, zipg.Options{})
	if err != nil {
		log.Fatal(err)
	}

	// get_node_property: "Get Alice's age and location."
	vals, _ := g.GetNodeProperty(alice, []string{"age", "location"})
	fmt.Printf("Alice: age=%s location=%s\n", vals[0], vals[1])

	// get_node_ids: "Find people in Ithaca."
	fmt.Println("in Ithaca:", g.GetNodeIDs(map[string]string{"location": "Ithaca"}))

	// get_neighbor_ids: "Find Alice's friends who live in Princeton."
	fmt.Println("Alice's friends in Princeton:",
		g.GetNeighborIDs(alice, friend, map[string]string{"location": "Princeton"}))

	// get_edge_record + get_edge_data: "Find Alice's most recent friend."
	rec, _ := g.GetEdgeRecord(alice, friend)
	latest, _ := rec.Data(rec.Count() - 1)
	fmt.Printf("Alice's most recent friend: node %d (at t=%d)\n", latest.Dst, latest.Timestamp)

	// get_edge_range: "friends added in [50, 150)".
	beg, end := rec.Range(50, 150)
	fmt.Printf("friendships in [50,150): time orders [%d,%d)\n", beg, end)

	// append: "Append new node for Dan and befriend him."
	if err := g.AppendNode(3, map[string]string{"nickname": "Dan", "location": "Ithaca"}); err != nil {
		log.Fatal(err)
	}
	if err := g.AppendEdge(zipg.Edge{Src: alice, Dst: 3, Type: friend, Timestamp: 300}); err != nil {
		log.Fatal(err)
	}
	fmt.Println("Alice's friends now:", g.GetNeighborIDs(alice, friend, nil))

	// delete: "Delete Bob from Alice's friends list."
	n, _ := g.DeleteEdges(alice, friend, bob)
	fmt.Printf("deleted %d edges; Alice's friends: %v\n", n, g.GetNeighborIDs(alice, friend, nil))

	fmt.Printf("compressed footprint: %d bytes (raw layout: %d bytes)\n",
		g.CompressedFootprint(), g.RawSize())
}
