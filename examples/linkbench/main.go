// Linkbench: drive ZipG with the LinkBench production mix (Table 2's
// write-heavy column: ≈31 % writes with Zipf-skewed access), watch the
// LogStore roll over into compressed fragments, and inspect the
// fanned-update state the paper's Appendix A studies.
package main

import (
	"fmt"
	"log"
	"sort"
	"time"

	"zipg"
	"zipg/internal/gen"
	"zipg/internal/workloads"
)

func main() {
	d := gen.DatasetSpec{
		Name: "linkbench", Kind: gen.LinkBench,
		TargetBytes: 512 << 10, AvgDegree: 5, NumEdgeTypes: 5, ZipfS: 1.5, Seed: 31,
	}.Generate()
	fmt.Printf("generated LinkBench-like graph: %d nodes, %d edges\n", d.NumNodes(), d.NumEdges())

	g, err := zipg.Compress(zipg.GraphData{Nodes: d.Nodes, Edges: d.Edges}, zipg.Options{
		NumShards:         4,
		LogStoreThreshold: 64 << 10, // small threshold: show rollovers
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compressed: %d bytes (%.2fx of raw)\n",
		g.CompressedFootprint(), float64(g.CompressedFootprint())/float64(g.RawSize()))

	// Execute the production mix.
	const nOps = 20_000
	ops := workloads.GenerateOps(d, workloads.MixConfig{
		Mix:        workloads.LinkBenchMix,
		AccessSkew: 1.4,
		Seed:       32,
	}, nOps)
	counts := map[workloads.OpKind]int{}
	start := time.Now()
	for _, op := range ops {
		if _, err := workloads.Execute(g, op); err != nil {
			log.Fatal(err)
		}
		counts[op.Kind]++
	}
	elapsed := time.Since(start)
	fmt.Printf("\nexecuted %d LinkBench ops in %.2fs (%.1f KOps/s):\n",
		nOps, elapsed.Seconds(), float64(nOps)/elapsed.Seconds()/1000)
	kinds := make([]workloads.OpKind, 0, len(counts))
	for k := range counts {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool { return counts[kinds[i]] > counts[kinds[j]] })
	for _, k := range kinds {
		fmt.Printf("  %-18s %6d (%.1f%%)\n", k, counts[k], 100*float64(counts[k])/nOps)
	}

	// The write stream forced LogStore rollovers; show the fanned-update
	// state (what Figures 10 and 11 quantify).
	st := g.Store()
	fmt.Printf("\nLogStore rollovers: %d; total fragments: %d\n", st.Rollovers(), st.NumFragments())
	frags := make([]int, 0, d.NumNodes())
	maxFrag, sum := 0, 0
	for id := int64(0); id < int64(d.NumNodes()); id++ {
		f := g.FragmentsOf(id)
		frags = append(frags, f)
		sum += f
		if f > maxFrag {
			maxFrag = f
		}
	}
	sort.Ints(frags)
	fmt.Printf("fragments per node: p50=%d p99=%d max=%d avg=%.2f\n",
		frags[len(frags)/2], frags[len(frags)*99/100], maxFrag,
		float64(sum)/float64(len(frags)))
	fmt.Println("(update pointers route each read to exactly these fragments — §3.5's fanned updates)")
}
