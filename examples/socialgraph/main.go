// Socialgraph: run the paper's Graph Search workload (Table 3) over a
// generated social network with TAO-style properties, showing the five
// query shapes and ZipG's compression on realistic data.
package main

import (
	"fmt"
	"log"
	"time"

	"zipg"
	"zipg/internal/gen"
	"zipg/internal/workloads"
)

func main() {
	// A scaled orkut-like social graph with TAO property distributions
	// (40 properties/node, 5 edge types, 50-day timestamp span).
	d := gen.DatasetSpec{
		Name: "social", Kind: gen.RealWorld,
		TargetBytes: 1 << 20, AvgDegree: 20, NumEdgeTypes: 5, Seed: 7,
	}.Generate()
	fmt.Printf("generated %d nodes, %d edges (~%d raw bytes)\n",
		d.NumNodes(), d.NumEdges(), d.RawBytes)

	start := time.Now()
	g, err := zipg.Compress(zipg.GraphData{Nodes: d.Nodes, Edges: d.Edges}, zipg.Options{NumShards: 4})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compressed in %.1fs: %d bytes (%.2fx of raw)\n",
		time.Since(start).Seconds(), g.CompressedFootprint(),
		float64(g.CompressedFootprint())/float64(g.RawSize()))

	me := zipg.NodeID(1)
	location := d.Vocab["prop01"][0]
	interest := d.Vocab["prop02"][0]

	// GS1: "All friends of Alice."
	fmt.Printf("GS1 all neighbors of %d: %d nodes\n", me, len(workloads.GS1(g, me)))

	// GS2: "Alice's friends in Ithaca."
	gs2 := workloads.GS2(g, me, map[string]string{"prop01": location})
	fmt.Printf("GS2 neighbors of %d with prop01=%q: %v\n", me, location, gs2)

	// GS3: "Musicians in Ithaca" — search over two properties.
	gs3 := workloads.GS3(g, map[string]string{"prop01": location, "prop02": interest})
	fmt.Printf("GS3 nodes with prop01=%q and prop02=%q: %d nodes\n", location, interest, len(gs3))

	// GS4: "Close friends of Alice" (one edge type).
	fmt.Printf("GS4 type-0 neighbors of %d: %v\n", me, workloads.GS4(g, me, 0))

	// GS5: "All data on Alice's friends."
	gs5 := workloads.GS5(g, me, 0)
	for i, e := range gs5 {
		if i >= 3 {
			fmt.Printf("  ... and %d more\n", len(gs5)-3)
			break
		}
		fmt.Printf("  edge -> %d at %d (%d props)\n", e.Dst, e.Timestamp, len(e.Props))
	}

	// The same GS2 via an explicit join (Appendix B.3) gives identical
	// results — ZipG just prefers the filter plan.
	join := workloads.GS2Join(g, me, map[string]string{"prop01": location})
	fmt.Printf("GS2 via join: %v (same: %v)\n", join, fmt.Sprint(join) == fmt.Sprint(gs2))
}
