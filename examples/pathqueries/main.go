// Pathqueries: regular path queries (Appendix B.1 of the paper) over a
// multi-label graph — regexes over edge labels evaluated directly on the
// compressed representation, including Kleene-star transitive closure.
package main

import (
	"fmt"
	"log"

	"zipg"
	"zipg/internal/graphapi"
	"zipg/internal/rpq"
)

func main() {
	// A small "social network" with labeled edges:
	//   a = follows, b = posted, c = likes.
	nodes := make([]zipg.Node, 8)
	for i := range nodes {
		nodes[i] = zipg.Node{ID: int64(i)}
	}
	edges := []zipg.Edge{
		{Src: 0, Dst: 1, Type: 0, Timestamp: 1}, // 0 follows 1
		{Src: 1, Dst: 2, Type: 0, Timestamp: 2}, // 1 follows 2
		{Src: 2, Dst: 3, Type: 0, Timestamp: 3}, // 2 follows 3
		{Src: 3, Dst: 6, Type: 1, Timestamp: 4}, // 3 posted 6
		{Src: 1, Dst: 4, Type: 1, Timestamp: 5}, // 1 posted 4
		{Src: 0, Dst: 4, Type: 2, Timestamp: 6}, // 0 likes 4
		{Src: 5, Dst: 4, Type: 2, Timestamp: 7}, // 5 likes 4
	}
	g, err := zipg.Compress(zipg.GraphData{Nodes: nodes, Edges: edges}, zipg.Options{})
	if err != nil {
		log.Fatal(err)
	}
	all := make([]graphapi.NodeID, len(nodes))
	for i := range all {
		all[i] = int64(i)
	}

	queries := []struct {
		expr string
		desc string
	}{
		{"ab", "posts by people I follow (follows.posted)"},
		{"a*b", "posts reachable through any follow chain"},
		{"a+", "transitive closure of follows"},
		{"(a|c)b?", "follow or like, optionally then a post"},
	}
	for _, q := range queries {
		e, err := rpq.Parse(q.expr)
		if err != nil {
			log.Fatal(err)
		}
		pairs := e.Eval(g, all, rpq.Limits{})
		fmt.Printf("%-8s %-50s -> %v\n", q.expr, q.desc, pairs)
	}

	// gMark-style generated workload: 10 queries over 3 labels.
	fmt.Println("\ngenerated gMark-style queries:")
	for _, q := range rpq.GenerateQueries(3, 10, 3) {
		pairs := q.Expr.Eval(g, all, rpq.Limits{MaxResults: 50})
		fmt.Printf("  q%-2d [%s] %-12s -> %d pairs\n", q.ID, q.Class, q.Expr.Text, len(pairs))
	}
}
