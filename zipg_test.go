package zipg

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"
)

// exampleGraph is the running example from the paper's Figures 1 and 2:
// Alice, Bob, Eve with node properties, plus typed, timestamped edges.
func exampleGraph() GraphData {
	const (
		alice = NodeID(0)
		bob   = NodeID(1)
		eve   = NodeID(2)
	)
	const friend, comment = EdgeType(0), EdgeType(1)
	return GraphData{
		Nodes: []Node{
			{ID: alice, Props: map[string]string{"nickname": "Ally", "age": "42", "location": "Ithaca"}},
			{ID: bob, Props: map[string]string{"nickname": "Bobby", "location": "Princeton"}},
			{ID: eve, Props: map[string]string{"age": "24", "nickname": "Cat"}},
		},
		Edges: []Edge{
			{Src: alice, Dst: bob, Type: friend, Timestamp: 100},
			{Src: alice, Dst: eve, Type: friend, Timestamp: 200},
			{Src: alice, Dst: bob, Type: comment, Timestamp: 150, Props: map[string]string{"text": "hello"}},
			{Src: bob, Dst: alice, Type: friend, Timestamp: 100},
		},
	}
}

func compressExample(t testing.TB) *Graph {
	t.Helper()
	g, err := Compress(exampleGraph(), Options{SamplingRate: 4})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestPaperRunningExample(t *testing.T) {
	g := compressExample(t)

	// "Get Alice's age and location."
	vals, ok := g.GetNodeProperty(0, []string{"age", "location"})
	if !ok || vals[0] != "42" || vals[1] != "Ithaca" {
		t.Fatalf("Alice's props = %v", vals)
	}
	// Wildcard property query.
	all, _ := g.GetNodeProperty(0, nil)
	if len(all) != 3 { // age, location, nickname in schema order
		t.Fatalf("wildcard props = %v", all)
	}

	// "Find people in Ithaca."
	if ids := g.GetNodeIDs(map[string]string{"location": "Ithaca"}); !reflect.DeepEqual(ids, []NodeID{0}) {
		t.Fatalf("GetNodeIDs = %v", ids)
	}

	// "Find Alice's friends who live in Princeton."
	if ids := g.GetNeighborIDs(0, 0, map[string]string{"location": "Princeton"}); !reflect.DeepEqual(ids, []NodeID{1}) {
		t.Fatalf("filtered neighbors = %v", ids)
	}
	// All friends of Alice (wildcard property filter).
	if ids := g.GetNeighborIDs(0, 0, nil); !reflect.DeepEqual(ids, []NodeID{1, 2}) {
		t.Fatalf("friends = %v", ids)
	}
	// All neighbors of Alice across edge types.
	if ids := g.GetNeighborIDs(0, WildcardType, nil); !reflect.DeepEqual(ids, []NodeID{1, 2}) {
		t.Fatalf("wildcard-type neighbors = %v", ids)
	}

	// "Get all information on Alice's friends" via the edge record.
	rec, ok := g.GetEdgeRecord(0, 0)
	if !ok || rec.Count() != 2 {
		t.Fatalf("edge record count = %d", rec.Count())
	}
	// "Find Alice's most recent friend": last TimeOrder.
	d, err := rec.Data(rec.Count() - 1)
	if err != nil {
		t.Fatal(err)
	}
	if d.Dst != 2 || d.Timestamp != 200 {
		t.Fatalf("most recent friend = %+v", d)
	}
	// Edge property round trip.
	crec, _ := g.GetEdgeRecord(0, 1)
	cd, _ := crec.Data(0)
	if cd.Props["text"] != "hello" {
		t.Fatalf("comment props = %v", cd.Props)
	}

	// Time-range query with wildcards.
	if beg, end := rec.Range(WildcardTime, WildcardTime); beg != 0 || end != 2 {
		t.Fatalf("wildcard range = [%d,%d)", beg, end)
	}
	if beg, end := rec.Range(150, WildcardTime); beg != 1 || end != 2 {
		t.Fatalf("half-open range = [%d,%d)", beg, end)
	}

	// Wildcard edge record query.
	if recs := g.GetEdgeRecords(0); len(recs) != 2 {
		t.Fatalf("GetEdgeRecords = %d records", len(recs))
	}
}

func TestAppendAndDelete(t *testing.T) {
	g := compressExample(t)

	// "Append new node for Alice" — here a new node Dan.
	if err := g.AppendNode(3, map[string]string{"nickname": "Dan", "location": "Ithaca"}); err != nil {
		t.Fatal(err)
	}
	if ids := g.GetNodeIDs(map[string]string{"location": "Ithaca"}); !reflect.DeepEqual(ids, []NodeID{0, 3}) {
		t.Fatalf("after append, Ithaca = %v", ids)
	}
	// "Append new edges for Alice."
	if err := g.AppendEdge(Edge{Src: 0, Dst: 3, Type: 0, Timestamp: 300}); err != nil {
		t.Fatal(err)
	}
	rec, _ := g.GetEdgeRecord(0, 0)
	if rec.Count() != 3 {
		t.Fatalf("count after append = %d", rec.Count())
	}
	d, _ := rec.Data(2)
	if d.Dst != 3 {
		t.Fatalf("newest edge dst = %d", d.Dst)
	}

	// "Delete Bob from Alice's friends list."
	if n, _ := g.DeleteEdges(0, 0, 1); n != 1 {
		t.Fatalf("deleted %d edges", n)
	}
	if ids := g.GetNeighborIDs(0, 0, nil); !reflect.DeepEqual(ids, []NodeID{2, 3}) {
		t.Fatalf("after edge delete, friends = %v", ids)
	}

	// "Delete Alice from the graph."
	if err := g.DeleteNode(0); err != nil {
		t.Fatal(err)
	}
	if _, ok := g.GetNodeProperty(0, nil); ok {
		t.Fatal("deleted node readable")
	}
	if _, ok := g.GetEdgeRecord(0, 0); ok {
		t.Fatal("deleted node's record readable")
	}
	// Bob's friend list no longer contains Alice.
	if ids := g.GetNeighborIDs(1, 0, nil); len(ids) != 0 {
		t.Fatalf("Bob's friends after Alice deleted = %v", ids)
	}
}

func TestCompressEmptyGraph(t *testing.T) {
	g, err := Compress(GraphData{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := g.GetNodeProperty(0, nil); ok {
		t.Fatal("empty graph has nodes")
	}
	if err := g.AppendNode(1, nil); err != nil {
		t.Fatal(err)
	}
	if _, ok := g.GetNodeProperty(1, nil); !ok {
		t.Fatal("appended node invisible")
	}
}

func TestFootprintReporting(t *testing.T) {
	// A larger repetitive graph should compress below its raw layout size.
	var data GraphData
	for i := 0; i < 500; i++ {
		data.Nodes = append(data.Nodes, Node{ID: NodeID(i), Props: map[string]string{
			"location": []string{"Ithaca", "Princeton", "Berkeley"}[i%3],
			"status":   "active",
		}})
		data.Edges = append(data.Edges, Edge{Src: NodeID(i), Dst: NodeID((i + 1) % 500), Type: 0, Timestamp: int64(i)})
	}
	g, err := Compress(data, Options{SamplingRate: 32})
	if err != nil {
		t.Fatal(err)
	}
	if g.RawSize() <= 0 || g.CompressedFootprint() <= 0 {
		t.Fatal("footprint reporting broken")
	}
	ratio := float64(g.CompressedFootprint()) / float64(g.RawSize())
	t.Logf("footprint ratio = %.2f", ratio)
	if ratio > 1.2 {
		t.Errorf("repetitive graph did not compress: ratio %.2f", ratio)
	}
	if g.FragmentsOf(0) != 1 {
		t.Errorf("static node has %d fragments", g.FragmentsOf(0))
	}
}

func TestDeriveSchemasValidation(t *testing.T) {
	_, err := Compress(GraphData{Nodes: []Node{
		{ID: 0, Props: map[string]string{"p": "bad\x02value"}},
	}}, Options{})
	if err == nil {
		t.Fatal("non-printable property value accepted")
	}
}

func TestManyEdgeTypes(t *testing.T) {
	var data GraphData
	data.Nodes = append(data.Nodes, Node{ID: 0}, Node{ID: 1})
	for ty := 0; ty < 12; ty++ {
		data.Edges = append(data.Edges, Edge{Src: 0, Dst: 1, Type: EdgeType(ty), Timestamp: int64(ty)})
	}
	g, err := Compress(data, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if recs := g.GetEdgeRecords(0); len(recs) != 12 {
		t.Fatalf("GetEdgeRecords = %d, want 12", len(recs))
	}
	for ty := 0; ty < 12; ty++ {
		rec, ok := g.GetEdgeRecord(0, EdgeType(ty))
		if !ok || rec.Count() != 1 {
			t.Fatalf("type %d missing", ty)
		}
	}
}

func BenchmarkGetNodeProperty(b *testing.B) {
	var data GraphData
	for i := 0; i < 2000; i++ {
		data.Nodes = append(data.Nodes, Node{ID: NodeID(i), Props: map[string]string{
			"name": fmt.Sprintf("user%d", i), "location": "Ithaca",
		}})
	}
	g, err := Compress(data, Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.GetNodeProperty(NodeID(i%2000), []string{"name"})
	}
}

func TestGraphSaveLoad(t *testing.T) {
	g := compressExample(t)
	if err := g.AppendNode(9, map[string]string{"nickname": "Judy"}); err != nil {
		t.Fatal(err)
	}
	if err := g.DeleteNode(2); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := g.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf, nil)
	if err != nil {
		t.Fatal(err)
	}
	vals, ok := got.GetNodeProperty(0, []string{"age"})
	if !ok || vals[0] != "42" {
		t.Fatalf("compressed data lost: %v %v", vals, ok)
	}
	if props, ok := got.GetNodeProperties(9); !ok || props["nickname"] != "Judy" {
		t.Fatalf("log data lost: %v %v", props, ok)
	}
	if _, ok := got.GetNodeProperty(2, nil); ok {
		t.Fatal("deletion lost")
	}
	rec, ok := got.GetEdgeRecord(0, 0)
	if !ok || rec.Count() != 2 {
		t.Fatalf("edges lost: %v", ok)
	}
}

func TestFindEdges(t *testing.T) {
	g := compressExample(t)
	// The static comment edge has text=hello.
	got := g.FindEdges(map[string]string{"text": "hello"})
	if len(got) != 1 || got[0].Src != 0 || got[0].Dst != 1 || got[0].Type != 1 {
		t.Fatalf("FindEdges(hello) = %+v", got)
	}
	// An appended (LogStore) edge is also found.
	if err := g.AppendEdge(Edge{Src: 2, Dst: 0, Type: 1, Timestamp: 500,
		Props: map[string]string{"text": "hello"}}); err != nil {
		t.Fatal(err)
	}
	got = g.FindEdges(map[string]string{"text": "hello"})
	if len(got) != 2 {
		t.Fatalf("after append, FindEdges = %+v", got)
	}
	// Exact match only: no prefix hits, no cross-field hits.
	if got := g.FindEdges(map[string]string{"text": "hell"}); got != nil {
		t.Fatalf("prefix matched: %+v", got)
	}
	// Deleting the edge hides it.
	if _, err := g.DeleteEdges(0, 1, 1); err != nil {
		t.Fatal(err)
	}
	got = g.FindEdges(map[string]string{"text": "hello"})
	if len(got) != 1 || got[0].Src != 2 {
		t.Fatalf("after delete, FindEdges = %+v", got)
	}
	// Deleted source nodes hide their edges too.
	if err := g.DeleteNode(2); err != nil {
		t.Fatal(err)
	}
	if got := g.FindEdges(map[string]string{"text": "hello"}); got != nil {
		t.Fatalf("deleted node's edge found: %+v", got)
	}
	if got := g.FindEdges(nil); got != nil {
		t.Fatalf("empty filter matched: %+v", got)
	}
}

func TestFindEdgesSurvivesRolloverAndCompact(t *testing.T) {
	g, err := Compress(exampleGraph(), Options{SamplingRate: 4, LogStoreThreshold: 600})
	if err != nil {
		t.Fatal(err)
	}
	// Push enough annotated edges through the LogStore to force freezes.
	for i := 0; i < 30; i++ {
		tag := "even"
		if i%2 == 1 {
			tag = "odd"
		}
		err := g.AppendEdge(Edge{Src: 1, Dst: NodeID(50 + i), Type: 2, Timestamp: int64(i),
			Props: map[string]string{"text": tag}})
		if err != nil {
			t.Fatal(err)
		}
	}
	if g.Store().Rollovers() == 0 {
		t.Fatal("fixture should roll over")
	}
	if got := g.FindEdges(map[string]string{"text": "even"}); len(got) != 15 {
		t.Fatalf("FindEdges(even) across fragments = %d, want 15", len(got))
	}
	if err := g.Compact(); err != nil {
		t.Fatal(err)
	}
	if got := g.FindEdges(map[string]string{"text": "even"}); len(got) != 15 {
		t.Fatalf("FindEdges(even) after compact = %d, want 15", len(got))
	}
}
