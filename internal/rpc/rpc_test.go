package rpc

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"zipg/internal/telemetry"
)

type echoArgs struct {
	Msg string
	N   int
}

func startEcho(t testing.TB) (*Server, string) {
	t.Helper()
	s := NewServer()
	s.Handle("echo", func(ctx context.Context, blob []byte) (any, error) {
		var a echoArgs
		if err := DecodeArgsCtx(ctx, blob, &a); err != nil {
			return nil, err
		}
		return fmt.Sprintf("%s/%d", a.Msg, a.N), nil
	})
	s.Handle("fail", func(ctx context.Context, blob []byte) (any, error) {
		return nil, errors.New("deliberate failure")
	})
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s, addr
}

func TestCallRoundTrip(t *testing.T) {
	_, addr := startEcho(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var reply string
	if err := c.Call("echo", echoArgs{"hello", 7}, &reply); err != nil {
		t.Fatal(err)
	}
	if reply != "hello/7" {
		t.Fatalf("reply = %q", reply)
	}
}

func TestCallErrors(t *testing.T) {
	_, addr := startEcho(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Call("fail", echoArgs{}, nil); err == nil || err.Error() != "deliberate failure" {
		t.Fatalf("err = %v", err)
	}
	if err := c.Call("nope", echoArgs{}, nil); err == nil {
		t.Fatal("unknown method should error")
	}
	// The connection survives handler errors.
	var reply string
	if err := c.Call("echo", echoArgs{"still", 1}, &reply); err != nil || reply != "still/1" {
		t.Fatalf("connection broken after error: %v %q", err, reply)
	}
}

func TestConcurrentCalls(t *testing.T) {
	_, addr := startEcho(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				var reply string
				if err := c.Call("echo", echoArgs{"m", g*1000 + i}, &reply); err != nil {
					t.Errorf("call: %v", err)
					return
				}
				if reply != fmt.Sprintf("m/%d", g*1000+i) {
					t.Errorf("cross-wired reply %q", reply)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// oversizedHeader is a length prefix advertising a frame over maxFrame.
func oversizedHeader() []byte {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], maxFrame+1)
	return hdr[:]
}

func TestFrameTooLargeTyped(t *testing.T) {
	err := readFrame(bytes.NewReader(oversizedHeader()), &request{})
	if !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("errors.Is(err, ErrFrameTooLarge) = false, err = %v", err)
	}
	var f *FrameTooLargeError
	if !errors.As(err, &f) {
		t.Fatalf("errors.As *FrameTooLargeError = false, err = %v", err)
	}
	if f.Size != maxFrame+1 || f.Limit != maxFrame {
		t.Errorf("FrameTooLargeError = %+v, want Size=%d Limit=%d", f, maxFrame+1, maxFrame)
	}
}

// waitFor polls until cond is true or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestFrameTooLargeServerPath oversends to a live server: the server's
// read loop must drop the connection and bump the error counter.
func TestFrameTooLargeServerPath(t *testing.T) {
	prev := telemetry.SetEnabled(true)
	defer telemetry.SetEnabled(prev)
	_, addr := startEcho(t)
	before := mErrors.With("frame_too_large_server").Value()

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write(oversizedHeader()); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "server frame_too_large counter", func() bool {
		return mErrors.With("frame_too_large_server").Value() > before
	})
}

// TestFrameTooLargeClientPath serves an oversized response from a raw
// listener: the client's read loop must fail pending calls and bump the
// client-side counter.
func TestFrameTooLargeClientPath(t *testing.T) {
	prev := telemetry.SetEnabled(true)
	defer telemetry.SetEnabled(prev)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		conn.Write(oversizedHeader())
		time.Sleep(100 * time.Millisecond)
	}()
	before := mErrors.With("frame_too_large_client").Value()
	c, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	waitFor(t, "client frame_too_large counter", func() bool {
		return mErrors.With("frame_too_large_client").Value() > before
	})
	if err := c.Call("echo", echoArgs{}, nil); err == nil {
		t.Error("Call on poisoned connection should fail")
	}
}

// legacyRequest is the pre-trace-header wire envelope, re-declared here
// exactly as an old peer would encode it.
type legacyRequest struct {
	ID     uint64
	Method string
	Args   []byte
}

// legacyResponse is the pre-span-shipping response envelope.
type legacyResponse struct {
	ID     uint64
	Err    string
	Result []byte
}

// TestLegacyFramesInteroperate proves mixed-version compatibility both
// ways: a header-less request from an old client is served normally
// (zero TraceContext, no deadline), and the new server's response —
// which may carry a Spans field — still decodes into the old response
// shape, gob dropping the unknown field.
func TestLegacyFramesInteroperate(t *testing.T) {
	_, addr := startEcho(t)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	var args bytes.Buffer
	if err := gob.NewEncoder(&args).Encode(echoArgs{"old", 3}); err != nil {
		t.Fatal(err)
	}
	if err := writeFrame(conn, &legacyRequest{ID: 42, Method: "echo", Args: args.Bytes()}); err != nil {
		t.Fatal(err)
	}
	var resp legacyResponse
	if err := readFrame(conn, &resp); err != nil {
		t.Fatalf("old client cannot decode new response: %v", err)
	}
	if resp.ID != 42 || resp.Err != "" {
		t.Fatalf("legacy response = %+v", resp)
	}
	var reply string
	if err := gob.NewDecoder(bytes.NewReader(resp.Result)).Decode(&reply); err != nil {
		t.Fatal(err)
	}
	if reply != "old/3" {
		t.Fatalf("reply = %q, want old/3", reply)
	}
}

// TestUntracedClientStillSampledServerSide proves a request without a
// trace header (trace-unaware or telemetry-off client) does not
// suppress server-side sampling: the server makes its own decision and
// records a local root serve span, so /debug/trace and /debug/traces
// keep seeing legacy traffic.
func TestUntracedClientStillSampledServerSide(t *testing.T) {
	prev := telemetry.SetEnabled(true)
	defer telemetry.SetEnabled(prev)
	prevSampling := telemetry.SetSpanSampling(1)
	defer telemetry.SetSpanSampling(prevSampling)
	telemetry.ResetSpans()

	srv, addr := startEcho(t)
	srv.SetServerID(3)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	var args bytes.Buffer
	if err := gob.NewEncoder(&args).Encode(echoArgs{"legacy", 9}); err != nil {
		t.Fatal(err)
	}
	if err := writeFrame(conn, &legacyRequest{ID: 1, Method: "echo", Args: args.Bytes()}); err != nil {
		t.Fatal(err)
	}
	var resp legacyResponse
	if err := readFrame(conn, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Err != "" {
		t.Fatalf("unexpected error %q", resp.Err)
	}

	ids := telemetry.RecentTraces(1)
	if len(ids) != 1 {
		t.Fatalf("no trace recorded for untraced client request")
	}
	tree := telemetry.AssembleTrace(ids[0])
	if tree == nil || len(tree.Roots) != 1 {
		t.Fatalf("trace %v did not assemble to one root", ids[0])
	}
	root := tree.Roots[0].Span
	if root.Op != "rpc.serve:echo" || root.ParentID != 0 || root.Server != 3 {
		t.Fatalf("server-local root = %+v", root)
	}
}

// TestDeadlineRejectedOnArrival writes a raw frame whose propagated
// deadline already passed: the server must refuse to run the handler
// and count the rejection.
func TestDeadlineRejectedOnArrival(t *testing.T) {
	prev := telemetry.SetEnabled(true)
	defer telemetry.SetEnabled(prev)
	_, addr := startEcho(t)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	before := mDeadlineExceeded.With("server").Value()
	var args bytes.Buffer
	if err := gob.NewEncoder(&args).Encode(echoArgs{"late", 1}); err != nil {
		t.Fatal(err)
	}
	req := request{
		ID: 7, Method: "echo", Args: args.Bytes(),
		Deadline: time.Now().Add(-time.Second).UnixNano(),
	}
	if err := writeFrame(conn, &req); err != nil {
		t.Fatal(err)
	}
	var resp response
	if err := readFrame(conn, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Err != deadlineErrMsg {
		t.Fatalf("resp.Err = %q, want deadline rejection", resp.Err)
	}
	if got := mDeadlineExceeded.With("server").Value(); got != before+1 {
		t.Errorf("server deadline counter = %d, want %d", got, before+1)
	}
}

// TestDeadlineRejectedBeforeSend verifies the client-side short-circuit:
// an expired context fails without a network round trip.
func TestDeadlineRejectedBeforeSend(t *testing.T) {
	prev := telemetry.SetEnabled(true)
	defer telemetry.SetEnabled(prev)
	_, addr := startEcho(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	before := mDeadlineExceeded.With("client").Value()
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Millisecond))
	defer cancel()
	err = c.CallCtx(ctx, "echo", echoArgs{"never", 0}, nil)
	if !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("err = %v, want ErrDeadlineExceeded", err)
	}
	if got := mDeadlineExceeded.With("client").Value(); got != before+1 {
		t.Errorf("client deadline counter = %d, want %d", got, before+1)
	}
}

// TestTraceRoundTrip runs a traced call end to end over TCP and asserts
// the assembled tree: caller root → rpc.call:echo → rpc.serve:echo, all
// under one trace ID, the serve span carrying the server's ID and
// phases that fit inside its duration.
func TestTraceRoundTrip(t *testing.T) {
	prevEnabled := telemetry.SetEnabled(true)
	defer telemetry.SetEnabled(prevEnabled)
	prevSampling := telemetry.SetSpanSampling(1)
	defer telemetry.SetSpanSampling(prevSampling)
	telemetry.ResetSpans()

	s, addr := startEcho(t)
	s.SetServerID(5)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	root, ctx := telemetry.StartSpanCtx(context.Background(), "test.root")
	if root == nil {
		t.Fatal("sampling=1 must trace the root")
	}
	var reply string
	if err := c.CallCtx(ctx, "echo", echoArgs{"traced", 9}, &reply); err != nil {
		t.Fatal(err)
	}
	root.End()

	tree := telemetry.AssembleTrace(root.Trace)
	if tree == nil || len(tree.Roots) != 1 {
		t.Fatalf("assembled tree = %+v, want one root", tree)
	}
	r := tree.Roots[0]
	if r.Span.Op != "test.root" || len(r.Children) != 1 {
		t.Fatalf("root = %s with %d children, want test.root with 1", r.Span.Op, len(r.Children))
	}
	call := r.Children[0]
	if call.Span.Op != "rpc.call:echo" || len(call.Children) != 1 {
		t.Fatalf("call node = %s with %d children", call.Span.Op, len(call.Children))
	}
	serve := call.Children[0]
	if serve.Span.Op != "rpc.serve:echo" {
		t.Fatalf("serve node = %s", serve.Span.Op)
	}
	if serve.Span.Server != 5 {
		t.Errorf("serve span server = %d, want 5", serve.Span.Server)
	}
	for _, n := range []*telemetry.TraceNode{r, call, serve} {
		if n.Span.Trace != root.Trace {
			t.Errorf("%s trace = %s, want %s", n.Span.Op, n.Span.Trace, root.Trace)
		}
		if pt := n.Span.PhaseTotal(); pt > n.Span.Duration {
			t.Errorf("%s phase total %s exceeds duration %s", n.Span.Op, pt, n.Span.Duration)
		}
	}
}

// TestDeadlineMetricName locks the wire-facing metric name into the
// exposition so a rename fails CI. (The zipg_trace_* names are locked
// in the telemetry package's own tests; this one lives here because the
// counter is registered by the rpc package.)
func TestDeadlineMetricName(t *testing.T) {
	prev := telemetry.SetEnabled(true)
	defer telemetry.SetEnabled(prev)
	mDeadlineExceeded.With("server").Add(0)
	mDeadlineExceeded.With("client").Add(0)
	expo := telemetry.Default.Expose()
	for _, want := range []string{
		`zipg_rpc_deadline_exceeded_total{where="server"}`,
		`zipg_rpc_deadline_exceeded_total{where="client"}`,
	} {
		if !strings.Contains(expo, want) {
			t.Errorf("exposition missing %s", want)
		}
	}
}

func TestConnectionLoss(t *testing.T) {
	s, addr := startEcho(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var reply string
	if err := c.Call("echo", echoArgs{"x", 1}, &reply); err != nil {
		t.Fatal(err)
	}
	s.Close()
	if err := c.Call("echo", echoArgs{"y", 2}, &reply); err == nil {
		t.Fatal("call on closed server should fail")
	}
}
