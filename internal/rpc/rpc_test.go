package rpc

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"zipg/internal/telemetry"
)

type echoArgs struct {
	Msg string
	N   int
}

func startEcho(t testing.TB) (*Server, string) {
	t.Helper()
	s := NewServer()
	s.Handle("echo", func(blob []byte) (any, error) {
		var a echoArgs
		if err := DecodeArgs(blob, &a); err != nil {
			return nil, err
		}
		return fmt.Sprintf("%s/%d", a.Msg, a.N), nil
	})
	s.Handle("fail", func(blob []byte) (any, error) {
		return nil, errors.New("deliberate failure")
	})
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s, addr
}

func TestCallRoundTrip(t *testing.T) {
	_, addr := startEcho(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var reply string
	if err := c.Call("echo", echoArgs{"hello", 7}, &reply); err != nil {
		t.Fatal(err)
	}
	if reply != "hello/7" {
		t.Fatalf("reply = %q", reply)
	}
}

func TestCallErrors(t *testing.T) {
	_, addr := startEcho(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Call("fail", echoArgs{}, nil); err == nil || err.Error() != "deliberate failure" {
		t.Fatalf("err = %v", err)
	}
	if err := c.Call("nope", echoArgs{}, nil); err == nil {
		t.Fatal("unknown method should error")
	}
	// The connection survives handler errors.
	var reply string
	if err := c.Call("echo", echoArgs{"still", 1}, &reply); err != nil || reply != "still/1" {
		t.Fatalf("connection broken after error: %v %q", err, reply)
	}
}

func TestConcurrentCalls(t *testing.T) {
	_, addr := startEcho(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				var reply string
				if err := c.Call("echo", echoArgs{"m", g*1000 + i}, &reply); err != nil {
					t.Errorf("call: %v", err)
					return
				}
				if reply != fmt.Sprintf("m/%d", g*1000+i) {
					t.Errorf("cross-wired reply %q", reply)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// oversizedHeader is a length prefix advertising a frame over maxFrame.
func oversizedHeader() []byte {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], maxFrame+1)
	return hdr[:]
}

func TestFrameTooLargeTyped(t *testing.T) {
	err := readFrame(bytes.NewReader(oversizedHeader()), &request{})
	if !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("errors.Is(err, ErrFrameTooLarge) = false, err = %v", err)
	}
	var f *FrameTooLargeError
	if !errors.As(err, &f) {
		t.Fatalf("errors.As *FrameTooLargeError = false, err = %v", err)
	}
	if f.Size != maxFrame+1 || f.Limit != maxFrame {
		t.Errorf("FrameTooLargeError = %+v, want Size=%d Limit=%d", f, maxFrame+1, maxFrame)
	}
}

// waitFor polls until cond is true or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestFrameTooLargeServerPath oversends to a live server: the server's
// read loop must drop the connection and bump the error counter.
func TestFrameTooLargeServerPath(t *testing.T) {
	prev := telemetry.SetEnabled(true)
	defer telemetry.SetEnabled(prev)
	_, addr := startEcho(t)
	before := mErrors.With("frame_too_large_server").Value()

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write(oversizedHeader()); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "server frame_too_large counter", func() bool {
		return mErrors.With("frame_too_large_server").Value() > before
	})
}

// TestFrameTooLargeClientPath serves an oversized response from a raw
// listener: the client's read loop must fail pending calls and bump the
// client-side counter.
func TestFrameTooLargeClientPath(t *testing.T) {
	prev := telemetry.SetEnabled(true)
	defer telemetry.SetEnabled(prev)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		conn.Write(oversizedHeader())
		time.Sleep(100 * time.Millisecond)
	}()
	before := mErrors.With("frame_too_large_client").Value()
	c, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	waitFor(t, "client frame_too_large counter", func() bool {
		return mErrors.With("frame_too_large_client").Value() > before
	})
	if err := c.Call("echo", echoArgs{}, nil); err == nil {
		t.Error("Call on poisoned connection should fail")
	}
}

func TestConnectionLoss(t *testing.T) {
	s, addr := startEcho(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var reply string
	if err := c.Call("echo", echoArgs{"x", 1}, &reply); err != nil {
		t.Fatal(err)
	}
	s.Close()
	if err := c.Call("echo", echoArgs{"y", 2}, &reply); err == nil {
		t.Fatal("call on closed server should fail")
	}
}
