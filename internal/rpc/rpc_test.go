package rpc

import (
	"errors"
	"fmt"
	"sync"
	"testing"
)

type echoArgs struct {
	Msg string
	N   int
}

func startEcho(t testing.TB) (*Server, string) {
	t.Helper()
	s := NewServer()
	s.Handle("echo", func(blob []byte) (any, error) {
		var a echoArgs
		if err := DecodeArgs(blob, &a); err != nil {
			return nil, err
		}
		return fmt.Sprintf("%s/%d", a.Msg, a.N), nil
	})
	s.Handle("fail", func(blob []byte) (any, error) {
		return nil, errors.New("deliberate failure")
	})
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s, addr
}

func TestCallRoundTrip(t *testing.T) {
	_, addr := startEcho(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var reply string
	if err := c.Call("echo", echoArgs{"hello", 7}, &reply); err != nil {
		t.Fatal(err)
	}
	if reply != "hello/7" {
		t.Fatalf("reply = %q", reply)
	}
}

func TestCallErrors(t *testing.T) {
	_, addr := startEcho(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Call("fail", echoArgs{}, nil); err == nil || err.Error() != "deliberate failure" {
		t.Fatalf("err = %v", err)
	}
	if err := c.Call("nope", echoArgs{}, nil); err == nil {
		t.Fatal("unknown method should error")
	}
	// The connection survives handler errors.
	var reply string
	if err := c.Call("echo", echoArgs{"still", 1}, &reply); err != nil || reply != "still/1" {
		t.Fatalf("connection broken after error: %v %q", err, reply)
	}
}

func TestConcurrentCalls(t *testing.T) {
	_, addr := startEcho(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				var reply string
				if err := c.Call("echo", echoArgs{"m", g*1000 + i}, &reply); err != nil {
					t.Errorf("call: %v", err)
					return
				}
				if reply != fmt.Sprintf("m/%d", g*1000+i) {
					t.Errorf("cross-wired reply %q", reply)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestConnectionLoss(t *testing.T) {
	s, addr := startEcho(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var reply string
	if err := c.Call("echo", echoArgs{"x", 1}, &reply); err != nil {
		t.Fatal(err)
	}
	s.Close()
	if err := c.Call("echo", echoArgs{"y", 2}, &reply); err == nil {
		t.Fatal("call on closed server should fail")
	}
}
