// Package rpc is a minimal multiplexed RPC layer over TCP used by the
// distributed ZipG deployment (§4.1): length-prefixed frames carrying
// gob-encoded request/response envelopes. Each connection multiplexes
// concurrent in-flight calls by request ID, so one aggregator connection
// per peer suffices for the function-shipping fan-out.
//
// The request envelope carries an optional trace header (trace ID,
// caller span ID, absolute deadline, sampling decision) and responses
// ship the callee's finished spans back, so a cluster query assembles
// into one distributed span tree on the aggregator. Old header-less
// frames interoperate: gob matches envelope fields by name, so a
// request without trace fields decodes with a zero TraceContext and a
// response without spans simply attaches none.
package rpc

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"zipg/internal/telemetry"
)

// maxFrame bounds a single message (64 MiB), protecting servers from
// corrupt length prefixes.
const maxFrame = 64 << 20

// ErrFrameTooLarge is the sentinel matched by errors.Is when a frame's
// length prefix exceeds maxFrame. The error actually returned is a
// *FrameTooLargeError carrying the offending size.
var ErrFrameTooLarge = errors.New("rpc: frame exceeds maximum size")

// ErrDeadlineExceeded is the sentinel matched by errors.Is when a call
// is rejected because its propagated deadline already passed — on the
// client before sending, or on the server on arrival.
var ErrDeadlineExceeded = errors.New("rpc: deadline exceeded")

// deadlineErrMsg is the wire form of a server-side deadline rejection
// (error strings cross the wire, sentinels do not).
const deadlineErrMsg = "rpc: deadline exceeded before handler ran"

// FrameTooLargeError reports an oversized frame: the advertised size
// and the limit it broke. errors.Is(err, ErrFrameTooLarge) matches it.
type FrameTooLargeError struct {
	Size  uint32
	Limit uint32
}

// Error implements error.
func (e *FrameTooLargeError) Error() string {
	return fmt.Sprintf("rpc: frame of %d bytes exceeds %d-byte limit", e.Size, e.Limit)
}

// Is matches the ErrFrameTooLarge sentinel.
func (e *FrameTooLargeError) Is(target error) bool { return target == ErrFrameTooLarge }

// Telemetry series for the RPC layer. Per-method series materialize on
// first use.
var (
	mCalls = telemetry.NewCounterVec("zipg_rpc_calls_total", "method",
		"RPC requests served, by method.")
	mLatency = telemetry.NewHistogramVec("zipg_rpc_latency_ns", "method",
		"Server-side RPC handling latency in nanoseconds, by method.")
	mClientCalls = telemetry.NewCounterVec("zipg_rpc_client_calls_total", "method",
		"Client-side RPC calls issued, by method.")
	mInflight = telemetry.NewGauge("zipg_rpc_inflight",
		"RPC requests currently being served.")
	mFrameBytesRead = telemetry.NewCounterL("zipg_rpc_frame_bytes_total", `dir="read"`,
		"Frame bytes moved (header + payload), by direction.")
	mFrameBytesWritten = telemetry.NewCounterL("zipg_rpc_frame_bytes_total", `dir="write"`,
		"Frame bytes moved (header + payload), by direction.")
	mErrors = telemetry.NewCounterVec("zipg_rpc_errors_total", "kind",
		"RPC-layer errors, by kind.")
	mDeadlineExceeded = telemetry.NewCounterVec("zipg_rpc_deadline_exceeded_total", "where",
		"Calls rejected because the propagated deadline had already passed.")
)

// request is the wire envelope for calls. TraceHi/TraceLo/SpanID/
// Deadline/Sampled form the optional trace header; header-less frames
// from older peers decode with all of them zero, which the server
// treats as "untraced, no deadline".
type request struct {
	ID     uint64
	Method string
	Args   []byte

	TraceHi  uint64 // trace ID, high 64 bits (0+0: untraced)
	TraceLo  uint64 // trace ID, low 64 bits
	SpanID   uint64 // caller's span — parent of the serve span
	Deadline int64  // absolute deadline, Unix nanoseconds (0: none)
	Sampled  bool   // originator's sampling decision
}

// response is the wire envelope for results. Spans carries the callee's
// finished spans (serve span + its subtree) back to the caller for
// trace assembly; empty for untraced requests and absent entirely from
// older peers.
type response struct {
	ID     uint64
	Err    string
	Result []byte
	Spans  []telemetry.Span
}

// traceContext extracts the wire trace header.
func (r *request) traceContext() telemetry.TraceContext {
	return telemetry.TraceContext{
		Trace:    telemetry.TraceID{Hi: r.TraceHi, Lo: r.TraceLo},
		SpanID:   r.SpanID,
		Deadline: r.Deadline,
		Sampled:  r.Sampled,
	}
}

// writeFrame sends one length-prefixed gob blob.
func writeFrame(w io.Writer, v any) error {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return err
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(buf.Len()))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(buf.Bytes())
	if err == nil {
		mFrameBytesWritten.Add(int64(4 + buf.Len()))
	}
	return err
}

// readFrame receives one length-prefixed gob blob into v.
func readFrame(r io.Reader, v any) error {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrame {
		return &FrameTooLargeError{Size: n, Limit: maxFrame}
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return err
	}
	mFrameBytesRead.Add(int64(4 + n))
	return gob.NewDecoder(bytes.NewReader(buf)).Decode(v)
}

// Handler serves one method: decode args from the blob, return a result
// to encode. ctx carries the caller's trace (the active span for
// StartSpanCtx / PhaseFromContext) and its propagated deadline.
type Handler func(ctx context.Context, args []byte) (any, error)

// Server dispatches framed requests to registered handlers.
type Server struct {
	mu       sync.RWMutex
	handlers map[string]Handler
	conns    map[net.Conn]bool
	ln       net.Listener
	wg       sync.WaitGroup
	closed   atomic.Bool
	serverID atomic.Int64
}

// NewServer returns an empty server.
func NewServer() *Server {
	s := &Server{handlers: make(map[string]Handler), conns: make(map[net.Conn]bool)}
	s.serverID.Store(-1)
	return s
}

// SetServerID records the cluster server ID stamped on serve spans
// (-1, the default, means unknown).
func (s *Server) SetServerID(id int) { s.serverID.Store(int64(id)) }

// Handle registers a method. Must be called before Serve.
func (s *Server) Handle(method string, h Handler) {
	s.mu.Lock()
	s.handlers[method] = h
	s.mu.Unlock()
}

// Listen binds the server to addr (e.g. "127.0.0.1:0") and starts
// serving in the background. It returns the bound address.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.ln = ln
	s.wg.Add(1)
	go s.acceptLoop()
	return ln.Addr().String(), nil
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer conn.Close()
	s.mu.Lock()
	if s.closed.Load() {
		s.mu.Unlock()
		return
	}
	s.conns[conn] = true
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	var writeMu sync.Mutex
	for {
		var req request
		if err := readFrame(conn, &req); err != nil {
			// The server-side read path counts oversized frames; other
			// read errors here are routine connection teardown.
			if errors.Is(err, ErrFrameTooLarge) {
				mErrors.With("frame_too_large_server").Inc()
			}
			return
		}
		received := time.Now()
		// Serve each request concurrently: aggregator fan-outs depend on
		// it (a server may call back into its own peers mid-request).
		s.wg.Add(1)
		go func(req request) {
			defer s.wg.Done()
			mInflight.Inc()
			defer mInflight.Dec()
			mCalls.With(req.Method).Inc()
			tm := telemetry.StartTimer()
			resp := s.serveRequest(req, received)
			tm.ObserveInto(mLatency.With(req.Method))
			writeMu.Lock()
			err := writeFrame(conn, &resp)
			writeMu.Unlock()
			if err != nil {
				conn.Close()
			}
		}(req)
	}
}

// serveRequest runs one request through deadline admission, the serve
// span, and the handler, producing the response envelope. The response
// frame's own write cost is excluded — the wire time is attributed to
// the caller's network phase.
func (s *Server) serveRequest(req request, received time.Time) response {
	resp := response{ID: req.ID}
	tc := req.traceContext()
	op := "rpc.serve:" + req.Method

	// Propagated-deadline admission: work whose budget is already spent
	// on arrival is rejected before the handler runs — the first
	// concrete consumer of the trace context beyond tracing itself.
	if req.Deadline > 0 && !received.Before(time.Unix(0, req.Deadline)) {
		mDeadlineExceeded.With("server").Inc()
		mErrors.With("deadline").Inc()
		resp.Err = deadlineErrMsg
		if sp := telemetry.StartRemoteSpan(tc, op, int(s.serverID.Load())); sp != nil {
			sp.Start = received
			sp.SetError(ErrDeadlineExceeded)
			sp.End()
			resp.Spans = sp.Flatten()
		} else {
			telemetry.RecordErrorSpan(op, received, ErrDeadlineExceeded)
		}
		return resp
	}

	// A non-zero trace ID means the caller made the sampling decision;
	// it rides the context even when unsampled, so downstream
	// StartSpanCtx calls honor it instead of re-sampling. A zero trace
	// ID means the caller is trace-unaware (legacy frame, or telemetry
	// off client-side) — then the server samples locally, so the
	// flight recorder still sees 1-in-N of such traffic. The deadline
	// is independent of tracing and always re-ships downstream.
	ctx := context.Background()
	var sp *telemetry.Span
	if tc.Trace.IsZero() {
		sp = telemetry.StartServerRootSpan(op, int(s.serverID.Load()))
	} else {
		ctx = telemetry.ContextWithRemoteTrace(ctx, tc)
		sp = telemetry.StartRemoteSpan(tc, op, int(s.serverID.Load()))
	}
	if req.Deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithDeadline(ctx, time.Unix(0, req.Deadline))
		defer cancel()
	}
	if sp != nil {
		// Rebase the span to frame receipt so the queue phase (waiting
		// for a goroutine + admission) lies inside [Start, End].
		sp.Start = received
		ctx = telemetry.ContextWithSpan(ctx, sp)
	}

	s.mu.RLock()
	h := s.handlers[req.Method]
	s.mu.RUnlock()
	// Everything up to the handler running — goroutine handoff,
	// admission, span setup, the handler lookup — is queue time.
	sp.AddPhase("queue", time.Since(received))
	if h == nil {
		resp.Err = fmt.Sprintf("rpc: unknown method %q", req.Method)
		mErrors.With("unknown_method").Inc()
		sp.SetError(errors.New(resp.Err))
	} else if result, err := h(ctx, req.Args); err != nil {
		resp.Err = err.Error()
		mErrors.With("handler").Inc()
		sp.SetError(err)
		if sp == nil {
			telemetry.RecordErrorSpan(op, received, err)
		}
	} else {
		endSer := sp.Phase("serialize")
		var buf bytes.Buffer
		err := gob.NewEncoder(&buf).Encode(result)
		endSer()
		if err != nil {
			resp.Err = fmt.Sprintf("rpc: encode result: %v", err)
			mErrors.With("encode").Inc()
			sp.SetError(err)
		} else {
			resp.Result = buf.Bytes()
		}
	}
	if sp != nil {
		// End before shipping: Flatten copies the span with its final
		// duration, and End records it into this server's local table.
		sp.End()
		resp.Spans = sp.Flatten()
	}
	return resp
}

// Close stops the server, closes open connections (unblocking their
// readers), and waits for in-flight work.
func (s *Server) Close() {
	if s.closed.Swap(true) {
		return
	}
	if s.ln != nil {
		s.ln.Close()
	}
	s.mu.Lock()
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
}

// Client is a multiplexed connection to one server. Safe for concurrent
// use.
type Client struct {
	conn    net.Conn
	writeMu sync.Mutex
	nextID  atomic.Uint64

	mu      sync.Mutex
	pending map[uint64]chan response
	err     error
}

// Dial connects to a server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &Client{conn: conn, pending: make(map[uint64]chan response)}
	go c.readLoop()
	return c, nil
}

func (c *Client) readLoop() {
	for {
		var resp response
		if err := readFrame(c.conn, &resp); err != nil {
			// The client-side read path also counts oversized frames.
			if errors.Is(err, ErrFrameTooLarge) {
				mErrors.With("frame_too_large_client").Inc()
			}
			c.mu.Lock()
			c.err = err
			for id, ch := range c.pending {
				ch <- response{ID: id, Err: fmt.Sprintf("rpc: connection lost: %v", err)}
				delete(c.pending, id)
			}
			c.mu.Unlock()
			return
		}
		c.mu.Lock()
		ch := c.pending[resp.ID]
		delete(c.pending, resp.ID)
		c.mu.Unlock()
		if ch != nil {
			ch <- resp
		}
	}
}

// Call invokes method with args, decoding the result into reply (which
// must be a pointer, or nil to discard). Untraced unless the process's
// local sampling period elects the call as a fresh trace root.
func (c *Client) Call(method string, args any, reply any) error {
	return c.CallCtx(context.Background(), method, args, reply)
}

// CallCtx invokes method with args under ctx: the active span (if any)
// gains an "rpc.call:<method>" child whose identity and the context's
// deadline travel in the frame's trace header, and the callee's spans
// attach to it on return. The call-side phases — serialize (args
// encode), network (write through response receipt), decode (reply
// decode) — attribute where the caller's time went.
func (c *Client) CallCtx(ctx context.Context, method string, args any, reply any) (err error) {
	mClientCalls.With(method).Inc()
	op := "rpc.call:" + method
	start := time.Now()

	// Don't send work the callee must reject: a spent deadline fails
	// here, one network round-trip cheaper than the server-side check.
	if ctx != nil {
		if dl, ok := ctx.Deadline(); ok && !start.Before(dl) {
			mDeadlineExceeded.With("client").Inc()
			err := fmt.Errorf("%w (before send of %s)", ErrDeadlineExceeded, method)
			telemetry.RecordErrorSpan(op, start, err)
			return err
		}
	}

	sp, ctx := telemetry.StartSpanCtx(ctx, op)
	defer func() {
		if err != nil {
			sp.SetError(err)
			if sp == nil {
				telemetry.RecordErrorSpan(op, start, err)
			}
		}
		sp.End()
	}()

	endSer := sp.Phase("serialize")
	var argBuf bytes.Buffer
	encErr := gob.NewEncoder(&argBuf).Encode(args)
	endSer()
	if encErr != nil {
		return fmt.Errorf("rpc: encode args: %w", encErr)
	}
	tc := telemetry.OutgoingTrace(ctx, sp)
	id := c.nextID.Add(1)
	ch := make(chan response, 1)
	c.mu.Lock()
	if c.err != nil {
		cerr := c.err
		c.mu.Unlock()
		return fmt.Errorf("rpc: connection lost: %w", cerr)
	}
	c.pending[id] = ch
	c.mu.Unlock()

	endNet := sp.Phase("network")
	c.writeMu.Lock()
	werr := writeFrame(c.conn, &request{
		ID: id, Method: method, Args: argBuf.Bytes(),
		TraceHi: tc.Trace.Hi, TraceLo: tc.Trace.Lo,
		SpanID: tc.SpanID, Deadline: tc.Deadline, Sampled: tc.Sampled,
	})
	c.writeMu.Unlock()
	if werr != nil {
		endNet()
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		return fmt.Errorf("rpc: send: %w", werr)
	}
	resp := <-ch
	endNet()
	sp.AddRemoteSpans(resp.Spans)
	if resp.Err != "" {
		if resp.Err == deadlineErrMsg {
			return fmt.Errorf("%w (server rejected %s on arrival)", ErrDeadlineExceeded, method)
		}
		return errors.New(resp.Err)
	}
	if reply != nil {
		endDec := sp.Phase("decode")
		derr := gob.NewDecoder(bytes.NewReader(resp.Result)).Decode(reply)
		endDec()
		if derr != nil {
			return fmt.Errorf("rpc: decode reply: %w", derr)
		}
	}
	return nil
}

// Close tears down the connection.
func (c *Client) Close() error { return c.conn.Close() }

// DecodeArgs is a helper for handlers.
func DecodeArgs(blob []byte, v any) error {
	return gob.NewDecoder(bytes.NewReader(blob)).Decode(v)
}

// DecodeArgsCtx decodes handler args while attributing the time to the
// active span's decode phase.
func DecodeArgsCtx(ctx context.Context, blob []byte, v any) error {
	defer telemetry.PhaseFromContext(ctx, "decode")()
	return gob.NewDecoder(bytes.NewReader(blob)).Decode(v)
}
