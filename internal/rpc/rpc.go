// Package rpc is a minimal multiplexed RPC layer over TCP used by the
// distributed ZipG deployment (§4.1): length-prefixed frames carrying
// gob-encoded request/response envelopes. Each connection multiplexes
// concurrent in-flight calls by request ID, so one aggregator connection
// per peer suffices for the function-shipping fan-out.
package rpc

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"

	"zipg/internal/telemetry"
)

// maxFrame bounds a single message (64 MiB), protecting servers from
// corrupt length prefixes.
const maxFrame = 64 << 20

// ErrFrameTooLarge is the sentinel matched by errors.Is when a frame's
// length prefix exceeds maxFrame. The error actually returned is a
// *FrameTooLargeError carrying the offending size.
var ErrFrameTooLarge = errors.New("rpc: frame exceeds maximum size")

// FrameTooLargeError reports an oversized frame: the advertised size
// and the limit it broke. errors.Is(err, ErrFrameTooLarge) matches it.
type FrameTooLargeError struct {
	Size  uint32
	Limit uint32
}

// Error implements error.
func (e *FrameTooLargeError) Error() string {
	return fmt.Sprintf("rpc: frame of %d bytes exceeds %d-byte limit", e.Size, e.Limit)
}

// Is matches the ErrFrameTooLarge sentinel.
func (e *FrameTooLargeError) Is(target error) bool { return target == ErrFrameTooLarge }

// Telemetry series for the RPC layer. Per-method series materialize on
// first use.
var (
	mCalls = telemetry.NewCounterVec("zipg_rpc_calls_total", "method",
		"RPC requests served, by method.")
	mLatency = telemetry.NewHistogramVec("zipg_rpc_latency_ns", "method",
		"Server-side RPC handling latency in nanoseconds, by method.")
	mClientCalls = telemetry.NewCounterVec("zipg_rpc_client_calls_total", "method",
		"Client-side RPC calls issued, by method.")
	mInflight = telemetry.NewGauge("zipg_rpc_inflight",
		"RPC requests currently being served.")
	mFrameBytesRead = telemetry.NewCounterL("zipg_rpc_frame_bytes_total", `dir="read"`,
		"Frame bytes moved (header + payload), by direction.")
	mFrameBytesWritten = telemetry.NewCounterL("zipg_rpc_frame_bytes_total", `dir="write"`,
		"Frame bytes moved (header + payload), by direction.")
	mErrors = telemetry.NewCounterVec("zipg_rpc_errors_total", "kind",
		"RPC-layer errors, by kind.")
)

// request is the wire envelope for calls.
type request struct {
	ID     uint64
	Method string
	Args   []byte
}

// response is the wire envelope for results.
type response struct {
	ID     uint64
	Err    string
	Result []byte
}

// writeFrame sends one length-prefixed gob blob.
func writeFrame(w io.Writer, v any) error {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return err
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(buf.Len()))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(buf.Bytes())
	if err == nil {
		mFrameBytesWritten.Add(int64(4 + buf.Len()))
	}
	return err
}

// readFrame receives one length-prefixed gob blob into v.
func readFrame(r io.Reader, v any) error {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrame {
		return &FrameTooLargeError{Size: n, Limit: maxFrame}
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return err
	}
	mFrameBytesRead.Add(int64(4 + n))
	return gob.NewDecoder(bytes.NewReader(buf)).Decode(v)
}

// Handler serves one method: decode args from the blob, return a result
// to encode.
type Handler func(args []byte) (any, error)

// Server dispatches framed requests to registered handlers.
type Server struct {
	mu       sync.RWMutex
	handlers map[string]Handler
	conns    map[net.Conn]bool
	ln       net.Listener
	wg       sync.WaitGroup
	closed   atomic.Bool
}

// NewServer returns an empty server.
func NewServer() *Server {
	return &Server{handlers: make(map[string]Handler), conns: make(map[net.Conn]bool)}
}

// Handle registers a method. Must be called before Serve.
func (s *Server) Handle(method string, h Handler) {
	s.mu.Lock()
	s.handlers[method] = h
	s.mu.Unlock()
}

// Listen binds the server to addr (e.g. "127.0.0.1:0") and starts
// serving in the background. It returns the bound address.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.ln = ln
	s.wg.Add(1)
	go s.acceptLoop()
	return ln.Addr().String(), nil
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer conn.Close()
	s.mu.Lock()
	if s.closed.Load() {
		s.mu.Unlock()
		return
	}
	s.conns[conn] = true
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	var writeMu sync.Mutex
	for {
		var req request
		if err := readFrame(conn, &req); err != nil {
			// The server-side read path counts oversized frames; other
			// read errors here are routine connection teardown.
			if errors.Is(err, ErrFrameTooLarge) {
				mErrors.With("frame_too_large_server").Inc()
			}
			return
		}
		s.mu.RLock()
		h := s.handlers[req.Method]
		s.mu.RUnlock()
		// Serve each request concurrently: aggregator fan-outs depend on
		// it (a server may call back into its own peers mid-request).
		s.wg.Add(1)
		go func(req request) {
			defer s.wg.Done()
			mInflight.Inc()
			defer mInflight.Dec()
			mCalls.With(req.Method).Inc()
			tm := telemetry.StartTimer()
			resp := response{ID: req.ID}
			if h == nil {
				resp.Err = fmt.Sprintf("rpc: unknown method %q", req.Method)
				mErrors.With("unknown_method").Inc()
			} else if result, err := h(req.Args); err != nil {
				resp.Err = err.Error()
				mErrors.With("handler").Inc()
			} else {
				var buf bytes.Buffer
				if err := gob.NewEncoder(&buf).Encode(result); err != nil {
					resp.Err = fmt.Sprintf("rpc: encode result: %v", err)
					mErrors.With("encode").Inc()
				} else {
					resp.Result = buf.Bytes()
				}
			}
			tm.ObserveInto(mLatency.With(req.Method))
			writeMu.Lock()
			err := writeFrame(conn, &resp)
			writeMu.Unlock()
			if err != nil {
				conn.Close()
			}
		}(req)
	}
}

// Close stops the server, closes open connections (unblocking their
// readers), and waits for in-flight work.
func (s *Server) Close() {
	if s.closed.Swap(true) {
		return
	}
	if s.ln != nil {
		s.ln.Close()
	}
	s.mu.Lock()
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
}

// Client is a multiplexed connection to one server. Safe for concurrent
// use.
type Client struct {
	conn    net.Conn
	writeMu sync.Mutex
	nextID  atomic.Uint64

	mu      sync.Mutex
	pending map[uint64]chan response
	err     error
}

// Dial connects to a server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &Client{conn: conn, pending: make(map[uint64]chan response)}
	go c.readLoop()
	return c, nil
}

func (c *Client) readLoop() {
	for {
		var resp response
		if err := readFrame(c.conn, &resp); err != nil {
			// The client-side read path also counts oversized frames.
			if errors.Is(err, ErrFrameTooLarge) {
				mErrors.With("frame_too_large_client").Inc()
			}
			c.mu.Lock()
			c.err = err
			for id, ch := range c.pending {
				ch <- response{ID: id, Err: fmt.Sprintf("rpc: connection lost: %v", err)}
				delete(c.pending, id)
			}
			c.mu.Unlock()
			return
		}
		c.mu.Lock()
		ch := c.pending[resp.ID]
		delete(c.pending, resp.ID)
		c.mu.Unlock()
		if ch != nil {
			ch <- resp
		}
	}
}

// Call invokes method with args, decoding the result into reply (which
// must be a pointer, or nil to discard).
func (c *Client) Call(method string, args any, reply any) error {
	mClientCalls.With(method).Inc()
	var argBuf bytes.Buffer
	if err := gob.NewEncoder(&argBuf).Encode(args); err != nil {
		return fmt.Errorf("rpc: encode args: %w", err)
	}
	id := c.nextID.Add(1)
	ch := make(chan response, 1)
	c.mu.Lock()
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		return fmt.Errorf("rpc: connection lost: %w", err)
	}
	c.pending[id] = ch
	c.mu.Unlock()

	c.writeMu.Lock()
	err := writeFrame(c.conn, &request{ID: id, Method: method, Args: argBuf.Bytes()})
	c.writeMu.Unlock()
	if err != nil {
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		return fmt.Errorf("rpc: send: %w", err)
	}
	resp := <-ch
	if resp.Err != "" {
		return errors.New(resp.Err)
	}
	if reply != nil {
		if err := gob.NewDecoder(bytes.NewReader(resp.Result)).Decode(reply); err != nil {
			return fmt.Errorf("rpc: decode reply: %w", err)
		}
	}
	return nil
}

// Close tears down the connection.
func (c *Client) Close() error { return c.conn.Close() }

// DecodeArgs is a helper for handlers.
func DecodeArgs(blob []byte, v any) error {
	return gob.NewDecoder(bytes.NewReader(blob)).Decode(v)
}
