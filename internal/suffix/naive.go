package suffix

import "sort"

// NaiveArray computes the suffix array by direct comparison sort. It uses
// the same sentinel convention as Array and exists purely as a reference
// implementation for differential tests; it is O(n^2 log n) in the worst
// case and must not be used on large inputs.
func NaiveArray(text []byte) []int32 {
	n := len(text) + 1
	sa := make([]int32, n)
	for i := range sa {
		sa[i] = int32(i)
	}
	sort.Slice(sa, func(x, y int) bool {
		a, b := sa[x], sa[y]
		// The sentinel suffix (position n-1) is smaller than everything.
		sufA, sufB := text[a:], text[b:]
		for k := 0; k < len(sufA) && k < len(sufB); k++ {
			if sufA[k] != sufB[k] {
				return sufA[k] < sufB[k]
			}
		}
		return len(sufA) < len(sufB)
	})
	return sa
}
