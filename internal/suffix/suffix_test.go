package suffix

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func checkAgainstNaive(t *testing.T, text []byte) {
	t.Helper()
	got := Array(text)
	want := NaiveArray(text)
	if len(got) != len(want) {
		t.Fatalf("len mismatch for %q: got %d, want %d", text, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("SA mismatch for %q at %d: got %v, want %v", text, i, got, want)
		}
	}
}

func TestArrayKnown(t *testing.T) {
	// Classic example: banana. Suffix order with sentinel:
	// "", a, ana, anana, banana, na, nana.
	got := Array([]byte("banana"))
	want := []int32{6, 5, 3, 1, 0, 4, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("banana SA = %v, want %v", got, want)
		}
	}
}

func TestArraySmall(t *testing.T) {
	cases := []string{
		"", "a", "aa", "ab", "ba", "aaa", "abab", "mississippi",
		"abracadabra", "zzzzzzzz", "abcabcabc", "cacao",
	}
	for _, c := range cases {
		checkAgainstNaive(t, []byte(c))
	}
}

func TestArrayWithZeroBytes(t *testing.T) {
	// The text may legitimately contain 0x00; the sentinel must still sort
	// below it.
	checkAgainstNaive(t, []byte{0, 1, 0, 2, 0, 0, 3})
	checkAgainstNaive(t, []byte{0, 0, 0})
	checkAgainstNaive(t, []byte{255, 0, 255, 0})
}

func TestArrayRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(500)
		sigma := 1 + rng.Intn(8)
		text := make([]byte, n)
		for i := range text {
			text[i] = byte('a' + rng.Intn(sigma))
		}
		checkAgainstNaive(t, text)
	}
}

func TestArrayRandomFullAlphabet(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 20; trial++ {
		text := make([]byte, 300+rng.Intn(300))
		rng.Read(text)
		checkAgainstNaive(t, text)
	}
}

func TestArrayIsPermutationAndSorted(t *testing.T) {
	// Property: Array returns a permutation of [0,n] whose suffixes are in
	// strictly increasing order.
	f := func(text []byte) bool {
		if len(text) > 2000 {
			text = text[:2000]
		}
		sa := Array(text)
		n := len(text) + 1
		seen := make([]bool, n)
		for _, p := range sa {
			if p < 0 || int(p) >= n || seen[p] {
				return false
			}
			seen[p] = true
		}
		for i := 1; i < n; i++ {
			a, b := text[sa[i-1]:], text[sa[i]:]
			if c := bytes.Compare(a, b); c > 0 || (c == 0 && len(a) >= len(b)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestArrayLargeRepetitive(t *testing.T) {
	// Highly repetitive input exercises deep SA-IS recursion.
	text := bytes.Repeat([]byte("abcabd"), 5000)
	sa := Array(text)
	n := len(text) + 1
	if len(sa) != n {
		t.Fatalf("len = %d, want %d", len(sa), n)
	}
	// Spot check sortedness at random positions rather than O(n^2) full check.
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 2000; trial++ {
		i := 1 + rng.Intn(n-1)
		a, b := text[sa[i-1]:], text[sa[i]:]
		limit := 50
		if len(a) < limit {
			limit = len(a)
		}
		if len(b) < limit {
			limit = len(b)
		}
		if c := bytes.Compare(a[:limit], b[:limit]); c > 0 {
			t.Fatalf("unsorted at %d", i)
		}
	}
}

func BenchmarkArray1MB(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	text := make([]byte, 1<<20)
	for i := range text {
		text[i] = byte('a' + rng.Intn(26))
	}
	b.ResetTimer()
	b.SetBytes(int64(len(text)))
	for i := 0; i < b.N; i++ {
		Array(text)
	}
}
