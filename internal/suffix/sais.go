// Package suffix implements suffix-array construction. The production
// path is SA-IS (Nong, Zhang, Chan 2009), which runs in linear time and
// is what makes building the succinct representation of multi-megabyte
// NodeFiles and EdgeFiles practical. A naive O(n^2 log n) reference
// implementation is provided for differential testing.
package suffix

// Array computes the suffix array of text. The returned slice sa has
// length len(text)+1: position 0 corresponds to the implicit empty
// suffix/sentinel, mirroring the convention of the succinct literature
// where a unique smallest sentinel terminates the text. text may contain
// any byte values including 0; the sentinel is logically smaller than
// every byte.
func Array(text []byte) []int32 {
	n := len(text) + 1
	s := make([]int32, n)
	for i, c := range text {
		// Shift byte values by 1 so the sentinel can be 0 even when the
		// text itself contains zero bytes.
		s[i] = int32(c) + 1
	}
	s[n-1] = 0
	return saIS(s, 257)
}

// saIS computes the suffix array of s, whose values lie in [0, sigma) and
// whose last element is a unique 0 (the sentinel).
func saIS(s []int32, sigma int) []int32 {
	n := len(s)
	sa := make([]int32, n)
	if n == 1 {
		sa[0] = 0
		return sa
	}
	if n == 2 {
		sa[0], sa[1] = 1, 0
		return sa
	}

	// Classify each position as S-type (true) or L-type (false).
	sType := make([]bool, n)
	sType[n-1] = true
	for i := n - 2; i >= 0; i-- {
		sType[i] = s[i] < s[i+1] || (s[i] == s[i+1] && sType[i+1])
	}
	isLMS := func(i int) bool { return i > 0 && sType[i] && !sType[i-1] }

	bktSize := make([]int32, sigma)
	for _, c := range s {
		bktSize[c]++
	}
	bktHead := make([]int32, sigma)
	bktTail := make([]int32, sigma)
	resetBuckets := func() {
		var sum int32
		for c := 0; c < sigma; c++ {
			bktHead[c] = sum
			sum += bktSize[c]
			bktTail[c] = sum
		}
	}

	// induce sorts all suffixes given the LMS suffixes already placed at
	// their bucket tails in sa (remaining entries are -1).
	induce := func() {
		// Induce L-type suffixes left to right.
		resetBuckets()
		for i := 0; i < n; i++ {
			j := sa[i]
			if j <= 0 {
				continue
			}
			if !sType[j-1] {
				c := s[j-1]
				sa[bktHead[c]] = j - 1
				bktHead[c]++
			}
		}
		// Induce S-type suffixes right to left.
		resetBuckets()
		for i := n - 1; i >= 0; i-- {
			j := sa[i]
			if j <= 0 {
				continue
			}
			if sType[j-1] {
				c := s[j-1]
				bktTail[c]--
				sa[bktTail[c]] = j - 1
			}
		}
	}

	// Pass 1: place LMS positions at bucket tails in text order, induce to
	// obtain the relative order of LMS substrings.
	for i := range sa {
		sa[i] = -1
	}
	resetBuckets()
	for i := n - 1; i >= 0; i-- {
		if isLMS(i) {
			c := s[i]
			bktTail[c]--
			sa[bktTail[c]] = int32(i)
		}
	}
	induce()

	// Collect LMS suffixes in their induced order and name the LMS
	// substrings.
	nLMS := 0
	for i := 1; i < n; i++ {
		if isLMS(i) {
			nLMS++
		}
	}
	sortedLMS := make([]int32, 0, nLMS)
	for _, j := range sa {
		if j > 0 && isLMS(int(j)) {
			sortedLMS = append(sortedLMS, j)
		}
	}
	// names[i] is the rank of the LMS substring starting at text position
	// i (only valid for LMS positions).
	names := make([]int32, n)
	for i := range names {
		names[i] = -1
	}
	name := int32(0)
	var prev int32 = -1
	for _, cur := range sortedLMS {
		if prev >= 0 && !lmsEqual(s, sType, isLMS, int(prev), int(cur)) {
			name++
		}
		names[cur] = name
		prev = cur
	}
	numNames := int(name) + 1

	// Build the reduced problem: LMS substrings in text order, replaced by
	// their names.
	reduced := make([]int32, 0, nLMS)
	lmsPos := make([]int32, 0, nLMS)
	for i := 1; i < n; i++ {
		if isLMS(i) {
			reduced = append(reduced, names[i])
			lmsPos = append(lmsPos, int32(i))
		}
	}

	var lmsOrder []int32
	if numNames == nLMS {
		// All names unique: the induced order is already the suffix order.
		lmsOrder = sortedLMS
	} else {
		// Recurse on the reduced string (its last element is the sentinel's
		// LMS substring, which is the unique minimum by construction).
		subSA := saIS(reduced, numNames)
		lmsOrder = make([]int32, nLMS)
		for i, r := range subSA {
			lmsOrder[i] = lmsPos[r]
		}
	}

	// Pass 2: place the now fully sorted LMS suffixes at bucket tails and
	// induce the final suffix array.
	for i := range sa {
		sa[i] = -1
	}
	resetBuckets()
	for i := nLMS - 1; i >= 0; i-- {
		j := lmsOrder[i]
		c := s[j]
		bktTail[c]--
		sa[bktTail[c]] = j
	}
	induce()
	return sa
}

// lmsEqual reports whether the LMS substrings starting at a and b are
// identical (same characters and same types up to and including the next
// LMS position).
func lmsEqual(s []int32, sType []bool, isLMS func(int) bool, a, b int) bool {
	n := len(s)
	if a == n-1 || b == n-1 {
		return a == b
	}
	for i := 0; ; i++ {
		aEnd := isLMS(a + i)
		bEnd := isLMS(b + i)
		if i > 0 && aEnd && bEnd {
			return true
		}
		if aEnd != bEnd {
			return false
		}
		if s[a+i] != s[b+i] || sType[a+i] != sType[b+i] {
			return false
		}
		if a+i+1 >= n || b+i+1 >= n {
			return false
		}
	}
}
