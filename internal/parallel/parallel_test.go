package parallel

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"zipg/internal/telemetry"
)

func TestMapOrdered(t *testing.T) {
	for _, w := range []int{1, 2, 3, 8} {
		prev := SetWorkers(w)
		got := Map("test", 100, func(i int) int { return i * i })
		SetWorkers(prev)
		if len(got) != 100 {
			t.Fatalf("workers=%d: len = %d", w, len(got))
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: got[%d] = %d, want %d", w, i, v, i*i)
			}
		}
	}
}

func TestMapRunsEveryTaskOnce(t *testing.T) {
	prev := SetWorkers(4)
	defer SetWorkers(prev)
	var counts [256]atomic.Int32
	Do("test", len(counts), func(i int) { counts[i].Add(1) })
	for i := range counts {
		if n := counts[i].Load(); n != 1 {
			t.Fatalf("task %d ran %d times", i, n)
		}
	}
}

func TestMapErrFirstErrorByIndex(t *testing.T) {
	prev := SetWorkers(4)
	defer SetWorkers(prev)
	e3, e7 := errors.New("task 3"), errors.New("task 7")
	_, err := MapErr("test", 10, func(i int) (int, error) {
		switch i {
		case 3:
			return 0, e3
		case 7:
			return 0, e7
		}
		return i, nil
	})
	if err != e3 {
		t.Fatalf("err = %v, want the lowest-index error %v", err, e3)
	}
	out, err := MapErr("test", 10, func(i int) (int, error) { return i, nil })
	if err != nil || len(out) != 10 || out[9] != 9 {
		t.Fatalf("clean MapErr = %v, %v", out, err)
	}
}

func TestSetWorkersDefaultsToGOMAXPROCS(t *testing.T) {
	prev := SetWorkers(0)
	defer SetWorkers(prev)
	if got, want := Workers(), runtime.GOMAXPROCS(0); got != want {
		t.Fatalf("Workers() = %d, want GOMAXPROCS = %d", got, want)
	}
	if SetWorkers(5) != runtime.GOMAXPROCS(0) {
		t.Fatal("SetWorkers did not return previous size")
	}
	if Workers() != 5 {
		t.Fatalf("Workers() = %d after SetWorkers(5)", Workers())
	}
}

// TestNestedMapNoDeadlock exercises the nesting that happens in
// production: a cluster subquery task calls FindNodes which fans out
// again. Helper tokens are borrowed non-blockingly, so inner Maps run
// (possibly sequentially) instead of waiting on the drained pool.
func TestNestedMapNoDeadlock(t *testing.T) {
	prev := SetWorkers(2)
	defer SetWorkers(prev)
	done := make(chan []int, 1)
	go func() {
		done <- Map("outer", 8, func(i int) int {
			inner := Map("inner", 8, func(j int) int { return i*8 + j })
			sum := 0
			for _, v := range inner {
				sum += v
			}
			return sum
		})
	}()
	select {
	case out := <-done:
		for i, v := range out {
			want := 0
			for j := 0; j < 8; j++ {
				want += i*8 + j
			}
			if v != want {
				t.Fatalf("out[%d] = %d, want %d", i, v, want)
			}
		}
	case <-time.After(30 * time.Second):
		t.Fatal("nested Map deadlocked")
	}
}

// TestConcurrentMapsShareTokens hammers the pool from many goroutines;
// afterwards every token must be back (a follow-up Map can still borrow
// helpers) and the gauges must read zero.
func TestConcurrentMapsShareTokens(t *testing.T) {
	prev := SetWorkers(4)
	defer SetWorkers(prev)
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < 50; r++ {
				out := Map(fmt.Sprintf("g%d", g%4), 17, func(i int) int { return i })
				if len(out) != 17 || out[16] != 16 {
					t.Errorf("bad result %v", out)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if n := mInflight.Value(); n != 0 {
		t.Fatalf("inflight gauge = %d after quiesce", n)
	}
	if n := mQueueDepth.Value(); n != 0 {
		t.Fatalf("queue depth gauge = %d after quiesce", n)
	}
	p := cur.Load()
	if got := len(p.tokens); got != p.size-1 {
		t.Fatalf("pool leaked tokens: %d of %d returned", got, p.size-1)
	}
}

func TestTelemetryCounters(t *testing.T) {
	prev := SetWorkers(2)
	defer SetWorkers(prev)
	was := telemetry.SetEnabled(true)
	defer telemetry.SetEnabled(was)
	before := telemetry.TakeSnapshot()
	Do("counter-test", 12, func(i int) { time.Sleep(time.Millisecond) })
	d := telemetry.Delta(before, telemetry.TakeSnapshot())
	if got := d[`zipg_parallel_tasks_total{layer="counter-test"}`]; got != 12 {
		t.Fatalf("tasks counter delta = %v, want 12", got)
	}
	if got := d[`zipg_parallel_maps_total{layer="counter-test"}`]; got != 1 {
		t.Fatalf("maps counter delta = %v, want 1", got)
	}
	if d[`zipg_parallel_task_ns_total{layer="counter-test"}`] <= 0 ||
		d[`zipg_parallel_wall_ns_total{layer="counter-test"}`] <= 0 {
		t.Fatal("task/wall ns counters did not advance")
	}
}

func TestDoZeroAndOne(t *testing.T) {
	Do("test", 0, func(i int) { t.Fatal("ran a task for n=0") })
	ran := false
	Do("test", 1, func(i int) { ran = i == 0 })
	if !ran {
		t.Fatal("n=1 did not run task 0")
	}
}
