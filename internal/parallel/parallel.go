// Package parallel is ZipG's shared intra-store execution pool: one
// process-wide, bounded set of worker tokens (sized from GOMAXPROCS,
// overridable with SetWorkers) behind an ordered fan-out/fan-in
// primitive. Every multi-fragment operation in the store — get_node_ids
// and edge search across primaries + frozen generations + the LogStore,
// multi-shard compression, the cluster aggregator's local subqueries —
// fans its per-fragment work through Map, which is what lets a query
// touch many compressed fragments without leaving cores idle (the
// paper's aggregator parallelism, §3.4/§4.1).
//
// Design constraints, in order:
//
//   - Determinism: Map returns results in task-index order no matter how
//     many workers ran or how they interleaved. Callers get byte-identical
//     results at 1 worker and at NumCPU.
//   - No deadlocks under nesting: a task may itself call Map (a cluster
//     subquery runs FindNodes which fans out again). The calling
//     goroutine always executes tasks itself and extra workers are
//     borrowed non-blockingly from the shared token pool, so a saturated
//     pool degrades to sequential execution instead of waiting.
//   - Bounded: helper goroutines across all concurrent Map calls never
//     exceed Workers()-1, so a query burst cannot pile up unbounded
//     goroutines on top of the RPC layer's own concurrency.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"zipg/internal/telemetry"
)

// Pool telemetry: instantaneous utilization for /metrics plus per-layer
// task/wall counters from which the exporter-side speedup of each
// fan-out site (task_ns / wall_ns) can be read.
var (
	mWorkers = telemetry.NewGauge("zipg_parallel_workers",
		"Configured worker-pool size (GOMAXPROCS unless overridden).")
	mInflight = telemetry.NewGauge("zipg_parallel_tasks_inflight",
		"Fan-out tasks currently executing.")
	mQueueDepth = telemetry.NewGauge("zipg_parallel_queue_depth",
		"Fan-out tasks submitted but not yet started.")
	mMaps = telemetry.NewCounterVec("zipg_parallel_maps_total", "layer",
		"Fan-out operations, by call site.")
	mTasks = telemetry.NewCounterVec("zipg_parallel_tasks_total", "layer",
		"Fan-out tasks executed, by call site.")
	mTaskNs = telemetry.NewCounterVec("zipg_parallel_task_ns_total", "layer",
		"Summed per-task CPU-side nanoseconds, by call site (divide by wall_ns for the achieved speedup).")
	mWallNs = telemetry.NewCounterVec("zipg_parallel_wall_ns_total", "layer",
		"Wall-clock nanoseconds spent inside fan-outs, by call site.")
)

// pool is one immutable pool configuration. SetWorkers swaps the whole
// struct atomically; helpers return their token to the pool they
// borrowed it from, so a resize never corrupts accounting.
type pool struct {
	size   int
	tokens chan struct{} // capacity size-1: the caller is worker zero
}

var cur atomic.Pointer[pool]

func init() { SetWorkers(0) }

// Workers returns the current pool size (the maximum number of
// goroutines, caller included, one Map will use).
func Workers() int { return cur.Load().size }

// SetWorkers resizes the shared pool and returns the previous size.
// n <= 0 resets to runtime.GOMAXPROCS(0). In-flight fan-outs finish on
// the pool they started with; new fan-outs see the new size.
func SetWorkers(n int) int {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	prev := 0
	if p := cur.Load(); p != nil {
		prev = p.size
	}
	p := &pool{size: n, tokens: make(chan struct{}, n-1)}
	for i := 0; i < n-1; i++ {
		p.tokens <- struct{}{}
	}
	cur.Store(p)
	mWorkers.Set(int64(n))
	return prev
}

// Do runs fn(0) … fn(n-1), distributing tasks over the calling
// goroutine plus up to Workers()-1 borrowed helpers, and returns when
// all tasks have finished. layer labels the call site in telemetry.
func Do(layer string, n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	p := cur.Load()
	if n == 1 || p.size == 1 {
		// Sequential fallback: no goroutines, no gauge churn. This is
		// also the GOMAXPROCS=1 path, so it must stay semantically
		// identical to the fan-out below (it is: same fn, same order).
		tel := telemetry.Enabled()
		var tm telemetry.Timer
		if tel {
			mMaps.With(layer).Inc()
			mTasks.With(layer).Add(int64(n))
			tm = telemetry.StartTimer()
		}
		for i := 0; i < n; i++ {
			fn(i)
		}
		if tel {
			ns := int64(tm.Elapsed())
			mTaskNs.With(layer).Add(ns)
			mWallNs.With(layer).Add(ns)
		}
		return
	}

	tel := telemetry.Enabled()
	var wallTm telemetry.Timer
	if tel {
		mMaps.With(layer).Inc()
		mTasks.With(layer).Add(int64(n))
		wallTm = telemetry.StartTimer()
	}
	mQueueDepth.Add(int64(n))
	var next atomic.Int64
	var taskNs atomic.Int64
	run := func() {
		for {
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			mQueueDepth.Dec()
			mInflight.Inc()
			if tel {
				start := time.Now()
				fn(i)
				taskNs.Add(int64(time.Since(start)))
			} else {
				fn(i)
			}
			mInflight.Dec()
		}
	}

	// Borrow helpers without blocking: if the pool is drained (other
	// fan-outs, or we are nested inside one), the caller just does the
	// work itself — guaranteed progress, no deadlock.
	want := n - 1
	if m := p.size - 1; want > m {
		want = m
	}
	var wg sync.WaitGroup
borrow:
	for h := 0; h < want; h++ {
		select {
		case <-p.tokens:
		default:
			break borrow // pool drained; the caller works alone
		}
		wg.Add(1)
		go func() {
			defer func() {
				p.tokens <- struct{}{}
				wg.Done()
			}()
			run()
		}()
	}
	run()
	wg.Wait()
	if tel {
		mTaskNs.With(layer).Add(taskNs.Load())
		mWallNs.With(layer).Add(int64(wallTm.Elapsed()))
	}
}

// Map runs fn(0) … fn(n-1) on the shared pool and returns the results
// in index order — deterministic regardless of worker count or
// scheduling. layer labels the call site in telemetry.
func Map[T any](layer string, n int, fn func(i int) T) []T {
	out := make([]T, n)
	Do(layer, n, func(i int) { out[i] = fn(i) })
	return out
}

// MapErr is Map for fallible tasks. All n tasks run; the reported error
// is the lowest-index one (deterministic across worker counts). On
// error the results are discarded.
func MapErr[T any](layer string, n int, fn func(i int) (T, error)) ([]T, error) {
	errs := make([]error, n)
	out := make([]T, n)
	Do(layer, n, func(i int) { out[i], errs[i] = fn(i) })
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
