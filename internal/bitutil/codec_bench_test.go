package bitutil

import (
	"fmt"
	"math/rand"
	"testing"
)

// benchCodecVals builds the Ψ-shaped monotone sequence the codecs are
// tuned for: long runs of +1 deltas with occasional large jumps.
func benchCodecVals(n int) []uint64 {
	rng := rand.New(rand.NewSource(42))
	vals := make([]uint64, n)
	var v uint64
	for i := range vals {
		if rng.Intn(64) == 0 {
			v += uint64(rng.Intn(1 << 20))
		} else {
			v++
		}
		vals[i] = v
	}
	return vals
}

// BenchmarkCodecEncode measures per-codec encode cost — what the auto
// policy's trial pass pays per candidate at build/compact time.
func BenchmarkCodecEncode(b *testing.B) {
	vals := benchCodecVals(1 << 14)
	for _, c := range AllCodecs() {
		b.Run(c.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if s := c.Encode(vals, true, 0); s == nil {
					b.Fatal("encode declined")
				}
			}
		})
	}
}

// BenchmarkCodecGet measures random access per codec: the inner
// operation of every Ψ step on the extract/search path.
func BenchmarkCodecGet(b *testing.B) {
	vals := benchCodecVals(1 << 14)
	idx := make([]int, 1024)
	rng := rand.New(rand.NewSource(7))
	for i := range idx {
		idx[i] = rng.Intn(len(vals))
	}
	for _, c := range AllCodecs() {
		s := c.Encode(vals, true, 0)
		b.Run(c.Name(), func(b *testing.B) {
			var sink uint64
			for i := 0; i < b.N; i++ {
				sink += s.Get(idx[i%len(idx)])
			}
			_ = sink
		})
	}
}

// BenchmarkCodecDecodeBlock measures block decode per codec: the unit
// the streaming cursor and the batch kernels' block cache consume.
func BenchmarkCodecDecodeBlock(b *testing.B) {
	vals := benchCodecVals(1 << 14)
	blocks := len(vals) / SeqBlockSize
	for _, c := range AllCodecs() {
		s := c.Encode(vals, true, 0)
		b.Run(c.Name(), func(b *testing.B) {
			var blk [SeqBlockSize]uint64
			var sink uint64
			for i := 0; i < b.N; i++ {
				s.DecodeBlockInto(i%blocks, &blk)
				sink += blk[0]
			}
			_ = sink
		})
	}
}

// BenchmarkCodecSearchGE measures the backward-search probe per codec.
func BenchmarkCodecSearchGE(b *testing.B) {
	vals := benchCodecVals(1 << 14)
	last := vals[len(vals)-1]
	rng := rand.New(rand.NewSource(9))
	targets := make([]uint64, 1024)
	for i := range targets {
		targets[i] = uint64(rng.Int63n(int64(last)))
	}
	for _, c := range AllCodecs() {
		s := c.Encode(vals, true, 0)
		b.Run(c.Name(), func(b *testing.B) {
			var sink int
			for i := 0; i < b.N; i++ {
				sink += s.SearchGE(0, s.Len(), targets[i%len(targets)])
			}
			_ = sink
		})
	}
}

// BenchmarkChooseCodec measures the full trial-and-select pass over
// region sizes spanning small offset vectors to Ψ bucket blocks.
func BenchmarkChooseCodec(b *testing.B) {
	for _, n := range []int{1 << 8, 1 << 14} {
		vals := benchCodecVals(n)
		b.Run(fmt.Sprintf("n%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if s, _ := ChooseCodec(vals, true, 0); s == nil {
					b.Fatal("no codec chosen")
				}
			}
		})
	}
}
