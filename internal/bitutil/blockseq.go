package bitutil

import (
	"encoding/binary"
	"fmt"
)

// blockSeq is the shared container for the simple8b and varint codecs:
// the sequence is cut into SeqBlockSize-element blocks, each encoded
// independently into one byte payload, with a packed offset table
// locating every block. Monotone sequences store one absolute anchor
// per block and encode the in-block deltas; raw sequences encode the
// values directly. Block granularity keeps random access O(1 block
// decode) and lets the streaming cursor and batch decoded-block cache
// treat every codec identically.
type blockSeq struct {
	id      CodecID
	mono    bool
	n       int
	anchors *PackedVector // mono only: absolute value at each block start
	offs    *PackedVector // byte offset of each block's payload; nblocks+1 entries
	payload []byte
}

// newBlockSeq encodes vals block by block with the codec's per-block
// encoder. Returns nil if any block is unrepresentable (simple8b with a
// delta >= 2^60).
func newBlockSeq(id CodecID, vals []uint64, mono bool) *blockSeq {
	n := len(vals)
	nblocks := (n + SeqBlockSize - 1) / SeqBlockSize
	var anchorVals []uint64
	if mono {
		anchorVals = make([]uint64, nblocks)
	}
	offs := make([]uint64, nblocks+1)
	payload := make([]byte, 0, n) // varint lower bound; grows as needed
	var deltas [SeqBlockSize]uint64
	ok := true
	for b := 0; b < nblocks; b++ {
		start := b * SeqBlockSize
		end := start + SeqBlockSize
		if end > n {
			end = n
		}
		var toEnc []uint64
		if mono {
			anchorVals[b] = vals[start]
			d := deltas[:0]
			for i := start + 1; i < end; i++ {
				if vals[i] < vals[i-1] {
					panic(fmt.Sprintf("bitutil: sequence not monotone at %d: %d < %d", i, vals[i], vals[i-1]))
				}
				d = append(d, vals[i]-vals[i-1])
			}
			toEnc = d
		} else {
			toEnc = vals[start:end]
		}
		if id == CodecSimple8b {
			payload, ok = s8bAppendBlock(payload, toEnc)
		} else {
			payload, ok = varintAppendBlock(payload, toEnc)
		}
		if !ok {
			return nil
		}
		offs[b+1] = uint64(len(payload))
	}
	return &blockSeq{
		id:      id,
		mono:    mono,
		n:       n,
		anchors: PackSlice(anchorVals),
		offs:    PackSlice(offs),
		payload: payload,
	}
}

// Len returns the number of elements.
func (bs *blockSeq) Len() int { return bs.n }

// CodecID identifies the producing codec.
func (bs *blockSeq) CodecID() CodecID { return bs.id }

// Monotone reports whether blocks carry anchors and encode deltas.
func (bs *blockSeq) Monotone() bool { return bs.mono }

// decodePayload expands exactly len(out) encoded values from pay.
func (bs *blockSeq) decodePayload(pay []byte, out []uint64) {
	if bs.id == CodecSimple8b {
		s8bDecodeInto(pay, out)
	} else {
		varintDecodeInto(pay, out)
	}
}

// DecodeBlockInto expands block b into dst as absolute values and
// returns the element count (short for the final block).
func (bs *blockSeq) DecodeBlockInto(b int, dst *[SeqBlockSize]uint64) int {
	start := b * SeqBlockSize
	cnt := bs.n - start
	if cnt <= 0 {
		return 0
	}
	if cnt > SeqBlockSize {
		cnt = SeqBlockSize
	}
	pay := bs.payload[bs.offs.Get(b):bs.offs.Get(b+1)]
	if bs.mono {
		dst[0] = bs.anchors.Get(b)
		if cnt > 1 {
			bs.decodePayload(pay, dst[1:cnt])
			for k := 1; k < cnt; k++ {
				dst[k] += dst[k-1]
			}
		}
	} else {
		bs.decodePayload(pay, dst[:cnt])
	}
	return cnt
}

// Get returns element i, decoding one block.
func (bs *blockSeq) Get(i int) uint64 {
	var tmp [SeqBlockSize]uint64
	b := i / SeqBlockSize
	bs.DecodeBlockInto(b, &tmp)
	return tmp[i-b*SeqBlockSize]
}

// DecodeAll appends every element to dst and returns it.
func (bs *blockSeq) DecodeAll(dst []uint64) []uint64 {
	var blk [SeqBlockSize]uint64
	nblocks := (bs.n + SeqBlockSize - 1) / SeqBlockSize
	for b := 0; b < nblocks; b++ {
		cnt := bs.DecodeBlockInto(b, &blk)
		dst = append(dst, blk[:cnt]...)
	}
	return dst
}

// SearchGE returns the smallest index i in [lo, hi) with Get(i) >= target,
// or hi if none. Valid only when the data is non-decreasing. The monotone
// layout binary-searches the O(1) block anchors to isolate the single
// candidate block (the MonotoneVector.SearchGE strategy); the raw layout
// falls back to binary-searching element probes.
func (bs *blockSeq) SearchGE(lo, hi int, target uint64) int {
	if lo >= hi {
		return lo
	}
	if !bs.mono {
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if bs.Get(mid) >= target {
				hi = mid
			} else {
				lo = mid + 1
			}
		}
		return lo
	}
	b0 := lo / SeqBlockSize
	b1 := (hi - 1) / SeqBlockSize
	loB, hiB := b0+1, b1+1
	for loB < hiB {
		mid := int(uint(loB+hiB) >> 1)
		if bs.anchors.Get(mid) >= target {
			hiB = mid
		} else {
			loB = mid + 1
		}
	}
	bb := loB
	var vals [SeqBlockSize]uint64
	start := (bb - 1) * SeqBlockSize
	cnt := bs.DecodeBlockInto(bb-1, &vals)
	from, to := lo, hi
	if from < start {
		from = start
	}
	if to > start+cnt {
		to = start + cnt
	}
	for i := from; i < to; i++ {
		if vals[i-start] >= target {
			return i
		}
	}
	if bb <= b1 {
		return bb * SeqBlockSize
	}
	return hi
}

// SizeBytes returns the in-memory footprint of the payload.
func (bs *blockSeq) SizeBytes() int {
	sz := bs.offs.SizeBytes() + len(bs.payload)
	if bs.mono {
		sz += bs.anchors.SizeBytes()
	}
	return sz
}

// AppendBinary serializes the sequence. Format: n (8 bytes LE), anchors
// (monotone layout only), offsets, payload length (8 bytes LE), payload.
// The codec ID and layout bit live in the AppendSeq tag byte.
func (bs *blockSeq) AppendBinary(buf []byte) []byte {
	buf = binary.LittleEndian.AppendUint64(buf, uint64(bs.n))
	if bs.mono {
		buf = bs.anchors.AppendBinary(buf)
	}
	buf = bs.offs.AppendBinary(buf)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(bs.payload)))
	return append(buf, bs.payload...)
}

// decodeBlockSeq reads a sequence serialized with AppendBinary and
// returns it with the number of bytes consumed.
func decodeBlockSeq(id CodecID, mono bool, buf []byte) (*blockSeq, int, error) {
	if len(buf) < 8 {
		return nil, 0, fmt.Errorf("bitutil: truncated block seq header")
	}
	bs := &blockSeq{id: id, mono: mono, n: int(binary.LittleEndian.Uint64(buf))}
	pos := 8
	var err error
	var k int
	if mono {
		if bs.anchors, k, err = DecodePackedVector(buf[pos:]); err != nil {
			return nil, 0, err
		}
		pos += k
	} else {
		bs.anchors = NewPackedVector(0, 1)
	}
	if bs.offs, k, err = DecodePackedVector(buf[pos:]); err != nil {
		return nil, 0, err
	}
	pos += k
	if len(buf) < pos+8 {
		return nil, 0, fmt.Errorf("bitutil: truncated block seq payload header")
	}
	np := int(binary.LittleEndian.Uint64(buf[pos:]))
	pos += 8
	if len(buf) < pos+np {
		return nil, 0, fmt.Errorf("bitutil: truncated block seq payload")
	}
	bs.payload = append([]byte(nil), buf[pos:pos+np]...)
	pos += np
	return bs, pos, nil
}

// s8bCodec is word-aligned selector packing in the Simple-8b family:
// each 64-bit word carries a 4-bit selector choosing how many values the
// remaining 60 bits hold at a uniform width. A block with one large
// delta among tiny ones pays the wide width only for the word containing
// it, where fixed-width packing pays it for the whole block.
type s8bCodec struct{}

func (s8bCodec) ID() CodecID  { return CodecSimple8b }
func (s8bCodec) Name() string { return "simple8b" }

func (s8bCodec) Encode(vals []uint64, monotone bool, width uint) Seq {
	bs := newBlockSeq(CodecSimple8b, vals, monotone)
	if bs == nil {
		return nil // a value or delta >= 2^60
	}
	return bs
}

// s8bSel is the Simple-8b selector table: selector k means the word's 60
// payload bits hold n values of w bits each. Ordered densest-first so the
// greedy encoder picks the fewest words.
var s8bSel = [16]struct {
	n int
	w uint
}{
	{240, 0}, {120, 0}, {60, 1}, {30, 2}, {20, 3}, {15, 4}, {12, 5}, {10, 6},
	{8, 7}, {7, 8}, {6, 10}, {5, 12}, {4, 15}, {3, 20}, {2, 30}, {1, 60},
}

// s8bFits reports whether every value fits in w bits.
func s8bFits(vals []uint64, w uint) bool {
	if w == 0 {
		for _, v := range vals {
			if v != 0 {
				return false
			}
		}
		return true
	}
	for _, v := range vals {
		if v >= 1<<w {
			return false
		}
	}
	return true
}

// s8bAppendBlock greedily packs vals into 64-bit selector words. A word
// shorter than its selector's capacity is emitted only when it consumes
// the whole tail — the count-driven decoder then stops early, so padding
// never corrupts a mid-stream word. Returns ok=false if a value needs
// more than 60 bits.
func s8bAppendBlock(dst []byte, vals []uint64) ([]byte, bool) {
	for len(vals) > 0 {
		si, take := -1, 0
		for s, sel := range s8bSel {
			k := sel.n
			if k > len(vals) {
				k = len(vals)
			}
			if s8bFits(vals[:k], sel.w) {
				si, take = s, k
				break
			}
		}
		if si < 0 {
			return nil, false
		}
		sel := s8bSel[si]
		word := uint64(si) << 60
		if sel.w > 0 {
			for k := 0; k < take; k++ {
				word |= vals[k] << (uint(k) * sel.w)
			}
		}
		dst = binary.LittleEndian.AppendUint64(dst, word)
		vals = vals[take:]
	}
	return dst, true
}

// s8bDecodeInto expands exactly len(out) values from pay.
func s8bDecodeInto(pay []byte, out []uint64) {
	i := 0
	for i < len(out) {
		word := binary.LittleEndian.Uint64(pay)
		pay = pay[8:]
		sel := s8bSel[word>>60]
		if sel.w == 0 {
			for k := 0; k < sel.n && i < len(out); k++ {
				out[i] = 0
				i++
			}
			continue
		}
		mask := ^uint64(0) >> (64 - sel.w)
		for k := 0; k < sel.n && i < len(out); k++ {
			out[i] = (word >> (uint(k) * sel.w)) & mask
			i++
		}
	}
}

// varintCodec is LEB128 variable-length byte encoding: each value costs
// ceil(bits/7) bytes, so smooth ramps of small deltas approach one byte
// per element without any per-block width commitment.
type varintCodec struct{}

func (varintCodec) ID() CodecID  { return CodecVarint }
func (varintCodec) Name() string { return "varint" }

func (varintCodec) Encode(vals []uint64, monotone bool, width uint) Seq {
	return newBlockSeq(CodecVarint, vals, monotone)
}

// varintAppendBlock appends every value as a LEB128 varint.
func varintAppendBlock(dst []byte, vals []uint64) ([]byte, bool) {
	for _, v := range vals {
		dst = binary.AppendUvarint(dst, v)
	}
	return dst, true
}

// varintDecodeInto expands exactly len(out) values from pay.
func varintDecodeInto(pay []byte, out []uint64) {
	for i := range out {
		v, k := binary.Uvarint(pay)
		out[i] = v
		pay = pay[k:]
	}
}
