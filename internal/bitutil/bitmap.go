package bitutil

import (
	"encoding/binary"
	"fmt"
	"math/bits"
)

// Bitmap is a plain bit set over [0, n) with O(1) rank via per-word
// precomputed prefix counts and O(log n) select. It backs the
// value-sampled suffix array in the succinct store ("is row i sampled,
// and what is its sample rank?") and the deletion bitmaps in ZipG shards.
type Bitmap struct {
	words []uint64
	// rank[i] = number of set bits in words[0:i].
	rank []uint32
	n    int
	ones int
}

// NewBitmap returns an empty bitmap over [0, n).
func NewBitmap(n int) *Bitmap {
	return &Bitmap{words: make([]uint64, (n+63)/64), n: n}
}

// Set sets bit i. Set must not be called after FinishRank.
func (b *Bitmap) Set(i int) {
	if b.rank != nil {
		panic("bitutil: Set after FinishRank")
	}
	b.words[i/64] |= 1 << uint(i%64)
}

// Get reports whether bit i is set.
func (b *Bitmap) Get(i int) bool {
	return b.words[i/64]&(1<<uint(i%64)) != 0
}

// Len returns the size of the domain.
func (b *Bitmap) Len() int { return b.n }

// FinishRank freezes the bitmap and builds the rank index.
func (b *Bitmap) FinishRank() {
	b.rank = make([]uint32, len(b.words)+1)
	total := uint32(0)
	for i, w := range b.words {
		b.rank[i] = total
		total += uint32(popcount(w))
	}
	b.rank[len(b.words)] = total
	b.ones = int(total)
}

// Ones returns the number of set bits. Valid after FinishRank.
func (b *Bitmap) Ones() int { return b.ones }

// Rank1 returns the number of set bits strictly before position i.
// Requires FinishRank.
func (b *Bitmap) Rank1(i int) int {
	if b.rank == nil {
		panic("bitutil: Rank1 before FinishRank")
	}
	word := i / 64
	r := int(b.rank[word])
	if rem := uint(i % 64); rem != 0 {
		r += popcount(b.words[word] & ((1 << rem) - 1))
	}
	return r
}

// Select1 returns the position of the k-th (0-based) set bit.
// Requires FinishRank.
func (b *Bitmap) Select1(k int) int {
	if k < 0 || k >= b.ones {
		panic(fmt.Sprintf("bitutil: select %d out of range [0,%d)", k, b.ones))
	}
	// Binary search on the per-word rank prefix, then scan inside the word.
	lo, hi := 0, len(b.words)
	for lo < hi {
		mid := (lo + hi) / 2
		if int(b.rank[mid+1]) > k {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	w := b.words[lo]
	need := k - int(b.rank[lo])
	for bit := 0; bit < 64; bit++ {
		if w&(1<<uint(bit)) != 0 {
			if need == 0 {
				return lo*64 + bit
			}
			need--
		}
	}
	panic("bitutil: select internal error")
}

// SizeBytes returns the in-memory footprint including the rank index.
func (b *Bitmap) SizeBytes() int { return len(b.words)*8 + len(b.rank)*4 }

func popcount(w uint64) int { return bits.OnesCount64(w) }

// AppendBinary serializes the bitmap (rank index is rebuilt on decode).
func (b *Bitmap) AppendBinary(buf []byte) []byte {
	buf = binary.LittleEndian.AppendUint64(buf, uint64(b.n))
	for _, w := range b.words {
		buf = binary.LittleEndian.AppendUint64(buf, w)
	}
	return buf
}

// DecodeBitmap reads a bitmap serialized with AppendBinary, rebuilds its
// rank index, and returns it with the number of bytes consumed.
func DecodeBitmap(buf []byte) (*Bitmap, int, error) {
	if len(buf) < 8 {
		return nil, 0, fmt.Errorf("bitutil: truncated bitmap header")
	}
	n := int(binary.LittleEndian.Uint64(buf))
	nwords := (n + 63) / 64
	need := 8 + nwords*8
	if len(buf) < need {
		return nil, 0, fmt.Errorf("bitutil: truncated bitmap payload")
	}
	b := &Bitmap{words: make([]uint64, nwords), n: n}
	for i := range b.words {
		b.words[i] = binary.LittleEndian.Uint64(buf[8+i*8:])
	}
	b.FinishRank()
	return b, need, nil
}
