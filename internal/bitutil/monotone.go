package bitutil

import (
	"encoding/binary"
	"fmt"
	"math/bits"
)

// monotoneBlock is the number of elements per anchor block in a
// MonotoneVector. Smaller blocks mean faster random access (fewer deltas
// to sum) and — because each block picks its own delta width — better
// isolation of Ψ's delta=1 runs from occasional large deltas, which is
// where the structure's compression comes from. 16 balances per-block
// overhead (~3 bits/element) against run purity.
const monotoneBlock = 16

// monotoneHalf is the half-block sub-anchor position. A block's bit
// stream stores, in place of the plain delta for element monotoneHalf,
// the cumulative delta from the block anchor (monotoneHalf deltas summed
// fit in the block width + 3 bits), so a random access sums at most
// monotoneHalf-1 plain deltas from the nearer of the anchor and the
// sub-anchor — for 3 extra bits per block instead of a second absolute
// anchor table. Width-1 blocks (the bulk of Ψ for compressible text)
// skip the slot entirely: their prefix sum is a popcount of one bit
// window, already O(1).
const monotoneHalf = monotoneBlock / 2

// MonotoneBlockSize is monotoneBlock, exported so batch kernels can
// reason about which accesses share a cursor block without decoding.
const MonotoneBlockSize = monotoneBlock

// hasMid reports whether a block carries a sub-anchor slot: only blocks
// that extend past the midpoint and are wide enough that summing
// monotoneBlock-1 deltas would actually cost something. For w<=1 the
// prefix sum is a single masked popcount, so the 3 extra bits buy
// nothing.
func hasMid(w uint, cnt int) bool {
	return w >= 2 && cnt > monotoneHalf
}

// MonotoneVector stores a non-decreasing sequence of integers using block
// anchors plus bit-packed per-block deltas, where each block chooses its
// own delta width. Within each character bucket the succinct store's Ψ
// array is strictly increasing and — for compressible text — dominated by
// tiny deltas, so per-block widths are where the compression of the whole
// structure comes from.
//
// Random access to element i sums at most monotoneHalf deltas; use a
// MonotoneCursor for sequential access (one block decode per
// monotoneBlock elements).
type MonotoneVector struct {
	n       int
	anchors *PackedVector // absolute value at the start of each block
	widths  []byte        // delta bit width per block (0 = all deltas zero)
	bitOff  *PackedVector // starting bit of each block's deltas in bits
	bits    []uint64      // concatenated delta payload (with sub-anchor slots)
}

// midWidth returns the bit width of a block's sub-anchor slot: the
// cumulative delta over monotoneHalf deltas of width w needs w+3 bits,
// capped at a machine word.
func midWidth(w uint) uint {
	if w+3 > 64 {
		return 64
	}
	return w + 3
}

// blockPayloadBits returns the bit-stream size of a block holding cnt
// elements at delta width w: cnt-1 slots, one of which is the wider
// sub-anchor slot when the block extends past its midpoint.
func blockPayloadBits(w uint, cnt int) uint64 {
	if w == 0 || cnt <= 1 {
		return 0
	}
	if !hasMid(w, cnt) {
		return uint64(w) * uint64(cnt-1)
	}
	return uint64(w)*uint64(cnt-2) + uint64(midWidth(w))
}

// NewMonotoneVector compresses vals, which must be non-decreasing.
func NewMonotoneVector(vals []uint64) *MonotoneVector {
	n := len(vals)
	nblocks := (n + monotoneBlock - 1) / monotoneBlock
	anchorVals := make([]uint64, nblocks)
	widths := make([]byte, nblocks)
	offs := make([]uint64, nblocks)

	// First pass: anchors and per-block max delta.
	for b := 0; b < nblocks; b++ {
		start := b * monotoneBlock
		end := start + monotoneBlock
		if end > n {
			end = n
		}
		anchorVals[b] = vals[start]
		var maxDelta uint64
		for i := start + 1; i < end; i++ {
			if vals[i] < vals[i-1] {
				panic(fmt.Sprintf("bitutil: sequence not monotone at %d: %d < %d", i, vals[i], vals[i-1]))
			}
			if d := vals[i] - vals[i-1]; d > maxDelta {
				maxDelta = d
			}
		}
		if maxDelta > 0 {
			widths[b] = byte(WidthFor(maxDelta))
		}
	}

	// Lay out the bit stream.
	var totalBits uint64
	for b := 0; b < nblocks; b++ {
		offs[b] = totalBits
		start := b * monotoneBlock
		end := start + monotoneBlock
		if end > n {
			end = n
		}
		totalBits += blockPayloadBits(uint(widths[b]), end-start)
	}
	bits := make([]uint64, (totalBits+63)/64)
	for b := 0; b < nblocks; b++ {
		if widths[b] == 0 {
			continue
		}
		start := b * monotoneBlock
		end := start + monotoneBlock
		if end > n {
			end = n
		}
		pos := offs[b]
		w := uint(widths[b])
		mid := hasMid(w, end-start)
		for i := start + 1; i < end; i++ {
			if mid && i-start == monotoneHalf {
				// Sub-anchor slot: cumulative delta from the anchor.
				writeBits(bits, pos, midWidth(w), vals[i]-vals[start])
				pos += uint64(midWidth(w))
				continue
			}
			writeBits(bits, pos, w, vals[i]-vals[i-1])
			pos += uint64(w)
		}
	}

	return &MonotoneVector{
		n:       n,
		anchors: PackSlice(anchorVals),
		widths:  widths,
		bitOff:  PackSlice(offs),
		bits:    bits,
	}
}

// Len returns the number of elements.
func (mv *MonotoneVector) Len() int { return mv.n }

// Get returns element i by summing deltas from the nearer of the block
// anchor and the half-block sub-anchor: at most monotoneHalf-1 plain
// deltas plus possibly the sub-anchor slot. Width-1 blocks resolve in
// O(1) with a masked popcount.
func (mv *MonotoneVector) Get(i int) uint64 {
	block := i / monotoneBlock
	v := mv.anchors.Get(block)
	w := uint(mv.widths[block])
	if w == 0 {
		return v
	}
	j := i - block*monotoneBlock
	if j == 0 {
		return v
	}
	base := mv.bitOff.Get(block)
	if w == 1 {
		// The first j deltas are j consecutive bits: one windowed read,
		// one popcount.
		return v + uint64(bits.OnesCount64(readBits(mv.bits, base, uint(j))))
	}
	from := 0
	pos := base
	if j >= monotoneHalf {
		// j past the midpoint implies the block extends past it, so the
		// sub-anchor slot exists (w >= 2 here): jump to it, then sum the
		// plain deltas past it.
		pos += uint64(w) * uint64(monotoneHalf-1)
		v += readBits(mv.bits, pos, midWidth(w))
		pos += uint64(midWidth(w))
		from = monotoneHalf
	}
	for k := from + 1; k <= j; k++ {
		v += readBits(mv.bits, pos, w)
		pos += uint64(w)
	}
	return v
}

// decodeBlock expands block b into out[0:cnt] as absolute values,
// returning cnt (monotoneBlock, or less for the final block). One call
// replaces up to monotoneBlock delta re-sums on sequential access.
func (mv *MonotoneVector) decodeBlock(b int, out *[monotoneBlock]uint64) int {
	start := b * monotoneBlock
	cnt := mv.n - start
	if cnt > monotoneBlock {
		cnt = monotoneBlock
	}
	anchor := mv.anchors.Get(b)
	out[0] = anchor
	w := uint(mv.widths[b])
	if w == 0 {
		for k := 1; k < cnt; k++ {
			out[k] = anchor
		}
		return cnt
	}
	v := anchor
	pos := mv.bitOff.Get(b)
	mid := hasMid(w, cnt)
	for k := 1; k < cnt; k++ {
		if mid && k == monotoneHalf {
			v = anchor + readBits(mv.bits, pos, midWidth(w))
			pos += uint64(midWidth(w))
		} else {
			v += readBits(mv.bits, pos, w)
			pos += uint64(w)
		}
		out[k] = v
	}
	return cnt
}

// SearchGE returns the smallest index i in [lo, hi) with Get(i) >= target,
// or hi if none. The sequence is non-decreasing by construction.
//
// Instead of binary-searching element probes (each a delta re-sum), it
// binary-searches the O(1) block anchors to isolate the single candidate
// block, decodes that block once, and scans the decoded values.
func (mv *MonotoneVector) SearchGE(lo, hi int, target uint64) int {
	if lo >= hi {
		return lo
	}
	b0 := lo / monotoneBlock
	b1 := (hi - 1) / monotoneBlock
	// First block past b0 whose anchor reaches target: every in-range
	// index at or past its start satisfies the predicate, so the answer
	// is inside the preceding block or is that block's first index.
	loB, hiB := b0+1, b1+1
	for loB < hiB {
		mid := int(uint(loB+hiB) >> 1)
		if mv.anchors.Get(mid) >= target {
			hiB = mid
		} else {
			loB = mid + 1
		}
	}
	bb := loB
	var vals [monotoneBlock]uint64
	start := (bb - 1) * monotoneBlock
	cnt := mv.decodeBlock(bb-1, &vals)
	from, to := lo, hi
	if from < start {
		from = start
	}
	if to > start+cnt {
		to = start + cnt
	}
	for i := from; i < to; i++ {
		if vals[i-start] >= target {
			return i
		}
	}
	if bb <= b1 {
		return bb * monotoneBlock
	}
	return hi
}

// SizeBytes returns the in-memory footprint of the payload.
func (mv *MonotoneVector) SizeBytes() int {
	return mv.anchors.SizeBytes() + len(mv.widths) + mv.bitOff.SizeBytes() + len(mv.bits)*8
}

// AppendBinary serializes the vector.
func (mv *MonotoneVector) AppendBinary(buf []byte) []byte {
	buf = binary.LittleEndian.AppendUint64(buf, uint64(mv.n))
	buf = mv.anchors.AppendBinary(buf)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(mv.widths)))
	buf = append(buf, mv.widths...)
	buf = mv.bitOff.AppendBinary(buf)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(mv.bits)))
	for _, w := range mv.bits {
		buf = binary.LittleEndian.AppendUint64(buf, w)
	}
	return buf
}

// DecodeMonotoneVector reads a vector serialized with AppendBinary and
// returns it with the number of bytes consumed.
func DecodeMonotoneVector(buf []byte) (*MonotoneVector, int, error) {
	if len(buf) < 8 {
		return nil, 0, fmt.Errorf("bitutil: truncated monotone vector")
	}
	mv := &MonotoneVector{n: int(binary.LittleEndian.Uint64(buf))}
	pos := 8
	var err error
	var k int
	if mv.anchors, k, err = DecodePackedVector(buf[pos:]); err != nil {
		return nil, 0, err
	}
	pos += k
	if len(buf) < pos+8 {
		return nil, 0, fmt.Errorf("bitutil: truncated monotone widths")
	}
	nw := int(binary.LittleEndian.Uint64(buf[pos:]))
	pos += 8
	if len(buf) < pos+nw {
		return nil, 0, fmt.Errorf("bitutil: truncated monotone widths payload")
	}
	mv.widths = append([]byte(nil), buf[pos:pos+nw]...)
	pos += nw
	if mv.bitOff, k, err = DecodePackedVector(buf[pos:]); err != nil {
		return nil, 0, err
	}
	pos += k
	if len(buf) < pos+8 {
		return nil, 0, fmt.Errorf("bitutil: truncated monotone bits header")
	}
	nb := int(binary.LittleEndian.Uint64(buf[pos:]))
	pos += 8
	if len(buf) < pos+nb*8 {
		return nil, 0, fmt.Errorf("bitutil: truncated monotone bits payload")
	}
	mv.bits = make([]uint64, nb)
	for i := range mv.bits {
		mv.bits[i] = binary.LittleEndian.Uint64(buf[pos+i*8:])
	}
	pos += nb * 8
	return mv, pos, nil
}

// Cursor returns a streaming cursor positioned at index 0. (Historically
// this returned a MonotoneVector-specific cursor; the codec layer
// generalized it to SeqCursor, which streams any Seq.)
func (mv *MonotoneVector) Cursor() SeqCursor {
	return NewSeqCursor(mv)
}

// CodecID identifies the legacy hand-rolled packing.
func (mv *MonotoneVector) CodecID() CodecID { return CodecLegacy }

// Monotone reports the monotone (delta) encoding layout.
func (mv *MonotoneVector) Monotone() bool { return true }

// DecodeAll appends every element to dst and returns it.
func (mv *MonotoneVector) DecodeAll(dst []uint64) []uint64 {
	var blk [monotoneBlock]uint64
	nblocks := (mv.n + monotoneBlock - 1) / monotoneBlock
	for b := 0; b < nblocks; b++ {
		cnt := mv.decodeBlock(b, &blk)
		dst = append(dst, blk[:cnt]...)
	}
	return dst
}

// DecodeBlockInto expands block b into dst as absolute values and
// returns the element count (short for the final block; only the first
// count slots are written). Batch kernels use it to fill a shared
// decoded-block cache where one decode serves every later access to
// the block as a plain array read.
func (mv *MonotoneVector) DecodeBlockInto(b int, dst *[MonotoneBlockSize]uint64) int {
	return mv.decodeBlock(b, dst)
}

// writeBits stores the low w bits of v at bit position pos.
func writeBits(words []uint64, pos uint64, w uint, v uint64) {
	word, off := pos/64, uint(pos%64)
	words[word] |= v << off
	if off+w > 64 {
		words[word+1] |= v >> (64 - off)
	}
}

// readBits reads w bits at bit position pos.
func readBits(words []uint64, pos uint64, w uint) uint64 {
	word, off := pos/64, uint(pos%64)
	v := words[word] >> off
	if off+w > 64 {
		v |= words[word+1] << (64 - off)
	}
	return v & (^uint64(0) >> (64 - w))
}
