package bitutil

import (
	"encoding/binary"
	"fmt"
)

// monotoneBlock is the number of elements per anchor block in a
// MonotoneVector. Smaller blocks mean faster random access (fewer deltas
// to sum) and — because each block picks its own delta width — better
// isolation of Ψ's delta=1 runs from occasional large deltas, which is
// where the structure's compression comes from. 16 balances per-block
// overhead (~3 bits/element) against run purity.
const monotoneBlock = 16

// MonotoneVector stores a non-decreasing sequence of integers using block
// anchors plus bit-packed per-block deltas, where each block chooses its
// own delta width. Within each character bucket the succinct store's Ψ
// array is strictly increasing and — for compressible text — dominated by
// tiny deltas, so per-block widths are where the compression of the whole
// structure comes from.
//
// Access to element i costs O(monotoneBlock) word operations.
type MonotoneVector struct {
	n       int
	anchors *PackedVector // absolute value at the start of each block
	widths  []byte        // delta bit width per block (0 = all deltas zero)
	bitOff  *PackedVector // starting bit of each block's deltas in bits
	bits    []uint64      // concatenated delta payload
}

// NewMonotoneVector compresses vals, which must be non-decreasing.
func NewMonotoneVector(vals []uint64) *MonotoneVector {
	n := len(vals)
	nblocks := (n + monotoneBlock - 1) / monotoneBlock
	anchorVals := make([]uint64, nblocks)
	widths := make([]byte, nblocks)
	offs := make([]uint64, nblocks)

	// First pass: anchors and per-block max delta.
	for b := 0; b < nblocks; b++ {
		start := b * monotoneBlock
		end := start + monotoneBlock
		if end > n {
			end = n
		}
		anchorVals[b] = vals[start]
		var maxDelta uint64
		for i := start + 1; i < end; i++ {
			if vals[i] < vals[i-1] {
				panic(fmt.Sprintf("bitutil: sequence not monotone at %d: %d < %d", i, vals[i], vals[i-1]))
			}
			if d := vals[i] - vals[i-1]; d > maxDelta {
				maxDelta = d
			}
		}
		if maxDelta > 0 {
			widths[b] = byte(WidthFor(maxDelta))
		}
	}

	// Lay out the bit stream.
	var totalBits uint64
	for b := 0; b < nblocks; b++ {
		offs[b] = totalBits
		start := b * monotoneBlock
		end := start + monotoneBlock
		if end > n {
			end = n
		}
		totalBits += uint64(widths[b]) * uint64(end-start-1)
	}
	bits := make([]uint64, (totalBits+63)/64)
	for b := 0; b < nblocks; b++ {
		if widths[b] == 0 {
			continue
		}
		start := b * monotoneBlock
		end := start + monotoneBlock
		if end > n {
			end = n
		}
		pos := offs[b]
		w := uint(widths[b])
		for i := start + 1; i < end; i++ {
			writeBits(bits, pos, w, vals[i]-vals[i-1])
			pos += uint64(w)
		}
	}

	return &MonotoneVector{
		n:       n,
		anchors: PackSlice(anchorVals),
		widths:  widths,
		bitOff:  PackSlice(offs),
		bits:    bits,
	}
}

// Len returns the number of elements.
func (mv *MonotoneVector) Len() int { return mv.n }

// Get returns element i by summing deltas from the block anchor.
func (mv *MonotoneVector) Get(i int) uint64 {
	block := i / monotoneBlock
	v := mv.anchors.Get(block)
	w := uint(mv.widths[block])
	if w == 0 {
		return v
	}
	pos := mv.bitOff.Get(block)
	for k := block*monotoneBlock + 1; k <= i; k++ {
		v += readBits(mv.bits, pos, w)
		pos += uint64(w)
	}
	return v
}

// SearchGE returns the smallest index i in [lo, hi) with Get(i) >= target,
// or hi if none. The sequence is non-decreasing by construction.
func (mv *MonotoneVector) SearchGE(lo, hi int, target uint64) int {
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if mv.Get(mid) >= target {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// SizeBytes returns the in-memory footprint of the payload.
func (mv *MonotoneVector) SizeBytes() int {
	return mv.anchors.SizeBytes() + len(mv.widths) + mv.bitOff.SizeBytes() + len(mv.bits)*8
}

// AppendBinary serializes the vector.
func (mv *MonotoneVector) AppendBinary(buf []byte) []byte {
	buf = binary.LittleEndian.AppendUint64(buf, uint64(mv.n))
	buf = mv.anchors.AppendBinary(buf)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(mv.widths)))
	buf = append(buf, mv.widths...)
	buf = mv.bitOff.AppendBinary(buf)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(mv.bits)))
	for _, w := range mv.bits {
		buf = binary.LittleEndian.AppendUint64(buf, w)
	}
	return buf
}

// DecodeMonotoneVector reads a vector serialized with AppendBinary and
// returns it with the number of bytes consumed.
func DecodeMonotoneVector(buf []byte) (*MonotoneVector, int, error) {
	if len(buf) < 8 {
		return nil, 0, fmt.Errorf("bitutil: truncated monotone vector")
	}
	mv := &MonotoneVector{n: int(binary.LittleEndian.Uint64(buf))}
	pos := 8
	var err error
	var k int
	if mv.anchors, k, err = DecodePackedVector(buf[pos:]); err != nil {
		return nil, 0, err
	}
	pos += k
	if len(buf) < pos+8 {
		return nil, 0, fmt.Errorf("bitutil: truncated monotone widths")
	}
	nw := int(binary.LittleEndian.Uint64(buf[pos:]))
	pos += 8
	if len(buf) < pos+nw {
		return nil, 0, fmt.Errorf("bitutil: truncated monotone widths payload")
	}
	mv.widths = append([]byte(nil), buf[pos:pos+nw]...)
	pos += nw
	if mv.bitOff, k, err = DecodePackedVector(buf[pos:]); err != nil {
		return nil, 0, err
	}
	pos += k
	if len(buf) < pos+8 {
		return nil, 0, fmt.Errorf("bitutil: truncated monotone bits header")
	}
	nb := int(binary.LittleEndian.Uint64(buf[pos:]))
	pos += 8
	if len(buf) < pos+nb*8 {
		return nil, 0, fmt.Errorf("bitutil: truncated monotone bits payload")
	}
	mv.bits = make([]uint64, nb)
	for i := range mv.bits {
		mv.bits[i] = binary.LittleEndian.Uint64(buf[pos+i*8:])
	}
	pos += nb * 8
	return mv, pos, nil
}

// writeBits stores the low w bits of v at bit position pos.
func writeBits(words []uint64, pos uint64, w uint, v uint64) {
	word, off := pos/64, uint(pos%64)
	words[word] |= v << off
	if off+w > 64 {
		words[word+1] |= v >> (64 - off)
	}
}

// readBits reads w bits at bit position pos.
func readBits(words []uint64, pos uint64, w uint) uint64 {
	word, off := pos/64, uint(pos%64)
	v := words[word] >> off
	if off+w > 64 {
		v |= words[word+1] << (64 - off)
	}
	return v & (^uint64(0) >> (64 - w))
}
