// Package bitutil provides the bit-level building blocks used by the
// succinct data structures: fixed-width bit-packed integer vectors,
// rank/select bitmaps, and block-compressed monotone sequences.
//
// All structures in this package are immutable after construction and
// safe for concurrent readers.
package bitutil

import (
	"encoding/binary"
	"fmt"
	"math/bits"
)

// PackedVector stores n unsigned integers of a fixed bit width w (1..64)
// contiguously in a []uint64. It is the core storage primitive for
// sampled suffix-array values, Ψ deltas and layout offset tables: space is
// n*w bits instead of n*64.
type PackedVector struct {
	words []uint64
	width uint
	n     int
}

// NewPackedVector returns a zeroed vector holding n values of the given
// bit width. Width 0 is promoted to 1 so that a vector of all zeros is
// still addressable.
func NewPackedVector(n int, width uint) *PackedVector {
	if width == 0 {
		width = 1
	}
	if width > 64 {
		panic(fmt.Sprintf("bitutil: width %d out of range", width))
	}
	nbits := uint64(n) * uint64(width)
	return &PackedVector{
		words: make([]uint64, (nbits+63)/64),
		width: width,
		n:     n,
	}
}

// PackSlice packs vals into a new vector wide enough for the largest
// element.
func PackSlice(vals []uint64) *PackedVector {
	var maxV uint64
	for _, v := range vals {
		if v > maxV {
			maxV = v
		}
	}
	pv := NewPackedVector(len(vals), WidthFor(maxV))
	for i, v := range vals {
		pv.Set(i, v)
	}
	return pv
}

// WidthFor returns the number of bits needed to represent v (at least 1).
func WidthFor(v uint64) uint {
	if v == 0 {
		return 1
	}
	return uint(bits.Len64(v))
}

// Len returns the number of elements.
func (pv *PackedVector) Len() int { return pv.n }

// Width returns the per-element bit width.
func (pv *PackedVector) Width() uint { return pv.width }

// SizeBytes returns the in-memory footprint of the payload.
func (pv *PackedVector) SizeBytes() int { return len(pv.words) * 8 }

// Set stores v at index i. v must fit in the vector's width.
func (pv *PackedVector) Set(i int, v uint64) {
	if i < 0 || i >= pv.n {
		panic(fmt.Sprintf("bitutil: index %d out of range [0,%d)", i, pv.n))
	}
	if pv.width < 64 && v >= 1<<pv.width {
		panic(fmt.Sprintf("bitutil: value %d exceeds width %d", v, pv.width))
	}
	bitPos := uint64(i) * uint64(pv.width)
	word, off := bitPos/64, uint(bitPos%64)
	mask := ^uint64(0) >> (64 - pv.width)
	pv.words[word] &^= mask << off
	pv.words[word] |= v << off
	if off+pv.width > 64 {
		spill := off + pv.width - 64
		pv.words[word+1] &^= ^uint64(0) >> (64 - spill)
		pv.words[word+1] |= v >> (pv.width - spill)
	}
}

// Get returns the value at index i.
func (pv *PackedVector) Get(i int) uint64 {
	bitPos := uint64(i) * uint64(pv.width)
	word, off := bitPos/64, uint(bitPos%64)
	mask := ^uint64(0) >> (64 - pv.width)
	v := pv.words[word] >> off
	if off+pv.width > 64 {
		v |= pv.words[word+1] << (64 - off)
	}
	return v & mask
}

// CodecID identifies the legacy hand-rolled packing.
func (pv *PackedVector) CodecID() CodecID { return CodecLegacy }

// Monotone reports the raw (non-delta) encoding layout. The data itself
// may still be non-decreasing — SearchGE is valid only when it is.
func (pv *PackedVector) Monotone() bool { return false }

// DecodeAll appends every element to dst and returns it.
func (pv *PackedVector) DecodeAll(dst []uint64) []uint64 {
	for i := 0; i < pv.n; i++ {
		dst = append(dst, pv.Get(i))
	}
	return dst
}

// DecodeBlockInto expands block b into dst and returns the element count
// (short for the final block).
func (pv *PackedVector) DecodeBlockInto(b int, dst *[SeqBlockSize]uint64) int {
	start := b * SeqBlockSize
	cnt := pv.n - start
	if cnt > SeqBlockSize {
		cnt = SeqBlockSize
	}
	for k := 0; k < cnt; k++ {
		dst[k] = pv.Get(start + k)
	}
	return cnt
}

// SearchGE returns the smallest index i in [lo, hi) with Get(i) >= target,
// or hi if none. Valid only when the stored data is non-decreasing.
func (pv *PackedVector) SearchGE(lo, hi int, target uint64) int {
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if pv.Get(mid) >= target {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// AppendBinary serializes the vector into buf and returns the extended
// slice. Format: width (1 byte), n (8 bytes LE), words.
func (pv *PackedVector) AppendBinary(buf []byte) []byte {
	buf = append(buf, byte(pv.width))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(pv.n))
	for _, w := range pv.words {
		buf = binary.LittleEndian.AppendUint64(buf, w)
	}
	return buf
}

// DecodePackedVector reads a vector serialized with AppendBinary and
// returns it together with the number of bytes consumed.
func DecodePackedVector(buf []byte) (*PackedVector, int, error) {
	if len(buf) < 9 {
		return nil, 0, fmt.Errorf("bitutil: truncated packed vector header")
	}
	width := uint(buf[0])
	if width == 0 || width > 64 {
		return nil, 0, fmt.Errorf("bitutil: invalid packed vector width %d", width)
	}
	n := int(binary.LittleEndian.Uint64(buf[1:9]))
	nbits := uint64(n) * uint64(width)
	nwords := int((nbits + 63) / 64)
	need := 9 + nwords*8
	if len(buf) < need {
		return nil, 0, fmt.Errorf("bitutil: truncated packed vector payload")
	}
	words := make([]uint64, nwords)
	for i := range words {
		words[i] = binary.LittleEndian.Uint64(buf[9+i*8:])
	}
	return &PackedVector{words: words, width: width, n: n}, need, nil
}
