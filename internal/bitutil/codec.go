package bitutil

import (
	"fmt"
	"time"
)

// This file is the pluggable integer-codec layer. The succinct store's
// regions (Ψ buckets, SA/ISA sample arrays) and the layout offset
// vectors all hold integer sequences with very different shapes — Ψ is
// dominated by tiny deltas with rare large jumps, sample arrays are
// near-uniform values of fixed magnitude, offset vectors are smooth
// ramps — and no single encoding is best for all of them. A Codec turns
// a sequence into an immutable Seq; ChooseCodec trial-encodes a sample
// of a region with every registered codec and picks the winner by a
// measured decode-speed × size score, so each region gets the encoding
// its data actually favors (the adaptivity argument of Log(Graph) and
// Zuckerli).

// CodecID identifies a codec in serialized form. IDs are persistent —
// never renumber them.
type CodecID uint8

const (
	// CodecLegacy is the repo's original hand-rolled packing: per-block
	// delta bit-packing (MonotoneVector) for monotone sequences and
	// fixed-width packing (PackedVector) otherwise. Byte-identical to
	// the pre-codec formats.
	CodecLegacy CodecID = 0
	// CodecSimple8b is word-aligned selector packing: each 64-bit word
	// holds 1..240 values at a uniform width chosen by a 4-bit selector,
	// so blocks with mixed delta magnitudes pay per-word, not per-region,
	// width.
	CodecSimple8b CodecID = 1
	// CodecVarint is LEB128 variable-length byte encoding (deltas for
	// monotone sequences, raw values otherwise).
	CodecVarint CodecID = 2

	numCodecs = 3
)

// SeqBlockSize is the element count of one decodable block. All codecs
// share it so block-granular machinery above (streaming cursors, the
// batch decoded-block cache and its global block numbering) works
// unchanged over any codec.
const SeqBlockSize = monotoneBlock

// Seq is a read-only encoded integer sequence: the unit the codec layer
// produces and the succinct structures store. Implementations are
// immutable after construction and safe for concurrent readers.
type Seq interface {
	// Len returns the number of elements.
	Len() int
	// CodecID identifies the codec that produced this sequence.
	CodecID() CodecID
	// Monotone reports whether the sequence was encoded with the
	// monotone (delta) layout. It describes the encoding, not the data:
	// a monotone sequence may still be encoded with the raw layout.
	Monotone() bool
	// Get returns element i (DecodeAt): random access, decoding at most
	// one block.
	Get(i int) uint64
	// DecodeAll appends every element to dst and returns it.
	DecodeAll(dst []uint64) []uint64
	// DecodeBlockInto expands block b into dst as absolute values and
	// returns the element count (short for the final block).
	DecodeBlockInto(b int, dst *[SeqBlockSize]uint64) int
	// SearchGE returns the smallest i in [lo, hi) with Get(i) >= target,
	// or hi. Valid only when the underlying data is non-decreasing.
	SearchGE(lo, hi int, target uint64) int
	// SizeBytes returns the in-memory footprint of the payload.
	SizeBytes() int
	// AppendBinary serializes the sequence (without a codec tag — see
	// AppendSeq for the tagged container).
	AppendBinary(buf []byte) []byte
}

// Codec encodes integer sequences.
type Codec interface {
	ID() CodecID
	Name() string
	// Encode compresses vals. monotone asserts vals is non-decreasing
	// and selects the delta layout. width is a fixed-width hint for
	// codecs that pack at one width (0 = derive from the data); the
	// legacy codec uses it to reproduce historical byte layouts exactly.
	// Returns nil if the codec cannot represent vals (e.g. simple8b
	// with values >= 2^60).
	Encode(vals []uint64, monotone bool, width uint) Seq
}

// codecs is the registry, indexed by CodecID.
var codecs = [numCodecs]Codec{
	legacyCodec{},
	s8bCodec{},
	varintCodec{},
}

// AllCodecs returns every registered codec in ID order.
func AllCodecs() []Codec { return codecs[:] }

// CodecByID returns the codec with the given ID.
func CodecByID(id CodecID) (Codec, bool) {
	if int(id) < len(codecs) {
		return codecs[id], true
	}
	return nil, false
}

// CodecName returns the human-readable name for id ("unknown" if the ID
// is not registered).
func CodecName(id CodecID) string {
	if c, ok := CodecByID(id); ok {
		return c.Name()
	}
	return "unknown"
}

// CodecPolicy selects how a region's codec is chosen at build time.
type CodecPolicy uint8

const (
	// CodecAuto trial-encodes a sample of each region with every codec
	// and picks per region by decode-speed × size score. The default.
	CodecAuto CodecPolicy = iota
	// CodecForceLegacy pins every region to the legacy packing,
	// reproducing pre-codec builds byte for byte.
	CodecForceLegacy
	// CodecForceSimple8b pins every region to simple8b.
	CodecForceSimple8b
	// CodecForceVarint pins every region to varint.
	CodecForceVarint
)

// Forced returns the pinned codec ID, or false for CodecAuto.
func (p CodecPolicy) Forced() (CodecID, bool) {
	switch p {
	case CodecForceLegacy:
		return CodecLegacy, true
	case CodecForceSimple8b:
		return CodecSimple8b, true
	case CodecForceVarint:
		return CodecVarint, true
	}
	return 0, false
}

// String names the policy for reports and flags.
func (p CodecPolicy) String() string {
	switch p {
	case CodecAuto:
		return "auto"
	case CodecForceLegacy:
		return "legacy"
	case CodecForceSimple8b:
		return "simple8b"
	case CodecForceVarint:
		return "varint"
	}
	return "unknown"
}

// PolicyByName parses a policy name ("auto", "legacy", "simple8b",
// "varint").
func PolicyByName(name string) (CodecPolicy, error) {
	for _, p := range []CodecPolicy{CodecAuto, CodecForceLegacy, CodecForceSimple8b, CodecForceVarint} {
		if p.String() == name {
			return p, nil
		}
	}
	return 0, fmt.Errorf("bitutil: unknown codec policy %q", name)
}

// TrialResult records one codec's measurement on a region sample.
type TrialResult struct {
	Codec     CodecID
	Name      string
	Bytes     int     // encoded size of the sample
	NsPerElem float64 // DecodeAll cost per element
	Score     float64 // Bytes × (NsPerElem + 1); lower is better
	Chosen    bool
}

// codecSampleLimit bounds the trial sample so region selection stays a
// sub-millisecond fraction of a shard build.
const codecSampleLimit = 1 << 15

// codecSample returns vals, or — past the limit — evenly spaced
// contiguous chunks of it. Chunks (not strides) preserve the local
// delta structure the codecs actually encode, and taking them in order
// keeps a monotone input monotone.
func codecSample(vals []uint64) []uint64 {
	if len(vals) <= codecSampleLimit {
		return vals
	}
	const chunk = 1 << 10
	nchunks := codecSampleLimit / chunk
	out := make([]uint64, 0, codecSampleLimit)
	stride := len(vals) / nchunks
	for c := 0; c < nchunks; c++ {
		start := c * stride
		out = append(out, vals[start:start+chunk]...)
	}
	return out
}

// measureDecodeNs times s.DecodeAll and returns ns per element: the
// minimum over several iterations, which is robust to scheduling noise
// where a mean is not.
func measureDecodeNs(s Seq, scratch []uint64) float64 {
	n := s.Len()
	if n == 0 {
		return 0
	}
	s.DecodeAll(scratch[:0]) // warm
	var elapsed, best time.Duration
	for iters := 0; iters < 4 || (elapsed < 100*time.Microsecond && iters < 64); iters++ {
		start := time.Now()
		s.DecodeAll(scratch[:0])
		d := time.Since(start)
		elapsed += d
		if iters == 0 || d < best {
			best = d
		}
	}
	return float64(best.Nanoseconds()) / float64(n)
}

// MeasureDecodeNs times one sequence's DecodeAll and returns ns per
// element — the decode-speed half of the trial score, exported so codec
// reports can measure forced or loaded regions that never ran a trial.
func MeasureDecodeNs(s Seq) float64 {
	return measureDecodeNs(s, make([]uint64, 0, s.Len()))
}

// sizeTieBand is the size band within which decode speed decides the
// trial: a candidate within 5% of the smallest encoding may win on
// faster measured decode.
const sizeTieBand = 1.05

// ChooseCodec trial-encodes a sample of vals with every registered codec
// and picks by the measured decode-speed × size score with size
// dominant: the fewest encoded bytes wins outright, and only candidates
// within sizeTieBand of the smallest may win on faster decode. Size
// dominates because the store's reason to exist is memory efficiency —
// letting raw speed trade real bytes away would also leave the choice
// hostage to timing noise. Ties break toward the lower codec ID (legacy
// first) so repeated builds stay stable.
func ChooseCodec(vals []uint64, monotone bool, width uint) (Codec, []TrialResult) {
	sample := codecSample(vals)
	scratch := make([]uint64, 0, len(sample))
	trials := make([]TrialResult, 0, numCodecs)
	for _, c := range AllCodecs() {
		s := c.Encode(sample, monotone, width)
		if s == nil {
			continue
		}
		ns := measureDecodeNs(s, scratch)
		trials = append(trials, TrialResult{
			Codec:     c.ID(),
			Name:      c.Name(),
			Bytes:     s.SizeBytes(),
			NsPerElem: ns,
			Score:     float64(s.SizeBytes()) * (ns + 1),
		})
	}
	minBytes := trials[0].Bytes
	for _, tr := range trials[1:] {
		if tr.Bytes < minBytes {
			minBytes = tr.Bytes
		}
	}
	best := -1
	for i, tr := range trials {
		if float64(tr.Bytes) > sizeTieBand*float64(minBytes) {
			continue
		}
		if best < 0 || tr.NsPerElem < trials[best].NsPerElem {
			best = i
		}
	}
	trials[best].Chosen = true
	c, _ := CodecByID(trials[best].Codec)
	return c, trials
}

// EncodeWithPolicy encodes vals per policy: a forced policy encodes with
// that codec directly (falling back to legacy if it cannot represent the
// data); CodecAuto trial-encodes and picks. The returned trials are nil
// for forced policies.
func EncodeWithPolicy(vals []uint64, monotone bool, width uint, policy CodecPolicy) (Seq, []TrialResult) {
	if id, ok := policy.Forced(); ok {
		c, _ := CodecByID(id)
		if s := c.Encode(vals, monotone, width); s != nil {
			return s, nil
		}
		return codecs[CodecLegacy].Encode(vals, monotone, width), nil
	}
	c, trials := ChooseCodec(vals, monotone, width)
	s := c.Encode(vals, monotone, width)
	if s == nil {
		// The winner fit the sample but not the full data (values past
		// the sampled range exceed its domain); legacy always encodes.
		s = codecs[CodecLegacy].Encode(vals, monotone, width)
	}
	return s, trials
}

// AppendSeq serializes s into a self-describing container: one tag byte
// (codec ID << 1 | monotone-layout bit) followed by the codec payload.
func AppendSeq(buf []byte, s Seq) []byte {
	tag := byte(s.CodecID()) << 1
	if s.Monotone() {
		tag |= 1
	}
	buf = append(buf, tag)
	return s.AppendBinary(buf)
}

// DecodeSeq reads a sequence serialized by AppendSeq and returns it with
// the number of bytes consumed.
func DecodeSeq(buf []byte) (Seq, int, error) {
	if len(buf) < 1 {
		return nil, 0, fmt.Errorf("bitutil: truncated seq tag")
	}
	id := CodecID(buf[0] >> 1)
	mono := buf[0]&1 != 0
	switch id {
	case CodecLegacy:
		if mono {
			mv, k, err := DecodeMonotoneVector(buf[1:])
			if err != nil {
				return nil, 0, err
			}
			return mv, 1 + k, nil
		}
		pv, k, err := DecodePackedVector(buf[1:])
		if err != nil {
			return nil, 0, err
		}
		return pv, 1 + k, nil
	case CodecSimple8b, CodecVarint:
		bs, k, err := decodeBlockSeq(id, mono, buf[1:])
		if err != nil {
			return nil, 0, err
		}
		return bs, 1 + k, nil
	}
	return nil, 0, fmt.Errorf("bitutil: unknown codec ID %d", id)
}

// legacyCodec adapts the original hand-rolled structures to the codec
// interface: MonotoneVector for monotone sequences, PackedVector
// otherwise. Encodings are byte-identical to the pre-codec formats.
type legacyCodec struct{}

func (legacyCodec) ID() CodecID  { return CodecLegacy }
func (legacyCodec) Name() string { return "legacy" }

func (legacyCodec) Encode(vals []uint64, monotone bool, width uint) Seq {
	if monotone {
		return NewMonotoneVector(vals)
	}
	if width == 0 {
		var maxV uint64
		for _, v := range vals {
			if v > maxV {
				maxV = v
			}
		}
		width = WidthFor(maxV)
	}
	pv := NewPackedVector(len(vals), width)
	for i, v := range vals {
		pv.Set(i, v)
	}
	return pv
}

// SeqCursor streams any Seq: each block is decoded once into a small
// buffer and then read by index, so a sequential pass costs one block
// decode per SeqBlockSize elements instead of one random access per
// element. A cursor is a value type — keep it on the stack. Not safe for
// concurrent use (the underlying Seq is).
type SeqCursor struct {
	seq   Seq
	block int // decoded block index, -1 = none
	cnt   int // valid entries in vals
	next  int // absolute index returned by the next Next call
	vals  [SeqBlockSize]uint64
}

// MonotoneCursor is the historical name of SeqCursor, kept for the Ψ
// call sites that predate the codec layer.
type MonotoneCursor = SeqCursor

// NewSeqCursor returns a streaming cursor over s positioned at index 0.
func NewSeqCursor(s Seq) SeqCursor {
	return SeqCursor{seq: s, block: -1}
}

// Seek positions the cursor so the next Next call returns element i.
// Seeking within the already-decoded block keeps the buffer.
func (c *SeqCursor) Seek(i int) { c.next = i }

// Pos returns the absolute index the next Next call will return.
func (c *SeqCursor) Pos() int { return c.next }

// Next returns the element at the cursor and advances by one. The caller
// must not read past Len()-1.
func (c *SeqCursor) Next() uint64 {
	v := c.At(c.next)
	c.next++
	return v
}

// At returns element i, decoding its block only if it is not the one
// already buffered. The cursor position is unchanged.
func (c *SeqCursor) At(i int) uint64 {
	b := i / SeqBlockSize
	if b != c.block {
		c.cnt = c.seq.DecodeBlockInto(b, &c.vals)
		c.block = b
	}
	return c.vals[i-b*SeqBlockSize]
}

// Buffered reports whether element i lies inside the currently decoded
// block, i.e. whether At(i) would be served from the buffer without a
// block decode. Batch kernels use this to observe cursor reuse.
func (c *SeqCursor) Buffered(i int) bool {
	return c.block >= 0 && i/SeqBlockSize == c.block
}
