package bitutil

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
)

// codecTestPatterns are the value shapes the codec suite exercises:
// each generator returns a raw (not necessarily monotone) sequence.
// Monotone variants are derived by prefix-summing the values.
var codecTestPatterns = []struct {
	name string
	gen  func(n int, rng *rand.Rand) []uint64
}{
	{"zeros", func(n int, _ *rand.Rand) []uint64 { return make([]uint64, n) }},
	{"ones", func(n int, _ *rand.Rand) []uint64 {
		out := make([]uint64, n)
		for i := range out {
			out[i] = 1
		}
		return out
	}},
	{"small_random", func(n int, rng *rand.Rand) []uint64 {
		out := make([]uint64, n)
		for i := range out {
			out[i] = uint64(rng.Intn(16))
		}
		return out
	}},
	{"wide_random", func(n int, rng *rand.Rand) []uint64 {
		out := make([]uint64, n)
		for i := range out {
			out[i] = rng.Uint64() >> (1 + rng.Intn(40))
		}
		return out
	}},
	{"bursty", func(n int, rng *rand.Rand) []uint64 {
		// Long runs of tiny deltas punctuated by huge spikes — the
		// adversarial shape for selector-based packers.
		out := make([]uint64, n)
		for i := range out {
			if rng.Intn(32) == 0 {
				out[i] = uint64(rng.Intn(1 << 40))
			} else {
				out[i] = uint64(rng.Intn(3))
			}
		}
		return out
	}},
	{"near_s8b_limit", func(n int, rng *rand.Rand) []uint64 {
		// Values just under and at 2^60-1, the widest simple8b payload.
		out := make([]uint64, n)
		for i := range out {
			out[i] = (uint64(1)<<60 - 1) - uint64(rng.Intn(4))
		}
		return out
	}},
	{"alternating_widths", func(n int, _ *rand.Rand) []uint64 {
		out := make([]uint64, n)
		for i := range out {
			if i%2 == 0 {
				out[i] = 1
			} else {
				out[i] = 1 << 30
			}
		}
		return out
	}},
}

// codecTestSizes exercises empty, single, block-fringe and multi-block
// lengths (SeqBlockSize = 16).
var codecTestSizes = []int{0, 1, 15, 16, 17, 31, 33, 100, 1000}

// prefixSum lifts raw values to a monotone sequence, capping each delta
// so the running sum cannot overflow (or exceed what every codec can
// represent) even for the widest patterns.
func prefixSum(vals []uint64) []uint64 {
	out := make([]uint64, len(vals))
	cap := uint64(1)<<59 - 1
	if n := uint64(len(vals)); n > 0 {
		cap /= n
	}
	var sum uint64
	for i, v := range vals {
		if v > cap {
			v = cap
		}
		sum += v
		out[i] = sum
	}
	return out
}

// checkSeq verifies every Seq accessor against the reference values.
func checkSeq(t *testing.T, s Seq, vals []uint64, mono bool) {
	t.Helper()
	if s.Len() != len(vals) {
		t.Fatalf("Len = %d, want %d", s.Len(), len(vals))
	}
	if s.Monotone() != mono {
		t.Fatalf("Monotone = %v, want %v", s.Monotone(), mono)
	}
	if got := s.DecodeAll(nil); !reflect.DeepEqual(got, append([]uint64{}, vals...)) && len(vals) > 0 {
		t.Fatalf("DecodeAll mismatch:\n got %v\nwant %v", got, vals)
	}
	for i, want := range vals {
		if got := s.Get(i); got != want {
			t.Fatalf("Get(%d) = %d, want %d", i, got, want)
		}
	}
	var blk [SeqBlockSize]uint64
	for b := 0; b*SeqBlockSize < len(vals); b++ {
		cnt := s.DecodeBlockInto(b, &blk)
		for j := 0; j < cnt; j++ {
			if blk[j] != vals[b*SeqBlockSize+j] {
				t.Fatalf("DecodeBlockInto(%d)[%d] = %d, want %d", b, j, blk[j], vals[b*SeqBlockSize+j])
			}
		}
	}
	cur := NewSeqCursor(s)
	for i, want := range vals {
		if got := cur.Next(); got != want {
			t.Fatalf("cursor[%d] = %d, want %d", i, got, want)
		}
	}
	if mono && len(vals) > 0 {
		for _, target := range []uint64{0, vals[0], vals[len(vals)/2], vals[len(vals)-1], vals[len(vals)-1] + 1} {
			want := len(vals)
			for i, v := range vals {
				if v >= target {
					want = i
					break
				}
			}
			if got := s.SearchGE(0, s.Len(), target); got != want {
				t.Fatalf("SearchGE(%d) = %d, want %d", target, got, want)
			}
		}
	}
}

// TestCodecRoundTrip runs the full differential suite: every codec ×
// pattern × size × {raw, monotone}, checking all Seq accessors and the
// tagged-container serial round-trip.
func TestCodecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, pat := range codecTestPatterns {
		for _, n := range codecTestSizes {
			raw := pat.gen(n, rng)
			mono := prefixSum(raw)
			for _, c := range AllCodecs() {
				for _, tc := range []struct {
					vals []uint64
					mono bool
				}{{raw, false}, {mono, true}} {
					var width uint
					if !tc.mono && n > 0 {
						width = WidthFor(maxVal(tc.vals))
					}
					s := c.Encode(tc.vals, tc.mono, width)
					if s == nil {
						// Unrepresentable for this codec (e.g. simple8b
						// at ≥2^60); the policy layer falls back.
						continue
					}
					checkSeq(t, s, tc.vals, tc.mono)

					buf := AppendSeq(nil, s)
					back, read, err := DecodeSeq(buf)
					if err != nil {
						t.Fatalf("%s/%s n=%d mono=%v: DecodeSeq: %v", pat.name, c.Name(), n, tc.mono, err)
					}
					if read != len(buf) {
						t.Fatalf("%s/%s: DecodeSeq consumed %d of %d bytes", pat.name, c.Name(), read, len(buf))
					}
					if back.CodecID() != c.ID() {
						t.Fatalf("%s/%s: round-trip codec = %v", pat.name, c.Name(), back.CodecID())
					}
					checkSeq(t, back, tc.vals, tc.mono)
				}
			}
		}
	}
}

func maxVal(vals []uint64) uint64 {
	var m uint64
	for _, v := range vals {
		if v > m {
			m = v
		}
	}
	return m
}

// TestLegacyCodecByteIdentical proves the legacy codec is a pure
// refactor: its serialized bytes equal the pre-codec MonotoneVector /
// PackedVector encodings exactly, for every pattern and size.
func TestLegacyCodecByteIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	legacy, _ := CodecByID(CodecLegacy)
	for _, pat := range codecTestPatterns {
		for _, n := range codecTestSizes {
			raw := pat.gen(n, rng)
			mono := prefixSum(raw)

			s := legacy.Encode(mono, true, 0)
			want := NewMonotoneVector(mono)
			if !bytes.Equal(s.AppendBinary(nil), want.AppendBinary(nil)) {
				t.Fatalf("%s n=%d: monotone legacy encoding diverged from MonotoneVector", pat.name, n)
			}

			width := WidthFor(maxVal(raw))
			if width == 0 {
				width = 1
			}
			s = legacy.Encode(raw, false, width)
			pv := NewPackedVector(n, width)
			for i, v := range raw {
				pv.Set(i, v)
			}
			if !bytes.Equal(s.AppendBinary(nil), pv.AppendBinary(nil)) {
				t.Fatalf("%s n=%d: raw legacy encoding diverged from PackedVector", pat.name, n)
			}
		}
	}
}

// TestEncodeWithPolicyForced verifies forced policies pick their codec
// (falling back to legacy only when unrepresentable) and that auto
// picks the trial winner.
func TestEncodeWithPolicyForced(t *testing.T) {
	vals := prefixSum(codecTestPatterns[2].gen(500, rand.New(rand.NewSource(1))))
	for _, tc := range []struct {
		policy CodecPolicy
		want   CodecID
	}{
		{CodecForceLegacy, CodecLegacy},
		{CodecForceSimple8b, CodecSimple8b},
		{CodecForceVarint, CodecVarint},
	} {
		s, trials := EncodeWithPolicy(vals, true, 0, tc.policy)
		if s.CodecID() != tc.want {
			t.Errorf("policy %v: codec = %v, want %v", tc.policy, s.CodecID(), tc.want)
		}
		if len(trials) != 0 {
			t.Errorf("policy %v: forced encode ran %d trials", tc.policy, len(trials))
		}
		checkSeq(t, s, vals, true)
	}

	s, trials := EncodeWithPolicy(vals, true, 0, CodecAuto)
	if len(trials) == 0 {
		t.Fatal("auto policy ran no trials")
	}
	var chosen *TrialResult
	for i := range trials {
		if trials[i].Chosen {
			chosen = &trials[i]
		}
	}
	if chosen == nil || chosen.Codec != s.CodecID() {
		t.Fatalf("auto policy: chosen trial %+v vs seq codec %v", chosen, s.CodecID())
	}
	checkSeq(t, s, vals, true)
}

// TestSimple8bOverflowFallsBack: values ≥ 2^60 don't fit any simple8b
// selector; the codec must decline and the forced policy must fall
// back to legacy rather than corrupt data.
func TestSimple8bOverflowFallsBack(t *testing.T) {
	vals := []uint64{1, 2, 1 << 60, 4}
	s8b, _ := CodecByID(CodecSimple8b)
	if s := s8b.Encode(vals, false, WidthFor(1<<60)); s != nil {
		t.Fatal("simple8b accepted a 2^60 value")
	}
	s, _ := EncodeWithPolicy(vals, false, WidthFor(1<<60), CodecForceSimple8b)
	if s.CodecID() != CodecLegacy {
		t.Fatalf("forced simple8b on overflow values: codec = %v, want legacy fallback", s.CodecID())
	}
	checkSeq(t, s, vals, false)
}

// TestChooseCodecPrefersSmallest locks the size-dominant selection rule:
// a codec whose encoding is more than the tie band above the smallest
// candidate can never win on speed alone.
func TestChooseCodecPrefersSmallest(t *testing.T) {
	// Small deltas: simple8b and varint both beat 64-bit-wide legacy
	// packing by a large margin on a monotone ramp with tiny gaps.
	vals := make([]uint64, 4096)
	base := uint64(1) << 50 // forces legacy to 51-bit entries
	for i := range vals {
		base += uint64(i%3 + 1)
		vals[i] = base
	}
	_, trials := ChooseCodec(vals, true, 0)
	var chosen, smallest *TrialResult
	for i := range trials {
		if trials[i].Chosen {
			chosen = &trials[i]
		}
		if smallest == nil || trials[i].Bytes < smallest.Bytes {
			smallest = &trials[i]
		}
	}
	if chosen == nil {
		t.Fatal("no trial marked chosen")
	}
	if float64(chosen.Bytes) > sizeTieBand*float64(smallest.Bytes) {
		t.Fatalf("chosen codec %s (%dB) outside the tie band of smallest %s (%dB)",
			chosen.Name, chosen.Bytes, smallest.Name, smallest.Bytes)
	}
}

// TestDecodeSeqErrors exercises the container's failure paths.
func TestDecodeSeqErrors(t *testing.T) {
	if _, _, err := DecodeSeq(nil); err == nil {
		t.Error("empty buffer must error")
	}
	if _, _, err := DecodeSeq([]byte{0xFF}); err == nil {
		t.Error("unknown codec tag must error")
	}
	s, _ := EncodeWithPolicy([]uint64{1, 5, 9}, true, 0, CodecForceVarint)
	buf := AppendSeq(nil, s)
	if _, _, err := DecodeSeq(buf[:len(buf)-1]); err == nil {
		t.Error("truncated buffer must error")
	}
}
