package bitutil

import (
	"math/rand"
	"sort"
	"testing"
)

// adversarialSequences builds non-decreasing sequences chosen to stress
// every block shape the monotone kernels distinguish: zero-width blocks,
// width-1 runs, huge-jump blocks, partial final blocks, and mixes.
func adversarialSequences() map[string][]uint64 {
	seqs := map[string][]uint64{
		"empty":        {},
		"single":       {42},
		"all-equal":    make([]uint64, 100),
		"plus-one-run": make([]uint64, 3*monotoneBlock+5),
		"half-block":   make([]uint64, monotoneHalf),
		"half-plus":    make([]uint64, monotoneHalf+1),
		"block-exact":  make([]uint64, monotoneBlock),
		"block-plus":   make([]uint64, monotoneBlock+1),
	}
	for i := range seqs["all-equal"] {
		seqs["all-equal"][i] = 7
	}
	for i := range seqs["plus-one-run"] {
		seqs["plus-one-run"][i] = uint64(i)
	}
	for i := range seqs["half-block"] {
		seqs["half-block"][i] = uint64(i * 3)
	}
	for i := range seqs["half-plus"] {
		seqs["half-plus"][i] = uint64(i * 5)
	}
	for i := range seqs["block-exact"] {
		seqs["block-exact"][i] = uint64(i * i)
	}
	for i := range seqs["block-plus"] {
		seqs["block-plus"][i] = uint64(i) << 10
	}

	// Huge jumps: one delta per block forces the max width while the
	// rest of the block is a +1 run — the Ψ shape sub-anchors target.
	jumps := make([]uint64, 10*monotoneBlock+3)
	v := uint64(0)
	for i := 1; i < len(jumps); i++ {
		if i%monotoneBlock == 5 {
			v += 1 << 40
		} else {
			v++
		}
		jumps[i] = v
	}
	seqs["huge-jumps"] = jumps

	// Alternating zero-width and wide blocks.
	alt := make([]uint64, 8*monotoneBlock)
	v = 0
	for i := 1; i < len(alt); i++ {
		if (i/monotoneBlock)%2 == 1 {
			v += uint64(rand.New(rand.NewSource(int64(i))).Intn(1 << 20))
		}
		alt[i] = v
	}
	seqs["alternating"] = alt

	// Random monotone with mixed magnitudes, partial last block.
	rng := rand.New(rand.NewSource(99))
	rnd := make([]uint64, 6*monotoneBlock+monotoneHalf+3)
	for i := 1; i < len(rnd); i++ {
		step := uint64(0)
		switch rng.Intn(4) {
		case 0:
			step = uint64(rng.Intn(2))
		case 1:
			step = uint64(rng.Intn(100))
		case 2:
			step = uint64(rng.Intn(1 << 16))
		case 3:
			step = uint64(rng.Intn(1 << 30))
		}
		rnd[i] = rnd[i-1] + step
	}
	seqs["random-mixed"] = rnd
	return seqs
}

// TestMonotoneGetAgainstReference checks Get against the raw sequence on
// every adversarial pattern, and round-trips through serialization to
// prove the sub-anchor slots survive encode/decode.
func TestMonotoneGetAgainstReference(t *testing.T) {
	for name, vals := range adversarialSequences() {
		mv := NewMonotoneVector(vals)
		dec, _, err := DecodeMonotoneVector(mv.AppendBinary(nil))
		if err != nil {
			t.Fatalf("%s: decode: %v", name, err)
		}
		for i, want := range vals {
			if got := mv.Get(i); got != want {
				t.Fatalf("%s: Get(%d)=%d want %d", name, i, got, want)
			}
			if got := dec.Get(i); got != want {
				t.Fatalf("%s: decoded Get(%d)=%d want %d", name, i, got, want)
			}
		}
	}
}

// TestMonotoneCursorAgainstGet drives a cursor through sequential scans,
// random seeks and random At probes and checks every value against Get.
func TestMonotoneCursorAgainstGet(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for name, vals := range adversarialSequences() {
		if len(vals) == 0 {
			continue
		}
		mv := NewMonotoneVector(vals)

		// Full sequential scan.
		c := mv.Cursor()
		for i := range vals {
			if got := c.Next(); got != vals[i] {
				t.Fatalf("%s: cursor Next at %d = %d want %d", name, i, got, vals[i])
			}
		}

		// Random seeks followed by short scans.
		for trial := 0; trial < 50; trial++ {
			start := rng.Intn(len(vals))
			c.Seek(start)
			if c.Pos() != start {
				t.Fatalf("%s: Pos=%d after Seek(%d)", name, c.Pos(), start)
			}
			n := rng.Intn(2 * monotoneBlock)
			for i := start; i < len(vals) && i < start+n; i++ {
				if got := c.Next(); got != vals[i] {
					t.Fatalf("%s: after Seek(%d), Next at %d = %d want %d", name, start, i, got, vals[i])
				}
			}
		}

		// Random At probes do not disturb the position.
		c.Seek(0)
		for trial := 0; trial < 50; trial++ {
			i := rng.Intn(len(vals))
			if got := c.At(i); got != vals[i] {
				t.Fatalf("%s: At(%d)=%d want %d", name, i, got, vals[i])
			}
		}
		if c.Pos() != 0 {
			t.Fatalf("%s: At moved position to %d", name, c.Pos())
		}
	}
}

// TestMonotoneSearchGEAgainstReference checks SearchGE against a linear
// reference over random sub-ranges and probe targets, including targets
// below, between, equal to and above the stored values.
func TestMonotoneSearchGEAgainstReference(t *testing.T) {
	refSearch := func(vals []uint64, lo, hi int, target uint64) int {
		for i := lo; i < hi; i++ {
			if vals[i] >= target {
				return i
			}
		}
		return hi
	}
	rng := rand.New(rand.NewSource(11))
	for name, vals := range adversarialSequences() {
		if len(vals) == 0 {
			continue
		}
		mv := NewMonotoneVector(vals)
		for trial := 0; trial < 300; trial++ {
			lo := rng.Intn(len(vals))
			hi := lo + rng.Intn(len(vals)-lo+1)
			var target uint64
			switch rng.Intn(4) {
			case 0:
				target = vals[rng.Intn(len(vals))] // exact hit somewhere
			case 1:
				target = vals[rng.Intn(len(vals))] + uint64(rng.Intn(3))
			case 2:
				target = 0
			case 3:
				target = vals[len(vals)-1] + 1 // above everything
			}
			want := refSearch(vals, lo, hi, target)
			if got := mv.SearchGE(lo, hi, target); got != want {
				t.Fatalf("%s: SearchGE(%d,%d,%d)=%d want %d", name, lo, hi, target, got, want)
			}
		}
	}
}

// TestSearchHelpersExhaustive checks the branchless SearchGE/SearchGT
// against sort.Search on every slice length 0..40 with duplicate-heavy
// contents and every target in range.
func TestSearchHelpersExhaustive(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for n := 0; n <= 40; n++ {
		xs := make([]int64, n)
		v := int64(0)
		for i := range xs {
			v += int64(rng.Intn(3)) // runs of duplicates
			xs[i] = v
		}
		for target := int64(-1); target <= v+1; target++ {
			wantGE := sort.Search(n, func(i int) bool { return xs[i] >= target })
			if got := SearchGE(xs, target); got != wantGE {
				t.Fatalf("SearchGE(%v, %d)=%d want %d", xs, target, got, wantGE)
			}
			wantGT := sort.Search(n, func(i int) bool { return xs[i] > target })
			if got := SearchGT(xs, target); got != wantGT {
				t.Fatalf("SearchGT(%v, %d)=%d want %d", xs, target, got, wantGT)
			}
		}
	}
}
