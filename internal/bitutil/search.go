package bitutil

// Ordered constrains the branchless searches to the integer types the
// succinct/layout indexes actually use.
type Ordered interface {
	~int | ~int32 | ~int64 | ~uint32 | ~uint64
}

// SearchGE returns the smallest index i with xs[i] >= target, or len(xs)
// if none. xs must be sorted ascending.
//
// This is the hand-rolled replacement for closure-based sort.Search on
// the decode hot paths: the halving loop keeps the probe count exact
// (ceil(log2 n)) and the body compiles to a compare plus a conditional
// add — no closure call, no bounds-check re-derivation per probe.
func SearchGE[T Ordered](xs []T, target T) int {
	base, n := 0, len(xs)
	if n == 0 {
		return 0
	}
	for n > 1 {
		half := n / 2
		if xs[base+half-1] < target {
			base += half
		}
		n -= half
	}
	if xs[base] < target {
		base++
	}
	return base
}

// SearchGT returns the smallest index i with xs[i] > target, or len(xs)
// if none. xs must be sorted ascending.
func SearchGT[T Ordered](xs []T, target T) int {
	base, n := 0, len(xs)
	if n == 0 {
		return 0
	}
	for n > 1 {
		half := n / 2
		if xs[base+half-1] <= target {
			base += half
		}
		n -= half
	}
	if xs[base] <= target {
		base++
	}
	return base
}
