package bitutil

import (
	"math/rand"
	"testing"
)

// benchMonotone builds a Ψ-shaped sequence: long runs of +1 deltas
// interrupted by occasional large jumps, which is what per-bucket Ψ
// looks like on compressible text.
func benchMonotone(n int) *MonotoneVector {
	rng := rand.New(rand.NewSource(42))
	vals := make([]uint64, n)
	var v uint64
	for i := range vals {
		if rng.Intn(64) == 0 {
			v += uint64(rng.Intn(1 << 20))
		} else {
			v++
		}
		vals[i] = v
	}
	return NewMonotoneVector(vals)
}

// BenchmarkMonotoneGet measures random access: the inner operation of
// every Ψ step on the extract/search path.
func BenchmarkMonotoneGet(b *testing.B) {
	mv := benchMonotone(1 << 16)
	idx := make([]int, 1024)
	rng := rand.New(rand.NewSource(7))
	for i := range idx {
		idx[i] = rng.Intn(mv.Len())
	}
	b.ResetTimer()
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += mv.Get(idx[i%len(idx)])
	}
	_ = sink
}

// BenchmarkMonotoneSearchGE measures the backward-search probe: one
// lower-bound per pattern character per bucket.
func BenchmarkMonotoneSearchGE(b *testing.B) {
	mv := benchMonotone(1 << 16)
	last := mv.Get(mv.Len() - 1)
	rng := rand.New(rand.NewSource(9))
	targets := make([]uint64, 1024)
	for i := range targets {
		targets[i] = uint64(rng.Int63n(int64(last)))
	}
	b.ResetTimer()
	var sink int
	for i := 0; i < b.N; i++ {
		sink += mv.SearchGE(0, mv.Len(), targets[i%len(targets)])
	}
	_ = sink
}

// BenchmarkMonotoneScan measures a sequential pass, the access pattern
// of bucket-local streaming (SearchGE block scans, differential tests).
func BenchmarkMonotoneScan(b *testing.B) {
	mv := benchMonotone(1 << 12)
	b.ResetTimer()
	var sink uint64
	for i := 0; i < b.N; i++ {
		for j := 0; j < mv.Len(); j++ {
			sink += mv.Get(j)
		}
	}
	_ = sink
}
