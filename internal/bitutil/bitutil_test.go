package bitutil

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestPackedVectorRoundTrip(t *testing.T) {
	for _, width := range []uint{1, 3, 7, 8, 13, 31, 32, 33, 63, 64} {
		rng := rand.New(rand.NewSource(int64(width)))
		n := 1000
		pv := NewPackedVector(n, width)
		want := make([]uint64, n)
		var mask uint64 = ^uint64(0)
		if width < 64 {
			mask = (1 << width) - 1
		}
		for i := range want {
			want[i] = rng.Uint64() & mask
			pv.Set(i, want[i])
		}
		for i, w := range want {
			if got := pv.Get(i); got != w {
				t.Fatalf("width %d: Get(%d) = %d, want %d", width, i, got, w)
			}
		}
	}
}

func TestPackedVectorOverwrite(t *testing.T) {
	pv := NewPackedVector(10, 5)
	for i := 0; i < 10; i++ {
		pv.Set(i, 31)
	}
	pv.Set(4, 7)
	if got := pv.Get(4); got != 7 {
		t.Fatalf("Get(4) = %d, want 7", got)
	}
	for _, i := range []int{3, 5} {
		if got := pv.Get(i); got != 31 {
			t.Fatalf("neighbor %d corrupted: got %d, want 31", i, got)
		}
	}
}

func TestPackedVectorSerialization(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	vals := make([]uint64, 257)
	for i := range vals {
		vals[i] = uint64(rng.Intn(1 << 20))
	}
	pv := PackSlice(vals)
	buf := pv.AppendBinary(nil)
	got, n, err := DecodePackedVector(buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(buf) {
		t.Fatalf("consumed %d bytes, want %d", n, len(buf))
	}
	for i, v := range vals {
		if got.Get(i) != v {
			t.Fatalf("Get(%d) = %d, want %d", i, got.Get(i), v)
		}
	}
}

func TestPackedVectorDecodeErrors(t *testing.T) {
	if _, _, err := DecodePackedVector(nil); err == nil {
		t.Error("expected error on empty buffer")
	}
	if _, _, err := DecodePackedVector([]byte{0, 1, 0, 0, 0, 0, 0, 0, 0}); err == nil {
		t.Error("expected error on zero width")
	}
	pv := PackSlice([]uint64{1, 2, 3})
	buf := pv.AppendBinary(nil)
	if _, _, err := DecodePackedVector(buf[:len(buf)-1]); err == nil {
		t.Error("expected error on truncated payload")
	}
}

func TestWidthFor(t *testing.T) {
	cases := []struct {
		v uint64
		w uint
	}{{0, 1}, {1, 1}, {2, 2}, {3, 2}, {255, 8}, {256, 9}, {1<<63 - 1, 63}, {^uint64(0), 64}}
	for _, c := range cases {
		if got := WidthFor(c.v); got != c.w {
			t.Errorf("WidthFor(%d) = %d, want %d", c.v, got, c.w)
		}
	}
}

func TestPackedVectorQuick(t *testing.T) {
	// Property: packing any slice and reading it back is the identity.
	f := func(vals []uint64) bool {
		pv := PackSlice(vals)
		for i, v := range vals {
			if pv.Get(i) != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBitmapRankSelect(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	n := 10_000
	b := NewBitmap(n)
	set := make([]bool, n)
	for i := 0; i < n; i++ {
		if rng.Intn(3) == 0 {
			b.Set(i)
			set[i] = true
		}
	}
	b.FinishRank()

	rank := 0
	ones := []int{}
	for i := 0; i < n; i++ {
		if got := b.Rank1(i); got != rank {
			t.Fatalf("Rank1(%d) = %d, want %d", i, got, rank)
		}
		if set[i] {
			ones = append(ones, i)
			rank++
		}
		if b.Get(i) != set[i] {
			t.Fatalf("Get(%d) = %v, want %v", i, b.Get(i), set[i])
		}
	}
	if b.Ones() != len(ones) {
		t.Fatalf("Ones() = %d, want %d", b.Ones(), len(ones))
	}
	for k, pos := range ones {
		if got := b.Select1(k); got != pos {
			t.Fatalf("Select1(%d) = %d, want %d", k, got, pos)
		}
	}
}

func TestBitmapEdgeCases(t *testing.T) {
	b := NewBitmap(64)
	b.Set(0)
	b.Set(63)
	b.FinishRank()
	if b.Rank1(64) != 2 {
		t.Errorf("Rank1(64) = %d, want 2", b.Rank1(64))
	}
	if b.Select1(0) != 0 || b.Select1(1) != 63 {
		t.Errorf("select wrong: %d %d", b.Select1(0), b.Select1(1))
	}
	defer func() {
		if recover() == nil {
			t.Error("Select1 out of range should panic")
		}
	}()
	b.Select1(2)
}

func TestBitmapSetAfterFinishPanics(t *testing.T) {
	b := NewBitmap(8)
	b.FinishRank()
	defer func() {
		if recover() == nil {
			t.Error("Set after FinishRank should panic")
		}
	}()
	b.Set(1)
}

func TestMonotoneVector(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	vals := make([]uint64, 5000)
	var cur uint64
	for i := range vals {
		cur += uint64(rng.Intn(100))
		vals[i] = cur
	}
	mv := NewMonotoneVector(vals)
	if mv.Len() != len(vals) {
		t.Fatalf("Len = %d, want %d", mv.Len(), len(vals))
	}
	for i, v := range vals {
		if got := mv.Get(i); got != v {
			t.Fatalf("Get(%d) = %d, want %d", i, got, v)
		}
	}
	// SearchGE agrees with sort.Search on the raw values.
	for trial := 0; trial < 200; trial++ {
		target := uint64(rng.Intn(int(cur) + 2))
		want := sort.Search(len(vals), func(i int) bool { return vals[i] >= target })
		if got := mv.SearchGE(0, len(vals), target); got != want {
			t.Fatalf("SearchGE(%d) = %d, want %d", target, got, want)
		}
	}
	// Bounded-range searches.
	if got := mv.SearchGE(10, 10, 0); got != 10 {
		t.Fatalf("empty range SearchGE = %d, want 10", got)
	}
}

func TestMonotoneVectorNonMonotonePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("non-monotone input should panic")
		}
	}()
	NewMonotoneVector([]uint64{5, 3})
}

func TestMonotoneVectorQuick(t *testing.T) {
	// Property: for any non-negative delta sequence, the compressed
	// vector reproduces the prefix sums exactly.
	f := func(deltas []uint16) bool {
		vals := make([]uint64, len(deltas))
		var cur uint64
		for i, d := range deltas {
			cur += uint64(d)
			vals[i] = cur
		}
		mv := NewMonotoneVector(vals)
		for i, v := range vals {
			if mv.Get(i) != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMonotoneVectorCompresses(t *testing.T) {
	// A long run of tiny deltas should occupy far less than 8 bytes/elem.
	vals := make([]uint64, 1<<16)
	for i := range vals {
		vals[i] = uint64(i) * 3
	}
	mv := NewMonotoneVector(vals)
	if mv.SizeBytes() >= len(vals)*4 {
		t.Errorf("monotone vector too large: %d bytes for %d elems", mv.SizeBytes(), len(vals))
	}
}

func TestBitmapSerialization(t *testing.T) {
	b := NewBitmap(100)
	for _, i := range []int{0, 7, 63, 64, 99} {
		b.Set(i)
	}
	b.FinishRank()
	buf := b.AppendBinary(nil)
	got, n, err := DecodeBitmap(buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(buf) {
		t.Fatalf("consumed %d, want %d", n, len(buf))
	}
	for i := 0; i < 100; i++ {
		if got.Get(i) != b.Get(i) {
			t.Fatalf("bit %d mismatch", i)
		}
	}
	if got.Ones() != 5 || got.Rank1(64) != 3 {
		t.Fatalf("rank index not rebuilt: ones=%d rank=%d", got.Ones(), got.Rank1(64))
	}
}

func TestMonotoneVectorSerialization(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	vals := make([]uint64, 1000)
	var cur uint64
	for i := range vals {
		cur += uint64(rng.Intn(1 << uint(rng.Intn(20))))
		vals[i] = cur
	}
	mv := NewMonotoneVector(vals)
	buf := mv.AppendBinary(nil)
	got, n, err := DecodeMonotoneVector(buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(buf) {
		t.Fatalf("consumed %d, want %d", n, len(buf))
	}
	for i, v := range vals {
		if got.Get(i) != v {
			t.Fatalf("Get(%d) = %d, want %d", i, got.Get(i), v)
		}
	}
}

func TestMonotoneVectorMixedBlockWidths(t *testing.T) {
	// One block of huge deltas between blocks of zero deltas: per-block
	// widths must isolate the expensive block.
	vals := make([]uint64, 96)
	for i := 32; i < 64; i++ {
		vals[i] = vals[i-1] + 1<<40
	}
	for i := 64; i < 96; i++ {
		vals[i] = vals[63]
	}
	mv := NewMonotoneVector(vals)
	for i, v := range vals {
		if got := mv.Get(i); got != v {
			t.Fatalf("Get(%d) = %d, want %d", i, got, v)
		}
	}
}
