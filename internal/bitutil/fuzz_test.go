package bitutil

import (
	"encoding/binary"
	"reflect"
	"testing"
)

// fuzzVals turns fuzzer bytes into a value sequence: each byte pair
// selects a width class and payload, so the fuzzer can express tiny
// deltas, wide values, and the simple8b 60-bit boundary with equal
// ease (raw 8-byte chunks would almost never hit the interesting
// narrow-width selector paths).
func fuzzVals(data []byte) []uint64 {
	var out []uint64
	for i := 0; i+1 < len(data); i += 2 {
		shift := uint(data[i]) % 64
		out = append(out, uint64(data[i+1])<<shift)
	}
	return out
}

// FuzzCodecRoundTrip feeds adversarial value shapes through every
// codec, raw and monotone, and cross-checks all Seq accessors and the
// tagged container against the input. Any divergence — wrong value,
// wrong search result, container that doesn't round-trip — fails.
func FuzzCodecRoundTrip(f *testing.F) {
	// Seeds: empty, single value, a tiny ramp, a block boundary, a
	// width alternation, and the simple8b overflow edge. The checked-in
	// corpus under testdata/fuzz mirrors these shapes.
	f.Add([]byte{})
	f.Add([]byte{0, 1})
	f.Add([]byte{0, 1, 0, 2, 0, 3, 1, 1, 2, 1})
	f.Add([]byte{59, 255, 0, 0, 59, 255})         // near the 60-bit payload limit
	f.Add([]byte{0, 1, 30, 1, 0, 1, 30, 1, 0, 1}) // alternating widths
	f.Add(make([]byte, 3*SeqBlockSize))           // zeros across blocks
	f.Fuzz(func(t *testing.T, data []byte) {
		raw := fuzzVals(data)
		mono := prefixSum(raw)
		for _, c := range AllCodecs() {
			for _, tc := range []struct {
				vals []uint64
				mono bool
			}{{raw, false}, {mono, true}} {
				var width uint
				if !tc.mono {
					width = WidthFor(maxVal(tc.vals))
				}
				s := c.Encode(tc.vals, tc.mono, width)
				if s == nil {
					continue // unrepresentable; policy layer falls back
				}
				if s.Len() != len(tc.vals) {
					t.Fatalf("%s: Len %d != %d", c.Name(), s.Len(), len(tc.vals))
				}
				got := s.DecodeAll(nil)
				if len(tc.vals) > 0 && !reflect.DeepEqual(got, tc.vals) {
					t.Fatalf("%s mono=%v: DecodeAll mismatch", c.Name(), tc.mono)
				}
				for i, want := range tc.vals {
					if g := s.Get(i); g != want {
						t.Fatalf("%s mono=%v: Get(%d)=%d want %d", c.Name(), tc.mono, i, g, want)
					}
				}
				if tc.mono && len(tc.vals) > 0 {
					// SearchGE against a linear reference at a few probes.
					probes := []uint64{0, tc.vals[0], tc.vals[len(tc.vals)-1], tc.vals[len(tc.vals)/2] + 1}
					for _, target := range probes {
						want := len(tc.vals)
						for i, v := range tc.vals {
							if v >= target {
								want = i
								break
							}
						}
						if g := s.SearchGE(0, s.Len(), target); g != want {
							t.Fatalf("%s: SearchGE(%d)=%d want %d", c.Name(), target, g, want)
						}
					}
				}
				buf := AppendSeq(nil, s)
				back, n, err := DecodeSeq(buf)
				if err != nil || n != len(buf) {
					t.Fatalf("%s: DecodeSeq err=%v n=%d/%d", c.Name(), err, n, len(buf))
				}
				if back.CodecID() != c.ID() || back.Len() != s.Len() {
					t.Fatalf("%s: container round-trip changed identity", c.Name())
				}
				if len(tc.vals) > 0 && !reflect.DeepEqual(back.DecodeAll(nil), tc.vals) {
					t.Fatalf("%s: container round-trip changed values", c.Name())
				}
			}
		}
	})
}

// FuzzMonotoneDeltaPatterns drives the monotone encoders with explicit
// delta streams (varint-decoded from the input), hunting for carry and
// anchor bugs in the per-block delta layout.
func FuzzMonotoneDeltaPatterns(f *testing.F) {
	seed := make([]byte, 0, 64)
	for i := 0; i < 20; i++ {
		seed = binary.AppendUvarint(seed, uint64(i*i))
	}
	f.Add(seed)
	f.Add([]byte{0x80, 0x80, 0x01, 0x00, 0x01})
	f.Fuzz(func(t *testing.T, data []byte) {
		var vals []uint64
		var sum uint64
		for len(data) > 0 && len(vals) < 4096 {
			d, n := binary.Uvarint(data)
			if n <= 0 {
				break
			}
			data = data[n:]
			d %= 1 << 32 // keep sums far from overflow
			sum += d
			vals = append(vals, sum)
		}
		for _, c := range AllCodecs() {
			s := c.Encode(vals, true, 0)
			if s == nil {
				continue
			}
			if len(vals) > 0 && !reflect.DeepEqual(s.DecodeAll(nil), vals) {
				t.Fatalf("%s: delta round-trip mismatch", c.Name())
			}
			var blk [SeqBlockSize]uint64
			for b := 0; b*SeqBlockSize < len(vals); b++ {
				cnt := s.DecodeBlockInto(b, &blk)
				for j := 0; j < cnt; j++ {
					if blk[j] != vals[b*SeqBlockSize+j] {
						t.Fatalf("%s: block %d[%d] mismatch", c.Name(), b, j)
					}
				}
			}
		}
	})
}
