package succinct

import (
	"math/rand"
	"testing"
)

// benchText generates compressible text with a small vocabulary — the
// regime Ψ's delta compression (and hence the decode kernels) target.
func benchText(n int, seed int64) []byte {
	rng := rand.New(rand.NewSource(seed))
	words := []string{"alpha", "beta", "gamma", "delta", "epsilon", "zeta", "graph", "store", "query", "edge"}
	out := make([]byte, 0, n)
	for len(out) < n {
		out = append(out, words[rng.Intn(len(words))]...)
		out = append(out, ' ')
	}
	return out[:n]
}

// BenchmarkExtract measures the core random-access primitive: one ISA
// lookup plus a 64-byte Ψ walk.
func BenchmarkExtract(b *testing.B) {
	s := Build(benchText(1<<18, 1), Options{})
	offs := make([]int, 1024)
	rng := rand.New(rand.NewSource(2))
	for i := range offs {
		offs[i] = rng.Intn(s.InputLen() - 64)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Extract(offs[i%len(offs)], 64)
	}
}

// BenchmarkExtractAppend measures the zero-alloc variant with a reused
// destination buffer.
func BenchmarkExtractAppend(b *testing.B) {
	s := Build(benchText(1<<18, 1), Options{})
	offs := make([]int, 1024)
	rng := rand.New(rand.NewSource(2))
	for i := range offs {
		offs[i] = rng.Intn(s.InputLen() - 64)
	}
	buf := make([]byte, 0, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = s.ExtractAppend(buf[:0], offs[i%len(offs)], 64)
	}
}

// BenchmarkSearchCount measures backward search (the SearchGE probe
// sequence) without the per-hit SA walks.
func BenchmarkSearchCount(b *testing.B) {
	s := Build(benchText(1<<18, 1), Options{})
	pats := [][]byte{[]byte("alpha "), []byte("gamma"), []byte("store q"), []byte("zeta")}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Count(pats[i%len(pats)])
	}
}
