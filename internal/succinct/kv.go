package succinct

import (
	"fmt"
	"slices"

	"zipg/internal/bitutil"
)

// KVStore is Succinct's key-value interface (§3.1 of the ZipG paper:
// Succinct exposes "a flat file interface for executing queries on
// unstructured data, and a key-value (KV) interface for queries on
// semi-structured data"). Records are concatenated into one flat file
// separated by a non-printable delimiter and compressed as a single
// Store; a sorted (recordID, offset) index provides Get, and the flat
// file's substring search provides SearchKeys ("keys whose value
// contains string val").
//
// ZipG's NodeFile is a specialization of this layout (delimiter-encoded
// property lists instead of opaque values); the KV interface is part of
// the substrate in its own right and is used by tests and examples that
// exercise Succinct directly.
type KVStore struct {
	store   *Store
	ids     []int64
	offsets []int64
	delim   byte
}

// kvDelim separates records in the flat file. Values must not contain it.
const kvDelim byte = 0x1E

// BuildKV compresses a set of records. Keys are arbitrary int64s (they
// are sorted internally); values are byte strings that must not contain
// the 0x1E record separator.
func BuildKV(records map[int64][]byte, opts Options) (*KVStore, error) {
	ids := make([]int64, 0, len(records))
	for id := range records {
		ids = append(ids, id)
	}
	slices.Sort(ids)

	var flat []byte
	offsets := make([]int64, len(ids))
	for i, id := range ids {
		v := records[id]
		for _, b := range v {
			if b == kvDelim {
				return nil, fmt.Errorf("succinct: record %d contains the reserved separator 0x%02x", id, kvDelim)
			}
		}
		offsets[i] = int64(len(flat))
		flat = append(flat, v...)
		flat = append(flat, kvDelim)
	}
	return &KVStore{
		store:   Build(flat, opts),
		ids:     ids,
		offsets: offsets,
		delim:   kvDelim,
	}, nil
}

// Len returns the number of records.
func (kv *KVStore) Len() int { return len(kv.ids) }

// Keys returns the record IDs, ascending.
func (kv *KVStore) Keys() []int64 { return kv.ids }

// indexOf returns the index of id, or -1.
func (kv *KVStore) indexOf(id int64) int {
	k := bitutil.SearchGE(kv.ids, id)
	if k < len(kv.ids) && kv.ids[k] == id {
		return k
	}
	return -1
}

// Get returns the record's value (Succinct's get(recordID)).
func (kv *KVStore) Get(id int64) ([]byte, bool) {
	k := kv.indexOf(id)
	if k < 0 {
		return nil, false
	}
	end := int64(kv.store.InputLen())
	if k+1 < len(kv.ids) {
		end = kv.offsets[k+1] - 1 // strip the separator
	} else {
		end-- // trailing separator
	}
	n := int(end - kv.offsets[k])
	if n == 0 {
		return []byte{}, true
	}
	return kv.store.Extract(int(kv.offsets[k]), n), true
}

// Extract returns len bytes of the record's value starting at off —
// random access *within* a record without materializing it.
func (kv *KVStore) Extract(id int64, off, length int) ([]byte, bool) {
	k := kv.indexOf(id)
	if k < 0 || off < 0 {
		return nil, false
	}
	out := kv.store.Extract(int(kv.offsets[k])+off, length)
	// Truncate at the record boundary.
	for i, b := range out {
		if b == kv.delim {
			out = out[:i]
			break
		}
	}
	return out, true
}

// SearchKeys returns the IDs of records whose value contains val
// (Succinct's search(val) on the KV interface), ascending, each at most
// once.
func (kv *KVStore) SearchKeys(val []byte) []int64 {
	if len(val) == 0 {
		return nil
	}
	offs := kv.store.Search(val)
	seen := make(map[int64]bool)
	var out []int64
	for _, off := range offs {
		k := bitutil.SearchGT(kv.offsets, off) - 1
		if k < 0 {
			continue
		}
		id := kv.ids[k]
		if !seen[id] {
			seen[id] = true
			out = append(out, id)
		}
	}
	slices.Sort(out)
	return out
}

// CompressedSize returns the KV store's footprint in bytes, including
// the record index.
func (kv *KVStore) CompressedSize() int {
	return kv.store.CompressedSize() + len(kv.ids)*16
}
