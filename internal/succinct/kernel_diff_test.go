package succinct

import (
	"bytes"
	"math/rand"
	"testing"
)

// diffTexts returns the corpora the kernel differential tests run over:
// compressible word salad, high-entropy bytes, a tiny alphabet with long
// runs, and a short text smaller than one sampling interval.
func diffTexts() map[string][]byte {
	long := benchText(4096, 3)
	random := buildText(5, 2048, 26)
	runs := bytes.Repeat([]byte("aaaabbbbccccaaaa"), 128)
	return map[string][]byte{
		"words":  long,
		"random": random,
		"runs":   runs,
		"tiny":   []byte("ab"),
	}
}

// TestExtractKernelsAgainstReference checks Extract, ExtractAppend and
// CharAt byte-for-byte against the original text at every sampling rate,
// on random windows including boundary-straddling and past-EOF reads.
func TestExtractKernelsAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for name, text := range diffTexts() {
		for _, alpha := range []int{4, 8, 32} {
			s := Build(text, Options{SamplingRate: alpha})
			for trial := 0; trial < 200; trial++ {
				off := rng.Intn(len(text))
				n := 1 + rng.Intn(96)
				want := text[off:min(off+n, len(text))]
				if got := s.Extract(off, n); !bytes.Equal(got, want) {
					t.Fatalf("%s/α=%d: Extract(%d,%d)=%q want %q", name, alpha, off, n, got, want)
				}
				got := s.ExtractAppend(nil, off, n)
				if !bytes.Equal(got, want) {
					t.Fatalf("%s/α=%d: ExtractAppend(%d,%d)=%q want %q", name, alpha, off, n, got, want)
				}
				// Appending must preserve the prefix.
				pre := []byte("pre")
				got = s.ExtractAppend(pre, off, n)
				if !bytes.Equal(got[:3], pre) || !bytes.Equal(got[3:], want) {
					t.Fatalf("%s/α=%d: ExtractAppend with prefix = %q", name, alpha, got)
				}
				if c := s.CharAt(off); c != text[off] {
					t.Fatalf("%s/α=%d: CharAt(%d)=%q want %q", name, alpha, off, c, text[off])
				}
			}
			// Whole-text extraction.
			if got := s.Extract(0, len(text)); !bytes.Equal(got, text) {
				t.Fatalf("%s/α=%d: whole-text extract mismatch", name, alpha)
			}
		}
	}
}

// TestWalkerAgainstReference drives a Walker through random mixes of
// Append, AppendUntil and Skip calls and checks every materialized byte
// and every cursor offset against the original text.
func TestWalkerAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for name, text := range diffTexts() {
		for _, alpha := range []int{4, 8, 32} {
			s := Build(text, Options{SamplingRate: alpha})
			for trial := 0; trial < 60; trial++ {
				start := rng.Intn(len(text))
				w := s.Walk(start)
				pos := start
				if w.Offset() != pos {
					t.Fatalf("%s/α=%d: Walk(%d).Offset()=%d", name, alpha, start, w.Offset())
				}
				var buf []byte
				for step := 0; step < 12 && pos < len(text); step++ {
					switch rng.Intn(3) {
					case 0: // Append n bytes
						n := 1 + rng.Intn(40)
						want := text[pos:min(pos+n, len(text))]
						buf = w.Append(buf[:0], n)
						if !bytes.Equal(buf, want) {
							t.Fatalf("%s/α=%d: Append(%d) at %d = %q want %q", name, alpha, n, pos, buf, want)
						}
						pos += len(want)
					case 1: // AppendUntil a delimiter that occurs in the text
						delim := text[rng.Intn(len(text))]
						maxN := 1 + rng.Intn(40)
						end := pos
						for end < len(text) && end-pos < maxN && text[end] != delim {
							end++
						}
						want := text[pos:end]
						buf = w.AppendUntil(buf[:0], delim, maxN)
						if !bytes.Equal(buf, want) {
							t.Fatalf("%s/α=%d: AppendUntil(%q,%d) at %d = %q want %q", name, alpha, delim, maxN, pos, buf, want)
						}
						pos = end
					case 2: // Skip — exercises both walk-forward and re-anchor
						n := 1 + rng.Intn(3*alpha)
						w.Skip(n)
						pos = min(pos+n, len(text)) // clamps at EOF (the sentinel)
					}
					if w.Offset() != pos {
						t.Fatalf("%s/α=%d: walker offset %d, reference %d", name, alpha, w.Offset(), pos)
					}
				}
			}
		}
	}
}

// TestSearchAgainstNaiveAllAlphas re-runs the search differential across
// the sampling rates the access kernels special-case, with patterns drawn
// from the text (guaranteed hits) and random patterns (mostly misses).
func TestSearchAgainstNaiveAllAlphas(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for name, text := range diffTexts() {
		if len(text) < 8 {
			continue
		}
		for _, alpha := range []int{4, 8, 32} {
			s := Build(text, Options{SamplingRate: alpha})
			for trial := 0; trial < 40; trial++ {
				var pat []byte
				if trial%2 == 0 {
					off := rng.Intn(len(text) - 4)
					pat = text[off : off+1+rng.Intn(4)]
				} else {
					pat = buildText(int64(trial), 1+rng.Intn(4), 27)
				}
				want := naiveSearch(text, pat)
				got := s.Search(pat)
				if len(got) != len(want) {
					t.Fatalf("%s/α=%d: Search(%q) found %d hits want %d", name, alpha, pat, len(got), len(want))
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("%s/α=%d: Search(%q)[%d]=%d want %d", name, alpha, pat, i, got[i], want[i])
					}
				}
				if c := s.Count(pat); c != len(want) {
					t.Fatalf("%s/α=%d: Count(%q)=%d want %d", name, alpha, pat, c, len(want))
				}
			}
		}
	}
}

// TestExtractAppendZeroAlloc proves the zero-alloc claim: with a warm
// destination buffer, ExtractAppend performs no allocations per call.
func TestExtractAppendZeroAlloc(t *testing.T) {
	s := Build(benchText(1<<14, 41), Options{SamplingRate: 8})
	buf := make([]byte, 0, 128)
	offs := []int{0, 17, 1000, 8000, s.InputLen() - 200}
	i := 0
	allocs := testing.AllocsPerRun(200, func() {
		buf = s.ExtractAppend(buf[:0], offs[i%len(offs)], 64)
		i++
	})
	if allocs != 0 {
		t.Fatalf("ExtractAppend allocated %.1f times per call, want 0", allocs)
	}
}
