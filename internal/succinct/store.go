// Package succinct implements the compressed flat-file store that ZipG
// builds on (Agarwal, Khandelwal, Stoica — "Succinct: Enabling Queries on
// Compressed Data", NSDI 2015).
//
// A Store holds a compressed representation of a byte string supporting
// two primitives without ever materializing the original:
//
//   - Extract(off, len): random access to any substring, and
//   - Search(pattern): offsets of every occurrence of a substring.
//
// The representation is the one the paper describes: a suffix array (SA)
// and its inverse (ISA), both kept only at a sampling rate α, plus the
// "next pointer array" NPA (elsewhere called Ψ), where
//
//	Ψ[i] = ISA[(SA[i]+1) mod n].
//
// Ψ is strictly increasing within each character bucket of the suffix
// array, so it is stored as per-bucket block-compressed monotone
// sequences — this is where the compression comes from, and it shrinks
// with the compressibility of the input. Unsampled SA/ISA values are
// recovered by walking Ψ at most α steps, giving the paper's space/latency
// knob: space ≈ 2n·log(n)/α for the samples, latency ∝ α.
package succinct

import (
	"fmt"
	"runtime"
	"time"

	"zipg/internal/bitutil"
	"zipg/internal/memsim"
	"zipg/internal/suffix"
	"zipg/internal/telemetry"
)

// DefaultSamplingRate is the default α. 32 matches the Succinct paper's
// default operating point.
const DefaultSamplingRate = 32

// Store is an immutable compressed representation of a byte string.
// All methods are safe for concurrent use.
type Store struct {
	n     int // text length + 1 (sentinel)
	alpha int

	// Character buckets of the suffix array. bucketChar holds the shifted
	// byte values (original byte + 1; 0 is the sentinel) present in the
	// text in ascending order; rows [bucketStart[k], bucketStart[k+1])
	// hold the suffixes beginning with bucketChar[k].
	bucketChar  []int32
	bucketStart []int32

	// rowDir is the sampled row→bucket directory: rowDir[r>>rowDirShift]
	// is the bucket containing row r<<rowDirShift, making bucketOfRow —
	// executed once per Ψ step — O(1) amortized instead of a binary
	// search. Derived from bucketStart; a few KB, charged to the medium.
	rowDir []int32

	// psiBlockBase numbers every bucket's monotone blocks in one global
	// sequence: bucket k's block j has global ID psiBlockBase[k]+j, and
	// psiBlocks is the total. Batch kernels key their per-batch
	// decoded-block cache by global ID. Derived; rebuilt at load.
	psiBlockBase []int32
	psiBlocks    int

	// Ψ, stored per bucket. One codec per region: every bucket uses the
	// codec recorded in psiMeta, chosen at build time.
	psi []bitutil.Seq

	// Value-sampled SA: saSampleBits marks rows whose SA value is a
	// multiple of α; saSamples holds those values in row order.
	saSampleBits *bitutil.Bitmap
	saSamples    bitutil.Seq

	// Position-sampled ISA: isaSamples[j] = ISA[j*α].
	isaSamples bitutil.Seq

	// Per-region codec bookkeeping (see RegionCodecs).
	psiMeta regionMeta
	saMeta  regionMeta
	isaMeta regionMeta

	// Simulated storage placement.
	med            *memsim.Medium
	regPsi         uint32
	regSA          uint32
	regISA         uint32
	psiBytesPerRow float64
}

// Options configures Build.
type Options struct {
	// SamplingRate is α; 0 means DefaultSamplingRate.
	SamplingRate int
	// Medium is the simulated storage the structure lives on; nil means
	// an unlimited (never-missing) medium.
	Medium *memsim.Medium
	// Codec selects how each region's integer codec is chosen. The zero
	// value (bitutil.CodecAuto) trial-encodes a sample of each region
	// with every registered codec and picks per region by measured
	// decode-speed × size score.
	Codec bitutil.CodecPolicy
}

// regionMeta holds the trial measurements that chose a region's codec
// (empty for forced policies and loaded stores). The chosen codec itself
// is not recorded here — the encoded sequences carry their own CodecID,
// which cannot diverge from reality.
type regionMeta struct {
	trials []bitutil.TrialResult
}

// Build compresses text. The text may contain any byte values.
func Build(text []byte, opts Options) *Store {
	alpha := opts.SamplingRate
	if alpha <= 0 {
		alpha = DefaultSamplingRate
	}
	med := opts.Medium
	if med == nil {
		med = memsim.Unlimited()
	}

	sa := suffix.Array(text)
	n := len(sa)

	isa := make([]int32, n)
	for i, p := range sa {
		isa[p] = int32(i)
	}

	s := &Store{n: n, alpha: alpha, med: med}

	// Character buckets. The shifted alphabet has the sentinel at 0.
	present := make([]bool, 257)
	present[0] = true
	for _, c := range text {
		present[int32(c)+1] = true
	}
	for c := int32(0); c < 257; c++ {
		if present[c] {
			s.bucketChar = append(s.bucketChar, c)
		}
	}
	charOfPos := func(p int32) int32 {
		if int(p) == n-1 {
			return 0
		}
		return int32(text[p]) + 1
	}
	// Row ranges per bucket: suffixes are sorted, so the first row of each
	// bucket is found by scanning once.
	s.bucketStart = make([]int32, len(s.bucketChar)+1)
	{
		bi := 0
		for row := 0; row < n; row++ {
			c := charOfPos(sa[row])
			for s.bucketChar[bi] != c {
				bi++
				s.bucketStart[bi] = int32(row)
			}
		}
		for bi++; bi < len(s.bucketStart); bi++ {
			s.bucketStart[bi] = int32(n)
		}
	}

	// Ψ per bucket. One codec serves the whole region: the choice is
	// trialed once — on the largest bucket, whose delta distribution
	// dominates the region's bytes (buckets cannot be concatenated for
	// sampling without breaking monotonicity) — then applied to every
	// bucket.
	psiVals := make([]uint64, 0, n)
	bucketVals := func(b int) []uint64 {
		lo, hi := int(s.bucketStart[b]), int(s.bucketStart[b+1])
		psiVals = psiVals[:0]
		for row := lo; row < hi; row++ {
			next := int(sa[row]) + 1
			if next == n {
				next = 0
			}
			psiVals = append(psiVals, uint64(isa[next]))
		}
		return psiVals
	}
	psiCodec := resolveCodec(opts.Codec, &s.psiMeta, func() []uint64 {
		big := 0
		for b := range s.bucketChar {
			if s.bucketStart[b+1]-s.bucketStart[b] > s.bucketStart[big+1]-s.bucketStart[big] {
				big = b
			}
		}
		return bucketVals(big)
	}, true, 0)
	s.psi = make([]bitutil.Seq, len(s.bucketChar))
	var psiBytes int
	for b := range s.bucketChar {
		s.psi[b] = encodeRegion(psiCodec, bucketVals(b), true, 0)
		psiBytes += s.psi[b].SizeBytes()
		// Builds run as background work (rollover compression, online
		// compaction) racing foreground queries; yield between buckets so
		// query latency is bounded by one bucket's encode, not the whole
		// Ψ region's.
		runtime.Gosched()
	}
	s.psiBytesPerRow = float64(psiBytes) / float64(n)

	// SA samples (by value). Sample values in row order are not monotone,
	// so the region uses the raw layout; the width hint reproduces the
	// historical fixed-width packing under the legacy codec.
	s.saSampleBits = bitutil.NewBitmap(n)
	var sampleVals []uint64
	for row := 0; row < n; row++ {
		if int(sa[row])%alpha == 0 {
			s.saSampleBits.Set(row)
		}
	}
	s.saSampleBits.FinishRank()
	for row := 0; row < n; row++ {
		if s.saSampleBits.Get(row) {
			sampleVals = append(sampleVals, uint64(sa[row]))
		}
	}
	widthHint := bitutil.WidthFor(uint64(n - 1))
	saCodec := resolveCodec(opts.Codec, &s.saMeta, func() []uint64 { return sampleVals }, false, widthHint)
	s.saSamples = encodeRegion(saCodec, sampleVals, false, widthHint)

	// ISA samples (by position).
	isaVals := make([]uint64, 0, (n+alpha-1)/alpha)
	for p := 0; p < n; p += alpha {
		isaVals = append(isaVals, uint64(isa[p]))
	}
	isaCodec := resolveCodec(opts.Codec, &s.isaMeta, func() []uint64 { return isaVals }, false, widthHint)
	s.isaSamples = encodeRegion(isaCodec, isaVals, false, widthHint)

	s.countCodecMetrics()
	s.registerRegions()
	return s
}

// resolveCodec picks a region's codec: a forced policy pins it; auto
// trial-encodes the sample (fetched lazily — forced builds never
// materialize it) and records the trials in meta for reports.
func resolveCodec(policy bitutil.CodecPolicy, meta *regionMeta, sample func() []uint64, monotone bool, width uint) bitutil.Codec {
	if id, ok := policy.Forced(); ok {
		c, _ := bitutil.CodecByID(id)
		return c
	}
	start := time.Now()
	c, trials := bitutil.ChooseCodec(sample(), monotone, width)
	if telemetry.Enabled() {
		mCodecTrialNs.Add(time.Since(start).Nanoseconds())
	}
	meta.trials = trials
	return c
}

// encodeRegion encodes vals with the region's codec, falling back to
// legacy (which encodes anything) if the codec cannot represent them —
// e.g. a forced simple8b policy over values >= 2^60.
func encodeRegion(c bitutil.Codec, vals []uint64, monotone bool, width uint) bitutil.Seq {
	if seq := c.Encode(vals, monotone, width); seq != nil {
		return seq
	}
	legacy, _ := bitutil.CodecByID(bitutil.CodecLegacy)
	return legacy.Encode(vals, monotone, width)
}

// rowDirShift fixes the row→bucket directory's sampling stride at
// 1<<rowDirShift rows: one int32 per 256 rows is n/64 bytes — small
// against Ψ's ~2 bytes/row — and a stride can span at most 256 bucket
// boundaries in total across the whole directory, so the linear advance
// in bucketOfRow is O(1) amortized.
const rowDirShift = 8

// buildRowDir derives the sampled row→bucket directory from the bucket
// boundary table (never serialized; rebuilt at load).
func (s *Store) buildRowDir() {
	stride := 1 << rowDirShift
	dir := make([]int32, (s.n+stride-1)/stride)
	b := 0
	for si := range dir {
		row := int32(si << rowDirShift)
		for s.bucketStart[b+1] <= row {
			b++
		}
		dir[si] = int32(b)
	}
	s.rowDir = dir
}

// buildPsiBlockIndex derives the global block numbering from the bucket
// table (never serialized; rebuilt at load, like rowDir).
func (s *Store) buildPsiBlockIndex() {
	s.psiBlockBase = make([]int32, len(s.psi))
	total := 0
	for k, p := range s.psi {
		s.psiBlockBase[k] = int32(total)
		total += (p.Len() + bitutil.MonotoneBlockSize - 1) / bitutil.MonotoneBlockSize
	}
	s.psiBlocks = total
}

func (s *Store) registerRegions() {
	s.buildRowDir()
	s.buildPsiBlockIndex()
	var psiBytes int
	for _, p := range s.psi {
		psiBytes += p.SizeBytes()
	}
	s.regPsi = s.med.Register(int64(psiBytes))
	s.regSA = s.med.Register(int64(s.saSampleBits.SizeBytes() + s.saSamples.SizeBytes()))
	s.regISA = s.med.Register(int64(s.isaSamples.SizeBytes()))
	// Bucket boundary tables and the row→bucket directory are a few KB
	// and always hot; account for them in the footprint without charging
	// accesses.
	s.med.Grow(int64(len(s.bucketChar)*4 + len(s.bucketStart)*4 + len(s.rowDir)*4))
}

// InputLen returns the length of the original (uncompressed) text.
func (s *Store) InputLen() int { return s.n - 1 }

// SamplingRate returns α.
func (s *Store) SamplingRate() int { return s.alpha }

// CompressedSize returns the total in-memory footprint in bytes.
func (s *Store) CompressedSize() int {
	total := len(s.bucketChar)*4 + len(s.bucketStart)*4 + len(s.rowDir)*4
	for _, p := range s.psi {
		total += p.SizeBytes()
	}
	total += s.saSampleBits.SizeBytes() + s.saSamples.SizeBytes() + s.isaSamples.SizeBytes()
	return total
}

// Medium returns the simulated storage the store lives on.
func (s *Store) Medium() *memsim.Medium { return s.med }

// bucketOfRow returns the bucket index containing row: the directory
// entry for the row's stride, advanced past any bucket boundaries inside
// the stride. O(1) amortized — this runs once per Ψ step, so it is the
// single hottest lookup in the store.
func (s *Store) bucketOfRow(row int) int {
	b := int(s.rowDir[row>>rowDirShift])
	for int(s.bucketStart[b+1]) <= row {
		b++
	}
	return b
}

// bucketOfChar returns the bucket index for shifted char c, or -1.
func (s *Store) bucketOfChar(c int32) int {
	k := bitutil.SearchGE(s.bucketChar, c)
	if k < len(s.bucketChar) && s.bucketChar[k] == c {
		return k
	}
	return -1
}

// psiAt evaluates Ψ[row], charging the simulated medium when charge is
// set (the in-memory path); the cold path walks uncharged and pays one
// direct flat-file read instead (see Extract).
func (s *Store) psiAt(row int, charge bool) int {
	b := s.bucketOfRow(row)
	if charge {
		s.med.Access(s.regPsi, int64(float64(row)*s.psiBytesPerRow), 8)
	}
	return int(s.psi[b].Get(row - int(s.bucketStart[b])))
}

// stepRow returns the (shifted) first character of the suffix at row and
// Ψ[row] in one bucket lookup.
func (s *Store) stepRow(row int, charge bool) (c int32, next int) {
	b := s.bucketOfRow(row)
	if charge {
		s.med.Access(s.regPsi, int64(float64(row)*s.psiBytesPerRow), 8)
	}
	return s.bucketChar[b], int(s.psi[b].Get(row - int(s.bucketStart[b])))
}

// LookupSA returns SA[row]: the text offset of the suffix at the given
// suffix-array row. Cost: at most α Ψ steps.
func (s *Store) LookupSA(row int) int {
	if row < 0 || row >= s.n {
		panic(fmt.Sprintf("succinct: row %d out of range [0,%d)", row, s.n))
	}
	steps := 0
	for !s.saSampleBits.Get(row) {
		// Charge the walk at the same stride as extraction (see
		// extractChargeStride); a locate is at most α steps.
		if steps%8 == 0 {
			s.chargePsiAt(row)
		}
		row = s.psiAt(row, false)
		steps++
	}
	rank := s.saSampleBits.Rank1(row)
	s.med.Access(s.regSA, int64(rank)*8, 8)
	if telemetry.Enabled() {
		mPsiSteps.Add(int64(steps))
	}
	v := int(s.saSamples.Get(rank)) - steps
	if v < 0 {
		v += s.n
	}
	return v
}

// LookupISA returns ISA[pos]: the suffix-array row of the suffix starting
// at text offset pos. Cost: at most α Ψ steps.
func (s *Store) LookupISA(pos int) int {
	if pos < 0 || pos >= s.n {
		panic(fmt.Sprintf("succinct: pos %d out of range [0,%d)", pos, s.n))
	}
	return s.lookupISA(pos, true)
}

func (s *Store) lookupISA(pos int, charge bool) int {
	q := pos / s.alpha
	if charge {
		s.med.Access(s.regISA, int64(q)*8, 8)
	}
	row := int(s.isaSamples.Get(q))
	for p := q * s.alpha; p < pos; p++ {
		row = s.psiAt(row, charge)
	}
	if telemetry.Enabled() {
		mISALookups.Inc()
		mPsiSteps.Add(int64(pos - q*s.alpha))
	}
	return row
}

// extractChargeStride bounds how often an extract's Ψ walk charges the
// medium: one page access per stride steps (plus the ISA sample page).
// A raw per-step charge would bill a 640-byte property extraction as
// ~650 random page touches, which is not how the deployed system behaves
// — the flat files are also persisted on SSD and a cold extraction is
// served by a positioned read ("a single SSD lookup for all queries",
// paper §5.2) while the resident structures serve hot ones. Sampling the
// walk models that batching while still letting the pages warm the
// cache, so residency — and hence each system's footprint — remains what
// decides performance under memory pressure.
const extractChargeStride = 64

// chargePsiAt bills one page access at row's position in the Ψ region.
func (s *Store) chargePsiAt(row int) {
	s.med.Access(s.regPsi, int64(float64(row)*s.psiBytesPerRow), 8)
}

// chargeISAAt bills the ISA sample page used for text position pos.
func (s *Store) chargeISAAt(pos int) {
	s.med.Access(s.regISA, int64(pos/s.alpha)*8, 8)
}
