package succinct

import "slices"

// Extract returns up to length bytes of the original text starting at
// offset off. If off+length runs past the end of the text the result is
// truncated. This is Succinct's random-access primitive: it recovers the
// substring by walking Ψ from ISA[off], one step per byte, without
// decompressing anything else.
func (s *Store) Extract(off, length int) []byte {
	if off < 0 || off >= s.n-1 || length <= 0 {
		return nil
	}
	return s.ExtractAppend(make([]byte, 0, length), off, length)
}

// ExtractAppend appends up to length bytes of the original text starting
// at offset off to dst and returns the extended slice — Extract without
// the allocation. With a reused destination buffer the steady state is
// zero allocations per call.
func (s *Store) ExtractAppend(dst []byte, off, length int) []byte {
	if off < 0 || off >= s.n-1 || length <= 0 {
		return dst
	}
	w := s.Walk(off)
	return w.Append(dst, length)
}

// ExtractUntil returns the bytes starting at off up to (not including)
// the first occurrence of the delimiter byte, stopping after max bytes if
// the delimiter is not seen earlier.
func (s *Store) ExtractUntil(off int, delim byte, max int) []byte {
	if off < 0 || off >= s.n-1 || max <= 0 {
		return nil
	}
	w := s.Walk(off)
	return w.AppendUntil(make([]byte, 0, 16), delim, max)
}

// CharAt returns the byte at text offset off.
func (s *Store) CharAt(off int) byte {
	row := s.LookupISA(off)
	b := s.bucketOfRow(row)
	return byte(s.bucketChar[b] - 1)
}

// searchRange returns the suffix-array row range [lo, hi) of suffixes
// that begin with pattern, via Ψ-based backward search: the range for
// pattern[k:] is refined into the range for pattern[k-1:] with two binary
// searches inside the bucket of pattern[k-1], exploiting the monotonicity
// of Ψ within a bucket.
func (s *Store) searchRange(pattern []byte) (int, int) {
	if len(pattern) == 0 {
		return 0, 0
	}
	// Range for the last character: its whole bucket.
	c := int32(pattern[len(pattern)-1]) + 1
	b := s.bucketOfChar(c)
	if b < 0 {
		return 0, 0
	}
	lo, hi := int(s.bucketStart[b]), int(s.bucketStart[b+1])
	for k := len(pattern) - 2; k >= 0 && lo < hi; k-- {
		c = int32(pattern[k]) + 1
		b = s.bucketOfChar(c)
		if b < 0 {
			return 0, 0
		}
		bStart, bEnd := int(s.bucketStart[b]), int(s.bucketStart[b+1])
		size := bEnd - bStart
		// Rows i in the bucket with Ψ(i) in [lo, hi).
		s.med.Access(s.regPsi, int64(float64(bStart)*s.psiBytesPerRow), 64)
		newLo := s.psi[b].SearchGE(0, size, uint64(lo))
		newHi := s.psi[b].SearchGE(newLo, size, uint64(hi))
		lo, hi = bStart+newLo, bStart+newHi
	}
	return lo, hi
}

// Count returns the number of occurrences of pattern in the text.
func (s *Store) Count(pattern []byte) int {
	lo, hi := s.searchRange(pattern)
	return hi - lo
}

// Search returns the text offsets of every occurrence of pattern, in
// ascending order.
func (s *Store) Search(pattern []byte) []int64 {
	lo, hi := s.searchRange(pattern)
	if lo >= hi {
		return nil
	}
	out := make([]int64, 0, hi-lo)
	for row := lo; row < hi; row++ {
		out = append(out, int64(s.LookupSA(row)))
	}
	slices.Sort(out)
	return out
}

// SearchFirst returns the smallest text offset of an occurrence of
// pattern, or -1 if there is none. Unlike Search it still must locate
// every matching row (rows are in suffix order, not text order), so its
// advantage over Search is only allocation.
func (s *Store) SearchFirst(pattern []byte) int64 {
	lo, hi := s.searchRange(pattern)
	if lo >= hi {
		return -1
	}
	best := int64(-1)
	for row := lo; row < hi; row++ {
		off := int64(s.LookupSA(row))
		if best < 0 || off < best {
			best = off
		}
	}
	return best
}

// Contains reports whether pattern occurs in the text.
func (s *Store) Contains(pattern []byte) bool {
	lo, hi := s.searchRange(pattern)
	return hi > lo
}
