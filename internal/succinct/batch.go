package succinct

import (
	"sort"
	"sync"

	"zipg/internal/bitutil"
	"zipg/internal/telemetry"
)

// This file implements the vectorized batch read path: N requested
// substrings (or walk anchors) are sorted by text offset and served by
// ONE walker whose Ψ evaluations route through a per-batch decoded-block
// cache shared across the whole batch. Two effects make a batch cheaper
// than a scalar loop over the same requests:
//
//   - locality: consecutive (sorted) requests either continue the current
//     suffix-array walk (a forward Skip) or re-anchor at an ISA sample —
//     whichever is cheaper — so nearby records stop paying one full ISA
//     anchor walk each, and
//   - block-decode sharing: each Ψ evaluation lands in one 16-element
//     monotone block; the batch decodes a block once on first touch into
//     a dense per-batch array and serves every later touch with a plain
//     load, where the scalar path re-sums deltas on every evaluation.
//     A 64-record batch touches each block several times on average, but
//     in an interleaved order no single streaming cursor can exploit.
//
// Results always come back in caller order; sorting is internal.

// batchCursors is the per-batch Ψ decode cache: vals holds decoded Ψ
// values indexed by absolute suffix-array row, and done is a bitmap over
// global block IDs (Store.psiBlockBase) marking which 16-element blocks
// have been decoded into vals. vals is never cleared — done gates every
// read — so a batch costs one bitmap clear plus one block decode per
// distinct block touched. Value is pooled; not safe for concurrent use.
type batchCursors struct {
	s    *Store
	vals []uint64 // decoded Ψ by absolute row; nil => store too big, scalar fallback
	done []uint64
	// reuse counts Ψ evaluations served from an already-decoded block;
	// regions counts evaluations that had to touch the bit stream.
	reuse   int64
	regions int64
}

// maxBatchCacheRows bounds the dense cache: a store with more rows than
// this (32 MiB of vals) serves batches through scalar Ψ reads instead.
// Shards are sized far below this in practice.
const maxBatchCacheRows = 1 << 22

var batchCursorPool = sync.Pool{New: func() any { return new(batchCursors) }}

// getBatchCursors checks a decode cache out of the pool, sized and reset
// for this store.
func (s *Store) getBatchCursors() *batchCursors {
	bc := batchCursorPool.Get().(*batchCursors)
	bc.s = s
	bc.reuse, bc.regions = 0, 0
	if s.n > maxBatchCacheRows {
		bc.vals, bc.done = nil, bc.done[:0]
		return bc
	}
	// Pad so the last block's fixed-size decode target stays in bounds
	// even when the block is short.
	nv := s.n + bitutil.MonotoneBlockSize
	if cap(bc.vals) < nv {
		bc.vals = make([]uint64, nv)
	}
	bc.vals = bc.vals[:nv]
	nd := (s.psiBlocks + 63) / 64
	if cap(bc.done) < nd {
		bc.done = make([]uint64, nd)
	}
	bc.done = bc.done[:nd]
	clear(bc.done)
	return bc
}

// putBatchCursors flushes the batch's cache statistics and returns the
// cache to the pool.
func putBatchCursors(bc *batchCursors) {
	if telemetry.Enabled() {
		mBatchCursorReuse.Add(bc.reuse)
		mBatchRegions.Add(bc.regions)
	}
	bc.s = nil
	batchCursorPool.Put(bc)
}

// stepRow is Store.stepRow with the Ψ evaluation routed through the
// batch's decoded-block cache: the first touch of a block decodes all 16
// elements into vals at their absolute row positions, every later touch
// is a single load.
func (bc *batchCursors) stepRow(row int) (int32, int) {
	s := bc.s
	b := s.bucketOfRow(row)
	i := row - int(s.bucketStart[b])
	if bc.vals == nil {
		bc.regions++
		return s.bucketChar[b], int(s.psi[b].Get(i))
	}
	blk := i / bitutil.MonotoneBlockSize
	g := int(s.psiBlockBase[b]) + blk
	if bc.done[g>>6]&(1<<uint(g&63)) == 0 {
		base := row - i%bitutil.MonotoneBlockSize
		s.psi[b].DecodeBlockInto(blk,
			(*[bitutil.MonotoneBlockSize]uint64)(bc.vals[base:base+bitutil.MonotoneBlockSize]))
		bc.done[g>>6] |= 1 << uint(g&63)
		bc.regions++
	} else {
		bc.reuse++
	}
	return s.bucketChar[b], int(bc.vals[row])
}

// psiAt is Store.psiAt through the shared cursors.
func (bc *batchCursors) psiAt(row int) int {
	_, next := bc.stepRow(row)
	return next
}

// lookupISABatch is lookupISA with the anchor walk's Ψ steps routed
// through bc (uncharged, like a walker's interior steps; callers charge
// the anchor page).
func (s *Store) lookupISABatch(pos int, bc *batchCursors) int {
	q := pos / s.alpha
	row := int(s.isaSamples.Get(q))
	for p := q * s.alpha; p < pos; p++ {
		row = bc.psiAt(row)
	}
	if telemetry.Enabled() {
		mISALookups.Inc()
		mPsiSteps.Add(int64(pos - q*s.alpha))
	}
	return row
}

// walkCursor is Walk with Ψ evaluations routed through shared batch
// cursors.
func (s *Store) walkCursor(off int, bc *batchCursors) Walker {
	if off < 0 {
		off = 0
	}
	if off > s.n-1 {
		off = s.n - 1
	}
	s.chargeISAAt(off)
	row := s.lookupISABatch(off, bc)
	s.chargePsiAt(row)
	return Walker{s: s, row: row, off: off, bc: bc}
}

// WalkBatch visits every requested text offset with one shared walker,
// in ascending offset order (ties keep caller order), calling visit with
// the caller's index each time. The walker carries its suffix-array row
// and the batch's shared Ψ cursors across requests: visit may read and
// skip forward freely, and the move to the next request continues the
// walk when that is cheaper than a fresh ISA anchor.
//
// The contract mirrors Walk: offsets are clamped to the text. visit must
// not retain w past its return, and results derived inside visit appear
// in whatever order the caller indexes them — WalkBatch itself imposes
// only the visiting order.
func (s *Store) WalkBatch(offs []int, visit func(idx int, w *Walker)) {
	if len(offs) == 0 {
		return
	}
	if telemetry.Enabled() {
		mBatchRequests.Add(int64(len(offs)))
	}
	if len(offs) == 1 {
		w := s.Walk(offs[0])
		visit(0, &w)
		return
	}
	order := make([]int, len(offs))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return offs[order[a]] < offs[order[b]] })
	bc := s.getBatchCursors()
	defer putBatchCursors(bc)
	w := s.walkCursor(offs[order[0]], bc)
	for k, idx := range order {
		if k > 0 {
			w.SeekTo(offs[idx])
		}
		visit(idx, &w)
	}
}

// ExtractRequest names one substring for ExtractBatch: up to Len bytes
// starting at text offset Off.
type ExtractRequest struct {
	Off int
	Len int
}

// ExtractBatch extracts every requested substring in one locality-sorted
// sweep and returns the results in caller order. Semantics per request
// match Extract: out-of-range offsets or Len <= 0 yield nil, reads
// truncate at end of text. All results share one backing buffer, and
// exact duplicate requests are decoded once and alias the same bytes —
// treat the results as read-only.
func (s *Store) ExtractBatch(reqs []ExtractRequest) [][]byte {
	out := make([][]byte, len(reqs))
	if len(reqs) == 0 {
		return out
	}
	if telemetry.Enabled() {
		mBatchRequests.Add(int64(len(reqs)))
	}
	// Exact arena size: the walker stops at end of text, so each valid
	// request contributes exactly its truncated length. The arena must
	// never grow past this capacity — earlier results alias into it.
	total := 0
	for _, r := range reqs {
		if r.Off >= 0 && r.Off < s.n-1 && r.Len > 0 {
			l := r.Len
			if m := s.n - 1 - r.Off; l > m {
				l = m
			}
			total += l
		}
	}
	order := make([]int, len(reqs))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		ra, rb := reqs[order[a]], reqs[order[b]]
		if ra.Off != rb.Off {
			return ra.Off < rb.Off
		}
		return ra.Len < rb.Len
	})
	bc := s.getBatchCursors()
	defer putBatchCursors(bc)
	arena := make([]byte, 0, total)
	var w Walker
	started := false
	prev := ExtractRequest{Off: -1, Len: -1}
	prevIdx := -1
	for _, idx := range order {
		r := reqs[idx]
		if r.Off < 0 || r.Off >= s.n-1 || r.Len <= 0 {
			continue // out[idx] stays nil, like Extract
		}
		if prevIdx >= 0 && r == prev {
			out[idx] = out[prevIdx]
			continue
		}
		if !started {
			w = s.walkCursor(r.Off, bc)
			started = true
		} else {
			w.SeekTo(r.Off)
		}
		start := len(arena)
		arena = w.Append(arena, r.Len)
		out[idx] = arena[start:len(arena):len(arena)]
		prev, prevIdx = r, idx
	}
	return out
}
