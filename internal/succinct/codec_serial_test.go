package succinct

import (
	"bytes"
	"testing"

	"zipg/internal/bitutil"
)

// TestSerialV1ForLegacyCodec locks the serial-format versioning: a
// store whose regions all use the legacy codec marshals as ZSUC1 —
// byte-identical to pre-codec builds — while any non-legacy region
// switches the container to ZSUC2. Both load and answer identically.
func TestSerialV1ForLegacyCodec(t *testing.T) {
	text := bytes.Repeat([]byte("abracadabra$kalamazoo|"), 40)

	legacy := Build(text, Options{SamplingRate: 8, Codec: bitutil.CodecForceLegacy})
	blob := legacy.MarshalBinary()
	if !bytes.HasPrefix(blob, []byte(serialMagic)) {
		t.Fatalf("legacy-codec store marshaled with magic %q, want %q", blob[:6], serialMagic)
	}

	varint := Build(text, Options{SamplingRate: 8, Codec: bitutil.CodecForceVarint})
	vblob := varint.MarshalBinary()
	if !bytes.HasPrefix(vblob, []byte(serialMagicV2)) {
		t.Fatalf("varint-codec store marshaled with magic %q, want %q", vblob[:6], serialMagicV2)
	}

	for _, blob := range [][]byte{blob, vblob} {
		got, err := UnmarshalStore(blob, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got.Extract(0, len(text)), text) {
			t.Fatal("reloaded store extracts different bytes")
		}
		if w, g := legacy.Count([]byte("abra")), got.Count([]byte("abra")); g != w {
			t.Fatalf("reloaded Count = %d, want %d", g, w)
		}
	}
}

// TestCodecQueryEquivalence: the same text built under every codec
// policy and several α values answers Extract/Search/Count
// identically — codecs change the encoding, never the answers.
func TestCodecQueryEquivalence(t *testing.T) {
	text := bytes.Repeat([]byte("the quick brown fox|jumps over the lazy dog$"), 25)
	patterns := [][]byte{[]byte("the"), []byte("fox|"), []byte("$"), []byte("zz")}
	ref := Build(text, Options{SamplingRate: 8, Codec: bitutil.CodecForceLegacy})
	for _, alpha := range []int{4, 8, 32} {
		for _, policy := range []bitutil.CodecPolicy{
			bitutil.CodecAuto, bitutil.CodecForceSimple8b, bitutil.CodecForceVarint,
		} {
			s := Build(text, Options{SamplingRate: alpha, Codec: policy})
			if !bytes.Equal(s.Extract(0, len(text)), text) {
				t.Fatalf("alpha=%d policy=%v: extract diverged", alpha, policy)
			}
			for _, p := range patterns {
				want := ref.Search(p)
				got := s.Search(p)
				if len(want) != len(got) {
					t.Fatalf("alpha=%d policy=%v: Search(%q) %d hits, want %d", alpha, policy, p, len(got), len(want))
				}
				for i := range want {
					if want[i] != got[i] {
						t.Fatalf("alpha=%d policy=%v: Search(%q)[%d] = %d, want %d", alpha, policy, p, i, got[i], want[i])
					}
				}
			}
		}
	}
}
