package succinct

import (
	"bytes"
	"math/rand"
	"testing"
)

// TestExtractBatchAgainstScalar proves ExtractBatch byte-identical to a
// scalar Extract loop over the same requests, including shuffled order,
// exact duplicates, overlapping windows, and out-of-range offsets, at
// every sampling rate the kernels special-case.
func TestExtractBatchAgainstScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for name, text := range diffTexts() {
		for _, alpha := range []int{4, 8, 32} {
			s := Build(text, Options{SamplingRate: alpha})
			for trial := 0; trial < 30; trial++ {
				n := 1 + rng.Intn(80)
				reqs := make([]ExtractRequest, n)
				for i := range reqs {
					switch rng.Intn(8) {
					case 0: // out of range / degenerate
						reqs[i] = ExtractRequest{Off: len(text) + rng.Intn(4), Len: 8}
					case 1:
						reqs[i] = ExtractRequest{Off: -1 - rng.Intn(3), Len: 8}
					case 2:
						reqs[i] = ExtractRequest{Off: rng.Intn(len(text)), Len: -rng.Intn(2)}
					case 3: // exact duplicate of an earlier request
						if i > 0 {
							reqs[i] = reqs[rng.Intn(i)]
							continue
						}
						fallthrough
					default:
						reqs[i] = ExtractRequest{Off: rng.Intn(len(text)), Len: 1 + rng.Intn(64)}
					}
				}
				got := s.ExtractBatch(reqs)
				if len(got) != len(reqs) {
					t.Fatalf("%s/α=%d: %d results for %d requests", name, alpha, len(got), len(reqs))
				}
				for i, r := range reqs {
					want := s.Extract(r.Off, r.Len)
					if !bytes.Equal(got[i], want) {
						t.Fatalf("%s/α=%d: batch[%d] for (%d,%d) = %q want %q",
							name, alpha, i, r.Off, r.Len, got[i], want)
					}
					if want == nil && got[i] != nil {
						t.Fatalf("%s/α=%d: batch[%d] non-nil for invalid request", name, alpha, i)
					}
				}
			}
			// Empty batch.
			if got := s.ExtractBatch(nil); len(got) != 0 {
				t.Fatalf("%s/α=%d: ExtractBatch(nil) returned %d results", name, alpha, len(got))
			}
		}
	}
}

// TestWalkBatchAgainstScalar drives WalkBatch with shuffled anchors and
// checks each visit reads exactly what a fresh scalar Walk would, that
// indices arrive in ascending-offset order, and that every request is
// visited exactly once.
func TestWalkBatchAgainstScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	for name, text := range diffTexts() {
		for _, alpha := range []int{4, 8, 32} {
			s := Build(text, Options{SamplingRate: alpha})
			for trial := 0; trial < 20; trial++ {
				n := 1 + rng.Intn(40)
				offs := make([]int, n)
				for i := range offs {
					offs[i] = rng.Intn(len(text))
				}
				seen := make([]int, n)
				lastOff := -1
				s.WalkBatch(offs, func(idx int, w *Walker) {
					seen[idx]++
					if offs[idx] < lastOff {
						t.Fatalf("%s/α=%d: visit order regressed: %d after %d", name, alpha, offs[idx], lastOff)
					}
					lastOff = offs[idx]
					if w.Offset() != offs[idx] {
						t.Fatalf("%s/α=%d: walker at %d, want %d", name, alpha, w.Offset(), offs[idx])
					}
					m := 1 + rng.Intn(32)
					want := text[offs[idx]:min(offs[idx]+m, len(text))]
					got := w.Append(nil, m)
					if !bytes.Equal(got, want) {
						t.Fatalf("%s/α=%d: batch walker read %q at %d want %q", name, alpha, got, offs[idx], want)
					}
				})
				for i, c := range seen {
					if c != 1 {
						t.Fatalf("%s/α=%d: request %d visited %d times", name, alpha, i, c)
					}
				}
			}
		}
	}
}

// TestBatchWalkerSeekTo checks SeekTo forward (walk or re-anchor) and
// backward against the text, on both scalar and batch walkers.
func TestBatchWalkerSeekTo(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	text := diffTexts()["words"]
	for _, alpha := range []int{4, 8, 32} {
		s := Build(text, Options{SamplingRate: alpha})
		check := func(w *Walker) {
			for step := 0; step < 40; step++ {
				target := rng.Intn(len(text))
				w.SeekTo(target)
				if w.Offset() != target {
					t.Fatalf("α=%d: SeekTo(%d) left offset %d", alpha, target, w.Offset())
				}
				m := 1 + rng.Intn(16)
				want := text[target:min(target+m, len(text))]
				if got := w.Append(nil, m); !bytes.Equal(got, want) {
					t.Fatalf("α=%d: after SeekTo(%d) read %q want %q", alpha, target, got, want)
				}
			}
		}
		w := s.Walk(0)
		check(&w)
		s.WalkBatch([]int{0, 1}, func(idx int, w *Walker) {
			if idx == 1 {
				check(w)
			}
		})
	}
}
