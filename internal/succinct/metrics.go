package succinct

import (
	"zipg/internal/bitutil"
	"zipg/internal/telemetry"
)

// Kernel telemetry: the quantities the streaming kernels exist to
// shrink. Counters are batched — hot loops accumulate locally and add
// once per operation, and every mutator is a no-op while telemetry is
// disabled — so /metrics can show the Ψ walks a cursor or walker
// eliminates without taxing the walks themselves.
var (
	// mPsiSteps counts Ψ evaluations on decode paths (ISA anchor walks,
	// extract/walk byte steps, SA locates). One Extract of n bytes is
	// ~α/2 + n steps; a Walker re-uses its row so consecutive reads of
	// one record pay the anchor walk once.
	mPsiSteps = telemetry.NewCounter("zipg_succinct_psi_steps_total",
		"Psi (NPA) steps executed by extract/locate kernels.")

	// mISALookups counts ISA sample anchor lookups — one per Extract
	// before the walker, one per record read after.
	mISALookups = telemetry.NewCounter("zipg_succinct_isa_lookups_total",
		"ISA sample lookups anchoring suffix-array walks.")

	// mExtractBytes counts bytes materialized out of the compressed
	// representation by Extract/ExtractAppend/Walker reads.
	mExtractBytes = telemetry.NewCounter("zipg_succinct_extract_bytes_total",
		"Bytes decoded out of compressed stores by extract kernels.")

	// Batch kernels (ExtractBatch/WalkBatch). mBatchRequests counts items
	// that rode a batch; the cursor pair makes the sharing win observable:
	// reuse is Ψ evaluations served from an already-decoded block of a
	// shared per-bucket cursor, regions is the block decodes actually paid
	// — a scalar loop would pay one delta re-sum per evaluation instead.
	mBatchRequests = telemetry.NewCounterL("zipg_batch_requests_total", `layer="succinct"`,
		"Items requested through batch kernels, by layer.")
	mBatchCursorReuse = telemetry.NewCounter("zipg_batch_cursor_reuse_total",
		"Psi evaluations served from the per-batch decoded-block cache in batch kernels.")
	mBatchRegions = telemetry.NewCounter("zipg_batch_regions_touched_total",
		"Psi block decodes (distinct NPA regions touched) by batch kernels.")

	// Codec layer: which codec each built region landed on and what it
	// cost to decide. One regions increment per region built (Ψ, SA
	// samples, ISA samples, layout offset vectors), bytes summed across
	// the region's sequences, so the exposition shows the live codec mix
	// without walking shards.
	mCodecRegionsLegacy = telemetry.NewCounterL("zipg_codec_regions_total", `codec="legacy"`,
		"Regions encoded at build/compact time, by chosen codec.")
	mCodecRegionsS8b = telemetry.NewCounterL("zipg_codec_regions_total", `codec="simple8b"`,
		"Regions encoded at build/compact time, by chosen codec.")
	mCodecRegionsVarint = telemetry.NewCounterL("zipg_codec_regions_total", `codec="varint"`,
		"Regions encoded at build/compact time, by chosen codec.")
	mCodecBytesLegacy = telemetry.NewCounterL("zipg_codec_bytes_total", `codec="legacy"`,
		"Encoded bytes produced at build/compact time, by chosen codec.")
	mCodecBytesS8b = telemetry.NewCounterL("zipg_codec_bytes_total", `codec="simple8b"`,
		"Encoded bytes produced at build/compact time, by chosen codec.")
	mCodecBytesVarint = telemetry.NewCounterL("zipg_codec_bytes_total", `codec="varint"`,
		"Encoded bytes produced at build/compact time, by chosen codec.")
	mCodecTrialNs = telemetry.NewCounter("zipg_codec_trial_ns_total",
		"Nanoseconds spent trial-encoding region samples to choose codecs.")
)

// codecCounters returns the (regions, bytes) counter pair for a codec.
func codecCounters(id bitutil.CodecID) (*telemetry.Counter, *telemetry.Counter) {
	switch id {
	case bitutil.CodecLegacy:
		return mCodecRegionsLegacy, mCodecBytesLegacy
	case bitutil.CodecSimple8b:
		return mCodecRegionsS8b, mCodecBytesS8b
	case bitutil.CodecVarint:
		return mCodecRegionsVarint, mCodecBytesVarint
	}
	return nil, nil
}
