package succinct

import "zipg/internal/telemetry"

// Kernel telemetry: the quantities the streaming kernels exist to
// shrink. Counters are batched — hot loops accumulate locally and add
// once per operation, and every mutator is a no-op while telemetry is
// disabled — so /metrics can show the Ψ walks a cursor or walker
// eliminates without taxing the walks themselves.
var (
	// mPsiSteps counts Ψ evaluations on decode paths (ISA anchor walks,
	// extract/walk byte steps, SA locates). One Extract of n bytes is
	// ~α/2 + n steps; a Walker re-uses its row so consecutive reads of
	// one record pay the anchor walk once.
	mPsiSteps = telemetry.NewCounter("zipg_succinct_psi_steps_total",
		"Psi (NPA) steps executed by extract/locate kernels.")

	// mISALookups counts ISA sample anchor lookups — one per Extract
	// before the walker, one per record read after.
	mISALookups = telemetry.NewCounter("zipg_succinct_isa_lookups_total",
		"ISA sample lookups anchoring suffix-array walks.")

	// mExtractBytes counts bytes materialized out of the compressed
	// representation by Extract/ExtractAppend/Walker reads.
	mExtractBytes = telemetry.NewCounter("zipg_succinct_extract_bytes_total",
		"Bytes decoded out of compressed stores by extract kernels.")

	// Batch kernels (ExtractBatch/WalkBatch). mBatchRequests counts items
	// that rode a batch; the cursor pair makes the sharing win observable:
	// reuse is Ψ evaluations served from an already-decoded block of a
	// shared per-bucket cursor, regions is the block decodes actually paid
	// — a scalar loop would pay one delta re-sum per evaluation instead.
	mBatchRequests = telemetry.NewCounterL("zipg_batch_requests_total", `layer="succinct"`,
		"Items requested through batch kernels, by layer.")
	mBatchCursorReuse = telemetry.NewCounter("zipg_batch_cursor_reuse_total",
		"Psi evaluations served from the per-batch decoded-block cache in batch kernels.")
	mBatchRegions = telemetry.NewCounter("zipg_batch_regions_touched_total",
		"Psi block decodes (distinct NPA regions touched) by batch kernels.")
)
