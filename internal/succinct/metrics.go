package succinct

import "zipg/internal/telemetry"

// Kernel telemetry: the quantities the streaming kernels exist to
// shrink. Counters are batched — hot loops accumulate locally and add
// once per operation, and every mutator is a no-op while telemetry is
// disabled — so /metrics can show the Ψ walks a cursor or walker
// eliminates without taxing the walks themselves.
var (
	// mPsiSteps counts Ψ evaluations on decode paths (ISA anchor walks,
	// extract/walk byte steps, SA locates). One Extract of n bytes is
	// ~α/2 + n steps; a Walker re-uses its row so consecutive reads of
	// one record pay the anchor walk once.
	mPsiSteps = telemetry.NewCounter("zipg_succinct_psi_steps_total",
		"Psi (NPA) steps executed by extract/locate kernels.")

	// mISALookups counts ISA sample anchor lookups — one per Extract
	// before the walker, one per record read after.
	mISALookups = telemetry.NewCounter("zipg_succinct_isa_lookups_total",
		"ISA sample lookups anchoring suffix-array walks.")

	// mExtractBytes counts bytes materialized out of the compressed
	// representation by Extract/ExtractAppend/Walker reads.
	mExtractBytes = telemetry.NewCounter("zipg_succinct_extract_bytes_total",
		"Bytes decoded out of compressed stores by extract kernels.")
)
