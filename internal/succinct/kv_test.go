package succinct

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func buildTestKV(t testing.TB, records map[int64][]byte) *KVStore {
	t.Helper()
	kv, err := BuildKV(records, Options{SamplingRate: 4})
	if err != nil {
		t.Fatal(err)
	}
	return kv
}

func TestKVGet(t *testing.T) {
	records := map[int64][]byte{
		10: []byte("alice lives in ithaca"),
		3:  []byte("bob lives in princeton"),
		77: []byte("eve"),
		5:  {}, // empty value
	}
	kv := buildTestKV(t, records)
	if kv.Len() != 4 {
		t.Fatalf("Len = %d", kv.Len())
	}
	for id, want := range records {
		got, ok := kv.Get(id)
		if !ok || !bytes.Equal(got, want) {
			t.Fatalf("Get(%d) = %q,%v want %q", id, got, ok, want)
		}
	}
	if _, ok := kv.Get(999); ok {
		t.Fatal("missing record found")
	}
	if !reflect.DeepEqual(kv.Keys(), []int64{3, 5, 10, 77}) {
		t.Fatalf("Keys = %v", kv.Keys())
	}
}

func TestKVSearchKeys(t *testing.T) {
	records := map[int64][]byte{
		1: []byte("the quick brown fox"),
		2: []byte("quick silver"),
		3: []byte("slow snail"),
		4: []byte("quick quick quick"), // multiple hits, one key
	}
	kv := buildTestKV(t, records)
	if got := kv.SearchKeys([]byte("quick")); !reflect.DeepEqual(got, []int64{1, 2, 4}) {
		t.Fatalf("SearchKeys(quick) = %v", got)
	}
	if got := kv.SearchKeys([]byte("snail")); !reflect.DeepEqual(got, []int64{3}) {
		t.Fatalf("SearchKeys(snail) = %v", got)
	}
	if got := kv.SearchKeys([]byte("absent")); got != nil {
		t.Fatalf("SearchKeys(absent) = %v", got)
	}
	if got := kv.SearchKeys(nil); got != nil {
		t.Fatalf("SearchKeys(empty) = %v", got)
	}
	// A pattern spanning a record boundary must not match: "fox" ends
	// record 1 and "quick" starts record 2, but "foxquick" crosses the
	// separator.
	if got := kv.SearchKeys([]byte("foxquick")); got != nil {
		t.Fatalf("cross-record match: %v", got)
	}
}

func TestKVExtractWithinRecord(t *testing.T) {
	kv := buildTestKV(t, map[int64][]byte{
		1: []byte("0123456789"),
		2: []byte("abcdef"),
	})
	got, ok := kv.Extract(1, 3, 4)
	if !ok || string(got) != "3456" {
		t.Fatalf("Extract = %q,%v", got, ok)
	}
	// Extraction past the record end stops at the boundary.
	got, _ = kv.Extract(1, 8, 10)
	if string(got) != "89" {
		t.Fatalf("boundary extract = %q", got)
	}
	if _, ok := kv.Extract(99, 0, 1); ok {
		t.Fatal("missing record extract succeeded")
	}
}

func TestKVRejectsSeparator(t *testing.T) {
	if _, err := BuildKV(map[int64][]byte{1: {0x1E}}, Options{}); err == nil {
		t.Fatal("reserved byte accepted")
	}
}

func TestKVQuickRoundTrip(t *testing.T) {
	// Property: any set of printable records round-trips through the
	// compressed KV store, and SearchKeys finds every record by a
	// substring of its own value.
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		records := make(map[int64][]byte)
		for i := 0; i < int(n%20)+1; i++ {
			v := make([]byte, rng.Intn(40))
			for j := range v {
				v[j] = byte('a' + rng.Intn(26))
			}
			records[int64(rng.Intn(1000))] = v
		}
		kv, err := BuildKV(records, Options{SamplingRate: 8})
		if err != nil {
			return false
		}
		for id, want := range records {
			got, ok := kv.Get(id)
			if !ok || !bytes.Equal(got, want) {
				return false
			}
			if len(want) >= 3 {
				found := false
				for _, hit := range kv.SearchKeys(want[:3]) {
					if hit == id {
						found = true
					}
				}
				if !found {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestKVCompresses(t *testing.T) {
	// Records long enough that the per-record index (16 B each) does not
	// dominate; values are highly repetitive.
	records := make(map[int64][]byte)
	sentence := "lives in ithaca and works at the university of the lake; "
	for i := int64(0); i < 1500; i++ {
		records[i] = []byte(fmt.Sprintf("user profile %d %s%s%s", i%7, sentence, sentence, sentence))
	}
	kv, err := BuildKV(records, Options{SamplingRate: 32})
	if err != nil {
		t.Fatal(err)
	}
	var raw int
	for _, v := range records {
		raw += len(v) + 1
	}
	ratio := float64(kv.CompressedSize()) / float64(raw)
	t.Logf("kv: %d raw -> %d compressed (%.2fx)", raw, kv.CompressedSize(), ratio)
	if ratio > 0.9 {
		t.Errorf("repetitive KV data did not compress: %.2f", ratio)
	}
}
