package succinct

import (
	"encoding/binary"
	"fmt"

	"zipg/internal/bitutil"
	"zipg/internal/memsim"
)

// serialMagic identifies a serialized Store and its format version.
// ZSUC1 is the pre-codec format: every region in the legacy packing,
// with no codec tags. ZSUC2 carries self-describing codec-tagged
// sequences. An all-legacy store still marshals as ZSUC1 — byte for
// byte the historical output — so archives round-trip unchanged and
// older readers keep working on legacy-policy builds.
var (
	serialMagic   = []byte("ZSUC1\x00")
	serialMagicV2 = []byte("ZSUC2\x00")
)

// legacyEncoded reports whether every region uses the legacy packing in
// its historical concrete layout (monotone Ψ, fixed-width samples), i.e.
// whether the store can be serialized as ZSUC1.
func (s *Store) legacyEncoded() bool {
	for _, p := range s.psi {
		if _, ok := p.(*bitutil.MonotoneVector); !ok {
			return false
		}
	}
	if _, ok := s.saSamples.(*bitutil.PackedVector); !ok {
		return false
	}
	_, ok := s.isaSamples.(*bitutil.PackedVector)
	return ok
}

// MarshalBinary serializes the store into a flat byte slice. The format
// is what cmd/zipg-load writes and what servers load at startup; it
// mirrors the paper's "serialized flat files" persistence (§4.1).
func (s *Store) MarshalBinary() []byte {
	legacy := s.legacyEncoded()
	var buf []byte
	if legacy {
		buf = append(buf, serialMagic...)
	} else {
		buf = append(buf, serialMagicV2...)
	}
	buf = binary.LittleEndian.AppendUint64(buf, uint64(s.n))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(s.alpha))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(s.bucketChar)))
	for _, c := range s.bucketChar {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(c))
	}
	for _, st := range s.bucketStart {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(st))
	}
	for _, p := range s.psi {
		if legacy {
			buf = p.AppendBinary(buf)
		} else {
			buf = bitutil.AppendSeq(buf, p)
		}
	}
	buf = s.saSampleBits.AppendBinary(buf)
	if legacy {
		buf = s.saSamples.AppendBinary(buf)
		buf = s.isaSamples.AppendBinary(buf)
	} else {
		buf = bitutil.AppendSeq(buf, s.saSamples)
		buf = bitutil.AppendSeq(buf, s.isaSamples)
	}
	return buf
}

// UnmarshalStore reconstructs a Store serialized by MarshalBinary,
// placing it on med (nil for unlimited). Both the pre-codec ZSUC1
// format and the codec-tagged ZSUC2 format load.
func UnmarshalStore(buf []byte, med *memsim.Medium) (*Store, error) {
	if med == nil {
		med = memsim.Unlimited()
	}
	v2 := false
	switch {
	case len(buf) >= len(serialMagic) && string(buf[:len(serialMagic)]) == string(serialMagic):
	case len(buf) >= len(serialMagicV2) && string(buf[:len(serialMagicV2)]) == string(serialMagicV2):
		v2 = true
	default:
		return nil, fmt.Errorf("succinct: bad magic")
	}
	pos := len(serialMagic)
	if len(buf) < pos+24 {
		return nil, fmt.Errorf("succinct: truncated header")
	}
	s := &Store{med: med}
	s.n = int(binary.LittleEndian.Uint64(buf[pos:]))
	s.alpha = int(binary.LittleEndian.Uint64(buf[pos+8:]))
	nb := int(binary.LittleEndian.Uint64(buf[pos+16:]))
	pos += 24
	if s.n <= 0 || s.alpha <= 0 || nb <= 0 || nb > 257 {
		return nil, fmt.Errorf("succinct: corrupt header (n=%d alpha=%d buckets=%d)", s.n, s.alpha, nb)
	}
	need := nb*4 + (nb+1)*4
	if len(buf) < pos+need {
		return nil, fmt.Errorf("succinct: truncated bucket tables")
	}
	s.bucketChar = make([]int32, nb)
	for i := range s.bucketChar {
		s.bucketChar[i] = int32(binary.LittleEndian.Uint32(buf[pos+i*4:]))
	}
	pos += nb * 4
	s.bucketStart = make([]int32, nb+1)
	for i := range s.bucketStart {
		s.bucketStart[i] = int32(binary.LittleEndian.Uint32(buf[pos+i*4:]))
	}
	pos += (nb + 1) * 4

	decodeSeq := func(region string) (bitutil.Seq, error) {
		if v2 {
			q, k, err := bitutil.DecodeSeq(buf[pos:])
			if err != nil {
				return nil, fmt.Errorf("succinct: %s: %w", region, err)
			}
			pos += k
			return q, nil
		}
		// ZSUC1 carries untagged legacy structures; Ψ buckets are
		// monotone vectors, sample arrays fixed-width packed vectors.
		if region[:3] == "psi" {
			mv, k, err := bitutil.DecodeMonotoneVector(buf[pos:])
			if err != nil {
				return nil, fmt.Errorf("succinct: %s: %w", region, err)
			}
			pos += k
			return mv, nil
		}
		pv, k, err := bitutil.DecodePackedVector(buf[pos:])
		if err != nil {
			return nil, fmt.Errorf("succinct: %s: %w", region, err)
		}
		pos += k
		return pv, nil
	}

	s.psi = make([]bitutil.Seq, nb)
	var psiBytes int
	for i := range s.psi {
		q, err := decodeSeq(fmt.Sprintf("psi bucket %d", i))
		if err != nil {
			return nil, err
		}
		s.psi[i] = q
		psiBytes += q.SizeBytes()
	}
	s.psiBytesPerRow = float64(psiBytes) / float64(s.n)

	var err error
	var k int
	if s.saSampleBits, k, err = bitutil.DecodeBitmap(buf[pos:]); err != nil {
		return nil, fmt.Errorf("succinct: sa sample bitmap: %w", err)
	}
	pos += k
	if s.saSamples, err = decodeSeq("sa samples"); err != nil {
		return nil, err
	}
	if s.isaSamples, err = decodeSeq("isa samples"); err != nil {
		return nil, err
	}

	s.registerRegions()
	return s, nil
}
