package succinct

import (
	"encoding/binary"
	"fmt"

	"zipg/internal/bitutil"
	"zipg/internal/memsim"
)

// serialMagic identifies a serialized Store and its format version.
var serialMagic = []byte("ZSUC1\x00")

// MarshalBinary serializes the store into a flat byte slice. The format
// is what cmd/zipg-load writes and what servers load at startup; it
// mirrors the paper's "serialized flat files" persistence (§4.1).
func (s *Store) MarshalBinary() []byte {
	buf := append([]byte(nil), serialMagic...)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(s.n))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(s.alpha))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(s.bucketChar)))
	for _, c := range s.bucketChar {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(c))
	}
	for _, st := range s.bucketStart {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(st))
	}
	for _, p := range s.psi {
		buf = p.AppendBinary(buf)
	}
	buf = s.saSampleBits.AppendBinary(buf)
	buf = s.saSamples.AppendBinary(buf)
	buf = s.isaSamples.AppendBinary(buf)
	return buf
}

// UnmarshalStore reconstructs a Store serialized by MarshalBinary,
// placing it on med (nil for unlimited).
func UnmarshalStore(buf []byte, med *memsim.Medium) (*Store, error) {
	if med == nil {
		med = memsim.Unlimited()
	}
	if len(buf) < len(serialMagic) || string(buf[:len(serialMagic)]) != string(serialMagic) {
		return nil, fmt.Errorf("succinct: bad magic")
	}
	pos := len(serialMagic)
	if len(buf) < pos+24 {
		return nil, fmt.Errorf("succinct: truncated header")
	}
	s := &Store{med: med}
	s.n = int(binary.LittleEndian.Uint64(buf[pos:]))
	s.alpha = int(binary.LittleEndian.Uint64(buf[pos+8:]))
	nb := int(binary.LittleEndian.Uint64(buf[pos+16:]))
	pos += 24
	if s.n <= 0 || s.alpha <= 0 || nb <= 0 || nb > 257 {
		return nil, fmt.Errorf("succinct: corrupt header (n=%d alpha=%d buckets=%d)", s.n, s.alpha, nb)
	}
	need := nb*4 + (nb+1)*4
	if len(buf) < pos+need {
		return nil, fmt.Errorf("succinct: truncated bucket tables")
	}
	s.bucketChar = make([]int32, nb)
	for i := range s.bucketChar {
		s.bucketChar[i] = int32(binary.LittleEndian.Uint32(buf[pos+i*4:]))
	}
	pos += nb * 4
	s.bucketStart = make([]int32, nb+1)
	for i := range s.bucketStart {
		s.bucketStart[i] = int32(binary.LittleEndian.Uint32(buf[pos+i*4:]))
	}
	pos += (nb + 1) * 4

	s.psi = make([]*bitutil.MonotoneVector, nb)
	var psiBytes int
	for i := range s.psi {
		mv, k, err := bitutil.DecodeMonotoneVector(buf[pos:])
		if err != nil {
			return nil, fmt.Errorf("succinct: psi bucket %d: %w", i, err)
		}
		s.psi[i] = mv
		psiBytes += mv.SizeBytes()
		pos += k
	}
	s.psiBytesPerRow = float64(psiBytes) / float64(s.n)

	var err error
	var k int
	if s.saSampleBits, k, err = bitutil.DecodeBitmap(buf[pos:]); err != nil {
		return nil, fmt.Errorf("succinct: sa sample bitmap: %w", err)
	}
	pos += k
	if s.saSamples, k, err = bitutil.DecodePackedVector(buf[pos:]); err != nil {
		return nil, fmt.Errorf("succinct: sa samples: %w", err)
	}
	pos += k
	if s.isaSamples, _, err = bitutil.DecodePackedVector(buf[pos:]); err != nil {
		return nil, fmt.Errorf("succinct: isa samples: %w", err)
	}

	s.registerRegions()
	return s, nil
}
