package succinct

import "zipg/internal/telemetry"

// Walker streams the original text forward from a single ISA anchor
// lookup. Where Extract pays one ISA lookup (up to α Ψ steps) per call,
// a Walker pays it once and then carries its suffix-array row forward —
// so reading a record's header, skipping to a field and reading the
// field is one suffix-array walk, not three.
//
// A Walker is a value type: obtain one with Store.Walk, keep it on the
// stack, and pass it by pointer. Not safe for concurrent use (the Store
// is).
type Walker struct {
	s     *Store
	row   int // suffix-array row of the current text offset
	off   int // current text offset
	since int // Ψ steps since the last medium charge (see extractChargeStride)

	// bc, when non-nil, routes every Ψ evaluation through the batch's
	// shared per-bucket cursors (see batch.go). Scalar walkers leave it
	// nil and hit Store.stepRow directly.
	bc *batchCursors
}

// stepPsi evaluates Ψ at row through the shared batch cursors when the
// walker belongs to a batch, else through the store directly.
func (w *Walker) stepPsi(row int) (int32, int) {
	if w.bc != nil {
		return w.bc.stepRow(row)
	}
	return w.s.stepRow(row, false)
}

// anchorISA re-anchors at text position pos, routing the anchor walk's
// Ψ steps through the batch cursors when present.
func (w *Walker) anchorISA(pos int) int {
	if w.bc != nil {
		return w.s.lookupISABatch(pos, w.bc)
	}
	return w.s.lookupISA(pos, false)
}

// Walk returns a walker positioned at text offset off (clamped to the
// text). Cost: one ISA sample read plus at most α-1 Ψ steps.
func (s *Store) Walk(off int) Walker {
	if off < 0 {
		off = 0
	}
	if off > s.n-1 {
		off = s.n - 1
	}
	s.chargeISAAt(off)
	row := s.lookupISA(off, false)
	s.chargePsiAt(row)
	return Walker{s: s, row: row, off: off}
}

// Offset returns the text offset the next read will start at.
func (w *Walker) Offset() int { return w.off }

// step advances one text position, charging the medium every
// extractChargeStride steps (the same batching as Extract).
func (w *Walker) step(next int) {
	w.row = next
	w.off++
	w.since++
	if w.since == extractChargeStride {
		w.s.chargePsiAt(w.row)
		w.since = 0
	}
}

// Append reads up to n bytes at the cursor into dst, advancing past
// them. Reads stop early at end of text. dst grows by append — pass a
// buffer with capacity for zero-alloc steady state.
func (w *Walker) Append(dst []byte, n int) []byte {
	read := 0
	for ; read < n; read++ {
		c, next := w.stepPsi(w.row)
		if c == 0 {
			break // sentinel: end of text
		}
		dst = append(dst, byte(c-1))
		w.step(next)
	}
	if telemetry.Enabled() {
		mPsiSteps.Add(int64(read))
		mExtractBytes.Add(int64(read))
	}
	return dst
}

// AppendUntil reads bytes into dst up to (not including) the first
// occurrence of delim, stopping after max bytes if the delimiter is not
// seen earlier. The cursor is left on the delimiter (or wherever the
// read stopped).
func (w *Walker) AppendUntil(dst []byte, delim byte, max int) []byte {
	read := 0
	for ; read < max; read++ {
		c, next := w.stepPsi(w.row)
		if c == 0 || byte(c-1) == delim {
			break
		}
		dst = append(dst, byte(c-1))
		w.step(next)
	}
	if telemetry.Enabled() {
		mPsiSteps.Add(int64(read))
		mExtractBytes.Add(int64(read))
	}
	return dst
}

// Skip advances the cursor n bytes without materializing them, taking
// whichever is cheaper: stepping Ψ forward (n steps) or re-anchoring at
// the ISA sample preceding the target (target%α steps). Short intra-
// record skips stay on the current walk; long ones jump.
func (w *Walker) Skip(n int) {
	if n <= 0 {
		return
	}
	s := w.s
	target := w.off + n
	if target > s.n-1 {
		target = s.n - 1
	}
	walkCost := target - w.off
	anchorCost := target % s.alpha
	if anchorCost < walkCost {
		s.chargeISAAt(target)
		w.row = w.anchorISA(target) // counts its own Ψ steps
		w.off = target
		w.since = 0
		return
	}
	steps := 0
	for w.off < target {
		_, next := w.stepPsi(w.row)
		w.step(next)
		steps++
	}
	if telemetry.Enabled() {
		mPsiSteps.Add(int64(steps))
	}
}

// SeekTo repositions the walker at absolute text offset off (clamped to
// the text). A forward seek reuses Skip's walk-vs-anchor choice; a
// backward seek must re-anchor. Batch kernels use this to move one
// shared walker between sorted requests.
func (w *Walker) SeekTo(off int) {
	s := w.s
	if off < 0 {
		off = 0
	}
	if off > s.n-1 {
		off = s.n - 1
	}
	if off >= w.off {
		w.Skip(off - w.off)
		return
	}
	s.chargeISAAt(off)
	w.row = w.anchorISA(off)
	w.off = off
	w.since = 0
}
