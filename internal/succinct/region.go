package succinct

import (
	"zipg/internal/bitutil"
	"zipg/internal/telemetry"
)

// RegionCodec describes how one region of a store is encoded, for the
// codec report surfaced through Store.CodecReport / zipg-cli codecs.
type RegionCodec struct {
	// Region names the encoded region: "psi", "sa", "isa".
	Region string
	// Codec is the name of the codec every sequence in the region uses.
	Codec string
	// Elems is the total element count across the region's sequences.
	Elems int
	// Bytes is the region's encoded in-memory footprint.
	Bytes int
	// DecodeNs is the measured DecodeAll cost per element, sampled at
	// report time on the region's largest sequence.
	DecodeNs float64
	// Trials holds the build-time trial measurements that chose the
	// codec; empty for forced policies and loaded stores.
	Trials []bitutil.TrialResult
}

// regionReport summarizes seqs (all encoded with one codec) under name.
func regionReport(name string, meta *regionMeta, seqs ...bitutil.Seq) RegionCodec {
	rc := RegionCodec{Region: name, Trials: meta.trials}
	var largest bitutil.Seq
	for _, q := range seqs {
		rc.Elems += q.Len()
		rc.Bytes += q.SizeBytes()
		if largest == nil || q.Len() > largest.Len() {
			largest = q
		}
	}
	if largest != nil {
		rc.Codec = bitutil.CodecName(largest.CodecID())
		rc.DecodeNs = bitutil.MeasureDecodeNs(largest)
	}
	return rc
}

// RegionCodecs reports the codec, size and measured decode speed of each
// encoded region (Ψ, SA samples, ISA samples).
func (s *Store) RegionCodecs() []RegionCodec {
	return []RegionCodec{
		regionReport("psi", &s.psiMeta, s.psi...),
		regionReport("sa", &s.saMeta, s.saSamples),
		regionReport("isa", &s.isaMeta, s.isaSamples),
	}
}

// SeqRegionCodec builds the report entry for one externally held region
// (the layout offset columns, encoded by core under the same policy).
func SeqRegionCodec(name string, q bitutil.Seq, trials []bitutil.TrialResult) RegionCodec {
	return RegionCodec{
		Region:   name,
		Codec:    bitutil.CodecName(q.CodecID()),
		Elems:    q.Len(),
		Bytes:    q.SizeBytes(),
		DecodeNs: bitutil.MeasureDecodeNs(q),
		Trials:   trials,
	}
}

// CountCodecRegion bumps the codec build metrics for one externally
// encoded region.
func CountCodecRegion(q bitutil.Seq) {
	if !telemetry.Enabled() {
		return
	}
	if regions, sz := codecCounters(q.CodecID()); regions != nil {
		regions.Inc()
		sz.Add(int64(q.SizeBytes()))
	}
}

// countCodecMetrics bumps the per-codec region counters for a freshly
// built store (one increment per region, bytes summed across the
// region's sequences).
func (s *Store) countCodecMetrics() {
	if !telemetry.Enabled() {
		return
	}
	count := func(seqs ...bitutil.Seq) {
		if len(seqs) == 0 {
			return
		}
		bytes := 0
		for _, q := range seqs {
			bytes += q.SizeBytes()
		}
		if regions, sz := codecCounters(seqs[0].CodecID()); regions != nil {
			regions.Inc()
			sz.Add(int64(bytes))
		}
	}
	count(s.psi...)
	count(s.saSamples)
	count(s.isaSamples)
}
