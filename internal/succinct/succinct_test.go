package succinct

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"zipg/internal/memsim"
)

// naiveSearch returns all occurrence offsets of pat in text.
func naiveSearch(text, pat []byte) []int64 {
	var out []int64
	for i := 0; i+len(pat) <= len(text); i++ {
		if bytes.Equal(text[i:i+len(pat)], pat) {
			out = append(out, int64(i))
		}
	}
	return out
}

func buildText(seed int64, n, sigma int) []byte {
	rng := rand.New(rand.NewSource(seed))
	text := make([]byte, n)
	for i := range text {
		text[i] = byte('a' + rng.Intn(sigma))
	}
	return text
}

func TestExtractWholeText(t *testing.T) {
	text := []byte("the quick brown fox jumps over the lazy dog")
	s := Build(text, Options{SamplingRate: 4})
	got := s.Extract(0, len(text))
	if !bytes.Equal(got, text) {
		t.Fatalf("Extract(0, n) = %q, want %q", got, text)
	}
}

func TestExtractSubstrings(t *testing.T) {
	text := buildText(1, 2000, 4)
	for _, alpha := range []int{1, 2, 8, 32, 128} {
		s := Build(text, Options{SamplingRate: alpha})
		rng := rand.New(rand.NewSource(2))
		for trial := 0; trial < 100; trial++ {
			off := rng.Intn(len(text))
			length := 1 + rng.Intn(64)
			want := text[off:min(off+length, len(text))]
			if got := s.Extract(off, length); !bytes.Equal(got, want) {
				t.Fatalf("alpha=%d Extract(%d,%d) = %q, want %q", alpha, off, length, got, want)
			}
		}
	}
}

func TestExtractPastEnd(t *testing.T) {
	text := []byte("hello")
	s := Build(text, Options{})
	if got := s.Extract(3, 100); !bytes.Equal(got, []byte("lo")) {
		t.Fatalf("Extract(3,100) = %q, want \"lo\"", got)
	}
	if got := s.Extract(5, 1); got != nil {
		t.Fatalf("Extract at end = %q, want nil", got)
	}
	if got := s.Extract(-1, 1); got != nil {
		t.Fatalf("Extract(-1) = %q, want nil", got)
	}
}

func TestExtractUntil(t *testing.T) {
	text := []byte("alpha|beta|gamma")
	s := Build(text, Options{SamplingRate: 2})
	if got := s.ExtractUntil(0, '|', 100); string(got) != "alpha" {
		t.Fatalf("ExtractUntil = %q, want alpha", got)
	}
	if got := s.ExtractUntil(6, '|', 100); string(got) != "beta" {
		t.Fatalf("ExtractUntil = %q, want beta", got)
	}
	if got := s.ExtractUntil(11, '|', 100); string(got) != "gamma" {
		t.Fatalf("ExtractUntil at tail = %q, want gamma (sentinel-terminated)", got)
	}
	if got := s.ExtractUntil(0, '|', 3); string(got) != "alp" {
		t.Fatalf("ExtractUntil max = %q, want alp", got)
	}
}

func TestCharAt(t *testing.T) {
	text := []byte("abcdef")
	s := Build(text, Options{SamplingRate: 2})
	for i, c := range text {
		if got := s.CharAt(i); got != c {
			t.Fatalf("CharAt(%d) = %c, want %c", i, got, c)
		}
	}
}

func TestSearchAgainstNaive(t *testing.T) {
	text := buildText(3, 3000, 3)
	s := Build(text, Options{SamplingRate: 8})
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 100; trial++ {
		plen := 1 + rng.Intn(8)
		var pat []byte
		if trial%2 == 0 && plen < len(text) {
			// Sample a pattern that definitely occurs.
			off := rng.Intn(len(text) - plen)
			pat = text[off : off+plen]
		} else {
			pat = buildText(rng.Int63(), plen, 4)
		}
		want := naiveSearch(text, pat)
		got := s.Search(pat)
		if len(got) != len(want) {
			t.Fatalf("Search(%q): %d hits, want %d", pat, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("Search(%q)[%d] = %d, want %d", pat, i, got[i], want[i])
			}
		}
		if got := s.Count(pat); got != len(want) {
			t.Fatalf("Count(%q) = %d, want %d", pat, got, len(want))
		}
	}
}

func TestSearchEdgeCases(t *testing.T) {
	text := []byte("abracadabra")
	s := Build(text, Options{SamplingRate: 2})
	if got := s.Search(nil); got != nil {
		t.Errorf("empty pattern should return nil, got %v", got)
	}
	if got := s.Search([]byte("zzz")); got != nil {
		t.Errorf("absent char: got %v", got)
	}
	if got := s.Search([]byte("abracadabra")); len(got) != 1 || got[0] != 0 {
		t.Errorf("full-text search: got %v", got)
	}
	if got := s.Search([]byte("abracadabraa")); got != nil {
		t.Errorf("overlong pattern: got %v", got)
	}
	if got := s.Search([]byte("a")); len(got) != 5 {
		t.Errorf("single char: got %v, want 5 hits", got)
	}
	// Suffix of the text.
	if got := s.Search([]byte("bra")); len(got) != 2 || got[0] != 1 || got[1] != 8 {
		t.Errorf("Search(bra) = %v, want [1 8]", got)
	}
	if !s.Contains([]byte("cad")) || s.Contains([]byte("dac")) {
		t.Errorf("Contains wrong")
	}
	if got := s.SearchFirst([]byte("bra")); got != 1 {
		t.Errorf("SearchFirst(bra) = %d, want 1", got)
	}
	if got := s.SearchFirst([]byte("xyz")); got != -1 {
		t.Errorf("SearchFirst(xyz) = %d, want -1", got)
	}
}

func TestLookupSAISAInverse(t *testing.T) {
	text := buildText(5, 1000, 5)
	s := Build(text, Options{SamplingRate: 16})
	for pos := 0; pos < s.n; pos++ {
		row := s.LookupISA(pos)
		if got := s.LookupSA(row); got != pos {
			t.Fatalf("SA[ISA[%d]] = %d", pos, got)
		}
	}
}

func TestBinaryAlphabetAndZeroBytes(t *testing.T) {
	// Texts containing 0x00 and 0xFF must work (the sentinel is logical,
	// not a reserved byte value).
	text := []byte{0, 255, 0, 0, 255, 1, 0, 255, 255, 0}
	s := Build(text, Options{SamplingRate: 2})
	if got := s.Extract(0, len(text)); !bytes.Equal(got, text) {
		t.Fatalf("Extract = %v, want %v", got, text)
	}
	want := naiveSearch(text, []byte{0, 255})
	got := s.Search([]byte{0, 255})
	if len(got) != len(want) {
		t.Fatalf("Search = %v, want %v", got, want)
	}
}

func TestQuickExtractSearchAgree(t *testing.T) {
	// Property: for any text and any (offset, length), Extract returns
	// exactly the substring; for any pattern drawn from the text, Search
	// finds its source offset.
	f := func(text []byte, off8, len8 uint8) bool {
		if len(text) == 0 {
			return true
		}
		if len(text) > 1500 {
			text = text[:1500]
		}
		s := Build(text, Options{SamplingRate: 8})
		off := int(off8) % len(text)
		length := 1 + int(len8)%32
		want := text[off:min(off+length, len(text))]
		if !bytes.Equal(s.Extract(off, length), want) {
			return false
		}
		if len(want) > 0 {
			hits := s.Search(want)
			found := false
			for _, h := range hits {
				if h == int64(off) {
					found = true
				}
				if !bytes.Equal(text[h:int(h)+len(want)], want) {
					return false
				}
			}
			if !found {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestCompression(t *testing.T) {
	// A repetitive "social graph like" text should compress well below
	// its raw size at alpha=32; random bytes should not blow up beyond a
	// small constant factor.
	rep := []byte(strings.Repeat("name:alice,age:42,city:ithaca;name:bob,age:37,city:princeton;", 2000))
	s := Build(rep, Options{SamplingRate: 32})
	ratio := float64(s.CompressedSize()) / float64(len(rep))
	if ratio > 0.8 {
		t.Errorf("repetitive text ratio = %.2f, want < 0.8", ratio)
	}
	t.Logf("repetitive: %d -> %d bytes (%.2fx)", len(rep), s.CompressedSize(), ratio)

	rnd := make([]byte, 100_000)
	rand.New(rand.NewSource(6)).Read(rnd)
	s2 := Build(rnd, Options{SamplingRate: 32})
	ratio2 := float64(s2.CompressedSize()) / float64(len(rnd))
	if ratio2 > 3.5 {
		t.Errorf("random text ratio = %.2f, want < 3.5", ratio2)
	}
	t.Logf("random: %d -> %d bytes (%.2fx)", len(rnd), s2.CompressedSize(), ratio2)
}

func TestAlphaSpaceLatencyTradeoff(t *testing.T) {
	// Higher alpha must not increase the footprint (fewer samples).
	text := buildText(7, 50_000, 8)
	s8 := Build(text, Options{SamplingRate: 8})
	s64 := Build(text, Options{SamplingRate: 64})
	if s64.CompressedSize() >= s8.CompressedSize() {
		t.Errorf("alpha=64 size %d >= alpha=8 size %d", s64.CompressedSize(), s8.CompressedSize())
	}
}

func TestSerializationRoundTrip(t *testing.T) {
	text := buildText(8, 5000, 6)
	s := Build(text, Options{SamplingRate: 16})
	buf := s.MarshalBinary()
	got, err := UnmarshalStore(buf, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Extract(0, len(text)), text) {
		t.Fatal("round-tripped store does not reproduce the text")
	}
	pat := text[100:106]
	if want, have := s.Count(pat), got.Count(pat); want != have {
		t.Fatalf("Count after round trip: %d != %d", have, want)
	}
}

func TestSerializationErrors(t *testing.T) {
	if _, err := UnmarshalStore([]byte("garbage"), nil); err == nil {
		t.Error("expected error on bad magic")
	}
	text := []byte("hello world")
	buf := Build(text, Options{}).MarshalBinary()
	if _, err := UnmarshalStore(buf[:20], nil); err == nil {
		t.Error("expected error on truncated store")
	}
}

func TestMediumCharging(t *testing.T) {
	clock := &memsim.Clock{}
	med := memsim.NewMedium(clock, memsim.Config{Budget: 0}) // everything misses
	text := buildText(9, 10_000, 4)
	s := Build(text, Options{SamplingRate: 8, Medium: med})
	med.ResetStats()
	clock.Reset()
	s.Extract(1234, 20)
	st := med.Stats()
	if st.Accesses == 0 || st.Misses == 0 {
		t.Fatalf("extract did not touch the medium: %+v", st)
	}
	if clock.Elapsed() == 0 {
		t.Fatal("misses did not advance the clock")
	}
}

func TestMediumFootprintMatchesCompressedSize(t *testing.T) {
	med := memsim.Unlimited()
	text := buildText(10, 20_000, 4)
	s := Build(text, Options{SamplingRate: 32, Medium: med})
	if med.Footprint() != int64(s.CompressedSize()) {
		t.Errorf("medium footprint %d != compressed size %d", med.Footprint(), s.CompressedSize())
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func BenchmarkExtract64(b *testing.B) {
	text := buildText(11, 1<<20, 8)
	s := Build(text, Options{SamplingRate: 32})
	rng := rand.New(rand.NewSource(12))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Extract(rng.Intn(len(text)-64), 64)
	}
}

func BenchmarkSearch(b *testing.B) {
	text := buildText(13, 1<<20, 8)
	s := Build(text, Options{SamplingRate: 32})
	rng := rand.New(rand.NewSource(14))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		off := rng.Intn(len(text) - 8)
		s.Count(text[off : off+8])
	}
}

func TestExtractChargeBatching(t *testing.T) {
	// Extraction charges the medium at a bounded rate: one ISA page plus
	// one psi page per extractChargeStride walked bytes — not one page
	// per byte (see the charge-batching comment in store.go).
	med := memsim.NewMedium(nil, memsim.Config{Budget: 1 << 30})
	text := buildText(20, 200_000, 6)
	s := Build(text, Options{SamplingRate: 32, Medium: med})
	med.ResetStats()
	s.Extract(77_777, 640)
	st := med.Stats()
	maxTouches := uint64(2 + 640/extractChargeStride + 1)
	if st.Accesses > maxTouches {
		t.Errorf("640-byte extract touched %d pages, want <= %d", st.Accesses, maxTouches)
	}
	if st.Accesses == 0 {
		t.Error("extract did not touch the medium at all")
	}
}

func TestSearchStillChargesPerStep(t *testing.T) {
	// Search (unlike extract) has no flat-file fallback: its binary
	// searches and locates charge the structures they touch.
	med := memsim.NewMedium(nil, memsim.Config{Budget: 1 << 30})
	text := buildText(21, 100_000, 4)
	s := Build(text, Options{SamplingRate: 32, Medium: med})
	med.ResetStats()
	pat := text[5000:5008]
	s.Search(pat)
	if st := med.Stats(); st.Accesses == 0 {
		t.Error("search did not charge the medium")
	}
}
