package bench

import (
	"fmt"
	"sort"

	"zipg"
	"zipg/internal/gen"
	"zipg/internal/workloads"
)

// fragmentationRun drives a LinkBench-style write-heavy stream over a
// ZipG store with a small LogStore threshold (the paper used an 8 GB
// threshold over 40 shards; scaled here) and snapshots per-node
// fragmentation as queries execute (Appendix A).
func fragmentationRun(opts Options, snapshots int) (*gen.Dataset, *zipg.Graph, [][]int, error) {
	opts = opts.withDefaults()
	d, err := datasetByName("lb-small", opts.BaseBytes)
	if err != nil {
		return nil, nil, nil, err
	}
	g, err := zipg.Compress(zipg.GraphData{Nodes: d.Nodes, Edges: d.Edges}, zipg.Options{
		NumShards:         4,
		SamplingRate:      32,
		LogStoreThreshold: opts.BaseBytes / 16, // small: force many rollovers
	})
	if err != nil {
		return nil, nil, nil, err
	}
	ops := workloads.GenerateOps(d, workloads.MixConfig{
		Mix:        workloads.LinkBenchMix,
		AccessSkew: 1.4,
		Seed:       1001,
	}, opts.Ops*snapshots)

	perSnapshot := make([][]int, 0, snapshots)
	chunk := len(ops) / snapshots
	for si := 0; si < snapshots; si++ {
		for _, op := range ops[si*chunk : (si+1)*chunk] {
			if _, err := workloads.Execute(g, op); err != nil {
				return nil, nil, nil, err
			}
		}
		// Snapshot: fragments per node, for every node in the graph.
		counts := make([]int, 0, d.NumNodes())
		for id := int64(0); id < int64(d.NumNodes()); id++ {
			counts = append(counts, g.FragmentsOf(id))
		}
		perSnapshot = append(perSnapshot, counts)
	}
	return d, g, perSnapshot, nil
}

// Fig10 reports the CDF of per-node fragmentation after increasing
// query volumes (paper Figure 10: >99% of nodes fragment across <10% of
// shards even after billions of ops).
func Fig10(opts Options) (*Result, error) {
	opts = opts.withDefaults()
	const snapshots = 3
	_, g, perSnapshot, err := fragmentationRun(opts, snapshots)
	if err != nil {
		return nil, err
	}
	totalFrags := g.Store().NumFragments()
	r := &Result{
		Title:   "Figure 10: CDF of #fragments a node's data spans (snapshots at increasing query counts)",
		Headers: []string{"snapshot", "ops", "p50", "p90", "p99", "p99.9", "max", "total-fragments"},
		Notes: []string{
			"paper: for >99% of nodes the data spans <10% of shards; fragmentation grows with query volume",
		},
	}
	for si, counts := range perSnapshot {
		sort.Ints(counts)
		pct := func(p float64) int { return counts[int(p*float64(len(counts)-1))] }
		r.Rows = append(r.Rows, []string{
			fmt.Sprint(si + 1),
			fmt.Sprint((si + 1) * opts.Ops),
			fmt.Sprint(pct(0.50)), fmt.Sprint(pct(0.90)),
			fmt.Sprint(pct(0.99)), fmt.Sprint(pct(0.999)),
			fmt.Sprint(counts[len(counts)-1]),
			fmt.Sprint(totalFrags),
		})
	}
	return r, nil
}

// Fig11 reports average and maximum fragmentation versus executed
// queries (paper Figure 11).
func Fig11(opts Options) (*Result, error) {
	opts = opts.withDefaults()
	const snapshots = 5
	_, _, perSnapshot, err := fragmentationRun(opts, snapshots)
	if err != nil {
		return nil, err
	}
	r := &Result{
		Title:   "Figure 11: fragmentation vs #queries (average and most-fragmented node)",
		Headers: []string{"ops", "avg-fragments", "max-fragments"},
		Notes:   []string{"paper: both average and maximum fragmentation grow as more queries execute"},
	}
	for si, counts := range perSnapshot {
		sum, max := 0, 0
		for _, c := range counts {
			sum += c
			if c > max {
				max = c
			}
		}
		r.Rows = append(r.Rows, []string{
			fmt.Sprint((si + 1) * opts.Ops),
			fmt.Sprintf("%.3f", float64(sum)/float64(len(counts))),
			fmt.Sprint(max),
		})
	}
	return r, nil
}
