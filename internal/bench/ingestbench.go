package bench

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"zipg"
	"zipg/internal/workloads"
)

// IngestBench is the headline experiment for the group-committed write
// path and online compaction (§3.5, §4.1): a LinkBench-style write mix
// driven by 8 concurrent writers against (a) the per-record baseline —
// every append takes the store lock individually and every rollover
// compresses the log synchronously under that lock — and (b) the
// production path — group-committed appends, O(1) log seals, and a
// background worker that compresses sealed generations and runs full
// online compactions. It then measures read p99 while an online
// compaction runs, and verifies the compaction changed no query answer.
func IngestBench(opts Options) (*Result, error) {
	opts = opts.withDefaults()
	d, err := datasetByName("lb-small", opts.BaseBytes)
	if err != nil {
		return nil, err
	}

	// The write side of Table 2's LinkBench column, weights preserved.
	var writeMix workloads.Frequencies
	for _, k := range []workloads.OpKind{
		workloads.OpAssocAdd, workloads.OpObjUpdate, workloads.OpObjAdd,
		workloads.OpAssocDel, workloads.OpObjDel, workloads.OpAssocUpdate,
	} {
		writeMix[k] = workloads.LinkBenchMix[k]
	}
	const writers = 8
	writeOps := workloads.GenerateOps(d, workloads.MixConfig{Mix: writeMix, AccessSkew: 1.4, Seed: 4401}, opts.Ops*writers)

	// A read mix (LinkBench's read side) for the p99-under-compaction
	// measurement.
	var readMix workloads.Frequencies
	for _, k := range []workloads.OpKind{
		workloads.OpAssocRange, workloads.OpObjGet, workloads.OpAssocGet,
		workloads.OpAssocCount, workloads.OpAssocTimeRange,
	} {
		readMix[k] = workloads.LinkBenchMix[k]
	}
	readOps := workloads.GenerateOps(d, workloads.MixConfig{Mix: readMix, AccessSkew: 1.4, Seed: 4402}, opts.Ops)

	// Small threshold so the ingest run crosses it many times: the
	// baseline pays a synchronous compression under the store lock per
	// crossing, the production path an O(1) seal.
	threshold := opts.BaseBytes / 16
	build := func(perRecord bool) (*zipg.Graph, error) {
		o := zipg.Options{NumShards: 4, SamplingRate: 32, LogStoreThreshold: threshold}
		if perRecord {
			o.DisableGroupCommit = true
		} else {
			o.BackgroundCompaction = true
			o.CompactAfterRollovers = 32
		}
		return zipg.Compress(zipg.GraphData{Nodes: d.Nodes, Edges: d.Edges}, o)
	}

	ingest := func(g *zipg.Graph) (time.Duration, error) {
		errs := make([]error, writers)
		var wg sync.WaitGroup
		start := time.Now()
		for w := 0; w < writers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := w; i < len(writeOps); i += writers {
					if _, err := workloads.Execute(g, writeOps[i]); err != nil {
						errs[w] = err
						return
					}
				}
			}(w)
		}
		wg.Wait()
		elapsed := time.Since(start)
		for _, err := range errs {
			if err != nil {
				return 0, err
			}
		}
		return elapsed, nil
	}

	if opts.Verbose {
		fmt.Printf("ingest-bench: %d write ops, %d writers, threshold %d B\n", len(writeOps), writers, threshold)
	}
	base, err := build(true)
	if err != nil {
		return nil, err
	}
	baseIngest, err := ingest(base)
	if err != nil {
		return nil, fmt.Errorf("ingest-bench: per-record ingest: %w", err)
	}
	baseRollovers := base.Store().Rollovers()
	// Settle: bring the store to the fully-compacted state, so sustained
	// throughput charges every system for all the work its ingest incurs
	// — the baseline compressed each rollover inline, the production
	// path deferred compression and must pay it here.
	st0 := time.Now()
	if err := base.Compact(); err != nil {
		return nil, err
	}
	baseSettle := time.Since(st0)

	prod, err := build(false)
	if err != nil {
		return nil, err
	}
	prodIngest, err := ingest(prod)
	if err != nil {
		prod.Close()
		return nil, fmt.Errorf("ingest-bench: group-commit ingest: %w", err)
	}
	prodRollovers := prod.Store().Rollovers()
	// Quiesce the background worker (the p99 phases below must own the
	// only compaction in flight), then settle like the baseline.
	st0 = time.Now()
	prod.Close()
	if err := prod.Compact(); err != nil {
		return nil, err
	}
	prodSettle := time.Since(st0)

	nOps := float64(len(writeOps))
	baseT := nOps / baseIngest.Seconds()
	prodT := nOps / prodIngest.Seconds()
	baseSust := nOps / (baseIngest + baseSettle).Seconds()
	prodSust := nOps / (prodIngest + prodSettle).Seconds()

	// Fragment the store again so the measured compaction has real work
	// (the background worker may have just compacted).
	for i, op := range writeOps {
		if i%4 != 0 {
			continue
		}
		if _, err := workloads.Execute(prod, op); err != nil {
			return nil, err
		}
	}

	runReads := func(stop <-chan struct{}) ([]time.Duration, error) {
		var lat []time.Duration
		for pass := 0; ; pass++ {
			for _, op := range readOps {
				if stop != nil {
					select {
					case <-stop:
						return lat, nil
					default:
					}
				}
				t0 := time.Now()
				if _, err := workloads.Execute(prod, op); err != nil {
					return nil, err
				}
				lat = append(lat, time.Since(t0))
			}
			if stop == nil && pass >= 1 {
				return lat, nil // quiescent: one warm-up pass, one measured
			}
		}
	}

	// Quiescent read p99 (no compaction running).
	quiet, err := runReads(nil)
	if err != nil {
		return nil, err
	}
	quietP99 := p99(quiet[len(quiet)/2:]) // second (warm) pass only

	// Snapshot query answers, then measure reads racing the online
	// compaction, then verify the answers are unchanged.
	before := answerKey(prod, d.NumNodes())
	compactDone := make(chan struct{})
	var compactErr error
	go func() {
		defer close(compactDone)
		compactErr = prod.Compact()
	}()
	during, err := runReads(compactDone)
	if err != nil {
		return nil, err
	}
	<-compactDone
	if compactErr != nil {
		return nil, fmt.Errorf("ingest-bench: online compaction: %w", compactErr)
	}
	duringP99 := p99(during)
	after := answerKey(prod, d.NumNodes())
	answers := "identical"
	if before != after {
		return nil, fmt.Errorf("ingest-bench: query answers changed across online compaction")
	}

	r := &Result{
		Title:   "Ingest bench: group-committed writes + online compaction (§3.5, §4.1)",
		Headers: []string{"metric", "per-record", "group+bg", "ratio"},
		Notes: []string{
			"write throughput: 8 concurrent writers over the identical LinkBench write mix",
			"expected: >=2x sustained write throughput; read p99 during online compaction within 2x of quiescent",
			fmt.Sprintf("read p99 samples: %d quiescent, %d during compaction", len(quiet)/2, len(during)),
		},
	}
	r.Rows = append(r.Rows,
		[]string{"write-KOps (8 writers)", kops(baseT), kops(prodT), fmt.Sprintf("%.2fx", prodT/baseT)},
		[]string{"sustained-KOps (incl. settle)", kops(baseSust), kops(prodSust), fmt.Sprintf("%.2fx", prodSust/baseSust)},
		[]string{"rollovers during ingest", fmt.Sprint(baseRollovers), fmt.Sprint(prodRollovers), "-"},
		[]string{"read p99 quiescent", "-", fmt.Sprintf("%.1fus", float64(quietP99.Nanoseconds())/1e3), "-"},
		[]string{"read p99 during compaction", "-", fmt.Sprintf("%.1fus", float64(duringP99.Nanoseconds())/1e3),
			fmt.Sprintf("%.2fx", float64(duringP99)/float64(quietP99))},
		[]string{"answers before/after compaction", "-", answers, "-"},
	)
	return r, nil
}

// p99 returns the 99th-percentile latency of the sample set.
func p99(lat []time.Duration) time.Duration {
	if len(lat) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), lat...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	i := len(sorted) * 99 / 100
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// answerKey fingerprints the store's query answers over a fixed probe
// set: obj_get plus per-type assoc_count for a sample of nodes. Equal
// keys before and after a compaction mean no answer changed.
func answerKey(g *zipg.Graph, numNodes int) string {
	t := workloads.TAO{S: g}
	n := numNodes
	if n > 400 {
		n = 400
	}
	var sb []byte
	for id := int64(0); id < int64(n); id++ {
		vals, ok := t.ObjGet(id)
		sb = append(sb, fmt.Sprintf("%d:%v:%q;", id, ok, vals)...)
		for et := int64(0); et < 5; et++ {
			sb = append(sb, fmt.Sprintf("%d,", t.AssocCount(id, et))...)
		}
	}
	return string(sb)
}
