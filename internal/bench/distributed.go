package bench

import (
	"fmt"
	"time"

	"zipg/internal/cluster"
	"zipg/internal/gen"
	"zipg/internal/workloads"
)

// Figure 9 compares ZipG and Titan on a 10-server cluster. The paper's
// cluster had 10 m3.2xlarge servers (300 GB total RAM vs the single
// server's 244 GB). Reproducing multi-server CPU parallelism is not
// possible on one core, so the harness uses an explicit attribution
// model over the real partition layout:
//
//   - Capacity: the medium budget becomes 300/244 of the single-server
//     budget (what lets Titan fit twitter in memory, §5.3).
//   - Parallelism: every executed operation's measured service time is
//     attributed to the server(s) that would execute it — the owner of
//     the queried node for node-local queries, all servers (1/k of the
//     time each, since the partition scans run in parallel) for
//     get_node_ids on ZipG, and the index row's owner for Titan's
//     global-index search. Distributed throughput is
//     N / (max over servers of attributed busy time + simulated I/O),
//     i.e. the cluster runs at the pace of its busiest server.
//
// This reproduces the paper's three findings mechanically: near-ideal
// TAO scaling (uniform access spreads busy time), sub-linear LinkBench
// scaling (Zipf skew concentrates busy time on the hot nodes' servers),
// and Titan out-scaling ZipG on GS3 (index row on one server vs
// all-server fan-out).
const (
	numDistServers  = 10
	distMemoryRatio = MemoryRatio * 300.0 / 244.0
)

// distRun measures one workload on one system under the attribution
// model. attr returns the servers an op touches: (-1, dur) means
// "all servers, dur/k each".
type distRun struct {
	sys  *System
	busy [numDistServers]time.Duration
	ops  int
}

func (dr *distRun) attribute(owner int, dur time.Duration) {
	if owner < 0 {
		share := dur / numDistServers
		for i := range dr.busy {
			dr.busy[i] += share
		}
		return
	}
	dr.busy[owner] += dur
}

// throughput returns ops/sec at the busiest server's pace.
func (dr *distRun) throughput() float64 {
	var max time.Duration
	for _, b := range dr.busy {
		if b > max {
			max = b
		}
	}
	// Simulated I/O stalls are spread across servers (the medium is
	// shared in this model).
	max += dr.sys.Clock.Elapsed() / numDistServers
	if max <= 0 {
		max = time.Nanosecond
	}
	return float64(dr.ops) / max.Seconds()
}

// runDistMix executes TAO/LinkBench ops with attribution.
func runDistMix(sys *System, d *gen.Dataset, mix workloads.MixConfig, nOps int) (float64, error) {
	ops := workloads.GenerateOps(d, mix, nOps)
	// Warm-up.
	for i := 0; i < len(ops)/4 && i < 500; i++ {
		workloads.Execute(sys.Store, ops[i])
	}
	sys.Med.ResetStats()
	sys.Clock.Reset()
	dr := &distRun{sys: sys, ops: len(ops)}
	for _, op := range ops {
		start := time.Now()
		if _, err := workloads.Execute(sys.Store, op); err != nil {
			return 0, err
		}
		dr.attribute(cluster.OwnerOf(op.ID, numDistServers), time.Since(start))
	}
	return dr.throughput(), nil
}

// runDistGS executes Graph Search ops with attribution. GS3 fans out on
// ZipG (no global index) but stays on the index owner's server for the
// Titan variants.
func runDistGS(sys *System, d *gen.Dataset, nOps int) (float64, error) {
	ops := workloads.GenerateGSOps(d, 901, nOps)
	for i := 0; i < len(ops)/4 && i < 500; i++ {
		workloads.ExecuteGS(sys.Store, ops[i], false)
	}
	sys.Med.ResetStats()
	sys.Clock.Reset()
	dr := &distRun{sys: sys, ops: len(ops)}
	zipgLike := sys.Name == "zipg"
	for _, op := range ops {
		start := time.Now()
		workloads.ExecuteGS(sys.Store, op, false)
		dur := time.Since(start)
		if op.Kind == workloads.KindGS3 {
			if zipgLike {
				dr.attribute(-1, dur) // all partitions scanned in parallel
			} else {
				// Titan: the index row lives on one server; attribute to a
				// stable pseudo-owner derived from the queried value.
				h := 0
				for k, v := range op.P1 {
					for _, c := range k + v {
						h = h*31 + int(c)
					}
				}
				if h < 0 {
					h = -h
				}
				dr.attribute(h%numDistServers, dur)
			}
		} else {
			dr.attribute(cluster.OwnerOf(op.ID, numDistServers), dur)
		}
	}
	return dr.throughput(), nil
}

// Fig9 is the distributed-cluster experiment (paper Figure 9): TAO,
// LinkBench and Graph Search on 10 servers, ZipG vs Titan (Neo4j has no
// distributed implementation).
func Fig9(opts Options) (*Result, error) {
	opts = opts.withDefaults()
	budget := int64(float64(opts.BaseBytes) * distMemoryRatio)
	r := &Result{
		Title:   fmt.Sprintf("Figure 9: distributed cluster (%d servers, total budget %.1fx base)", numDistServers, distMemoryRatio),
		Headers: []string{"workload", "dataset", "system", "distributed-KOps", "single-server-KOps", "scaling"},
		Notes: []string{
			"paper: titan fits twitter in cluster memory -> ~2x its single-server throughput",
			"paper: zipg TAO throughput scales with core count (ideal); LinkBench sub-linear (hot-node servers bottleneck)",
			"paper: titan's GS workload scales better than zipg's (GS3: global index vs all-server fan-out)",
		},
	}
	type wl struct {
		name     string
		datasets []string
		run      func(sys *System, d *gen.Dataset) (float64, error)
		single   func(sys *System, d *gen.Dataset) (float64, error)
	}
	taoMix := workloads.MixConfig{Mix: workloads.TAOMix, AccessSkew: 0, Seed: 911}
	lbMix := workloads.MixConfig{Mix: workloads.LinkBenchMix, AccessSkew: 1.4, Seed: 912}
	mixSingle := func(mix workloads.MixConfig) func(sys *System, d *gen.Dataset) (float64, error) {
		return func(sys *System, d *gen.Dataset) (float64, error) {
			tputs, _, err := runMixOnSystem(sys, d, mix, nil, opts.Ops)
			if err != nil {
				return 0, err
			}
			return tputs[0], nil
		}
	}
	workloadsList := []wl{
		{"tao", []string{"twitter", "uk"},
			func(sys *System, d *gen.Dataset) (float64, error) { return runDistMix(sys, d, taoMix, opts.Ops) },
			mixSingle(taoMix)},
		{"linkbench", []string{"lb-medium", "lb-large"},
			func(sys *System, d *gen.Dataset) (float64, error) { return runDistMix(sys, d, lbMix, opts.Ops) },
			mixSingle(lbMix)},
		{"graphsearch", []string{"twitter", "uk"},
			func(sys *System, d *gen.Dataset) (float64, error) { return runDistGS(sys, d, opts.Ops) },
			func(sys *System, d *gen.Dataset) (float64, error) {
				ops := workloads.GenerateGSOps(d, 913, opts.Ops)
				return sys.Throughput(len(ops), func(i int) { workloads.ExecuteGS(sys.Store, ops[i], false) }), nil
			}},
	}
	singleBudget := int64(float64(opts.BaseBytes) * MemoryRatio)
	for _, w := range workloadsList {
		for _, dsName := range w.datasets {
			d, err := datasetByName(dsName, opts.BaseBytes)
			if err != nil {
				return nil, err
			}
			for _, sysName := range []string{"titan", "titan-c", "zipg"} {
				if opts.Verbose {
					fmt.Printf("  fig9: %s / %s / %s\n", w.name, dsName, sysName)
				}
				distSys, err := BuildSystem(sysName, d, budget)
				if err != nil {
					return nil, err
				}
				distT, err := w.run(distSys, d)
				if err != nil {
					return nil, err
				}
				singleSys, err := BuildSystem(sysName, d, singleBudget)
				if err != nil {
					return nil, err
				}
				singleT, err := w.single(singleSys, d)
				if err != nil {
					return nil, err
				}
				r.Rows = append(r.Rows, []string{
					w.name, dsName, sysName, kops(distT), kops(singleT),
					fmt.Sprintf("%.2fx", distT/singleT),
				})
			}
		}
	}
	return r, nil
}
