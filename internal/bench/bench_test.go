package bench

import (
	"fmt"
	"strconv"
	"strings"
	"testing"
)

// tinyOpts keeps experiment runtime in unit-test range; the shapes are
// asserted at this scale too (they are scale-free by design).
var tinyOpts = Options{BaseBytes: 48 << 10, Ops: 300}

func runExperiment(t *testing.T, name string) *Result {
	t.Helper()
	fn, ok := Experiments[name]
	if !ok {
		t.Fatalf("unknown experiment %s", name)
	}
	r, err := fn(tinyOpts)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	if len(r.Rows) == 0 {
		t.Fatalf("%s produced no rows", name)
	}
	out := r.Format()
	if !strings.Contains(out, r.Headers[0]) {
		t.Fatalf("%s: formatting broken:\n%s", name, out)
	}
	t.Logf("\n%s", out)
	return r
}

func cellFloat(t *testing.T, r *Result, row, col int) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(r.Rows[row][col], "x"), 64)
	if err != nil {
		t.Fatalf("cell (%d,%d) = %q not numeric", row, col, r.Rows[row][col])
	}
	return v
}

func findRow(t *testing.T, r *Result, want ...string) int {
	t.Helper()
	for i, row := range r.Rows {
		match := true
		for j, w := range want {
			if w != "" && row[j] != w {
				match = false
				break
			}
		}
		if match {
			return i
		}
	}
	t.Fatalf("no row matching %v in %v", want, r.Rows)
	return -1
}

func TestTable4(t *testing.T) {
	r := runExperiment(t, "table4")
	if len(r.Rows) != 6 {
		t.Fatalf("want 6 datasets, got %d", len(r.Rows))
	}
}

func TestFig5StorageShape(t *testing.T) {
	r := runExperiment(t, "fig5")
	// Columns: dataset raw neo4j neo4j-tuned titan titan-c zipg.
	for i := range r.Rows {
		neo := cellFloat(t, r, i, 2)
		titan := cellFloat(t, r, i, 4)
		zipg := cellFloat(t, r, i, 6)
		// Paper: zipg 1.8-4x smaller than neo4j and titan uncompressed.
		if zipg >= neo {
			t.Errorf("%s: zipg ratio %.2f >= neo4j %.2f", r.Rows[i][0], zipg, neo)
		}
		if zipg >= titan {
			t.Errorf("%s: zipg ratio %.2f >= titan %.2f", r.Rows[i][0], zipg, titan)
		}
	}
	// Real-world compresses better than linkbench for zipg.
	orkut := cellFloat(t, r, findRow(t, r, "orkut"), 6)
	lb := cellFloat(t, r, findRow(t, r, "lb-small"), 6)
	if orkut >= lb {
		t.Errorf("zipg: orkut ratio %.2f >= lb-small %.2f (compressibility contrast lost)", orkut, lb)
	}
}

func TestTable5Shape(t *testing.T) {
	r := runExperiment(t, "table5")
	// zipg must fit strictly more datasets than neo4j.
	fits := func(col int) int {
		n := 0
		for _, row := range r.Rows {
			if row[col] == "yes" {
				n++
			}
		}
		return n
	}
	// Columns: dataset neo4j neo4j-tuned titan titan-c zipg.
	if fits(5) <= fits(1) {
		t.Errorf("zipg fits %d datasets, neo4j %d — expected zipg > neo4j", fits(5), fits(1))
	}
	// Everyone fits the smallest dataset.
	small := findRow(t, r, "orkut")
	for c := 1; c <= 5; c++ {
		if r.Rows[small][c] != "yes" {
			t.Errorf("%s should fit orkut", r.Headers[c])
		}
	}
}

func TestFig10Fig11Fragmentation(t *testing.T) {
	r10 := runExperiment(t, "fig10")
	// p50 fragmentation stays tiny even at the last snapshot.
	last := len(r10.Rows) - 1
	if p50 := cellFloat(t, r10, last, 2); p50 > 3 {
		t.Errorf("median fragmentation %f too high", p50)
	}
	// max <= total fragments.
	if cellFloat(t, r10, last, 6) > cellFloat(t, r10, last, 7) {
		t.Error("max fragments exceeds total fragments")
	}

	r11 := runExperiment(t, "fig11")
	// Average fragmentation must be non-decreasing over time.
	prev := 0.0
	for i := range r11.Rows {
		avg := cellFloat(t, r11, i, 1)
		if avg+1e-9 < prev {
			t.Errorf("avg fragmentation decreased: %f -> %f", prev, avg)
		}
		prev = avg
	}
}

func TestFig14JoinsShape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	// The join-vs-filter crossover needs enough nodes that the
	// single-property result set outnumbers a node's neighbors (the
	// paper's "more people in Ithaca than Alice has friends" argument),
	// so this experiment runs above the tiny default scale.
	fn := Experiments["fig14"]
	r, err := fn(Options{BaseBytes: 384 << 10, Ops: 200})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", r.Format())
	losses := 0
	for i := range r.Rows {
		noJoin := cellFloat(t, r, i, 2)
		withJoin := cellFloat(t, r, i, 3)
		if noJoin < withJoin {
			losses++
			t.Logf("%s %s: no-join %.2f < with-join %.2f (marginal at this scale)",
				r.Rows[i][0], r.Rows[i][1], noJoin, withJoin)
		}
	}
	// The paper's no-join advantage holds wherever the single-property
	// result set outnumbers neighborhoods; at this scale the smallest
	// dataset's GS2 is marginal, so allow at most one inversion.
	if losses > 1 {
		t.Errorf("no-join plan lost %d of %d cases; paper: no-join wins", losses, len(r.Rows))
	}
}

func TestFig12RPQRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	r := runExperiment(t, "fig12")
	if len(r.Rows) != 50 {
		t.Fatalf("want 50 queries, got %d", len(r.Rows))
	}
}

func TestFig13BFSRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	runExperiment(t, "fig13")
}

func TestFig6Runs(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	r := runExperiment(t, "fig6")
	if len(r.Rows) != 15 { // 3 datasets x 5 systems
		t.Fatalf("want 15 rows, got %d", len(r.Rows))
	}
}

// TestTelemetryCluster runs the live-cluster readout and checks the
// telemetry layer saw the function-shipping path: RPC calls recorded,
// nonzero fan-out on filtered neighbor queries.
func TestTelemetryCluster(t *testing.T) {
	r := runExperiment(t, "telemetry-cluster")
	cells := map[string]string{}
	for _, row := range r.Rows {
		cells[row[0]] = row[1]
	}
	for _, metric := range []string{"rpc calls (all methods)", "neighbor queries"} {
		v, ok := cells[metric]
		if !ok {
			t.Fatalf("missing row %q in:\n%s", metric, r.Format())
		}
		if v == "0" {
			t.Errorf("%s = 0, want > 0", metric)
		}
	}
	if _, ok := cells["avg fan-out per neighbor query"]; !ok {
		t.Errorf("no fan-out row — filtered neighbor queries never shipped:\n%s", r.Format())
	}
}

// TestTraceAttribution runs the distributed-tracing readout and checks
// the span trees attributed work to multiple servers with the expected
// phase taxonomy.
func TestTraceAttribution(t *testing.T) {
	r := runExperiment(t, "trace-attribution")
	servers := map[string]bool{}
	phases := map[string]bool{}
	for _, row := range r.Rows {
		if strings.HasPrefix(row[0], "server ") {
			servers[row[0]] = true
		}
		phases[row[1]] = true
	}
	if len(servers) < 2 {
		t.Errorf("phase rows from %d servers, want ≥2:\n%s", len(servers), r.Format())
	}
	for _, p := range []string{"queue", "serialize", "network", "decode", "succinct_walk"} {
		if !phases[p] {
			t.Errorf("no %q phase row:\n%s", p, r.Format())
		}
	}
	foundCoverage := false
	for _, n := range r.Notes {
		if strings.Contains(n, "coverage") {
			foundCoverage = true
			if strings.Contains(n, "of 0 server-side spans") {
				t.Errorf("no server-side spans measured: %s", n)
			}
		}
	}
	if !foundCoverage {
		t.Errorf("no serve-span coverage note in %v", r.Notes)
	}
}

func TestBuildSystemUnknown(t *testing.T) {
	d, err := datasetByName("orkut", 32<<10)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := BuildSystem("mystery", d, -1); err == nil {
		t.Error("unknown system should fail")
	}
	if _, err := datasetByName("nope", 1); err == nil {
		t.Error("unknown dataset should fail")
	}
}

func TestExperimentNames(t *testing.T) {
	names := ExperimentNames()
	if len(names) != 24 {
		t.Fatalf("want 24 experiments, got %d: %v", len(names), names)
	}
}

func TestIngestBenchShape(t *testing.T) {
	r := runExperiment(t, "ingest-bench")
	// The experiment itself fails if any query answer changed across the
	// online compaction; assert the row reports that check ran.
	last := r.Rows[len(r.Rows)-1]
	if last[0] != "answers before/after compaction" || last[2] != "identical" {
		t.Errorf("answer-identity row missing or wrong: %v", last)
	}
	// Both throughput rows must carry a parseable ratio.
	for _, row := range r.Rows[:2] {
		if !strings.HasSuffix(row[3], "x") {
			t.Errorf("row %q: want ratio cell, got %q", row[0], row[3])
		}
	}
}

func TestTemporalBenchShape(t *testing.T) {
	r := runExperiment(t, "temporal-bench")
	// The experiment hard-errors on sequence gaps with zero drops;
	// assert the acceptance rows beyond that: the narrow window must
	// prune at least half the fragment pieces, and the gap row must
	// report zero (nothing was dropped under a run-sized ring).
	rows := map[string][]string{}
	for _, row := range r.Rows {
		rows[row[0]] = row
	}
	narrow, ok := rows["window narrow (1/32 of range)"]
	if !ok {
		t.Fatalf("narrow-window row missing: %v", r.Rows)
	}
	var prunedPct int
	if _, err := fmt.Sscanf(narrow[2], "pruned %d%%", &prunedPct); err != nil {
		t.Fatalf("narrow-window detail unparseable: %q", narrow[2])
	}
	if prunedPct < 50 {
		t.Errorf("narrow window pruned %d%% of pieces, want >= 50%%", prunedPct)
	}
	if gaps := rows["sequence gaps"]; gaps == nil || gaps[1] != "0" {
		t.Errorf("sequence-gaps row missing or nonzero: %v", gaps)
	}
	if dropped := rows["events dropped"]; dropped == nil || dropped[1] != "0" {
		t.Errorf("events-dropped row missing or nonzero: %v", dropped)
	}
}

func TestAblationAlphaShape(t *testing.T) {
	r := runExperiment(t, "ablation-alpha")
	// Footprint ratio must be non-increasing in alpha.
	prev := 1e18
	for i := range r.Rows {
		fp := cellFloat(t, r, i, 1)
		if fp > prev+1e-9 {
			t.Errorf("footprint grew with alpha at row %d: %.3f -> %.3f", i, prev, fp)
		}
		prev = fp
	}
	// obj_get at the smallest alpha must not be grossly slower than at
	// the largest. (Cost-aware walker anchoring has flattened the
	// latency curve to within timing noise on a loaded 1-CPU box, so a
	// strict first<last comparison flakes; the footprint knob above is
	// the deterministic half of the trade-off.)
	first := cellFloat(t, r, 0, 2)
	last := cellFloat(t, r, len(r.Rows)-1, 2)
	if first > 2*last {
		t.Errorf("alpha latency knob inverted: obj_get %.2f (a=4) > 2x %.2f (a=128)", first, last)
	}
}

func TestAblationFannedShape(t *testing.T) {
	r := runExperiment(t, "ablation-fanned")
	fanned := findRow(t, r, "fanned-updates")
	broadcast := findRow(t, r, "broadcast")
	// Fragment counts identical; assoc_range reads faster with pointers.
	if r.Rows[fanned][1] != r.Rows[broadcast][1] {
		t.Fatalf("fragment counts differ: %s vs %s", r.Rows[fanned][1], r.Rows[broadcast][1])
	}
	if cellFloat(t, r, fanned, 3) <= cellFloat(t, r, broadcast, 3) {
		t.Errorf("fanned updates did not beat broadcast on assoc_range: %s vs %s",
			r.Rows[fanned][3], r.Rows[broadcast][3])
	}
}

func TestAblationLogStoreShape(t *testing.T) {
	r := runExperiment(t, "ablation-logstore")
	// Rollovers decrease as the threshold grows.
	prev := 1e18
	for i := range r.Rows {
		roll := cellFloat(t, r, i, 1)
		if roll > prev {
			t.Errorf("rollovers grew with threshold at row %d", i)
		}
		prev = roll
	}
	// Reads are fastest at the largest threshold (fewest fragments).
	if cellFloat(t, r, len(r.Rows)-1, 4) <= cellFloat(t, r, 0, 4) {
		t.Errorf("read throughput did not improve with fewer fragments")
	}
}

func TestAblationShardsRuns(t *testing.T) {
	r := runExperiment(t, "ablation-shards")
	if len(r.Rows) != 5 {
		t.Fatalf("want 5 shard counts, got %d", len(r.Rows))
	}
}

func TestParallelScalingShape(t *testing.T) {
	r := runExperiment(t, "parallel-scaling")
	if len(r.Rows) < 1 {
		t.Fatal("no worker-count rows")
	}
	if r.Rows[0][0] != "1" {
		t.Fatalf("first row should be the 1-worker baseline, got %q", r.Rows[0][0])
	}
	// The baseline row's speedups are 1.00x by construction.
	if r.Rows[0][2] != "1.00x" || r.Rows[0][4] != "1.00x" {
		t.Fatalf("baseline speedups != 1.00x: %v", r.Rows[0])
	}
}
