package bench

import (
	"fmt"
	"reflect"
	"sort"
	"strings"
	"time"

	"zipg/internal/bitutil"
	"zipg/internal/store"
	"zipg/internal/workloads"
)

// CodecBench sweeps the pluggable integer codecs against the sampling
// rate α (no paper figure; the codec layer in DESIGN.md). Two parts:
//
// Part 1 builds the same dataset under every codec policy × α and
// reports the encoded bytes of the codec-managed regions (Ψ blocks,
// SA/ISA samples, offset vectors) plus obj_get/assoc_range throughput.
// The per-region auto policy should meet or beat every fixed codec on
// encoded bytes — different regions have different value shapes, so no
// single codec wins everywhere — while a fixed battery of queries
// cross-checks that no policy changes any answer.
//
// Part 2 drives a Zipf-skewed TAO read mix at an α-auto-tuning store
// and compacts: the report shows per-partition reads and the tuned α,
// with the hottest partition sampling denser than base and cold
// partitions compressing harder.
func CodecBench(opts Options) (*Result, error) {
	opts = opts.withDefaults()
	d, err := datasetByName("orkut", opts.BaseBytes)
	if err != nil {
		return nil, err
	}
	ns, es, err := deriveSchemas(d)
	if err != nil {
		return nil, err
	}
	r := &Result{
		Title:   "Codec sweep: policy × α (encoded bytes, throughput) + α auto-tuning",
		Headers: []string{"dataset", "policy", "alpha", "region-bytes", "obj_get-KOps", "assoc_range-KOps", "answers"},
		Notes: []string{
			"region-bytes: codec-managed regions only (Psi blocks, SA/ISA samples, offset vectors)",
			"expected: auto <= every fixed codec on region-bytes, answers identical everywhere",
		},
	}

	policies := []struct {
		name   string
		policy bitutil.CodecPolicy
	}{
		{"legacy", bitutil.CodecForceLegacy},
		{"simple8b", bitutil.CodecForceSimple8b},
		{"varint", bitutil.CodecForceVarint},
		{"auto", bitutil.CodecAuto},
	}
	// Two scales: at the base size legacy's per-block packing amortizes
	// well; at quarter scale the per-shard regions are small enough that
	// varint wins some of them, so the auto policy's per-region mix is
	// visible in both regimes.
	for _, sc := range []struct {
		label string
		div   int64
	}{{"orkut/4", 4}, {"orkut", 1}} {
		d, err := datasetByName("orkut", opts.BaseBytes/sc.div)
		if err != nil {
			return nil, err
		}
		ns, es, err := deriveSchemas(d)
		if err != nil {
			return nil, err
		}
		var objMix, rangeMix workloads.Frequencies
		objMix[workloads.OpObjGet] = 1
		rangeMix[workloads.OpAssocRange] = 1
		objOps := workloads.GenerateOps(d, workloads.MixConfig{Mix: objMix, Seed: 2401}, opts.Ops)
		rangeOps := workloads.GenerateOps(d, workloads.MixConfig{Mix: rangeMix, Seed: 2402}, opts.Ops)

		var ref *storeBatteryAnswers
		autoBytes := map[int]int64{}
		fixedBest := map[int]int64{}
		autoMix := map[int]string{}
		for _, alpha := range []int{8, 32} {
			for _, pc := range policies {
				st, err := store.New(d.Nodes, d.Edges, ns, es, store.Config{
					NumShards: 4, SamplingRate: alpha, Codec: pc.policy,
				})
				if err != nil {
					return nil, err
				}
				g := storeAdapter{st}
				bytes := codecRegionBytes(st)
				if pc.name == "auto" {
					autoBytes[alpha] = bytes
					autoMix[alpha] = codecMix(st)
				} else if best, ok := fixedBest[alpha]; !ok || bytes < best {
					fixedBest[alpha] = bytes
				}

				answers := codecBattery(st, d.Nodes[0].ID, int64(len(d.Nodes)))
				verdict := "identical"
				if ref == nil {
					ref = &answers
					verdict = "reference"
				} else if !reflect.DeepEqual(*ref, answers) {
					verdict = "DIVERGED"
				}

				sys := &System{Name: pc.name, Store: g}
				objT := sys.throughputUnmediated(len(objOps), func(i int) { workloads.Execute(g, objOps[i]) })
				rangeT := sys.throughputUnmediated(len(rangeOps), func(i int) { workloads.Execute(g, rangeOps[i]) })
				r.Rows = append(r.Rows, []string{
					sc.label, pc.name, fmt.Sprint(alpha), fmt.Sprint(bytes),
					kops(objT), kops(rangeT), verdict,
				})
			}
		}
		for _, alpha := range []int{8, 32} {
			r.Notes = append(r.Notes, fmt.Sprintf(
				"%s alpha=%d: auto=%dB vs best-fixed=%dB (%+.2f%%), auto mix: %s",
				sc.label, alpha, autoBytes[alpha], fixedBest[alpha],
				100*float64(autoBytes[alpha]-fixedBest[alpha])/float64(fixedBest[alpha]),
				autoMix[alpha]))
		}
	}

	// Part 2: α auto-tuning under a Zipf-skewed TAO read mix.
	const base = 32
	st, err := store.New(d.Nodes, d.Edges, ns, es, store.Config{
		NumShards: 4, SamplingRate: base, Codec: bitutil.CodecAuto, AutoTuneAlpha: true,
	})
	if err != nil {
		return nil, err
	}
	g := storeAdapter{st}
	taoOps := workloads.GenerateOps(d, workloads.MixConfig{
		Mix: workloads.TAOMix, AccessSkew: 1.4, Seed: 2403,
	}, opts.Ops*4)
	for _, op := range taoOps {
		if _, err := workloads.Execute(g, op); err != nil {
			return nil, err
		}
	}
	reads := st.ShardReads()
	if err := st.Compact(); err != nil {
		return nil, err
	}
	alphas := st.TunedAlphas()
	hot, cold := 0, 0
	for p := range reads {
		if reads[p] > reads[hot] {
			hot = p
		}
		if reads[p] < reads[cold] {
			cold = p
		}
	}
	r.Notes = append(r.Notes, fmt.Sprintf(
		"alpha auto-tune under Zipf TAO mix (base=%d): reads=%v -> alpha=%v", base, reads, alphas))
	r.Notes = append(r.Notes, fmt.Sprintf(
		"hottest partition %d: alpha %d (denser); coldest partition %d: alpha %d",
		hot, alphas[hot], cold, alphas[cold]))
	return r, nil
}

// codecMix summarizes how many regions landed on each codec across the
// store's compressed fragments.
func codecMix(st *store.Store) string {
	counts := map[string]int{}
	var names []string
	for _, fc := range st.CodecReport() {
		for _, rc := range fc.Regions {
			if counts[rc.Codec] == 0 {
				names = append(names, rc.Codec)
			}
			counts[rc.Codec]++
		}
	}
	sort.Strings(names)
	parts := make([]string, len(names))
	for i, n := range names {
		parts[i] = fmt.Sprintf("%s=%d", n, counts[n])
	}
	return strings.Join(parts, " ")
}

// codecRegionBytes sums the encoded bytes of every codec-managed region
// across the store's compressed fragments.
func codecRegionBytes(st *store.Store) int64 {
	var total int64
	for _, fc := range st.CodecReport() {
		for _, rc := range fc.Regions {
			total += int64(rc.Bytes)
		}
	}
	return total
}

// storeBatteryAnswers is a fixed query battery's output, compared across
// codec policies to prove encodings never change answers.
type storeBatteryAnswers struct {
	Props     [][]string
	Neighbors [][]int64
}

func codecBattery(st *store.Store, firstID, n int64) storeBatteryAnswers {
	var a storeBatteryAnswers
	step := n/64 + 1
	for id := firstID; id < firstID+n; id += step {
		props, _ := st.GetNodeProps(id, nil)
		a.Props = append(a.Props, props)
		a.Neighbors = append(a.Neighbors, st.NeighborIDs(id, -1, nil))
	}
	return a
}

// throughputUnmediated measures ops/sec by wall clock only, for systems
// whose storage is not routed through a simulated medium.
func (s *System) throughputUnmediated(n int, fn func(i int)) float64 {
	warm := n / 4
	if warm > 500 {
		warm = 500
	}
	for i := 0; i < warm; i++ {
		fn(i)
	}
	start := time.Now()
	for i := 0; i < n; i++ {
		fn(i)
	}
	elapsed := time.Since(start)
	if elapsed <= 0 {
		elapsed = time.Nanosecond
	}
	return float64(n) / elapsed.Seconds()
}
