package bench

import (
	"fmt"

	"zipg/internal/gen"
	"zipg/internal/workloads"
)

// runMixOnSystem measures overall-mix throughput plus per-component
// throughput for one system over one dataset. The second return value
// is the telemetry delta for the whole measured run, rendered as note
// lines (nil for systems that never touch an instrumented ZipG path).
func runMixOnSystem(sys *System, d *gen.Dataset, mix workloads.MixConfig, components []workloads.OpKind, nOps int) ([]float64, []string, error) {
	out := make([]float64, 0, 1+len(components))
	tc := startTelemetryCapture()
	ops := workloads.GenerateOps(d, mix, nOps)
	// All measurements run under silent cache pressure from the read-only
	// part of the mix (see ThroughputUnderPressure): the paper measured
	// after 15-minute warm-ups on servers whose caches held the whole
	// production working set, which a short measurement window would not
	// otherwise reproduce.
	pressureOps := workloads.GenerateOps(d, workloads.MixConfig{
		Mix: readOnly(mix.Mix), AccessSkew: mix.AccessSkew, Seed: mix.Seed + 7777,
	}, nOps)
	pressure := func(i int) {
		workloads.Execute(sys.Store, pressureOps[i%len(pressureOps)])
	}
	var execErr error
	tput := sys.ThroughputUnderPressure(len(ops), func(i int) {
		if _, err := workloads.Execute(sys.Store, ops[i]); err != nil && execErr == nil {
			execErr = err
		}
	}, pressure)
	if execErr != nil {
		tc.finish("")
		return nil, nil, fmt.Errorf("bench: %s mix: %w", sys.Name, execErr)
	}
	out = append(out, tput)
	for _, kind := range components {
		var compMix workloads.Frequencies
		compMix[kind] = 1
		compCfg := workloads.MixConfig{Mix: compMix, AccessSkew: mix.AccessSkew, Seed: mix.Seed + int64(kind) + 1}
		compOps := workloads.GenerateOps(d, compCfg, nOps/2)
		tput := sys.ThroughputUnderPressure(len(compOps), func(i int) {
			if _, err := workloads.Execute(sys.Store, compOps[i]); err != nil && execErr == nil {
				execErr = err
			}
		}, pressure)
		if execErr != nil {
			tc.finish("")
			return nil, nil, fmt.Errorf("bench: %s %v: %w", sys.Name, kind, execErr)
		}
		out = append(out, tput)
	}
	return out, tc.finish(d.Spec.Name + "/" + sys.Name), nil
}

// readOnly keeps only the non-mutating operations of a mix.
func readOnly(mix workloads.Frequencies) workloads.Frequencies {
	var out workloads.Frequencies
	for _, k := range []workloads.OpKind{
		workloads.OpAssocRange, workloads.OpObjGet, workloads.OpAssocGet,
		workloads.OpAssocCount, workloads.OpAssocTimeRange,
	} {
		out[k] = mix[k]
	}
	return out
}

// mixExperiment runs a workload mix over the given datasets and every
// system, with the paper's memory budget.
func mixExperiment(opts Options, title string, datasets []string, mix workloads.MixConfig, components []workloads.OpKind, notes []string) (*Result, error) {
	opts = opts.withDefaults()
	budget := int64(float64(opts.BaseBytes) * MemoryRatio)
	headers := []string{"dataset", "system", "overall-KOps"}
	for _, k := range components {
		headers = append(headers, k.String()+"-KOps")
	}
	r := &Result{Title: title, Headers: headers, Notes: notes}
	for _, dsName := range datasets {
		d, err := datasetByName(dsName, opts.BaseBytes)
		if err != nil {
			return nil, err
		}
		for _, sysName := range SystemNames {
			if opts.Verbose {
				fmt.Printf("  building %s over %s...\n", sysName, dsName)
			}
			sys, err := BuildSystem(sysName, d, budget)
			if err != nil {
				return nil, err
			}
			tputs, telNotes, err := runMixOnSystem(sys, d, mix, components, opts.Ops)
			if err != nil {
				return nil, err
			}
			row := []string{dsName, sysName}
			for _, t := range tputs {
				row = append(row, kops(t))
			}
			r.Rows = append(r.Rows, row)
			r.Notes = append(r.Notes, telNotes...)
		}
	}
	return r, nil
}

// Fig6 is the single-server TAO workload (paper Figure 6): overall mix
// plus the top-5 component queries over the three real-world datasets.
func Fig6(opts Options) (*Result, error) {
	return mixExperiment(opts,
		"Figure 6: single-server TAO throughput (overall + top-5 queries)",
		[]string{"orkut", "twitter", "uk"},
		workloads.MixConfig{Mix: workloads.TAOMix, AccessSkew: 0, Seed: 601},
		[]workloads.OpKind{
			workloads.OpAssocRange, workloads.OpObjGet, workloads.OpAssocGet,
			workloads.OpAssocCount, workloads.OpAssocTimeRange,
		},
		[]string{
			"paper: comparable on orkut (all fit memory; zipg slightly ahead on random access)",
			"paper: neo4j collapses on twitter (pointer chasing off SSD); titan holds (working set cached)",
			"paper: on uk only zipg keeps most queries in memory -> order-of-magnitude lead",
		})
}

// Fig7 is the single-server LinkBench workload (paper Figure 7):
// write-heavy mix with skewed access over the LinkBench datasets.
func Fig7(opts Options) (*Result, error) {
	return mixExperiment(opts,
		"Figure 7: single-server LinkBench throughput (overall + top-5 queries)",
		[]string{"lb-small", "lb-medium", "lb-large"},
		workloads.MixConfig{Mix: workloads.LinkBenchMix, AccessSkew: 1.4, Seed: 701},
		[]workloads.OpKind{
			workloads.OpAssocRange, workloads.OpObjGet, workloads.OpAssocAdd,
			workloads.OpAssocUpdate, workloads.OpObjUpdate,
		},
		[]string{
			"paper: absolute throughput lower than TAO for all systems (writes + skewed large neighborhoods)",
			"paper: neo4j writes bottleneck on multi-location updates; titan writes ok (LSM) but range reads poor",
			"paper: zipg keeps write throughput high via the LogStore + fanned updates",
		})
}

// Fig8 is the single-server Graph Search workload (paper Figure 8):
// equal-proportion GS1-GS5 over the real-world datasets.
func Fig8(opts Options) (*Result, error) {
	opts = opts.withDefaults()
	budget := int64(float64(opts.BaseBytes) * MemoryRatio)
	headers := []string{"dataset", "system", "overall-KOps", "GS1-KOps", "GS2-KOps", "GS3-KOps", "GS4-KOps", "GS5-KOps"}
	r := &Result{
		Title:   "Figure 8: single-server Graph Search throughput (overall + GS1-GS5)",
		Headers: headers,
		Notes: []string{
			"paper: neo4j-tuned beats zipg ~1.23x on orkut (global index, all in memory) — zipg's compressed-search overhead",
			"paper: as data outgrows memory, zipg takes a ~3x lead; GS3 is zipg's worst case in memory (touches all partitions)",
		},
	}
	for _, dsName := range []string{"orkut", "twitter", "uk"} {
		d, err := datasetByName(dsName, opts.BaseBytes)
		if err != nil {
			return nil, err
		}
		allOps := workloads.GenerateGSOps(d, 801, opts.Ops)
		for _, sysName := range SystemNames {
			if opts.Verbose {
				fmt.Printf("  building %s over %s...\n", sysName, dsName)
			}
			sys, err := BuildSystem(sysName, d, budget)
			if err != nil {
				return nil, err
			}
			row := []string{dsName, sysName}
			tc := startTelemetryCapture()
			tput := sys.Throughput(len(allOps), func(i int) {
				workloads.ExecuteGS(sys.Store, allOps[i], false)
			})
			row = append(row, kops(tput))
			pressure := func(i int) {
				workloads.ExecuteGS(sys.Store, allOps[i%len(allOps)], false)
			}
			for kind := workloads.KindGS1; kind <= workloads.KindGS5; kind++ {
				ops := workloads.FilterGSKind(allOps, kind)
				tput := sys.ThroughputUnderPressure(len(ops), func(i int) {
					workloads.ExecuteGS(sys.Store, ops[i], false)
				}, pressure)
				row = append(row, kops(tput))
			}
			r.Rows = append(r.Rows, row)
			r.Notes = append(r.Notes, tc.finish(dsName+"/"+sysName)...)
		}
	}
	return r, nil
}
