package bench

import (
	"fmt"
	"sort"
	"strings"

	"zipg/internal/telemetry"
)

// Every benchmark run doubles as a paper-figure validation: the harness
// snapshots the telemetry registry before and after each measured
// workload and reports the deltas (store op counts, fanned-update
// fragment counts, LogStore hit rate, Succinct bytes extracted, RPC
// fan-out) next to the throughput numbers, so e.g. Figure 10's
// fragments-per-read and §4.1's fan-out analysis can be read straight
// off a bench run.

// telemetryCapture brackets one measured workload.
type telemetryCapture struct {
	before telemetry.Snapshot
	wasOn  bool
}

// startTelemetryCapture enables telemetry (restored by finish) and
// snapshots the registry.
func startTelemetryCapture() *telemetryCapture {
	c := &telemetryCapture{wasOn: telemetry.SetEnabled(true)}
	c.before = telemetry.TakeSnapshot()
	return c
}

// finish computes the per-workload delta and renders it as note lines
// (empty when the workload never touched an instrumented ZipG path —
// the baselines report nothing).
func (c *telemetryCapture) finish(label string) []string {
	delta := telemetry.Delta(c.before, telemetry.TakeSnapshot())
	telemetry.SetEnabled(c.wasOn)
	return telemetryNotes(label, delta)
}

// sumPrefix adds up every series delta whose name starts with prefix.
func sumPrefix(d telemetry.Snapshot, prefix string) float64 {
	var total float64
	for k, v := range d {
		if strings.HasPrefix(k, prefix) {
			total += v
		}
	}
	return total
}

// telemetryNotes renders one workload's telemetry delta as note lines.
func telemetryNotes(label string, d telemetry.Snapshot) []string {
	storeOps := sumPrefix(d, "zipg_store_ops_total")
	rpcCalls := sumPrefix(d, "zipg_rpc_calls_total{")
	if storeOps == 0 && rpcCalls == 0 {
		return nil
	}
	var parts []string
	add := func(format string, args ...any) {
		parts = append(parts, fmt.Sprintf(format, args...))
	}
	add("store_ops=%.0f", storeOps)
	if m, ok := d["zipg_store_fragments_per_read.mean"]; ok {
		add("avg_fragments_per_read=%.2f", m)
	}
	hits := d[`zipg_logstore_reads_total{result="hit"}`]
	misses := d[`zipg_logstore_reads_total{result="miss"}`]
	if hits+misses > 0 {
		add("logstore_hit_rate=%.2f", hits/(hits+misses))
	}
	if b := d["zipg_store_succinct_bytes_total"]; b > 0 {
		add("succinct_KB=%.1f", b/1024)
	}
	if r := d["zipg_store_rollovers_total"]; r > 0 {
		add("rollovers=%.0f", r)
	}
	if rpcCalls > 0 {
		add("rpc_calls=%.0f", rpcCalls)
		if kb := sumPrefix(d, "zipg_rpc_frame_bytes_total"); kb > 0 {
			add("rpc_frame_KB=%.1f", kb/1024)
		}
	}
	if nq := d["zipg_cluster_neighbor_queries_total"]; nq > 0 {
		if m, ok := d["zipg_cluster_fanout.mean"]; ok {
			add("avg_rpc_fanout=%.2f", m)
		}
		local := d[`zipg_cluster_subqueries_total{locality="local"}`]
		remote := d[`zipg_cluster_subqueries_total{locality="remote"}`]
		if local+remote > 0 {
			add("remote_subquery_share=%.2f", remote/(local+remote))
		}
	}
	return []string{fmt.Sprintf("telemetry[%s]: %s", label, strings.Join(parts, " "))}
}

// perMethodNotes renders the per-RPC-method call deltas, sorted by
// volume (the cluster telemetry experiment's main table feed).
func perMethodNotes(d telemetry.Snapshot) []string {
	type mc struct {
		method string
		calls  float64
	}
	var ms []mc
	for k, v := range d {
		if rest, ok := strings.CutPrefix(k, `zipg_rpc_calls_total{method="`); ok {
			ms = append(ms, mc{strings.TrimSuffix(rest, `"}`), v})
		}
	}
	sort.Slice(ms, func(i, j int) bool { return ms[i].calls > ms[j].calls })
	out := make([]string, 0, len(ms))
	for _, m := range ms {
		out = append(out, fmt.Sprintf("rpc method %-12s %8.0f calls", m.method, m.calls))
	}
	return out
}
