package bench

import (
	"fmt"
	"time"

	"zipg"
	"zipg/internal/gen"
	"zipg/internal/graphapi"
	"zipg/internal/layout"
	"zipg/internal/memsim"
	"zipg/internal/store"
	"zipg/internal/workloads"
)

// The ablation experiments quantify the design choices DESIGN.md calls
// out: Succinct's sampling-rate knob, the fanned-updates read path, the
// LogStore rollover threshold, and the shard count. They have no direct
// counterpart figure in the paper (the paper states the trade-offs in
// §3.1 and §3.5); the benches verify each trade-off exists in this
// implementation and measure its slope.

// AblationAlpha sweeps Succinct's sampling rate α: storage shrinks
// roughly as 2n·log(n)/α while random-access latency grows ∝ α (§3.1).
func AblationAlpha(opts Options) (*Result, error) {
	opts = opts.withDefaults()
	d, err := datasetByName("orkut", opts.BaseBytes)
	if err != nil {
		return nil, err
	}
	r := &Result{
		Title:   "Ablation: Succinct sampling rate α (space vs latency, §3.1)",
		Headers: []string{"alpha", "footprint/raw", "obj_get-KOps", "assoc_range-KOps"},
		Notes:   []string{"expected: footprint falls and latency rises as alpha grows"},
	}
	for _, alpha := range []int{4, 8, 16, 32, 64, 128} {
		clock := &memsim.Clock{}
		med := memsim.NewMedium(clock, memsim.Config{Budget: -1})
		g, err := zipg.Compress(zipg.GraphData{Nodes: d.Nodes, Edges: d.Edges}, zipg.Options{
			NumShards: 4, SamplingRate: alpha, Medium: med,
		})
		if err != nil {
			return nil, err
		}
		sys := &System{Name: fmt.Sprintf("zipg-a%d", alpha), Store: g, Med: med, Clock: clock}
		var objMix, rangeMix workloads.Frequencies
		objMix[workloads.OpObjGet] = 1
		rangeMix[workloads.OpAssocRange] = 1
		objOps := workloads.GenerateOps(d, workloads.MixConfig{Mix: objMix, Seed: 2001}, opts.Ops)
		rangeOps := workloads.GenerateOps(d, workloads.MixConfig{Mix: rangeMix, Seed: 2002}, opts.Ops)
		objT := sys.Throughput(len(objOps), func(i int) { workloads.Execute(g, objOps[i]) })
		rangeT := sys.Throughput(len(rangeOps), func(i int) { workloads.Execute(g, rangeOps[i]) })
		r.Rows = append(r.Rows, []string{
			fmt.Sprint(alpha),
			ratioStr(med.Footprint(), d.RawBytes),
			kops(objT), kops(rangeT),
		})
	}
	return r, nil
}

// AblationFanned compares the fanned-updates read path against the
// broadcast strawman of §3.5 (consult every fragment) after a burst of
// updates has fragmented the store.
func AblationFanned(opts Options) (*Result, error) {
	opts = opts.withDefaults()
	d, err := datasetByName("lb-small", opts.BaseBytes)
	if err != nil {
		return nil, err
	}
	ns, es, err := deriveSchemas(d)
	if err != nil {
		return nil, err
	}
	r := &Result{
		Title:   "Ablation: fanned updates vs broadcast reads (§3.5)",
		Headers: []string{"mode", "fragments", "obj_get-KOps", "assoc_range-KOps"},
		Notes: []string{
			"expected: after many rollovers, pointer-guided reads beat consulting every fragment",
		},
	}
	writeOps := workloads.GenerateOps(d, workloads.MixConfig{
		Mix: workloads.LinkBenchMix, AccessSkew: 1.4, Seed: 2101,
	}, opts.Ops*4)
	for _, mode := range []struct {
		name    string
		disable bool
	}{{"fanned-updates", false}, {"broadcast", true}} {
		st, err := store.New(d.Nodes, d.Edges, ns, es, store.Config{
			NumShards:            4,
			SamplingRate:         32,
			LogStoreThreshold:    opts.BaseBytes / 16,
			DisableFannedUpdates: mode.disable,
		})
		if err != nil {
			return nil, err
		}
		g := storeAdapter{st}
		// Fragment the store with the write-heavy mix.
		for _, op := range writeOps {
			if _, err := workloads.Execute(g, op); err != nil {
				return nil, err
			}
		}
		sys := &System{Name: mode.name, Store: g, Med: memsim.Unlimited(), Clock: &memsim.Clock{}}
		var objMix, rangeMix workloads.Frequencies
		objMix[workloads.OpObjGet] = 1
		rangeMix[workloads.OpAssocRange] = 1
		objOps := workloads.GenerateOps(d, workloads.MixConfig{Mix: objMix, Seed: 2102}, opts.Ops)
		rangeOps := workloads.GenerateOps(d, workloads.MixConfig{Mix: rangeMix, Seed: 2103}, opts.Ops)
		objT := sys.Throughput(len(objOps), func(i int) { workloads.Execute(g, objOps[i]) })
		rangeT := sys.Throughput(len(rangeOps), func(i int) { workloads.Execute(g, rangeOps[i]) })
		r.Rows = append(r.Rows, []string{
			mode.name, fmt.Sprint(st.NumFragments()), kops(objT), kops(rangeT),
		})
	}
	return r, nil
}

// AblationLogStore sweeps the LogStore rollover threshold: smaller
// thresholds mean more fragments (worse reads, §3.5's fragmentation
// cost) but less data in the uncompressed log (smaller footprint).
func AblationLogStore(opts Options) (*Result, error) {
	opts = opts.withDefaults()
	d, err := datasetByName("lb-small", opts.BaseBytes)
	if err != nil {
		return nil, err
	}
	ns, es, err := deriveSchemas(d)
	if err != nil {
		return nil, err
	}
	r := &Result{
		Title:   "Ablation: LogStore rollover threshold (§3.5)",
		Headers: []string{"threshold", "rollovers", "fragments", "write-KOps", "read-KOps"},
		Notes:   []string{"expected: small thresholds fragment reads; huge thresholds keep more data uncompressed"},
	}
	for _, div := range []int64{64, 16, 4, 1} {
		st, err := store.New(d.Nodes, d.Edges, ns, es, store.Config{
			NumShards:         4,
			SamplingRate:      32,
			LogStoreThreshold: opts.BaseBytes / div,
		})
		if err != nil {
			return nil, err
		}
		g := storeAdapter{st}
		sys := &System{Name: "zipg", Store: g, Med: memsim.Unlimited(), Clock: &memsim.Clock{}}
		var writeMix, readMix workloads.Frequencies
		writeMix[workloads.OpAssocAdd] = 1
		readMix[workloads.OpAssocRange] = 1
		writeOps := workloads.GenerateOps(d, workloads.MixConfig{Mix: writeMix, AccessSkew: 1.4, Seed: 2201}, opts.Ops*2)
		start := time.Now()
		for _, op := range writeOps {
			if _, err := workloads.Execute(g, op); err != nil {
				return nil, err
			}
		}
		writeT := float64(len(writeOps)) / time.Since(start).Seconds()
		readOps := workloads.GenerateOps(d, workloads.MixConfig{Mix: readMix, AccessSkew: 1.4, Seed: 2202}, opts.Ops)
		readT := sys.Throughput(len(readOps), func(i int) { workloads.Execute(g, readOps[i]) })
		r.Rows = append(r.Rows, []string{
			fmt.Sprint(opts.BaseBytes / div), fmt.Sprint(st.Rollovers()),
			fmt.Sprint(st.NumFragments()), kops(writeT), kops(readT),
		})
	}
	return r, nil
}

// AblationShards sweeps the shard count: node-local queries are
// unaffected but get_node_ids must search every shard (§4.1,
// footnote 5).
func AblationShards(opts Options) (*Result, error) {
	opts = opts.withDefaults()
	d, err := datasetByName("orkut", opts.BaseBytes)
	if err != nil {
		return nil, err
	}
	r := &Result{
		Title:   "Ablation: shard count (node-local vs all-shard queries, §4.1)",
		Headers: []string{"shards", "obj_get-KOps", "get_node_ids-KOps"},
		Notes:   []string{"expected: obj_get roughly flat; get_node_ids degrades with shard count"},
	}
	gsOps := workloads.GenerateGSOps(d, 2301, opts.Ops)
	searchOps := workloads.FilterGSKind(gsOps, workloads.KindGS3)
	for _, shards := range []int{1, 2, 4, 8, 16} {
		clock := &memsim.Clock{}
		med := memsim.NewMedium(clock, memsim.Config{Budget: -1})
		g, err := zipg.Compress(zipg.GraphData{Nodes: d.Nodes, Edges: d.Edges}, zipg.Options{
			NumShards: shards, SamplingRate: 32, Medium: med,
		})
		if err != nil {
			return nil, err
		}
		sys := &System{Name: fmt.Sprintf("zipg-%d", shards), Store: g, Med: med, Clock: clock}
		var objMix workloads.Frequencies
		objMix[workloads.OpObjGet] = 1
		objOps := workloads.GenerateOps(d, workloads.MixConfig{Mix: objMix, Seed: 2302}, opts.Ops)
		objT := sys.Throughput(len(objOps), func(i int) { workloads.Execute(g, objOps[i]) })
		searchT := sys.Throughput(len(searchOps), func(i int) {
			workloads.ExecuteGS(g, searchOps[i], false)
		})
		r.Rows = append(r.Rows, []string{fmt.Sprint(shards), kops(objT), kops(searchT)})
	}
	return r, nil
}

// storeAdapter lifts store.Store to the shared interface for the
// ablations that need store-level switches.
type storeAdapter struct{ s *store.Store }

func (a storeAdapter) GetNodeProperty(id graphapi.NodeID, pids []string) ([]string, bool) {
	if len(pids) == 0 {
		vals, ok := a.s.GetNodeProps(id, nil)
		if !ok {
			return nil, false
		}
		out := make([]string, 0, len(vals))
		for _, v := range vals {
			if v != "" {
				out = append(out, v)
			}
		}
		return out, true
	}
	return a.s.GetNodeProps(id, pids)
}

func (a storeAdapter) GetNodeIDs(props map[string]string) []graphapi.NodeID {
	return a.s.FindNodes(props)
}

func (a storeAdapter) GetNeighborIDs(id graphapi.NodeID, etype graphapi.EdgeType, props map[string]string) []graphapi.NodeID {
	return a.s.NeighborIDs(id, etype, props)
}

func (a storeAdapter) GetEdgeRecord(id graphapi.NodeID, etype graphapi.EdgeType) (graphapi.EdgeRecord, bool) {
	r, ok := a.s.GetEdgeRecord(id, etype)
	if !ok {
		return nil, false
	}
	return storeRecord{r}, true
}

func (a storeAdapter) GetEdgeRecords(id graphapi.NodeID) []graphapi.EdgeRecord {
	rs := a.s.GetEdgeRecords(id)
	out := make([]graphapi.EdgeRecord, len(rs))
	for i, r := range rs {
		out[i] = storeRecord{r}
	}
	return out
}

func (a storeAdapter) AppendNode(id graphapi.NodeID, props map[string]string) error {
	return a.s.AppendNode(id, props)
}

func (a storeAdapter) AppendEdge(e graphapi.Edge) error { return a.s.AppendEdge(e) }

func (a storeAdapter) DeleteNode(id graphapi.NodeID) error {
	a.s.DeleteNode(id)
	return nil
}

func (a storeAdapter) DeleteEdges(src graphapi.NodeID, etype graphapi.EdgeType, dst graphapi.NodeID) (int, error) {
	return a.s.DeleteEdges(src, etype, dst), nil
}

type storeRecord struct{ r *store.EdgeRecord }

func (r storeRecord) Count() int { return r.r.Count() }

func (r storeRecord) Range(tLo, tHi int64) (int, int) {
	tLo, tHi = graphapi.TimeBounds(tLo, tHi)
	return r.r.GetEdgeRange(tLo, tHi)
}

func (r storeRecord) Data(i int) (graphapi.EdgeData, error) { return r.r.GetEdgeData(i) }

func (r storeRecord) Destinations() []graphapi.NodeID { return r.r.Destinations() }

// deriveSchemas builds node/edge schemas for a generated dataset.
func deriveSchemas(d *gen.Dataset) (*layout.PropertySchema, *layout.PropertySchema, error) {
	return zipg.DeriveSchemas(zipg.GraphData{Nodes: d.Nodes, Edges: d.Edges})
}
