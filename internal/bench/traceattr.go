package bench

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"zipg"
	"zipg/internal/cluster"
	"zipg/internal/telemetry"
	"zipg/internal/workloads"
)

// TraceAttribution answers "where does the p99 go?" with the distributed
// tracer rather than a model: it runs the TAO mix plus the §4.1
// function-shipping path on a live 4-server loopback cluster with span
// sampling at 1, assembles every span tree, and tabulates per-phase
// latency percentiles for the client and for each server. It also
// reports how much of each server-side span's wall time the phase
// timers account for — the tracer is only trustworthy if the phases
// explain (almost) all of the time they claim to attribute.
func TraceAttribution(opts Options) (*Result, error) {
	opts = opts.withDefaults()
	const numServers = 4
	d, err := datasetByName("orkut", opts.BaseBytes)
	if err != nil {
		return nil, err
	}
	nodeSchema, edgeSchema, err := zipg.DeriveSchemas(zipg.GraphData{Nodes: d.Nodes, Edges: d.Edges})
	if err != nil {
		return nil, err
	}
	c, err := cluster.Launch(d.Nodes, d.Edges, nodeSchema, edgeSchema, cluster.LaunchConfig{
		NumServers:      numServers,
		ShardsPerServer: 2,
	})
	if err != nil {
		return nil, err
	}
	defer c.Close()
	client, err := c.Client()
	if err != nil {
		return nil, err
	}
	defer client.Close()

	wasOn := telemetry.SetEnabled(true)
	defer telemetry.SetEnabled(wasOn)
	prevSampling := telemetry.SetSpanSampling(1)
	defer telemetry.SetSpanSampling(prevSampling)
	telemetry.ResetSpans()

	mix := workloads.MixConfig{Mix: workloads.TAOMix, AccessSkew: 0, Seed: 1001}
	ops := workloads.GenerateOps(d, mix, opts.Ops)

	agg := phaseAgg{durs: map[phaseAggKey][]float64{}}
	seen := map[telemetry.TraceID]bool{}

	// TAO mix. The Table 2 shims don't thread a context, so each RPC
	// roots its own trace; harvest new traces right after every op —
	// the trace table is a 256-entry FIFO, so assembly must not lag.
	for _, op := range ops {
		if _, err := workloads.Execute(client, op); err != nil {
			return nil, fmt.Errorf("bench: trace-attribution: %w", err)
		}
		for _, id := range telemetry.RecentTraces(16) {
			if !seen[id] {
				seen[id] = true
				agg.consume(telemetry.AssembleTrace(id))
			}
		}
	}

	// Filtered neighbor queries under an explicit root span: the §4.1
	// fan-out path whose trace spans the aggregator and every remote
	// server it ships MatchBatch subqueries to. This is where the
	// serve-span coverage and multi-server evidence come from.
	vals := d.Vocab["prop01"]
	if len(vals) == 0 {
		return nil, fmt.Errorf("bench: trace-attribution: dataset has no prop01 vocabulary")
	}
	nq := opts.Ops / 4
	if nq < 64 {
		nq = 64
	}
	var (
		coverages   []float64
		multiServer int
		assembled   int
	)
	for i := 0; i < nq; i++ {
		id := ops[i%len(ops)].ID
		props := map[string]string{"prop01": vals[i%len(vals)]}
		root, ctx := telemetry.StartSpanCtx(context.Background(), "bench.filtered_neighbors")
		client.GetNeighborIDsCtx(ctx, id, zipg.WildcardType, props)
		root.End()
		tree := telemetry.AssembleTrace(root.Trace)
		if tree == nil {
			continue
		}
		assembled++
		seen[root.Trace] = true
		agg.consume(tree)
		servers := map[int]bool{}
		for _, r := range tree.Roots {
			collectServeStats(r, &coverages, servers)
		}
		if len(servers) >= 3 { // aggregator + at least two remote servers
			multiServer++
		}
	}

	r := &Result{
		Title: fmt.Sprintf("Trace attribution: per-phase latency by server, TAO mix + filtered neighbors (%d-server loopback cluster, %d traces)",
			numServers, len(seen)),
		Headers: []string{"where", "phase", "spans", "p50 µs", "p99 µs", "total ms", "share %"},
	}
	agg.rows(r)

	covMean, covMin, covOK := summarizeCoverage(coverages)
	r.Notes = append(r.Notes,
		"phases: queue (recv→handler), serialize/decode (gob), network (write→reply), logstore (log-pass reads/writes), succinct_walk (compressed-shard walks)",
		fmt.Sprintf("serve-span phase coverage (own phases + child spans vs span wall time): mean %.1f%%, min %.1f%%, ≥90%% for %.1f%% of %d server-side spans",
			100*covMean, 100*covMin, 100*covOK, len(coverages)),
		fmt.Sprintf("%d/%d filtered neighbor traces assembled into one tree spanning the aggregator plus ≥2 remote servers", multiServer, assembled),
		"network share is measured at the RPC client, so it includes the callee's processing time; the callee's serve span breaks that time down on its own row",
	)
	return r, nil
}

// phaseAggKey buckets phase durations by reporting location and phase
// name; server -1 is the external client (and the bench roots).
type phaseAggKey struct {
	server int
	phase  string
}

type phaseAgg struct {
	durs map[phaseAggKey][]float64 // µs
}

// consume accumulates every span's own phase timings, attributed to the
// server the span ran on.
func (a *phaseAgg) consume(tree *telemetry.TraceTree) {
	if tree == nil {
		return
	}
	var walk func(n *telemetry.TraceNode)
	walk = func(n *telemetry.TraceNode) {
		for _, p := range n.Span.Phases {
			k := phaseAggKey{server: n.Span.Server, phase: p.Name}
			a.durs[k] = append(a.durs[k], float64(p.Ns)/1e3)
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	for _, root := range tree.Roots {
		walk(root)
	}
}

// phaseOrder fixes the row order within one server: the wire phases in
// request order, then the storage phases.
var phaseOrder = map[string]int{
	"queue": 0, "serialize": 1, "network": 2, "decode": 3,
	"logstore": 4, "succinct_walk": 5,
}

// rows emits one table row per (server, phase), client first, phases in
// taxonomy order, with p50/p99 and each phase's share of all attributed
// time.
func (a *phaseAgg) rows(r *Result) {
	keys := make([]phaseAggKey, 0, len(a.durs))
	var grand float64
	for k, ds := range a.durs {
		keys = append(keys, k)
		for _, d := range ds {
			grand += d
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].server != keys[j].server {
			return keys[i].server < keys[j].server
		}
		oi, oj := phaseOrder[keys[i].phase], phaseOrder[keys[j].phase]
		if oi != oj {
			return oi < oj
		}
		return keys[i].phase < keys[j].phase
	})
	for _, k := range keys {
		ds := a.durs[k]
		var total float64
		for _, d := range ds {
			total += d
		}
		where := "client"
		if k.server >= 0 {
			where = fmt.Sprintf("server %d", k.server)
		}
		r.Rows = append(r.Rows, []string{
			where, k.phase, fmt.Sprint(len(ds)),
			fmt.Sprintf("%.1f", pctileF(ds, 0.50)),
			fmt.Sprintf("%.1f", pctileF(ds, 0.99)),
			fmt.Sprintf("%.2f", total/1e3),
			fmt.Sprintf("%.1f", 100*total/grand),
		})
	}
}

// collectServeStats walks a span tree recording, for every server-side
// rpc.serve span, how much of its wall time is explained by its own
// phases plus its child spans (which carry their own phases), and which
// servers the tree touched.
func collectServeStats(n *telemetry.TraceNode, coverages *[]float64, servers map[int]bool) {
	if strings.HasPrefix(n.Span.Op, "rpc.serve:") {
		if n.Span.Server >= 0 {
			servers[n.Span.Server] = true
		}
		if n.Span.Duration > 0 {
			var attributed time.Duration
			for _, p := range n.Span.Phases {
				attributed += time.Duration(p.Ns)
			}
			for _, c := range n.Children {
				attributed += c.Span.Duration
			}
			cov := float64(attributed) / float64(n.Span.Duration)
			if cov > 1 {
				cov = 1
			}
			*coverages = append(*coverages, cov)
		}
	}
	for _, c := range n.Children {
		collectServeStats(c, coverages, servers)
	}
}

// summarizeCoverage reduces per-span coverage ratios to mean, min and
// the fraction meeting the 90% bar.
func summarizeCoverage(covs []float64) (mean, min, fracOK float64) {
	if len(covs) == 0 {
		return 0, 0, 0
	}
	min = 1
	var sum float64
	var ok int
	for _, c := range covs {
		sum += c
		if c < min {
			min = c
		}
		if c >= 0.90 {
			ok++
		}
	}
	return sum / float64(len(covs)), min, float64(ok) / float64(len(covs))
}

// pctileF returns the q-quantile of xs (nearest-rank on a sorted copy).
func pctileF(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	i := int(q * float64(len(s)-1))
	return s[i]
}
