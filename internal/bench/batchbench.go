package bench

import (
	"fmt"

	"zipg"
	"zipg/internal/gen"
	"zipg/internal/graphapi"
	"zipg/internal/workloads"
)

// BatchBench measures the vectorized read path against the scalar loop
// it replaces, per batch size: obj_get through Graph.ObjGetBatch
// (locality-sorted node record sweep, shared Ψ decode cache) and
// assoc_range through Graph.AssocRangeBatch (index-located records,
// single-pass decode) versus one scalar call per item. Reported numbers
// are ns per item, so a row's speedup is the per-operation win at that
// batch size; batch size 1 shows the dispatch overhead of the batch
// entry points.
//
// Request IDs are drawn with the same Zipf access skew every other
// experiment uses (gen.Access; LinkBench's accesses are "skewed towards
// nodes with more neighbors", §5.2, and the aggregator's fan-out
// candidate lists repeat exactly those hub nodes). Skewed batches
// contain duplicates, which the batch path resolves once — that
// deduplication, plus the locality sort, is where batching pays.
func BatchBench(opts Options) (*Result, error) {
	opts = opts.withDefaults()
	d := gen.DatasetSpec{
		Name: "batch", Kind: gen.RealWorld,
		TargetBytes: 256 << 10, AvgDegree: 15, NumEdgeTypes: 5, Seed: 6001,
	}.Generate()
	g, err := zipg.Compress(zipg.GraphData{Nodes: d.Nodes, Edges: d.Edges}, zipg.Options{NumShards: 2})
	if err != nil {
		return nil, err
	}
	tao := workloads.TAO{S: g}

	r := &Result{
		Title:   "Vectorized batch reads vs scalar loops (ns per item)",
		Headers: []string{"op", "batch", "scalar-ns", "batch-ns", "speedup"},
		Notes: []string{
			"scalar = one API call per item; batch = one ObjGetBatch/AssocRangeBatch call per batch",
			"same request mix on both sides; 256 KiB real-world graph, 2 shards, default α",
			"IDs Zipf-skewed (s=1.5, the LinkBench §5.2 skew); duplicates in a batch resolve once",
		},
	}

	access := gen.NewAccess(3, d.NumNodes(), 1.5)
	rng := access.Rng()

	// Warm the lazily-built view caches (edge index, hot-header tables)
	// before timing anything, so the first measured row doesn't foot the
	// one-time bill.
	for w := 0; w < 512; w++ {
		id := access.Next()
		g.GetNodeProperty(id, nil)
		if _, err := tao.AssocRange(id, int64(w%5), 0, 10); err != nil {
			return nil, err
		}
	}

	const nBatches = 64
	for _, size := range []int{1, 8, 64, 256} {
		// Pre-generate identical request batches for both sides.
		idBatches := make([][]int64, nBatches)
		reqBatches := make([][]graphapi.AssocRangeReq, nBatches)
		for b := range idBatches {
			ids := make([]int64, size)
			reqs := make([]graphapi.AssocRangeReq, size)
			for k := range ids {
				ids[k] = access.Next()
				reqs[k] = graphapi.AssocRangeReq{
					ID: access.Next(), Type: int64(rng.Intn(5)),
					Idx: 0, Limit: 10,
				}
			}
			idBatches[b] = ids
			reqBatches[b] = reqs
		}

		i := 0
		objScalar := measure(func() {
			for _, id := range idBatches[i%nBatches] {
				g.GetNodeProperty(id, nil)
			}
			i++
		}) / float64(size)
		objBatch := measure(func() {
			g.ObjGetBatch(idBatches[i%nBatches])
			i++
		}) / float64(size)

		arScalar := measure(func() {
			for _, req := range reqBatches[i%nBatches] {
				if _, err := tao.AssocRange(req.ID, req.Type, req.Idx, req.Limit); err != nil {
					panic(err)
				}
			}
			i++
		}) / float64(size)
		arBatch := measure(func() {
			if _, err := g.AssocRangeBatch(reqBatches[i%nBatches]); err != nil {
				panic(err)
			}
			i++
		}) / float64(size)

		row := func(op string, scalar, batch float64) {
			r.Rows = append(r.Rows, []string{
				op, fmt.Sprint(size),
				fmt.Sprintf("%.0f", scalar), fmt.Sprintf("%.0f", batch),
				fmt.Sprintf("%.2fx", scalar/batch),
			})
		}
		row("obj-get", objScalar, objBatch)
		row("assoc-range", arScalar, arBatch)
	}
	return r, nil
}
