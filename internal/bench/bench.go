// Package bench regenerates every table and figure of the paper's
// evaluation (§5 and the appendices). Each experiment builds the systems
// under test over generated datasets (package gen), routes their storage
// through simulated media (package memsim), executes the pre-generated
// workloads (package workloads), and reports throughput against
// wall-clock time plus simulated I/O stall time.
//
// # The memory model
//
// The paper's single-server experiments ran on 244 GB of RAM against
// datasets of 20/250/636 GB — a RAM-to-smallest-dataset ratio of ≈12.2.
// We preserve exactly that ratio: every system's medium gets a budget of
// 12.2× the base dataset size, so whichever system's footprint exceeds
// it spills to (simulated) SSD, reproducing Table 5's who-fits-in-memory
// matrix and the throughput cliffs of Figures 6–8 at megabyte scale.
//
// Reported numbers are KOps/s against (wall + simulated stall) time.
// Absolute values are not comparable with the paper's EC2 hardware; the
// shapes — who wins, by what factor, where the crossover happens — are
// what EXPERIMENTS.md tracks.
package bench

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"zipg"
	"zipg/internal/baselines/kvstore"
	"zipg/internal/baselines/pointerstore"
	"zipg/internal/gen"
	"zipg/internal/graphapi"
	"zipg/internal/memsim"
)

// MemoryRatio is the server-RAM to base-dataset ratio (244 GB / 20 GB).
const MemoryRatio = 12.2

// Options configures an experiment run.
type Options struct {
	// BaseBytes is the size of the smallest dataset (Table 4's orkut);
	// the others scale 12.5x and 32x. Default 256 KiB (quick).
	BaseBytes int64
	// Ops is the number of operations per throughput measurement.
	// Default 2000.
	Ops int
	// Verbose prints progress while building.
	Verbose bool
}

func (o Options) withDefaults() Options {
	if o.BaseBytes <= 0 {
		o.BaseBytes = 256 << 10
	}
	if o.Ops <= 0 {
		o.Ops = 2000
	}
	return o
}

// SystemNames lists the compared systems in the paper's order.
var SystemNames = []string{"neo4j", "neo4j-tuned", "titan", "titan-c", "zipg"}

// System is one system under test with its simulated storage.
type System struct {
	Name  string
	Store graphapi.Store
	Med   *memsim.Medium
	Clock *memsim.Clock
}

// BuildSystem constructs one system over a dataset with the given memory
// budget (bytes; <0 unlimited).
func BuildSystem(name string, d *gen.Dataset, budget int64) (*System, error) {
	clock := &memsim.Clock{}
	med := memsim.NewMedium(clock, memsim.Config{Budget: budget})
	sys := &System{Name: name, Med: med, Clock: clock}
	var err error
	switch name {
	case "zipg":
		sys.Store, err = zipg.Compress(zipg.GraphData{Nodes: d.Nodes, Edges: d.Edges}, zipg.Options{
			NumShards:    4,
			SamplingRate: 32,
			Medium:       med,
		})
	case "neo4j":
		sys.Store, err = pointerstore.New(d.Nodes, d.Edges, pointerstore.Config{Medium: med})
	case "neo4j-tuned":
		// The tuned object cache shares the server's RAM: size it to a
		// fraction of the budget (~1 KiB per cached node record set).
		cacheNodes := 10000
		if budget >= 0 {
			cacheNodes = int(budget / 4096)
			if cacheNodes < 16 {
				cacheNodes = 16
			}
		}
		sys.Store, err = pointerstore.New(d.Nodes, d.Edges, pointerstore.Config{
			Medium: med, Tuned: true, CacheNodes: cacheNodes,
		})
	case "titan":
		sys.Store, err = kvstore.New(d.Nodes, d.Edges, kvstore.Config{Medium: med})
	case "titan-c":
		sys.Store, err = kvstore.New(d.Nodes, d.Edges, kvstore.Config{Medium: med, Compress: true})
	default:
		err = fmt.Errorf("bench: unknown system %q", name)
	}
	if err != nil {
		return nil, err
	}
	return sys, nil
}

// Throughput measures ops/sec for fn over n operations: wall time plus
// the medium's simulated stall time. A warm-up pass (the paper warms
// caches for 15 minutes) runs first.
func (s *System) Throughput(n int, fn func(i int)) float64 {
	return s.ThroughputUnderPressure(n, fn, nil)
}

// ThroughputUnderPressure is Throughput with background cache pressure:
// before each timed operation, pressure(i) runs with the medium in
// silent mode (its accesses load and evict pages but cost nothing).
//
// This is how per-component throughputs (Figures 6–8's right-hand
// panels) are measured: a component benchmarked in a vacuum would let
// the LRU specialize to that component's structures and nothing would
// ever spill, whereas the paper measured components on servers whose
// caches held the whole production working set.
func (s *System) ThroughputUnderPressure(n int, fn func(i int), pressure func(i int)) float64 {
	apply := func(i int) {
		if pressure != nil {
			s.Med.SetSilent(true)
			pressure(2 * i)
			pressure(2*i + 1)
			s.Med.SetSilent(false)
		}
		fn(i)
	}
	// Warm-up: one pass over a prefix.
	warm := n / 4
	if warm > 500 {
		warm = 500
	}
	for i := 0; i < warm; i++ {
		apply(i)
	}
	s.Med.ResetStats()
	s.Clock.Reset()
	var wall time.Duration
	for i := 0; i < n; i++ {
		if pressure != nil {
			// Pressure CPU time is not part of the measured operation.
			s.Med.SetSilent(true)
			pressure(2 * i)
			pressure(2*i + 1)
			s.Med.SetSilent(false)
		}
		opStart := time.Now()
		fn(i)
		wall += time.Since(opStart)
	}
	elapsed := wall + s.Clock.Elapsed()
	if elapsed <= 0 {
		elapsed = time.Nanosecond
	}
	return float64(n) / elapsed.Seconds()
}

// Result is one experiment's printable output.
type Result struct {
	Title   string
	Headers []string
	Rows    [][]string
	Notes   []string
}

// Format renders the result as an aligned text table.
func (r *Result) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "=== %s ===\n", r.Title)
	widths := make([]int, len(r.Headers))
	for i, h := range r.Headers {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	printRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteByte('\n')
	}
	printRow(r.Headers)
	for i := range widths {
		if i > 0 {
			sb.WriteString("  ")
		}
		sb.WriteString(strings.Repeat("-", widths[i]))
	}
	sb.WriteByte('\n')
	for _, row := range r.Rows {
		printRow(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&sb, "note: %s\n", n)
	}
	return sb.String()
}

// kops formats a throughput as thousands of operations per second.
func kops(v float64) string { return fmt.Sprintf("%.2f", v/1000) }

// ratio formats a footprint ratio.
func ratioStr(num, den int64) string { return fmt.Sprintf("%.2f", float64(num)/float64(den)) }

// datasetByName generates one of the six standard datasets.
func datasetByName(name string, base int64) (*gen.Dataset, error) {
	for _, spec := range gen.StandardSpecs(base) {
		if spec.Name == name {
			return spec.Generate(), nil
		}
	}
	return nil, fmt.Errorf("bench: unknown dataset %q", name)
}

// footprintOf returns a system's accounted storage footprint.
func footprintOf(s *System) int64 { return s.Med.Footprint() }

// Experiments maps experiment IDs to runners, for cmd/zipg-bench.
var Experiments = map[string]func(Options) (*Result, error){
	"table4": Table4,
	"fig5":   Fig5,
	"table5": Table5,
	"fig6":   Fig6,
	"fig7":   Fig7,
	"fig8":   Fig8,
	"fig9":   Fig9,
	"fig10":  Fig10,
	"fig11":  Fig11,
	"fig12":  Fig12,
	"fig13":  Fig13,
	"fig14":  Fig14,
	// Ablations of the design choices DESIGN.md calls out (no paper
	// figure; §3.1/§3.5/§4.1 state the trade-offs).
	"ablation-alpha":    AblationAlpha,
	"ablation-fanned":   AblationFanned,
	"ablation-logstore": AblationLogStore,
	"ablation-shards":   AblationShards,
	// End-to-end telemetry readout on a live loopback cluster (no paper
	// figure; validates the observability layer and §4.1's fan-out).
	"telemetry-cluster": TelemetryCluster,
	// Distributed-tracing readout: per-phase latency attribution by
	// server from assembled span trees on a live loopback cluster (no
	// paper figure; validates the tracer and the phase taxonomy).
	"trace-attribution": TraceAttribution,
	// Worker-pool sweep over multi-fragment search and multi-shard
	// builds (no paper figure; §3.4/§4.1's aggregator parallelism).
	"parallel-scaling": ParallelScaling,
	// Succinct access-kernel latencies vs the recorded pre-kernel
	// baseline (no paper figure; §3.1's extract/search primitives).
	"kernel-bench": KernelBench,
	// Vectorized batch reads vs their scalar loops across batch sizes
	// (no paper figure; the batch kernel contract in DESIGN.md).
	"batch-bench": BatchBench,
	// Pluggable integer codecs × α sweep plus the α auto-tuning demo
	// (no paper figure; the codec layer in DESIGN.md).
	"codec-bench": CodecBench,
	// Group-committed write path + online compaction under concurrent
	// writers (no paper figure; §3.5's write log and §4.1's GC, with
	// the stop-the-world pauses engineered out — see DESIGN.md).
	"ingest-bench": IngestBench,
	// Temporal engine: windowed scans with hot-header pruning, live
	// subscription delivery lag, temporal reachability (no paper
	// figure; the temporal layer in DESIGN.md).
	"temporal-bench": TemporalBench,
}

// ExperimentNames returns the runnable experiment IDs, sorted.
func ExperimentNames() []string {
	out := make([]string, 0, len(Experiments))
	for k := range Experiments {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
