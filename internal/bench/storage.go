package bench

import (
	"fmt"

	"zipg/internal/gen"
)

// Table4 reports the generated datasets' statistics (the scaled stand-in
// for the paper's Table 4).
func Table4(opts Options) (*Result, error) {
	opts = opts.withDefaults()
	r := &Result{
		Title:   "Table 4: datasets (scaled; paper ratios 1 : 12.5 : 32 preserved)",
		Headers: []string{"dataset", "kind", "#nodes", "#edges", "avg-degree", "raw-bytes"},
	}
	for _, spec := range gen.StandardSpecs(opts.BaseBytes) {
		d := spec.Generate()
		kind := "social/web (TAO props)"
		if spec.Kind == gen.LinkBench {
			kind = "linkbench"
		}
		r.Rows = append(r.Rows, []string{
			spec.Name, kind,
			fmt.Sprint(d.NumNodes()), fmt.Sprint(d.NumEdges()),
			fmt.Sprint(spec.AvgDegree), fmt.Sprint(d.RawBytes),
		})
	}
	r.Notes = append(r.Notes, "paper: orkut 3M/117M 20GB; twitter 41M/1.5B 250GB; uk 105M/3.7B 636GB; linkbench small/medium/large match those sizes")
	return r, nil
}

// Fig5 measures every system's storage footprint as a ratio of the raw
// input size across all six datasets (paper Figure 5: ZipG 1.8–4x
// smaller than Neo4j and Titan-uncompressed, comparable to
// Titan-Compressed; LinkBench compresses ~15% worse).
func Fig5(opts Options) (*Result, error) {
	opts = opts.withDefaults()
	r := &Result{
		Title:   "Figure 5: storage footprint / raw input size",
		Headers: append([]string{"dataset", "raw-bytes"}, SystemNames...),
	}
	for _, spec := range gen.StandardSpecs(opts.BaseBytes) {
		d := spec.Generate()
		row := []string{spec.Name, fmt.Sprint(d.RawBytes)}
		for _, name := range SystemNames {
			sys, err := BuildSystem(name, d, -1)
			if err != nil {
				return nil, err
			}
			row = append(row, ratioStr(footprintOf(sys), d.RawBytes))
		}
		r.Rows = append(r.Rows, row)
	}
	r.Notes = append(r.Notes,
		"paper: zipg 1.8-4x smaller than neo4j and titan (uncompressed); comparable to titan-compressed",
		"paper: linkbench datasets compress ~15% worse for zipg; neo4j/titan overheads smaller there (fewer indexes)")
	return r, nil
}

// Table5 reports which systems fit each dataset within the paper's
// memory ratio (244 GB server vs 20/250/636 GB datasets).
func Table5(opts Options) (*Result, error) {
	opts = opts.withDefaults()
	budget := int64(float64(opts.BaseBytes) * MemoryRatio)
	r := &Result{
		Title:   fmt.Sprintf("Table 5: fits in memory (budget = %.1fx base = %d bytes)", MemoryRatio, budget),
		Headers: append([]string{"dataset"}, SystemNames...),
	}
	for _, spec := range gen.StandardSpecs(opts.BaseBytes) {
		d := spec.Generate()
		row := []string{spec.Name}
		for _, name := range SystemNames {
			sys, err := BuildSystem(name, d, -1)
			if err != nil {
				return nil, err
			}
			if footprintOf(sys) <= budget {
				row = append(row, "yes")
			} else {
				row = append(row, "no")
			}
		}
		r.Rows = append(r.Rows, row)
	}
	r.Notes = append(r.Notes, "paper: orkut/lb-small fit everywhere; twitter/lb-medium only zipg and titan-c; uk/lb-large only zipg (titan-c borderline)")
	return r, nil
}
