package bench

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"zipg"
	"zipg/internal/graphapi"
	"zipg/internal/store"
	"zipg/internal/telemetry"
	"zipg/internal/workloads"
)

// TemporalBench exercises the temporal engine end to end:
//
//  1. Window sweep — edges are ingested in timestamp order through a
//     small LogStore threshold, so successive rollovers freeze
//     generations covering disjoint timestamp bands and every source
//     node's record fragments across them. Windowed scans over narrow,
//     mid and full windows then show the hot-header span pruning whole
//     fragments: the pruned fraction comes from the store's temporal
//     scan counters, and the acceptance bar is >=50% of fragment pieces
//     skipped on narrow windows.
//  2. Subscriber delivery lag — a firehose subscription rides along
//     the 8-writer LinkBench write mix of ingest-bench; a concurrent
//     consumer drains the ring and records publish-to-delivery lag per
//     event (p50/p99), then the per-partition sequence numbers are
//     checked gap-free.
//  3. Temporal reachability — PathInWindow over the fragmented store.
func TemporalBench(opts Options) (*Result, error) {
	opts = opts.withDefaults()

	// --- phase 1: window sweep over a time-fragmented store ---

	d, err := datasetByName("lb-small", opts.BaseBytes)
	if err != nil {
		return nil, err
	}
	g, err := zipg.Compress(zipg.GraphData{Nodes: d.Nodes},
		zipg.Options{NumShards: 2, SamplingRate: 32, LogStoreThreshold: opts.BaseBytes / 32})
	if err != nil {
		return nil, err
	}
	defer g.Close()

	// Time-ordered ingest: timestamps advance strictly, so each frozen
	// generation covers its own band — the regime where the hot-header
	// span is decisive (appended-in-time-order edges, e.g. activity
	// streams). Sources cycle so every record fragments across bands.
	const (
		srcNodes = 64
		perSrc   = 96
		etypes   = 2
	)
	tsBase := int64(1_500_000_000)
	ts := tsBase
	totalEdges := srcNodes * perSrc
	for i := 0; i < totalEdges; i++ {
		src := int64(i % srcNodes)
		e := graphapi.Edge{
			Src: src, Dst: int64((i*7 + 13) % d.NumNodes()),
			Type: int64(i % etypes), Timestamp: ts,
		}
		if err := g.AppendEdge(e); err != nil {
			return nil, err
		}
		ts += 1000
	}
	tsEnd := ts
	span := tsEnd - tsBase
	fragments := g.FragmentsOf(0)
	if opts.Verbose {
		fmt.Printf("temporal-bench: %d edges over %d sources, node 0 in %d fragments\n",
			totalEdges, srcNodes, fragments)
	}

	wasEnabled := telemetry.Enabled()
	telemetry.SetEnabled(true)
	defer telemetry.SetEnabled(wasEnabled)

	eng := g.Temporal()
	type sweep struct {
		name       string
		lo, hi     int64
		kops       float64
		prunedFrac float64
		edges      int
	}
	sweeps := []sweep{
		{name: "narrow (1/32 of range)", lo: tsEnd - span/32, hi: tsEnd},
		{name: "mid (1/4 of range)", lo: tsEnd - span/4, hi: tsEnd},
		{name: "full range", lo: tsBase, hi: tsEnd},
	}
	const rounds = 4
	for si := range sweeps {
		s := &sweeps[si]
		p0, pr0, _ := store.TemporalScanCounters()
		t0 := time.Now()
		n := 0
		for r := 0; r < rounds; r++ {
			for src := int64(0); src < srcNodes; src++ {
				for et := int64(0); et < etypes; et++ {
					s.edges += len(eng.AssocTimeRange(src, et, s.lo, s.hi, 0))
					n++
				}
			}
		}
		el := time.Since(t0)
		p1, pr1, _ := store.TemporalScanCounters()
		s.kops = float64(n) / el.Seconds()
		if p1 > p0 {
			s.prunedFrac = float64(pr1-pr0) / float64(p1-p0)
		}
	}

	// --- phase 2: subscriber delivery lag under the LinkBench write mix ---

	var writeMix workloads.Frequencies
	for _, k := range []workloads.OpKind{
		workloads.OpAssocAdd, workloads.OpObjUpdate, workloads.OpObjAdd,
		workloads.OpAssocDel, workloads.OpObjDel, workloads.OpAssocUpdate,
	} {
		writeMix[k] = workloads.LinkBenchMix[k]
	}
	const writers = 8
	writeOps := workloads.GenerateOps(d, workloads.MixConfig{Mix: writeMix, AccessSkew: 1.4, Seed: 4407}, opts.Ops*writers)

	g2, err := zipg.Compress(zipg.GraphData{Nodes: d.Nodes, Edges: d.Edges},
		zipg.Options{NumShards: 4, SamplingRate: 32, LogStoreThreshold: opts.BaseBytes / 16})
	if err != nil {
		return nil, err
	}
	defer g2.Close()

	// Firehose subscription sized for the run, so drops only reflect a
	// consumer that truly cannot keep up.
	sub := g2.Subscribe(zipg.SubscriptionFilter{}, len(writeOps)+64)
	defer sub.Close()

	var lags []time.Duration
	var delivered int
	gaps := 0
	lastSeq := map[int]uint64{}
	consumerDone := make(chan error, 1)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		for {
			evs, err := sub.Next(ctx, 512)
			if err != nil {
				consumerDone <- nil // canceled: writers finished, drained below
				return
			}
			if evs == nil {
				consumerDone <- nil
				return
			}
			now := time.Now().UnixNano()
			for _, ev := range evs {
				delivered++
				lags = append(lags, time.Duration(now-ev.At))
				if last, ok := lastSeq[ev.Part]; ok && ev.Seq != last+1 {
					gaps++
				}
				lastSeq[ev.Part] = ev.Seq
			}
		}
	}()

	errs := make([]error, writers)
	var wg sync.WaitGroup
	t0 := time.Now()
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(writeOps); i += writers {
				if _, err := workloads.Execute(g2, writeOps[i]); err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	writeElapsed := time.Since(t0)
	for _, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("temporal-bench: write mix: %w", err)
		}
	}
	// Let the consumer catch the tail, then stop it and drain the rest
	// synchronously (those events still count for lag + gap checks).
	time.Sleep(20 * time.Millisecond)
	cancel()
	<-consumerDone
	for _, ev := range sub.Poll(0) {
		delivered++
		now := time.Now().UnixNano()
		lags = append(lags, time.Duration(now-ev.At))
		if last, ok := lastSeq[ev.Part]; ok && ev.Seq != last+1 {
			gaps++
		}
		lastSeq[ev.Part] = ev.Seq
	}
	dropped := sub.Dropped()
	if gaps > 0 && dropped == 0 {
		return nil, fmt.Errorf("temporal-bench: %d sequence gaps with zero drops", gaps)
	}
	lagP50, lagP99 := percentile(lags, 50), percentile(lags, 99)

	// --- phase 3: temporal reachability on the fragmented store ---

	pathWindowLo := tsBase + span/4
	pathFound := 0
	const pathQueries = 64
	t0 = time.Now()
	for i := 0; i < pathQueries; i++ {
		src := int64(i % srcNodes)
		dst := int64((i*31 + 7) % d.NumNodes())
		if eng.PathInWindow(src, dst, pathWindowLo, tsEnd, 4).Found {
			pathFound++
		}
	}
	pathKops := float64(pathQueries) / time.Since(t0).Seconds()

	r := &Result{
		Title:   "Temporal bench: windowed scans, live subscriptions, temporal reachability",
		Headers: []string{"metric", "value", "detail"},
		Notes: []string{
			fmt.Sprintf("window sweep: %d sources x %d types x %d rounds per window; node 0 fragmented across %d pieces", srcNodes, etypes, rounds, fragments),
			"pruned = fragment pieces skipped whole via the hot-header [TsMin,TsMax] span (acceptance: >=50% on narrow windows)",
			fmt.Sprintf("subscriber: firehose ring under the %d-writer LinkBench write mix (%d ops)", writers, len(writeOps)),
			"lag = publish (group-commit batch) to consumer delivery; sequence gaps must be 0 when nothing was dropped",
		},
	}
	for _, s := range sweeps {
		r.Rows = append(r.Rows, []string{
			"window " + s.name,
			fmt.Sprintf("%s KOps", kops(s.kops)),
			fmt.Sprintf("pruned %.0f%% of pieces, %d edges returned", 100*s.prunedFrac, s.edges/rounds),
		})
	}
	r.Rows = append(r.Rows,
		[]string{"write KOps (8 writers)", kops(float64(len(writeOps)) / writeElapsed.Seconds()), fmt.Sprintf("%d events delivered", delivered)},
		[]string{"delivery lag p50", fmt.Sprintf("%.1fus", float64(lagP50.Nanoseconds())/1e3), "firehose subscriber"},
		[]string{"delivery lag p99", fmt.Sprintf("%.1fus", float64(lagP99.Nanoseconds())/1e3), "firehose subscriber"},
		[]string{"events dropped", fmt.Sprint(dropped), "drop-oldest backpressure"},
		[]string{"sequence gaps", fmt.Sprint(gaps), "per-partition monotone seq check"},
		[]string{"path-in-window KOps", kops(pathKops), fmt.Sprintf("%d/%d found (maxHops 4, 3/4 window)", pathFound, pathQueries)},
	)
	return r, nil
}

// percentile returns the p-th percentile latency of the sample set.
func percentile(lat []time.Duration, p int) time.Duration {
	if len(lat) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), lat...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	i := len(sorted) * p / 100
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}
