package bench

import (
	"fmt"
	"math/rand"
	"time"

	"zipg"
	"zipg/internal/bitutil"
	"zipg/internal/gen"
	"zipg/internal/succinct"
	"zipg/internal/workloads"
)

// kernelBaselines are the seed-tree measurements of the same operations,
// taken with `go test -bench` on the commit preceding the access-kernel
// rework (recorded in results/kernel-bench.txt; hardware-specific, so
// the speedup column is only meaningful when the experiment runs on the
// machine that produced the baseline — rerun both otherwise). Zero means
// the operation had no pre-kernel counterpart.
var kernelBaselines = map[string]float64{
	"monotone-get":      20.39,
	"monotone-searchge": 272.8,
	"monotone-scan":     20.2, // per element
	"extract-64B":       11133,
	"search-count":      10254,
	"obj-get":           198938,
	"assoc-range":       91985,
	"get-node-ids":      206004,
}

// measure reports ns/op for f over enough iterations to smooth timer
// noise: one warmup call, then batches until ≥25ms of accumulated time.
func measure(f func()) float64 {
	f()
	var total time.Duration
	iters := 0
	batch := 1
	for total < 25*time.Millisecond {
		start := time.Now()
		for i := 0; i < batch; i++ {
			f()
		}
		total += time.Since(start)
		iters += batch
		if batch < 1<<16 {
			batch *= 2
		}
	}
	return float64(total.Nanoseconds()) / float64(iters)
}

// KernelBench measures the succinct access kernels end to end: the
// monotone-vector primitives under Ψ, the extract/search primitives over
// a compressed store, and the store-level queries they carry
// (obj_get, assoc_range, get_node_ids). The workload shapes and input
// sizes mirror the repo's go-test benchmarks so the rows are directly
// comparable with the recorded pre-kernel baselines.
func KernelBench(opts Options) (*Result, error) {
	opts = opts.withDefaults()

	// --- bitutil: Ψ-shaped monotone data (runs of +1, rare big jumps).
	rng := rand.New(rand.NewSource(42))
	vals := make([]uint64, 1<<16)
	for i := 1; i < len(vals); i++ {
		step := uint64(1)
		if rng.Intn(64) == 0 {
			step = uint64(rng.Intn(1 << 20))
		}
		vals[i] = vals[i-1] + step
	}
	mv := bitutil.NewMonotoneVector(vals)
	idx := make([]int, 1024)
	for i := range idx {
		idx[i] = rng.Intn(len(vals))
	}
	var sink uint64
	i := 0
	monoGet := measure(func() {
		sink += mv.Get(idx[i%len(idx)])
		i++
	})
	monoSearch := measure(func() {
		target := vals[idx[i%len(idx)]]
		sink += uint64(mv.SearchGE(0, mv.Len(), target))
		i++
	})
	scanN := 1 << 12
	monoScan := measure(func() {
		c := mv.Cursor()
		for k := 0; k < scanN; k++ {
			sink += c.Next()
		}
	}) / float64(scanN)

	// --- succinct: compressible text at the benchmark size.
	text := make([]byte, 0, 1<<18)
	words := []string{"alpha", "beta", "gamma", "delta", "epsilon", "zeta", "graph", "store", "query", "edge"}
	wr := rand.New(rand.NewSource(1))
	for len(text) < 1<<18 {
		text = append(text, words[wr.Intn(len(words))]...)
		text = append(text, ' ')
	}
	s := succinct.Build(text[:1<<18], succinct.Options{})
	offs := make([]int, 1024)
	or := rand.New(rand.NewSource(2))
	for k := range offs {
		offs[k] = or.Intn(s.InputLen() - 64)
	}
	buf := make([]byte, 0, 64)
	extract := measure(func() {
		buf = s.ExtractAppend(buf[:0], offs[i%len(offs)], 64)
		i++
	})
	pats := [][]byte{[]byte("alpha "), []byte("gamma"), []byte("store q"), []byte("zeta")}
	searchCount := measure(func() {
		s.Count(pats[i%len(pats)])
		i++
	})

	// --- store-level queries over the micro graph.
	d := gen.DatasetSpec{
		Name: "kernel", Kind: gen.RealWorld,
		TargetBytes: 256 << 10, AvgDegree: 15, NumEdgeTypes: 5, Seed: 5150,
	}.Generate()
	g, err := zipg.Compress(zipg.GraphData{Nodes: d.Nodes, Edges: d.Edges}, zipg.Options{NumShards: 2})
	if err != nil {
		return nil, err
	}
	tao := workloads.TAO{S: g}
	objGet := measure(func() {
		g.GetNodeProperty(int64(i%d.NumNodes()), nil)
		i++
	})
	assocRange := measure(func() {
		if _, err := tao.AssocRange(int64(i%d.NumNodes()), int64(i%5), 0, 10); err != nil {
			panic(err)
		}
		i++
	})
	pool := d.Vocab["prop00"]
	getNodeIDs := measure(func() {
		g.GetNodeIDs(map[string]string{"prop00": pool[i%len(pool)]})
		i++
	})
	_ = sink

	r := &Result{
		Title:   "Access kernels: per-operation latency vs the pre-kernel baseline",
		Headers: []string{"kernel", "before-ns", "after-ns", "speedup"},
		Notes: []string{
			"before = seed-tree go-test benchmarks recorded in results/kernel-bench.txt (same machine);",
			"rerun both sides when comparing on different hardware",
			"monotone-scan is ns per element; extract-64B uses a reused (zero-alloc) destination buffer",
		},
	}
	row := func(name string, after float64) {
		before := kernelBaselines[name]
		speedup := "-"
		if before > 0 && after > 0 {
			speedup = fmt.Sprintf("%.2fx", before/after)
		}
		r.Rows = append(r.Rows, []string{name, fmt.Sprintf("%.1f", before), fmt.Sprintf("%.1f", after), speedup})
	}
	row("monotone-get", monoGet)
	row("monotone-searchge", monoSearch)
	row("monotone-scan", monoScan)
	row("extract-64B", extract)
	row("search-count", searchCount)
	row("obj-get", objGet)
	row("assoc-range", assocRange)
	row("get-node-ids", getNodeIDs)
	return r, nil
}
