package bench

import (
	"fmt"
	"runtime"
	"time"

	"zipg"
	"zipg/internal/gen"
	"zipg/internal/parallel"
	"zipg/internal/workloads"
)

// ParallelScaling sweeps the shared worker pool over the fig8-style
// graph-search workload (no paper figure; measures the intra-store
// parallelism of the aggregator, §3.4/§4.1). Two operations are timed at
// every pool size: multi-fragment get_node_ids on a heavily fragmented
// store (≥8 fragments: primaries + frozen LogStore generations + the
// live log) and a fresh multi-shard Compress. Results are identical at
// every size — only wall-clock changes.
func ParallelScaling(opts Options) (*Result, error) {
	opts = opts.withDefaults()
	d := gen.DatasetSpec{
		Name:         "pscale",
		Kind:         gen.RealWorld,
		TargetBytes:  opts.BaseBytes * 2,
		AvgDegree:    15,
		NumEdgeTypes: 5,
		Seed:         2601,
	}.Generate()

	// Fragment the store: a small LogStore threshold plus a write stream
	// forces repeated rollovers, each freezing a new compressed fragment.
	g, err := zipg.Compress(zipg.GraphData{Nodes: d.Nodes, Edges: d.Edges}, zipg.Options{
		NumShards:         4,
		SamplingRate:      32,
		LogStoreThreshold: opts.BaseBytes / 16,
	})
	if err != nil {
		return nil, err
	}
	nextID := int64(d.NumNodes())
	for i := 0; g.Store().Rollovers() < 4; i++ {
		src := d.Nodes[i%len(d.Nodes)]
		if err := g.AppendNode(nextID, src.Props); err != nil {
			return nil, err
		}
		nextID++
	}

	// The searched workload: GS3 (get_node_ids over two properties) —
	// the query class that touches every fragment.
	ops := workloads.FilterGSKind(workloads.GenerateGSOps(d, 77, opts.Ops*5), workloads.KindGS3)
	if len(ops) > opts.Ops {
		ops = ops[:opts.Ops]
	}

	counts := []int{1, 2, 4, runtime.NumCPU()}
	seen := map[int]bool{}
	var sweep []int
	for _, w := range counts {
		if w > 0 && !seen[w] {
			seen[w] = true
			sweep = append(sweep, w)
		}
	}

	r := &Result{
		Title:   "Parallel scaling: shared-pool speedup for multi-fragment search and multi-shard compression",
		Headers: []string{"workers", "findnodes-KOps", "findnodes-speedup", "compress-ms", "compress-speedup"},
		Notes: []string{
			fmt.Sprintf("store: %d fragments after %d rollovers; GOMAXPROCS=%d, NumCPU=%d",
				g.Store().NumFragments(), g.Store().Rollovers(), runtime.GOMAXPROCS(0), runtime.NumCPU()),
			"speedups are relative to the 1-worker row; expect ~1.0x when GOMAXPROCS=1",
		},
	}

	prev := parallel.SetWorkers(1)
	defer parallel.SetWorkers(prev)
	var searchBase, buildBase time.Duration
	for _, w := range sweep {
		parallel.SetWorkers(w)

		start := time.Now()
		for _, op := range ops {
			workloads.ExecuteGS(g, op, false)
		}
		searchWall := time.Since(start)

		start = time.Now()
		if _, err := zipg.Compress(zipg.GraphData{Nodes: d.Nodes, Edges: d.Edges}, zipg.Options{
			NumShards:    8,
			SamplingRate: 32,
		}); err != nil {
			return nil, err
		}
		buildWall := time.Since(start)

		if w == 1 {
			searchBase, buildBase = searchWall, buildWall
		}
		r.Rows = append(r.Rows, []string{
			fmt.Sprint(w),
			kops(float64(len(ops)) / searchWall.Seconds()),
			fmt.Sprintf("%.2fx", float64(searchBase)/float64(searchWall)),
			fmt.Sprintf("%.1f", float64(buildWall)/float64(time.Millisecond)),
			fmt.Sprintf("%.2fx", float64(buildBase)/float64(buildWall)),
		})
	}
	return r, nil
}
