package bench

import (
	"fmt"

	"zipg"
	"zipg/internal/cluster"
	"zipg/internal/telemetry"
	"zipg/internal/workloads"
)

// TelemetryCluster drives the TAO mix through a real in-process cluster
// (loopback TCP, function shipping and all) and reports what the
// telemetry layer saw: per-RPC-method call counts, aggregator fan-out,
// the local/remote subquery split of §4.1, and the LogStore hit rate of
// the write path. Unlike Fig9's attribution model this exercises the
// actual rpc and cluster code paths, so it doubles as an end-to-end
// check that the instrumentation is wired through every layer.
func TelemetryCluster(opts Options) (*Result, error) {
	opts = opts.withDefaults()
	const numServers = 4
	d, err := datasetByName("orkut", opts.BaseBytes)
	if err != nil {
		return nil, err
	}
	nodeSchema, edgeSchema, err := zipg.DeriveSchemas(zipg.GraphData{Nodes: d.Nodes, Edges: d.Edges})
	if err != nil {
		return nil, err
	}
	c, err := cluster.Launch(d.Nodes, d.Edges, nodeSchema, edgeSchema, cluster.LaunchConfig{
		NumServers:      numServers,
		ShardsPerServer: 2,
	})
	if err != nil {
		return nil, err
	}
	defer c.Close()
	client, err := c.Client()
	if err != nil {
		return nil, err
	}
	defer client.Close()

	mix := workloads.MixConfig{Mix: workloads.TAOMix, AccessSkew: 0, Seed: 1001}
	ops := workloads.GenerateOps(d, mix, opts.Ops)

	wasOn := telemetry.SetEnabled(true)
	defer telemetry.SetEnabled(wasOn)
	before := telemetry.TakeSnapshot()
	for _, op := range ops {
		if _, err := workloads.Execute(client, op); err != nil {
			return nil, fmt.Errorf("bench: telemetry-cluster: %w", err)
		}
	}
	// TAO's assoc ops read edge records directly; the §4.1 fan-out path
	// only runs for property-filtered neighbor queries (Figure 4), so
	// drive a batch of those explicitly.
	if vals := d.Vocab["prop01"]; len(vals) > 0 {
		for i := 0; i < len(ops)/4; i++ {
			client.GetNeighborIDs(ops[i].ID, zipg.WildcardType, map[string]string{"prop01": vals[i%len(vals)]})
		}
	}
	delta := telemetry.Delta(before, telemetry.TakeSnapshot())

	r := &Result{
		Title:   fmt.Sprintf("Telemetry: TAO mix on a live %d-server cluster (%d ops)", numServers, len(ops)),
		Headers: []string{"metric", "value"},
		Notes: []string{
			"fan-out counts remote aggregators contacted per filtered neighbor query (§4.1 function shipping)",
			"run a zipg-server with -admin to scrape the same series live from /metrics",
		},
	}
	addRow := func(metric, value string) {
		r.Rows = append(r.Rows, []string{metric, value})
	}
	addRow("rpc calls (all methods)", fmt.Sprintf("%.0f", sumPrefix(delta, "zipg_rpc_calls_total{")))
	for _, line := range perMethodNotes(delta) {
		addRow("  "+line, "")
	}
	addRow("rpc frame KB (read+written)", fmt.Sprintf("%.1f", sumPrefix(delta, "zipg_rpc_frame_bytes_total")/1024))
	addRow("neighbor queries", fmt.Sprintf("%.0f", delta["zipg_cluster_neighbor_queries_total"]))
	if m, ok := delta["zipg_cluster_fanout.mean"]; ok {
		addRow("avg fan-out per neighbor query", fmt.Sprintf("%.2f", m))
	}
	local := delta[`zipg_cluster_subqueries_total{locality="local"}`]
	remote := delta[`zipg_cluster_subqueries_total{locality="remote"}`]
	addRow("subqueries local/remote", fmt.Sprintf("%.0f / %.0f", local, remote))
	hits := delta[`zipg_logstore_reads_total{result="hit"}`]
	misses := delta[`zipg_logstore_reads_total{result="miss"}`]
	if hits+misses > 0 {
		addRow("logstore hit rate", fmt.Sprintf("%.2f", hits/(hits+misses)))
	}
	addRow("store ops (all servers)", fmt.Sprintf("%.0f", sumPrefix(delta, "zipg_store_ops_total")))
	addRow("succinct KB extracted", fmt.Sprintf("%.1f", delta["zipg_store_succinct_bytes_total"]/1024))
	return r, nil
}
