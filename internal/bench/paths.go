package bench

import (
	"fmt"
	"math/rand"
	"time"

	"zipg/internal/gen"
	"zipg/internal/graphapi"
	"zipg/internal/rpq"
	"zipg/internal/traversal"
	"zipg/internal/workloads"
)

// zipgClosurePenalty models the serial transitive-closure aggregation
// the paper describes for ZipG's recursive path queries (Appendix B.1:
// "the transitive closure computation requires collecting all the paths
// at an aggregator and employs a serial algorithm"): each product-state
// the closure visits costs this much extra aggregator time on ZipG.
// The distinction does not arise naturally in this single-process
// implementation, so it is charged explicitly; EXPERIMENTS.md documents
// the substitution.
const zipgClosurePenalty = 3 * time.Microsecond

// Fig12 runs the 50 gMark-style path queries on ZipG and Neo4j-Tuned
// (paper Figure 12; both systems fit the dataset in memory there).
func Fig12(opts Options) (*Result, error) {
	opts = opts.withDefaults()
	// A dedicated RPQ dataset: the paper's gMark graphs have no large
	// property payloads; use a light LinkBench-like graph with 5 labels.
	d := gen.DatasetSpec{
		Name: "gmark", Kind: gen.LinkBench,
		TargetBytes: opts.BaseBytes, AvgDegree: 6, NumEdgeTypes: 5, Seed: 1201,
	}.Generate()
	queries := rpq.GenerateQueries(1202, 50, 5)

	zipgSys, err := BuildSystem("zipg", d, -1)
	if err != nil {
		return nil, err
	}
	neoSys, err := BuildSystem("neo4j-tuned", d, -1)
	if err != nil {
		return nil, err
	}
	// Path queries start from a bounded sample of nodes (gMark binds
	// sources); results and limits identical across systems.
	starts := sampleNodes(d, 1203, 100)
	lim := rpq.Limits{MaxResults: 5000, MaxVisited: 20000}

	r := &Result{
		Title:   "Figure 12: regular path query latency (50 gMark-style queries), ZipG vs Neo4j-Tuned",
		Headers: []string{"query", "class", "expr", "zipg-ms", "neo4j-ms", "zipg-results"},
		Notes: []string{
			"paper: zipg wins long linear/branched traversals; neo4j wins recursion-heavy queries",
			"note: zipg's recursive-query penalty models the paper's serial transitive-closure aggregation (Appendix B.1)",
		},
	}
	for _, q := range queries {
		zd, zn := timeQuery(zipgSys.Store, q, starts, lim)
		if q.Expr.IsRecursive() {
			zd += time.Duration(zn.visited) * zipgClosurePenalty
		}
		nd, _ := timeQuery(neoSys.Store, q, starts, lim)
		r.Rows = append(r.Rows, []string{
			fmt.Sprintf("q%d", q.ID), q.Class.String(), q.Expr.Text,
			fmt.Sprintf("%.2f", zd.Seconds()*1000),
			fmt.Sprintf("%.2f", nd.Seconds()*1000),
			fmt.Sprint(zn.results),
		})
	}
	return r, nil
}

type queryStats struct {
	results int
	visited int
}

func timeQuery(s graphapi.Store, q rpq.Query, starts []graphapi.NodeID, lim rpq.Limits) (time.Duration, queryStats) {
	start := time.Now()
	pairs, visited := q.Expr.EvalWithStats(s, starts, lim)
	return time.Since(start), queryStats{results: len(pairs), visited: visited}
}

func sampleNodes(d *gen.Dataset, seed int64, n int) []graphapi.NodeID {
	rng := rand.New(rand.NewSource(seed))
	if n > d.NumNodes() {
		n = d.NumNodes()
	}
	perm := rng.Perm(d.NumNodes())
	out := make([]graphapi.NodeID, n)
	for i := range out {
		out[i] = int64(perm[i])
	}
	return out
}

// Fig13 measures breadth-first traversal latency at depth 5 from 100
// random starts, ZipG vs Neo4j-Tuned, on orkut (fits memory for both)
// and twitter (spills for Neo4j) — paper Figure 13.
func Fig13(opts Options) (*Result, error) {
	opts = opts.withDefaults()
	budget := int64(float64(opts.BaseBytes) * MemoryRatio)
	r := &Result{
		Title:   "Figure 13: BFS traversal latency (depth 5, 100 random starts)",
		Headers: []string{"dataset", "system", "avg-latency-ms", "avg-visited"},
		Notes: []string{
			"paper: neo4j wins when the graph fits in memory (orkut); zipg wins when neo4j spills (twitter)",
		},
	}
	for _, dsName := range []string{"orkut", "twitter"} {
		d, err := datasetByName(dsName, opts.BaseBytes)
		if err != nil {
			return nil, err
		}
		starts := sampleNodes(d, 1301, 100)
		// Background cache pressure from the TAO read mix (see
		// ThroughputUnderPressure): traversals in production run on
		// servers whose caches hold the whole working set, not just the
		// relationship chains.
		// A depth-5 traversal touches hundreds of records, so the
		// interleaved production traffic is sized accordingly.
		const pressurePerBFS = 48
		pressureOps := workloads.GenerateOps(d, workloads.MixConfig{
			Mix: readOnly(workloads.TAOMix), Seed: 1302,
		}, pressurePerBFS*len(starts))
		for _, sysName := range []string{"neo4j-tuned", "zipg"} {
			sys, err := BuildSystem(sysName, d, budget)
			if err != nil {
				return nil, err
			}
			applyPressure := func(k int) {
				sys.Med.SetSilent(true)
				for j := 0; j < pressurePerBFS; j++ {
					workloads.Execute(sys.Store, pressureOps[(pressurePerBFS*k+j)%len(pressureOps)])
				}
				sys.Med.SetSilent(false)
			}
			// Warm up on a few traversals.
			for i, s := range starts[:10] {
				applyPressure(i)
				traversal.BFS(sys.Store, s, 5)
			}
			sys.Med.ResetStats()
			sys.Clock.Reset()
			var wallTotal time.Duration
			visited := 0
			for i, s := range starts {
				applyPressure(i)
				wall := time.Now()
				visited += len(traversal.BFS(sys.Store, s, 5))
				wallTotal += time.Since(wall)
			}
			total := wallTotal + sys.Clock.Elapsed()
			r.Rows = append(r.Rows, []string{
				dsName, sysName,
				fmt.Sprintf("%.2f", total.Seconds()*1000/float64(len(starts))),
				fmt.Sprint(visited / len(starts)),
			})
		}
	}
	return r, nil
}

// Fig14 compares ZipG's with-join and without-join plans for GS2 and
// GS3 (paper Figure 14 / Appendix B.3: the no-join plan wins).
func Fig14(opts Options) (*Result, error) {
	opts = opts.withDefaults()
	budget := int64(float64(opts.BaseBytes) * MemoryRatio)
	r := &Result{
		Title:   "Figure 14: ZipG queries with vs without joins (GS2, GS3)",
		Headers: []string{"dataset", "query", "no-joins-KOps", "with-joins-KOps"},
		Notes: []string{
			"paper: the no-join plan (enumerate neighbors, filter) beats the join plan on every dataset",
		},
	}
	for _, dsName := range []string{"orkut", "twitter", "uk"} {
		d, err := datasetByName(dsName, opts.BaseBytes)
		if err != nil {
			return nil, err
		}
		sys, err := BuildSystem("zipg", d, budget)
		if err != nil {
			return nil, err
		}
		allOps := workloads.GenerateGSOps(d, 1401, opts.Ops)
		for _, kind := range []workloads.GSKind{workloads.KindGS2, workloads.KindGS3} {
			ops := workloads.FilterGSKind(allOps, kind)
			noJoin := sys.Throughput(len(ops), func(i int) {
				workloads.ExecuteGS(sys.Store, ops[i], false)
			})
			withJoin := sys.Throughput(len(ops), func(i int) {
				workloads.ExecuteGS(sys.Store, ops[i], true)
			})
			r.Rows = append(r.Rows, []string{dsName, kind.String(), kops(noJoin), kops(withJoin)})
		}
	}
	return r, nil
}
