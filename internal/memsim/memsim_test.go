package memsim

import (
	"sync"
	"testing"
	"time"
)

func TestUnlimitedNeverMisses(t *testing.T) {
	m := Unlimited()
	r := m.Register(1 << 20)
	for i := int64(0); i < 100; i++ {
		m.Access(r, i*DefaultPageSize, 1)
	}
	s := m.Stats()
	if s.Misses != 0 {
		t.Errorf("unlimited medium missed %d times", s.Misses)
	}
	if s.Accesses != 100 {
		t.Errorf("accesses = %d, want 100", s.Accesses)
	}
	if m.Clock().Elapsed() != 0 {
		t.Errorf("clock advanced %v on unlimited medium", m.Clock().Elapsed())
	}
}

func TestColdThenWarm(t *testing.T) {
	clock := &Clock{}
	m := NewMedium(clock, Config{Budget: 10 * DefaultPageSize})
	r := m.Register(10 * DefaultPageSize)
	// First pass over 10 pages: all cold.
	for i := int64(0); i < 10; i++ {
		m.Access(r, i*DefaultPageSize, 1)
	}
	if s := m.Stats(); s.Misses != 10 {
		t.Fatalf("cold pass misses = %d, want 10", s.Misses)
	}
	if got, want := clock.Elapsed(), 10*DefaultMissLatency; got != want {
		t.Fatalf("clock = %v, want %v", got, want)
	}
	// Second pass: all warm.
	m.ResetStats()
	for i := int64(0); i < 10; i++ {
		m.Access(r, i*DefaultPageSize, 1)
	}
	if s := m.Stats(); s.Misses != 0 {
		t.Fatalf("warm pass misses = %d, want 0", s.Misses)
	}
}

func TestLRUEviction(t *testing.T) {
	m := NewMedium(nil, Config{Budget: 2 * DefaultPageSize})
	r := m.Register(3 * DefaultPageSize)
	m.Access(r, 0, 1)                 // page 0 cold
	m.Access(r, DefaultPageSize, 1)   // page 1 cold
	m.Access(r, 0, 1)                 // page 0 warm, now MRU
	m.Access(r, 2*DefaultPageSize, 1) // page 2 cold, evicts page 1
	m.ResetStats()
	m.Access(r, 0, 1) // still cached
	if s := m.Stats(); s.Misses != 0 {
		t.Errorf("page 0 should be cached, missed %d", s.Misses)
	}
	m.Access(r, DefaultPageSize, 1) // was evicted
	if s := m.Stats(); s.Misses != 1 {
		t.Errorf("page 1 should have been evicted, misses = %d", s.Misses)
	}
}

func TestMultiPageAccess(t *testing.T) {
	m := NewMedium(nil, Config{Budget: 100 * DefaultPageSize})
	r := m.Register(100 * DefaultPageSize)
	// A read spanning pages 3..6 (offset mid-page).
	m.Access(r, 3*DefaultPageSize+100, 3*DefaultPageSize)
	if s := m.Stats(); s.Accesses != 4 || s.Misses != 4 {
		t.Errorf("stats = %+v, want 4 accesses/4 misses", s)
	}
}

func TestRegionsAreDistinct(t *testing.T) {
	m := NewMedium(nil, Config{Budget: 10 * DefaultPageSize})
	a := m.Register(DefaultPageSize)
	b := m.Register(DefaultPageSize)
	m.Access(a, 0, 1)
	m.Access(b, 0, 1)
	if s := m.Stats(); s.Misses != 2 {
		t.Errorf("distinct regions share pages: misses = %d, want 2", s.Misses)
	}
}

func TestFootprintAccounting(t *testing.T) {
	m := Unlimited()
	m.Register(1000)
	m.Register(500)
	m.Grow(250)
	if got := m.Footprint(); got != 1750 {
		t.Errorf("footprint = %d, want 1750", got)
	}
}

func TestSetBudgetShrinkEvicts(t *testing.T) {
	m := NewMedium(nil, Config{Budget: 4 * DefaultPageSize})
	r := m.Register(4 * DefaultPageSize)
	for i := int64(0); i < 4; i++ {
		m.Access(r, i*DefaultPageSize, 1)
	}
	m.SetBudget(DefaultPageSize)
	m.ResetStats()
	// Only the MRU page (3) survives.
	m.Access(r, 3*DefaultPageSize, 1)
	if s := m.Stats(); s.Misses != 0 {
		t.Errorf("MRU page evicted unexpectedly")
	}
	m.Access(r, 0, 1)
	if s := m.Stats(); s.Misses != 1 {
		t.Errorf("LRU page should have been evicted")
	}
}

func TestClock(t *testing.T) {
	var c Clock
	c.Advance(time.Second)
	c.Advance(time.Millisecond)
	if got := c.Elapsed(); got != time.Second+time.Millisecond {
		t.Errorf("elapsed = %v", got)
	}
	c.Reset()
	if c.Elapsed() != 0 {
		t.Errorf("reset failed")
	}
}

func TestConcurrentAccess(t *testing.T) {
	m := NewMedium(nil, Config{Budget: 8 * DefaultPageSize})
	r := m.Register(64 * DefaultPageSize)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				m.Access(r, int64((g*1000+i)%64)*DefaultPageSize, 128)
			}
		}(g)
	}
	wg.Wait()
	if s := m.Stats(); s.Accesses != 8000 {
		t.Errorf("accesses = %d, want 8000", s.Accesses)
	}
}

func TestSilentMode(t *testing.T) {
	clock := &Clock{}
	m := NewMedium(clock, Config{Budget: 4 * DefaultPageSize})
	r := m.Register(16 * DefaultPageSize)
	m.SetSilent(true)
	m.Access(r, 0, 1)
	m.Access(r, DefaultPageSize, 1)
	m.ChargeCPU(time.Second)
	m.SetSilent(false)
	if s := m.Stats(); s.Accesses != 0 || s.Misses != 0 {
		t.Errorf("silent accesses counted: %+v", s)
	}
	if clock.Elapsed() != 0 {
		t.Errorf("silent charges advanced clock: %v", clock.Elapsed())
	}
	// But the pages did load: touching them now is a hit.
	m.Access(r, 0, 1)
	if s := m.Stats(); s.Misses != 0 {
		t.Errorf("silently loaded page missed: %+v", s)
	}
	// And silent loads evict: fill past budget silently, check eviction.
	m.SetSilent(true)
	for i := int64(0); i < 8; i++ {
		m.Access(r, i*DefaultPageSize, 1)
	}
	m.SetSilent(false)
	m.ResetStats()
	m.Access(r, 0, 1) // evicted by the silent flood
	if s := m.Stats(); s.Misses != 1 {
		t.Errorf("silent flood did not evict: %+v", s)
	}
}

func TestChargeCPU(t *testing.T) {
	clock := &Clock{}
	m := NewMedium(clock, Config{Budget: -1})
	m.ChargeCPU(3 * time.Millisecond)
	if clock.Elapsed() != 3*time.Millisecond {
		t.Errorf("clock = %v", clock.Elapsed())
	}
}

func TestProbe(t *testing.T) {
	m := NewMedium(nil, Config{Budget: 2 * DefaultPageSize})
	r := m.Register(8 * DefaultPageSize)
	if m.Probe(r, 0) {
		t.Error("cold page probed hot")
	}
	m.Access(r, 0, 1)
	if !m.Probe(r, 0) {
		t.Error("hot page probed cold")
	}
	if !Unlimited().Probe(0, 0) {
		t.Error("unlimited medium must probe hot")
	}
}

func TestChargeDirect(t *testing.T) {
	clock := &Clock{}
	m := NewMedium(clock, Config{Budget: 2 * DefaultPageSize})
	m.ChargeDirect(1)
	if clock.Elapsed() != DefaultMissLatency {
		t.Errorf("one page direct = %v", clock.Elapsed())
	}
	m.ChargeDirect(3 * DefaultPageSize)
	if clock.Elapsed() != 4*DefaultMissLatency {
		t.Errorf("multi page direct = %v", clock.Elapsed())
	}
	// Direct reads do not populate the cache.
	r := m.Register(DefaultPageSize)
	if m.Probe(r, 0) {
		t.Error("direct read cached a page")
	}
}
