// Package memsim simulates a two-level storage hierarchy (DRAM + SSD).
//
// The paper's headline experiments depend on datasets outgrowing a 244 GB
// server: once a store's footprint exceeds memory, queries spill to SSD
// and throughput collapses in proportion to how much of the working set
// is cold. We cannot provision half-terabyte datasets here, so every
// store in this repository routes its logical byte accesses through a
// Medium: an LRU page cache with a configurable byte budget in front of a
// fixed-latency backing device. Cache hits are free; misses advance a
// virtual clock by the device latency. Benchmarks report throughput
// against wall time plus this virtual I/O time, which reproduces the
// paper's in-memory/out-of-memory crossovers at megabyte scale.
//
// A Medium with an unlimited budget is a near-no-op, so correctness tests
// run at full speed.
package memsim

import (
	"sync"
	"sync/atomic"
	"time"
)

// DefaultPageSize is the cache page size in bytes. 4 KiB matches both the
// OS page size the paper's mmap-based persistence relies on and typical
// SSD read granularity.
const DefaultPageSize = 4096

// DefaultMissLatency approximates one random 4 KiB read from a local SSD
// (the paper's instances used local SSDs, ~100 µs per random read).
const DefaultMissLatency = 100 * time.Microsecond

// Clock accumulates simulated I/O time. It is shared by all media of one
// system-under-test so a benchmark can charge total simulated stall time
// against the operations it executed.
type Clock struct {
	ns atomic.Int64
}

// Advance adds d to the simulated elapsed time.
func (c *Clock) Advance(d time.Duration) { c.ns.Add(int64(d)) }

// Elapsed returns the accumulated simulated time.
func (c *Clock) Elapsed() time.Duration { return time.Duration(c.ns.Load()) }

// Reset zeroes the clock.
func (c *Clock) Reset() { c.ns.Store(0) }

// Stats holds access counters for a Medium.
type Stats struct {
	Accesses uint64 // page touches
	Misses   uint64 // page touches that went to the backing device
}

// Medium models the storage a single store's data lives on. Regions of
// the logical address space are registered up front (one per data
// structure); accesses name a region, an offset and a length. Pages are
// cached in an LRU bounded by Budget; a miss charges MissLatency to the
// clock.
//
// Medium is safe for concurrent use.
type Medium struct {
	clock       *Clock
	pageSize    int64
	missLatency time.Duration

	mu        sync.Mutex
	budget    int64 // bytes; <0 means unlimited (never miss)
	nextID    uint32
	footprint int64

	// LRU over pages. Key packs (region, pageIndex).
	cache    map[pageKey]*pageNode
	head     *pageNode // most recently used
	tail     *pageNode // least recently used
	cached   int64     // bytes currently cached
	accesses uint64
	misses   uint64
	// silent makes accesses update cache state without counting stats or
	// advancing the clock — benchmarks use it to apply realistic cache
	// pressure from untimed background operations.
	silent bool
}

type pageKey struct {
	region uint32
	page   int64
}

type pageNode struct {
	key        pageKey
	prev, next *pageNode
}

// Config parameterizes a Medium.
type Config struct {
	// Budget is the DRAM budget in bytes. Negative means unlimited.
	Budget int64
	// PageSize defaults to DefaultPageSize.
	PageSize int64
	// MissLatency defaults to DefaultMissLatency.
	MissLatency time.Duration
}

// NewMedium creates a Medium charging misses to clock. A nil clock gets a
// private one.
func NewMedium(clock *Clock, cfg Config) *Medium {
	if clock == nil {
		clock = &Clock{}
	}
	if cfg.PageSize <= 0 {
		cfg.PageSize = DefaultPageSize
	}
	if cfg.MissLatency <= 0 {
		cfg.MissLatency = DefaultMissLatency
	}
	return &Medium{
		clock:       clock,
		pageSize:    cfg.PageSize,
		missLatency: cfg.MissLatency,
		budget:      cfg.Budget,
		cache:       make(map[pageKey]*pageNode),
	}
}

// Unlimited returns a medium that never misses; use in correctness tests.
func Unlimited() *Medium {
	return NewMedium(nil, Config{Budget: -1})
}

// Clock returns the clock this medium charges.
func (m *Medium) Clock() *Clock { return m.clock }

// Register reserves a new region of the given size and returns its ID.
// The size contributes to the medium's total footprint (what Figure 5
// measures).
func (m *Medium) Register(size int64) uint32 {
	m.mu.Lock()
	defer m.mu.Unlock()
	id := m.nextID
	m.nextID++
	m.footprint += size
	return id
}

// Grow adds size bytes to a region's accounted footprint (used by
// append-only structures such as the LogStore and update pointers).
func (m *Medium) Grow(size int64) {
	m.mu.Lock()
	m.footprint += size
	m.mu.Unlock()
}

// Footprint returns the total registered bytes.
func (m *Medium) Footprint() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.footprint
}

// SetBudget changes the DRAM budget. Shrinking evicts immediately.
func (m *Medium) SetBudget(budget int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.budget = budget
	if budget >= 0 {
		m.evictToBudgetLocked()
	}
}

// Budget returns the current DRAM budget (<0 = unlimited).
func (m *Medium) Budget() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.budget
}

// Access touches n logical bytes of region starting at off, charging
// misses for uncached pages. n<=0 is treated as a single-byte touch.
func (m *Medium) Access(region uint32, off, n int64) {
	if n <= 0 {
		n = 1
	}
	first := off / m.pageSize
	last := (off + n - 1) / m.pageSize
	var misses int
	m.mu.Lock()
	if m.budget < 0 {
		// Unlimited: count accesses only; never miss.
		if !m.silent {
			m.accesses += uint64(last - first + 1)
		}
		m.mu.Unlock()
		return
	}
	for p := first; p <= last; p++ {
		if !m.silent {
			m.accesses++
		}
		k := pageKey{region, p}
		if node, ok := m.cache[k]; ok {
			m.moveToFrontLocked(node)
			continue
		}
		if !m.silent {
			m.misses++
			misses++
		}
		node := &pageNode{key: k}
		m.cache[k] = node
		m.pushFrontLocked(node)
		m.cached += m.pageSize
		m.evictToBudgetLocked()
	}
	m.mu.Unlock()
	if misses > 0 {
		m.clock.Advance(time.Duration(misses) * m.missLatency)
	}
}

// SetSilent toggles silent mode: accesses keep mutating the cache (pages
// load and evict) but stats and the clock stay untouched.
func (m *Medium) SetSilent(silent bool) {
	m.mu.Lock()
	m.silent = silent
	m.mu.Unlock()
}

// ChargeCPU advances the clock by a modeled CPU cost (per-record or
// per-request constants in the baselines). Like Access, it is a no-op in
// silent mode so background cache pressure costs nothing.
func (m *Medium) ChargeCPU(d time.Duration) {
	m.mu.Lock()
	silent := m.silent
	m.mu.Unlock()
	if !silent {
		m.clock.Advance(d)
	}
}

// Probe reports whether the page containing (region, off) is currently
// cached, without touching LRU state or stats. On an unlimited medium it
// always reports true. Stores use it to pick between a hot in-memory
// path and a cold direct-I/O path.
func (m *Medium) Probe(region uint32, off int64) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.budget < 0 {
		return true
	}
	_, ok := m.cache[pageKey{region, off / m.pageSize}]
	return ok
}

// ChargeDirect models a positioned read of n contiguous bytes straight
// from the backing device (direct I/O, bypassing the cache): the clock
// advances one miss latency per page-sized chunk and nothing is cached.
func (m *Medium) ChargeDirect(n int64) {
	if n <= 0 {
		n = 1
	}
	pages := (n + m.pageSize - 1) / m.pageSize
	m.mu.Lock()
	if m.budget < 0 {
		// Unlimited media never pay I/O.
		m.accesses += uint64(pages)
		m.mu.Unlock()
		return
	}
	m.accesses += uint64(pages)
	m.misses += uint64(pages)
	m.mu.Unlock()
	m.clock.Advance(time.Duration(pages) * m.missLatency)
}

// Stats returns access counters.
func (m *Medium) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return Stats{Accesses: m.accesses, Misses: m.misses}
}

// ResetStats zeroes access counters (the cache contents are kept, so a
// warmed cache stays warm — mirroring the paper's 15-minute warm-up).
func (m *Medium) ResetStats() {
	m.mu.Lock()
	m.accesses, m.misses = 0, 0
	m.mu.Unlock()
}

func (m *Medium) pushFrontLocked(n *pageNode) {
	n.prev = nil
	n.next = m.head
	if m.head != nil {
		m.head.prev = n
	}
	m.head = n
	if m.tail == nil {
		m.tail = n
	}
}

func (m *Medium) moveToFrontLocked(n *pageNode) {
	if m.head == n {
		return
	}
	// Unlink.
	if n.prev != nil {
		n.prev.next = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	}
	if m.tail == n {
		m.tail = n.prev
	}
	m.pushFrontLocked(n)
}

func (m *Medium) evictToBudgetLocked() {
	for m.cached > m.budget && m.tail != nil {
		victim := m.tail
		m.tail = victim.prev
		if m.tail != nil {
			m.tail.next = nil
		} else {
			m.head = nil
		}
		delete(m.cache, victim.key)
		m.cached -= m.pageSize
	}
}
