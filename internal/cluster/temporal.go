package cluster

import (
	"context"
	"sync"

	"zipg/internal/graphapi"
	"zipg/internal/layout"
	"zipg/internal/rpc"
	"zipg/internal/telemetry"
	"zipg/internal/temporal"
)

// Distributed temporal queries (function shipping, §4.1 applied to the
// temporal engine). Windowed range/count queries touch one node's data,
// so they route to the owner and run on its local engine. Temporal
// reachability runs its BFS at the source's owner: each hop's frontier
// is split by owning server, local nodes expand on the local engine and
// every remote owner gets ONE WindowNbrs batch for its share — the same
// per-owner shipping shape as neighbor queries. Deleted nodes owned by
// remote servers may transiently enter a frontier (their liveness is
// only visible at their owner) but expand to nothing there, so they are
// inert dead-ends and the answer matches the single-machine engine.

// --- wire types ---

type windowArgs struct {
	ID     graphapi.NodeID
	EType  graphapi.EdgeType
	Lo, Hi int64
	Limit  int
}

type windowEdgesReply struct {
	Edges []edgeDataReply
}

type windowCountReply struct {
	N int
}

type windowNbrsArgs struct {
	IDs    []graphapi.NodeID
	Lo, Hi int64
}

type windowNbrsReply struct {
	// Nbrs is index-aligned with the request's IDs.
	Nbrs [][]graphapi.NodeID
}

type pathArgs struct {
	Src, Dst graphapi.NodeID
	Lo, Hi   int64
	MaxHops  int
}

type pathReply struct {
	Found bool
	Hops  int
	Path  []graphapi.NodeID
}

// Temporal returns the server's temporal engine (the local subscribe
// surface; zipg-server wires it to the admin stream endpoint).
func (s *Server) Temporal() *temporal.Engine { return s.temp }

func (s *Server) registerTemporal() {
	s.rpc.Handle("TemporalRange", func(ctx context.Context, blob []byte) (any, error) {
		var a windowArgs
		if err := rpc.DecodeArgsCtx(ctx, blob, &a); err != nil {
			return nil, err
		}
		defer telemetry.PhaseFromContext(ctx, "succinct_walk")()
		edges := s.temp.AssocTimeRange(a.ID, a.EType, a.Lo, a.Hi, a.Limit)
		reply := windowEdgesReply{Edges: make([]edgeDataReply, len(edges))}
		for i, e := range edges {
			reply.Edges[i] = edgeDataReply{Dst: e.Dst, Ts: e.Timestamp, Props: e.Props}
		}
		return reply, nil
	})
	s.rpc.Handle("TemporalCount", func(ctx context.Context, blob []byte) (any, error) {
		var a windowArgs
		if err := rpc.DecodeArgsCtx(ctx, blob, &a); err != nil {
			return nil, err
		}
		defer telemetry.PhaseFromContext(ctx, "succinct_walk")()
		return windowCountReply{N: s.temp.AssocCountInWindow(a.ID, a.EType, a.Lo, a.Hi)}, nil
	})
	s.rpc.Handle("WindowNbrs", func(ctx context.Context, blob []byte) (any, error) {
		var a windowNbrsArgs
		if err := rpc.DecodeArgsCtx(ctx, blob, &a); err != nil {
			return nil, err
		}
		defer telemetry.PhaseFromContext(ctx, "succinct_walk")()
		reply := windowNbrsReply{Nbrs: make([][]graphapi.NodeID, len(a.IDs))}
		for i, id := range a.IDs {
			nbrs, _ := s.store.NeighborsInWindow(id, a.Lo, a.Hi)
			reply.Nbrs[i] = nbrs
		}
		return reply, nil
	})
	s.rpc.Handle("PathInWindow", func(ctx context.Context, blob []byte) (any, error) {
		var a pathArgs
		if err := rpc.DecodeArgsCtx(ctx, blob, &a); err != nil {
			return nil, err
		}
		res, err := s.pathInWindowCtx(ctx, a)
		if err != nil {
			return nil, err
		}
		return pathReply{Found: res.Found, Hops: res.Hops, Path: res.Path}, nil
	})
}

// pathInWindowCtx runs the distributed temporal BFS at this server (the
// source's owner acts as the aggregator). The destination's liveness is
// checked at its owner up front; each hop ships one frontier batch per
// remote owner while the local share expands on this engine.
func (s *Server) pathInWindowCtx(ctx context.Context, a pathArgs) (temporal.PathResult, error) {
	temporal.RecordPathQuery()
	tLo, tHi := graphapi.TimeBounds(a.Lo, a.Hi)
	if !s.store.HasNode(a.Src) {
		return temporal.PathResult{}, nil
	}
	if alive, err := s.hasNodeAt(ctx, a.Dst); err != nil {
		return temporal.PathResult{}, err
	} else if !alive {
		return temporal.PathResult{}, nil
	}
	if a.Src == a.Dst {
		return temporal.PathResult{Found: true, Hops: 0, Path: []graphapi.NodeID{a.Src}}, nil
	}
	var expandErr error
	expand := func(frontier []layout.NodeID) [][]layout.NodeID {
		out, err := s.expandWindowHop(ctx, frontier, tLo, tHi)
		if err != nil && expandErr == nil {
			expandErr = err
			return make([][]layout.NodeID, len(frontier))
		}
		return out
	}
	res := temporal.BFSInWindow(a.Src, a.Dst, a.MaxHops, expand)
	if expandErr != nil {
		return temporal.PathResult{}, expandErr
	}
	return res, nil
}

// hasNodeAt resolves node liveness at its owner (locally when owned
// here) via the existing NodeProps surface.
func (s *Server) hasNodeAt(ctx context.Context, id graphapi.NodeID) (bool, error) {
	owner := OwnerOf(id, s.cfg.NumServers)
	if owner == s.cfg.ID {
		return s.store.HasNode(id), nil
	}
	peer, err := s.peer(owner)
	if err != nil {
		return false, err
	}
	var reply nodePropsReply
	if err := peer.CallCtx(ctx, "NodeProps", nodePropsArgs{ID: id}, &reply); err != nil {
		return false, err
	}
	return reply.OK, nil
}

// expandWindowHop returns each frontier node's in-window neighbors,
// index-aligned. Remote owners each get one batched WindowNbrs call, in
// flight while the local share runs.
func (s *Server) expandWindowHop(ctx context.Context, frontier []layout.NodeID, tLo, tHi int64) ([][]layout.NodeID, error) {
	out := make([][]layout.NodeID, len(frontier))
	perOwner := make(map[int][]int) // owner -> frontier indexes
	for i, id := range frontier {
		owner := OwnerOf(id, s.cfg.NumServers)
		perOwner[owner] = append(perOwner[owner], i)
	}
	var wg sync.WaitGroup
	errCh := make(chan error, len(perOwner))
	for owner, idxs := range perOwner {
		if owner == s.cfg.ID {
			continue
		}
		wg.Add(1)
		go func(owner int, idxs []int) {
			defer wg.Done()
			peer, err := s.peer(owner)
			if err != nil {
				errCh <- err
				return
			}
			ids := make([]graphapi.NodeID, len(idxs))
			for j, fi := range idxs {
				ids[j] = frontier[fi]
			}
			var reply windowNbrsReply
			if err := peer.CallCtx(ctx, "WindowNbrs", windowNbrsArgs{IDs: ids, Lo: tLo, Hi: tHi}, &reply); err != nil {
				errCh <- err
				return
			}
			for j, fi := range idxs {
				out[fi] = reply.Nbrs[j] // disjoint indexes: no lock needed
			}
		}(owner, idxs)
	}
	for _, fi := range perOwner[s.cfg.ID] {
		nbrs, _ := s.store.NeighborsInWindow(frontier[fi], tLo, tHi)
		out[fi] = nbrs
	}
	wg.Wait()
	select {
	case err := <-errCh:
		return nil, err
	default:
	}
	return out, nil
}

// --- client surface ---

// AssocTimeRange queries the in-window edges of (src, etype) at the
// owning server.
func (c *Client) AssocTimeRange(src graphapi.NodeID, etype graphapi.EdgeType, tLo, tHi int64, limit int) []layout.EdgeData {
	return c.AssocTimeRangeCtx(context.Background(), src, etype, tLo, tHi, limit)
}

// AssocTimeRangeCtx is AssocTimeRange under a trace context.
func (c *Client) AssocTimeRangeCtx(ctx context.Context, src graphapi.NodeID, etype graphapi.EdgeType, tLo, tHi int64, limit int) []layout.EdgeData {
	sp, ctx := telemetry.StartSpanCtx(ctx, "client.assoc_time_range")
	defer sp.End()
	conn, err := c.owner(src)
	if err != nil {
		sp.SetError(err)
		return nil
	}
	var reply windowEdgesReply
	if err := conn.CallCtx(ctx, "TemporalRange", windowArgs{ID: src, EType: etype, Lo: tLo, Hi: tHi, Limit: limit}, &reply); err != nil {
		sp.SetError(err)
		return nil
	}
	if len(reply.Edges) == 0 {
		return nil
	}
	out := make([]layout.EdgeData, len(reply.Edges))
	for i, e := range reply.Edges {
		out[i] = layout.EdgeData{Dst: e.Dst, Timestamp: e.Ts, Props: e.Props}
	}
	return out
}

// AssocCountInWindow counts the in-window edges of (src, etype) at the
// owning server.
func (c *Client) AssocCountInWindow(src graphapi.NodeID, etype graphapi.EdgeType, tLo, tHi int64) int {
	sp, ctx := telemetry.StartSpanCtx(context.Background(), "client.assoc_count_in_window")
	defer sp.End()
	conn, err := c.owner(src)
	if err != nil {
		sp.SetError(err)
		return 0
	}
	var reply windowCountReply
	if err := conn.CallCtx(ctx, "TemporalCount", windowArgs{ID: src, EType: etype, Lo: tLo, Hi: tHi}, &reply); err != nil {
		sp.SetError(err)
		return 0
	}
	return reply.N
}

// PathInWindow asks the source's owner to run the distributed temporal
// BFS and returns its result.
func (c *Client) PathInWindow(src, dst graphapi.NodeID, tLo, tHi int64, maxHops int) temporal.PathResult {
	sp, ctx := telemetry.StartSpanCtx(context.Background(), "client.path_in_window")
	defer sp.End()
	conn, err := c.owner(src)
	if err != nil {
		sp.SetError(err)
		return temporal.PathResult{}
	}
	var reply pathReply
	if err := conn.CallCtx(ctx, "PathInWindow", pathArgs{Src: src, Dst: dst, Lo: tLo, Hi: tHi, MaxHops: maxHops}, &reply); err != nil {
		sp.SetError(err)
		return temporal.PathResult{}
	}
	return temporal.PathResult{Found: reply.Found, Hops: reply.Hops, Path: reply.Path}
}
