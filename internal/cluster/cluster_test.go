package cluster

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"zipg/internal/graphapi"
	"zipg/internal/layout"
	"zipg/internal/refgraph"
)

func testGraph(t testing.TB, nNodes, nEdges int) ([]layout.Node, []layout.Edge, *layout.PropertySchema, *layout.PropertySchema) {
	t.Helper()
	ns, err := layout.NewPropertySchema([]string{"city", "name"}, 64)
	if err != nil {
		t.Fatal(err)
	}
	es, err := layout.NewPropertySchema([]string{"w"}, 64)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(41))
	cities := []string{"Ithaca", "Berkeley", "Chicago"}
	nodes := make([]layout.Node, nNodes)
	for i := range nodes {
		nodes[i] = layout.Node{ID: int64(i), Props: map[string]string{
			"city": cities[i%3],
			"name": fmt.Sprintf("user%d", i),
		}}
	}
	edges := make([]layout.Edge, nEdges)
	for i := range edges {
		edges[i] = layout.Edge{
			Src:       int64(rng.Intn(nNodes)),
			Dst:       int64(rng.Intn(nNodes)),
			Type:      int64(rng.Intn(3)),
			Timestamp: int64(rng.Intn(1000)),
			Props:     map[string]string{"w": fmt.Sprint(rng.Intn(9))},
		}
	}
	return nodes, edges, ns, es
}

func launchTestCluster(t testing.TB, nodes []layout.Node, edges []layout.Edge, ns, es *layout.PropertySchema, servers int) (*Cluster, *Client) {
	t.Helper()
	c, err := Launch(nodes, edges, ns, es, LaunchConfig{
		NumServers:        servers,
		ShardsPerServer:   2,
		SamplingRate:      8,
		LogStoreThreshold: 64 << 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	client, err := c.Client()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(client.Close)
	return c, client
}

func TestOwnerOfStable(t *testing.T) {
	for id := int64(0); id < 100; id++ {
		o := OwnerOf(id, 4)
		if o < 0 || o >= 4 {
			t.Fatalf("owner out of range: %d", o)
		}
		if o != OwnerOf(id, 4) {
			t.Fatal("owner not deterministic")
		}
	}
}

func TestClusterAgreesWithReference(t *testing.T) {
	nodes, edges, ns, es := testGraph(t, 40, 250)
	_, client := launchTestCluster(t, nodes, edges, ns, es, 3)
	ref := refgraph.New(nodes, edges)
	rng := rand.New(rand.NewSource(42))

	for trial := 0; trial < 60; trial++ {
		id := int64(rng.Intn(45))
		etype := int64(rng.Intn(4)) - 1

		// Node properties.
		want, wantOK := ref.GetNodeProperty(id, nil)
		got, gotOK := client.GetNodeProperty(id, nil)
		if gotOK != wantOK || (wantOK && !reflect.DeepEqual(got, want)) {
			t.Fatalf("GetNodeProperty(%d) = %v,%v want %v,%v", id, got, gotOK, want, wantOK)
		}

		// Neighbors with remote property checks (function shipping).
		filter := map[string]string{"city": "Ithaca"}
		if g, w := client.GetNeighborIDs(id, etype, filter), ref.GetNeighborIDs(id, etype, filter); !reflect.DeepEqual(g, w) {
			t.Fatalf("Neighbors(%d,%d,filter) = %v want %v", id, etype, g, w)
		}
		if g, w := client.GetNeighborIDs(id, etype, nil), ref.GetNeighborIDs(id, etype, nil); !reflect.DeepEqual(g, w) {
			t.Fatalf("Neighbors(%d,%d) = %v want %v", id, etype, g, w)
		}

		// Edge records.
		if etype >= 0 {
			wantRec, wantOK := ref.GetEdgeRecord(id, etype)
			gotRec, gotOK := client.GetEdgeRecord(id, etype)
			if gotOK != wantOK {
				t.Fatalf("GetEdgeRecord(%d,%d) ok=%v want %v", id, etype, gotOK, wantOK)
			}
			if gotOK {
				if gotRec.Count() != wantRec.Count() {
					t.Fatalf("count %d want %d", gotRec.Count(), wantRec.Count())
				}
				lo := int64(rng.Intn(1000))
				gb, ge := gotRec.Range(lo, lo+200)
				wb, we := wantRec.Range(lo, lo+200)
				if gb != wb || ge != we {
					t.Fatalf("range [%d,%d) want [%d,%d)", gb, ge, wb, we)
				}
				if wantRec.Count() > 0 {
					i := rng.Intn(wantRec.Count())
					gd, err := gotRec.Data(i)
					if err != nil {
						t.Fatal(err)
					}
					wd, _ := wantRec.Data(i)
					if gd.Timestamp != wd.Timestamp {
						t.Fatalf("Data(%d).ts = %d want %d", i, gd.Timestamp, wd.Timestamp)
					}
				}
				if !reflect.DeepEqual(gotRec.Destinations(), wantRec.Destinations()) {
					// Timestamp ties may permute order; compare as multisets.
					g := append([]int64(nil), gotRec.Destinations()...)
					w := append([]int64(nil), wantRec.Destinations()...)
					sortIDs(g)
					sortIDs(w)
					if !reflect.DeepEqual(g, w) {
						t.Fatalf("destinations %v want %v", g, w)
					}
				}
			}
		}
	}

	// Cross-server search aggregation.
	for _, city := range []string{"Ithaca", "Berkeley", "Chicago"} {
		props := map[string]string{"city": city}
		if g, w := client.GetNodeIDs(props), ref.GetNodeIDs(props); !reflect.DeepEqual(g, w) {
			t.Fatalf("GetNodeIDs(%s) = %v want %v", city, g, w)
		}
	}
}

func TestClusterWrites(t *testing.T) {
	nodes, edges, ns, es := testGraph(t, 20, 80)
	_, client := launchTestCluster(t, nodes, edges, ns, es, 3)
	ref := refgraph.New(nodes, edges)

	both := func(f func(s graphapi.Store) error) {
		t.Helper()
		if err := f(ref); err != nil {
			t.Fatal(err)
		}
		if err := f(client); err != nil {
			t.Fatal(err)
		}
	}
	// New node on some server.
	both(func(s graphapi.Store) error {
		return s.AppendNode(100, map[string]string{"city": "Ithaca", "name": "new"})
	})
	// Edge crossing servers.
	both(func(s graphapi.Store) error {
		return s.AppendEdge(graphapi.Edge{Src: 100, Dst: 3, Type: 0, Timestamp: 5})
	})
	// Update, delete.
	both(func(s graphapi.Store) error {
		return s.AppendNode(3, map[string]string{"city": "Berkeley", "name": "moved"})
	})
	both(func(s graphapi.Store) error { return s.DeleteNode(7) })

	wantN, _ := ref.DeleteEdges(100, 0, 3)
	gotN, err := client.DeleteEdges(100, 0, 3)
	if err != nil || gotN != wantN {
		t.Fatalf("DeleteEdges = %d,%v want %d", gotN, err, wantN)
	}

	for _, id := range []int64{100, 3, 7, 1} {
		want, wantOK := ref.GetNodeProperty(id, nil)
		got, gotOK := client.GetNodeProperty(id, nil)
		if gotOK != wantOK || (wantOK && !reflect.DeepEqual(got, want)) {
			t.Fatalf("after writes, node %d: %v,%v want %v,%v", id, got, gotOK, want, wantOK)
		}
	}
	if g, w := client.GetNeighborIDs(100, 0, nil), ref.GetNeighborIDs(100, 0, nil); !reflect.DeepEqual(g, w) {
		t.Fatalf("neighbors after delete: %v want %v", g, w)
	}
}

func TestClusterSingleServerDegenerate(t *testing.T) {
	nodes, edges, ns, es := testGraph(t, 10, 30)
	_, client := launchTestCluster(t, nodes, edges, ns, es, 1)
	ref := refgraph.New(nodes, edges)
	for id := int64(0); id < 10; id++ {
		want, _ := ref.GetNodeProperty(id, nil)
		got, ok := client.GetNodeProperty(id, nil)
		if !ok || !reflect.DeepEqual(got, want) {
			t.Fatalf("node %d: %v want %v", id, got, want)
		}
	}
}

func sortIDs(ids []int64) {
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
}

func TestTwoHopNeighborsMultiLevelShipping(t *testing.T) {
	nodes, edges, ns, es := testGraph(t, 30, 150)
	_, client := launchTestCluster(t, nodes, edges, ns, es, 3)
	ref := refgraph.New(nodes, edges)

	// Reference two-hop: expand twice, filter the second hop.
	twoHopRef := func(id int64, etype int64, props map[string]string) []int64 {
		union := map[int64]bool{}
		for _, n := range ref.GetNeighborIDs(id, etype, nil) {
			for _, m := range ref.GetNeighborIDs(n, etype, props) {
				union[m] = true
			}
		}
		var out []int64
		for n := range union {
			out = append(out, n)
		}
		sortIDs(out)
		return out
	}
	for _, id := range []int64{0, 3, 7, 11} {
		for _, etype := range []int64{-1, 0, 1} {
			for _, props := range []map[string]string{nil, {"city": "Ithaca"}} {
				want := twoHopRef(id, etype, props)
				got := client.TwoHopNeighbors(id, etype, props)
				if len(got) == 0 && len(want) == 0 {
					continue
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("TwoHop(%d,%d,%v) = %v want %v", id, etype, props, got, want)
				}
			}
		}
	}
}
