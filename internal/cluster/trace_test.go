package cluster

import (
	"context"
	"sync"
	"testing"

	"zipg/internal/graphapi"
	"zipg/internal/telemetry"
)

// traceTestCluster launches a 3-server loopback cluster with telemetry
// on and every query traced, restoring global telemetry state after.
func traceTestCluster(t *testing.T) *Client {
	t.Helper()
	prevEnabled := telemetry.SetEnabled(true)
	t.Cleanup(func() { telemetry.SetEnabled(prevEnabled) })
	prevSampling := telemetry.SetSpanSampling(1)
	t.Cleanup(func() { telemetry.SetSpanSampling(prevSampling) })
	nodes, edges, ns, es := testGraph(t, 40, 250)
	_, client := launchTestCluster(t, nodes, edges, ns, es, 3)
	return client
}

// collectSpans flattens an assembled trace tree.
func collectSpans(n *telemetry.TraceNode, out *[]*telemetry.TraceNode) {
	*out = append(*out, n)
	for _, c := range n.Children {
		collectSpans(c, out)
	}
}

// TestTracePropagationAcrossFanOut runs a filtered neighbor query — the
// Figure 4 function-shipping fan-out — under an explicit trace root and
// asserts the assembled tree: one trace ID spans the aggregator and at
// least two remote servers' MatchBatch serve spans, every remote span
// parents under the rpc.call that shipped it, and each span's phase
// durations fit inside its own duration.
func TestTracePropagationAcrossFanOut(t *testing.T) {
	client := traceTestCluster(t)
	filter := map[string]string{"city": "Ithaca"}

	// Find a node whose neighbor check fans out to ≥2 remote servers;
	// with 40 nodes and 250 random edges over 3 servers nearly every
	// well-connected node qualifies.
	for id := int64(0); id < 40; id++ {
		telemetry.ResetSpans()
		root, ctx := telemetry.StartSpanCtx(context.Background(), "test.query")
		if root == nil {
			t.Fatal("sampling=1 must trace the root")
		}
		client.GetNeighborIDsCtx(ctx, id, graphapi.WildcardType, filter)
		root.End()

		tree := telemetry.AssembleTrace(root.Trace)
		if tree == nil {
			t.Fatalf("trace %s not assembled", root.Trace)
		}
		if len(tree.Roots) != 1 {
			t.Fatalf("trace %s has %d roots, want 1 (all spans must link up)", root.Trace, len(tree.Roots))
		}
		var all []*telemetry.TraceNode
		collectSpans(tree.Roots[0], &all)

		servers := map[int]bool{}
		for _, n := range all {
			if n.Span.Trace != root.Trace {
				t.Fatalf("span %s carries trace %s, want %s", n.Span.Op, n.Span.Trace, root.Trace)
			}
			if pt := n.Span.PhaseTotal(); pt > n.Span.Duration {
				t.Errorf("span %s: phase total %s exceeds duration %s", n.Span.Op, pt, n.Span.Duration)
			}
			if n.Span.Op == "rpc.serve:MatchBatch" {
				servers[n.Span.Server] = true
			}
			for _, c := range n.Children {
				if c.Span.ParentID != n.Span.SpanID {
					t.Fatalf("child %s has ParentID %d under %s (SpanID %d)",
						c.Span.Op, c.Span.ParentID, n.Span.Op, n.Span.SpanID)
				}
				if c.Span.Op == "rpc.serve:MatchBatch" && n.Span.Op != "rpc.call:MatchBatch" {
					t.Fatalf("serve:MatchBatch parented under %s, want rpc.call:MatchBatch", n.Span.Op)
				}
			}
		}
		if len(servers) >= 2 {
			return // fan-out crossed ≥2 remote servers under one trace
		}
	}
	t.Fatal("no query fanned out to 2+ remote servers — graph or partitioning changed?")
}

// TestTracedQueriesConcurrent drives 16 goroutines of traced queries —
// the -race gate for the span tree, the trace table and the wire header
// paths — and asserts every trace assembles with a remote serve span.
func TestTracedQueriesConcurrent(t *testing.T) {
	client := traceTestCluster(t)
	telemetry.ResetSpans()
	filter := map[string]string{"city": "Berkeley"}

	const goroutines = 16
	const perG = 6
	ids := make(chan telemetry.TraceID, goroutines*perG)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				root, ctx := telemetry.StartSpanCtx(context.Background(), "test.concurrent")
				id := int64((g*perG + i) % 40)
				client.GetNeighborIDsCtx(ctx, id, graphapi.WildcardType, filter)
				client.GetNodePropertyCtx(ctx, id, nil)
				root.End()
				if root != nil {
					ids <- root.Trace
				}
			}
		}(g)
	}
	wg.Wait()
	close(ids)

	assembled := 0
	for id := range ids {
		tree := telemetry.AssembleTrace(id)
		if tree == nil {
			t.Fatalf("trace %s missing from table", id)
		}
		if len(tree.Roots) != 1 {
			t.Fatalf("trace %s has %d roots, want 1", id, len(tree.Roots))
		}
		var all []*telemetry.TraceNode
		collectSpans(tree.Roots[0], &all)
		for _, n := range all {
			if n.Span.Op == "rpc.serve:Neighbors" || n.Span.Op == "rpc.serve:NodeProps" {
				assembled++
				break
			}
		}
	}
	if assembled != goroutines*perG {
		t.Errorf("%d/%d traces contain a remote serve span", assembled, goroutines*perG)
	}
}
