package cluster

import (
	"context"
	"sort"
	"sync"

	"zipg/internal/graphapi"
	"zipg/internal/rpc"
)

// Multi-level function shipping (§4.1): "a subquery may be further
// decomposed into sub-subqueries and forwarded to respective servers."
// The canonical case is a two-hop neighborhood query — "friends of
// friends of Alice who live in Ithaca": the client contacts Alice's
// owner; that aggregator expands her neighbors locally, groups them by
// owner and ships a *neighbor-expansion* subquery to each of those
// servers; each of them, in turn, ships property checks for the second
// hop to the neighbors' owners (Figure 4, one level deeper).

type twoHopArgs struct {
	IDs   []graphapi.NodeID // frontier owned by the callee
	EType graphapi.EdgeType
	Props map[string]string // filter applied to the second hop
}

func (s *Server) registerMultiLevel() {
	// NeighborsBatch expands a frontier of locally-owned nodes one hop
	// and applies the property filter — itself shipping the checks to
	// the destination owners (the second level of shipping).
	s.rpc.Handle("NeighborsBatch", func(ctx context.Context, blob []byte) (any, error) {
		var a twoHopArgs
		if err := rpc.DecodeArgsCtx(ctx, blob, &a); err != nil {
			return nil, err
		}
		seen := make(map[graphapi.NodeID]bool)
		var frontier []graphapi.NodeID
		for _, id := range a.IDs {
			ids, err := s.neighborsCtx(ctx, id, a.EType, a.Props)
			if err != nil {
				return nil, err
			}
			for _, n := range ids {
				if !seen[n] {
					seen[n] = true
					frontier = append(frontier, n)
				}
			}
		}
		sort.Slice(frontier, func(i, j int) bool { return frontier[i] < frontier[j] })
		return idsReply{IDs: frontier}, nil
	})
}

// TwoHopNeighbors returns the distinct nodes exactly reachable within
// two hops of id along etype (WildcardType for any), with props
// filtering the second hop. The first hop is expanded at id's owner; the
// second hop fans out to the owners of the first-hop nodes, each of
// which ships its own property checks — three levels of servers
// cooperate on one query.
func (c *Client) TwoHopNeighbors(id graphapi.NodeID, etype graphapi.EdgeType, props map[string]string) []graphapi.NodeID {
	first := c.GetNeighborIDs(id, etype, nil)
	if len(first) == 0 {
		return nil
	}
	perOwner := make(map[int][]graphapi.NodeID)
	for _, n := range first {
		o := OwnerOf(n, len(c.addrs))
		perOwner[o] = append(perOwner[o], n)
	}
	var mu sync.Mutex
	union := make(map[graphapi.NodeID]bool)
	var wg sync.WaitGroup
	for owner, ids := range perOwner {
		wg.Add(1)
		go func(owner int, ids []graphapi.NodeID) {
			defer wg.Done()
			conn, err := c.conn(owner)
			if err != nil {
				return
			}
			var reply idsReply
			if err := conn.Call("NeighborsBatch", twoHopArgs{IDs: ids, EType: etype, Props: props}, &reply); err != nil {
				return
			}
			mu.Lock()
			for _, n := range reply.IDs {
				union[n] = true
			}
			mu.Unlock()
		}(owner, ids)
	}
	wg.Wait()
	out := make([]graphapi.NodeID, 0, len(union))
	for n := range union {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
