package cluster

import (
	"reflect"
	"testing"

	"zipg/internal/layout"
	"zipg/internal/refgraph"
)

func TestReplicatedClusterReadsAndWrites(t *testing.T) {
	nodes, edges, ns, es := testGraph(t, 24, 100)
	c, err := LaunchWithReplicas(nodes, edges, ns, es, LaunchConfig{
		NumServers:      2,
		ShardsPerServer: 2,
		SamplingRate:    8,
	}, 3)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	client, err := c.Client()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(client.Close)
	ref := refgraph.New(nodes, edges)

	// Reads agree with the reference regardless of which replica serves
	// them (the round-robin cycles through all of them over 30 queries).
	for id := int64(0); id < 24; id++ {
		want, wantOK := ref.GetNodeProperty(id, nil)
		got, gotOK := client.GetNodeProperty(id, nil)
		if gotOK != wantOK || !reflect.DeepEqual(got, want) {
			t.Fatalf("node %d: %v,%v want %v,%v", id, got, gotOK, want, wantOK)
		}
		if g, w := client.GetNeighborIDs(id, 0, nil), ref.GetNeighborIDs(id, 0, nil); !reflect.DeepEqual(g, w) {
			t.Fatalf("neighbors(%d): %v want %v", id, g, w)
		}
	}
	if g, w := client.GetNodeIDs(map[string]string{"city": "Ithaca"}), ref.GetNodeIDs(map[string]string{"city": "Ithaca"}); !reflect.DeepEqual(g, w) {
		t.Fatalf("GetNodeIDs: %v want %v", g, w)
	}

	// A write reaches every replica: after it, repeated reads (which
	// round-robin across replicas) all see it.
	if err := client.AppendNode(500, map[string]string{"city": "Ithaca", "name": "new"}); err != nil {
		t.Fatal(err)
	}
	ref.AppendNode(500, map[string]string{"city": "Ithaca", "name": "new"})
	for trial := 0; trial < 6; trial++ { // 2x replicas reads
		if _, ok := client.GetNodeProperty(500, nil); !ok {
			t.Fatalf("replica missed the write (trial %d)", trial)
		}
	}
	// Edge records via replicas.
	if err := client.AppendEdge(layout.Edge{Src: 500, Dst: 1, Type: 0, Timestamp: 9}); err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 6; trial++ {
		rec, ok := client.GetEdgeRecord(500, 0)
		if !ok || rec.Count() != 1 {
			t.Fatalf("edge write missed on some replica (trial %d)", trial)
		}
		if d, err := rec.Data(0); err != nil || d.Dst != 1 {
			t.Fatalf("edge data: %v %v", d, err)
		}
	}
	if n, err := client.DeleteEdges(500, 0, 1); err != nil || n != 1 {
		t.Fatalf("delete: %d %v", n, err)
	}
}

func TestReplicatedFailover(t *testing.T) {
	nodes, edges, ns, es := testGraph(t, 12, 40)
	c, err := LaunchWithReplicas(nodes, edges, ns, es, LaunchConfig{
		NumServers:      2,
		ShardsPerServer: 1,
		SamplingRate:    8,
	}, 2)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	client, err := c.Client()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(client.Close)

	// Kill one replica of each partition; reads must still succeed via
	// failover to the surviving replicas.
	c.StopReplica(0, 1)
	c.StopReplica(1, 1)
	ref := refgraph.New(nodes, edges)
	for id := int64(0); id < 12; id++ {
		want, wantOK := ref.GetNodeProperty(id, nil)
		got, gotOK := client.GetNodeProperty(id, nil)
		if gotOK != wantOK || !reflect.DeepEqual(got, want) {
			t.Fatalf("after failover, node %d: %v,%v want %v,%v", id, got, gotOK, want, wantOK)
		}
	}
	// Writes to a partition with a dead replica fail loudly (no silent
	// divergence between copies).
	if err := client.AppendNode(600, map[string]string{"city": "Ithaca"}); err == nil {
		t.Fatal("write with a dead replica should fail")
	}
}
