package cluster

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"zipg/internal/graphapi"
	"zipg/internal/layout"
	"zipg/internal/rpc"
	"zipg/internal/telemetry"
)

// Client is a ZipG cluster client implementing the shared store API.
// Queries are routed to the server owning the queried node; get_node_ids
// fans out to every server and aggregates (§4.1, footnote 5). Safe for
// concurrent use.
type Client struct {
	addrs []string

	mu    sync.Mutex
	conns []*rpc.Client
}

// Compile-time check: the cluster client serves the shared workload API.
var _ graphapi.Store = (*Client)(nil)

// NewClient connects to a cluster given every server's address, in
// server-ID order.
func NewClient(addrs []string) (*Client, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("cluster: no servers")
	}
	return &Client{addrs: addrs, conns: make([]*rpc.Client, len(addrs))}, nil
}

// conn returns a connection to server id, dialing lazily.
func (c *Client) conn(id int) (*rpc.Client, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conns[id] == nil {
		cl, err := rpc.Dial(c.addrs[id])
		if err != nil {
			return nil, err
		}
		c.conns[id] = cl
	}
	return c.conns[id], nil
}

// owner returns the connection to a node's owning server.
func (c *Client) owner(id graphapi.NodeID) (*rpc.Client, error) {
	return c.conn(OwnerOf(id, len(c.addrs)))
}

// Close tears down all connections.
func (c *Client) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, conn := range c.conns {
		if conn != nil {
			conn.Close()
		}
	}
}

// GetNodeProperty implements graphapi.Store.
func (c *Client) GetNodeProperty(id graphapi.NodeID, propertyIDs []string) ([]string, bool) {
	return c.GetNodePropertyCtx(context.Background(), id, propertyIDs)
}

// GetNodePropertyCtx is GetNodeProperty under a trace context: the
// query becomes a span (a root when ctx is untraced and the sampling
// period elects it) whose rpc.call child carries the trace to the
// owner, and ctx's deadline travels on the wire.
func (c *Client) GetNodePropertyCtx(ctx context.Context, id graphapi.NodeID, propertyIDs []string) ([]string, bool) {
	sp, ctx := telemetry.StartSpanCtx(ctx, "client.get_node_property")
	defer sp.End()
	conn, err := c.owner(id)
	if err != nil {
		sp.SetError(err)
		return nil, false
	}
	var reply nodePropsReply
	if err := conn.CallCtx(ctx, "NodeProps", nodePropsArgs{ID: id, PIDs: propertyIDs}, &reply); err != nil {
		sp.SetError(err)
		return nil, false
	}
	if !reply.OK {
		return nil, false
	}
	if len(propertyIDs) == 0 {
		// Wildcard semantics: drop absent properties (server returns
		// schema-ordered slots).
		out := make([]string, 0, len(reply.Vals))
		for _, v := range reply.Vals {
			if v != "" {
				out = append(out, v)
			}
		}
		return out, true
	}
	return reply.Vals, true
}

// GetNodeIDs implements graphapi.Store: fan out to every server, union
// client-side (the aggregation of Figure 4's left-most case).
func (c *Client) GetNodeIDs(props map[string]string) []graphapi.NodeID {
	return c.GetNodeIDsCtx(context.Background(), props)
}

// GetNodeIDsCtx is GetNodeIDs under a trace context: one span for the
// fan-out with a concurrent rpc.call child per server.
func (c *Client) GetNodeIDsCtx(ctx context.Context, props map[string]string) []graphapi.NodeID {
	sp, ctx := telemetry.StartSpanCtx(ctx, "client.get_node_ids")
	defer sp.End()
	sp.SetFanout(len(c.addrs), 0, len(c.addrs))
	var mu sync.Mutex
	var out []graphapi.NodeID
	var wg sync.WaitGroup
	for sid := range c.addrs {
		wg.Add(1)
		go func(sid int) {
			defer wg.Done()
			conn, err := c.conn(sid)
			if err != nil {
				return
			}
			var reply idsReply
			if err := conn.CallCtx(ctx, "FindNodes", propsArgs{Props: props}, &reply); err != nil {
				return
			}
			mu.Lock()
			out = append(out, reply.IDs...)
			mu.Unlock()
		}(sid)
	}
	wg.Wait()
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// GetNeighborIDs implements graphapi.Store: one call to the owner, which
// does the function shipping.
func (c *Client) GetNeighborIDs(id graphapi.NodeID, etype graphapi.EdgeType, props map[string]string) []graphapi.NodeID {
	return c.GetNeighborIDsCtx(context.Background(), id, etype, props)
}

// GetNeighborIDsCtx is GetNeighborIDs under a trace context: the root
// of the canonical distributed trace — client span → rpc.call to the
// owner → the owner's serve span → MatchBatch calls fanning out to the
// neighbors' owners.
func (c *Client) GetNeighborIDsCtx(ctx context.Context, id graphapi.NodeID, etype graphapi.EdgeType, props map[string]string) []graphapi.NodeID {
	sp, ctx := telemetry.StartSpanCtx(ctx, "client.get_neighbor_ids")
	defer sp.End()
	conn, err := c.owner(id)
	if err != nil {
		sp.SetError(err)
		return nil
	}
	var reply idsReply
	if err := conn.CallCtx(ctx, "Neighbors", neighborsArgs{ID: id, EType: etype, Props: props}, &reply); err != nil {
		sp.SetError(err)
		return nil
	}
	return reply.IDs
}

// remoteRecord is the client-side EdgeRecord handle; data accesses are
// RPCs to the owner.
type remoteRecord struct {
	c     *Client
	id    graphapi.NodeID
	etype graphapi.EdgeType
	count int
}

func (r *remoteRecord) Count() int { return r.count }

func (r *remoteRecord) Range(tLo, tHi int64) (int, int) {
	tLo, tHi = graphapi.TimeBounds(tLo, tHi)
	conn, err := r.c.owner(r.id)
	if err != nil {
		return 0, 0
	}
	var reply rangeReply
	if err := conn.Call("RecRange", recRangeArgs{ID: r.id, EType: r.etype, Lo: tLo, Hi: tHi}, &reply); err != nil {
		return 0, 0
	}
	return reply.Beg, reply.End
}

func (r *remoteRecord) Data(timeOrder int) (graphapi.EdgeData, error) {
	conn, err := r.c.owner(r.id)
	if err != nil {
		return graphapi.EdgeData{}, err
	}
	var reply edgeDataReply
	if err := conn.Call("RecData", recDataArgs{ID: r.id, EType: r.etype, Order: timeOrder}, &reply); err != nil {
		return graphapi.EdgeData{}, err
	}
	return graphapi.EdgeData{Dst: reply.Dst, Timestamp: reply.Ts, Props: reply.Props}, nil
}

func (r *remoteRecord) Destinations() []graphapi.NodeID {
	conn, err := r.c.owner(r.id)
	if err != nil {
		return nil
	}
	var reply idsReply
	if err := conn.Call("RecDsts", recArgs{ID: r.id, EType: r.etype}, &reply); err != nil {
		return nil
	}
	return reply.IDs
}

// GetEdgeRecord implements graphapi.Store.
func (c *Client) GetEdgeRecord(id graphapi.NodeID, etype graphapi.EdgeType) (graphapi.EdgeRecord, bool) {
	conn, err := c.owner(id)
	if err != nil {
		return nil, false
	}
	var reply recMetaReply
	if err := conn.Call("RecMeta", recArgs{ID: id, EType: etype}, &reply); err != nil || !reply.OK {
		return nil, false
	}
	return &remoteRecord{c: c, id: id, etype: etype, count: reply.Count}, true
}

// GetEdgeRecords implements graphapi.Store.
func (c *Client) GetEdgeRecords(id graphapi.NodeID) []graphapi.EdgeRecord {
	conn, err := c.owner(id)
	if err != nil {
		return nil
	}
	var reply recsMetaReply
	if err := conn.Call("RecsMeta", recArgs{ID: id}, &reply); err != nil {
		return nil
	}
	out := make([]graphapi.EdgeRecord, len(reply.Types))
	for i, t := range reply.Types {
		out[i] = &remoteRecord{c: c, id: id, etype: t, count: reply.Counts[i]}
	}
	return out
}

// AppendNode implements graphapi.Store.
func (c *Client) AppendNode(id graphapi.NodeID, props map[string]string) error {
	conn, err := c.owner(id)
	if err != nil {
		return err
	}
	return conn.Call("AppendNode", appendNodeArgs{ID: id, Props: props}, nil)
}

// AppendEdge implements graphapi.Store (routed to the source's owner:
// all of a node's edge data is co-located with it, §4.1).
func (c *Client) AppendEdge(e graphapi.Edge) error {
	conn, err := c.owner(e.Src)
	if err != nil {
		return err
	}
	return conn.Call("AppendEdge", layout.Edge(e), nil)
}

// DeleteNode implements graphapi.Store.
func (c *Client) DeleteNode(id graphapi.NodeID) error {
	conn, err := c.owner(id)
	if err != nil {
		return err
	}
	return conn.Call("DeleteNode", id, nil)
}

// DeleteEdges implements graphapi.Store.
func (c *Client) DeleteEdges(src graphapi.NodeID, etype graphapi.EdgeType, dst graphapi.NodeID) (int, error) {
	conn, err := c.owner(src)
	if err != nil {
		return 0, err
	}
	var n int
	err = conn.Call("DeleteEdges", deleteEdgesArgs{Src: src, Type: etype, Dst: dst}, &n)
	return n, err
}
