package cluster

import (
	"fmt"

	"zipg/internal/graphapi"
	"zipg/internal/layout"
	"zipg/internal/memsim"
)

// LaunchConfig parameterizes an in-process cluster (what the benchmark
// harness and tests use; cmd/zipg-server runs the same Server as a
// standalone binary).
type LaunchConfig struct {
	NumServers      int
	ShardsPerServer int
	SamplingRate    int
	// MediumFor, if set, supplies each server's simulated storage.
	MediumFor         func(serverID int) *memsim.Medium
	LogStoreThreshold int64
}

// Cluster is a set of in-process servers plus their addresses.
type Cluster struct {
	Servers []*Server
	Addrs   []string
}

// Launch partitions the graph by node owner, builds one server per
// partition on a loopback port, and interconnects them.
func Launch(nodes []layout.Node, edges []layout.Edge, nodeSchema, edgeSchema *layout.PropertySchema, cfg LaunchConfig) (*Cluster, error) {
	if cfg.NumServers <= 0 {
		cfg.NumServers = 1
	}
	partNodes := make([][]layout.Node, cfg.NumServers)
	partEdges := make([][]layout.Edge, cfg.NumServers)
	for _, n := range nodes {
		o := OwnerOf(n.ID, cfg.NumServers)
		partNodes[o] = append(partNodes[o], n)
	}
	for _, e := range edges {
		o := OwnerOf(e.Src, cfg.NumServers)
		partEdges[o] = append(partEdges[o], e)
	}
	c := &Cluster{}
	for sid := 0; sid < cfg.NumServers; sid++ {
		var med *memsim.Medium
		if cfg.MediumFor != nil {
			med = cfg.MediumFor(sid)
		}
		srv, err := NewServer(partNodes[sid], partEdges[sid], nodeSchema, edgeSchema, ServerConfig{
			ID:                sid,
			NumServers:        cfg.NumServers,
			ShardsPerServer:   cfg.ShardsPerServer,
			SamplingRate:      cfg.SamplingRate,
			Medium:            med,
			LogStoreThreshold: cfg.LogStoreThreshold,
		})
		if err != nil {
			c.Close()
			return nil, err
		}
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			c.Close()
			return nil, fmt.Errorf("cluster: listen server %d: %w", sid, err)
		}
		c.Servers = append(c.Servers, srv)
		c.Addrs = append(c.Addrs, addr)
	}
	for _, srv := range c.Servers {
		srv.ConnectPeers(c.Addrs)
	}
	return c, nil
}

// Client connects a new client to the cluster.
func (c *Cluster) Client() (*Client, error) { return NewClient(c.Addrs) }

// Close shuts every server down.
func (c *Cluster) Close() {
	for _, s := range c.Servers {
		if s != nil {
			s.Close()
		}
	}
}

// Partition splits a node list by owner (exported for cmd/zipg-load).
func Partition(nodes []graphapi.Node, edges []graphapi.Edge, numServers int) ([][]graphapi.Node, [][]graphapi.Edge) {
	pn := make([][]graphapi.Node, numServers)
	pe := make([][]graphapi.Edge, numServers)
	for _, n := range nodes {
		o := OwnerOf(n.ID, numServers)
		pn[o] = append(pn[o], n)
	}
	for _, e := range edges {
		o := OwnerOf(e.Src, numServers)
		pe[o] = append(pe[o], e)
	}
	return pn, pe
}

// ReplicatedCluster is a cluster with several replicas per partition.
type ReplicatedCluster struct {
	// Servers[p][r] is replica r of partition p.
	Servers [][]*Server
	// Addrs mirrors Servers.
	Addrs [][]string
}

// LaunchWithReplicas launches cfg.NumServers partitions with `replicas`
// identical copies of each (§4.1: replication-based fault tolerance;
// queries are load-balanced evenly across replicas).
func LaunchWithReplicas(nodes []layout.Node, edges []layout.Edge, nodeSchema, edgeSchema *layout.PropertySchema, cfg LaunchConfig, replicas int) (*ReplicatedCluster, error) {
	if cfg.NumServers <= 0 {
		cfg.NumServers = 1
	}
	if replicas <= 0 {
		replicas = 1
	}
	partNodes := make([][]layout.Node, cfg.NumServers)
	partEdges := make([][]layout.Edge, cfg.NumServers)
	for _, n := range nodes {
		o := OwnerOf(n.ID, cfg.NumServers)
		partNodes[o] = append(partNodes[o], n)
	}
	for _, e := range edges {
		o := OwnerOf(e.Src, cfg.NumServers)
		partEdges[o] = append(partEdges[o], e)
	}
	c := &ReplicatedCluster{
		Servers: make([][]*Server, cfg.NumServers),
		Addrs:   make([][]string, cfg.NumServers),
	}
	for p := 0; p < cfg.NumServers; p++ {
		for r := 0; r < replicas; r++ {
			var med *memsim.Medium
			if cfg.MediumFor != nil {
				med = cfg.MediumFor(p)
			}
			srv, err := NewServer(partNodes[p], partEdges[p], nodeSchema, edgeSchema, ServerConfig{
				ID:                p,
				NumServers:        cfg.NumServers,
				ShardsPerServer:   cfg.ShardsPerServer,
				SamplingRate:      cfg.SamplingRate,
				Medium:            med,
				LogStoreThreshold: cfg.LogStoreThreshold,
			})
			if err != nil {
				c.Close()
				return nil, err
			}
			addr, err := srv.Listen("127.0.0.1:0")
			if err != nil {
				c.Close()
				return nil, fmt.Errorf("cluster: listen partition %d replica %d: %w", p, r, err)
			}
			c.Servers[p] = append(c.Servers[p], srv)
			c.Addrs[p] = append(c.Addrs[p], addr)
		}
	}
	// Peer links for function shipping use each partition's first replica.
	primaries := make([]string, cfg.NumServers)
	for p := range c.Addrs {
		primaries[p] = c.Addrs[p][0]
	}
	for _, reps := range c.Servers {
		for _, srv := range reps {
			srv.ConnectPeers(primaries)
		}
	}
	return c, nil
}

// Client connects a replica-aware client.
func (c *ReplicatedCluster) Client() (*ReplicatedClient, error) {
	return NewReplicatedClient(c.Addrs)
}

// Close shuts every replica down.
func (c *ReplicatedCluster) Close() {
	for _, reps := range c.Servers {
		for _, s := range reps {
			if s != nil {
				s.Close()
			}
		}
	}
}

// StopReplica shuts down one replica (for failover tests).
func (c *ReplicatedCluster) StopReplica(partition, replica int) {
	c.Servers[partition][replica].Close()
}
