package cluster

import (
	"hash/fnv"
	"testing"
)

// fnvOwnerOf is the old allocating implementation, kept as the
// reference the inlined hash must match bit for bit (partition files
// written by zipg-load depend on the mapping staying put).
func fnvOwnerOf(id int64, numServers int) int {
	h := fnv.New32a()
	var b [8]byte
	for i := 0; i < 8; i++ {
		b[i] = byte(uint64(id) >> (8 * i))
	}
	h.Write(b[:])
	return int(h.Sum32() % uint32(numServers))
}

func TestOwnerOfMatchesFNV(t *testing.T) {
	ids := []int64{0, 1, 2, 7, 255, 256, 1 << 20, 1<<40 + 12345, 1<<62 + 99, -1, -987654321}
	for _, id := range ids {
		for _, n := range []int{1, 3, 10, 64} {
			if got, want := OwnerOf(id, n), fnvOwnerOf(id, n); got != want {
				t.Errorf("OwnerOf(%d, %d) = %d, want %d", id, n, got, want)
			}
		}
	}
	for id := int64(-500); id < 500; id++ {
		if got, want := OwnerOf(id, 10), fnvOwnerOf(id, 10); got != want {
			t.Fatalf("OwnerOf(%d, 10) = %d, want %d", id, got, want)
		}
	}
}

func TestOwnerOfZeroAllocs(t *testing.T) {
	allocs := testing.AllocsPerRun(1000, func() {
		if OwnerOf(123456789, 10) >= 10 {
			t.Fatal("owner out of range")
		}
	})
	if allocs != 0 {
		t.Errorf("OwnerOf allocates %v times per call, want 0", allocs)
	}
}

func BenchmarkOwnerOf(b *testing.B) {
	b.ReportAllocs()
	var sink int
	for i := 0; i < b.N; i++ {
		sink += OwnerOf(int64(i), 10)
	}
	_ = sink
}

func BenchmarkOwnerOfFNVBaseline(b *testing.B) {
	b.ReportAllocs()
	var sink int
	for i := 0; i < b.N; i++ {
		sink += fnvOwnerOf(int64(i), 10)
	}
	_ = sink
}
