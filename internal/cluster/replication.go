package cluster

import (
	"fmt"
	"sync"
	"sync/atomic"

	"zipg/internal/graphapi"
	"zipg/internal/rpc"
)

// Replication (§4.1, "Fault Tolerance and Load Balancing"): an
// application can specify a number of replicas per partition; every
// replica holds the same partition data, reads are load-balanced evenly
// across replicas (with failover to the next replica when one is down),
// and writes go to every replica of the owning partition.

// ReplicatedClient is a cluster client aware of the replica layout:
// addrs[p][r] is replica r of partition p.
type ReplicatedClient struct {
	addrs [][]string
	rr    atomic.Uint64 // read round-robin counter

	mu    sync.Mutex
	conns map[string]*rpc.Client
}

// Compile-time check.
var _ graphapi.Store = (*ReplicatedClient)(nil)

// NewReplicatedClient connects to a replicated cluster. addrs[p] lists
// the replicas of partition p; every partition must have at least one.
func NewReplicatedClient(addrs [][]string) (*ReplicatedClient, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("cluster: no partitions")
	}
	for p, reps := range addrs {
		if len(reps) == 0 {
			return nil, fmt.Errorf("cluster: partition %d has no replicas", p)
		}
	}
	return &ReplicatedClient{addrs: addrs, conns: make(map[string]*rpc.Client)}, nil
}

// Close tears down every connection.
func (c *ReplicatedClient) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, conn := range c.conns {
		conn.Close()
	}
	c.conns = make(map[string]*rpc.Client)
}

func (c *ReplicatedClient) dial(addr string) (*rpc.Client, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if conn, ok := c.conns[addr]; ok {
		return conn, nil
	}
	conn, err := rpc.Dial(addr)
	if err != nil {
		return nil, err
	}
	c.conns[addr] = conn
	return conn, nil
}

// drop forgets a (likely dead) connection so the next call redials.
func (c *ReplicatedClient) drop(addr string) {
	c.mu.Lock()
	if conn, ok := c.conns[addr]; ok {
		conn.Close()
		delete(c.conns, addr)
	}
	c.mu.Unlock()
}

// callRead invokes a method on one replica of partition p, starting at
// the round-robin position and failing over to the remaining replicas.
func (c *ReplicatedClient) callRead(p int, method string, args, reply any) error {
	reps := c.addrs[p]
	start := int(c.rr.Add(1)) % len(reps)
	var lastErr error
	for k := 0; k < len(reps); k++ {
		addr := reps[(start+k)%len(reps)]
		conn, err := c.dial(addr)
		if err != nil {
			lastErr = err
			continue
		}
		if err := conn.Call(method, args, reply); err != nil {
			lastErr = err
			c.drop(addr)
			continue
		}
		return nil
	}
	return fmt.Errorf("cluster: partition %d unavailable: %w", p, lastErr)
}

// callWrite invokes a method on every replica of partition p (writes
// must reach all copies).
func (c *ReplicatedClient) callWrite(p int, method string, args, reply any) error {
	for _, addr := range c.addrs[p] {
		conn, err := c.dial(addr)
		if err != nil {
			return fmt.Errorf("cluster: replica %s: %w", addr, err)
		}
		if err := conn.Call(method, args, reply); err != nil {
			return fmt.Errorf("cluster: replica %s: %w", addr, err)
		}
	}
	return nil
}

func (c *ReplicatedClient) ownerOf(id graphapi.NodeID) int {
	return OwnerOf(id, len(c.addrs))
}

// GetNodeProperty implements graphapi.Store.
func (c *ReplicatedClient) GetNodeProperty(id graphapi.NodeID, propertyIDs []string) ([]string, bool) {
	var reply nodePropsReply
	if err := c.callRead(c.ownerOf(id), "NodeProps", nodePropsArgs{ID: id, PIDs: propertyIDs}, &reply); err != nil {
		return nil, false
	}
	if !reply.OK {
		return nil, false
	}
	if len(propertyIDs) == 0 {
		out := make([]string, 0, len(reply.Vals))
		for _, v := range reply.Vals {
			if v != "" {
				out = append(out, v)
			}
		}
		return out, true
	}
	return reply.Vals, true
}

// GetNodeIDs implements graphapi.Store: one replica per partition.
func (c *ReplicatedClient) GetNodeIDs(props map[string]string) []graphapi.NodeID {
	var mu sync.Mutex
	var out []graphapi.NodeID
	var wg sync.WaitGroup
	for p := range c.addrs {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			var reply idsReply
			if err := c.callRead(p, "FindNodes", propsArgs{Props: props}, &reply); err != nil {
				return
			}
			mu.Lock()
			out = append(out, reply.IDs...)
			mu.Unlock()
		}(p)
	}
	wg.Wait()
	workSortIDs(out)
	return out
}

// GetNeighborIDs implements graphapi.Store.
func (c *ReplicatedClient) GetNeighborIDs(id graphapi.NodeID, etype graphapi.EdgeType, props map[string]string) []graphapi.NodeID {
	var reply idsReply
	if err := c.callRead(c.ownerOf(id), "Neighbors", neighborsArgs{ID: id, EType: etype, Props: props}, &reply); err != nil {
		return nil
	}
	return reply.IDs
}

// replicatedRecord is the replica-aware EdgeRecord handle.
type replicatedRecord struct {
	c     *ReplicatedClient
	id    graphapi.NodeID
	etype graphapi.EdgeType
	count int
}

func (r *replicatedRecord) Count() int { return r.count }

func (r *replicatedRecord) Range(tLo, tHi int64) (int, int) {
	tLo, tHi = graphapi.TimeBounds(tLo, tHi)
	var reply rangeReply
	if err := r.c.callRead(r.c.ownerOf(r.id), "RecRange", recRangeArgs{ID: r.id, EType: r.etype, Lo: tLo, Hi: tHi}, &reply); err != nil {
		return 0, 0
	}
	return reply.Beg, reply.End
}

func (r *replicatedRecord) Data(timeOrder int) (graphapi.EdgeData, error) {
	var reply edgeDataReply
	if err := r.c.callRead(r.c.ownerOf(r.id), "RecData", recDataArgs{ID: r.id, EType: r.etype, Order: timeOrder}, &reply); err != nil {
		return graphapi.EdgeData{}, err
	}
	return graphapi.EdgeData{Dst: reply.Dst, Timestamp: reply.Ts, Props: reply.Props}, nil
}

func (r *replicatedRecord) Destinations() []graphapi.NodeID {
	var reply idsReply
	if err := r.c.callRead(r.c.ownerOf(r.id), "RecDsts", recArgs{ID: r.id, EType: r.etype}, &reply); err != nil {
		return nil
	}
	return reply.IDs
}

// GetEdgeRecord implements graphapi.Store.
func (c *ReplicatedClient) GetEdgeRecord(id graphapi.NodeID, etype graphapi.EdgeType) (graphapi.EdgeRecord, bool) {
	var reply recMetaReply
	if err := c.callRead(c.ownerOf(id), "RecMeta", recArgs{ID: id, EType: etype}, &reply); err != nil || !reply.OK {
		return nil, false
	}
	return &replicatedRecord{c: c, id: id, etype: etype, count: reply.Count}, true
}

// GetEdgeRecords implements graphapi.Store.
func (c *ReplicatedClient) GetEdgeRecords(id graphapi.NodeID) []graphapi.EdgeRecord {
	var reply recsMetaReply
	if err := c.callRead(c.ownerOf(id), "RecsMeta", recArgs{ID: id}, &reply); err != nil {
		return nil
	}
	out := make([]graphapi.EdgeRecord, len(reply.Types))
	for i, t := range reply.Types {
		out[i] = &replicatedRecord{c: c, id: id, etype: t, count: reply.Counts[i]}
	}
	return out
}

// AppendNode implements graphapi.Store (written to every replica).
func (c *ReplicatedClient) AppendNode(id graphapi.NodeID, props map[string]string) error {
	return c.callWrite(c.ownerOf(id), "AppendNode", appendNodeArgs{ID: id, Props: props}, nil)
}

// AppendEdge implements graphapi.Store.
func (c *ReplicatedClient) AppendEdge(e graphapi.Edge) error {
	return c.callWrite(c.ownerOf(e.Src), "AppendEdge", e, nil)
}

// DeleteNode implements graphapi.Store.
func (c *ReplicatedClient) DeleteNode(id graphapi.NodeID) error {
	return c.callWrite(c.ownerOf(id), "DeleteNode", id, nil)
}

// DeleteEdges implements graphapi.Store.
func (c *ReplicatedClient) DeleteEdges(src graphapi.NodeID, etype graphapi.EdgeType, dst graphapi.NodeID) (int, error) {
	var n int
	err := c.callWrite(c.ownerOf(src), "DeleteEdges", deleteEdgesArgs{Src: src, Type: etype, Dst: dst}, &n)
	return n, err
}

func workSortIDs(ids []graphapi.NodeID) {
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
}
