// Package cluster implements distributed ZipG (§4.1): graph data is
// hash-partitioned across servers; each server hosts its shards plus an
// aggregator that executes queries locally and ships subqueries to the
// servers owning remote data (function shipping, Figure 4). Queries that
// need one node's data go to its owner; neighbor queries with property
// filters ship batched property checks to the neighbors' owners;
// get_node_ids fans out to every server.
//
// Servers speak the framed RPC of package rpc over TCP; the benchmark
// harness launches them in-process on loopback, which preserves the
// communication structure (round trips and fan-out counts) the paper's
// distributed experiments measure.
package cluster

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"zipg/internal/bitutil"
	"zipg/internal/graphapi"
	"zipg/internal/layout"
	"zipg/internal/memsim"
	"zipg/internal/rpc"
	"zipg/internal/store"
	"zipg/internal/telemetry"
	"zipg/internal/temporal"
)

// OwnerOf returns the server owning a node's data: the same
// hash-partitioning the single-machine store uses for shards, applied
// at server granularity. Every routed query hashes at least one ID, so
// the FNV-1a mix is inlined (layout.IDHash) instead of allocating a
// hash/fnv hasher and a byte buffer per call; the hash values are
// unchanged, so existing partition files stay valid.
func OwnerOf(id graphapi.NodeID, numServers int) int {
	return int(layout.IDHash(id) % uint32(numServers))
}

// Telemetry series for the aggregator's function shipping (§4.1,
// Figure 4): how far neighbor queries fan out and how the per-owner
// subquery batches split between local execution and RPC shipping.
var (
	mFanout = telemetry.NewHistogram("zipg_cluster_fanout",
		"Remote servers shipped to per neighbor query (function shipping).")
	mSubqLocal = telemetry.NewCounterL("zipg_cluster_subqueries_total", `locality="local"`,
		"Per-owner subquery batches, by where they executed.")
	mSubqRemote = telemetry.NewCounterL("zipg_cluster_subqueries_total", `locality="remote"`,
		"Per-owner subquery batches, by where they executed.")
	mNeighborQueries = telemetry.NewCounter("zipg_cluster_neighbor_queries_total",
		"Neighbor queries executed at this aggregator.")
	mBatchDedup = telemetry.NewCounter("zipg_batch_dedup_total",
		"Duplicate candidate IDs eliminated before MatchBatch fan-out.")
	mBatchRequestsCluster = telemetry.NewCounterL("zipg_batch_requests_total", `layer="cluster"`,
		"Items requested through batch kernels, by layer.")
)

// --- wire types ---

type nodePropsArgs struct {
	ID   graphapi.NodeID
	PIDs []string
}

type nodePropsReply struct {
	Vals []string
	OK   bool
}

type matchBatchArgs struct {
	IDs   []graphapi.NodeID
	Props map[string]string
}

type propsArgs struct {
	Props map[string]string
}

type neighborsArgs struct {
	ID    graphapi.NodeID
	EType graphapi.EdgeType
	Props map[string]string
}

type recArgs struct {
	ID    graphapi.NodeID
	EType graphapi.EdgeType
}

type recMetaReply struct {
	Count int
	OK    bool
}

type recsMetaReply struct {
	Types  []graphapi.EdgeType
	Counts []int
}

type recRangeArgs struct {
	ID     graphapi.NodeID
	EType  graphapi.EdgeType
	Lo, Hi int64
}

type rangeReply struct {
	Beg, End int
}

type recDataArgs struct {
	ID    graphapi.NodeID
	EType graphapi.EdgeType
	Order int
}

type edgeDataReply struct {
	Dst   graphapi.NodeID
	Ts    int64
	Props map[string]string
}

type appendNodeArgs struct {
	ID    graphapi.NodeID
	Props map[string]string
}

type deleteEdgesArgs struct {
	Src  graphapi.NodeID
	Type graphapi.EdgeType
	Dst  graphapi.NodeID
}

type idsReply struct {
	IDs []graphapi.NodeID
}

// ServerConfig parameterizes one cluster server.
type ServerConfig struct {
	// ID is this server's index in [0, NumServers).
	ID int
	// NumServers is the cluster size.
	NumServers int
	// ShardsPerServer is the store's shard count (paper: one per core).
	ShardsPerServer int
	// SamplingRate is Succinct's α.
	SamplingRate int
	// Medium simulates this server's storage (nil = unlimited).
	Medium *memsim.Medium
	// LogStoreThreshold triggers local LogStore rollover.
	LogStoreThreshold int64
	// Codec selects the store's region-codec policy (zero = auto).
	Codec bitutil.CodecPolicy
	// AutoTuneAlpha lets local compactions retune per-shard α from
	// accumulated read counts.
	AutoTuneAlpha bool
	// DisableGroupCommit makes every append take the store lock
	// individually instead of batching through the group committer.
	DisableGroupCommit bool
	// BackgroundCompaction moves rollover compression off the write
	// path onto this server's background worker. Implied by
	// CompactInterval or CompactAfterRollovers.
	BackgroundCompaction bool
	// CompactInterval, when positive, runs a full online compaction of
	// this server's store every interval.
	CompactInterval time.Duration
	// CompactAfterRollovers, when positive, runs a full online
	// compaction once that many local rollovers have accumulated.
	CompactAfterRollovers int
}

// Server is one ZipG cluster server: a partition store plus the
// aggregator endpoint.
type Server struct {
	cfg   ServerConfig
	store *store.Store
	temp  *temporal.Engine
	rpc   *rpc.Server
	addr  string

	peerMu sync.Mutex
	peers  []*rpc.Client // lazily dialed, indexed by server ID
	addrs  []string
}

// NewServer builds a server over its partition of the graph. nodes and
// edges must already be filtered to this server's partition (every
// node ID n with OwnerOf(n) == cfg.ID, and every edge whose Src it
// owns).
func NewServer(nodes []layout.Node, edges []layout.Edge, nodeSchema, edgeSchema *layout.PropertySchema, cfg ServerConfig) (*Server, error) {
	st, err := store.New(nodes, edges, nodeSchema, edgeSchema, store.Config{
		NumShards:             cfg.ShardsPerServer,
		SamplingRate:          cfg.SamplingRate,
		Medium:                cfg.Medium,
		LogStoreThreshold:     cfg.LogStoreThreshold,
		Codec:                 cfg.Codec,
		AutoTuneAlpha:         cfg.AutoTuneAlpha,
		DisableGroupCommit:    cfg.DisableGroupCommit,
		BackgroundCompaction:  cfg.BackgroundCompaction,
		CompactInterval:       cfg.CompactInterval,
		CompactAfterRollovers: cfg.CompactAfterRollovers,
	})
	if err != nil {
		return nil, fmt.Errorf("cluster: server %d: %w", cfg.ID, err)
	}
	s := &Server{cfg: cfg, store: st, temp: temporal.NewEngine(st), rpc: rpc.NewServer()}
	s.rpc.SetServerID(cfg.ID) // serve spans report which server they ran on
	s.registerHandlers()
	s.registerMultiLevel()
	s.registerTemporal()
	// The admin mux serves this store's codec/α state at /debug/codecs.
	telemetry.RegisterAdminReport("codecs", func() string {
		return store.FormatCodecReport(st.CodecReport())
	})
	return s, nil
}

// Listen binds the server and returns its address.
func (s *Server) Listen(addr string) (string, error) {
	bound, err := s.rpc.Listen(addr)
	if err != nil {
		return "", err
	}
	s.addr = bound
	return bound, nil
}

// ConnectPeers supplies every server's address (including this one's)
// so the aggregator can ship subqueries.
func (s *Server) ConnectPeers(addrs []string) {
	s.peerMu.Lock()
	defer s.peerMu.Unlock()
	s.addrs = append([]string(nil), addrs...)
	s.peers = make([]*rpc.Client, len(addrs))
}

// peer returns a connection to server id, dialing lazily.
func (s *Server) peer(id int) (*rpc.Client, error) {
	s.peerMu.Lock()
	defer s.peerMu.Unlock()
	if s.peers[id] == nil {
		c, err := rpc.Dial(s.addrs[id])
		if err != nil {
			return nil, err
		}
		s.peers[id] = c
	}
	return s.peers[id], nil
}

// Close shuts the server down, stopping the store's background
// compaction worker (if any) after the RPC surface is gone.
func (s *Server) Close() {
	s.rpc.Close()
	s.peerMu.Lock()
	for _, p := range s.peers {
		if p != nil {
			p.Close()
		}
	}
	s.peerMu.Unlock()
	s.store.Close()
}

// Store exposes the underlying partition store (for tests and stats).
func (s *Server) Store() *store.Store { return s.store }

func (s *Server) registerHandlers() {
	s.rpc.Handle("NodeProps", func(ctx context.Context, blob []byte) (any, error) {
		var a nodePropsArgs
		if err := rpc.DecodeArgsCtx(ctx, blob, &a); err != nil {
			return nil, err
		}
		// The store read becomes a child span with its own fine-grained
		// logstore/succinct_walk phase split.
		vals, ok := s.store.GetNodePropsCtx(ctx, a.ID, a.PIDs)
		return nodePropsReply{Vals: vals, OK: ok}, nil
	})
	s.rpc.Handle("MatchBatch", func(ctx context.Context, blob []byte) (any, error) {
		var a matchBatchArgs
		if err := rpc.DecodeArgsCtx(ctx, blob, &a); err != nil {
			return nil, err
		}
		// A shipped batch checks many independent nodes; the store's
		// vectorized matcher resolves the whole batch in one
		// locality-sorted pass over the compressed shards (per-shard
		// groups still fan out on the shared pool inside). The whole
		// batch is one succinct_walk phase on the serve span.
		defer telemetry.PhaseFromContext(ctx, "succinct_walk")()
		if telemetry.Enabled() {
			mBatchRequestsCluster.Add(int64(len(a.IDs)))
		}
		return s.store.NodeMatchesBatch(a.IDs, a.Props), nil
	})
	s.rpc.Handle("FindNodes", func(ctx context.Context, blob []byte) (any, error) {
		var a propsArgs
		if err := rpc.DecodeArgsCtx(ctx, blob, &a); err != nil {
			return nil, err
		}
		defer telemetry.PhaseFromContext(ctx, "succinct_walk")()
		return idsReply{IDs: s.store.FindNodes(a.Props)}, nil
	})
	s.rpc.Handle("Neighbors", func(ctx context.Context, blob []byte) (any, error) {
		var a neighborsArgs
		if err := rpc.DecodeArgsCtx(ctx, blob, &a); err != nil {
			return nil, err
		}
		ids, err := s.neighborsCtx(ctx, a.ID, a.EType, a.Props)
		return idsReply{IDs: ids}, err
	})
	s.rpc.Handle("RecMeta", func(ctx context.Context, blob []byte) (any, error) {
		var a recArgs
		if err := rpc.DecodeArgsCtx(ctx, blob, &a); err != nil {
			return nil, err
		}
		defer telemetry.PhaseFromContext(ctx, "succinct_walk")()
		rec, ok := s.store.GetEdgeRecord(a.ID, a.EType)
		if !ok {
			return recMetaReply{}, nil
		}
		return recMetaReply{Count: rec.Count(), OK: true}, nil
	})
	s.rpc.Handle("RecsMeta", func(ctx context.Context, blob []byte) (any, error) {
		var a recArgs
		if err := rpc.DecodeArgsCtx(ctx, blob, &a); err != nil {
			return nil, err
		}
		defer telemetry.PhaseFromContext(ctx, "succinct_walk")()
		var reply recsMetaReply
		for _, rec := range s.store.GetEdgeRecords(a.ID) {
			reply.Types = append(reply.Types, rec.Type)
			reply.Counts = append(reply.Counts, rec.Count())
		}
		return reply, nil
	})
	s.rpc.Handle("RecRange", func(ctx context.Context, blob []byte) (any, error) {
		var a recRangeArgs
		if err := rpc.DecodeArgsCtx(ctx, blob, &a); err != nil {
			return nil, err
		}
		defer telemetry.PhaseFromContext(ctx, "succinct_walk")()
		rec, ok := s.store.GetEdgeRecord(a.ID, a.EType)
		if !ok {
			return rangeReply{}, nil
		}
		beg, end := rec.GetEdgeRange(a.Lo, a.Hi)
		return rangeReply{Beg: beg, End: end}, nil
	})
	s.rpc.Handle("RecData", func(ctx context.Context, blob []byte) (any, error) {
		var a recDataArgs
		if err := rpc.DecodeArgsCtx(ctx, blob, &a); err != nil {
			return nil, err
		}
		defer telemetry.PhaseFromContext(ctx, "succinct_walk")()
		rec, ok := s.store.GetEdgeRecord(a.ID, a.EType)
		if !ok {
			return nil, fmt.Errorf("cluster: no record (%d,%d)", a.ID, a.EType)
		}
		d, err := rec.GetEdgeData(a.Order)
		if err != nil {
			return nil, err
		}
		return edgeDataReply{Dst: d.Dst, Ts: d.Timestamp, Props: d.Props}, nil
	})
	s.rpc.Handle("RecDsts", func(ctx context.Context, blob []byte) (any, error) {
		var a recArgs
		if err := rpc.DecodeArgsCtx(ctx, blob, &a); err != nil {
			return nil, err
		}
		defer telemetry.PhaseFromContext(ctx, "succinct_walk")()
		rec, ok := s.store.GetEdgeRecord(a.ID, a.EType)
		if !ok {
			return idsReply{}, nil
		}
		return idsReply{IDs: rec.Destinations()}, nil
	})
	s.rpc.Handle("AppendNode", func(ctx context.Context, blob []byte) (any, error) {
		var a appendNodeArgs
		if err := rpc.DecodeArgsCtx(ctx, blob, &a); err != nil {
			return nil, err
		}
		defer telemetry.PhaseFromContext(ctx, "logstore")()
		return true, s.store.AppendNode(a.ID, a.Props)
	})
	s.rpc.Handle("AppendEdge", func(ctx context.Context, blob []byte) (any, error) {
		var e layout.Edge
		if err := rpc.DecodeArgsCtx(ctx, blob, &e); err != nil {
			return nil, err
		}
		defer telemetry.PhaseFromContext(ctx, "logstore")()
		return true, s.store.AppendEdge(e)
	})
	s.rpc.Handle("DeleteNode", func(ctx context.Context, blob []byte) (any, error) {
		var id graphapi.NodeID
		if err := rpc.DecodeArgsCtx(ctx, blob, &id); err != nil {
			return nil, err
		}
		defer telemetry.PhaseFromContext(ctx, "logstore")()
		s.store.DeleteNode(id)
		return true, nil
	})
	s.rpc.Handle("DeleteEdges", func(ctx context.Context, blob []byte) (any, error) {
		var a deleteEdgesArgs
		if err := rpc.DecodeArgsCtx(ctx, blob, &a); err != nil {
			return nil, err
		}
		defer telemetry.PhaseFromContext(ctx, "logstore")()
		return s.store.DeleteEdges(a.Src, a.Type, a.Dst), nil
	})
}

// neighborsCtx executes get_neighbor_ids at the owner: destinations
// come from the local edge records; property/liveness checks for remote
// neighbors are shipped in one batch per owning server (Figure 4's
// "Carol & Dan's cities?" fan-out). ctx carries the caller's trace (the
// serve span when the query arrived over RPC), so the fan-out's
// MatchBatch calls become traced children on the remote servers.
func (s *Server) neighborsCtx(ctx context.Context, id graphapi.NodeID, etype graphapi.EdgeType, props map[string]string) (_ []graphapi.NodeID, retErr error) {
	mNeighborQueries.Inc()
	sp, ctx := telemetry.StartSpanCtx(ctx, "cluster.neighbors")
	sp.SetServer(s.cfg.ID)
	defer func() {
		if retErr != nil {
			sp.SetError(retErr)
			if sp == nil {
				telemetry.RecordErrorSpan("cluster.neighbors", time.Time{}, retErr)
			}
		}
		sp.End()
	}()
	// Reading the edge records and their destination lists is the local
	// Ψ-walk part of the query.
	endWalk := sp.Phase("succinct_walk")
	var records []*store.EdgeRecord
	if etype < 0 {
		records = s.store.GetEdgeRecords(id)
	} else if rec, ok := s.store.GetEdgeRecord(id, etype); ok {
		records = []*store.EdgeRecord{rec}
	}
	if len(records) == 0 {
		endWalk()
		return nil, nil
	}
	seen := make(map[graphapi.NodeID]bool)
	perOwner := make(map[int][]graphapi.NodeID)
	var dups int64
	for _, rec := range records {
		for _, dst := range rec.Destinations() {
			if seen[dst] {
				dups++
				continue
			}
			seen[dst] = true
			perOwner[OwnerOf(dst, s.cfg.NumServers)] = append(perOwner[OwnerOf(dst, s.cfg.NumServers)], dst)
		}
	}
	// Sort each owner's candidates: sorted IDs group co-located shard
	// records into runs, which the batch executor turns into one
	// locality-ordered sweep per shard — and shipped batches become
	// deterministic on the wire.
	for _, ids := range perOwner {
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	}
	endWalk()
	if telemetry.Enabled() {
		mBatchDedup.Add(dups)
		localIDs, remoteIDs, remoteOwners := 0, 0, 0
		for owner, ids := range perOwner {
			if owner == s.cfg.ID {
				localIDs += len(ids)
				mSubqLocal.Inc()
			} else {
				remoteIDs += len(ids)
				remoteOwners++
				mSubqRemote.Inc()
			}
		}
		mFanout.Observe(int64(remoteOwners))
		sp.SetFanout(remoteOwners, localIDs, remoteIDs)
	}
	// Ship every remote batch first so RPC round trips are in flight
	// while the local subquery runs on the shared pool — the aggregator
	// overlap of §4.1 (remote owners work in parallel with this server).
	var out []graphapi.NodeID
	var mu sync.Mutex
	var wg sync.WaitGroup
	errCh := make(chan error, len(perOwner))
	for owner, ids := range perOwner {
		if owner == s.cfg.ID {
			continue
		}
		wg.Add(1)
		go func(owner int, ids []graphapi.NodeID) {
			defer wg.Done()
			peer, err := s.peer(owner)
			if err != nil {
				errCh <- err
				return
			}
			// CallCtx gives each shipped batch its own rpc.call child
			// span (safe concurrently — phases land on the child, never
			// on the shared parent) and re-propagates the deadline.
			var matches []bool
			if err := peer.CallCtx(ctx, "MatchBatch", matchBatchArgs{IDs: ids, Props: props}, &matches); err != nil {
				errCh <- err
				return
			}
			mu.Lock()
			for i, ok := range matches {
				if ok {
					out = append(out, ids[i])
				}
			}
			mu.Unlock()
		}(owner, ids)
	}
	if local := perOwner[s.cfg.ID]; len(local) > 0 {
		// One phase for the whole local batch, which the store's
		// vectorized matcher resolves in a single locality-sorted pass.
		endLocal := sp.Phase("succinct_walk")
		if telemetry.Enabled() {
			mBatchRequestsCluster.Add(int64(len(local)))
		}
		matches := s.store.NodeMatchesBatch(local, props)
		endLocal()
		mu.Lock()
		for i, ok := range matches {
			if ok {
				out = append(out, local[i])
			}
		}
		mu.Unlock()
	}
	wg.Wait()
	select {
	case err := <-errCh:
		return nil, err
	default:
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}
