// Package refgraph is a deliberately naive in-memory property graph that
// implements the shared store interface with obvious O(n) algorithms. It
// exists as the ground truth for conformance tests: ZipG and both
// baselines must agree with it on every query, which is what licenses
// the throughput comparisons between them.
package refgraph

import (
	"fmt"
	"sort"
	"sync"

	"zipg/internal/graphapi"
)

type edge struct {
	etype graphapi.EdgeType
	dst   graphapi.NodeID
	ts    int64
	seq   int // insertion order, for stable ts ties
	props map[string]string
}

// Graph is the reference implementation.
type Graph struct {
	mu    sync.RWMutex
	nodes map[graphapi.NodeID]map[string]string
	edges map[graphapi.NodeID][]edge
	seq   int
}

// Compile-time check.
var _ graphapi.Store = (*Graph)(nil)

// New builds the reference graph.
func New(nodes []graphapi.Node, edges []graphapi.Edge) *Graph {
	g := &Graph{
		nodes: make(map[graphapi.NodeID]map[string]string),
		edges: make(map[graphapi.NodeID][]edge),
	}
	for _, n := range nodes {
		g.AppendNode(n.ID, n.Props)
	}
	for _, e := range edges {
		g.AppendEdge(e)
	}
	return g
}

// AppendNode implements graphapi.Store.
func (g *Graph) AppendNode(id graphapi.NodeID, props map[string]string) error {
	if id < 0 {
		return fmt.Errorf("refgraph: negative node ID")
	}
	cp := make(map[string]string, len(props))
	for k, v := range props {
		if v != "" { // empty values are equivalent to absent properties
			cp[k] = v
		}
	}
	g.mu.Lock()
	g.nodes[id] = cp
	g.mu.Unlock()
	return nil
}

// AppendEdge implements graphapi.Store.
func (g *Graph) AppendEdge(e graphapi.Edge) error {
	if e.Src < 0 || e.Dst < 0 || e.Type < 0 || e.Timestamp < 0 {
		return fmt.Errorf("refgraph: negative field")
	}
	cp := make(map[string]string, len(e.Props))
	for k, v := range e.Props {
		if v != "" {
			cp[k] = v
		}
	}
	if len(cp) == 0 {
		cp = nil
	}
	g.mu.Lock()
	// Endpoints are auto-created with empty property lists (the shared
	// semantics: Neo4j and Titan auto-create, and ZipG's store follows).
	for _, id := range []graphapi.NodeID{e.Src, e.Dst} {
		if _, ok := g.nodes[id]; !ok {
			g.nodes[id] = map[string]string{}
		}
	}
	g.seq++
	g.edges[e.Src] = append(g.edges[e.Src], edge{e.Type, e.Dst, e.Timestamp, g.seq, cp})
	g.mu.Unlock()
	return nil
}

// DeleteNode implements graphapi.Store.
func (g *Graph) DeleteNode(id graphapi.NodeID) error {
	g.mu.Lock()
	delete(g.nodes, id)
	g.mu.Unlock()
	return nil
}

// DeleteEdges implements graphapi.Store.
func (g *Graph) DeleteEdges(src graphapi.NodeID, etype graphapi.EdgeType, dst graphapi.NodeID) (int, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	es := g.edges[src]
	kept := es[:0]
	removed := 0
	for _, e := range es {
		if e.etype == etype && e.dst == dst {
			removed++
			continue
		}
		kept = append(kept, e)
	}
	g.edges[src] = kept
	return removed, nil
}

// GetNodeProperty implements graphapi.Store.
func (g *Graph) GetNodeProperty(id graphapi.NodeID, propertyIDs []string) ([]string, bool) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	props, ok := g.nodes[id]
	if !ok {
		return nil, false
	}
	if len(propertyIDs) == 0 {
		keys := make([]string, 0, len(props))
		for k := range props {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		propertyIDs = keys
	}
	out := make([]string, len(propertyIDs))
	for i, pid := range propertyIDs {
		out[i] = props[pid]
	}
	return out, true
}

// GetNodeIDs implements graphapi.Store.
func (g *Graph) GetNodeIDs(props map[string]string) []graphapi.NodeID {
	if len(props) == 0 {
		return nil
	}
	g.mu.RLock()
	defer g.mu.RUnlock()
	var out []graphapi.NodeID
	for id, np := range g.nodes {
		match := true
		for k, v := range props {
			if np[k] != v {
				match = false
				break
			}
		}
		if match {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// liveEdges returns src's edges of etype (<0 = all) sorted by (ts, seq),
// only if src is live.
func (g *Graph) liveEdges(src graphapi.NodeID, etype graphapi.EdgeType) ([]edge, bool) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	if _, ok := g.nodes[src]; !ok {
		return nil, false
	}
	var out []edge
	for _, e := range g.edges[src] {
		if etype < 0 || e.etype == etype {
			out = append(out, e)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].ts != out[j].ts {
			return out[i].ts < out[j].ts
		}
		return out[i].seq < out[j].seq
	})
	return out, true
}

// GetNeighborIDs implements graphapi.Store.
func (g *Graph) GetNeighborIDs(id graphapi.NodeID, etype graphapi.EdgeType, props map[string]string) []graphapi.NodeID {
	es, ok := g.liveEdges(id, etype)
	if !ok {
		return nil
	}
	g.mu.RLock()
	defer g.mu.RUnlock()
	seen := make(map[graphapi.NodeID]bool)
	var out []graphapi.NodeID
	for _, e := range es {
		if seen[e.dst] {
			continue
		}
		seen[e.dst] = true
		dp, ok := g.nodes[e.dst]
		if !ok {
			continue
		}
		match := true
		for k, v := range props {
			if dp[k] != v {
				match = false
				break
			}
		}
		if match {
			out = append(out, e.dst)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

type record struct{ edges []edge }

func (r *record) Count() int { return len(r.edges) }

func (r *record) Range(tLo, tHi int64) (int, int) {
	tLo, tHi = graphapi.TimeBounds(tLo, tHi)
	beg := sort.Search(len(r.edges), func(i int) bool { return r.edges[i].ts >= tLo })
	end := sort.Search(len(r.edges), func(i int) bool { return r.edges[i].ts >= tHi })
	return beg, end
}

func (r *record) Data(i int) (graphapi.EdgeData, error) {
	if i < 0 || i >= len(r.edges) {
		return graphapi.EdgeData{}, fmt.Errorf("refgraph: time order %d out of range", i)
	}
	e := r.edges[i]
	return graphapi.EdgeData{Dst: e.dst, Timestamp: e.ts, Props: e.props}, nil
}

func (r *record) Destinations() []graphapi.NodeID {
	out := make([]graphapi.NodeID, len(r.edges))
	for i, e := range r.edges {
		out[i] = e.dst
	}
	return out
}

// GetEdgeRecord implements graphapi.Store.
func (g *Graph) GetEdgeRecord(id graphapi.NodeID, etype graphapi.EdgeType) (graphapi.EdgeRecord, bool) {
	es, ok := g.liveEdges(id, etype)
	if !ok || len(es) == 0 {
		return nil, false
	}
	return &record{es}, true
}

// GetEdgeRecords implements graphapi.Store.
func (g *Graph) GetEdgeRecords(id graphapi.NodeID) []graphapi.EdgeRecord {
	es, ok := g.liveEdges(id, -1)
	if !ok {
		return nil
	}
	byType := make(map[graphapi.EdgeType][]edge)
	for _, e := range es {
		byType[e.etype] = append(byType[e.etype], e)
	}
	types := make([]graphapi.EdgeType, 0, len(byType))
	for t := range byType {
		types = append(types, t)
	}
	sort.Slice(types, func(i, j int) bool { return types[i] < types[j] })
	out := make([]graphapi.EdgeRecord, 0, len(types))
	for _, t := range types {
		out = append(out, &record{byType[t]})
	}
	return out
}
