package workloads

import (
	"fmt"
	"math/rand"

	"zipg/internal/gen"
	"zipg/internal/graphapi"
)

// OpKind enumerates the TAO/LinkBench operations (Table 2).
type OpKind int

// The eleven operations of Table 2.
const (
	OpAssocRange OpKind = iota
	OpObjGet
	OpAssocGet
	OpAssocCount
	OpAssocTimeRange
	OpAssocAdd
	OpObjUpdate
	OpObjAdd
	OpAssocDel
	OpObjDel
	OpAssocUpdate
	numOpKinds
)

// String returns the TAO operation name.
func (k OpKind) String() string {
	return [...]string{
		"assoc_range", "obj_get", "assoc_get", "assoc_count",
		"assoc_time_range", "assoc_add", "obj_update", "obj_add",
		"assoc_del", "obj_del", "assoc_update",
	}[k]
}

// Frequencies are per-mille op weights. The two mixes below are the
// exact percentages of Table 2 (scaled ×100 to keep sub-percent ops).
type Frequencies [numOpKinds]int

// TAOMix is Table 2's TAO column: read-dominated (99.8% reads).
var TAOMix = Frequencies{
	OpAssocRange:     4080,
	OpObjGet:         2880,
	OpAssocGet:       1570,
	OpAssocCount:     1170,
	OpAssocTimeRange: 280,
	OpAssocAdd:       10,
	OpObjUpdate:      4,
	OpObjAdd:         3,
	OpAssocDel:       2,
	OpObjDel:         1,
	OpAssocUpdate:    1,
}

// LinkBenchMix is Table 2's LinkBench column: write-heavy (≈31% writes).
var LinkBenchMix = Frequencies{
	OpAssocRange:     5060,
	OpObjGet:         1290,
	OpAssocGet:       52,
	OpAssocCount:     490,
	OpAssocTimeRange: 15,
	OpAssocAdd:       900,
	OpObjUpdate:      740,
	OpObjAdd:         260,
	OpAssocDel:       300,
	OpObjDel:         100,
	OpAssocUpdate:    800,
}

// Op is one pre-generated operation, ready to execute against any store.
type Op struct {
	Kind  OpKind
	ID    graphapi.NodeID
	AType graphapi.EdgeType
	Idx   int
	Limit int
	Lo    int64
	Hi    int64
	ID2   map[graphapi.NodeID]bool
	Props map[string]string
	Edge  graphapi.Edge
}

// MixConfig parameterizes operation generation.
type MixConfig struct {
	Mix Frequencies
	// AccessSkew is the Zipf exponent for node selection (0/1 = uniform).
	// LinkBench uses a strong skew (§5.2).
	AccessSkew float64
	Seed       int64
}

// GenerateOps pre-generates n operations over the dataset. Operations
// are generated, not sampled live, so each system executes the identical
// sequence.
func GenerateOps(d *gen.Dataset, cfg MixConfig, n int) []Op {
	rng := rand.New(rand.NewSource(cfg.Seed))
	access := gen.NewAccess(cfg.Seed+1, d.NumNodes(), cfg.AccessSkew)
	total := 0
	for _, w := range cfg.Mix {
		total += w
	}
	if total == 0 {
		panic("workloads: empty mix")
	}
	nTypes := d.Spec.NumEdgeTypes
	if nTypes <= 0 {
		nTypes = 5
	}
	nextID := int64(d.NumNodes()) + 1_000_000 // fresh IDs for obj_add
	ops := make([]Op, n)
	for i := range ops {
		r := rng.Intn(total)
		var kind OpKind
		for k, w := range cfg.Mix {
			if r < w {
				kind = OpKind(k)
				break
			}
			r -= w
		}
		op := Op{Kind: kind, ID: access.Next(), AType: int64(rng.Intn(nTypes))}
		switch kind {
		case OpAssocRange:
			op.Idx = rng.Intn(8)
			op.Limit = 1 + rng.Intn(32)
		case OpAssocGet:
			op.Lo, op.Hi = randTimeRange(rng)
			op.ID2 = map[graphapi.NodeID]bool{}
			for j := 0; j < 4; j++ {
				op.ID2[int64(rng.Intn(d.NumNodes()))] = true
			}
		case OpAssocTimeRange:
			op.Lo, op.Hi = randTimeRange(rng)
			op.Limit = 1 + rng.Intn(32)
		case OpObjAdd:
			op.ID = nextID
			nextID++
			op.Props = sampleProps(d, rng)
		case OpObjUpdate:
			op.Props = sampleProps(d, rng)
		case OpAssocAdd, OpAssocUpdate:
			op.Edge = graphapi.Edge{
				Src:       op.ID,
				Dst:       int64(rng.Intn(d.NumNodes())),
				Type:      op.AType,
				Timestamp: randTimestamp(rng),
				Props:     map[string]string{"edgedata": d.SampleValue(rng, "edgedata")},
			}
		case OpAssocDel:
			op.Edge = graphapi.Edge{Src: op.ID, Dst: int64(rng.Intn(d.NumNodes())), Type: op.AType}
		}
		ops[i] = op
	}
	return ops
}

func sampleProps(d *gen.Dataset, rng *rand.Rand) map[string]string {
	props := make(map[string]string)
	for _, pid := range d.PropertyIDs() {
		props[pid] = d.SampleValue(rng, pid)
	}
	return props
}

func randTimestamp(rng *rand.Rand) int64 {
	return 1_400_000_000 + rng.Int63n(50*24*3600)
}

func randTimeRange(rng *rand.Rand) (int64, int64) {
	lo := randTimestamp(rng)
	return lo, lo + rng.Int63n(5*24*3600)
}

// Execute runs one operation, returning a result cardinality (for
// sanity checks) and an error.
func Execute(s graphapi.Store, op Op) (int, error) {
	t := TAO{S: s}
	switch op.Kind {
	case OpAssocRange:
		res, err := t.AssocRange(op.ID, op.AType, op.Idx, op.Limit)
		return len(res), err
	case OpObjGet:
		vals, _ := t.ObjGet(op.ID)
		return len(vals), nil
	case OpAssocGet:
		res, err := t.AssocGet(op.ID, op.AType, op.ID2, op.Lo, op.Hi)
		return len(res), err
	case OpAssocCount:
		return t.AssocCount(op.ID, op.AType), nil
	case OpAssocTimeRange:
		res, err := t.AssocTimeRange(op.ID, op.AType, op.Lo, op.Hi, op.Limit)
		return len(res), err
	case OpAssocAdd:
		return 1, t.AssocAdd(op.Edge)
	case OpObjUpdate:
		return 1, t.ObjUpdate(op.ID, op.Props)
	case OpObjAdd:
		return 1, t.ObjAdd(op.ID, op.Props)
	case OpAssocDel:
		return 1, t.AssocDel(op.Edge.Src, op.Edge.Type, op.Edge.Dst)
	case OpObjDel:
		return 1, t.ObjDel(op.ID)
	case OpAssocUpdate:
		return 1, t.AssocUpdate(op.Edge)
	}
	return 0, fmt.Errorf("workloads: unknown op kind %d", op.Kind)
}

// FilterKind returns only the ops of one kind (for the per-query
// breakdowns of Figures 6–8).
func FilterKind(ops []Op, kind OpKind) []Op {
	var out []Op
	for _, op := range ops {
		if op.Kind == kind {
			out = append(out, op)
		}
	}
	return out
}
