// Package workloads implements the paper's evaluation workloads — the
// Facebook TAO and LinkBench query sets (Table 2, Algorithms 1–3) and
// the Graph Search queries (Table 3) — on top of the shared store
// interface, exactly as §4.2 implements them on ZipG's API. Because the
// drivers are interface-generic, the same workload runs unchanged over
// ZipG, the Neo4j-like baseline and the Titan-like baseline.
package workloads

import (
	"fmt"

	"zipg/internal/graphapi"
)

// TAO executes TAO/LinkBench operations over any graph store. Nodes and
// edges correspond to TAO's objects and associations (footnote 6).
type TAO struct {
	S graphapi.Store
}

// AssocRange is Algorithm 1: at most limit edges with source id and type
// atype, ordered by timestamp, starting at TimeOrder idx.
func (t TAO) AssocRange(id graphapi.NodeID, atype graphapi.EdgeType, idx, limit int) ([]graphapi.EdgeData, error) {
	rec, ok := t.S.GetEdgeRecord(id, atype)
	if !ok {
		return nil, nil
	}
	var results []graphapi.EdgeData
	end := idx + limit
	if end > rec.Count() {
		end = rec.Count()
	}
	for i := idx; i < end; i++ {
		if i < 0 {
			continue
		}
		e, err := rec.Data(i)
		if err != nil {
			return nil, fmt.Errorf("assoc_range(%d,%d): %w", id, atype, err)
		}
		results = append(results, e)
	}
	return results, nil
}

// AssocGet is Algorithm 2: all edges with source id1, type atype,
// timestamp in [lo, hi), and destination in id2set.
func (t TAO) AssocGet(id1 graphapi.NodeID, atype graphapi.EdgeType, id2set map[graphapi.NodeID]bool, lo, hi int64) ([]graphapi.EdgeData, error) {
	rec, ok := t.S.GetEdgeRecord(id1, atype)
	if !ok {
		return nil, nil
	}
	beg, end := rec.Range(lo, hi)
	var results []graphapi.EdgeData
	for i := beg; i < end; i++ {
		e, err := rec.Data(i)
		if err != nil {
			return nil, fmt.Errorf("assoc_get(%d,%d): %w", id1, atype, err)
		}
		if id2set[e.Dst] {
			results = append(results, e)
		}
	}
	return results, nil
}

// AssocCount returns the number of edges with source id and type atype —
// in ZipG a pure metadata read (EdgeCount, §4.2).
func (t TAO) AssocCount(id graphapi.NodeID, atype graphapi.EdgeType) int {
	rec, ok := t.S.GetEdgeRecord(id, atype)
	if !ok {
		return 0
	}
	return rec.Count()
}

// AssocTimeRange is Algorithm 3: at most limit edges with source id,
// type atype and timestamps in [lo, hi).
func (t TAO) AssocTimeRange(id graphapi.NodeID, atype graphapi.EdgeType, lo, hi int64, limit int) ([]graphapi.EdgeData, error) {
	rec, ok := t.S.GetEdgeRecord(id, atype)
	if !ok {
		return nil, nil
	}
	beg, end := rec.Range(lo, hi)
	if beg+limit < end {
		end = beg + limit
	}
	var results []graphapi.EdgeData
	for i := beg; i < end; i++ {
		e, err := rec.Data(i)
		if err != nil {
			return nil, fmt.Errorf("assoc_time_range(%d,%d): %w", id, atype, err)
		}
		results = append(results, e)
	}
	return results, nil
}

// ObjGet returns all properties of an object (get_node_property(id, *)).
func (t TAO) ObjGet(id graphapi.NodeID) ([]string, bool) {
	return t.S.GetNodeProperty(id, nil)
}

// ObjGetBatch answers ObjGet for every id in one pass. Stores that
// implement graphapi.BatchStore serve the whole batch through their
// vectorized read path; others get a scalar loop with identical results.
func (t TAO) ObjGetBatch(ids []graphapi.NodeID) ([][]string, []bool) {
	if bs, ok := t.S.(graphapi.BatchStore); ok {
		return bs.ObjGetBatch(ids)
	}
	vals := make([][]string, len(ids))
	oks := make([]bool, len(ids))
	for i, id := range ids {
		vals[i], oks[i] = t.S.GetNodeProperty(id, nil)
	}
	return vals, oks
}

// AssocRangeBatch answers AssocRange for every request in one pass,
// through graphapi.BatchStore when the store provides it and a scalar
// loop otherwise.
func (t TAO) AssocRangeBatch(reqs []graphapi.AssocRangeReq) ([][]graphapi.EdgeData, error) {
	if bs, ok := t.S.(graphapi.BatchStore); ok {
		return bs.AssocRangeBatch(reqs)
	}
	out := make([][]graphapi.EdgeData, len(reqs))
	for i, req := range reqs {
		data, err := t.AssocRange(req.ID, req.Type, req.Idx, req.Limit)
		if err != nil {
			return nil, err
		}
		out[i] = data
	}
	return out, nil
}

// ObjAdd creates an object.
func (t TAO) ObjAdd(id graphapi.NodeID, props map[string]string) error {
	return t.S.AppendNode(id, props)
}

// ObjUpdate replaces an object's properties (delete followed by append,
// Table 2).
func (t TAO) ObjUpdate(id graphapi.NodeID, props map[string]string) error {
	return t.S.AppendNode(id, props)
}

// ObjDel deletes an object.
func (t TAO) ObjDel(id graphapi.NodeID) error {
	return t.S.DeleteNode(id)
}

// AssocAdd creates an association.
func (t TAO) AssocAdd(e graphapi.Edge) error {
	return t.S.AppendEdge(e)
}

// AssocDel deletes an association.
func (t TAO) AssocDel(src graphapi.NodeID, atype graphapi.EdgeType, dst graphapi.NodeID) error {
	_, err := t.S.DeleteEdges(src, atype, dst)
	return err
}

// AssocUpdate replaces an association (delete followed by append).
func (t TAO) AssocUpdate(e graphapi.Edge) error {
	if _, err := t.S.DeleteEdges(e.Src, e.Type, e.Dst); err != nil {
		return err
	}
	return t.S.AppendEdge(e)
}
