package workloads

import (
	"math/rand"
	"sort"

	"zipg/internal/gen"
	"zipg/internal/graphapi"
)

// Graph Search queries (Table 3). p1 and p2 are node properties; id and
// etype are a node ID and an edge type. Each maps to the store API
// exactly as the table specifies.

// GS1 returns all friends of a node: get_neighbor_ids(id, *, *).
func GS1(s graphapi.Store, id graphapi.NodeID) []graphapi.NodeID {
	return s.GetNeighborIDs(id, graphapi.WildcardType, nil)
}

// GS2 returns a node's friends with a given property:
// get_neighbor_ids(id, *, {p1}).
func GS2(s graphapi.Store, id graphapi.NodeID, p1 map[string]string) []graphapi.NodeID {
	return s.GetNeighborIDs(id, graphapi.WildcardType, p1)
}

// GS3 returns nodes matching two properties: get_node_ids({p1, p2}).
func GS3(s graphapi.Store, props map[string]string) []graphapi.NodeID {
	return s.GetNodeIDs(props)
}

// GS4 returns a node's neighbors along one type:
// get_neighbor_ids(id, type, *).
func GS4(s graphapi.Store, id graphapi.NodeID, etype graphapi.EdgeType) []graphapi.NodeID {
	return s.GetNeighborIDs(id, etype, nil)
}

// GS5 returns all data on a node's typed edges: assoc_range(id, type,
// 0, *).
func GS5(s graphapi.Store, id graphapi.NodeID, etype graphapi.EdgeType) []graphapi.EdgeData {
	rec, ok := s.GetEdgeRecord(id, etype)
	if !ok {
		return nil
	}
	out := make([]graphapi.EdgeData, 0, rec.Count())
	for i := 0; i < rec.Count(); i++ {
		e, err := rec.Data(i)
		if err != nil {
			break
		}
		out = append(out, e)
	}
	return out
}

// GS2Join executes GS2 as a join (Appendix B.3): all neighbors ∩ all
// nodes with the property. The cardinalities of the two sides are what
// make this slower than the filter plan.
func GS2Join(s graphapi.Store, id graphapi.NodeID, p1 map[string]string) []graphapi.NodeID {
	return intersect(s.GetNeighborIDs(id, graphapi.WildcardType, nil), s.GetNodeIDs(p1))
}

// GS3Join executes GS3 as a join of the two single-property result sets.
func GS3Join(s graphapi.Store, p1, p2 map[string]string) []graphapi.NodeID {
	return intersect(s.GetNodeIDs(p1), s.GetNodeIDs(p2))
}

// intersect merges two ascending ID lists.
func intersect(a, b []graphapi.NodeID) []graphapi.NodeID {
	var out []graphapi.NodeID
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

// GSKind enumerates the five Graph Search queries.
type GSKind int

// The five queries of Table 3.
const (
	KindGS1 GSKind = iota
	KindGS2
	KindGS3
	KindGS4
	KindGS5
	numGSKinds
)

// String returns the query name.
func (k GSKind) String() string {
	return [...]string{"GS1", "GS2", "GS3", "GS4", "GS5"}[k]
}

// GSOp is one pre-generated Graph Search query ("all queries occur in
// equal proportion in the workload", Table 3).
type GSOp struct {
	Kind  GSKind
	ID    graphapi.NodeID
	EType graphapi.EdgeType
	P1    map[string]string
	P2    map[string]string
}

// GenerateGSOps pre-generates n Graph Search queries over the dataset.
func GenerateGSOps(d *gen.Dataset, seed int64, n int) []GSOp {
	rng := rand.New(rand.NewSource(seed))
	pids := d.PropertyIDs()
	nTypes := d.Spec.NumEdgeTypes
	if nTypes <= 0 {
		nTypes = 5
	}
	sampleProp := func() map[string]string {
		pid := pids[rng.Intn(len(pids))]
		return map[string]string{pid: d.SampleValue(rng, pid)}
	}
	ops := make([]GSOp, n)
	for i := range ops {
		op := GSOp{
			Kind:  GSKind(i % int(numGSKinds)), // equal proportion
			ID:    int64(rng.Intn(d.NumNodes())),
			EType: int64(rng.Intn(nTypes)),
			P1:    sampleProp(),
		}
		op.P2 = sampleProp()
		for samePropertyID(op.P1, op.P2) {
			op.P2 = sampleProp()
		}
		ops[i] = op
	}
	// Shuffle so kinds interleave.
	rng.Shuffle(len(ops), func(i, j int) { ops[i], ops[j] = ops[j], ops[i] })
	return ops
}

func samePropertyID(a, b map[string]string) bool {
	for k := range a {
		if _, ok := b[k]; ok {
			return true
		}
	}
	return false
}

// ExecuteGS runs one Graph Search query, with joins if useJoins is set
// (GS2/GS3 only; the others have no join plan). Returns the result
// cardinality.
func ExecuteGS(s graphapi.Store, op GSOp, useJoins bool) int {
	switch op.Kind {
	case KindGS1:
		return len(GS1(s, op.ID))
	case KindGS2:
		if useJoins {
			return len(GS2Join(s, op.ID, op.P1))
		}
		return len(GS2(s, op.ID, op.P1))
	case KindGS3:
		props := map[string]string{}
		for k, v := range op.P1 {
			props[k] = v
		}
		for k, v := range op.P2 {
			props[k] = v
		}
		if useJoins {
			return len(GS3Join(s, op.P1, op.P2))
		}
		return len(GS3(s, props))
	case KindGS4:
		return len(GS4(s, op.ID, op.EType))
	case KindGS5:
		return len(GS5(s, op.ID, op.EType))
	}
	return 0
}

// FilterGSKind returns only the queries of one kind.
func FilterGSKind(ops []GSOp, kind GSKind) []GSOp {
	var out []GSOp
	for _, op := range ops {
		if op.Kind == kind {
			out = append(out, op)
		}
	}
	return out
}

// SortIDs sorts a node-ID slice ascending (helper shared by drivers).
func SortIDs(ids []graphapi.NodeID) {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
}
