package workloads

import (
	"reflect"
	"testing"

	"zipg"
	"zipg/internal/gen"
	"zipg/internal/graphapi"
	"zipg/internal/refgraph"
)

func testDataset(t testing.TB) *gen.Dataset {
	t.Helper()
	return gen.DatasetSpec{
		Name: "wl", Kind: gen.RealWorld, TargetBytes: 120_000,
		AvgDegree: 8, NumEdgeTypes: 3, Seed: 31,
	}.Generate()
}

func testStores(t testing.TB, d *gen.Dataset) (graphapi.Store, graphapi.Store) {
	t.Helper()
	g, err := zipg.Compress(zipg.GraphData{Nodes: d.Nodes, Edges: d.Edges}, zipg.Options{SamplingRate: 8})
	if err != nil {
		t.Fatal(err)
	}
	return g, refgraph.New(d.Nodes, d.Edges)
}

func TestMixFrequenciesMatchTable2(t *testing.T) {
	// The mixes must sum to 100% and preserve Table 2's ordering facts:
	// TAO is read-dominated, LinkBench write-heavy.
	sum := func(f Frequencies) int {
		s := 0
		for _, w := range f {
			s += w
		}
		return s
	}
	if got := sum(TAOMix); got != 10001 { // ≈100%; sub-percent ops keep 1/10000 grains
		t.Errorf("TAO mix sums to %d", got)
	}
	if got := sum(LinkBenchMix); got != 10007 {
		t.Errorf("LinkBench mix sums to %d", got)
	}
	writes := func(f Frequencies) float64 {
		w := f[OpAssocAdd] + f[OpObjUpdate] + f[OpObjAdd] + f[OpAssocDel] + f[OpObjDel] + f[OpAssocUpdate]
		return float64(w) / float64(sum(f))
	}
	if w := writes(TAOMix); w > 0.005 {
		t.Errorf("TAO writes fraction %.4f, want < 0.5%%", w)
	}
	if w := writes(LinkBenchMix); w < 0.25 || w > 0.35 {
		t.Errorf("LinkBench writes fraction %.4f, want ~31%%", w)
	}
}

func TestGenerateOpsDeterministicAndDistributed(t *testing.T) {
	d := testDataset(t)
	cfg := MixConfig{Mix: TAOMix, Seed: 5}
	a := GenerateOps(d, cfg, 5000)
	b := GenerateOps(d, cfg, 5000)
	for i := range a {
		if a[i].Kind != b[i].Kind || a[i].ID != b[i].ID {
			t.Fatal("op generation not deterministic")
		}
	}
	counts := map[OpKind]int{}
	for _, op := range a {
		counts[op.Kind]++
	}
	// assoc_range should be ≈40.8% of ops.
	frac := float64(counts[OpAssocRange]) / float64(len(a))
	if frac < 0.35 || frac < 0.01 {
		t.Errorf("assoc_range fraction %.3f, want ≈0.408", frac)
	}
	if counts[OpObjGet] == 0 || counts[OpAssocCount] == 0 {
		t.Error("major op kinds missing from generated stream")
	}
}

func TestTAOOpsAgreeWithReference(t *testing.T) {
	d := testDataset(t)
	g, ref := testStores(t, d)
	ops := GenerateOps(d, MixConfig{Mix: LinkBenchMix, AccessSkew: 1.3, Seed: 6}, 2000)
	for i, op := range ops {
		gotN, err := Execute(g, op)
		if err != nil {
			t.Fatalf("op %d (%v) on zipg: %v", i, op.Kind, err)
		}
		wantN, err := Execute(ref, op)
		if err != nil {
			t.Fatalf("op %d (%v) on ref: %v", i, op.Kind, err)
		}
		if gotN != wantN {
			t.Fatalf("op %d (%v id=%d atype=%d): cardinality %d, want %d",
				i, op.Kind, op.ID, op.AType, gotN, wantN)
		}
	}
}

func TestAlgorithmsOnKnownGraph(t *testing.T) {
	// A tiny graph with known timestamps validates Algorithms 1-3 edge
	// by edge.
	nodes := []graphapi.Node{{ID: 0}, {ID: 1}, {ID: 2}, {ID: 3}}
	var edges []graphapi.Edge
	for i := 0; i < 10; i++ {
		edges = append(edges, graphapi.Edge{Src: 0, Dst: int64(1 + i%3), Type: 0, Timestamp: int64(i * 100)})
	}
	g, err := zipg.Compress(zipg.GraphData{Nodes: nodes, Edges: edges}, zipg.Options{})
	if err != nil {
		t.Fatal(err)
	}
	tao := TAO{S: g}

	// Algorithm 1: 3 edges starting at index 2.
	res, err := tao.AssocRange(0, 0, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 || res[0].Timestamp != 200 || res[2].Timestamp != 400 {
		t.Fatalf("AssocRange = %+v", res)
	}
	// Algorithm 2: timestamps in [300,700) with dst filter.
	res, err = tao.AssocGet(0, 0, map[graphapi.NodeID]bool{1: true}, 300, 700)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range res {
		if e.Dst != 1 || e.Timestamp < 300 || e.Timestamp >= 700 {
			t.Fatalf("AssocGet returned %+v", e)
		}
	}
	// Algorithm 3: limit cuts the range.
	res, err = tao.AssocTimeRange(0, 0, 0, 10_000, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 4 || res[0].Timestamp != 0 {
		t.Fatalf("AssocTimeRange = %+v", res)
	}
	// assoc_count.
	if got := tao.AssocCount(0, 0); got != 10 {
		t.Fatalf("AssocCount = %d", got)
	}
	if got := tao.AssocCount(0, 9); got != 0 {
		t.Fatalf("AssocCount missing type = %d", got)
	}
	// Missing node behaves as empty, not error.
	if res, err := tao.AssocRange(99, 0, 0, 5); err != nil || res != nil {
		t.Fatalf("AssocRange on missing node: %v %v", res, err)
	}
}

func TestGraphSearchAgreesAndJoinsMatch(t *testing.T) {
	d := testDataset(t)
	g, ref := testStores(t, d)
	ops := GenerateGSOps(d, 7, 200)
	kinds := map[GSKind]int{}
	for i, op := range ops {
		kinds[op.Kind]++
		got := ExecuteGS(g, op, false)
		want := ExecuteGS(ref, op, false)
		if got != want {
			t.Fatalf("GS op %d (%v): %d results, want %d", i, op.Kind, got, want)
		}
		// Join and no-join plans must agree on GS2/GS3 (Appendix B.3).
		if op.Kind == KindGS2 || op.Kind == KindGS3 {
			if j := ExecuteGS(g, op, true); j != got {
				t.Fatalf("GS op %d (%v): join=%d no-join=%d", i, op.Kind, j, got)
			}
		}
	}
	// Equal proportions (Table 3).
	for k, c := range kinds {
		if c != len(ops)/int(numGSKinds) {
			t.Errorf("kind %v count %d, want %d", k, c, len(ops)/int(numGSKinds))
		}
	}
}

func TestGS2JoinEqualsFilterPlanExactly(t *testing.T) {
	d := testDataset(t)
	g, _ := testStores(t, d)
	for id := int64(0); id < 10; id++ {
		p1 := map[string]string{"prop00": d.Vocab["prop00"][0]}
		a := GS2(g, id, p1)
		b := GS2Join(g, id, p1)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("id %d: filter plan %v != join plan %v", id, a, b)
		}
	}
}

func TestFilterKind(t *testing.T) {
	d := testDataset(t)
	ops := GenerateOps(d, MixConfig{Mix: TAOMix, Seed: 8}, 1000)
	only := FilterKind(ops, OpObjGet)
	if len(only) == 0 {
		t.Fatal("no obj_get ops")
	}
	for _, op := range only {
		if op.Kind != OpObjGet {
			t.Fatal("FilterKind leaked other kinds")
		}
	}
	gs := GenerateGSOps(d, 9, 100)
	onlyGS := FilterGSKind(gs, KindGS3)
	if len(onlyGS) != 20 {
		t.Fatalf("FilterGSKind = %d, want 20", len(onlyGS))
	}
}
