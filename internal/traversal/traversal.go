// Package traversal implements graph traversal queries (Appendix B.2):
// breadth-first search over any graph store, expressed as the recursive
// neighbor expansion the paper describes (§4.2) — each step is a round
// of get_neighbor_ids calls on the frontier.
package traversal

import "zipg/internal/graphapi"

// BFS explores from start up to maxDepth hops (the paper bounds depth at
// 5) following edges of every type, and returns the visited node IDs in
// discovery order (including start). Per §4.2, a traversal step is a
// sequence of get_edge_record and get_edge_data operations: each
// expanded edge's full data (destination, timestamp, properties) is
// retrieved, exactly as the paper's traversal workload does — which is
// what makes edge property storage part of a traversal's working set.
func BFS(s graphapi.Store, start graphapi.NodeID, maxDepth int) []graphapi.NodeID {
	visited := map[graphapi.NodeID]bool{start: true}
	order := []graphapi.NodeID{start}
	frontier := []graphapi.NodeID{start}
	for depth := 0; depth < maxDepth && len(frontier) > 0; depth++ {
		var next []graphapi.NodeID
		for _, u := range frontier {
			for _, rec := range s.GetEdgeRecords(u) {
				for i := 0; i < rec.Count(); i++ {
					d, err := rec.Data(i)
					if err != nil {
						continue
					}
					if !visited[d.Dst] {
						visited[d.Dst] = true
						order = append(order, d.Dst)
						next = append(next, d.Dst)
					}
				}
			}
		}
		frontier = next
	}
	return order
}

// BFSDepths returns, for each visited node, its hop distance from start.
func BFSDepths(s graphapi.Store, start graphapi.NodeID, maxDepth int) map[graphapi.NodeID]int {
	dist := map[graphapi.NodeID]int{start: 0}
	frontier := []graphapi.NodeID{start}
	for depth := 0; depth < maxDepth && len(frontier) > 0; depth++ {
		var next []graphapi.NodeID
		for _, u := range frontier {
			for _, v := range s.GetNeighborIDs(u, graphapi.WildcardType, nil) {
				if _, ok := dist[v]; !ok {
					dist[v] = depth + 1
					next = append(next, v)
				}
			}
		}
		frontier = next
	}
	return dist
}
