package traversal

import (
	"reflect"
	"testing"

	"zipg"
	"zipg/internal/graphapi"
	"zipg/internal/refgraph"
)

// grid builds a two-level tree: 0 -> {1,2}, 1 -> {3}, 2 -> {4,5}, 5 -> {0}.
func grid(t testing.TB) graphapi.Store {
	t.Helper()
	var nodes []zipg.Node
	for i := 0; i < 6; i++ {
		nodes = append(nodes, zipg.Node{ID: int64(i)})
	}
	edges := []zipg.Edge{
		{Src: 0, Dst: 1, Type: 0, Timestamp: 1},
		{Src: 0, Dst: 2, Type: 1, Timestamp: 2},
		{Src: 1, Dst: 3, Type: 0, Timestamp: 3},
		{Src: 2, Dst: 4, Type: 0, Timestamp: 4},
		{Src: 2, Dst: 5, Type: 0, Timestamp: 5},
		{Src: 5, Dst: 0, Type: 0, Timestamp: 6},
	}
	g, err := zipg.Compress(zipg.GraphData{Nodes: nodes, Edges: edges}, zipg.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestBFSOrderAndDepths(t *testing.T) {
	g := grid(t)
	order := BFS(g, 0, 5)
	if !reflect.DeepEqual(order, []graphapi.NodeID{0, 1, 2, 3, 4, 5}) {
		t.Fatalf("BFS order = %v", order)
	}
	depths := BFSDepths(g, 0, 5)
	want := map[graphapi.NodeID]int{0: 0, 1: 1, 2: 1, 3: 2, 4: 2, 5: 2}
	if !reflect.DeepEqual(depths, want) {
		t.Fatalf("depths = %v", depths)
	}
}

func TestBFSDepthBound(t *testing.T) {
	g := grid(t)
	order := BFS(g, 0, 1)
	if !reflect.DeepEqual(order, []graphapi.NodeID{0, 1, 2}) {
		t.Fatalf("depth-1 BFS = %v", order)
	}
	if got := BFS(g, 0, 0); !reflect.DeepEqual(got, []graphapi.NodeID{0}) {
		t.Fatalf("depth-0 BFS = %v", got)
	}
}

func TestBFSCycleTerminates(t *testing.T) {
	g := grid(t) // contains cycle 0 -> 2 -> 5 -> 0
	order := BFS(g, 0, 100)
	if len(order) != 6 {
		t.Fatalf("cycle BFS visited %d nodes", len(order))
	}
}

func TestBFSMissingStart(t *testing.T) {
	g := grid(t)
	if got := BFS(g, 99, 3); !reflect.DeepEqual(got, []graphapi.NodeID{99}) {
		t.Fatalf("missing start = %v", got)
	}
}

func TestBFSAgreesWithReference(t *testing.T) {
	var nodes []graphapi.Node
	var edges []graphapi.Edge
	for i := 0; i < 40; i++ {
		nodes = append(nodes, graphapi.Node{ID: int64(i)})
	}
	for i := 0; i < 160; i++ {
		edges = append(edges, graphapi.Edge{
			Src: int64(i % 40), Dst: int64((i*11 + 3) % 40),
			Type: int64(i % 2), Timestamp: int64(i),
		})
	}
	g, err := zipg.Compress(zipg.GraphData{Nodes: nodes, Edges: edges}, zipg.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ref := refgraph.New(nodes, edges)
	for start := int64(0); start < 10; start++ {
		a := BFSDepths(g, start, 5)
		b := BFSDepths(ref, start, 5)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("BFS from %d differs: %v vs %v", start, a, b)
		}
	}
}
