// Package kvstore implements the Titan-like baseline: a graph store
// layered on a log-structured-merge key-value store (standing in for
// Cassandra), with each node's properties and each node's full adjacency
// stored as single opaque rows.
//
// The design reproduces the behaviours the paper measures for Titan:
//
//   - Any edge query fetches and scans the node's whole adjacency row
//     ("once the key-value pair is extracted, it can be scanned in
//     memory" — cheap when resident, expensive when large or cold).
//   - Writes go to a memtable and flush to SSTables — Cassandra's
//     write-optimized path, which is why Titan's LinkBench write
//     throughput beats Neo4j's (§5.2).
//   - The compressed variant gzip-compresses SSTable blocks, shrinking
//     the footprint but paying real decompression on every read — the
//     paper's Titan-Compressed (footnote 7).
//   - get_node_ids uses global index rows, confining search to one row.
//
// All SSTable block reads are charged to a memsim.Medium.
package kvstore

import (
	"bytes"
	"compress/gzip"
	"encoding/binary"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"zipg/internal/memsim"
)

// opKind distinguishes LSM operations on a key.
type opKind byte

const (
	// opPut replaces the key's value.
	opPut opKind = iota
	// opMerge appends a merge operand (folded at read time).
	opMerge
	// opDelete tombstones the key.
	opDelete
)

// op is one operation recorded for a key.
type op struct {
	kind opKind
	data []byte
}

// lsmConfig parameterizes the LSM tree.
type lsmConfig struct {
	med           *memsim.Medium
	compress      bool
	memtableBytes int64 // flush threshold
	blockBytes    int   // SSTable block size
	maxTables     int   // full compaction trigger
	memOverhead   int64 // memtable in-memory overhead factor
}

// lsm is a size-tiered LSM tree with put/merge/delete semantics.
type lsm struct {
	cfg lsmConfig

	mu       sync.RWMutex
	mem      map[string][]op // oldest -> newest per key
	memBytes int64
	tables   []*sstable // oldest -> newest
}

func newLSM(cfg lsmConfig) *lsm {
	if cfg.med == nil {
		cfg.med = memsim.Unlimited()
	}
	if cfg.memtableBytes <= 0 {
		cfg.memtableBytes = 1 << 20
	}
	if cfg.blockBytes <= 0 {
		cfg.blockBytes = 32 << 10
	}
	if cfg.maxTables <= 0 {
		cfg.maxTables = 8
	}
	if cfg.memOverhead <= 0 {
		cfg.memOverhead = 2
	}
	return &lsm{cfg: cfg, mem: make(map[string][]op)}
}

// apply records an operation for key.
func (l *lsm) apply(key string, o op) {
	l.cfg.med.ChargeCPU(mutationCPU)
	grow := (int64(len(key)) + int64(len(o.data)) + 16) * l.cfg.memOverhead
	l.mu.Lock()
	l.mem[key] = append(l.mem[key], o)
	l.memBytes += grow
	needFlush := l.memBytes >= l.cfg.memtableBytes
	l.mu.Unlock()
	l.cfg.med.Grow(grow)
	if needFlush {
		l.flush()
	}
}

func (l *lsm) put(key string, val []byte)   { l.apply(key, op{opPut, val}) }
func (l *lsm) merge(key string, val []byte) { l.apply(key, op{opMerge, val}) }
func (l *lsm) del(key string)               { l.apply(key, op{opDelete, nil}) }

// get returns the key's effective operation list, oldest-to-newest,
// starting from the most recent base (put/delete). A nil result means
// the key has never been written or its newest base is a delete with no
// later merges.
func (l *lsm) get(key string) []op {
	l.cfg.med.ChargeCPU(rowReadCPU)
	l.mu.RLock()
	memOps := append([]op(nil), l.mem[key]...)
	tables := append([]*sstable(nil), l.tables...)
	l.mu.RUnlock()

	// Gather newest -> oldest, stopping at the first base op.
	var rev []op
	done := false
	appendRev := func(ops []op) {
		for i := len(ops) - 1; i >= 0 && !done; i-- {
			rev = append(rev, ops[i])
			if ops[i].kind != opMerge {
				done = true
			}
		}
	}
	appendRev(memOps)
	for i := len(tables) - 1; i >= 0 && !done; i-- {
		appendRev(tables[i].get(key))
	}
	if len(rev) == 0 {
		return nil
	}
	// Reverse to oldest-first for folding.
	out := make([]op, len(rev))
	for i, o := range rev {
		out[len(rev)-1-i] = o
	}
	if out[0].kind == opDelete && len(out) == 1 {
		return nil
	}
	return out
}

// flush freezes the memtable into an SSTable.
func (l *lsm) flush() {
	l.mu.Lock()
	if l.memBytes == 0 {
		l.mu.Unlock()
		return
	}
	mem := l.mem
	freed := l.memBytes
	l.mem = make(map[string][]op)
	l.memBytes = 0
	l.mu.Unlock()
	// The memtable's accounted bytes move into the new SSTable (which
	// registers its own size).
	l.cfg.med.Grow(-freed)

	t := buildSSTable(mem, l.cfg)
	l.mu.Lock()
	l.tables = append(l.tables, t)
	needCompact := len(l.tables) > l.cfg.maxTables
	l.mu.Unlock()
	if needCompact {
		l.compact()
	}
}

// compact merges every SSTable into one, folding per-key histories.
func (l *lsm) compact() {
	l.mu.Lock()
	tables := l.tables
	l.mu.Unlock()
	merged := make(map[string][]op)
	for _, t := range tables { // oldest -> newest
		for _, blk := range t.decodeAll() {
			for _, kv := range blk {
				merged[kv.key] = foldOps(append(merged[kv.key], kv.ops...))
			}
		}
	}
	t := buildSSTable(merged, l.cfg)
	var freed int64
	for _, old := range tables {
		freed += old.sizeBytes
	}
	l.mu.Lock()
	l.tables = []*sstable{t}
	l.mu.Unlock()
	l.cfg.med.Grow(-freed)
}

// foldOps drops history superseded by the newest base operation.
func foldOps(ops []op) []op {
	base := -1
	for i := len(ops) - 1; i >= 0; i-- {
		if ops[i].kind != opMerge {
			base = i
			break
		}
	}
	if base <= 0 {
		return ops
	}
	return append([]op(nil), ops[base:]...)
}

// footprintBytes returns current SSTable bytes (post-compression).
func (l *lsm) footprintBytes() int64 {
	l.mu.RLock()
	defer l.mu.RUnlock()
	var total int64
	for _, t := range l.tables {
		total += t.sizeBytes
	}
	return total
}

// --- SSTable ---

type kvPair struct {
	key string
	ops []op
}

type blockMeta struct {
	firstKey string
	lastKey  string
	off      int64
	n        int // stored (possibly compressed) bytes
	rawN     int
}

type sstable struct {
	cfg       lsmConfig
	blocks    []blockMeta
	payload   []byte // concatenated (possibly compressed) blocks
	reg       uint32
	sizeBytes int64
}

// buildSSTable serializes a memtable dump into sorted compressed blocks.
func buildSSTable(mem map[string][]op, cfg lsmConfig) *sstable {
	keys := make([]string, 0, len(mem))
	for k := range mem {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	t := &sstable{cfg: cfg}
	var cur []byte
	var firstKey, lastKey string
	flushBlock := func() {
		if len(cur) == 0 {
			return
		}
		stored := cur
		if cfg.compress {
			var zbuf bytes.Buffer
			zw := gzip.NewWriter(&zbuf)
			zw.Write(cur)
			zw.Close()
			stored = zbuf.Bytes()
		}
		t.blocks = append(t.blocks, blockMeta{
			firstKey: firstKey, lastKey: lastKey,
			off: int64(len(t.payload)), n: len(stored), rawN: len(cur),
		})
		t.payload = append(t.payload, stored...)
		cur = nil
	}
	for _, k := range keys {
		if len(cur) == 0 {
			firstKey = k
		}
		lastKey = k
		cur = appendKV(cur, k, mem[k])
		if len(cur) >= cfg.blockBytes {
			flushBlock()
		}
	}
	flushBlock()
	// Per-cell metadata (timestamps, flags, row index entries) that
	// Cassandra stores alongside each column — part of Titan's footprint.
	var cells int64
	for _, ops := range mem {
		cells += int64(len(ops))
	}
	t.sizeBytes = int64(len(t.payload)) + int64(len(t.blocks))*32 + cells*cassandraCellOverhead
	t.reg = cfg.med.Register(t.sizeBytes)
	return t
}

// cassandraCellOverhead approximates Cassandra's per-cell metadata
// (write timestamp, TTL/flags, row-index share) in bytes.
const cassandraCellOverhead = 16

// rowReadCPU and mutationCPU model Cassandra's request-path CPU (Thrift
// serialization, coordinator work, row assembly). The paper's absolute
// Titan numbers across 32 cores imply milliseconds per read op and
// somewhat less per write (Cassandra is write-optimized); these
// constants reproduce that relative cost against ZipG and Neo4j.
const (
	rowReadCPU  = 50 * time.Microsecond
	mutationCPU = 20 * time.Microsecond
)

// get returns the ops recorded for key in this table (oldest-first), or
// nil.
func (t *sstable) get(key string) []op {
	// Binary search the block index (its footprint is in sizeBytes; the
	// index itself is assumed resident, like Cassandra's).
	bi := sort.Search(len(t.blocks), func(i int) bool { return t.blocks[i].lastKey >= key })
	if bi >= len(t.blocks) || t.blocks[bi].firstKey > key {
		return nil
	}
	for _, kv := range t.decodeBlock(bi) {
		if kv.key == key {
			return kv.ops
		}
	}
	return nil
}

// decodeBlock reads (and if needed decompresses) one block, charging the
// medium for the stored bytes.
func (t *sstable) decodeBlock(bi int) []kvPair {
	b := t.blocks[bi]
	t.cfg.med.Access(t.reg, b.off, int64(b.n))
	raw := t.payload[b.off : b.off+int64(b.n)]
	if t.cfg.compress {
		zr, err := gzip.NewReader(bytes.NewReader(raw))
		if err != nil {
			panic(fmt.Sprintf("kvstore: corrupt block: %v", err))
		}
		dec, err := io.ReadAll(zr)
		if err != nil {
			panic(fmt.Sprintf("kvstore: corrupt block: %v", err))
		}
		raw = dec
	}
	return decodeKVs(raw)
}

func (t *sstable) decodeAll() [][]kvPair {
	out := make([][]kvPair, len(t.blocks))
	for i := range t.blocks {
		out[i] = t.decodeBlock(i)
	}
	return out
}

// --- block encoding ---

func appendKV(buf []byte, key string, ops []op) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(key)))
	buf = append(buf, key...)
	buf = binary.AppendUvarint(buf, uint64(len(ops)))
	for _, o := range ops {
		buf = append(buf, byte(o.kind))
		buf = binary.AppendUvarint(buf, uint64(len(o.data)))
		buf = append(buf, o.data...)
	}
	return buf
}

func decodeKVs(raw []byte) []kvPair {
	var out []kvPair
	for len(raw) > 0 {
		kl, n := binary.Uvarint(raw)
		raw = raw[n:]
		key := string(raw[:kl])
		raw = raw[kl:]
		no, n := binary.Uvarint(raw)
		raw = raw[n:]
		ops := make([]op, no)
		for i := range ops {
			ops[i].kind = opKind(raw[0])
			raw = raw[1:]
			dl, n := binary.Uvarint(raw)
			raw = raw[n:]
			ops[i].data = append([]byte(nil), raw[:dl]...)
			raw = raw[dl:]
		}
		out = append(out, kvPair{key, ops})
	}
	return out
}
