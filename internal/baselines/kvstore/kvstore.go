package kvstore

import (
	"encoding/binary"
	"fmt"
	"sort"
	"strconv"
	"sync"

	"zipg/internal/graphapi"
	"zipg/internal/memsim"
)

// Config parameterizes the Titan-like store.
type Config struct {
	// Medium simulates the storage (nil = unlimited).
	Medium *memsim.Medium
	// Compress enables gzip block compression (Titan-Compressed).
	Compress bool
	// MemtableBytes is the flush threshold (0 = 1 MiB).
	MemtableBytes int64
}

// Store is the KV-backed baseline graph store. Rows:
//
//	n<id>          -> the node's whole property list (opaque blob)
//	e<id>          -> the node's whole adjacency (opaque blob; appends
//	                  are merge operands, deletions are marker operands)
//	i<key>\x00<val> -> node-ID postings for the global property index
type Store struct {
	lsm *lsm

	// knownNodes mirrors Titan's id assignment; guarded by mu.
	mu         sync.RWMutex
	knownNodes map[graphapi.NodeID]bool
}

// Compile-time check: the KV store serves the shared workload API.
var _ graphapi.Store = (*Store)(nil)

// New builds the store from an initial graph.
func New(nodes []graphapi.Node, edges []graphapi.Edge, cfg Config) (*Store, error) {
	s := &Store{
		lsm: newLSM(lsmConfig{
			med:           cfg.Medium,
			compress:      cfg.Compress,
			memtableBytes: cfg.MemtableBytes,
		}),
		knownNodes: make(map[graphapi.NodeID]bool, len(nodes)),
	}
	for _, n := range nodes {
		if err := s.AppendNode(n.ID, n.Props); err != nil {
			return nil, err
		}
	}
	for _, e := range edges {
		if err := s.AppendEdge(e); err != nil {
			return nil, err
		}
	}
	// Settle the load into SSTables so reads hit the steady-state path.
	s.lsm.flush()
	return s, nil
}

func nodeKey(id graphapi.NodeID) string { return "n" + strconv.FormatInt(id, 10) }
func adjKey(id graphapi.NodeID) string  { return "e" + strconv.FormatInt(id, 10) }
func idxKey(k, v string) string         { return "i" + k + "\x00" + v }

// --- blob encodings ---

// encodeProps serializes a property map (sorted keys). Empty values are
// dropped: they are equivalent to absent properties in every system.
func encodeProps(props map[string]string) []byte {
	keys := make([]string, 0, len(props))
	for k, v := range props {
		if v != "" {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	var buf []byte
	buf = binary.AppendUvarint(buf, uint64(len(keys)))
	for _, k := range keys {
		buf = binary.AppendUvarint(buf, uint64(len(k)))
		buf = append(buf, k...)
		buf = binary.AppendUvarint(buf, uint64(len(props[k])))
		buf = append(buf, props[k]...)
	}
	return buf
}

func decodeProps(raw []byte) (map[string]string, []byte) {
	n, k := binary.Uvarint(raw)
	raw = raw[k:]
	props := make(map[string]string, n)
	for i := uint64(0); i < n; i++ {
		kl, k := binary.Uvarint(raw)
		raw = raw[k:]
		key := string(raw[:kl])
		raw = raw[kl:]
		vl, k := binary.Uvarint(raw)
		raw = raw[k:]
		props[key] = string(raw[:vl])
		raw = raw[vl:]
	}
	return props, raw
}

// Adjacency operand kinds. Titan stores every edge twice — an out-edge
// on the source's row and an in-edge on the destination's row — which is
// a large share of its storage footprint; in-edge operands are written
// for size fidelity and skipped by (out-edge) reads.
const (
	adjAdd byte = iota
	adjDel
	adjAddIn
)

// encodeEdgeOp serializes one adjacency merge operand.
func encodeEdgeOp(kind byte, etype graphapi.EdgeType, dst graphapi.NodeID, ts int64, props map[string]string) []byte {
	buf := []byte{kind}
	buf = binary.AppendVarint(buf, etype)
	buf = binary.AppendVarint(buf, dst)
	buf = binary.AppendVarint(buf, ts)
	if kind == adjAdd || kind == adjAddIn {
		// Properties are stored on both edge copies, as Titan does.
		buf = append(buf, encodeProps(props)...)
	}
	return buf
}

type adjEntry struct {
	etype graphapi.EdgeType
	dst   graphapi.NodeID
	ts    int64
	props map[string]string
}

// foldAdjacency replays a row's op history into the live edge set.
func foldAdjacency(ops []op) []adjEntry {
	var out []adjEntry
	for _, o := range ops {
		if o.kind == opDelete {
			out = out[:0]
			continue
		}
		raw := o.data
		kind := raw[0]
		raw = raw[1:]
		etype, k := binary.Varint(raw)
		raw = raw[k:]
		dst, k := binary.Varint(raw)
		raw = raw[k:]
		ts, k := binary.Varint(raw)
		raw = raw[k:]
		switch kind {
		case adjAdd:
			props, _ := decodeProps(raw)
			if len(props) == 0 {
				props = nil
			}
			out = append(out, adjEntry{etype, dst, ts, props})
		case adjAddIn:
			// In-edges are stored but not served by out-edge queries.
		case adjDel:
			kept := out[:0]
			for _, e := range out {
				if e.etype == etype && e.dst == dst {
					continue
				}
				kept = append(kept, e)
			}
			out = kept
			_ = ts
		}
	}
	return out
}

// adjacency fetches and scans the node's entire adjacency row — the
// opaque-object read the paper contrasts with ZipG's per-type records —
// filtered to etype (<0 = all), sorted by timestamp.
func (s *Store) adjacency(id graphapi.NodeID, etype graphapi.EdgeType) []adjEntry {
	all := foldAdjacency(s.lsm.get(adjKey(id)))
	kept := all[:0]
	for _, e := range all {
		if etype >= 0 && e.etype != etype {
			continue
		}
		kept = append(kept, e)
	}
	sort.SliceStable(kept, func(i, j int) bool { return kept[i].ts < kept[j].ts })
	return kept
}

// nodeExists reports whether the node row is live.
func (s *Store) nodeExists(id graphapi.NodeID) bool {
	return s.lsm.get(nodeKey(id)) != nil
}

// nodeProps folds the node row into its property map.
func (s *Store) nodeProps(id graphapi.NodeID) (map[string]string, bool) {
	ops := s.lsm.get(nodeKey(id))
	if ops == nil {
		return nil, false
	}
	var props map[string]string
	for _, o := range ops {
		if o.kind == opDelete {
			props = nil
			continue
		}
		props, _ = decodeProps(o.data)
	}
	return props, true
}

// --- graphapi.Store implementation ---

// GetNodeProperty implements graphapi.Store. The whole node row is
// fetched and scanned even for a single property (the KV abstraction's
// opaque-value limitation, §3.3).
func (s *Store) GetNodeProperty(id graphapi.NodeID, propertyIDs []string) ([]string, bool) {
	props, ok := s.nodeProps(id)
	if !ok {
		return nil, false
	}
	if len(propertyIDs) == 0 {
		keys := make([]string, 0, len(props))
		for k := range props {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		propertyIDs = keys
	}
	out := make([]string, len(propertyIDs))
	for i, pid := range propertyIDs {
		out[i] = props[pid]
	}
	return out, true
}

// GetNodeIDs implements graphapi.Store via global index rows.
func (s *Store) GetNodeIDs(props map[string]string) []graphapi.NodeID {
	if len(props) == 0 {
		return nil
	}
	var result map[graphapi.NodeID]bool
	for k, v := range props {
		ids := make(map[graphapi.NodeID]bool)
		for _, o := range s.lsm.get(idxKey(k, v)) {
			if o.kind == opDelete {
				ids = make(map[graphapi.NodeID]bool)
				continue
			}
			raw := o.data
			for len(raw) > 0 {
				id, n := binary.Varint(raw)
				raw = raw[n:]
				ids[id] = true
			}
		}
		// Verify against the live row (index postings are additive and may
		// be stale after updates).
		for id := range ids {
			cur, ok := s.nodeProps(id)
			if !ok || cur[k] != v {
				delete(ids, id)
			}
		}
		if result == nil {
			result = ids
		} else {
			for id := range result {
				if !ids[id] {
					delete(result, id)
				}
			}
		}
		if len(result) == 0 {
			return nil
		}
	}
	out := make([]graphapi.NodeID, 0, len(result))
	for id := range result {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// GetNeighborIDs implements graphapi.Store.
func (s *Store) GetNeighborIDs(id graphapi.NodeID, etype graphapi.EdgeType, props map[string]string) []graphapi.NodeID {
	if !s.nodeExists(id) {
		return nil
	}
	seen := make(map[graphapi.NodeID]bool)
	var out []graphapi.NodeID
	for _, e := range s.adjacency(id, etype) {
		if seen[e.dst] {
			continue
		}
		seen[e.dst] = true
		if !s.nodeExists(e.dst) {
			continue
		}
		if len(props) > 0 {
			dp, ok := s.nodeProps(e.dst)
			if !ok {
				continue
			}
			match := true
			for k, v := range props {
				if dp[k] != v {
					match = false
					break
				}
			}
			if !match {
				continue
			}
		}
		out = append(out, e.dst)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// record is the KV store's EdgeRecord: the scanned row, materialized.
type record struct {
	edges []adjEntry
}

func (r *record) Count() int { return len(r.edges) }

func (r *record) Range(tLo, tHi int64) (int, int) {
	tLo, tHi = graphapi.TimeBounds(tLo, tHi)
	beg := sort.Search(len(r.edges), func(i int) bool { return r.edges[i].ts >= tLo })
	end := sort.Search(len(r.edges), func(i int) bool { return r.edges[i].ts >= tHi })
	return beg, end
}

func (r *record) Data(timeOrder int) (graphapi.EdgeData, error) {
	if timeOrder < 0 || timeOrder >= len(r.edges) {
		return graphapi.EdgeData{}, fmt.Errorf("kvstore: time order %d out of range [0,%d)", timeOrder, len(r.edges))
	}
	e := r.edges[timeOrder]
	return graphapi.EdgeData{Dst: e.dst, Timestamp: e.ts, Props: e.props}, nil
}

func (r *record) Destinations() []graphapi.NodeID {
	out := make([]graphapi.NodeID, len(r.edges))
	for i, e := range r.edges {
		out[i] = e.dst
	}
	return out
}

// GetEdgeRecord implements graphapi.Store.
func (s *Store) GetEdgeRecord(id graphapi.NodeID, etype graphapi.EdgeType) (graphapi.EdgeRecord, bool) {
	if !s.nodeExists(id) {
		return nil, false
	}
	edges := s.adjacency(id, etype)
	if len(edges) == 0 {
		return nil, false
	}
	return &record{edges}, true
}

// GetEdgeRecords implements graphapi.Store.
func (s *Store) GetEdgeRecords(id graphapi.NodeID) []graphapi.EdgeRecord {
	if !s.nodeExists(id) {
		return nil
	}
	all := s.adjacency(id, -1)
	byType := make(map[graphapi.EdgeType][]adjEntry)
	for _, e := range all {
		byType[e.etype] = append(byType[e.etype], e)
	}
	types := make([]graphapi.EdgeType, 0, len(byType))
	for t := range byType {
		types = append(types, t)
	}
	sort.Slice(types, func(i, j int) bool { return types[i] < types[j] })
	out := make([]graphapi.EdgeRecord, 0, len(types))
	for _, t := range types {
		out = append(out, &record{byType[t]})
	}
	return out
}

// AppendNode implements graphapi.Store.
func (s *Store) AppendNode(id graphapi.NodeID, props map[string]string) error {
	if id < 0 {
		return fmt.Errorf("kvstore: negative node ID %d", id)
	}
	s.lsm.put(nodeKey(id), encodeProps(props))
	s.mu.Lock()
	s.knownNodes[id] = true
	s.mu.Unlock()
	var ibuf []byte
	for k, v := range props {
		s.lsm.merge(idxKey(k, v), binary.AppendVarint(ibuf[:0], id))
	}
	return nil
}

// AppendEdge implements graphapi.Store. Endpoints are auto-created, like
// Titan.
func (s *Store) AppendEdge(e graphapi.Edge) error {
	if e.Src < 0 || e.Dst < 0 || e.Type < 0 || e.Timestamp < 0 {
		return fmt.Errorf("kvstore: negative field in edge %+v", e)
	}
	// Auto-create endpoints whose rows are missing or tombstoned.
	for _, id := range []graphapi.NodeID{e.Src, e.Dst} {
		if !s.nodeExists(id) {
			if err := s.AppendNode(id, nil); err != nil {
				return err
			}
		}
	}
	s.lsm.merge(adjKey(e.Src), encodeEdgeOp(adjAdd, e.Type, e.Dst, e.Timestamp, e.Props))
	// Mirror in-edge on the destination's row (Titan's bidirectional
	// storage).
	s.lsm.merge(adjKey(e.Dst), encodeEdgeOp(adjAddIn, e.Type, e.Src, e.Timestamp, e.Props))
	return nil
}

// DeleteNode implements graphapi.Store.
func (s *Store) DeleteNode(id graphapi.NodeID) error {
	s.lsm.del(nodeKey(id))
	return nil
}

// DeleteEdges implements graphapi.Store. The LSM records a deletion
// marker; the removed count requires reading the row first (as Titan
// must).
func (s *Store) DeleteEdges(src graphapi.NodeID, etype graphapi.EdgeType, dst graphapi.NodeID) (int, error) {
	n := 0
	for _, e := range s.adjacency(src, etype) {
		if e.dst == dst {
			n++
		}
	}
	if n > 0 {
		s.lsm.merge(adjKey(src), encodeEdgeOp(adjDel, etype, dst, 0, nil))
	}
	return n, nil
}

// Flush forces the memtable into SSTables (tests and footprint
// measurements).
func (s *Store) Flush() { s.lsm.flush() }

// Footprint returns the store's total bytes.
func (s *Store) Footprint() int64 { return s.lsm.cfg.med.Footprint() }
