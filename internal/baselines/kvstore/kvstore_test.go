package kvstore

import (
	"fmt"
	"reflect"
	"testing"

	"zipg/internal/graphapi"
	"zipg/internal/memsim"
)

func TestLSMPutGetDelete(t *testing.T) {
	l := newLSM(lsmConfig{})
	l.put("a", []byte("1"))
	l.put("b", []byte("2"))
	if ops := l.get("a"); len(ops) != 1 || string(ops[0].data) != "1" {
		t.Fatalf("get a = %v", ops)
	}
	l.put("a", []byte("3")) // overwrite
	if ops := l.get("a"); len(ops) != 1 || string(ops[0].data) != "3" {
		t.Fatalf("after overwrite: %v", ops)
	}
	l.del("a")
	if ops := l.get("a"); ops != nil {
		t.Fatalf("after delete: %v", ops)
	}
	if ops := l.get("missing"); ops != nil {
		t.Fatalf("missing key: %v", ops)
	}
}

func TestLSMMergeSemantics(t *testing.T) {
	l := newLSM(lsmConfig{})
	l.put("k", []byte("base"))
	l.merge("k", []byte("m1"))
	l.merge("k", []byte("m2"))
	ops := l.get("k")
	if len(ops) != 3 || ops[0].kind != opPut || string(ops[2].data) != "m2" {
		t.Fatalf("merge history = %v", ops)
	}
	// A new base supersedes history.
	l.put("k", []byte("base2"))
	ops = l.get("k")
	if len(ops) != 1 || string(ops[0].data) != "base2" {
		t.Fatalf("after new base: %v", ops)
	}
	// Merges after a delete survive.
	l.del("k")
	l.merge("k", []byte("m3"))
	ops = l.get("k")
	if len(ops) != 2 || ops[0].kind != opDelete || string(ops[1].data) != "m3" {
		t.Fatalf("after delete+merge: %v", ops)
	}
}

func TestLSMFlushAndSSTableReads(t *testing.T) {
	l := newLSM(lsmConfig{memtableBytes: 1 << 30})
	for i := 0; i < 500; i++ {
		l.put(fmt.Sprintf("key-%04d", i), []byte(fmt.Sprintf("value-%d", i)))
	}
	l.flush()
	if len(l.tables) != 1 {
		t.Fatalf("tables = %d", len(l.tables))
	}
	for i := 0; i < 500; i += 37 {
		ops := l.get(fmt.Sprintf("key-%04d", i))
		if len(ops) != 1 || string(ops[0].data) != fmt.Sprintf("value-%d", i) {
			t.Fatalf("sstable get key-%04d = %v", i, ops)
		}
	}
	// Memtable writes shadow SSTable data.
	l.put("key-0000", []byte("new"))
	if ops := l.get("key-0000"); string(ops[0].data) != "new" {
		t.Fatalf("memtable should shadow sstable")
	}
}

func TestLSMAutoFlushAndCompaction(t *testing.T) {
	l := newLSM(lsmConfig{memtableBytes: 2 << 10, maxTables: 3})
	for i := 0; i < 400; i++ {
		l.put(fmt.Sprintf("k%03d", i%50), []byte(fmt.Sprintf("v%d", i)))
	}
	l.flush()
	if len(l.tables) > 3+1 {
		t.Fatalf("compaction did not bound tables: %d", len(l.tables))
	}
	// All keys resolve to their newest values.
	for i := 350; i < 400; i++ {
		ops := l.get(fmt.Sprintf("k%03d", i%50))
		if len(ops) == 0 {
			t.Fatalf("key k%03d lost", i%50)
		}
		if got := string(ops[len(ops)-1].data); got != fmt.Sprintf("v%d", i) {
			t.Fatalf("k%03d = %q, want v%d", i%50, got, i)
		}
	}
}

func TestCompressedBlocksRoundTrip(t *testing.T) {
	for _, compress := range []bool{false, true} {
		l := newLSM(lsmConfig{compress: compress, memtableBytes: 1 << 30, blockBytes: 1 << 10})
		for i := 0; i < 300; i++ {
			l.put(fmt.Sprintf("key-%04d", i), []byte("payload payload payload payload"))
		}
		l.flush()
		for i := 0; i < 300; i += 17 {
			if ops := l.get(fmt.Sprintf("key-%04d", i)); len(ops) != 1 {
				t.Fatalf("compress=%v: key-%04d = %v", compress, i, ops)
			}
		}
	}
}

func TestCompressionShrinksFootprint(t *testing.T) {
	build := func(compress bool) int64 {
		med := memsim.Unlimited()
		l := newLSM(lsmConfig{med: med, compress: compress, memtableBytes: 1 << 30})
		for i := 0; i < 500; i++ {
			l.put(fmt.Sprintf("key-%04d", i), []byte("highly repetitive value highly repetitive value"))
		}
		l.flush()
		return l.footprintBytes()
	}
	plain, compressed := build(false), build(true)
	if compressed >= plain {
		t.Errorf("compressed %d >= plain %d", compressed, plain)
	}
}

func TestStoreEdgesBidirectionalFootprint(t *testing.T) {
	nodes := []graphapi.Node{{ID: 0}, {ID: 1}}
	mkEdges := func(n int) []graphapi.Edge {
		es := make([]graphapi.Edge, n)
		for i := range es {
			es[i] = graphapi.Edge{Src: 0, Dst: 1, Type: 0, Timestamp: int64(i),
				Props: map[string]string{"p": "0123456789abcdef0123456789abcdef"}}
		}
		return es
	}
	s1, err := New(nodes, mkEdges(50), Config{})
	if err != nil {
		t.Fatal(err)
	}
	s2, err := New(nodes, mkEdges(100), Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Footprint grows roughly linearly with edges; each edge stores two
	// copies, so 50 extra edges add well above one copy's bytes.
	delta := s2.Footprint() - s1.Footprint()
	if delta < 50*2*40 {
		t.Errorf("bidirectional storage missing: delta=%d", delta)
	}
	// Reads only see out-edges.
	rec, ok := s1.GetEdgeRecord(1, 0)
	if ok && rec.Count() > 0 {
		t.Error("in-edge mirrors leaked into reads")
	}
	rec, ok = s1.GetEdgeRecord(0, 0)
	if !ok || rec.Count() != 50 {
		t.Fatalf("out-edges = %v", rec)
	}
}

func TestPropsCodecRoundTrip(t *testing.T) {
	cases := []map[string]string{
		nil,
		{},
		{"a": "1"},
		{"z": "last", "a": "first", "m": "middle"},
	}
	for _, props := range cases {
		blob := encodeProps(props)
		got, rest := decodeProps(blob)
		if len(rest) != 0 {
			t.Fatalf("%v: trailing bytes", props)
		}
		want := map[string]string{}
		for k, v := range props {
			if v != "" {
				want[k] = v
			}
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("round trip %v -> %v", want, got)
		}
	}
}

func TestStoreValidation(t *testing.T) {
	s, err := New(nil, nil, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AppendNode(-1, nil); err == nil {
		t.Error("negative node accepted")
	}
	if err := s.AppendEdge(graphapi.Edge{Src: 1, Dst: -2}); err == nil {
		t.Error("negative dst accepted")
	}
}
