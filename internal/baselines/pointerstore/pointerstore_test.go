package pointerstore

import (
	"fmt"
	"reflect"
	"testing"

	"zipg/internal/graphapi"
	"zipg/internal/memsim"
)

func testStore(t testing.TB, cfg Config) *Store {
	t.Helper()
	var nodes []graphapi.Node
	for i := 0; i < 20; i++ {
		nodes = append(nodes, graphapi.Node{ID: int64(i), Props: map[string]string{
			"name": fmt.Sprintf("n%d", i),
			"city": []string{"a", "b"}[i%2],
		}})
	}
	var edges []graphapi.Edge
	for i := 0; i < 60; i++ {
		edges = append(edges, graphapi.Edge{
			Src: int64(i % 20), Dst: int64((i + 3) % 20),
			Type: int64((i / 20) % 2), Timestamp: int64(i * 10),
			Props: map[string]string{"w": fmt.Sprint(i)},
		})
	}
	s, err := New(nodes, edges, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestPropertyChains(t *testing.T) {
	s := testStore(t, Config{})
	vals, ok := s.GetNodeProperty(3, []string{"city", "name"})
	if !ok || vals[0] != "b" || vals[1] != "n3" {
		t.Fatalf("props = %v", vals)
	}
	// Wildcard returns sorted present values.
	vals, _ = s.GetNodeProperty(3, nil)
	if !reflect.DeepEqual(vals, []string{"b", "n3"}) {
		t.Fatalf("wildcard = %v", vals)
	}
	if _, ok := s.GetNodeProperty(99, nil); ok {
		t.Fatal("missing node found")
	}
}

func TestRelationshipChainScan(t *testing.T) {
	s := testStore(t, Config{})
	// src 5 appears at i=5,25,45 with types 0,1,0.
	rec, ok := s.GetEdgeRecord(5, 0)
	if !ok || rec.Count() != 2 {
		t.Fatalf("record(5,0) count = %d", rec.Count())
	}
	// Timestamps sorted.
	var prev int64 = -1
	for i := 0; i < rec.Count(); i++ {
		d, err := rec.Data(i)
		if err != nil {
			t.Fatal(err)
		}
		if d.Timestamp < prev {
			t.Fatal("unsorted")
		}
		prev = d.Timestamp
		if d.Props["w"] == "" {
			t.Fatal("edge props lost")
		}
	}
	// Wildcard record list covers both types.
	if recs := s.GetEdgeRecords(5); len(recs) != 2 {
		t.Fatalf("records = %d", len(recs))
	}
}

func TestGlobalIndex(t *testing.T) {
	s := testStore(t, Config{})
	ids := s.GetNodeIDs(map[string]string{"city": "a"})
	if len(ids) != 10 {
		t.Fatalf("index search = %v", ids)
	}
	// Stale index entries are filtered after updates.
	if err := s.AppendNode(0, map[string]string{"city": "b", "name": "n0"}); err != nil {
		t.Fatal(err)
	}
	for _, id := range s.GetNodeIDs(map[string]string{"city": "a"}) {
		if id == 0 {
			t.Fatal("stale index entry returned")
		}
	}
	found := false
	for _, id := range s.GetNodeIDs(map[string]string{"city": "b"}) {
		found = found || id == 0
	}
	if !found {
		t.Fatal("updated node missing from index")
	}
}

func TestTunedCache(t *testing.T) {
	s := testStore(t, Config{Tuned: true, CacheNodes: 64})
	s.GetNodeProperty(7, nil) // fill
	s.med.ResetStats()
	s.GetNodeProperty(7, nil) // hit: no prop-chain walk
	if st := s.med.Stats(); st.Accesses > 2 {
		t.Errorf("cache hit still walked records: %d accesses", st.Accesses)
	}
	// Updates invalidate.
	if err := s.AppendNode(7, map[string]string{"name": "fresh"}); err != nil {
		t.Fatal(err)
	}
	vals, _ := s.GetNodeProperty(7, []string{"name"})
	if vals[0] != "fresh" {
		t.Fatalf("stale cache after update: %v", vals)
	}
}

func TestTunedCacheEviction(t *testing.T) {
	s := testStore(t, Config{Tuned: true, CacheNodes: 4})
	for id := int64(0); id < 20; id++ {
		s.GetNodeProperty(id, nil)
	}
	s.cacheMu.Lock()
	n := len(s.cache)
	s.cacheMu.Unlock()
	if n > 4 {
		t.Fatalf("cache grew to %d entries", n)
	}
}

func TestDeleteSemantics(t *testing.T) {
	s := testStore(t, Config{})
	if err := s.DeleteNode(5); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.GetNodeProperty(5, nil); ok {
		t.Fatal("deleted node readable")
	}
	if _, ok := s.GetEdgeRecord(5, 0); ok {
		t.Fatal("deleted node's edges readable")
	}
	// Edge deletes: (6,0,9) exists for i=6 and i=46 (both type 0).
	n, err := s.DeleteEdges(6, 0, 9)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("removed %d, want 2", n)
	}
	if n, _ = s.DeleteEdges(6, 0, 9); n != 0 {
		t.Fatal("double delete")
	}
}

func TestDynamicStoreChargedOnRead(t *testing.T) {
	med := memsim.NewMedium(nil, memsim.Config{Budget: 1 << 20})
	long := make([]byte, 300)
	for i := range long {
		long[i] = 'x'
	}
	s, err := New([]graphapi.Node{{ID: 0, Props: map[string]string{"big": string(long)}}}, nil,
		Config{Medium: med})
	if err != nil {
		t.Fatal(err)
	}
	med.ResetStats()
	s.GetNodeProperty(0, []string{"big"})
	if st := med.Stats(); st.Accesses < 2 {
		t.Errorf("dynamic store read not charged: %d accesses", st.Accesses)
	}
	// Footprint includes the dynamic blocks (3 blocks of 128B for 300B).
	if med.Footprint() < 3*128 {
		t.Errorf("dynamic blocks missing from footprint: %d", med.Footprint())
	}
}

func TestEndpointAutoCreate(t *testing.T) {
	s, err := New(nil, nil, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AppendEdge(graphapi.Edge{Src: 1, Dst: 2, Type: 0, Timestamp: 1}); err != nil {
		t.Fatal(err)
	}
	if nbr := s.GetNeighborIDs(1, 0, nil); !reflect.DeepEqual(nbr, []graphapi.NodeID{2}) {
		t.Fatalf("neighbors = %v", nbr)
	}
}
