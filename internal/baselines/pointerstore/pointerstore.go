// Package pointerstore implements the Neo4j-like baseline the paper
// compares against: a native graph store whose node, relationship and
// property records are fixed-size entries in store files, linked by
// record pointers.
//
// The architecture follows Neo4j's storage design and deliberately
// reproduces the behaviours the paper's evaluation attributes to it:
//
//   - Reading a node property walks the node's property chain — one
//     random record access per step ("Neo4j requires following a set of
//     pointers on NodeTable").
//   - Edge queries walk the node's relationship chain and filter by type
//     ("other systems have to scan the entire set of edges and filter").
//   - get_node_ids uses a global property index, which is why Neo4j wins
//     search-heavy workloads while everything fits in memory (§5.2,
//     Graph Search) and collapses when the index spills.
//   - Writes touch multiple random record locations (§5.2, LinkBench:
//     "each write incurs updates at multiple random locations").
//
// Every record access is charged to a memsim.Medium, so the pointer
// chasing translates into exactly the scattered-access cost profile the
// paper measures. The Tuned variant adds an object cache over node
// property maps, standing in for the Neo4j-Tuned configuration of §5.
package pointerstore

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"zipg/internal/graphapi"
	"zipg/internal/memsim"
)

// Record sizes in bytes, mirroring Neo4j's store formats (node records
// 15 B, relationship records 34 B, property records 41 B; rounded).
// Property values longer than inlineValueMax spill to the dynamic string
// store, allocated in dynBlockSize-byte blocks holding dynBlockPayload
// payload bytes each — Neo4j's actual dynamic-store layout, and a large
// part of the storage overhead Figure 5 measures.
const (
	nodeRecSize     = 16
	relRecSize      = 34
	propRecSize     = 41
	inlineValueMax  = 24
	dynBlockSize    = 128
	dynBlockPayload = 120
)

// recordCPU models the per-record CPU cost of Neo4j's read/write path
// (page-cache indirection, record deserialization, transaction
// machinery). The paper's absolute numbers imply tens of microseconds
// per record on its hardware (e.g. ~30 KOps obj_get across 32 cores for
// records chains of ~40 records); 4µs per record reproduces the paper's
// relative ordering against ZipG's compressed-extraction CPU cost.
const recordCPU = 1 * time.Microsecond

// Config parameterizes the store.
type Config struct {
	// Medium simulates the storage (nil = unlimited).
	Medium *memsim.Medium
	// Tuned enables the object cache (the paper's Neo4j-Tuned).
	Tuned bool
	// CacheNodes bounds the tuned object cache (entries). 0 = 10000.
	CacheNodes int
}

// nodeRec is a node store record.
type nodeRec struct {
	id        graphapi.NodeID
	inUse     bool
	firstProp int32 // index into props, -1 = none
	firstRel  int32 // index into rels, -1 = none
}

// relRec is a relationship store record, chained per source node.
type relRec struct {
	dst       graphapi.NodeID
	etype     graphapi.EdgeType
	ts        int64
	inUse     bool
	firstProp int32
	srcNext   int32 // next relationship of the same source node
}

// propRec is a property store record. Values longer than inlineValueMax
// live in the dynamic string store at dynOff (-1 = inlined).
type propRec struct {
	key    string
	val    string
	next   int32
	dynOff int64
}

// Store is the pointer-based baseline graph store.
type Store struct {
	cfg Config
	med *memsim.Medium

	mu      sync.RWMutex
	nodes   []nodeRec
	rels    []relRec
	props   []propRec
	nodeIdx map[graphapi.NodeID]int32 // ID -> node record (Neo4j's id mapping)

	// Global property index: "key\x00value" -> node record indexes.
	index map[string][]int32

	regNodes, regRels, regProps, regIndex, regDyn uint32
	indexBytes                                    int64
	dynBytes                                      int64

	// Tuned object cache: node record index -> materialized props.
	cacheMu sync.Mutex
	cache   map[int32]map[string]string
	cacheN  int
}

// New builds the store from an initial graph.
func New(nodes []graphapi.Node, edges []graphapi.Edge, cfg Config) (*Store, error) {
	med := cfg.Medium
	if med == nil {
		med = memsim.Unlimited()
	}
	if cfg.CacheNodes <= 0 {
		cfg.CacheNodes = 10000
	}
	s := &Store{
		cfg:     cfg,
		med:     med,
		nodeIdx: make(map[graphapi.NodeID]int32, len(nodes)),
		index:   make(map[string][]int32),
		cache:   make(map[int32]map[string]string),
		cacheN:  cfg.CacheNodes,
	}
	// Register regions up front; growth is charged via Grow.
	s.regNodes = med.Register(0)
	s.regRels = med.Register(0)
	s.regProps = med.Register(0)
	s.regIndex = med.Register(0)
	s.regDyn = med.Register(0)

	for _, n := range nodes {
		if _, err := s.addNodeLocked(n.ID, n.Props); err != nil {
			return nil, err
		}
	}
	for _, e := range edges {
		if err := s.addEdgeLocked(e); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// --- record-level operations (all charge the medium) ---

func (s *Store) readNode(i int32) nodeRec {
	s.med.ChargeCPU(recordCPU)
	s.med.Access(s.regNodes, int64(i)*nodeRecSize, nodeRecSize)
	return s.nodes[i]
}

func (s *Store) readRel(i int32) relRec {
	s.med.ChargeCPU(recordCPU)
	s.med.Access(s.regRels, int64(i)*relRecSize, relRecSize)
	return s.rels[i]
}

func (s *Store) readProp(i int32) propRec {
	s.med.ChargeCPU(recordCPU)
	p := s.props[i]
	s.med.Access(s.regProps, int64(i)*propRecSize, propRecSize)
	if p.dynOff >= 0 {
		// Long values pull their dynamic-store blocks too.
		blocks := int64((len(p.val) + dynBlockPayload - 1) / dynBlockPayload)
		s.med.Access(s.regDyn, p.dynOff, blocks*dynBlockSize)
	}
	return p
}

func (s *Store) writeNode(i int32) {
	s.med.ChargeCPU(recordCPU)
	s.med.Access(s.regNodes, int64(i)*nodeRecSize, nodeRecSize)
}

func (s *Store) writeRel(i int32) {
	s.med.ChargeCPU(recordCPU)
	s.med.Access(s.regRels, int64(i)*relRecSize, relRecSize)
}

func (s *Store) appendProp(p propRec) int32 {
	s.med.ChargeCPU(recordCPU)
	p.dynOff = -1
	grow := int64(propRecSize)
	if n := len(p.val); n > inlineValueMax {
		// Dynamic string store: whole blocks, like Neo4j.
		blocks := int64((n + dynBlockPayload - 1) / dynBlockPayload)
		p.dynOff = s.dynBytes
		s.dynBytes += blocks * dynBlockSize
		grow += blocks * dynBlockSize
		s.med.Access(s.regDyn, p.dynOff, blocks*dynBlockSize)
	}
	s.props = append(s.props, p)
	i := int32(len(s.props) - 1)
	s.med.Grow(grow)
	s.med.Access(s.regProps, int64(i)*propRecSize, propRecSize)
	return i
}

func (s *Store) appendRel(r relRec) int32 {
	s.rels = append(s.rels, r)
	i := int32(len(s.rels) - 1)
	s.med.Grow(relRecSize)
	s.med.Access(s.regRels, int64(i)*relRecSize, relRecSize)
	return i
}

// indexKey forms a global-index key.
func indexKey(k, v string) string { return k + "\x00" + v }

func (s *Store) indexAdd(k, v string, node int32) {
	key := indexKey(k, v)
	s.index[key] = append(s.index[key], node)
	grow := int64(len(key) + 8)
	s.indexBytes += grow
	s.med.Grow(grow)
	s.med.Access(s.regIndex, s.indexBytes, 16)
}

// addNodeLocked inserts or replaces a node. Caller need not hold the
// lock during initial load; public paths lock.
func (s *Store) addNodeLocked(id graphapi.NodeID, props map[string]string) (int32, error) {
	if id < 0 {
		return 0, fmt.Errorf("pointerstore: negative node ID %d", id)
	}
	var ni int32
	if existing, ok := s.nodeIdx[id]; ok {
		ni = existing
		s.nodes[ni].inUse = true
		s.nodes[ni].firstProp = -1
		s.writeNode(ni)
	} else {
		s.nodes = append(s.nodes, nodeRec{id: id, inUse: true, firstProp: -1, firstRel: -1})
		ni = int32(len(s.nodes) - 1)
		s.nodeIdx[id] = ni
		s.med.Grow(nodeRecSize + 16) // record + id-map entry
		s.writeNode(ni)
	}
	// Property chain, in deterministic key order. Empty values are
	// equivalent to absent properties (shared semantics across systems).
	keys := make([]string, 0, len(props))
	for k, v := range props {
		if v != "" {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	for i := len(keys) - 1; i >= 0; i-- {
		// Inline and dynamic-store bytes are accounted by appendProp;
		// property keys are interned (Neo4j's key token store) and
		// negligible.
		pi := s.appendProp(propRec{key: keys[i], val: props[keys[i]], next: s.nodes[ni].firstProp})
		s.nodes[ni].firstProp = pi
	}
	s.writeNode(ni)
	for _, k := range keys {
		s.indexAdd(k, props[k], ni)
	}
	s.invalidateCache(ni)
	return ni, nil
}

func (s *Store) addEdgeLocked(e graphapi.Edge) error {
	if e.Src < 0 || e.Dst < 0 || e.Type < 0 || e.Timestamp < 0 {
		return fmt.Errorf("pointerstore: negative field in edge %+v", e)
	}
	si, ok := s.nodeIdx[e.Src]
	if !ok || !s.nodes[si].inUse {
		// Neo4j auto-creates endpoints (including recreating deleted
		// ones); so do we — the shared semantics across systems.
		var err error
		if si, err = s.addNodeLocked(e.Src, nil); err != nil {
			return err
		}
	}
	if di, ok := s.nodeIdx[e.Dst]; !ok || !s.nodes[di].inUse {
		if _, err := s.addNodeLocked(e.Dst, nil); err != nil {
			return err
		}
	}
	rel := relRec{dst: e.Dst, etype: e.Type, ts: e.Timestamp, inUse: true, firstProp: -1, srcNext: s.nodes[si].firstRel}
	ri := s.appendRel(rel)
	// Edge property chain.
	keys := make([]string, 0, len(e.Props))
	for k, v := range e.Props {
		if v != "" {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	for i := len(keys) - 1; i >= 0; i-- {
		pi := s.appendProp(propRec{key: keys[i], val: e.Props[keys[i]], next: s.rels[ri].firstProp})
		s.rels[ri].firstProp = pi
	}
	// Linking the new relationship into the chain rewrites the node
	// record — the "updates at multiple random locations" of §5.2.
	s.nodes[si].firstRel = ri
	s.writeNode(si)
	s.writeRel(ri)
	return nil
}

// --- cache (Neo4j-Tuned) ---

func (s *Store) cachedProps(ni int32) (map[string]string, bool) {
	if !s.cfg.Tuned {
		return nil, false
	}
	s.cacheMu.Lock()
	defer s.cacheMu.Unlock()
	p, ok := s.cache[ni]
	return p, ok
}

func (s *Store) fillCache(ni int32, props map[string]string) {
	if !s.cfg.Tuned {
		return
	}
	s.cacheMu.Lock()
	defer s.cacheMu.Unlock()
	if len(s.cache) >= s.cacheN {
		// Random-ish eviction: drop one arbitrary entry.
		for k := range s.cache {
			delete(s.cache, k)
			break
		}
	}
	s.cache[ni] = props
}

func (s *Store) invalidateCache(ni int32) {
	s.cacheMu.Lock()
	delete(s.cache, ni)
	s.cacheMu.Unlock()
}

// materializeProps walks a property chain.
func (s *Store) materializeProps(first int32) map[string]string {
	props := make(map[string]string)
	for pi := first; pi >= 0; {
		p := s.readProp(pi)
		props[p.key] = p.val
		pi = p.next
	}
	return props
}

// nodeProps returns a node's property map via cache or chain walk.
func (s *Store) nodeProps(ni int32) map[string]string {
	if props, ok := s.cachedProps(ni); ok {
		return props
	}
	n := s.readNode(ni)
	props := s.materializeProps(n.firstProp)
	s.fillCache(ni, props)
	return props
}
