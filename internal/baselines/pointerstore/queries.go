package pointerstore

import (
	"fmt"
	"sort"

	"zipg/internal/graphapi"
)

// Compile-time check: the pointer store serves the shared workload API.
var _ graphapi.Store = (*Store)(nil)

// GetNodeProperty implements graphapi.Store. Each property is found by
// walking the node's property chain (pointer chasing).
func (s *Store) GetNodeProperty(id graphapi.NodeID, propertyIDs []string) ([]string, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ni, ok := s.nodeIdx[id]
	if !ok || !s.nodes[ni].inUse {
		return nil, false
	}
	props := s.nodeProps(ni)
	if len(propertyIDs) == 0 {
		keys := make([]string, 0, len(props))
		for k := range props {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		propertyIDs = keys
	}
	out := make([]string, len(propertyIDs))
	for i, pid := range propertyIDs {
		out[i] = props[pid]
	}
	return out, true
}

// GetNodeIDs implements graphapi.Store via the global property index —
// the design the paper credits for Neo4j's strong in-memory Graph Search
// numbers.
func (s *Store) GetNodeIDs(props map[string]string) []graphapi.NodeID {
	if len(props) == 0 {
		return nil
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	var result map[graphapi.NodeID]bool
	for k, v := range props {
		entries := s.index[indexKey(k, v)]
		// Index lookup cost: one access into the index region.
		s.med.Access(s.regIndex, int64(len(entries)), 16+int64(len(entries))*8)
		ids := make(map[graphapi.NodeID]bool, len(entries))
		for _, ni := range entries {
			n := s.readNode(ni)
			if !n.inUse {
				continue
			}
			// The index may hold stale entries after updates; verify.
			if cur := s.nodeProps(ni); cur[k] == v {
				ids[n.id] = true
			}
		}
		if result == nil {
			result = ids
		} else {
			for id := range result {
				if !ids[id] {
					delete(result, id)
				}
			}
		}
		if len(result) == 0 {
			return nil
		}
	}
	out := make([]graphapi.NodeID, 0, len(result))
	for id := range result {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// collectEdges walks a node's full relationship chain and filters by
// type (etype < 0 = all), returning live edges sorted by timestamp.
// This is the whole-chain scan the paper contrasts with ZipG's direct
// per-type records.
func (s *Store) collectEdges(ni int32, etype graphapi.EdgeType) []relWithIdx {
	var out []relWithIdx
	n := s.readNode(ni)
	for ri := n.firstRel; ri >= 0; {
		r := s.readRel(ri)
		if r.inUse && (etype < 0 || r.etype == etype) {
			out = append(out, relWithIdx{r, ri})
		}
		ri = r.srcNext
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].rel.ts < out[j].rel.ts })
	return out
}

type relWithIdx struct {
	rel relRec
	idx int32
}

// GetNeighborIDs implements graphapi.Store.
func (s *Store) GetNeighborIDs(id graphapi.NodeID, etype graphapi.EdgeType, props map[string]string) []graphapi.NodeID {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ni, ok := s.nodeIdx[id]
	if !ok || !s.nodes[ni].inUse {
		return nil
	}
	seen := make(map[graphapi.NodeID]bool)
	var out []graphapi.NodeID
	for _, rw := range s.collectEdges(ni, etype) {
		dst := rw.rel.dst
		if seen[dst] {
			continue
		}
		seen[dst] = true
		di, ok := s.nodeIdx[dst]
		if !ok || !s.nodes[di].inUse {
			continue
		}
		if len(props) > 0 {
			dp := s.nodeProps(di)
			match := true
			for k, v := range props {
				if dp[k] != v {
					match = false
					break
				}
			}
			if !match {
				continue
			}
		}
		out = append(out, dst)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// record is the pointer store's EdgeRecord: the scan's result,
// materialized (Neo4j has no per-type record; the scan already paid for
// everything, so the handle carries it).
type record struct {
	s     *Store
	edges []relWithIdx
}

func (r *record) Count() int { return len(r.edges) }

func (r *record) Range(tLo, tHi int64) (int, int) {
	tLo, tHi = graphapi.TimeBounds(tLo, tHi)
	beg := sort.Search(len(r.edges), func(i int) bool { return r.edges[i].rel.ts >= tLo })
	end := sort.Search(len(r.edges), func(i int) bool { return r.edges[i].rel.ts >= tHi })
	return beg, end
}

func (r *record) Data(timeOrder int) (graphapi.EdgeData, error) {
	if timeOrder < 0 || timeOrder >= len(r.edges) {
		return graphapi.EdgeData{}, fmt.Errorf("pointerstore: time order %d out of range [0,%d)", timeOrder, len(r.edges))
	}
	rw := r.edges[timeOrder]
	r.s.mu.RLock()
	defer r.s.mu.RUnlock()
	var props map[string]string
	if rw.rel.firstProp >= 0 {
		props = r.s.materializeProps(rw.rel.firstProp)
	}
	return graphapi.EdgeData{Dst: rw.rel.dst, Timestamp: rw.rel.ts, Props: props}, nil
}

func (r *record) Destinations() []graphapi.NodeID {
	out := make([]graphapi.NodeID, len(r.edges))
	for i, rw := range r.edges {
		out[i] = rw.rel.dst
	}
	return out
}

// GetEdgeRecord implements graphapi.Store.
func (s *Store) GetEdgeRecord(id graphapi.NodeID, etype graphapi.EdgeType) (graphapi.EdgeRecord, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ni, ok := s.nodeIdx[id]
	if !ok || !s.nodes[ni].inUse {
		return nil, false
	}
	edges := s.collectEdges(ni, etype)
	if len(edges) == 0 {
		return nil, false
	}
	return &record{s: s, edges: edges}, true
}

// GetEdgeRecords implements graphapi.Store.
func (s *Store) GetEdgeRecords(id graphapi.NodeID) []graphapi.EdgeRecord {
	s.mu.RLock()
	ni, ok := s.nodeIdx[id]
	if !ok || !s.nodes[ni].inUse {
		s.mu.RUnlock()
		return nil
	}
	all := s.collectEdges(ni, -1)
	s.mu.RUnlock()
	byType := make(map[graphapi.EdgeType][]relWithIdx)
	for _, rw := range all {
		byType[rw.rel.etype] = append(byType[rw.rel.etype], rw)
	}
	types := make([]graphapi.EdgeType, 0, len(byType))
	for t := range byType {
		types = append(types, t)
	}
	sort.Slice(types, func(i, j int) bool { return types[i] < types[j] })
	out := make([]graphapi.EdgeRecord, 0, len(types))
	for _, t := range types {
		out = append(out, &record{s: s, edges: byType[t]})
	}
	return out
}

// AppendNode implements graphapi.Store.
func (s *Store) AppendNode(id graphapi.NodeID, props map[string]string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, err := s.addNodeLocked(id, props)
	return err
}

// AppendEdge implements graphapi.Store.
func (s *Store) AppendEdge(e graphapi.Edge) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.addEdgeLocked(e)
}

// DeleteNode implements graphapi.Store.
func (s *Store) DeleteNode(id graphapi.NodeID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if ni, ok := s.nodeIdx[id]; ok {
		s.nodes[ni].inUse = false
		s.writeNode(ni)
		s.invalidateCache(ni)
	}
	return nil
}

// DeleteEdges implements graphapi.Store.
func (s *Store) DeleteEdges(src graphapi.NodeID, etype graphapi.EdgeType, dst graphapi.NodeID) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ni, ok := s.nodeIdx[src]
	if !ok || !s.nodes[ni].inUse {
		return 0, nil
	}
	removed := 0
	n := s.readNode(ni)
	for ri := n.firstRel; ri >= 0; {
		r := s.readRel(ri)
		if r.inUse && r.etype == etype && r.dst == dst {
			s.rels[ri].inUse = false
			s.writeRel(ri)
			removed++
		}
		ri = r.srcNext
	}
	return removed, nil
}

// Footprint returns the store's total bytes (records, id map, index).
func (s *Store) Footprint() int64 { return s.med.Footprint() }
