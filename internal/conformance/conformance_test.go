// Package conformance differentially tests every graph store in the
// repository — ZipG, the Neo4j-like pointer store and the Titan-like KV
// store — against the naive reference implementation, over random
// operation sequences. Agreement across all four is what licenses the
// benchmark harness's throughput comparisons.
package conformance

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"zipg"
	"zipg/internal/baselines/kvstore"
	"zipg/internal/baselines/pointerstore"
	"zipg/internal/graphapi"
	"zipg/internal/refgraph"
)

// systems builds every implementation over the same initial graph.
func systems(t testing.TB, nodes []graphapi.Node, edges []graphapi.Edge) map[string]graphapi.Store {
	t.Helper()
	g, err := zipg.Compress(zipg.GraphData{Nodes: nodes, Edges: edges}, zipg.Options{
		NumShards:         2,
		SamplingRate:      8,
		LogStoreThreshold: 20 << 10, // small, to exercise rollovers mid-test
	})
	if err != nil {
		t.Fatal(err)
	}
	ps, err := pointerstore.New(nodes, edges, pointerstore.Config{})
	if err != nil {
		t.Fatal(err)
	}
	pst, err := pointerstore.New(nodes, edges, pointerstore.Config{Tuned: true})
	if err != nil {
		t.Fatal(err)
	}
	kv, err := kvstore.New(nodes, edges, kvstore.Config{})
	if err != nil {
		t.Fatal(err)
	}
	kvc, err := kvstore.New(nodes, edges, kvstore.Config{Compress: true})
	if err != nil {
		t.Fatal(err)
	}
	return map[string]graphapi.Store{
		"zipg":        g,
		"neo4j":       ps,
		"neo4j-tuned": pst,
		"titan":       kv,
		"titan-c":     kvc,
	}
}

func randomGraph(rng *rand.Rand, nNodes, nEdges int) ([]graphapi.Node, []graphapi.Edge) {
	cities := []string{"Ithaca", "Berkeley", "Chicago", "Princeton"}
	nodes := make([]graphapi.Node, nNodes)
	for i := range nodes {
		nodes[i] = graphapi.Node{ID: int64(i), Props: map[string]string{
			"location": cities[rng.Intn(len(cities))],
			"name":     fmt.Sprintf("user%d", i),
		}}
		if rng.Intn(3) == 0 {
			nodes[i].Props["vip"] = "yes"
		}
	}
	edges := make([]graphapi.Edge, nEdges)
	for i := range edges {
		edges[i] = graphapi.Edge{
			Src:       int64(rng.Intn(nNodes)),
			Dst:       int64(rng.Intn(nNodes)),
			Type:      int64(rng.Intn(3)),
			Timestamp: int64(rng.Intn(1000)),
		}
		if rng.Intn(2) == 0 {
			edges[i].Props = map[string]string{"w": fmt.Sprint(rng.Intn(50))}
		}
	}
	return nodes, edges
}

// checkAgreement runs every read query against all systems and the
// reference, failing on any divergence.
func checkAgreement(t *testing.T, ref graphapi.Store, sys map[string]graphapi.Store, nNodes int, rng *rand.Rand, tag string) {
	t.Helper()
	for trial := 0; trial < 40; trial++ {
		id := int64(rng.Intn(nNodes + 5)) // occasionally out of range
		etype := int64(rng.Intn(4)) - 1   // occasionally wildcard (-1)

		wantProps, wantOK := ref.GetNodeProperty(id, nil)
		wantNbr := ref.GetNeighborIDs(id, etype, nil)
		wantNbrF := ref.GetNeighborIDs(id, etype, map[string]string{"location": "Ithaca"})
		// GetEdgeRecord takes a concrete type; wildcard uses GetEdgeRecords.
		var refRec graphapi.EdgeRecord
		refRecOK := false
		if etype >= 0 {
			refRec, refRecOK = ref.GetEdgeRecord(id, etype)
		}
		refRecs := ref.GetEdgeRecords(id)

		for name, s := range sys {
			gotProps, gotOK := s.GetNodeProperty(id, nil)
			if gotOK != wantOK {
				t.Fatalf("[%s/%s] GetNodeProperty(%d) ok=%v want %v", tag, name, id, gotOK, wantOK)
			}
			if wantOK && !reflect.DeepEqual(gotProps, wantProps) {
				t.Fatalf("[%s/%s] GetNodeProperty(%d) = %v want %v", tag, name, id, gotProps, wantProps)
			}
			if got := s.GetNeighborIDs(id, etype, nil); !sameIDs(got, wantNbr) {
				t.Fatalf("[%s/%s] GetNeighborIDs(%d,%d) = %v want %v", tag, name, id, etype, got, wantNbr)
			}
			if got := s.GetNeighborIDs(id, etype, map[string]string{"location": "Ithaca"}); !sameIDs(got, wantNbrF) {
				t.Fatalf("[%s/%s] filtered neighbors(%d,%d) = %v want %v", tag, name, id, etype, got, wantNbrF)
			}
			if etype >= 0 {
				rec, ok := s.GetEdgeRecord(id, etype)
				if ok != refRecOK {
					t.Fatalf("[%s/%s] GetEdgeRecord(%d,%d) ok=%v want %v", tag, name, id, etype, ok, refRecOK)
				}
				if ok {
					compareRecords(t, tag, name, id, etype, rec, refRec, rng)
				}
			}
			recs := s.GetEdgeRecords(id)
			if len(recs) != len(refRecs) {
				t.Fatalf("[%s/%s] GetEdgeRecords(%d) = %d records, want %d", tag, name, id, len(recs), len(refRecs))
			}
			for ri := range recs {
				compareRecords(t, tag, name, id, -1, recs[ri], refRecs[ri], rng)
			}
		}

		// Node search by property.
		for _, props := range []map[string]string{
			{"location": "Berkeley"},
			{"location": "Ithaca", "vip": "yes"},
			{"name": fmt.Sprintf("user%d", rng.Intn(nNodes))},
		} {
			want := ref.GetNodeIDs(props)
			for name, s := range sys {
				if got := s.GetNodeIDs(props); !sameIDs(got, want) {
					t.Fatalf("[%s/%s] GetNodeIDs(%v) = %v want %v", tag, name, props, got, want)
				}
			}
		}
	}
}

func compareRecords(t *testing.T, tag, name string, id, etype int64, rec, refRec graphapi.EdgeRecord, rng *rand.Rand) {
	t.Helper()
	if rec.Count() != refRec.Count() {
		t.Fatalf("[%s/%s] record(%d,%d) count=%d want %d", tag, name, id, etype, rec.Count(), refRec.Count())
	}
	// Range queries agree.
	lo := int64(rng.Intn(1000))
	hi := lo + int64(rng.Intn(500))
	gb, ge := rec.Range(lo, hi)
	wb, we := refRec.Range(lo, hi)
	if gb != wb || ge != we {
		t.Fatalf("[%s/%s] record(%d,%d).Range(%d,%d) = [%d,%d) want [%d,%d)", tag, name, id, etype, lo, hi, gb, ge, wb, we)
	}
	// Edge data agrees at every time order. Timestamp ties may permute
	// order across systems, so compare multisets per timestamp.
	n := rec.Count()
	gotAt := make(map[int64][]string)
	wantAt := make(map[int64][]string)
	for i := 0; i < n; i++ {
		gd, err := rec.Data(i)
		if err != nil {
			t.Fatalf("[%s/%s] Data(%d): %v", tag, name, i, err)
		}
		wd, err := refRec.Data(i)
		if err != nil {
			t.Fatalf("[%s/ref] Data(%d): %v", tag, i, err)
		}
		gotAt[gd.Timestamp] = append(gotAt[gd.Timestamp], fmt.Sprint(gd.Dst, gd.Props))
		wantAt[wd.Timestamp] = append(wantAt[wd.Timestamp], fmt.Sprint(wd.Dst, wd.Props))
	}
	for ts, want := range wantAt {
		got := gotAt[ts]
		if !sameMultiset(got, want) {
			t.Fatalf("[%s/%s] record(%d,%d) edges at ts=%d: %v want %v", tag, name, id, etype, ts, got, want)
		}
	}
}

func sameIDs(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func sameMultiset(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	count := make(map[string]int)
	for _, x := range a {
		count[x]++
	}
	for _, x := range b {
		count[x]--
		if count[x] < 0 {
			return false
		}
	}
	return true
}

func TestAllSystemsAgreeStatic(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	nodes, edges := randomGraph(rng, 40, 300)
	ref := refgraph.New(nodes, edges)
	sys := systems(t, nodes, edges)
	checkAgreement(t, ref, sys, 40, rng, "static")
}

func TestAllSystemsAgreeUnderMutation(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	const nNodes = 30
	nodes, edges := randomGraph(rng, nNodes, 150)
	ref := refgraph.New(nodes, edges)
	sys := systems(t, nodes, edges)

	apply := func(f func(s graphapi.Store) error) {
		t.Helper()
		if err := f(ref); err != nil {
			t.Fatal(err)
		}
		for name, s := range sys {
			if err := f(s); err != nil {
				t.Fatalf("[%s] %v", name, err)
			}
		}
	}

	for round := 0; round < 6; round++ {
		// A burst of random mutations applied to every system.
		for i := 0; i < 40; i++ {
			switch rng.Intn(10) {
			case 0, 1, 2, 3: // append edge
				e := graphapi.Edge{
					Src:       int64(rng.Intn(nNodes)),
					Dst:       int64(rng.Intn(nNodes)),
					Type:      int64(rng.Intn(3)),
					Timestamp: int64(rng.Intn(1000)),
					Props:     map[string]string{"w": fmt.Sprint(rng.Intn(9))},
				}
				apply(func(s graphapi.Store) error { return s.AppendEdge(e) })
			case 4, 5, 6: // append/update node
				id := int64(rng.Intn(nNodes + 10))
				props := map[string]string{
					"location": []string{"Ithaca", "Berkeley"}[rng.Intn(2)],
					"name":     fmt.Sprintf("user%d", id),
				}
				apply(func(s graphapi.Store) error { return s.AppendNode(id, props) })
			case 7: // delete edges
				src := int64(rng.Intn(nNodes))
				dst := int64(rng.Intn(nNodes))
				ty := int64(rng.Intn(3))
				wantN, _ := ref.DeleteEdges(src, ty, dst)
				for name, s := range sys {
					gotN, err := s.DeleteEdges(src, ty, dst)
					if err != nil {
						t.Fatal(err)
					}
					if gotN != wantN {
						t.Fatalf("[%s] DeleteEdges removed %d want %d", name, gotN, wantN)
					}
				}
			case 8: // delete node
				id := int64(rng.Intn(nNodes))
				apply(func(s graphapi.Store) error { return s.DeleteNode(id) })
			case 9: // recreate a node
				id := int64(rng.Intn(nNodes))
				apply(func(s graphapi.Store) error {
					return s.AppendNode(id, map[string]string{"name": "reborn"})
				})
			}
		}
		checkAgreement(t, ref, sys, nNodes, rng, fmt.Sprintf("round%d", round))
	}
}

// opScript is a quick-generatable program of graph mutations and
// queries. Interpreting the same script against zipg and the reference
// and comparing observations is a property: "no operation sequence can
// make the compressed store diverge from the naive one."
type opScript struct {
	Ops []scriptOp
}

type scriptOp struct {
	Kind  uint8
	ID    uint16
	Dst   uint16
	Type  uint8
	Ts    uint32
	Value uint8
}

func TestQuickOpScriptsAgree(t *testing.T) {
	const nNodes = 16
	cities := []string{"a", "b", "c"}
	f := func(script opScript) bool {
		if len(script.Ops) > 120 {
			script.Ops = script.Ops[:120]
		}
		rng := rand.New(rand.NewSource(77))
		nodes, edges := randomGraph(rng, nNodes, 40)
		g, err := zipg.Compress(zipg.GraphData{Nodes: nodes, Edges: edges}, zipg.Options{
			NumShards:         2,
			SamplingRate:      8,
			LogStoreThreshold: 4 << 10,
		})
		if err != nil {
			t.Fatal(err)
		}
		ref := refgraph.New(nodes, edges)
		sys := map[string]graphapi.Store{"zipg": g, "ref": ref}

		for _, op := range script.Ops {
			id := int64(op.ID % (nNodes + 4))
			dst := int64(op.Dst % (nNodes + 4))
			etype := int64(op.Type % 3)
			switch op.Kind % 8 {
			case 0, 1: // append edge
				e := graphapi.Edge{Src: id, Dst: dst, Type: etype, Timestamp: int64(op.Ts % 1000)}
				for _, s := range sys {
					if err := s.AppendEdge(e); err != nil {
						return false
					}
				}
			case 2: // append/replace node
				props := map[string]string{"location": cities[op.Value%3]}
				for _, s := range sys {
					if err := s.AppendNode(id, props); err != nil {
						return false
					}
				}
			case 3: // delete node
				for _, s := range sys {
					s.DeleteNode(id)
				}
			case 4: // delete edges
				a, _ := g.DeleteEdges(id, etype, dst)
				b, _ := ref.DeleteEdges(id, etype, dst)
				if a != b {
					return false
				}
			case 5: // observe node
				av, aok := g.GetNodeProperty(id, nil)
				bv, bok := ref.GetNodeProperty(id, nil)
				if aok != bok || !reflect.DeepEqual(av, bv) {
					return false
				}
			case 6: // observe record
				ar, aok := g.GetEdgeRecord(id, etype)
				br, bok := ref.GetEdgeRecord(id, etype)
				if aok != bok {
					return false
				}
				if aok && ar.Count() != br.Count() {
					return false
				}
			case 7: // observe neighbors
				if !reflect.DeepEqual(
					g.GetNeighborIDs(id, etype, nil),
					ref.GetNeighborIDs(id, etype, nil)) {
					return false
				}
			}
		}
		// Final sweep: every node agrees.
		for id := int64(0); id < nNodes+4; id++ {
			av, aok := g.GetNodeProperty(id, nil)
			bv, bok := ref.GetNodeProperty(id, nil)
			if aok != bok || !reflect.DeepEqual(av, bv) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
