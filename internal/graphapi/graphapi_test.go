package graphapi

import (
	"math"
	"testing"
)

func TestTimeBounds(t *testing.T) {
	lo, hi := TimeBounds(WildcardTime, WildcardTime)
	if lo != 0 || hi != math.MaxInt64 {
		t.Fatalf("full wildcard = [%d, %d)", lo, hi)
	}
	lo, hi = TimeBounds(5, WildcardTime)
	if lo != 5 || hi != math.MaxInt64 {
		t.Fatalf("open upper = [%d, %d)", lo, hi)
	}
	lo, hi = TimeBounds(WildcardTime, 9)
	if lo != 0 || hi != 9 {
		t.Fatalf("open lower = [%d, %d)", lo, hi)
	}
	lo, hi = TimeBounds(3, 7)
	if lo != 3 || hi != 7 {
		t.Fatalf("concrete = [%d, %d)", lo, hi)
	}
}
