// Package graphapi defines the graph-store interface shared by every
// system in this repository: ZipG itself (single-machine and
// distributed) and the two baselines (the Neo4j-like pointer store and
// the Titan-like KV store). The workload drivers (TAO, LinkBench, Graph
// Search, path queries, traversals) are written once against this
// interface, which is how the paper's apples-to-apples throughput
// comparisons are realized.
//
// The interface is ZipG's API (Table 1); the baselines implement the
// same operations with their own storage architectures, exactly as
// Neo4j/Titan had to serve the same queries in the paper's evaluation.
package graphapi

import "zipg/internal/layout"

// NodeID, EdgeType, Node, Edge and EdgeData are the shared data-model
// types (§2.1).
type (
	NodeID   = layout.NodeID
	EdgeType = layout.EdgeType
	Node     = layout.Node
	Edge     = layout.Edge
	EdgeData = layout.EdgeData
)

// WildcardType selects every EdgeType (§2.2: wildcard arguments).
const WildcardType EdgeType = -1

// WildcardTime makes a time bound unbounded in get_edge_range.
const WildcardTime int64 = -1

// EdgeRecord is a handle to all live edges of one EdgeType incident on a
// node, ordered by timestamp (§2.2). Implementations may be lazy.
type EdgeRecord interface {
	// Count returns the number of live edges.
	Count() int
	// Range returns the TimeOrder interval [beg, end) of edges with
	// timestamps in [tLo, tHi); WildcardTime bounds are open.
	Range(tLo, tHi int64) (int, int)
	// Data returns the (destination, timestamp, properties) of the edge
	// at the given TimeOrder.
	Data(timeOrder int) (EdgeData, error)
	// Destinations returns the destination IDs in TimeOrder.
	Destinations() []NodeID
}

// Store is the Table 1 API.
type Store interface {
	// GetNodeProperty returns property values for a node; nil/empty
	// propertyIDs is the wildcard (all properties in schema order).
	GetNodeProperty(id NodeID, propertyIDs []string) ([]string, bool)
	// GetNodeIDs returns nodes whose properties match every pair.
	GetNodeIDs(props map[string]string) []NodeID
	// GetNeighborIDs returns neighbors of id along etype (WildcardType
	// for all) whose properties match props (nil for no filter).
	GetNeighborIDs(id NodeID, etype EdgeType, props map[string]string) []NodeID
	// GetEdgeRecord returns the edge record for (id, etype).
	GetEdgeRecord(id NodeID, etype EdgeType) (EdgeRecord, bool)
	// GetEdgeRecords returns the records of all edge types on id.
	GetEdgeRecords(id NodeID) []EdgeRecord

	// AppendNode inserts or replaces a node.
	AppendNode(id NodeID, props map[string]string) error
	// AppendEdge appends an edge.
	AppendEdge(e Edge) error
	// DeleteNode lazily deletes a node.
	DeleteNode(id NodeID) error
	// DeleteEdges deletes all (src, etype, dst) edges, returning how many.
	DeleteEdges(src NodeID, etype EdgeType, dst NodeID) (int, error)
}

// AssocRangeReq names one assoc_range read for AssocRangeBatch: up to
// Limit edges of (ID, Type) in time order starting at TimeOrder Idx.
type AssocRangeReq struct {
	ID    NodeID
	Type  EdgeType
	Idx   int
	Limit int
}

// BatchStore is the optional vectorized extension of Store. A store that
// implements it answers many point reads in one locality-sorted pass;
// results are positional and identical to a scalar loop over the same
// requests (workload drivers fall back to that loop when the store does
// not implement this interface).
type BatchStore interface {
	// ObjGetBatch returns GetNodeProperty(id, nil) for every id.
	ObjGetBatch(ids []NodeID) ([][]string, []bool)
	// AssocRangeBatch returns, per request, the edges at TimeOrder
	// [Idx, min(Idx+Limit, count)) of (ID, Type); nil where the record
	// does not exist.
	AssocRangeBatch(reqs []AssocRangeReq) ([][]EdgeData, error)
}

// TimeBounds normalizes wildcard time bounds to a concrete interval.
func TimeBounds(tLo, tHi int64) (int64, int64) {
	if tLo == WildcardTime {
		tLo = 0
	}
	if tHi == WildcardTime {
		tHi = int64(^uint64(0) >> 1) // MaxInt64
	}
	return tLo, tHi
}
