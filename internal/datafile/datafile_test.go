package datafile

import (
	"path/filepath"
	"reflect"
	"testing"

	"zipg/internal/graphapi"
	"zipg/internal/layout"
)

func TestWriteReadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "part-0.graph")
	ns, err := layout.NewPropertySchema([]string{"a", "b"}, 99)
	if err != nil {
		t.Fatal(err)
	}
	g := &Graph{
		Nodes: []graphapi.Node{
			{ID: 1, Props: map[string]string{"a": "x"}},
			{ID: 2, Props: map[string]string{"b": "y"}},
		},
		Edges: []graphapi.Edge{
			{Src: 1, Dst: 2, Type: 3, Timestamp: 4, Props: map[string]string{"a": "z"}},
		},
		NodeSchema: ns.Spec(),
		EdgeSchema: ns.Spec(),
		ServerID:   2,
		NumServers: 5,
	}
	if err := Write(path, g); err != nil {
		t.Fatal(err)
	}
	got, err := Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, g) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, g)
	}
	// The schema spec rebuilds a working schema.
	schema, err := got.NodeSchema.Build()
	if err != nil {
		t.Fatal(err)
	}
	if schema.NumProperties() != 2 {
		t.Fatalf("rebuilt schema has %d properties", schema.NumProperties())
	}
}

func TestReadErrors(t *testing.T) {
	if _, err := Read(filepath.Join(t.TempDir(), "missing.graph")); err == nil {
		t.Error("missing file should fail")
	}
}
