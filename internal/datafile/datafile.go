// Package datafile reads and writes the serialized graph-partition files
// exchanged between cmd/zipg-load (which generates and partitions a
// graph) and cmd/zipg-server (which serves one partition). This is the
// paper's "serialized flat files" persistence boundary (§4.1) at the
// granularity of a server's input.
package datafile

import (
	"encoding/gob"
	"fmt"
	"os"

	"zipg/internal/graphapi"
	"zipg/internal/layout"
)

// Graph is one partition's raw content plus the system-global schemas
// (which every partition must share so delimiters agree).
type Graph struct {
	Nodes      []graphapi.Node
	Edges      []graphapi.Edge
	NodeSchema layout.SchemaSpec
	EdgeSchema layout.SchemaSpec
	// ServerID and NumServers record the partitioning this file belongs
	// to; servers refuse mismatched files.
	ServerID   int
	NumServers int
}

// Write serializes the partition to path.
func Write(path string, g *Graph) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("datafile: %w", err)
	}
	defer f.Close()
	if err := gob.NewEncoder(f).Encode(g); err != nil {
		return fmt.Errorf("datafile: encode %s: %w", path, err)
	}
	return f.Sync()
}

// Read loads a partition from path.
func Read(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("datafile: %w", err)
	}
	defer f.Close()
	var g Graph
	if err := gob.NewDecoder(f).Decode(&g); err != nil {
		return nil, fmt.Errorf("datafile: decode %s: %w", path, err)
	}
	return &g, nil
}
