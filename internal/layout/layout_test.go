package layout

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"zipg/internal/succinct"
)

func mustSchema(t testing.TB, ids []string, maxLen int) *PropertySchema {
	t.Helper()
	s, err := NewPropertySchema(ids, maxLen)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestFixedCodecRoundTrip(t *testing.T) {
	for _, v := range []uint64{0, 1, 63, 64, 4095, 4096, 1 << 30, 1 << 40} {
		w := FixedWidth(v)
		buf := AppendFixed(nil, v, w)
		if got := DecodeFixed(buf); got != v {
			t.Errorf("round trip %d: got %d", v, got)
		}
		// Every digit must be printable and disjoint from delimiters.
		for _, b := range buf {
			if b < 0x20 || b > 0x7E {
				t.Errorf("digit 0x%02x of %d not printable", b, v)
			}
		}
	}
}

func TestFixedCodecQuick(t *testing.T) {
	f := func(v uint64, extra uint8) bool {
		w := FixedWidth(v) + int(extra%3) // wider-than-needed must also work
		buf := AppendFixed(nil, v, w)
		return DecodeFixed(buf) == v && len(buf) == w
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFixedOverflowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on overflow")
		}
	}()
	AppendFixed(nil, 64, 1)
}

func TestSchemaDelimiters(t *testing.T) {
	// 30 property IDs exercises the one-byte -> two-byte transition.
	ids := make([]string, 30)
	for i := range ids {
		ids[i] = fmt.Sprintf("prop%02d", i)
	}
	s := mustSchema(t, ids, 100)
	seen := map[string]bool{}
	for i := 0; i < s.NumProperties(); i++ {
		d := string(s.Delimiter(i))
		if seen[d] {
			t.Fatalf("duplicate delimiter %q", d)
		}
		seen[d] = true
		if len(d) == 1 && (d[0] < firstPropDelim || d[0] > lastPropDelim) {
			t.Fatalf("one-byte delimiter out of range: %q", d)
		}
		if len(d) == 2 && d[0] != twoByteLead {
			t.Fatalf("two-byte delimiter bad lead: %q", d)
		}
	}
	// The paper's threshold: 24 one-byte delimiters here, then two-byte.
	if len(s.Delimiter(23)) != 1 || len(s.Delimiter(24)) != 2 {
		t.Fatalf("one/two-byte transition wrong")
	}
}

func TestSchemaErrors(t *testing.T) {
	if _, err := NewPropertySchema([]string{"a", "a"}, 10); err == nil {
		t.Error("duplicate IDs should fail")
	}
	s := mustSchema(t, []string{"age"}, 63)
	if _, err := s.SerializeProps(nil, map[string]string{"missing": "x"}); err == nil {
		t.Error("unknown property should fail")
	}
	if _, err := s.SerializeProps(nil, map[string]string{"age": "bad\x01byte"}); err == nil {
		t.Error("non-printable value should fail")
	}
	long := make([]byte, 64)
	for i := range long {
		long[i] = 'x'
	}
	if _, err := s.SerializeProps(nil, map[string]string{"age": string(long)}); err == nil {
		t.Error("value longer than schema max should fail")
	}
}

func TestSerializeParsePropsRoundTrip(t *testing.T) {
	s := mustSchema(t, []string{"age", "location", "nickname"}, 100)
	cases := []map[string]string{
		{"age": "42", "location": "Ithaca", "nickname": "Ally"},
		{"location": "Princeton", "nickname": "Bobby"}, // missing age
		{"age": "24", "nickname": "Cat"},
		{}, // all missing
		{"age": ""},
	}
	for _, props := range cases {
		blob, err := s.SerializeProps(nil, props)
		if err != nil {
			t.Fatal(err)
		}
		if len(blob) != s.PropsEncodedSize(props) {
			t.Fatalf("PropsEncodedSize=%d, actual %d", s.PropsEncodedSize(props), len(blob))
		}
		got, n, err := s.ParseProps(blob)
		if err != nil {
			t.Fatal(err)
		}
		if n != len(blob) {
			t.Fatalf("consumed %d of %d", n, len(blob))
		}
		want := map[string]string{}
		for k, v := range props {
			if v != "" {
				want[k] = v
			}
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("round trip %v -> %v", want, got)
		}
	}
}

func TestParsePropsErrors(t *testing.T) {
	s := mustSchema(t, []string{"a", "b"}, 10)
	if _, _, err := s.ParseProps(nil); err == nil {
		t.Error("nil record should fail")
	}
	blob, _ := s.SerializeProps(nil, map[string]string{"a": "hello"})
	if _, _, err := s.ParseProps(blob[:len(blob)-1]); err == nil {
		t.Error("truncated record should fail")
	}
	bad := append([]byte(nil), blob...)
	bad[len(bad)-1] = 'x'
	if _, _, err := s.ParseProps(bad); err == nil {
		t.Error("corrupt end delimiter should fail")
	}
}

// buildNodes makes a deterministic node set in the TAO property style.
func buildNodes(n int) ([]Node, *PropertySchema) {
	schema, err := NewPropertySchema([]string{"age", "location", "nickname", "status"}, 200)
	if err != nil {
		panic(err)
	}
	cities := []string{"Ithaca", "Princeton", "Berkeley", "Chicago"}
	nodes := make([]Node, n)
	for i := range nodes {
		nodes[i] = Node{
			ID: int64(i * 3), // non-contiguous IDs
			Props: map[string]string{
				"age":      fmt.Sprint(20 + i%50),
				"location": cities[i%len(cities)],
				"nickname": fmt.Sprintf("user%d", i),
			},
		}
		if i%5 == 0 {
			delete(nodes[i].Props, "age") // some nodes miss properties
		}
		if i%7 == 0 {
			nodes[i].Props["status"] = "online"
		}
	}
	return nodes, schema
}

// nodeViews builds a raw and a compressed view over the same NodeFile so
// every test can assert both paths agree.
func nodeViews(t testing.TB, nodes []Node, schema *PropertySchema) (raw, compressed *NodeFileView) {
	t.Helper()
	flat, ids, offs, err := BuildNodeFile(nodes, schema)
	if err != nil {
		t.Fatal(err)
	}
	raw = NewNodeFileView(NewRawSource(flat, nil), schema, ids, offs, nil)
	st := succinct.Build(flat, succinct.Options{SamplingRate: 8})
	compressed = NewNodeFileView(st, schema, ids, offs, nil)
	return raw, compressed
}

func TestNodeFileGetProperty(t *testing.T) {
	nodes, schema := buildNodes(60)
	raw, comp := nodeViews(t, nodes, schema)
	for _, v := range []*NodeFileView{raw, comp} {
		for _, n := range nodes {
			for pid, want := range n.Props {
				got, ok := v.GetProperty(n.ID, pid)
				if !ok || got != want {
					t.Fatalf("GetProperty(%d,%s) = %q,%v want %q", n.ID, pid, got, ok, want)
				}
			}
			if _, ok := v.GetProperty(n.ID, "nope"); ok {
				t.Fatalf("unknown property should miss")
			}
		}
		if _, ok := v.GetProperty(999_999, "age"); ok {
			t.Fatal("missing node should miss")
		}
	}
}

func TestNodeFileGetPropertiesWildcard(t *testing.T) {
	nodes, schema := buildNodes(20)
	_, comp := nodeViews(t, nodes, schema)
	for _, n := range nodes {
		props, ok := comp.GetAllProps(n.ID)
		if !ok {
			t.Fatalf("node %d missing", n.ID)
		}
		want := map[string]string{}
		for k, val := range n.Props {
			if val != "" {
				want[k] = val
			}
		}
		if !reflect.DeepEqual(props, want) {
			t.Fatalf("GetAllProps(%d) = %v, want %v", n.ID, props, want)
		}
		// Selected subset, including an absent one.
		vals, _ := comp.GetProperties(n.ID, []string{"location", "definitely-absent"})
		if vals[0] != n.Props["location"] || vals[1] != "" {
			t.Fatalf("GetProperties(%d) = %v", n.ID, vals)
		}
	}
}

func TestNodeFileFindNodes(t *testing.T) {
	nodes, schema := buildNodes(80)
	raw, comp := nodeViews(t, nodes, schema)
	for _, v := range []*NodeFileView{raw, comp} {
		got := v.FindNodes(map[string]string{"location": "Ithaca"})
		var want []NodeID
		for _, n := range nodes {
			if n.Props["location"] == "Ithaca" {
				want = append(want, n.ID)
			}
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("FindNodes(Ithaca) = %v, want %v", got, want)
		}

		// Conjunction.
		got = v.FindNodes(map[string]string{"location": "Ithaca", "status": "online"})
		want = nil
		for _, n := range nodes {
			if n.Props["location"] == "Ithaca" && n.Props["status"] == "online" {
				want = append(want, n.ID)
			}
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("FindNodes(conj) = %v, want %v", got, want)
		}

		// Exact match must not match substrings or values of other props.
		if res := v.FindNodes(map[string]string{"location": "Ithac"}); res != nil {
			t.Fatalf("prefix matched: %v", res)
		}
		if res := v.FindNodes(map[string]string{"nickname": "Ithaca"}); res != nil {
			t.Fatalf("cross-property match: %v", res)
		}
		if res := v.FindNodes(nil); res != nil {
			t.Fatalf("empty query matched: %v", res)
		}
	}
}

func TestNodeFileMatchesProps(t *testing.T) {
	nodes, schema := buildNodes(10)
	_, comp := nodeViews(t, nodes, schema)
	n := nodes[1]
	if !comp.MatchesProps(n.ID, map[string]string{"location": n.Props["location"]}) {
		t.Error("should match own location")
	}
	if comp.MatchesProps(n.ID, map[string]string{"location": "Nowhere"}) {
		t.Error("should not match wrong location")
	}
}

// buildEdges makes a deterministic edge set with several types and
// timestamps.
func buildEdges(nEdges int) ([]Edge, *PropertySchema) {
	schema, err := NewPropertySchema([]string{"weight", "note"}, 200)
	if err != nil {
		panic(err)
	}
	rng := rand.New(rand.NewSource(99))
	edges := make([]Edge, nEdges)
	for i := range edges {
		edges[i] = Edge{
			Src:       int64(rng.Intn(10)),
			Dst:       int64(rng.Intn(1000)),
			Type:      int64(rng.Intn(3)),
			Timestamp: int64(rng.Intn(100000)),
			Props: map[string]string{
				"weight": fmt.Sprint(rng.Intn(100)),
				"note":   fmt.Sprintf("edge-%d", i),
			},
		}
	}
	return edges, schema
}

func edgeViews(t testing.TB, edges []Edge, schema *PropertySchema) (raw, comp *EdgeFileView) {
	t.Helper()
	flat, _, err := BuildEdgeFile(edges, schema)
	if err != nil {
		t.Fatal(err)
	}
	raw = NewEdgeFileView(NewRawSource(flat, nil), schema)
	st := succinct.Build(flat, succinct.Options{SamplingRate: 8})
	comp = NewEdgeFileView(st, schema)
	return raw, comp
}

// groupEdges replicates the builder's grouping for verification.
func groupEdges(edges []Edge) map[[2]int64][]Edge {
	g := map[[2]int64][]Edge{}
	for _, e := range edges {
		k := [2]int64{e.Src, e.Type}
		g[k] = append(g[k], e)
	}
	for k := range g {
		es := g[k]
		sort.SliceStable(es, func(i, j int) bool { return es[i].Timestamp < es[j].Timestamp })
	}
	return g
}

func TestEdgeFileRecordsAndData(t *testing.T) {
	edges, schema := buildEdges(400)
	groups := groupEdges(edges)
	raw, comp := edgeViews(t, edges, schema)
	for _, v := range []*EdgeFileView{raw, comp} {
		for k, want := range groups {
			ref, ok := v.GetEdgeRecord(k[0], k[1])
			if !ok {
				t.Fatalf("record (%d,%d) missing", k[0], k[1])
			}
			if ref.Count != len(want) {
				t.Fatalf("record (%d,%d) count=%d, want %d", k[0], k[1], ref.Count, len(want))
			}
			for i, e := range want {
				d, err := v.GetEdgeData(&ref, i)
				if err != nil {
					t.Fatal(err)
				}
				if d.Dst != e.Dst || d.Timestamp != e.Timestamp {
					t.Fatalf("edge data (%d,%d)[%d] = %+v, want dst=%d ts=%d", k[0], k[1], i, d, e.Dst, e.Timestamp)
				}
				if !reflect.DeepEqual(d.Props, e.Props) {
					t.Fatalf("edge props mismatch: %v vs %v", d.Props, e.Props)
				}
			}
			// Destinations in one call matches per-edge destinations.
			dsts := v.Destinations(&ref)
			for i, e := range want {
				if dsts[i] != e.Dst {
					t.Fatalf("Destinations[%d] = %d, want %d", i, dsts[i], e.Dst)
				}
			}
		}
		// Missing record.
		if _, ok := v.GetEdgeRecord(999, 0); ok {
			t.Fatal("nonexistent record found")
		}
		if _, ok := v.GetEdgeRecord(1, 99); ok {
			t.Fatal("nonexistent type found")
		}
	}
}

func TestEdgeFileWildcardType(t *testing.T) {
	edges, schema := buildEdges(300)
	groups := groupEdges(edges)
	_, comp := edgeViews(t, edges, schema)
	perSrc := map[int64]int{}
	for k := range groups {
		perSrc[k[0]]++
	}
	for src, wantRecs := range perSrc {
		refs := comp.GetEdgeRecords(src)
		if len(refs) != wantRecs {
			t.Fatalf("GetEdgeRecords(%d) = %d records, want %d", src, len(refs), wantRecs)
		}
		for _, ref := range refs {
			if ref.Src != src {
				t.Fatalf("record src=%d, want %d", ref.Src, src)
			}
			if ref.Count != len(groups[[2]int64{src, ref.Type}]) {
				t.Fatalf("wildcard record count wrong")
			}
		}
	}
}

func TestEdgeFileKeyPrefixSafety(t *testing.T) {
	// Node 1 and node 12: the key for src=1 must not match src=12, and
	// etype 2 must not match etype 21.
	schema := mustSchema(t, []string{"p"}, 10)
	edges := []Edge{
		{Src: 1, Dst: 5, Type: 2, Timestamp: 10},
		{Src: 12, Dst: 6, Type: 2, Timestamp: 10},
		{Src: 1, Dst: 7, Type: 21, Timestamp: 10},
	}
	_, comp := edgeViews(t, edges, schema)
	ref, ok := comp.GetEdgeRecord(1, 2)
	if !ok || ref.Count != 1 {
		t.Fatalf("src=1,t=2: ok=%v count=%d", ok, ref.Count)
	}
	if d, _ := comp.GetEdgeData(&ref, 0); d.Dst != 5 {
		t.Fatalf("wrong record matched: dst=%d", d.Dst)
	}
	if refs := comp.GetEdgeRecords(1); len(refs) != 2 {
		t.Fatalf("GetEdgeRecords(1) = %d, want 2", len(refs))
	}
}

func TestEdgeFileTimeRange(t *testing.T) {
	schema := mustSchema(t, []string{"p"}, 10)
	var edges []Edge
	for i := 0; i < 50; i++ {
		edges = append(edges, Edge{Src: 7, Dst: int64(i), Type: 0, Timestamp: int64(i * 10)})
	}
	raw, comp := edgeViews(t, edges, schema)
	for _, v := range []*EdgeFileView{raw, comp} {
		ref, _ := v.GetEdgeRecord(7, 0)
		beg, end := v.TimeRange(&ref, 100, 200)
		if beg != 10 || end != 20 {
			t.Fatalf("TimeRange[100,200) = [%d,%d), want [10,20)", beg, end)
		}
		// Inclusive lower, exclusive upper.
		beg, end = v.TimeRange(&ref, 0, 1)
		if beg != 0 || end != 1 {
			t.Fatalf("TimeRange[0,1) = [%d,%d)", beg, end)
		}
		// Out of range.
		beg, end = v.TimeRange(&ref, 10_000, 20_000)
		if beg != end {
			t.Fatalf("empty range not empty: [%d,%d)", beg, end)
		}
	}
}

func TestEdgeFileTimestampsSorted(t *testing.T) {
	edges, schema := buildEdges(500)
	_, comp := edgeViews(t, edges, schema)
	for k := range groupEdges(edges) {
		ref, _ := comp.GetEdgeRecord(k[0], k[1])
		var prev int64 = -1
		for i := 0; i < ref.Count; i++ {
			ts := comp.Timestamp(&ref, i)
			if ts < prev {
				t.Fatalf("timestamps unsorted in (%d,%d) at %d", k[0], k[1], i)
			}
			prev = ts
		}
	}
}

func TestEdgeFileQuickRoundTrip(t *testing.T) {
	// Property: any edge set survives a build+parse round trip over both
	// raw and compressed sources.
	schema := mustSchema(t, []string{"p"}, 64)
	f := func(raw []struct {
		Src, Dst uint16
		Type     uint8
		Ts       uint32
	}) bool {
		if len(raw) > 60 {
			raw = raw[:60]
		}
		edges := make([]Edge, len(raw))
		for i, r := range raw {
			edges[i] = Edge{
				Src: int64(r.Src % 20), Dst: int64(r.Dst),
				Type: int64(r.Type % 4), Timestamp: int64(r.Ts),
				Props: map[string]string{"p": fmt.Sprint(i)},
			}
		}
		flat, _, err := BuildEdgeFile(edges, schema)
		if err != nil {
			return false
		}
		v := NewEdgeFileView(NewRawSource(flat, nil), schema)
		groups := groupEdges(edges)
		for k, want := range groups {
			ref, ok := v.GetEdgeRecord(k[0], k[1])
			if !ok || ref.Count != len(want) {
				return false
			}
			for i, e := range want {
				d, err := v.GetEdgeData(&ref, i)
				if err != nil || d.Dst != e.Dst || d.Timestamp != e.Timestamp {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestBuildNodeFileDuplicateIDs(t *testing.T) {
	schema := mustSchema(t, []string{"a"}, 10)
	_, _, _, err := BuildNodeFile([]Node{{ID: 1}, {ID: 1}}, schema)
	if err == nil {
		t.Error("duplicate node IDs should fail")
	}
}

func TestBuildEdgeFileNegativeValues(t *testing.T) {
	schema := mustSchema(t, []string{"a"}, 10)
	if _, _, err := BuildEdgeFile([]Edge{{Src: -1}}, schema); err == nil {
		t.Error("negative src should fail")
	}
	if _, _, err := BuildEdgeFile([]Edge{{Src: 1, Dst: 1, Timestamp: -5}}, schema); err == nil {
		t.Error("negative timestamp should fail")
	}
}

func TestRecordEnd(t *testing.T) {
	schema := mustSchema(t, []string{"p"}, 32)
	edges := []Edge{
		{Src: 1, Dst: 2, Type: 0, Timestamp: 5, Props: map[string]string{"p": "x"}},
		{Src: 1, Dst: 3, Type: 0, Timestamp: 6},
		{Src: 2, Dst: 4, Type: 0, Timestamp: 7},
	}
	flat, _, err := BuildEdgeFile(edges, schema)
	if err != nil {
		t.Fatal(err)
	}
	v := NewEdgeFileView(NewRawSource(flat, nil), schema)
	r1, _ := v.GetEdgeRecord(1, 0)
	r2, _ := v.GetEdgeRecord(2, 0)
	if v.RecordEnd(&r1) != r2.Offset {
		t.Fatalf("RecordEnd(r1)=%d, next record at %d", v.RecordEnd(&r1), r2.Offset)
	}
	if v.RecordEnd(&r2) != int64(len(flat)) {
		t.Fatalf("RecordEnd(last)=%d, file len %d", v.RecordEnd(&r2), len(flat))
	}
}

func TestFindEdgesLayout(t *testing.T) {
	schema := mustSchema(t, []string{"note", "weight"}, 64)
	edges := []Edge{
		{Src: 1, Dst: 2, Type: 0, Timestamp: 10, Props: map[string]string{"note": "alpha", "weight": "3"}},
		{Src: 1, Dst: 3, Type: 0, Timestamp: 20, Props: map[string]string{"note": "beta", "weight": "3"}},
		{Src: 2, Dst: 1, Type: 1, Timestamp: 30, Props: map[string]string{"note": "alpha", "weight": "7"}},
		{Src: 5, Dst: 1, Type: 0, Timestamp: 40, Props: map[string]string{"note": "alphabet"}},
	}
	flat, index, err := BuildEdgeFile(edges, schema)
	if err != nil {
		t.Fatal(err)
	}
	if len(index) != 3 { // (1,0), (2,1), (5,0)
		t.Fatalf("index = %+v", index)
	}
	for _, src := range []ByteSource{NewRawSource(flat, nil), succinct.Build(flat, succinct.Options{SamplingRate: 4})} {
		v := NewEdgeFileView(src, schema)
		got := v.FindEdges(index, map[string]string{"note": "alpha"})
		want := []EdgeMatch{{Src: 1, Type: 0, TimeOrder: 0}, {Src: 2, Type: 1, TimeOrder: 0}}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("FindEdges(alpha) = %+v, want %+v", got, want)
		}
		// Conjunction.
		got = v.FindEdges(index, map[string]string{"note": "alpha", "weight": "7"})
		if !reflect.DeepEqual(got, []EdgeMatch{{Src: 2, Type: 1, TimeOrder: 0}}) {
			t.Fatalf("FindEdges(conj) = %+v", got)
		}
		// Exact match: "alphabet" must not hit "alpha"; unknown ID empty.
		if got := v.FindEdges(index, map[string]string{"note": "alph"}); got != nil {
			t.Fatalf("prefix matched: %+v", got)
		}
		if got := v.FindEdges(index, map[string]string{"nope": "x"}); got != nil {
			t.Fatalf("unknown property matched: %+v", got)
		}
		// TimeOrder resolution within a record.
		got = v.FindEdges(index, map[string]string{"note": "beta"})
		if !reflect.DeepEqual(got, []EdgeMatch{{Src: 1, Type: 0, TimeOrder: 1}}) {
			t.Fatalf("FindEdges(beta) = %+v", got)
		}
	}
}
