package layout

import (
	"fmt"

	"zipg/internal/succinct"
)

// This file holds the vectorized record read paths. Both views accept a
// batch of record requests, hand the record offsets to the succinct
// WalkBatch kernel (which sorts them and moves ONE shared walker with
// shared Ψ cursors through the file), and decode each record with a
// single front-to-back walk. Over a non-compressed source the same
// per-record decode runs in a plain loop — the code path is identical,
// only the walker sharing is succinct-specific.

// GetPropertiesBatch answers GetProperties(id, propertyIDs) for every id
// in one locality-sorted sweep. Results are positional: vals[i]/oks[i]
// correspond to ids[i], duplicates included; missing IDs yield
// (nil, false) exactly like the scalar call.
func (v *NodeFileView) GetPropertiesBatch(ids []NodeID, propertyIDs []string) ([][]string, []bool) {
	vals := make([][]string, len(ids))
	oks := make([]bool, len(ids))
	if len(ids) == 0 {
		return vals, oks
	}
	s, _ := v.src.(*succinct.Store)
	if s == nil || len(ids) == 1 {
		for i, id := range ids {
			vals[i], oks[i] = v.GetProperties(id, propertyIDs)
		}
		return vals, oks
	}
	// Resolve IDs to record offsets up front (in-memory binary searches);
	// absent IDs simply don't join the walk.
	offs := make([]int, 0, len(ids))
	back := make([]int, 0, len(ids))
	for i, id := range ids {
		if k := v.indexOf(id); k >= 0 {
			offs = append(offs, int(v.offs.Get(k)))
			back = append(back, i)
		}
	}
	if len(offs) == 0 {
		return vals, oks
	}
	sc := getScratch()
	defer putScratch(sc)
	s.WalkBatch(offs, func(j int, w *succinct.Walker) {
		rw := recWalk{ss: s, sw: *w}
		i := back[j]
		vals[i], oks[i] = v.propsFromWalk(&rw, propertyIDs, sc)
		*w = rw.sw // carry the walk position into the next record
	})
	return vals, oks
}

// WarmCaches populates the ref's lazy caches — the decoded timestamp
// array and the property-length prefix sums — in one record walk, instead
// of the one whole-array extract (and ISA anchor) each that the lazy
// accessors pay when first touched separately. Accessors that only read
// the caches (Timestamp, TimeRange, propLocation) are pure in-memory
// lookups afterwards. No-op when both caches are already warm.
func (v *EdgeFileView) WarmCaches(ref *EdgeRecordRef) {
	if ref.ts != nil && ref.propEnds != nil {
		return
	}
	sc := getScratch()
	defer putScratch(sc)
	w := newRecWalk(v.src, ref.tsOff)
	if ref.ts == nil {
		sc.buf = w.appendN(sc.buf[:0], ref.Count*ref.TLen)
		ref.ts = decodeFixedArray(sc.buf, ref.TLen, ref.Count)
	} else {
		w.skip(ref.Count * ref.TLen)
	}
	w.skip(ref.Count * ref.DLen)
	if ref.propEnds == nil {
		sc.buf = w.appendN(sc.buf[:0], ref.Count*ref.PLenW)
		ref.propEnds = prefixSums(sc.buf, ref.PLenW, ref.Count)
	}
}

// decodeFixedArray decodes count fixed-width values from raw.
func decodeFixedArray(raw []byte, width, count int) []int64 {
	out := make([]int64, 0, count)
	for i := 0; i+width <= len(raw); i += width {
		out = append(out, int64(DecodeFixed(raw[i:i+width])))
	}
	return out
}

// prefixSums decodes count fixed-width lengths and returns their running
// sums (the propEnds cache format).
func prefixSums(raw []byte, width, count int) []int {
	out := make([]int, 0, count)
	sum := 0
	for i := 0; i+width <= len(raw); i += width {
		sum += int(DecodeFixed(raw[i : i+width]))
		out = append(out, sum)
	}
	return out
}

// EdgeRangeReq asks for the edges [Idx, Idx+Limit) in time order from the
// record starting at Offset (known from the build index) for (Src, Type).
type EdgeRangeReq struct {
	Src    NodeID
	Type   EdgeType
	Offset int64
	Idx    int
	Limit  int
}

// GetEdgeRangeBatch reads every requested record slice in one
// locality-sorted sweep. Results are positional and match what a scalar
// loop of GetEdgeRecordAt + GetEdgeData over [Idx, min(Idx+Limit, Count))
// would produce (negative indices skipped, like TAO assoc_range). The
// first decode error aborts, mirroring the scalar loop.
func (v *EdgeFileView) GetEdgeRangeBatch(reqs []EdgeRangeReq) ([][]EdgeData, error) {
	out := make([][]EdgeData, len(reqs))
	if len(reqs) == 0 {
		return out, nil
	}
	sc := getScratch()
	defer putScratch(sc)
	s, _ := v.src.(*succinct.Store)
	if s == nil || len(reqs) == 1 {
		for i, req := range reqs {
			w := newRecWalk(v.src, int(req.Offset))
			data, err := v.rangeFromWalk(&w, req, sc)
			if err != nil {
				return nil, err
			}
			out[i] = data
		}
		return out, nil
	}
	offs := make([]int, len(reqs))
	for i, req := range reqs {
		offs[i] = int(req.Offset)
	}
	var firstErr error
	s.WalkBatch(offs, func(i int, w *succinct.Walker) {
		if firstErr != nil {
			return
		}
		rw := recWalk{ss: s, sw: *w}
		data, err := v.rangeFromWalk(&rw, reqs[i], sc)
		*w = rw.sw
		if err != nil {
			firstErr = err
			return
		}
		out[i] = data
	})
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}

// rangeFromWalk decodes one record slice with a single front-to-back
// walk: header, full timestamp array, the requested destination window,
// full property-length array, and the contiguous property payload of the
// requested edges — where the scalar path pays one extract (ISA anchor)
// per field per edge, this pays one walk per record.
func (v *EdgeFileView) rangeFromWalk(w *recWalk, req EdgeRangeReq, sc *recScratch) ([]EdgeData, error) {
	keyLen := recordKeyLen(req.Src, req.Type)
	w.skip(keyLen)
	var hdr [hotFixedWidth + 3*9]byte
	ref, ok := v.parseRecordWalk(w, req.Offset, keyLen, req.Src, req.Type, hdr[:0])
	if !ok {
		return nil, fmt.Errorf("layout: bad edge record at %d for (%d,%d)", req.Offset, req.Src, req.Type)
	}
	idx := req.Idx
	if idx < 0 {
		idx = 0 // scalar loops skip i < 0
	}
	end := req.Idx + req.Limit
	if end > ref.Count {
		end = ref.Count
	}
	n := end - idx
	if n <= 0 {
		return nil, nil
	}
	// Timestamps: decode the whole (Count·TLen) array — the walker passes
	// over it anyway, and the requested window needs it in time order.
	sc.buf = w.appendN(sc.buf[:0], ref.Count*ref.TLen)
	ts := decodeFixedArray(sc.buf, ref.TLen, ref.Count)
	// Destinations: only the requested window materializes; the walker
	// skips the flanks.
	w.skip(idx * ref.DLen)
	sc.buf = w.appendN(sc.buf[:0], n*ref.DLen)
	dsts := decodeFixedArray(sc.buf, ref.DLen, n)
	w.skip((ref.Count - idx - n) * ref.DLen)
	// Property lengths: full array, for the window's byte range.
	sc.buf = w.appendN(sc.buf[:0], ref.Count*ref.PLenW)
	ends := prefixSums(sc.buf, ref.PLenW, ref.Count)
	start := 0
	if idx > 0 {
		start = ends[idx-1]
	}
	w.skip(start)
	sc.buf = w.appendN(sc.buf[:0], ends[idx+n-1]-start)
	payload := sc.buf
	out := make([]EdgeData, 0, n)
	cur := start
	for i := 0; i < n; i++ {
		e := EdgeData{Dst: NodeID(dsts[i]), Timestamp: ts[idx+i]}
		bend := ends[idx+i]
		if bend > cur {
			props, _, err := v.schema.ParseProps(payload[cur-start : bend-start])
			if err != nil {
				return nil, fmt.Errorf("layout: edge %d/%d props: %w", ref.Src, idx+i, err)
			}
			e.Props = props
		}
		cur = bend
		out = append(out, e)
	}
	return out, nil
}
