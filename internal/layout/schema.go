package layout

import (
	"fmt"
	"sort"
)

// Delimiter scheme (§3.3). All delimiters are non-printable bytes so they
// can never collide with (validated) property values. The first 24
// property IDs get one-byte delimiters; later ones get two-byte
// delimiters (0x1A followed by a printable byte), mirroring the paper's
// one-byte/two-byte scheme.
const (
	// EndOfRecord terminates every serialized property list.
	EndOfRecord byte = 0x01
	// firstPropDelim..lastPropDelim are single-byte property delimiters.
	firstPropDelim byte = 0x02
	lastPropDelim  byte = 0x19
	// twoByteLead introduces a two-byte property delimiter.
	twoByteLead byte = 0x1A
	// EdgeRecordStart and EdgeTypeSep frame EdgeRecord keys:
	// $sourceID#edgeType, (paper Figure 2).
	EdgeRecordStart byte = 0x1B
	EdgeTypeSep     byte = 0x1C
)

// numAlphabetBase is the radix of the fixed-width numeric encoding used
// for lengths, timestamps and destination IDs. The digit for value v is
// numAlphabetStart+v: 64 consecutive printable bytes, disjoint from all
// delimiters.
const (
	numAlphabetBase  = 64
	numAlphabetStart = 0x30 // '0'
)

// EncodeFixed writes v in fixed-width base-64 (big-endian digits) into
// buf, which must be exactly the target width. Panics if v does not fit —
// widths are always computed from the data being encoded.
func EncodeFixed(buf []byte, v uint64) {
	for i := len(buf) - 1; i >= 0; i-- {
		buf[i] = numAlphabetStart + byte(v%numAlphabetBase)
		v /= numAlphabetBase
	}
	if v != 0 {
		panic(fmt.Sprintf("layout: value does not fit in width %d", len(buf)))
	}
}

// AppendFixed appends v in fixed-width base-64 to buf.
func AppendFixed(buf []byte, v uint64, width int) []byte {
	start := len(buf)
	for i := 0; i < width; i++ {
		buf = append(buf, 0)
	}
	EncodeFixed(buf[start:], v)
	return buf
}

// DecodeFixed reads a fixed-width base-64 value.
func DecodeFixed(buf []byte) uint64 {
	var v uint64
	for _, b := range buf {
		v = v*numAlphabetBase + uint64(b-numAlphabetStart)
	}
	return v
}

// FixedWidth returns the number of base-64 digits needed for v (min 1).
func FixedWidth(v uint64) int {
	w := 1
	for v >= numAlphabetBase {
		v /= numAlphabetBase
		w++
	}
	return w
}

// ValidateValue reports whether a property value is storable: printable
// ASCII only, so it can never contain a delimiter or break the layout.
func ValidateValue(v string) error {
	for i := 0; i < len(v); i++ {
		if v[i] < 0x20 || v[i] > 0x7E {
			return fmt.Errorf("layout: property value %q contains non-printable byte 0x%02x at %d", v, v[i], i)
		}
	}
	return nil
}

// PropertySchema is the NodeFile's first data structure (§3.3): the
// global PropertyID → (order, delimiter) map, plus the global width of
// the per-value length fields. One schema instance is shared by every
// shard so that delimiters and orders agree system-wide; nodes and edges
// each get their own schema.
type PropertySchema struct {
	// IDs in lexicographic order; Order(id) is the index here.
	ids []string
	// order[id] = index into ids.
	order map[string]int
	// delims[i] is the delimiter for ids[i] (1 or 2 bytes).
	delims [][]byte
	// LenWidth is the global fixed width of each property-value length
	// field, in base-64 digits.
	LenWidth int
	// maxValueLen is what the schema was constructed with (kept so the
	// schema can be serialized and rebuilt identically).
	maxValueLen int
}

// SchemaSpec is the serializable description of a PropertySchema (what
// cluster nodes exchange and shard files embed).
type SchemaSpec struct {
	PropertyIDs []string
	MaxValueLen int
}

// Spec returns a serializable description of the schema.
func (s *PropertySchema) Spec() SchemaSpec {
	return SchemaSpec{PropertyIDs: append([]string(nil), s.ids...), MaxValueLen: s.maxValueLen}
}

// Build reconstructs the schema a spec describes.
func (sp SchemaSpec) Build() (*PropertySchema, error) {
	return NewPropertySchema(sp.PropertyIDs, sp.MaxValueLen)
}

// NewPropertySchema builds a schema over the given property IDs with the
// given maximum property-value length (which fixes LenWidth).
func NewPropertySchema(propertyIDs []string, maxValueLen int) (*PropertySchema, error) {
	ids := append([]string(nil), propertyIDs...)
	sort.Strings(ids)
	for i := 1; i < len(ids); i++ {
		if ids[i] == ids[i-1] {
			return nil, fmt.Errorf("layout: duplicate property ID %q", ids[i])
		}
	}
	maxSingle := int(lastPropDelim - firstPropDelim + 1)
	maxTwo := 0x7E - 0x20 + 1 // printable second bytes
	if len(ids) > maxSingle+maxTwo {
		return nil, fmt.Errorf("layout: %d property IDs exceeds delimiter space (%d)", len(ids), maxSingle+maxTwo)
	}
	s := &PropertySchema{
		ids:         ids,
		order:       make(map[string]int, len(ids)),
		delims:      make([][]byte, len(ids)),
		LenWidth:    FixedWidth(uint64(maxValueLen)),
		maxValueLen: maxValueLen,
	}
	for i, id := range ids {
		s.order[id] = i
		if i < maxSingle {
			s.delims[i] = []byte{firstPropDelim + byte(i)}
		} else {
			s.delims[i] = []byte{twoByteLead, byte(0x20 + (i - maxSingle))}
		}
	}
	return s, nil
}

// NumProperties returns the number of property IDs in the schema.
func (s *PropertySchema) NumProperties() int { return len(s.ids) }

// IDs returns the property IDs in lexicographic order.
func (s *PropertySchema) IDs() []string { return s.ids }

// Order returns the lexicographic rank of id, or -1 if unknown.
func (s *PropertySchema) Order(id string) int {
	if k, ok := s.order[id]; ok {
		return k
	}
	return -1
}

// Delimiter returns the delimiter bytes for the property with the given
// order.
func (s *PropertySchema) Delimiter(order int) []byte { return s.delims[order] }

// NextDelimiter returns the delimiter that follows the property with the
// given order in a serialized record: the next property's delimiter, or
// EndOfRecord for the last property.
func (s *PropertySchema) NextDelimiter(order int) []byte {
	if order+1 < len(s.ids) {
		return s.delims[order+1]
	}
	return []byte{EndOfRecord}
}

// SerializeProps encodes a property map into the record layout of
// Figure 1: LenWidth-digit lengths for every schema property (0 when
// absent), then delimiter-prefixed values in schema order, then
// EndOfRecord. Returns an error on unknown property IDs or invalid
// values.
func (s *PropertySchema) SerializeProps(buf []byte, props map[string]string) ([]byte, error) {
	for id, v := range props {
		if s.Order(id) < 0 {
			return nil, fmt.Errorf("layout: property ID %q not in schema", id)
		}
		if err := ValidateValue(v); err != nil {
			return nil, err
		}
		maxLen := 1
		for i := 0; i < s.LenWidth; i++ {
			maxLen *= numAlphabetBase
		}
		if len(v) >= maxLen {
			return nil, fmt.Errorf("layout: property %q value length %d exceeds schema max %d", id, len(v), maxLen-1)
		}
	}
	for _, id := range s.ids {
		buf = AppendFixed(buf, uint64(len(props[id])), s.LenWidth)
	}
	for i, id := range s.ids {
		buf = append(buf, s.delims[i]...)
		buf = append(buf, props[id]...)
	}
	buf = append(buf, EndOfRecord)
	return buf, nil
}

// PropsEncodedSize returns the serialized size of props under this
// schema without serializing.
func (s *PropertySchema) PropsEncodedSize(props map[string]string) int {
	size := len(s.ids)*s.LenWidth + 1 // lengths + EndOfRecord
	for i := range s.ids {
		size += len(s.delims[i]) + len(props[s.ids[i]])
	}
	return size
}

// valueLocation returns, for the property with the given order, the
// byte offset of its value relative to the start of the record and the
// value length, given the record's length header.
func (s *PropertySchema) valueLocation(lengths []int, order int) (off, n int) {
	off = len(s.ids) * s.LenWidth
	for i := 0; i < order; i++ {
		off += len(s.delims[i]) + lengths[i]
	}
	off += len(s.delims[order])
	return off, lengths[order]
}

// decodeLengths parses the length header of a serialized record.
func (s *PropertySchema) decodeLengths(hdr []byte) []int {
	lengths := make([]int, len(s.ids))
	s.decodeLengthsInto(lengths, hdr)
	return lengths
}

// decodeLengthsInto parses the length header into dst, which must hold
// NumProperties entries (the allocation-free form of decodeLengths).
func (s *PropertySchema) decodeLengthsInto(dst []int, hdr []byte) {
	for i := range dst {
		dst[i] = int(DecodeFixed(hdr[i*s.LenWidth : (i+1)*s.LenWidth]))
	}
}

// headerSize returns the size of the length header in bytes.
func (s *PropertySchema) headerSize() int { return len(s.ids) * s.LenWidth }

// ParseProps decodes a record serialized by SerializeProps starting at
// rec[0], returning the property map (absent properties omitted) and the
// total encoded length.
func (s *PropertySchema) ParseProps(rec []byte) (map[string]string, int, error) {
	hs := s.headerSize()
	if len(rec) < hs {
		return nil, 0, fmt.Errorf("layout: record shorter than length header")
	}
	lengths := s.decodeLengths(rec[:hs])
	props := make(map[string]string)
	pos := hs
	for i, id := range s.ids {
		d := s.delims[i]
		if len(rec) < pos+len(d)+lengths[i] {
			return nil, 0, fmt.Errorf("layout: truncated property %q", id)
		}
		pos += len(d)
		if lengths[i] > 0 {
			props[id] = string(rec[pos : pos+lengths[i]])
			pos += lengths[i]
		}
	}
	if len(rec) <= pos || rec[pos] != EndOfRecord {
		return nil, 0, fmt.Errorf("layout: missing end-of-record delimiter")
	}
	return props, pos + 1, nil
}
