package layout

import (
	"fmt"
	"sort"
	"strconv"

	"zipg/internal/bitutil"
)

// Edge is one directed edge with its optional timestamp and property
// list (§2.1: a 3-tuple of sourceID, destinationID, EdgeType, plus
// Timestamp and PropertyList).
type Edge struct {
	Src       NodeID
	Dst       NodeID
	Type      EdgeType
	Timestamp int64
	Props     map[string]string
}

// EdgeFile metadata field widths (Figure 2). EdgeCount is globally
// fixed-width; TLength/DLength/PLenWidth are per-record single digits
// that record the per-record fixed widths chosen for timestamps,
// destination IDs and property-list lengths — the paper's middle ground
// between variable-length and globally fixed-length encodings.
const (
	edgeCountWidth = 6
	metaWidth      = edgeCountWidth + 3
)

// EdgeFile record formats. Legacy is Figure 2 exactly; Hot prepends a
// versioned hot-field header that promotes the fields every TAO
// assoc_range / assoc_count / time-range query touches — edge count,
// edge type and the timestamp span — to fixed-offset slots right after
// the record key, so filters and range pruning read the header instead
// of decoding the record body. The format is a whole-file property
// carried by the shard (serialized shards gob-encode it; pre-hot shards
// decode to Legacy), and each hot record additionally starts with a
// version digit so a misconfigured view fails parsing instead of
// misreading.
const (
	EdgeFormatLegacy = 0
	EdgeFormatHot    = 1
)

// Hot-field header: after the $src#etype, key come
//
//	ver(1) count(6) TLen(1) DLen(1) PLenW(1) ETW(1) etype(ETW) tsMin(TLen) tsMax(TLen)
//
// followed by the same timestamp/destination/propLength/property arrays
// as the legacy layout. tsMin/tsMax reuse the record's TLen so the
// header grows by only 3+ETW+2·TLen digits per record.
const (
	hotVersion    = 1
	hotFixedWidth = 1 + edgeCountWidth + 3 + 1 // ver + count + TLen/DLen/PLenW + ETW
)

// RecordKey returns the search key that starts the EdgeRecord for
// (src, etype): $src#etype, with $ and # being non-printable delimiters.
// The trailing ',' makes the key prefix-free (etype 5 never matches
// etype 52).
func RecordKey(src NodeID, etype EdgeType) []byte {
	buf := make([]byte, 0, 24)
	buf = append(buf, EdgeRecordStart)
	buf = strconv.AppendInt(buf, src, 10)
	buf = append(buf, EdgeTypeSep)
	buf = strconv.AppendInt(buf, int64(etype), 10)
	buf = append(buf, ',')
	return buf
}

// NodeKeyPrefix returns the prefix matching every EdgeRecord of src
// regardless of type (used for wildcard-EdgeType queries).
func NodeKeyPrefix(src NodeID) []byte {
	buf := make([]byte, 0, 16)
	buf = append(buf, EdgeRecordStart)
	buf = strconv.AppendInt(buf, src, 10)
	buf = append(buf, EdgeTypeSep)
	return buf
}

// EdgeRecordIndex locates one EdgeRecord in a built EdgeFile: its key
// and start offset. The index is what lets search hits inside edge
// property lists be mapped back to their (source, type) record — the
// extension §3.3 sketches ("ZipG currently does not support search on
// edge propertyLists, but can be trivially extended to do so using ideas
// similar to NodeFile").
type EdgeRecordIndex struct {
	Src    NodeID
	Type   EdgeType
	Offset int64
}

// BuildEdgeFile serializes edges into the legacy EdgeFile layout of
// Figure 2 (see BuildEdgeFileFormat for the format-aware form).
func BuildEdgeFile(edges []Edge, schema *PropertySchema) ([]byte, []EdgeRecordIndex, error) {
	return BuildEdgeFileFormat(edges, schema, EdgeFormatLegacy)
}

// BuildEdgeFileFormat serializes edges into the EdgeFile layout: one
// record per (src, etype) holding metadata, sorted timestamps,
// destination IDs and property lists, the latter two ordered to match the
// timestamps. Records appear in (src, etype) order. The returned index
// lists every record's key and start offset, in file order. format
// selects the record header layout (EdgeFormatLegacy or EdgeFormatHot).
func BuildEdgeFileFormat(edges []Edge, schema *PropertySchema, format int) ([]byte, []EdgeRecordIndex, error) {
	if format != EdgeFormatLegacy && format != EdgeFormatHot {
		return nil, nil, fmt.Errorf("layout: unknown edge file format %d", format)
	}
	type key struct {
		src   NodeID
		etype EdgeType
	}
	groups := make(map[key][]Edge)
	for _, e := range edges {
		if e.Src < 0 || e.Dst < 0 || e.Type < 0 || e.Timestamp < 0 {
			return nil, nil, fmt.Errorf("layout: negative ID/type/timestamp in edge %+v", e)
		}
		k := key{e.Src, e.Type}
		groups[k] = append(groups[k], e)
	}
	keys := make([]key, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].src != keys[j].src {
			return keys[i].src < keys[j].src
		}
		return keys[i].etype < keys[j].etype
	})
	var flat []byte
	index := make([]EdgeRecordIndex, 0, len(keys))
	for _, k := range keys {
		index = append(index, EdgeRecordIndex{Src: k.src, Type: k.etype, Offset: int64(len(flat))})
		var err error
		if flat, err = appendEdgeRecord(flat, k.src, k.etype, groups[k], schema, format); err != nil {
			return nil, nil, err
		}
	}
	return flat, index, nil
}

// appendEdgeRecord serializes one EdgeRecord.
func appendEdgeRecord(flat []byte, src NodeID, etype EdgeType, group []Edge, schema *PropertySchema, format int) ([]byte, error) {
	sort.SliceStable(group, func(i, j int) bool { return group[i].Timestamp < group[j].Timestamp })

	// Per-record fixed widths (TLength/DLength in Figure 2).
	tLen, dLen := 1, 1
	for _, e := range group {
		if w := FixedWidth(uint64(e.Timestamp)); w > tLen {
			tLen = w
		}
		if w := FixedWidth(uint64(e.Dst)); w > dLen {
			dLen = w
		}
	}
	// Serialize property lists first to size their length fields.
	propBlobs := make([][]byte, len(group))
	pLenW := 1
	for i, e := range group {
		blob, err := schema.SerializeProps(nil, e.Props)
		if err != nil {
			return nil, fmt.Errorf("layout: edge %d->%d: %w", e.Src, e.Dst, err)
		}
		propBlobs[i] = blob
		if w := FixedWidth(uint64(len(blob))); w > pLenW {
			pLenW = w
		}
	}
	if tLen > 9 || dLen > 9 || pLenW > 9 {
		return nil, fmt.Errorf("layout: field width exceeds one digit (tLen=%d dLen=%d pLenW=%d)", tLen, dLen, pLenW)
	}

	flat = append(flat, RecordKey(src, etype)...)
	if format == EdgeFormatHot {
		etw := FixedWidth(uint64(etype))
		if etw > 9 {
			return nil, fmt.Errorf("layout: edge type %d too wide for hot header", etype)
		}
		flat = AppendFixed(flat, hotVersion, 1)
		flat = AppendFixed(flat, uint64(len(group)), edgeCountWidth)
		flat = AppendFixed(flat, uint64(tLen), 1)
		flat = AppendFixed(flat, uint64(dLen), 1)
		flat = AppendFixed(flat, uint64(pLenW), 1)
		flat = AppendFixed(flat, uint64(etw), 1)
		flat = AppendFixed(flat, uint64(etype), etw)
		// group is timestamp-sorted, so the span is the two ends.
		flat = AppendFixed(flat, uint64(group[0].Timestamp), tLen)
		flat = AppendFixed(flat, uint64(group[len(group)-1].Timestamp), tLen)
	} else {
		flat = AppendFixed(flat, uint64(len(group)), edgeCountWidth)
		flat = AppendFixed(flat, uint64(tLen), 1)
		flat = AppendFixed(flat, uint64(dLen), 1)
		flat = AppendFixed(flat, uint64(pLenW), 1)
	}
	for _, e := range group {
		flat = AppendFixed(flat, uint64(e.Timestamp), tLen)
	}
	for _, e := range group {
		flat = AppendFixed(flat, uint64(e.Dst), dLen)
	}
	for _, blob := range propBlobs {
		flat = AppendFixed(flat, uint64(len(blob)), pLenW)
	}
	for _, blob := range propBlobs {
		flat = append(flat, blob...)
	}
	return flat, nil
}

// EdgeRecordRef is a parsed handle to one EdgeRecord inside an EdgeFile:
// it caches the metadata so that edge data lookups are pure random
// accesses (§2.2's EdgeRecord). Accessors take the ref by pointer so the
// first touch of a field window (timestamps, property lengths) can cache
// its decoded form on the ref — later lookups against the same handle are
// pure in-memory reads instead of repeated extracts.
type EdgeRecordRef struct {
	Src    NodeID
	Type   EdgeType
	Offset int64 // of the record's start ($) in the file
	Count  int
	TLen   int
	DLen   int
	PLenW  int

	// TsMin/TsMax are the record's timestamp span, read from the
	// hot-field header. Valid only on refs parsed from a hot-format file
	// (hasHot); TimeRange uses them to answer fully-covering and
	// fully-disjoint queries without touching the timestamp array.
	TsMin int64
	TsMax int64

	tsOff   int // absolute file offset of the timestamp array
	dstOff  int
	pLenOff int
	propOff int

	hasHot   bool
	ts       []int64 // decoded timestamp array; nil until first use
	propEnds []int   // prefix sums of property-list lengths; nil until first use
}

// HotSpan returns the record's [TsMin, TsMax] timestamp span read from
// the hot-field header, for callers that prune whole records against a
// time window without touching the timestamp array. ok is false on
// legacy-format refs and empty records, where no span is available.
func (r *EdgeRecordRef) HotSpan() (tsMin, tsMax int64, ok bool) {
	if !r.hasHot || r.Count == 0 {
		return 0, 0, false
	}
	return r.TsMin, r.TsMax, true
}

// EdgeFileView executes edge queries over a serialized EdgeFile. As with
// NodeFileView it is agnostic to whether the source is compressed.
type EdgeFileView struct {
	src    ByteSource
	schema *PropertySchema
	format int
}

// NewEdgeFileView wraps a serialized legacy-format EdgeFile (see
// NewEdgeFileViewFormat).
func NewEdgeFileView(src ByteSource, schema *PropertySchema) *EdgeFileView {
	return NewEdgeFileViewFormat(src, schema, EdgeFormatLegacy)
}

// NewEdgeFileViewFormat wraps a serialized EdgeFile whose records use the
// given format. The format must match what the file was built with —
// shards persist it alongside the compressed bytes.
func NewEdgeFileViewFormat(src ByteSource, schema *PropertySchema, format int) *EdgeFileView {
	return &EdgeFileView{src: src, schema: schema, format: format}
}

// Schema returns the edge property schema.
func (v *EdgeFileView) Schema() *PropertySchema { return v.schema }

// Format returns the record format the view parses
// (EdgeFormatLegacy/EdgeFormatHot).
func (v *EdgeFileView) Format() int { return v.format }

// recordKeyLen returns len(RecordKey(src, etype)) without building the
// key: the two delimiters and the comma plus the decimal digits.
func recordKeyLen(src NodeID, etype EdgeType) int {
	n := 3
	for v := src; ; v /= 10 {
		n++
		if v < 10 {
			break
		}
	}
	for v := int64(etype); ; v /= 10 {
		n++
		if v < 10 {
			break
		}
	}
	return n
}

// parseRecordAt parses the EdgeRecord whose key starts at off. keyLen is
// the length of the $src#etype, key.
func (v *EdgeFileView) parseRecordAt(off int64, keyLen int, src NodeID, etype EdgeType) (EdgeRecordRef, bool) {
	w := newRecWalk(v.src, int(off)+keyLen)
	var buf [hotFixedWidth + 3*9]byte
	return v.parseRecordWalk(&w, off, keyLen, src, etype, buf[:0])
}

// parseRecordWalk parses a record header with w positioned just past the
// record key (at off+keyLen), leaving w at the start of the timestamp
// array. buf is scratch for the header bytes. This is the single header
// parser for both formats; the batch read paths call it with a shared
// walker so header, field arrays and property payload ride one
// suffix-array walk.
func (v *EdgeFileView) parseRecordWalk(w *recWalk, off int64, keyLen int, src NodeID, etype EdgeType, buf []byte) (EdgeRecordRef, bool) {
	ref := EdgeRecordRef{Src: src, Type: etype, Offset: off}
	if v.format == EdgeFormatHot {
		buf = w.appendN(buf[:0], hotFixedWidth)
		if len(buf) < hotFixedWidth || DecodeFixed(buf[:1]) != hotVersion {
			return EdgeRecordRef{}, false
		}
		ref.Count = int(DecodeFixed(buf[1 : 1+edgeCountWidth]))
		ref.TLen = int(DecodeFixed(buf[1+edgeCountWidth : 2+edgeCountWidth]))
		ref.DLen = int(DecodeFixed(buf[2+edgeCountWidth : 3+edgeCountWidth]))
		ref.PLenW = int(DecodeFixed(buf[3+edgeCountWidth : 4+edgeCountWidth]))
		etw := int(DecodeFixed(buf[4+edgeCountWidth : 5+edgeCountWidth]))
		varLen := etw + 2*ref.TLen
		buf = w.appendN(buf[:0], varLen)
		if len(buf) < varLen {
			return EdgeRecordRef{}, false
		}
		ref.TsMin = int64(DecodeFixed(buf[etw : etw+ref.TLen]))
		ref.TsMax = int64(DecodeFixed(buf[etw+ref.TLen:]))
		ref.hasHot = true
		ref.tsOff = int(off) + keyLen + hotFixedWidth + varLen
	} else {
		buf = w.appendN(buf[:0], metaWidth)
		if len(buf) < metaWidth {
			return EdgeRecordRef{}, false
		}
		ref.Count = int(DecodeFixed(buf[:edgeCountWidth]))
		ref.TLen = int(DecodeFixed(buf[edgeCountWidth : edgeCountWidth+1]))
		ref.DLen = int(DecodeFixed(buf[edgeCountWidth+1 : edgeCountWidth+2]))
		ref.PLenW = int(DecodeFixed(buf[edgeCountWidth+2 : edgeCountWidth+3]))
		ref.tsOff = int(off) + keyLen + metaWidth
	}
	ref.dstOff = ref.tsOff + ref.Count*ref.TLen
	ref.pLenOff = ref.dstOff + ref.Count*ref.DLen
	ref.propOff = ref.pLenOff + ref.Count*ref.PLenW
	return ref, true
}

// GetEdgeRecordAt parses the record known to start at off for
// (src, etype) — callers holding the build index (core shards) use this
// to skip the compressed search GetEdgeRecord pays to locate the record.
func (v *EdgeFileView) GetEdgeRecordAt(off int64, src NodeID, etype EdgeType) (EdgeRecordRef, bool) {
	return v.parseRecordAt(off, recordKeyLen(src, etype), src, etype)
}

// GetEdgeRecord locates the EdgeRecord for (src, etype) via
// search($src#etype,) — §3.4. Returns false if the record does not
// exist in this file.
func (v *EdgeFileView) GetEdgeRecord(src NodeID, etype EdgeType) (EdgeRecordRef, bool) {
	key := RecordKey(src, etype)
	offs := v.src.Search(key)
	if len(offs) == 0 {
		return EdgeRecordRef{}, false
	}
	// The key is unique per file by construction.
	return v.parseRecordAt(offs[0], len(key), src, etype)
}

// GetEdgeRecords returns the EdgeRecords of every EdgeType incident on
// src present in this file (wildcard EdgeType).
func (v *EdgeFileView) GetEdgeRecords(src NodeID) []EdgeRecordRef {
	prefix := NodeKeyPrefix(src)
	offs := v.src.Search(prefix)
	refs := make([]EdgeRecordRef, 0, len(offs))
	for _, off := range offs {
		// Read the etype digits and the ',' terminator.
		tail := v.src.Extract(int(off)+len(prefix), 20)
		comma := -1
		for i, b := range tail {
			if b == ',' {
				comma = i
				break
			}
		}
		if comma < 0 {
			continue
		}
		etype, err := strconv.ParseInt(string(tail[:comma]), 10, 64)
		if err != nil {
			continue
		}
		if ref, ok := v.parseRecordAt(off, len(prefix)+comma+1, src, etype); ok {
			refs = append(refs, ref)
		}
	}
	return refs
}

// Timestamps returns the record's full (sorted) timestamp array,
// decoding it in one extract on first use and caching it on the ref.
func (v *EdgeFileView) Timestamps(ref *EdgeRecordRef) []int64 {
	if ref.ts == nil {
		raw := v.src.Extract(ref.tsOff, ref.Count*ref.TLen)
		ts := make([]int64, 0, ref.Count)
		for i := 0; i+ref.TLen <= len(raw); i += ref.TLen {
			ts = append(ts, int64(DecodeFixed(raw[i:i+ref.TLen])))
		}
		ref.ts = ts
	}
	return ref.ts
}

// Timestamp returns the i-th (time-ordered) edge's timestamp.
func (v *EdgeFileView) Timestamp(ref *EdgeRecordRef, i int) int64 {
	if ref.ts != nil {
		return ref.ts[i]
	}
	return int64(DecodeFixed(v.src.Extract(ref.tsOff+i*ref.TLen, ref.TLen)))
}

// Destination returns the i-th edge's destination node ID.
func (v *EdgeFileView) Destination(ref *EdgeRecordRef, i int) NodeID {
	return NodeID(DecodeFixed(v.src.Extract(ref.dstOff+i*ref.DLen, ref.DLen)))
}

// Destinations returns all destination IDs of the record in time order,
// in one extract (used by neighbor queries).
func (v *EdgeFileView) Destinations(ref *EdgeRecordRef) []NodeID {
	raw := v.src.Extract(ref.dstOff, ref.Count*ref.DLen)
	out := make([]NodeID, 0, ref.Count)
	for i := 0; i+ref.DLen <= len(raw); i += ref.DLen {
		out = append(out, NodeID(DecodeFixed(raw[i:i+ref.DLen])))
	}
	return out
}

// propEndSums returns prefix sums of the record's property-list lengths:
// entry i is the total length of lists 0..i. The length array is
// extracted and summed once per ref, making every later property lookup
// O(1) — previously each lookup re-summed the array, turning a scan of
// an n-edge record into Θ(n²) decoding.
func (v *EdgeFileView) propEndSums(ref *EdgeRecordRef) []int {
	if ref.propEnds == nil {
		raw := v.src.Extract(ref.pLenOff, ref.Count*ref.PLenW)
		ends := make([]int, 0, ref.Count)
		sum := 0
		for i := 0; i+ref.PLenW <= len(raw); i += ref.PLenW {
			sum += int(DecodeFixed(raw[i : i+ref.PLenW]))
			ends = append(ends, sum)
		}
		ref.propEnds = ends
	}
	return ref.propEnds
}

// propLocation returns the absolute offset and length of the i-th edge's
// serialized property list.
func (v *EdgeFileView) propLocation(ref *EdgeRecordRef, i int) (int, int) {
	ends := v.propEndSums(ref)
	start := 0
	if i > 0 {
		start = ends[i-1]
	}
	return ref.propOff + start, ends[i] - start
}

// PropBlobs returns every edge's serialized property list in time order,
// sharing one extract of the whole property area (the batched form of
// per-edge prop reads; blobs alias the extract's backing array).
func (v *EdgeFileView) PropBlobs(ref *EdgeRecordRef) [][]byte {
	ends := v.propEndSums(ref)
	out := make([][]byte, ref.Count)
	if ref.Count == 0 {
		return out
	}
	raw := v.src.Extract(ref.propOff, ends[len(ends)-1])
	start := 0
	for i, end := range ends {
		if end > len(raw) {
			end = len(raw)
		}
		if start > end {
			start = end
		}
		out[i] = raw[start:end]
		start = ends[i]
	}
	return out
}

// EdgeData is the triplet stored per edge (§2.2).
type EdgeData struct {
	Dst       NodeID
	Timestamp int64
	Props     map[string]string
}

// GetEdgeData returns the i-th edge's (destination, timestamp,
// property list) — §2.2's get_edge_data, with i being the TimeOrder.
// On a cold ref the timestamp array and the property prefix sums are
// populated together in one record walk (WarmCaches) instead of one
// whole-array extract each; after that, each call is one destination
// extract, one property extract and O(1) arithmetic.
func (v *EdgeFileView) GetEdgeData(ref *EdgeRecordRef, i int) (EdgeData, error) {
	if i < 0 || i >= ref.Count {
		return EdgeData{}, fmt.Errorf("layout: time order %d out of range [0,%d)", i, ref.Count)
	}
	v.WarmCaches(ref)
	d := EdgeData{
		Dst:       v.Destination(ref, i),
		Timestamp: ref.ts[i],
	}
	off, n := v.propLocation(ref, i)
	if n > 0 {
		blob := v.src.Extract(off, n)
		props, _, err := v.schema.ParseProps(blob)
		if err != nil {
			return EdgeData{}, fmt.Errorf("layout: edge %d/%d props: %w", ref.Src, i, err)
		}
		d.Props = props
	}
	return d, nil
}

// TimeRange returns the half-open TimeOrder range [beg, end) of edges
// with timestamps in [tLo, tHi), via binary search over the sorted
// timestamp array (§3.3's motivation for sorted fixed-width timestamps).
// On hot-format refs the header's timestamp span answers queries that
// fully cover or fully miss the record without decoding the array at
// all; otherwise the array is decoded once (one extract) and searched
// in memory. The short-circuits return exactly what the binary searches
// would.
func (v *EdgeFileView) TimeRange(ref *EdgeRecordRef, tLo, tHi int64) (int, int) {
	if ref.hasHot && ref.ts == nil && ref.Count > 0 {
		switch {
		case tLo <= ref.TsMin && tHi > ref.TsMax:
			return 0, ref.Count
		case tHi <= ref.TsMin && tLo <= ref.TsMin:
			return 0, 0
		case tLo > ref.TsMax && tHi > ref.TsMax:
			return ref.Count, ref.Count
		}
	}
	ts := v.Timestamps(ref)
	beg := bitutil.SearchGE(ts, tLo)
	end := bitutil.SearchGE(ts, tHi)
	return beg, end
}

// FindEdges returns the (record, TimeOrder) locations of edges whose
// property lists exactly match every (propertyID, value) pair — the edge
// counterpart of NodeFileView.FindNodes, realized exactly as §3.3
// sketches: each value is searched wrapped in its delimiters, hits are
// mapped to records via the record-offset index, and the TimeOrder is
// recovered from the hit's position inside the record's property area.
// index must be the file's record index (from BuildEdgeFile), in file
// order.
func (v *EdgeFileView) FindEdges(index []EdgeRecordIndex, props map[string]string) []EdgeMatch {
	if len(props) == 0 {
		return nil
	}
	starts := make([]int64, len(index))
	for i, r := range index {
		starts[i] = r.Offset
	}
	var result map[EdgeMatch]int
	// Hits cluster by record; share one parsed ref (and its cached
	// prefix sums) across all hits in the same record.
	recCache := make(map[int]*EdgeRecordRef)
	needed := 0
	for pid, val := range props {
		order := v.schema.Order(pid)
		if order < 0 {
			return nil
		}
		needed++
		pattern := append([]byte(nil), v.schema.Delimiter(order)...)
		pattern = append(pattern, val...)
		pattern = append(pattern, v.schema.NextDelimiter(order)...)
		for _, off := range v.src.Search(pattern) {
			ri := offsetToIndex(starts, off)
			if ri < 0 {
				continue
			}
			rec := recCache[ri]
			if rec == nil {
				r, ok := v.parseRecordAt(index[ri].Offset, len(RecordKey(index[ri].Src, index[ri].Type)), index[ri].Src, index[ri].Type)
				if !ok {
					continue
				}
				rec = &r
				recCache[ri] = rec
			}
			order, ok := v.timeOrderOfPropOffset(rec, off)
			if !ok {
				continue
			}
			m := EdgeMatch{Src: rec.Src, Type: rec.Type, TimeOrder: order}
			if result == nil {
				result = make(map[EdgeMatch]int)
			}
			result[m]++
		}
	}
	var out []EdgeMatch
	for m, hits := range result {
		if hits == needed { // conjunction across property pairs
			out = append(out, m)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Src != out[j].Src {
			return out[i].Src < out[j].Src
		}
		if out[i].Type != out[j].Type {
			return out[i].Type < out[j].Type
		}
		return out[i].TimeOrder < out[j].TimeOrder
	})
	return out
}

// EdgeMatch identifies one edge by its record and TimeOrder.
type EdgeMatch struct {
	Src       NodeID
	Type      EdgeType
	TimeOrder int
}

// timeOrderOfPropOffset maps a file offset inside a record's property
// area to the TimeOrder of the edge whose serialized property list
// contains it: the first prefix sum past the relative offset.
func (v *EdgeFileView) timeOrderOfPropOffset(ref *EdgeRecordRef, off int64) (int, bool) {
	rel := int(off) - ref.propOff
	if rel < 0 {
		return 0, false
	}
	ends := v.propEndSums(ref)
	i := bitutil.SearchGT(ends, rel)
	if i >= len(ends) {
		return 0, false
	}
	return i, true
}

// RecordEnd returns the file offset just past the record (useful for
// tests and compaction).
func (v *EdgeFileView) RecordEnd(ref *EdgeRecordRef) int64 {
	ends := v.propEndSums(ref)
	end := ref.propOff
	if len(ends) > 0 {
		end += ends[len(ends)-1]
	}
	return int64(end)
}
