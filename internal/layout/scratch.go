package layout

import "sync"

// recScratch is the reusable working set of one record read: a byte
// buffer for extracted header/value windows and an int buffer for the
// decoded length header. Views on the FindNodes/GetEdges hot paths
// check one out per operation so steady-state reads do not allocate.
type recScratch struct {
	buf  []byte
	lens []int
	ords []int
}

var scratchPool = sync.Pool{New: func() any { return new(recScratch) }}

func getScratch() *recScratch  { return scratchPool.Get().(*recScratch) }
func putScratch(s *recScratch) { scratchPool.Put(s) }

// lengths returns s.lens resized to n (contents undefined).
func (s *recScratch) lengths(n int) []int {
	if cap(s.lens) < n {
		s.lens = make([]int, n)
	}
	return s.lens[:n]
}

// orders returns s.ords resized to n (contents undefined).
func (s *recScratch) orders(n int) []int {
	if cap(s.ords) < n {
		s.ords = make([]int, n)
	}
	return s.ords[:n]
}
