package layout

import (
	"math/rand"
	"reflect"
	"testing"

	"zipg/internal/succinct"
)

// Differential tests for the vectorized layout readers: every batch
// accessor must return byte-identical results to a scalar loop over the
// same requests, on raw and compressed sources, at several sampling
// rates, and (for edges) in both record formats.

func TestGetPropertiesBatchAgainstScalar(t *testing.T) {
	nodes, schema := buildNodes(80)
	flat, ids, offs, err := BuildNodeFile(nodes, schema)
	if err != nil {
		t.Fatal(err)
	}
	views := []*NodeFileView{
		NewNodeFileView(NewRawSource(flat, nil), schema, ids, offs, nil),
	}
	for _, alpha := range []int{4, 8, 32} {
		st := succinct.Build(flat, succinct.Options{SamplingRate: alpha})
		views = append(views, NewNodeFileView(st, schema, ids, offs, nil))
	}
	rng := rand.New(rand.NewSource(7))
	pidSets := [][]string{nil, {"age"}, {"location", "age"}, {"nickname", "status", "age"}}
	for vi, v := range views {
		for trial := 0; trial < 20; trial++ {
			n := rng.Intn(60)
			batch := make([]NodeID, n)
			for i := range batch {
				switch rng.Intn(10) {
				case 0:
					batch[i] = 999_999 // missing
				case 1:
					if i > 0 {
						batch[i] = batch[rng.Intn(i)] // duplicate
					}
				default:
					batch[i] = nodes[rng.Intn(len(nodes))].ID
				}
			}
			pids := pidSets[trial%len(pidSets)]
			gotVals, gotOKs := v.GetPropertiesBatch(batch, pids)
			for i, id := range batch {
				wantVals, wantOK := v.GetProperties(id, pids)
				if gotOKs[i] != wantOK || !reflect.DeepEqual(gotVals[i], wantVals) {
					t.Fatalf("view %d trial %d: batch[%d]=%d pids=%v: got %v,%v want %v,%v",
						vi, trial, i, id, pids, gotVals[i], gotOKs[i], wantVals, wantOK)
				}
			}
		}
		// Empty batch.
		vals, oks := v.GetPropertiesBatch(nil, nil)
		if len(vals) != 0 || len(oks) != 0 {
			t.Fatalf("empty batch: %v %v", vals, oks)
		}
	}
}

// edgeViewsFormat builds raw and compressed views of one format.
func edgeViewsFormat(t testing.TB, edges []Edge, schema *PropertySchema, format, alpha int) (raw, comp *EdgeFileView, index []EdgeRecordIndex) {
	t.Helper()
	flat, index, err := BuildEdgeFileFormat(edges, schema, format)
	if err != nil {
		t.Fatal(err)
	}
	raw = NewEdgeFileViewFormat(NewRawSource(flat, nil), schema, format)
	st := succinct.Build(flat, succinct.Options{SamplingRate: alpha})
	comp = NewEdgeFileViewFormat(st, schema, format)
	return raw, comp, index
}

func TestGetEdgeRangeBatchAgainstScalar(t *testing.T) {
	edges, schema := buildEdges(400)
	rng := rand.New(rand.NewSource(11))
	for _, format := range []int{EdgeFormatLegacy, EdgeFormatHot} {
		for _, alpha := range []int{4, 8, 32} {
			raw, comp, index := edgeViewsFormat(t, edges, schema, format, alpha)
			for _, v := range []*EdgeFileView{raw, comp} {
				for trial := 0; trial < 10; trial++ {
					n := rng.Intn(40)
					reqs := make([]EdgeRangeReq, n)
					for i := range reqs {
						rec := index[rng.Intn(len(index))]
						reqs[i] = EdgeRangeReq{
							Src: rec.Src, Type: rec.Type, Offset: rec.Offset,
							Idx:   rng.Intn(12) - 2, // negative indices too
							Limit: rng.Intn(20),
						}
						if rng.Intn(8) == 0 && i > 0 {
							reqs[i] = reqs[rng.Intn(i)] // duplicate
						}
					}
					got, err := v.GetEdgeRangeBatch(reqs)
					if err != nil {
						t.Fatal(err)
					}
					for i, req := range reqs {
						want := scalarEdgeRange(t, v, req)
						if !reflect.DeepEqual(got[i], want) {
							t.Fatalf("format %d α=%d req %+v: got %v want %v", format, alpha, req, got[i], want)
						}
					}
				}
			}
		}
	}
}

// scalarEdgeRange is the reference loop the batch reader must agree
// with: parse the record, read [max(Idx,0), min(Idx+Limit, count)).
func scalarEdgeRange(t *testing.T, v *EdgeFileView, req EdgeRangeReq) []EdgeData {
	t.Helper()
	ref, ok := v.GetEdgeRecordAt(req.Offset, req.Src, req.Type)
	if !ok {
		t.Fatalf("record (%d,%d) at %d missing", req.Src, req.Type, req.Offset)
	}
	end := req.Idx + req.Limit
	if end > ref.Count {
		end = ref.Count
	}
	var out []EdgeData
	for i := req.Idx; i < end; i++ {
		if i < 0 {
			continue
		}
		d, err := v.GetEdgeData(&ref, i)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, d)
	}
	return out
}

// TestHotLegacyViewsAgree proves the hot-field header changes the
// record encoding but never the query results: every accessor returns
// identical values over both formats, including TimeRange with
// degenerate bounds (where the hot short-circuit must match the scalar
// binary searches exactly).
func TestHotLegacyViewsAgree(t *testing.T) {
	edges, schema := buildEdges(300)
	_, legacy, index := edgeViewsFormat(t, edges, schema, EdgeFormatLegacy, 8)
	_, hot, hotIndex := edgeViewsFormat(t, edges, schema, EdgeFormatHot, 8)
	if len(index) != len(hotIndex) {
		t.Fatalf("index sizes differ: %d vs %d", len(index), len(hotIndex))
	}
	rng := rand.New(rand.NewSource(13))
	for i, rec := range index {
		lref, ok := legacy.GetEdgeRecordAt(rec.Offset, rec.Src, rec.Type)
		if !ok {
			t.Fatalf("legacy record %d missing", i)
		}
		href, ok := hot.GetEdgeRecordAt(hotIndex[i].Offset, rec.Src, rec.Type)
		if !ok {
			t.Fatalf("hot record %d missing", i)
		}
		if lref.Count != href.Count {
			t.Fatalf("record %d count: %d vs %d", i, lref.Count, href.Count)
		}
		if !reflect.DeepEqual(legacy.Timestamps(&lref), hot.Timestamps(&href)) {
			t.Fatalf("record %d timestamps differ", i)
		}
		if !reflect.DeepEqual(legacy.Destinations(&lref), hot.Destinations(&href)) {
			t.Fatalf("record %d destinations differ", i)
		}
		for j := 0; j < lref.Count; j++ {
			ld, err1 := legacy.GetEdgeData(&lref, j)
			hd, err2 := hot.GetEdgeData(&href, j)
			if err1 != nil || err2 != nil {
				t.Fatal(err1, err2)
			}
			if !reflect.DeepEqual(ld, hd) {
				t.Fatalf("record %d edge %d: %+v vs %+v", i, j, ld, hd)
			}
		}
		// TimeRange on cold refs exercises the hot-header short-circuit;
		// re-parse per probe so caches stay cold.
		for probe := 0; probe < 12; probe++ {
			tLo := int64(rng.Intn(120000)) - 10000
			tHi := int64(rng.Intn(120000)) - 10000 // tHi < tLo happens too
			lr, _ := legacy.GetEdgeRecordAt(rec.Offset, rec.Src, rec.Type)
			hr, _ := hot.GetEdgeRecordAt(hotIndex[i].Offset, rec.Src, rec.Type)
			lb, le := legacy.TimeRange(&lr, tLo, tHi)
			hb, he := hot.TimeRange(&hr, tLo, tHi)
			if lb != hb || le != he {
				t.Fatalf("record %d TimeRange(%d,%d): legacy [%d,%d) hot [%d,%d)",
					i, tLo, tHi, lb, le, hb, he)
			}
		}
	}
}

// TestWarmCachesAllocs is the satellite fix's guarantee: once a ref's
// lazy caches are populated by WarmCaches, the hot read accessors do no
// further allocation (GetEdgeData previously re-derived the timestamp
// array on every cold call).
func TestWarmCachesAllocs(t *testing.T) {
	edges, schema := buildEdges(200)
	_, comp, index := edgeViewsFormat(t, edges, schema, EdgeFormatHot, 8)
	rec := index[0]
	ref, ok := comp.GetEdgeRecordAt(rec.Offset, rec.Src, rec.Type)
	if !ok || ref.Count == 0 {
		t.Fatal("record missing")
	}
	comp.WarmCaches(&ref)
	if ref.ts == nil || ref.propEnds == nil {
		t.Fatal("WarmCaches left caches cold")
	}
	allocs := testing.AllocsPerRun(100, func() {
		comp.Timestamp(&ref, 0)
		comp.TimeRange(&ref, 10, 50000)
		comp.propLocation(&ref, 0)
	})
	if allocs != 0 {
		t.Fatalf("warm accessors allocated %v per run, want 0", allocs)
	}
	// WarmCaches itself is idempotent and free once warm.
	allocs = testing.AllocsPerRun(100, func() { comp.WarmCaches(&ref) })
	if allocs != 0 {
		t.Fatalf("warm WarmCaches allocated %v per run, want 0", allocs)
	}
}
