// Package layout implements ZipG's graph representation (§3.3 of the
// paper): the NodeFile and EdgeFile flat-file layouts, the delimiter
// scheme for property IDs, and the fixed-width numeric encodings that
// trade uncompressed size for random access into the compressed form.
//
// Layout views are written against a ByteSource abstraction so the exact
// same query code runs over a compressed succinct store (immutable
// shards) and over raw append-only bytes (the query-optimized LogStore of
// §3.5).
package layout

import (
	"bytes"

	"zipg/internal/bitutil"
	"zipg/internal/memsim"
	"zipg/internal/succinct"
)

// ByteSource is the storage primitive the NodeFile/EdgeFile views query:
// random access (extract) and substring search, per Succinct's interface
// (§3.1).
type ByteSource interface {
	// Extract returns up to n bytes starting at off (truncated at EOF).
	Extract(off, n int) []byte
	// Search returns the offsets of all occurrences of pattern, ascending.
	Search(pattern []byte) []int64
	// Count returns the number of occurrences of pattern.
	Count(pattern []byte) int
	// InputLen returns the length of the underlying flat file.
	InputLen() int
}

// Compile-time check: the succinct store satisfies ByteSource.
var _ ByteSource = (*succinct.Store)(nil)

// byteAppender is the optional zero-alloc extension of ByteSource:
// extract into a caller-supplied buffer instead of allocating the result.
// Both backing sources implement it; extractAppend falls back for any
// other ByteSource.
type byteAppender interface {
	ExtractAppend(dst []byte, off, n int) []byte
}

var (
	_ byteAppender = (*succinct.Store)(nil)
	_ byteAppender = (*RawSource)(nil)
)

// extractAppend appends up to n bytes at off to dst, reusing dst's
// capacity when the source supports it.
func extractAppend(src ByteSource, dst []byte, off, n int) []byte {
	if a, ok := src.(byteAppender); ok {
		return a.ExtractAppend(dst, off, n)
	}
	return append(dst, src.Extract(off, n)...)
}

// recWalk reads one record's bytes front to back over any ByteSource.
// Over a succinct store it wraps a Walker, so parsing a record's header,
// skipping to a field and reading the field is a single suffix-array walk
// (one ISA anchor) instead of one anchor per Extract call; over raw bytes
// it is plain offset arithmetic. A recWalk is a stack value — never
// retain one.
type recWalk struct {
	sw  succinct.Walker // valid iff ss != nil
	ss  *succinct.Store
	src ByteSource // fallback path
	off int        // fallback read position
}

// newRecWalk starts a walk at flat-file offset off.
func newRecWalk(src ByteSource, off int) recWalk {
	if s, ok := src.(*succinct.Store); ok {
		return recWalk{ss: s, sw: s.Walk(off)}
	}
	return recWalk{src: src, off: off}
}

// appendN reads the next n bytes into dst (truncated at EOF) and
// advances.
func (r *recWalk) appendN(dst []byte, n int) []byte {
	if r.ss != nil {
		return r.sw.Append(dst, n)
	}
	before := len(dst)
	dst = extractAppend(r.src, dst, r.off, n)
	r.off += len(dst) - before
	return dst
}

// skip advances n bytes without reading them.
func (r *recWalk) skip(n int) {
	if r.ss != nil {
		r.sw.Skip(n)
		return
	}
	r.off += n
}

// RawSource is an uncompressed ByteSource over a plain byte slice,
// charging a simulated medium for every touch. The LogStore and the
// baselines use it; it is also handy in tests as ground truth against the
// compressed path.
type RawSource struct {
	data []byte
	med  *memsim.Medium
	reg  uint32
}

// NewRawSource places data on med (nil = unlimited medium).
func NewRawSource(data []byte, med *memsim.Medium) *RawSource {
	if med == nil {
		med = memsim.Unlimited()
	}
	return &RawSource{data: data, med: med, reg: med.Register(int64(len(data)))}
}

// Append adds bytes to the source (LogStore growth) and returns the
// offset at which they were written.
func (r *RawSource) Append(b []byte) int64 {
	off := int64(len(r.data))
	r.data = append(r.data, b...)
	r.med.Grow(int64(len(b)))
	return off
}

// Extract implements ByteSource.
func (r *RawSource) Extract(off, n int) []byte {
	if off < 0 || off >= len(r.data) || n <= 0 {
		return nil
	}
	end := off + n
	if end > len(r.data) {
		end = len(r.data)
	}
	r.med.Access(r.reg, int64(off), int64(end-off))
	return r.data[off:end]
}

// ExtractAppend appends up to n bytes starting at off to dst.
func (r *RawSource) ExtractAppend(dst []byte, off, n int) []byte {
	return append(dst, r.Extract(off, n)...)
}

// Search implements ByteSource by linear scan. The scan charges the
// medium for the full pass — this is exactly the cost profile the paper
// ascribes to scanning uncompressed logs, and why the LogStore keeps
// explicit offset pointers to avoid calling this.
func (r *RawSource) Search(pattern []byte) []int64 {
	if len(pattern) == 0 {
		return nil
	}
	r.med.Access(r.reg, 0, int64(len(r.data)))
	var out []int64
	for i := 0; ; {
		k := bytes.Index(r.data[i:], pattern)
		if k < 0 {
			break
		}
		out = append(out, int64(i+k))
		i += k + 1
	}
	return out
}

// Count implements ByteSource.
func (r *RawSource) Count(pattern []byte) int { return len(r.Search(pattern)) }

// InputLen implements ByteSource.
func (r *RawSource) InputLen() int { return len(r.data) }

// Bytes exposes the raw backing slice (used when freezing a LogStore
// into a compressed shard).
func (r *RawSource) Bytes() []byte { return r.data }

// offsetToIndex translates a flat-file offset to the index of the record
// containing it, given the sorted record start offsets: the greatest i
// with starts[i] <= off.
func offsetToIndex(starts []int64, off int64) int {
	return bitutil.SearchGT(starts, off) - 1
}

// seqOffsetToIndex is offsetToIndex over a codec-encoded offset column:
// the greatest i with Get(i) <= off, via the Seq's anchor-aware SearchGE.
func seqOffsetToIndex(offs bitutil.Seq, off int64) int {
	return offs.SearchGE(0, offs.Len(), uint64(off)+1) - 1
}
