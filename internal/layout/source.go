// Package layout implements ZipG's graph representation (§3.3 of the
// paper): the NodeFile and EdgeFile flat-file layouts, the delimiter
// scheme for property IDs, and the fixed-width numeric encodings that
// trade uncompressed size for random access into the compressed form.
//
// Layout views are written against a ByteSource abstraction so the exact
// same query code runs over a compressed succinct store (immutable
// shards) and over raw append-only bytes (the query-optimized LogStore of
// §3.5).
package layout

import (
	"bytes"
	"sort"

	"zipg/internal/memsim"
	"zipg/internal/succinct"
)

// ByteSource is the storage primitive the NodeFile/EdgeFile views query:
// random access (extract) and substring search, per Succinct's interface
// (§3.1).
type ByteSource interface {
	// Extract returns up to n bytes starting at off (truncated at EOF).
	Extract(off, n int) []byte
	// Search returns the offsets of all occurrences of pattern, ascending.
	Search(pattern []byte) []int64
	// Count returns the number of occurrences of pattern.
	Count(pattern []byte) int
	// InputLen returns the length of the underlying flat file.
	InputLen() int
}

// Compile-time check: the succinct store satisfies ByteSource.
var _ ByteSource = (*succinct.Store)(nil)

// RawSource is an uncompressed ByteSource over a plain byte slice,
// charging a simulated medium for every touch. The LogStore and the
// baselines use it; it is also handy in tests as ground truth against the
// compressed path.
type RawSource struct {
	data []byte
	med  *memsim.Medium
	reg  uint32
}

// NewRawSource places data on med (nil = unlimited medium).
func NewRawSource(data []byte, med *memsim.Medium) *RawSource {
	if med == nil {
		med = memsim.Unlimited()
	}
	return &RawSource{data: data, med: med, reg: med.Register(int64(len(data)))}
}

// Append adds bytes to the source (LogStore growth) and returns the
// offset at which they were written.
func (r *RawSource) Append(b []byte) int64 {
	off := int64(len(r.data))
	r.data = append(r.data, b...)
	r.med.Grow(int64(len(b)))
	return off
}

// Extract implements ByteSource.
func (r *RawSource) Extract(off, n int) []byte {
	if off < 0 || off >= len(r.data) || n <= 0 {
		return nil
	}
	end := off + n
	if end > len(r.data) {
		end = len(r.data)
	}
	r.med.Access(r.reg, int64(off), int64(end-off))
	return r.data[off:end]
}

// Search implements ByteSource by linear scan. The scan charges the
// medium for the full pass — this is exactly the cost profile the paper
// ascribes to scanning uncompressed logs, and why the LogStore keeps
// explicit offset pointers to avoid calling this.
func (r *RawSource) Search(pattern []byte) []int64 {
	if len(pattern) == 0 {
		return nil
	}
	r.med.Access(r.reg, 0, int64(len(r.data)))
	var out []int64
	for i := 0; ; {
		k := bytes.Index(r.data[i:], pattern)
		if k < 0 {
			break
		}
		out = append(out, int64(i+k))
		i += k + 1
	}
	return out
}

// Count implements ByteSource.
func (r *RawSource) Count(pattern []byte) int { return len(r.Search(pattern)) }

// InputLen implements ByteSource.
func (r *RawSource) InputLen() int { return len(r.data) }

// Bytes exposes the raw backing slice (used when freezing a LogStore
// into a compressed shard).
func (r *RawSource) Bytes() []byte { return r.data }

// offsetToIndex translates a flat-file offset to the index of the record
// containing it, given the sorted record start offsets: the greatest i
// with starts[i] <= off.
func offsetToIndex(starts []int64, off int64) int {
	i := sort.Search(len(starts), func(k int) bool { return starts[k] > off })
	return i - 1
}
