package layout

// FNV-1a parameters (32-bit), as in hash/fnv.
const (
	fnvOffset32 = 2166136261
	fnvPrime32  = 16777619
)

// IDHash returns the 32-bit FNV-1a hash of a node ID's 8 little-endian
// bytes — bit-identical to writing the bytes through hash/fnv's
// New32a, but fully inlined: no hasher object, no byte buffer, zero
// allocations. Both the store's shard partitioner and the cluster's
// OwnerOf sit on per-query hot paths and hash every ID they route.
func IDHash(id NodeID) uint32 {
	x := uint64(id)
	h := uint32(fnvOffset32)
	h = (h ^ uint32(x&0xff)) * fnvPrime32
	h = (h ^ uint32((x>>8)&0xff)) * fnvPrime32
	h = (h ^ uint32((x>>16)&0xff)) * fnvPrime32
	h = (h ^ uint32((x>>24)&0xff)) * fnvPrime32
	h = (h ^ uint32((x>>32)&0xff)) * fnvPrime32
	h = (h ^ uint32((x>>40)&0xff)) * fnvPrime32
	h = (h ^ uint32((x>>48)&0xff)) * fnvPrime32
	h = (h ^ uint32((x>>56)&0xff)) * fnvPrime32
	return h
}
