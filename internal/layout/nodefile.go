package layout

import (
	"fmt"
	"slices"
	"sort"

	"zipg/internal/bitutil"
	"zipg/internal/memsim"
)

// NodeID identifies a node. EdgeType tags an edge with its kind (§2.1).
type NodeID = int64

// EdgeType identifies the kind of an edge (comment, like, friendship...).
type EdgeType = int64

// Node is a node with its property list, the unit of NodeFile input.
type Node struct {
	ID    NodeID
	Props map[string]string
}

// BuildNodeFile serializes nodes into the NodeFile flat layout of
// Figure 1 and returns the flat file plus the sorted (NodeID, offset)
// index — the layout's "third data structure". Node order in the file is
// ascending NodeID.
func BuildNodeFile(nodes []Node, schema *PropertySchema) (flat []byte, ids []NodeID, offsets []int64, err error) {
	sorted := append([]Node(nil), nodes...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].ID < sorted[j].ID })
	for i := 1; i < len(sorted); i++ {
		if sorted[i].ID == sorted[i-1].ID {
			return nil, nil, nil, fmt.Errorf("layout: duplicate node ID %d", sorted[i].ID)
		}
	}
	ids = make([]NodeID, len(sorted))
	offsets = make([]int64, len(sorted))
	for i, n := range sorted {
		ids[i] = n.ID
		offsets[i] = int64(len(flat))
		if flat, err = schema.SerializeProps(flat, n.Props); err != nil {
			return nil, nil, nil, fmt.Errorf("layout: node %d: %w", n.ID, err)
		}
	}
	return flat, ids, offsets, nil
}

// NodeFileView executes node queries over a serialized NodeFile (§3.4).
// The same view works over a compressed succinct source (immutable
// shards) or raw bytes (LogStore).
type NodeFileView struct {
	src    ByteSource
	schema *PropertySchema
	ids    []NodeID
	// offs holds the per-record start offsets codec-encoded: record
	// starts ascend monotonically, so the column compresses from 8
	// bytes/node to roughly its delta entropy. Which codec is chosen at
	// shard build time (core trial-encodes under the configured policy);
	// views built from raw []int64 offsets use the legacy packing.
	offs bitutil.Seq

	med *memsim.Medium
	reg uint32 // region for the (NodeID, offset) index
}

// NewNodeFileView wraps a serialized NodeFile. ids/offsets must be
// parallel and sorted by ID (which makes offsets non-decreasing). The
// index's footprint is charged to med (nil = unlimited).
func NewNodeFileView(src ByteSource, schema *PropertySchema, ids []NodeID, offsets []int64, med *memsim.Medium) *NodeFileView {
	return NewNodeFileViewSeq(src, schema, ids, PackOffsets(offsets), med)
}

// NewNodeFileViewSeq is NewNodeFileView over an already codec-encoded
// offset column (the shard build and load paths, which choose the codec
// by policy).
func NewNodeFileViewSeq(src ByteSource, schema *PropertySchema, ids []NodeID, offs bitutil.Seq, med *memsim.Medium) *NodeFileView {
	if med == nil {
		med = memsim.Unlimited()
	}
	return &NodeFileView{
		src:    src,
		schema: schema,
		ids:    ids,
		offs:   offs,
		med:    med,
		// The index charge stays at the historical 16 bytes/node so
		// medium-pressure experiments remain comparable across codecs;
		// the Go-heap saving from the encoded column is real either way.
		reg: med.Register(int64(len(ids)) * 16),
	}
}

// PackOffsets encodes a record-offset column (non-decreasing) with the
// legacy codec — the deterministic default for views not built through
// a codec policy.
func PackOffsets(offsets []int64) bitutil.Seq {
	legacy, _ := bitutil.CodecByID(bitutil.CodecLegacy)
	return legacy.Encode(OffsetsToUint64(offsets), true, 0)
}

// OffsetsToUint64 converts an offset column for codec encoding.
func OffsetsToUint64(offsets []int64) []uint64 {
	vals := make([]uint64, len(offsets))
	for i, o := range offsets {
		vals[i] = uint64(o)
	}
	return vals
}

// NumNodes returns the number of nodes in the file.
func (v *NodeFileView) NumNodes() int { return len(v.ids) }

// Schema returns the node property schema.
func (v *NodeFileView) Schema() *PropertySchema { return v.schema }

// IDs returns the sorted node IDs backing the view.
func (v *NodeFileView) IDs() []NodeID { return v.ids }

// Offsets materializes the per-node record offsets parallel to IDs.
func (v *NodeFileView) Offsets() []int64 {
	out := make([]int64, 0, v.offs.Len())
	for _, u := range v.offs.DecodeAll(make([]uint64, 0, v.offs.Len())) {
		out = append(out, int64(u))
	}
	return out
}

// OffsetsSeq returns the codec-encoded offset column (for serialization
// and codec reports).
func (v *NodeFileView) OffsetsSeq() bitutil.Seq { return v.offs }

// Contains reports whether the file holds a record for id.
func (v *NodeFileView) Contains(id NodeID) bool { return v.indexOf(id) >= 0 }

// indexOf returns the index of id in the sorted index, or -1.
func (v *NodeFileView) indexOf(id NodeID) int {
	k := bitutil.SearchGE(v.ids, id)
	// Charge the binary search's touches on the index.
	v.med.Access(v.reg, int64(k)*16, 16)
	if k < len(v.ids) && v.ids[k] == id {
		return k
	}
	return -1
}

// GetProperty returns the value of one property for a node and whether
// the node exists and has the property. Per §3.4 this costs the index
// lookup, the length-header bytes, and one extract of the value itself —
// issued as a single record walk, so over a compressed source the header
// read and the value read share one ISA anchor.
func (v *NodeFileView) GetProperty(id NodeID, propertyID string) (string, bool) {
	k := v.indexOf(id)
	if k < 0 {
		return "", false
	}
	order := v.schema.Order(propertyID)
	if order < 0 {
		return "", false
	}
	sc := getScratch()
	defer putScratch(sc)
	hs := v.schema.headerSize()
	w := newRecWalk(v.src, int(v.offs.Get(k)))
	sc.buf = w.appendN(sc.buf[:0], hs)
	if len(sc.buf) < hs {
		return "", false
	}
	lengths := sc.lengths(v.schema.NumProperties())
	v.schema.decodeLengthsInto(lengths, sc.buf)
	if lengths[order] == 0 {
		return "", false
	}
	off, n := v.schema.valueLocation(lengths, order)
	w.skip(off - hs)
	sc.buf = w.appendN(sc.buf[:0], n)
	return string(sc.buf), true
}

// GetProperties returns the values for the given property IDs; absent
// properties yield empty strings. A nil or empty propertyIDs slice is the
// wildcard: all properties in schema order (paper §2.2). The record is
// read in one front-to-back walk, skipping unrequested values.
func (v *NodeFileView) GetProperties(id NodeID, propertyIDs []string) ([]string, bool) {
	k := v.indexOf(id)
	if k < 0 {
		return nil, false
	}
	sc := getScratch()
	defer putScratch(sc)
	w := newRecWalk(v.src, int(v.offs.Get(k)))
	return v.propsFromWalk(&w, propertyIDs, sc)
}

// propsFromWalk is the body of GetProperties over an already-positioned
// record walk (w at the record's first header byte). The batch read path
// calls it with a shared walker; GetProperties with a fresh one.
func (v *NodeFileView) propsFromWalk(w *recWalk, propertyIDs []string, sc *recScratch) ([]string, bool) {
	if len(propertyIDs) == 0 {
		propertyIDs = v.schema.IDs()
	}
	hs := v.schema.headerSize()
	sc.buf = w.appendN(sc.buf[:0], hs)
	if len(sc.buf) < hs {
		return nil, false
	}
	lengths := sc.lengths(v.schema.NumProperties())
	v.schema.decodeLengthsInto(lengths, sc.buf)
	ords := sc.orders(len(propertyIDs))
	last := -1
	for i, pid := range propertyIDs {
		ords[i] = v.schema.Order(pid)
		if ords[i] > last {
			last = ords[i]
		}
	}
	out := make([]string, len(propertyIDs))
	for o := 0; o <= last; o++ {
		w.skip(len(v.schema.Delimiter(o)))
		n := lengths[o]
		wanted := false
		for _, ro := range ords {
			if ro == o {
				wanted = true
				break
			}
		}
		if !wanted || n == 0 {
			w.skip(n)
			continue
		}
		sc.buf = w.appendN(sc.buf[:0], n)
		val := string(sc.buf)
		for i, ro := range ords {
			if ro == o {
				out[i] = val
			}
		}
	}
	return out, true
}

// GetAllProps returns the node's full property map.
func (v *NodeFileView) GetAllProps(id NodeID) (map[string]string, bool) {
	k := v.indexOf(id)
	if k < 0 {
		return nil, false
	}
	vals, _ := v.GetProperties(id, nil)
	props := make(map[string]string)
	for i, pid := range v.schema.IDs() {
		if vals[i] != "" {
			props[pid] = vals[i]
		}
	}
	return props, true
}

// FindNodes returns the IDs of all nodes whose properties exactly match
// every (propertyID, value) pair (§3.4's get_node_ids): each value is
// wrapped in its property's delimiter and the next delimiter, located
// with the search primitive, and translated back to node IDs via binary
// search over the offset index. Multiple pairs intersect.
func (v *NodeFileView) FindNodes(props map[string]string) []NodeID {
	if len(props) == 0 {
		return nil
	}
	var result map[NodeID]bool
	for pid, val := range props {
		order := v.schema.Order(pid)
		if order < 0 {
			return nil
		}
		pattern := append([]byte(nil), v.schema.Delimiter(order)...)
		pattern = append(pattern, val...)
		pattern = append(pattern, v.schema.NextDelimiter(order)...)
		matches := v.src.Search(pattern)
		ids := make(map[NodeID]bool, len(matches))
		for _, off := range matches {
			k := seqOffsetToIndex(v.offs, off)
			v.med.Access(v.reg, int64(k)*16, 16)
			if k >= 0 {
				ids[v.ids[k]] = true
			}
		}
		if result == nil {
			result = ids
		} else {
			for id := range result {
				if !ids[id] {
					delete(result, id)
				}
			}
		}
		if len(result) == 0 {
			return nil
		}
	}
	out := make([]NodeID, 0, len(result))
	for id := range result {
		out = append(out, id)
	}
	slices.Sort(out)
	return out
}

// MatchesProps reports whether node id has every given property value
// (used by get_neighbor_ids' filter step, which checks each neighbor
// instead of joining — §2.2).
func (v *NodeFileView) MatchesProps(id NodeID, props map[string]string) bool {
	for pid, val := range props {
		got, ok := v.GetProperty(id, pid)
		if !ok || got != val {
			return false
		}
	}
	return true
}
