package telemetry

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Span is one operation's trace node: which operation ran, where it sits
// in the distributed span tree (trace ID, parent link, reporting
// server), how its time divides across named phases, which fragments it
// touched, whether it was served from the LogStore or from compressed
// NodeFile/EdgeFile data, how far it fanned out over RPC, and how many
// bytes it extracted from Succinct-compressed storage.
//
// Finished spans land in three places: the fixed-size flight-recorder
// ring (RecentSpans, /debug/traces), the bounded per-trace table that
// the assembler stitches into trees (/debug/trace/{id}), and — for
// slow or failed operations — the slow-query ring (/debug/slow).
//
// All methods are nil-safe: StartSpan returns nil while telemetry is
// disabled and every mutator no-ops on a nil receiver, so call sites
// need no guards.
type Span struct {
	Op       string        // operation, e.g. "store.get_node_props"
	Trace    TraceID       // 128-bit trace this span belongs to (zero: untraced error capture)
	SpanID   uint64        // this span's ID within the trace
	ParentID uint64        // parent span's ID (0: root)
	Server   int           // reporting server's cluster ID (-1: unknown/client)
	Start    time.Time     // wall-clock start
	Duration time.Duration // set by End
	Phases   []Phase       // named wall-time segments (queue, network, succinct_walk, ...)
	Shards   []int         // shard/fragment IDs consulted, in order
	LogStore bool          // served (at least partly) from the LogStore
	NodeFile bool          // touched compressed NodeFile data
	EdgeFile bool          // touched compressed EdgeFile data
	Fanout   int           // remote servers shipped to (cluster layer)
	Local    int           // subqueries answered locally
	Remote   int           // subqueries shipped over RPC
	Bytes    int64         // bytes extracted from Succinct storage
	Err      string        // non-empty if the operation failed

	sampled      bool    // chosen by the sampling period (or a propagated decision)
	remoteParent bool    // parent span lives on another server (this is a local root)
	children     []*Span // local child spans, guarded by treeMu
	remote       []Span  // finished spans shipped back from remote servers, guarded by treeMu
}

// Phase is one named wall-time segment of a span. The taxonomy used by
// the query path: queue, serialize, network, decode, logstore,
// succinct_walk. Repeated segments with the same name accumulate.
type Phase struct {
	Name string
	Ns   int64
}

// treeMu guards span-tree mutation (Phases, children, remote) — these
// are touched only on sampled or failing operations, far off the
// untraced hot path, so one package-level mutex is cheaper than a
// per-span lock (which would also make Span unsafe to copy into the
// rings).
var treeMu sync.Mutex

// DefaultSpanSampling is the flight recorder's default sampling period:
// one trace is recorded per this many eligible queries. Counters and
// histograms always see every operation; only trace recording samples,
// which keeps the span machinery (allocation + ring push) off the read
// hot path. SetSpanSampling(1) traces everything. Failing operations
// are exempt: error spans are recorded regardless of the period.
const DefaultSpanSampling = 64

var (
	spanSampleEvery atomic.Int64
	spanTick        atomic.Int64
)

func init() { spanSampleEvery.Store(DefaultSpanSampling) }

// SetSpanSampling sets the sampling period (minimum 1 = trace every
// query) and returns the previous value.
func SetSpanSampling(every int) int {
	if every < 1 {
		every = 1
	}
	return int(spanSampleEvery.Swap(int64(every)))
}

// sampleTick reports whether the next eligible query falls inside the
// sampling period.
func sampleTick() bool {
	every := spanSampleEvery.Load()
	return every <= 1 || spanTick.Add(1)%every == 1
}

// StartSpan begins a root span, or returns nil while telemetry is
// disabled or this query fell outside the sampling period. All Span
// methods are nil-safe, so call sites never need to check. Sampled
// roots mint a fresh 128-bit trace ID; see StartSpanCtx for spans that
// join an existing trace.
func StartSpan(op string) *Span {
	if !enabled.Load() || !sampleTick() {
		return nil
	}
	return newRootSpan(op)
}

func newRootSpan(op string) *Span {
	return &Span{
		Op:      op,
		Trace:   newTraceID(),
		SpanID:  newSpanID(),
		Server:  -1,
		Start:   time.Now(),
		sampled: true,
	}
}

// RecordErrorSpan force-records a failed operation that fell outside
// the sampling period, so the flight recorder and /debug/slow never
// miss a failure. start may be zero when the caller did not time the
// operation (the span then records a zero duration).
func RecordErrorSpan(op string, start time.Time, err error) {
	if err == nil || !enabled.Load() {
		return
	}
	sp := &Span{Op: op, Server: -1, Start: start}
	if start.IsZero() {
		sp.Start = time.Now()
	}
	sp.Err = err.Error()
	sp.End()
}

// Phase begins timing a named phase and returns the function that ends
// it — the `defer sp.Phase("succinct_walk")()` pattern. On a nil span
// it returns a shared no-op, so untraced queries pay one nil check.
func (sp *Span) Phase(name string) func() {
	if sp == nil {
		return noopPhase
	}
	start := time.Now()
	return func() { sp.AddPhase(name, time.Since(start)) }
}

var noopPhase = func() {}

// AddPhase accumulates a measured duration into the named phase.
func (sp *Span) AddPhase(name string, d time.Duration) {
	if sp == nil || d < 0 {
		return
	}
	treeMu.Lock()
	defer treeMu.Unlock()
	for i := range sp.Phases {
		if sp.Phases[i].Name == name {
			sp.Phases[i].Ns += int64(d)
			return
		}
	}
	sp.Phases = append(sp.Phases, Phase{Name: name, Ns: int64(d)})
}

// PhaseTotal returns the sum of all recorded phase durations.
func (sp *Span) PhaseTotal() time.Duration {
	if sp == nil {
		return 0
	}
	treeMu.Lock()
	defer treeMu.Unlock()
	var total int64
	for _, p := range sp.Phases {
		total += p.Ns
	}
	return time.Duration(total)
}

// addChild links a locally created child span (see StartSpanCtx).
func (sp *Span) addChild(child *Span) {
	treeMu.Lock()
	sp.children = append(sp.children, child)
	treeMu.Unlock()
}

// AddRemoteSpans attaches finished spans shipped back from a remote
// server (the rpc layer calls this with a response's span payload).
// They join the trace table when this span ends.
func (sp *Span) AddRemoteSpans(spans []Span) {
	if sp == nil || len(spans) == 0 {
		return
	}
	treeMu.Lock()
	sp.remote = append(sp.remote, spans...)
	treeMu.Unlock()
}

// Flatten returns this span and every descendant — local children
// recursively plus remote-shipped spans — as a flat value slice, the
// form the rpc layer ships back to callers. Call only after the span
// tree has finished mutating (all children ended).
func (sp *Span) Flatten() []Span {
	if sp == nil {
		return nil
	}
	treeMu.Lock()
	defer treeMu.Unlock()
	return sp.flattenLocked(nil)
}

func (sp *Span) flattenLocked(out []Span) []Span {
	out = append(out, *sp)
	for _, c := range sp.children {
		out = c.flattenLocked(out)
	}
	out = append(out, sp.remote...)
	return out
}

// AddShard records that a shard/fragment was consulted.
func (sp *Span) AddShard(id int) {
	if sp == nil {
		return
	}
	sp.Shards = append(sp.Shards, id)
}

// SetServer records the cluster server ID this span reports from.
func (sp *Span) SetServer(id int) {
	if sp == nil {
		return
	}
	sp.Server = id
}

// MarkLogStore records a LogStore hit.
func (sp *Span) MarkLogStore() {
	if sp == nil {
		return
	}
	sp.LogStore = true
}

// MarkNodeFile records a compressed NodeFile access.
func (sp *Span) MarkNodeFile() {
	if sp == nil {
		return
	}
	sp.NodeFile = true
}

// MarkEdgeFile records a compressed EdgeFile access.
func (sp *Span) MarkEdgeFile() {
	if sp == nil {
		return
	}
	sp.EdgeFile = true
}

// SetFanout records the RPC fan-out and the local/remote subquery split.
func (sp *Span) SetFanout(fanout, local, remote int) {
	if sp == nil {
		return
	}
	sp.Fanout = fanout
	sp.Local = local
	sp.Remote = remote
}

// AddBytes accumulates bytes extracted from compressed storage.
func (sp *Span) AddBytes(n int64) {
	if sp == nil {
		return
	}
	sp.Bytes += n
}

// SetError records a failure. Spans with errors are recorded by End
// even when they fell outside the sampling period.
func (sp *Span) SetError(err error) {
	if sp == nil || err == nil {
		return
	}
	sp.Err = err.Error()
}

// End stamps the duration and records the span: into the flight-
// recorder ring and the trace table when sampled, and always when the
// span carries an error (failures must never vanish into the 63/64
// unsampled majority). Slow or failed spans additionally enter the
// slow-query ring.
func (sp *Span) End() {
	if sp == nil {
		return
	}
	sp.Duration = time.Since(sp.Start)
	if sp.Err != "" {
		mTraceErrSpans.Inc()
	}
	if !sp.sampled && sp.Err == "" {
		return
	}
	recorder.record(*sp)
	traces.add(*sp)
	treeMu.Lock()
	rem := sp.remote
	treeMu.Unlock()
	for _, r := range rem {
		traces.add(r)
	}
	slowRecorder.offer(*sp)
}

// String renders a span as one human-readable trace line.
func (sp *Span) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s %s", sp.Op, sp.Duration)
	if !sp.Trace.IsZero() {
		fmt.Fprintf(&b, " trace=%s", sp.Trace)
	}
	if sp.Server >= 0 {
		fmt.Fprintf(&b, " server=%d", sp.Server)
	}
	if len(sp.Phases) > 0 {
		b.WriteString(" phases=[")
		for i, p := range sp.Phases {
			if i > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%s=%s", p.Name, time.Duration(p.Ns))
		}
		b.WriteByte(']')
	}
	if len(sp.Shards) > 0 {
		fmt.Fprintf(&b, " shards=%v", sp.Shards)
	}
	var src []string
	if sp.LogStore {
		src = append(src, "logstore")
	}
	if sp.NodeFile {
		src = append(src, "nodefile")
	}
	if sp.EdgeFile {
		src = append(src, "edgefile")
	}
	if len(src) > 0 {
		fmt.Fprintf(&b, " src=%s", strings.Join(src, "+"))
	}
	if sp.Fanout > 0 || sp.Remote > 0 {
		fmt.Fprintf(&b, " fanout=%d local=%d remote=%d", sp.Fanout, sp.Local, sp.Remote)
	}
	if sp.Bytes > 0 {
		fmt.Fprintf(&b, " bytes=%d", sp.Bytes)
	}
	if sp.Err != "" {
		fmt.Fprintf(&b, " err=%q", sp.Err)
	}
	return b.String()
}

// spanRingSize is the flight-recorder capacity.
const spanRingSize = 256

// spanRing keeps the most recent spans. Recording takes a short mutex —
// spans end once per query, far off the per-fragment hot path.
type spanRing struct {
	mu    sync.Mutex
	spans [spanRingSize]Span
	next  int
	total int64
}

var recorder spanRing

func (r *spanRing) record(sp Span) {
	r.mu.Lock()
	r.spans[r.next] = sp
	r.next = (r.next + 1) % spanRingSize
	r.total++
	r.mu.Unlock()
}

// RecentSpans returns up to n most recent spans, newest first.
func RecentSpans(n int) []Span {
	recorder.mu.Lock()
	defer recorder.mu.Unlock()
	if n <= 0 || int64(n) > recorder.total {
		n = int(min64(int64(spanRingSize), recorder.total))
	}
	if n > spanRingSize {
		n = spanRingSize
	}
	out := make([]Span, 0, n)
	for i := 1; i <= n; i++ {
		idx := (recorder.next - i + spanRingSize) % spanRingSize
		out = append(out, recorder.spans[idx])
	}
	return out
}

// SpanTotal returns how many spans have been recorded since start.
func SpanTotal() int64 {
	recorder.mu.Lock()
	defer recorder.mu.Unlock()
	return recorder.total
}

// ResetSpans clears the flight recorder, the trace table and the
// slow-query ring (tests).
func ResetSpans() {
	recorder.mu.Lock()
	recorder.spans = [spanRingSize]Span{}
	recorder.next = 0
	recorder.total = 0
	recorder.mu.Unlock()
	traces.reset()
	slowRecorder.reset()
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
