package telemetry

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Span is one query's trace: which operation ran, which fragments it
// touched, whether it was served from the LogStore or from compressed
// NodeFile/EdgeFile data, how far it fanned out over RPC, and how many
// bytes it extracted from Succinct-compressed storage. Spans are
// recorded into a fixed-size ring readable from /debug/vars (and
// RecentSpans) — a flight recorder, not a full trace store.
//
// All methods are nil-safe: StartSpan returns nil while telemetry is
// disabled and every mutator no-ops on a nil receiver, so call sites
// need no guards.
type Span struct {
	Op       string        // operation, e.g. "store.get_node_props"
	Start    time.Time     // wall-clock start
	Duration time.Duration // set by End
	Shards   []int         // shard/fragment IDs consulted, in order
	LogStore bool          // served (at least partly) from the LogStore
	NodeFile bool          // touched compressed NodeFile data
	EdgeFile bool          // touched compressed EdgeFile data
	Fanout   int           // remote servers shipped to (cluster layer)
	Local    int           // subqueries answered locally
	Remote   int           // subqueries shipped over RPC
	Bytes    int64         // bytes extracted from Succinct storage
	Err      string        // non-empty if the operation failed
}

// DefaultSpanSampling is the flight recorder's default sampling period:
// one span is recorded per this many eligible queries. Counters and
// histograms always see every operation; only trace recording samples,
// which keeps the span machinery (allocation + ring push) off the read
// hot path. SetSpanSampling(1) traces everything.
const DefaultSpanSampling = 64

var (
	spanSampleEvery atomic.Int64
	spanTick        atomic.Int64
)

func init() { spanSampleEvery.Store(DefaultSpanSampling) }

// SetSpanSampling sets the sampling period (minimum 1 = trace every
// query) and returns the previous value.
func SetSpanSampling(every int) int {
	if every < 1 {
		every = 1
	}
	return int(spanSampleEvery.Swap(int64(every)))
}

// StartSpan begins a span, or returns nil while telemetry is disabled
// or this query fell outside the sampling period. All Span methods are
// nil-safe, so call sites never need to check.
func StartSpan(op string) *Span {
	if !enabled.Load() {
		return nil
	}
	if every := spanSampleEvery.Load(); every > 1 && spanTick.Add(1)%every != 1 {
		return nil
	}
	return &Span{Op: op, Start: time.Now()}
}

// AddShard records that a shard/fragment was consulted.
func (sp *Span) AddShard(id int) {
	if sp == nil {
		return
	}
	sp.Shards = append(sp.Shards, id)
}

// MarkLogStore records a LogStore hit.
func (sp *Span) MarkLogStore() {
	if sp == nil {
		return
	}
	sp.LogStore = true
}

// MarkNodeFile records a compressed NodeFile access.
func (sp *Span) MarkNodeFile() {
	if sp == nil {
		return
	}
	sp.NodeFile = true
}

// MarkEdgeFile records a compressed EdgeFile access.
func (sp *Span) MarkEdgeFile() {
	if sp == nil {
		return
	}
	sp.EdgeFile = true
}

// SetFanout records the RPC fan-out and the local/remote subquery split.
func (sp *Span) SetFanout(fanout, local, remote int) {
	if sp == nil {
		return
	}
	sp.Fanout = fanout
	sp.Local = local
	sp.Remote = remote
}

// AddBytes accumulates bytes extracted from compressed storage.
func (sp *Span) AddBytes(n int64) {
	if sp == nil {
		return
	}
	sp.Bytes += n
}

// SetError records a failure.
func (sp *Span) SetError(err error) {
	if sp == nil || err == nil {
		return
	}
	sp.Err = err.Error()
}

// End stamps the duration and records the span into the ring.
func (sp *Span) End() {
	if sp == nil {
		return
	}
	sp.Duration = time.Since(sp.Start)
	recorder.record(*sp)
}

// String renders a span as one human-readable trace line.
func (sp *Span) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s %s", sp.Op, sp.Duration)
	if len(sp.Shards) > 0 {
		fmt.Fprintf(&b, " shards=%v", sp.Shards)
	}
	var src []string
	if sp.LogStore {
		src = append(src, "logstore")
	}
	if sp.NodeFile {
		src = append(src, "nodefile")
	}
	if sp.EdgeFile {
		src = append(src, "edgefile")
	}
	if len(src) > 0 {
		fmt.Fprintf(&b, " src=%s", strings.Join(src, "+"))
	}
	if sp.Fanout > 0 || sp.Remote > 0 {
		fmt.Fprintf(&b, " fanout=%d local=%d remote=%d", sp.Fanout, sp.Local, sp.Remote)
	}
	if sp.Bytes > 0 {
		fmt.Fprintf(&b, " bytes=%d", sp.Bytes)
	}
	if sp.Err != "" {
		fmt.Fprintf(&b, " err=%q", sp.Err)
	}
	return b.String()
}

// spanRingSize is the flight-recorder capacity.
const spanRingSize = 256

// spanRing keeps the most recent spans. Recording takes a short mutex —
// spans end once per query, far off the per-fragment hot path.
type spanRing struct {
	mu    sync.Mutex
	spans [spanRingSize]Span
	next  int
	total int64
}

var recorder spanRing

func (r *spanRing) record(sp Span) {
	r.mu.Lock()
	r.spans[r.next] = sp
	r.next = (r.next + 1) % spanRingSize
	r.total++
	r.mu.Unlock()
}

// RecentSpans returns up to n most recent spans, newest first.
func RecentSpans(n int) []Span {
	recorder.mu.Lock()
	defer recorder.mu.Unlock()
	if n <= 0 || int64(n) > recorder.total {
		n = int(min64(int64(spanRingSize), recorder.total))
	}
	if n > spanRingSize {
		n = spanRingSize
	}
	out := make([]Span, 0, n)
	for i := 1; i <= n; i++ {
		idx := (recorder.next - i + spanRingSize) % spanRingSize
		out = append(out, recorder.spans[idx])
	}
	return out
}

// SpanTotal returns how many spans have been recorded since start.
func SpanTotal() int64 {
	recorder.mu.Lock()
	defer recorder.mu.Unlock()
	return recorder.total
}

// ResetSpans clears the flight recorder (tests).
func ResetSpans() {
	recorder.mu.Lock()
	defer recorder.mu.Unlock()
	recorder.spans = [spanRingSize]Span{}
	recorder.next = 0
	recorder.total = 0
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
