package telemetry

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestAdminEndpoints(t *testing.T) {
	prev := SetEnabled(true)
	defer SetEnabled(prev)
	prevSampling := SetSpanSampling(1)
	defer SetSpanSampling(prevSampling)

	c := NewCounterL("zipg_admin_test_total", `src="http_test"`, "admin endpoint test counter")
	c.Add(7)
	sp := StartSpan("test.admin")
	sp.AddShard(1)
	sp.End()

	srv, err := ServeAdmin("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr

	code, body := get(t, base+"/metrics")
	if code != 200 {
		t.Fatalf("/metrics status %d", code)
	}
	if !strings.Contains(body, `zipg_admin_test_total{src="http_test"} 7`) {
		t.Errorf("/metrics missing test counter:\n%s", body)
	}
	if !strings.Contains(body, "# TYPE zipg_admin_test_total counter") {
		t.Error("/metrics missing TYPE header")
	}

	code, body = get(t, base+"/healthz")
	if code != 200 {
		t.Fatalf("/healthz status %d", code)
	}
	var health struct {
		Status string `json:"status"`
	}
	if err := json.Unmarshal([]byte(body), &health); err != nil || health.Status != "ok" {
		t.Errorf("/healthz = %q (err %v)", body, err)
	}

	code, body = get(t, base+"/debug/vars")
	if code != 200 || !strings.Contains(body, "zipg_metrics") {
		t.Errorf("/debug/vars status %d body missing zipg_metrics", code)
	}

	code, body = get(t, base+"/debug/traces?n=5")
	if code != 200 || !strings.Contains(body, "test.admin") {
		t.Errorf("/debug/traces status %d, body %q", code, body)
	}

	// pprof index must respond (profile endpoints exist under it).
	code, _ = get(t, base+"/debug/pprof/")
	if code != 200 {
		t.Errorf("/debug/pprof/ status %d", code)
	}
}

// TestTraceEndpoints serves a recorded trace over the admin mux and
// checks /debug/trace/{id} round-trips the assembled span tree as JSON
// and /debug/slow surfaces failed spans.
func TestTraceEndpoints(t *testing.T) {
	withEnabled(t, func() {
		prev := SetSpanSampling(1)
		defer SetSpanSampling(prev)
		ResetSpans()

		root, ctx := StartSpanCtx(context.Background(), "t.http_root")
		child, _ := StartSpanCtx(ctx, "t.http_child")
		child.AddPhase("succinct_walk", time.Millisecond)
		child.End()
		root.End()
		RecordErrorSpan("t.http_failed", time.Now(), errTest)

		srv, err := ServeAdmin("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
		base := "http://" + srv.Addr

		// Listing: recent trace IDs as hex strings.
		code, body := get(t, base+"/debug/trace/")
		if code != 200 {
			t.Fatalf("/debug/trace/ status %d", code)
		}
		var ids []string
		if err := json.Unmarshal([]byte(body), &ids); err != nil {
			t.Fatalf("trace listing decode: %v (%q)", err, body)
		}
		found := false
		for _, id := range ids {
			if id == root.Trace.String() {
				found = true
			}
		}
		if !found {
			t.Fatalf("trace listing %v missing %s", ids, root.Trace)
		}

		// One assembled tree.
		code, body = get(t, base+"/debug/trace/"+root.Trace.String())
		if code != 200 {
			t.Fatalf("/debug/trace/{id} status %d: %s", code, body)
		}
		var tree TraceTree
		if err := json.Unmarshal([]byte(body), &tree); err != nil {
			t.Fatalf("tree decode: %v", err)
		}
		if tree.TraceID != root.Trace || tree.SpanCount != 2 || len(tree.Roots) != 1 {
			t.Fatalf("tree = %+v", tree)
		}
		n := tree.Roots[0]
		if n.Span.Op != "t.http_root" || len(n.Children) != 1 || n.Children[0].Span.Op != "t.http_child" {
			t.Fatalf("tree shape = %+v", tree)
		}
		if ph := n.Children[0].Span.Phases; len(ph) != 1 || ph[0].Name != "succinct_walk" {
			t.Fatalf("child phases = %+v", ph)
		}

		// Unknown and malformed IDs.
		if code, _ := get(t, base+"/debug/trace/"+TraceID{Hi: 1, Lo: 2}.String()); code != http.StatusNotFound {
			t.Errorf("unknown trace returned %d, want 404", code)
		}
		if code, _ := get(t, base+"/debug/trace/nothex"); code != http.StatusBadRequest {
			t.Errorf("malformed trace ID returned %d, want 400", code)
		}

		// Slow ring: the failure surfaces.
		code, body = get(t, base+"/debug/slow")
		if code != 200 || !strings.Contains(body, "t.http_failed") {
			t.Errorf("/debug/slow status %d missing failed span:\n%s", code, body)
		}
	})
}
