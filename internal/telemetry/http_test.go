package telemetry

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
)

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestAdminEndpoints(t *testing.T) {
	prev := SetEnabled(true)
	defer SetEnabled(prev)
	prevSampling := SetSpanSampling(1)
	defer SetSpanSampling(prevSampling)

	c := NewCounterL("zipg_admin_test_total", `src="http_test"`, "admin endpoint test counter")
	c.Add(7)
	sp := StartSpan("test.admin")
	sp.AddShard(1)
	sp.End()

	srv, err := ServeAdmin("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr

	code, body := get(t, base+"/metrics")
	if code != 200 {
		t.Fatalf("/metrics status %d", code)
	}
	if !strings.Contains(body, `zipg_admin_test_total{src="http_test"} 7`) {
		t.Errorf("/metrics missing test counter:\n%s", body)
	}
	if !strings.Contains(body, "# TYPE zipg_admin_test_total counter") {
		t.Error("/metrics missing TYPE header")
	}

	code, body = get(t, base+"/healthz")
	if code != 200 {
		t.Fatalf("/healthz status %d", code)
	}
	var health struct {
		Status string `json:"status"`
	}
	if err := json.Unmarshal([]byte(body), &health); err != nil || health.Status != "ok" {
		t.Errorf("/healthz = %q (err %v)", body, err)
	}

	code, body = get(t, base+"/debug/vars")
	if code != 200 || !strings.Contains(body, "zipg_metrics") {
		t.Errorf("/debug/vars status %d body missing zipg_metrics", code)
	}

	code, body = get(t, base+"/debug/traces?n=5")
	if code != 200 || !strings.Contains(body, "test.admin") {
		t.Errorf("/debug/traces status %d, body %q", code, body)
	}

	// pprof index must respond (profile endpoints exist under it).
	code, _ = get(t, base+"/debug/pprof/")
	if code != 200 {
		t.Errorf("/debug/pprof/ status %d", code)
	}
}
