// Package telemetry is ZipG's observability substrate: lock-free
// sharded counters, gauges, power-of-two latency histograms with
// percentile extraction, and a per-query span recorder. Every layer of
// the query path (store, logstore, rpc, cluster) reports into a global
// registry which the admin HTTP listener (see http.go) exposes in the
// Prometheus text exposition format.
//
// All recording is gated on one atomic enable flag so that a disabled
// store pays only an atomic load on its hot path; benchmarks in
// internal/store keep the enabled path honest too. Metric mutators are
// safe for concurrent use without locks: counters stripe their cells
// across cache lines, histograms use one atomic per bucket.
package telemetry

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
	"unsafe"
)

// enabled gates all recording. Off by default: library users opt in.
var enabled atomic.Bool

// Enable turns recording on.
func Enable() { enabled.Store(true) }

// Disable turns recording off. Existing values are retained.
func Disable() { enabled.Store(false) }

// Enabled reports whether telemetry is recording.
func Enabled() bool { return enabled.Load() }

// SetEnabled sets the flag and returns the previous state (handy for
// benchmarks that must restore it).
func SetEnabled(on bool) bool { return enabled.Swap(on) }

const cacheLine = 64

// numCells is the stripe width of a Counter: a power of two comfortably
// above typical core counts so concurrent writers rarely share a cell.
const numCells = 32

// cell is one cache-line-padded counter stripe.
type cell struct {
	n atomic.Int64
	_ [cacheLine - 8]byte
}

// cellIndex picks a stripe for the calling goroutine. Goroutine stacks
// live in distinct spans, so the address of any stack variable is a
// cheap goroutine-stable hash: same goroutine keeps hitting the same
// (cached) cell, different goroutines scatter.
func cellIndex() uint32 {
	var x byte
	p := uintptr(unsafe.Pointer(&x))
	h := uint32(p >> 4)
	h ^= h >> 9
	return h & (numCells - 1)
}

// Counter is a monotonically increasing, lock-free sharded counter.
type Counter struct {
	meta
	cells [numCells]cell
}

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Add adds delta (no-op while telemetry is disabled).
func (c *Counter) Add(delta int64) {
	if c == nil || !enabled.Load() {
		return
	}
	c.cells[cellIndex()].n.Add(delta)
}

// Value sums the stripes.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	var total int64
	for i := range c.cells {
		total += c.cells[i].n.Load()
	}
	return total
}

// Gauge is an instantaneous value (e.g. in-flight requests).
type Gauge struct {
	meta
	n atomic.Int64
}

// Inc adds 1. Gauges record even while disabled: they track state
// (in-flight counts) whose deltas would otherwise be lost across an
// enable/disable toggle.
func (g *Gauge) Inc() { g.n.Add(1) }

// Dec subtracts 1.
func (g *Gauge) Dec() { g.n.Add(-1) }

// Add adds delta.
func (g *Gauge) Add(delta int64) { g.n.Add(delta) }

// Set replaces the value.
func (g *Gauge) Set(v int64) { g.n.Store(v) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.n.Load() }

// numBuckets covers values 1ns..~8.8s (2^0..2^33) in power-of-two
// buckets, plus one overflow bucket.
const numBuckets = 34

// Histogram is a lock-free power-of-two histogram. Values are int64
// observations — nanoseconds for latency metrics, plain counts for
// size/fan-out metrics; bucket i counts observations v with
// 2^(i-1) < v <= 2^i (bucket 0: v <= 1).
type Histogram struct {
	meta
	buckets [numBuckets + 1]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64
}

// Observe records one value (no-op while disabled).
func (h *Histogram) Observe(v int64) {
	if h == nil || !enabled.Load() {
		return
	}
	if v < 0 {
		v = 0
	}
	b := bucketOf(v)
	h.buckets[b].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// ObserveDuration records a latency in nanoseconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(int64(d)) }

func bucketOf(v int64) int {
	if v <= 1 {
		return 0
	}
	b := bits.Len64(uint64(v - 1)) // ceil(log2(v))
	if b > numBuckets {
		b = numBuckets
	}
	return b
}

// bucketBound returns the inclusive upper bound of bucket i.
func bucketBound(i int) int64 {
	if i >= numBuckets {
		return -1 // +Inf
	}
	return int64(1) << uint(i)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observations.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Mean returns the average observation, or 0 when empty.
func (h *Histogram) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return float64(h.Sum()) / float64(n)
}

// Quantile returns an upper bound on the q-quantile (0 < q <= 1):
// the upper boundary of the bucket holding the q-th observation.
// Because buckets are powers of two the bound is within 2x of the true
// value — good enough for p50/p95/p99 dashboards.
func (h *Histogram) Quantile(q float64) int64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := int64(q * float64(total))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i := 0; i <= numBuckets; i++ {
		cum += h.buckets[i].Load()
		if cum >= rank {
			b := bucketBound(i)
			if b < 0 { // overflow bucket
				return int64(1) << numBuckets
			}
			return b
		}
	}
	return int64(1) << numBuckets
}

// P50, P95 and P99 extract the standard latency percentiles.
func (h *Histogram) P50() int64 { return h.Quantile(0.50) }

// P95 is the 95th percentile upper bound.
func (h *Histogram) P95() int64 { return h.Quantile(0.95) }

// P99 is the 99th percentile upper bound.
func (h *Histogram) P99() int64 { return h.Quantile(0.99) }

// Timer captures a start time for latency observations. The zero Timer
// (returned while disabled) makes the matching Observe call a no-op, so
// the disabled hot path never calls time.Now.
type Timer struct {
	start time.Time
}

// StartTimer begins a latency measurement (zero Timer while disabled).
func StartTimer() Timer {
	if !enabled.Load() {
		return Timer{}
	}
	return Timer{start: time.Now()}
}

// ObserveInto records the elapsed time into h (no-op for zero Timers).
func (t Timer) ObserveInto(h *Histogram) {
	if t.start.IsZero() {
		return
	}
	h.ObserveDuration(time.Since(t.start))
}

// Elapsed returns the time since the timer started (0 for zero Timers).
func (t Timer) Elapsed() time.Duration {
	if t.start.IsZero() {
		return 0
	}
	return time.Since(t.start)
}

// --- registry ---

// meta is the shared identity of a registered metric.
type meta struct {
	family string // metric family name, e.g. zipg_store_ops_total
	labels string // optional label set, e.g. `op="get_node_props"`
	help   string
}

// series renders the full series name for exposition and snapshots.
func (m *meta) series() string {
	if m.labels == "" {
		return m.family
	}
	return m.family + "{" + m.labels + "}"
}

type metric interface {
	metricMeta() *meta
}

func (m *meta) metricMeta() *meta { return m }

// Registry holds registered metrics; the package-level Default registry
// is what the admin endpoints expose.
type Registry struct {
	mu      sync.Mutex
	metrics []metric
}

// Default is the process-wide registry.
var Default = &Registry{}

func (r *Registry) register(m metric) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.metrics = append(r.metrics, m)
}

// NewCounter registers a labelless counter in the default registry.
func NewCounter(family, help string) *Counter { return Default.NewCounterL(family, "", help) }

// NewCounterL registers a counter with a fixed label set (e.g.
// `op="get_node_props"`; the caller formats the labels) in the default
// registry.
func NewCounterL(family, labels, help string) *Counter {
	return Default.NewCounterL(family, labels, help)
}

// NewCounterL registers a counter with a fixed label set.
func (r *Registry) NewCounterL(family, labels, help string) *Counter {
	c := &Counter{meta: meta{family: family, labels: labels, help: help}}
	r.register(c)
	return c
}

// NewGauge registers a gauge in the default registry.
func NewGauge(family, help string) *Gauge { return Default.NewGauge(family, help) }

// NewGauge registers a gauge.
func (r *Registry) NewGauge(family, help string) *Gauge {
	g := &Gauge{meta: meta{family: family, help: help}}
	r.register(g)
	return g
}

// NewHistogram registers a labelless histogram in the default registry.
func NewHistogram(family, help string) *Histogram {
	return Default.NewHistogramL(family, "", help)
}

// NewHistogramL registers a histogram with a fixed label set in the
// default registry.
func NewHistogramL(family, labels, help string) *Histogram {
	return Default.NewHistogramL(family, labels, help)
}

// NewHistogramL registers a histogram with a fixed label set.
func (r *Registry) NewHistogramL(family, labels, help string) *Histogram {
	h := &Histogram{meta: meta{family: family, labels: labels, help: help}}
	r.register(h)
	return h
}

// CounterVec is a family of counters keyed by one label value, created
// on demand (per-RPC-method counts). Lookups are a sync.Map load.
type CounterVec struct {
	family, labelKey, help string
	m                      sync.Map // label value -> *Counter
}

// NewCounterVec registers a dynamic counter family.
func NewCounterVec(family, labelKey, help string) *CounterVec {
	return &CounterVec{family: family, labelKey: labelKey, help: help}
}

// With returns the counter for one label value, creating and
// registering it on first use.
func (v *CounterVec) With(value string) *Counter {
	if c, ok := v.m.Load(value); ok {
		return c.(*Counter)
	}
	c := NewCounterL(v.family, fmt.Sprintf("%s=%q", v.labelKey, value), v.help)
	if prev, loaded := v.m.LoadOrStore(value, c); loaded {
		return prev.(*Counter) // lost the race; the duplicate emits 0s
	}
	return c
}

// HistogramVec is a family of histograms keyed by one label value.
type HistogramVec struct {
	family, labelKey, help string
	m                      sync.Map // label value -> *Histogram
}

// NewHistogramVec registers a dynamic histogram family.
func NewHistogramVec(family, labelKey, help string) *HistogramVec {
	return &HistogramVec{family: family, labelKey: labelKey, help: help}
}

// With returns the histogram for one label value.
func (v *HistogramVec) With(value string) *Histogram {
	if h, ok := v.m.Load(value); ok {
		return h.(*Histogram)
	}
	h := NewHistogramL(v.family, fmt.Sprintf("%s=%q", v.labelKey, value), v.help)
	if prev, loaded := v.m.LoadOrStore(value, h); loaded {
		return prev.(*Histogram)
	}
	return h
}

// --- exposition ---

// Expose renders every registered metric in the Prometheus text
// exposition format (stdlib-only). Families are grouped with one
// HELP/TYPE header; histogram buckets are cumulative with `le` labels
// and empty tail buckets elided.
func (r *Registry) Expose() string {
	r.mu.Lock()
	ms := append([]metric(nil), r.metrics...)
	r.mu.Unlock()

	byFamily := make(map[string][]metric)
	var families []string
	for _, m := range ms {
		f := m.metricMeta().family
		if _, ok := byFamily[f]; !ok {
			families = append(families, f)
		}
		byFamily[f] = append(byFamily[f], m)
	}
	sort.Strings(families)

	var sb strings.Builder
	for _, f := range families {
		group := byFamily[f]
		mm := group[0].metricMeta()
		typ := "counter"
		switch group[0].(type) {
		case *Gauge:
			typ = "gauge"
		case *Histogram:
			typ = "histogram"
		}
		if mm.help != "" {
			fmt.Fprintf(&sb, "# HELP %s %s\n", f, mm.help)
		}
		fmt.Fprintf(&sb, "# TYPE %s %s\n", f, typ)
		sort.Slice(group, func(i, j int) bool {
			return group[i].metricMeta().labels < group[j].metricMeta().labels
		})
		for _, m := range group {
			switch v := m.(type) {
			case *Counter:
				fmt.Fprintf(&sb, "%s %d\n", v.series(), v.Value())
			case *Gauge:
				fmt.Fprintf(&sb, "%s %d\n", v.series(), v.Value())
			case *Histogram:
				exposeHistogram(&sb, v)
			}
		}
	}
	return sb.String()
}

func exposeHistogram(sb *strings.Builder, h *Histogram) {
	base := h.family
	sep := "{"
	if h.labels != "" {
		sep = "{" + h.labels + ","
	}
	var cum int64
	for i := 0; i < numBuckets; i++ {
		n := h.buckets[i].Load()
		cum += n
		if n > 0 { // elide buckets that add nothing
			fmt.Fprintf(sb, "%s_bucket%sle=\"%d\"} %d\n", base, sep, bucketBound(i), cum)
		}
	}
	cum += h.buckets[numBuckets].Load()
	fmt.Fprintf(sb, "%s_bucket%sle=%q} %d\n", base, sep, "+Inf", cum)
	suffix := ""
	if h.labels != "" {
		suffix = "{" + h.labels + "}"
	}
	fmt.Fprintf(sb, "%s_sum%s %d\n", base, suffix, h.Sum())
	fmt.Fprintf(sb, "%s_count%s %d\n", base, suffix, h.Count())
}

// --- snapshots (the bench harness diffs these around each workload) ---

// Snapshot is a point-in-time reading of every registered series.
// Histograms contribute three entries: <series>.sum, <series>.count and
// <series>.mean (mean is recomputed by Delta, not subtracted).
type Snapshot map[string]float64

// TakeSnapshot reads the default registry.
func TakeSnapshot() Snapshot { return Default.Snapshot() }

// Snapshot reads every registered metric.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	ms := append([]metric(nil), r.metrics...)
	r.mu.Unlock()
	out := make(Snapshot, len(ms))
	for _, m := range ms {
		name := m.metricMeta().series()
		switch v := m.(type) {
		case *Counter:
			out[name] = float64(v.Value())
		case *Gauge:
			out[name] = float64(v.Value())
		case *Histogram:
			out[name+".sum"] = float64(v.Sum())
			out[name+".count"] = float64(v.Count())
		}
	}
	return out
}

// Delta returns after-minus-before for every series present in after,
// dropping zero deltas and deriving <series>.mean for histograms with a
// nonzero count delta.
func Delta(before, after Snapshot) Snapshot {
	out := make(Snapshot)
	for k, v := range after {
		d := v - before[k]
		if d != 0 {
			out[k] = d
		}
	}
	for k, cnt := range out {
		if strings.HasSuffix(k, ".count") && cnt > 0 {
			base := strings.TrimSuffix(k, ".count")
			out[base+".mean"] = out[base+".sum"] / cnt
		}
	}
	return out
}
