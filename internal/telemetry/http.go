package telemetry

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strings"
	"sync"
	"time"
)

var processStart = time.Now()

// adminReports holds pluggable admin report pages: name → generator.
// Registered reports are served at /debug/<name> as plain text. Higher
// layers (the store's codec report, say) register here so the telemetry
// package need not import them.
var (
	adminReportsMu sync.RWMutex
	adminReports   = map[string]func() string{}
)

// RegisterAdminReport publishes fn's output at /debug/<name> on every
// admin handler. Re-registering a name replaces the previous generator
// (a process hosting several stores reports the most recent one).
func RegisterAdminReport(name string, fn func() string) {
	adminReportsMu.Lock()
	defer adminReportsMu.Unlock()
	adminReports[name] = fn
}

// adminReport resolves a registered report generator (nil if absent).
func adminReport(name string) func() string {
	adminReportsMu.RLock()
	defer adminReportsMu.RUnlock()
	return adminReports[name]
}

// adminStreams holds pluggable streaming endpoints: name → handler,
// served at /stream/<name>. Unlike reports these get the raw
// ResponseWriter so they can flush chunked long-lived responses (the
// temporal subscribe feed).
var (
	adminStreamsMu sync.RWMutex
	adminStreams   = map[string]http.HandlerFunc{}
)

// RegisterAdminStream publishes a streaming handler at /stream/<name>
// on every admin handler. Re-registering a name replaces the handler.
func RegisterAdminStream(name string, h http.HandlerFunc) {
	adminStreamsMu.Lock()
	defer adminStreamsMu.Unlock()
	adminStreams[name] = h
}

// adminStream resolves a registered stream handler (nil if absent).
func adminStream(name string) http.HandlerFunc {
	adminStreamsMu.RLock()
	defer adminStreamsMu.RUnlock()
	return adminStreams[name]
}

// publishOnce guards the expvar publication (expvar panics on duplicate
// names, and tests may build several handlers).
var publishOnce sync.Once

// AdminHandler returns the admin mux:
//
//	/metrics       Prometheus text exposition of the default registry
//	/healthz       JSON liveness probe
//	/debug/vars       expvar JSON (includes zipg metrics + recent spans)
//	/debug/traces     recent query spans, one per line (?n=50)
//	/debug/trace/{id} one assembled distributed span tree, JSON
//	/debug/slow       slow-query ring, failures first (text)
//	/debug/pprof/     the standard net/http/pprof profiles
//	/debug/{name}     any report published via RegisterAdminReport
//	                  (zipg-server registers "codecs": per-shard codec
//	                  and sampling-rate report)
//	/stream/{name}    any streaming handler published via
//	                  RegisterAdminStream (zipg-server registers
//	                  "subscribe": chunked NDJSON change feed)
func AdminHandler() http.Handler {
	publishOnce.Do(func() {
		expvar.Publish("zipg_metrics", expvar.Func(func() any {
			return TakeSnapshot()
		}))
		expvar.Publish("zipg_spans", expvar.Func(func() any {
			spans := RecentSpans(32)
			out := make([]string, len(spans))
			for i := range spans {
				out[i] = spans[i].String()
			}
			return out
		}))
	})
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		fmt.Fprint(w, Default.Expose())
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]any{
			"status":         "ok",
			"uptime_seconds": time.Since(processStart).Seconds(),
			"telemetry":      Enabled(),
		})
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/traces", func(w http.ResponseWriter, r *http.Request) {
		n := 50
		if q := r.URL.Query().Get("n"); q != "" {
			fmt.Sscanf(q, "%d", &n)
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		for _, sp := range RecentSpans(n) {
			fmt.Fprintln(w, sp.String())
		}
	})
	mux.HandleFunc("/debug/trace/", func(w http.ResponseWriter, r *http.Request) {
		raw := strings.TrimPrefix(r.URL.Path, "/debug/trace/")
		if raw == "" {
			// No ID: list recent trace IDs, newest first, as JSON.
			w.Header().Set("Content-Type", "application/json")
			ids := RecentTraces(50)
			out := make([]string, len(ids))
			for i := range ids {
				out[i] = ids[i].String()
			}
			json.NewEncoder(w).Encode(out)
			return
		}
		id, err := ParseTraceID(raw)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		tree := AssembleTrace(id)
		if tree == nil {
			http.Error(w, "trace not found (evicted or never sampled)", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(tree)
	})
	mux.HandleFunc("/debug/slow", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintf(w, "# slow-query ring (threshold %s), failures first\n",
			time.Duration(slowThresholdNs.Load()))
		for _, sp := range SlowSpans() {
			fmt.Fprintln(w, sp.String())
		}
	})
	// Registered reports dispatch dynamically so registration order
	// relative to handler construction doesn't matter. ServeMux prefers
	// longer patterns, so the fixed /debug/ routes above still win.
	mux.HandleFunc("/debug/", func(w http.ResponseWriter, r *http.Request) {
		name := strings.TrimPrefix(r.URL.Path, "/debug/")
		fn := adminReport(name)
		if fn == nil {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, fn())
	})
	mux.HandleFunc("/stream/", func(w http.ResponseWriter, r *http.Request) {
		name := strings.TrimPrefix(r.URL.Path, "/stream/")
		h := adminStream(name)
		if h == nil {
			http.NotFound(w, r)
			return
		}
		h(w, r)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// AdminServer is a running admin listener.
type AdminServer struct {
	Addr string // bound address, e.g. 127.0.0.1:39021
	srv  *http.Server
	ln   net.Listener
}

// ServeAdmin binds the admin endpoints on addr (e.g. "127.0.0.1:0" for
// an ephemeral port) and serves in the background.
func ServeAdmin(addr string) (*AdminServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: admin listen: %w", err)
	}
	srv := &http.Server{Handler: AdminHandler()}
	go srv.Serve(ln)
	return &AdminServer{Addr: ln.Addr().String(), srv: srv, ln: ln}, nil
}

// Close stops the admin listener.
func (a *AdminServer) Close() error { return a.srv.Close() }
