// Distributed tracing: 128-bit trace identities threaded through
// context.Context, a wire-portable TraceContext the rpc layer puts in
// its frame envelope, a bounded per-trace span table, and the assembler
// that stitches local + remote spans into one tree (/debug/trace/{id}).
//
// Sampling semantics: the process that originates a query makes the
// sampling decision (one per DefaultSpanSampling eligible queries);
// every downstream server honors the propagated decision — a sampled
// trace is sampled everywhere, an unsampled trace starts no spans
// anywhere, so a trace is always complete or absent, never partial.
// Failing operations are exempt: error spans are recorded regardless.
package telemetry

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand/v2"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Trace-layer series. Locked by the golden exposition test — renaming
// any of these fails CI.
var (
	mTraceSpans = NewCounter("zipg_trace_spans_total",
		"Spans recorded into the per-trace span table.")
	mTraceErrSpans = NewCounter("zipg_trace_error_spans_total",
		"Spans that ended with an error (always recorded, sampling-exempt).")
	mTraceSlow = NewCounter("zipg_trace_slow_total",
		"Spans admitted to the slow-query ring (slow or failed).")
)

// TraceID is a 128-bit trace identifier, rendered as 32 hex digits.
type TraceID struct {
	Hi, Lo uint64
}

// IsZero reports whether the ID is unset.
func (id TraceID) IsZero() bool { return id.Hi == 0 && id.Lo == 0 }

// String renders the ID as 32 lowercase hex digits.
func (id TraceID) String() string { return fmt.Sprintf("%016x%016x", id.Hi, id.Lo) }

// MarshalJSON renders the ID as a hex string.
func (id TraceID) MarshalJSON() ([]byte, error) { return json.Marshal(id.String()) }

// UnmarshalJSON parses the hex form.
func (id *TraceID) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	parsed, err := ParseTraceID(s)
	if err != nil {
		return err
	}
	*id = parsed
	return nil
}

// ParseTraceID parses the 32-hex-digit form produced by String.
func ParseTraceID(s string) (TraceID, error) {
	s = strings.TrimSpace(strings.ToLower(s))
	if len(s) != 32 {
		return TraceID{}, fmt.Errorf("telemetry: trace ID must be 32 hex digits, got %q", s)
	}
	var id TraceID
	if _, err := fmt.Sscanf(s[:16], "%016x", &id.Hi); err != nil {
		return TraceID{}, fmt.Errorf("telemetry: bad trace ID %q: %w", s, err)
	}
	if _, err := fmt.Sscanf(s[16:], "%016x", &id.Lo); err != nil {
		return TraceID{}, fmt.Errorf("telemetry: bad trace ID %q: %w", s, err)
	}
	return id, nil
}

// newTraceID mints a random non-zero 128-bit ID. math/rand/v2's global
// generator is goroutine-safe and seeded per-process; IDs only need to
// be unique within a deployment's trace-retention window.
func newTraceID() TraceID {
	for {
		id := TraceID{Hi: rand.Uint64(), Lo: rand.Uint64()}
		if !id.IsZero() {
			return id
		}
	}
}

// newSpanID mints a random non-zero span ID (0 means "no parent").
func newSpanID() uint64 {
	for {
		if id := rand.Uint64(); id != 0 {
			return id
		}
	}
}

// TraceContext is the wire form of a trace: what one server must tell
// another for the callee's spans to join the caller's trace and for the
// caller's deadline to be enforced remotely. The rpc frame envelope
// carries exactly these fields.
type TraceContext struct {
	Trace    TraceID
	SpanID   uint64 // caller's span — the parent of every callee span
	Deadline int64  // absolute deadline, Unix nanoseconds (0: none)
	Sampled  bool   // the originator's sampling decision
}

// ctxKey keys telemetry values in a context.Context.
type ctxKey int

const (
	spanKey  ctxKey = iota // *Span: the active span
	traceKey               // TraceContext: an incoming (possibly unsampled) trace
)

// ContextWithSpan returns a context carrying sp as the active span.
func ContextWithSpan(ctx context.Context, sp *Span) context.Context {
	if sp == nil {
		return ctx
	}
	return context.WithValue(ctx, spanKey, sp)
}

// SpanFromContext returns the active span, or nil.
func SpanFromContext(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	sp, _ := ctx.Value(spanKey).(*Span)
	return sp
}

// ContextWithRemoteTrace returns a context carrying an incoming trace
// decision (the rpc server installs this for every request, sampled or
// not, so downstream spans honor the originator's decision instead of
// re-sampling locally).
func ContextWithRemoteTrace(ctx context.Context, tc TraceContext) context.Context {
	return context.WithValue(ctx, traceKey, tc)
}

// TraceFromContext returns the incoming trace decision, if any.
func TraceFromContext(ctx context.Context) (TraceContext, bool) {
	if ctx == nil {
		return TraceContext{}, false
	}
	tc, ok := ctx.Value(traceKey).(TraceContext)
	return tc, ok
}

// PhaseFromContext begins a named phase on the context's active span
// and returns the function that ends it (a shared no-op when untraced).
func PhaseFromContext(ctx context.Context, name string) func() {
	return SpanFromContext(ctx).Phase(name)
}

// StartSpanCtx begins a span for op under ctx and returns it together
// with a derived context carrying it as the active span. The span's
// place in the tree follows from the context:
//
//   - an active span present: child of it (same trace, same server);
//   - an incoming TraceContext present: child of the remote caller's
//     span if the trace is sampled, nil otherwise (the originator's
//     decision is final — no local re-sampling mid-trace);
//   - neither: a fresh root, subject to the local sampling period.
//
// Returns (nil, ctx) while telemetry is disabled or the span is not
// traced; all Span methods are nil-safe.
func StartSpanCtx(ctx context.Context, op string) (*Span, context.Context) {
	if !enabled.Load() {
		return nil, ctx
	}
	if parent := SpanFromContext(ctx); parent != nil {
		sp := &Span{
			Op:       op,
			Trace:    parent.Trace,
			SpanID:   newSpanID(),
			ParentID: parent.SpanID,
			Server:   parent.Server,
			Start:    time.Now(),
			sampled:  true,
		}
		parent.addChild(sp)
		return sp, ContextWithSpan(ctx, sp)
	}
	if tc, ok := TraceFromContext(ctx); ok {
		if !tc.Sampled {
			return nil, ctx
		}
		sp := startRemoteChild(tc, op, -1)
		return sp, ContextWithSpan(ctx, sp)
	}
	if !sampleTick() {
		return nil, ctx
	}
	sp := newRootSpan(op)
	return sp, ContextWithSpan(ctx, sp)
}

// StartRemoteSpan opens a span as the direct child of a propagated
// trace context — what the rpc server does for each traced request.
// Returns nil when the trace is unsampled or telemetry is off. server
// is the callee's cluster ID (-1 unknown).
func StartRemoteSpan(tc TraceContext, op string, server int) *Span {
	if !enabled.Load() || !tc.Sampled {
		return nil
	}
	return startRemoteChild(tc, op, server)
}

// StartServerRootSpan begins a server-local root span for a request
// that arrived without a trace header (a trace-unaware or
// telemetry-disabled client). The server falls back to its own
// sampling decision so the flight recorder and trace table still see
// 1-in-N of legacy traffic instead of none of it.
func StartServerRootSpan(op string, server int) *Span {
	if !enabled.Load() || !sampleTick() {
		return nil
	}
	sp := newRootSpan(op)
	sp.Server = server
	return sp
}

func startRemoteChild(tc TraceContext, op string, server int) *Span {
	return &Span{
		Op:           op,
		Trace:        tc.Trace,
		SpanID:       newSpanID(),
		ParentID:     tc.SpanID,
		Server:       server,
		Start:        time.Now(),
		sampled:      true,
		remoteParent: true,
	}
}

// UntracedContext returns a context under which StartSpanCtx starts no
// spans: the active span is cleared and an unsampled trace decision is
// installed (keeping the current trace's identity when there is one).
// Batch handlers use this for per-item work that is already covered by
// a phase on the batch's own span — without it, sampling-eligible
// per-item reads would each mint a fresh root trace and flood the
// trace table.
func UntracedContext(ctx context.Context) context.Context {
	tc, _ := TraceFromContext(ctx)
	if sp := SpanFromContext(ctx); sp != nil {
		tc = TraceContext{Trace: sp.Trace, SpanID: sp.SpanID}
	}
	tc.Sampled = false
	ctx = context.WithValue(ctx, spanKey, (*Span)(nil))
	return ContextWithRemoteTrace(ctx, tc)
}

// OutgoingTrace derives the wire trace header for an RPC issued under
// ctx with sp as the caller-side span (nil when untraced). The deadline
// comes from the context; the trace identity from the span, falling
// back to the incoming trace so an unsampled decision still propagates.
func OutgoingTrace(ctx context.Context, sp *Span) TraceContext {
	var tc TraceContext
	if sp != nil {
		tc.Trace, tc.SpanID, tc.Sampled = sp.Trace, sp.SpanID, true
	} else if prev, ok := TraceFromContext(ctx); ok {
		tc.Trace, tc.SpanID, tc.Sampled = prev.Trace, prev.SpanID, prev.Sampled
	}
	if ctx != nil {
		if dl, ok := ctx.Deadline(); ok {
			tc.Deadline = dl.UnixNano()
		}
	}
	return tc
}

// --- per-trace span table ---

// maxTraces bounds how many distinct traces are retained (FIFO
// eviction); maxSpansPerTrace bounds one trace's span count so a
// runaway fan-out cannot hold the table hostage.
const (
	maxTraces        = 256
	maxSpansPerTrace = 512
)

type traceEntry struct {
	spans []Span
	ids   map[uint64]bool
}

// traceTable holds finished spans grouped by trace for the assembler.
// In-process loopback clusters share one table across all servers; in a
// multi-process deployment each server's table holds the spans it saw,
// and the aggregator's table holds the full tree (remote spans are
// shipped back in RPC responses and re-recorded under the caller).
type traceTable struct {
	mu    sync.Mutex
	byID  map[TraceID]*traceEntry
	order []TraceID
}

var traces = traceTable{byID: make(map[TraceID]*traceEntry)}

func (t *traceTable) add(sp Span) {
	if sp.Trace.IsZero() || sp.SpanID == 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	e := t.byID[sp.Trace]
	if e == nil {
		if len(t.order) >= maxTraces {
			oldest := t.order[0]
			t.order = t.order[1:]
			delete(t.byID, oldest)
		}
		e = &traceEntry{ids: make(map[uint64]bool)}
		t.byID[sp.Trace] = e
		t.order = append(t.order, sp.Trace)
	}
	// Dedup by span ID: in-process clusters record a server-side span
	// locally AND receive it back in the RPC response.
	if e.ids[sp.SpanID] || len(e.spans) >= maxSpansPerTrace {
		return
	}
	e.ids[sp.SpanID] = true
	e.spans = append(e.spans, sp)
	mTraceSpans.Inc()
}

func (t *traceTable) get(id TraceID) []Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	e := t.byID[id]
	if e == nil {
		return nil
	}
	return append([]Span(nil), e.spans...)
}

func (t *traceTable) recent(n int) []TraceID {
	t.mu.Lock()
	defer t.mu.Unlock()
	if n <= 0 || n > len(t.order) {
		n = len(t.order)
	}
	out := make([]TraceID, 0, n)
	for i := len(t.order) - 1; i >= len(t.order)-n; i-- {
		out = append(out, t.order[i])
	}
	return out
}

func (t *traceTable) reset() {
	t.mu.Lock()
	t.byID = make(map[TraceID]*traceEntry)
	t.order = nil
	t.mu.Unlock()
}

// TraceSpans returns copies of every recorded span of one trace
// (unordered; use AssembleTrace for the tree).
func TraceSpans(id TraceID) []Span { return traces.get(id) }

// RecentTraces returns up to n most recently started trace IDs, newest
// first.
func RecentTraces(n int) []TraceID { return traces.recent(n) }

// --- assembly ---

// TraceNode is one assembled span-tree node, JSON-shaped for
// /debug/trace/{id} and zipg-cli.
type TraceNode struct {
	Span     Span         `json:"span"`
	Children []*TraceNode `json:"children,omitempty"`
}

// TraceTree is the assembled form of one trace.
type TraceTree struct {
	TraceID   TraceID      `json:"trace_id"`
	SpanCount int          `json:"span_count"`
	Roots     []*TraceNode `json:"roots"`
}

// AssembleTrace stitches every recorded span of a trace into a tree:
// spans link to their parents by span ID; spans whose parent was never
// recorded (or whose parent lives on a server we never heard back from)
// become roots. Children sort by start time. Returns nil if the trace
// is unknown.
func AssembleTrace(id TraceID) *TraceTree {
	spans := traces.get(id)
	if len(spans) == 0 {
		return nil
	}
	nodes := make(map[uint64]*TraceNode, len(spans))
	for i := range spans {
		nodes[spans[i].SpanID] = &TraceNode{Span: spans[i]}
	}
	tree := &TraceTree{TraceID: id, SpanCount: len(spans)}
	for _, n := range nodes {
		if parent, ok := nodes[n.Span.ParentID]; ok && parent != n {
			parent.Children = append(parent.Children, n)
		} else {
			tree.Roots = append(tree.Roots, n)
		}
	}
	var sortChildren func(ns []*TraceNode)
	sortChildren = func(ns []*TraceNode) {
		sort.Slice(ns, func(i, j int) bool { return ns[i].Span.Start.Before(ns[j].Span.Start) })
		for _, n := range ns {
			sortChildren(n.Children)
		}
	}
	sortChildren(tree.Roots)
	return tree
}

// --- slow-query ring ---

// DefaultSlowThreshold is the duration beyond which a root (or
// remote-parented) span enters the slow-query ring.
const DefaultSlowThreshold = 20 * time.Millisecond

var slowThresholdNs atomic.Int64

func init() { slowThresholdNs.Store(int64(DefaultSlowThreshold)) }

// SetSlowThreshold sets the slow-query threshold (minimum 0: admit
// every traced root) and returns the previous value.
func SetSlowThreshold(d time.Duration) time.Duration {
	if d < 0 {
		d = 0
	}
	return time.Duration(slowThresholdNs.Swap(int64(d)))
}

const slowRingSize = 64

type slowRing struct {
	mu    sync.Mutex
	spans [slowRingSize]Span
	next  int
	total int64
}

var slowRecorder slowRing

// offer admits a finished span if it failed, or if it is a tree-local
// root (no local parent) that crossed the slow threshold — child spans
// of a slow query are reachable through /debug/trace/{id}, so the ring
// holds one entry per slow operation, not one per span.
func (r *slowRing) offer(sp Span) {
	slow := sp.Duration >= time.Duration(slowThresholdNs.Load()) &&
		(sp.ParentID == 0 || sp.remoteParent)
	if sp.Err == "" && !slow {
		return
	}
	r.mu.Lock()
	r.spans[r.next] = sp
	r.next = (r.next + 1) % slowRingSize
	r.total++
	r.mu.Unlock()
	mTraceSlow.Inc()
}

func (r *slowRing) reset() {
	r.mu.Lock()
	r.spans = [slowRingSize]Span{}
	r.next = 0
	r.total = 0
	r.mu.Unlock()
}

// SlowSpans returns the slow-query ring's contents with failures first,
// then by descending duration — the order /debug/slow renders.
func SlowSpans() []Span {
	slowRecorder.mu.Lock()
	n := int(min64(slowRecorder.total, slowRingSize))
	out := make([]Span, 0, n)
	for i := 1; i <= n; i++ {
		idx := (slowRecorder.next - i + slowRingSize) % slowRingSize
		out = append(out, slowRecorder.spans[idx])
	}
	slowRecorder.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool {
		ei, ej := out[i].Err != "", out[j].Err != ""
		if ei != ej {
			return ei
		}
		return out[i].Duration > out[j].Duration
	})
	return out
}
