package telemetry

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"
)

// withEnabled runs f with telemetry on, restoring the prior state.
func withEnabled(t *testing.T, f func()) {
	t.Helper()
	prev := SetEnabled(true)
	defer SetEnabled(prev)
	f()
}

// TestConcurrentExactTotals hammers a counter, gauge, histogram and the
// span ring from 32 goroutines and asserts exact totals — the -race
// gate for the lock-free paths.
func TestConcurrentExactTotals(t *testing.T) {
	withEnabled(t, func() {
		prev := SetSpanSampling(1) // exact span totals need every query traced
		defer SetSpanSampling(prev)
		ResetSpans()
		r := &Registry{}
		c := r.NewCounterL("t_ops_total", "", "")
		g := r.NewGauge("t_inflight", "")
		h := r.NewHistogramL("t_latency_ns", "", "")

		const goroutines = 32
		const perG = 2000
		var wg sync.WaitGroup
		for i := 0; i < goroutines; i++ {
			wg.Add(1)
			go func(seed int) {
				defer wg.Done()
				for j := 0; j < perG; j++ {
					c.Add(2)
					g.Inc()
					h.Observe(int64(seed*perG + j))
					sp := StartSpan("t.op")
					sp.AddShard(seed)
					sp.AddBytes(1)
					sp.End()
					g.Dec()
				}
			}(i)
		}
		wg.Wait()

		if got, want := c.Value(), int64(goroutines*perG*2); got != want {
			t.Errorf("counter = %d, want %d", got, want)
		}
		if got := g.Value(); got != 0 {
			t.Errorf("gauge = %d, want 0", got)
		}
		if got, want := h.Count(), int64(goroutines*perG); got != want {
			t.Errorf("histogram count = %d, want %d", got, want)
		}
		// Sum of 0..N-1 observations (negative-clamped values absent).
		n := int64(goroutines * perG)
		if got, want := h.Sum(), n*(n-1)/2; got != want {
			t.Errorf("histogram sum = %d, want %d", got, want)
		}
		if got, want := SpanTotal(), int64(goroutines*perG); got != want {
			t.Errorf("span total = %d, want %d", got, want)
		}
		if got := len(RecentSpans(0)); got != spanRingSize {
			t.Errorf("ring holds %d spans, want %d", got, spanRingSize)
		}
	})
}

// TestDisabledRecordsNothing verifies the atomic gate: no counter or
// histogram movement, no spans, zero Timers.
func TestDisabledRecordsNothing(t *testing.T) {
	prev := SetEnabled(false)
	defer SetEnabled(prev)
	ResetSpans()
	r := &Registry{}
	c := r.NewCounterL("t_off_total", "", "")
	h := r.NewHistogramL("t_off_ns", "", "")
	c.Inc()
	h.Observe(100)
	if sp := StartSpan("t.off"); sp != nil {
		t.Error("StartSpan should return nil while disabled")
	}
	if tm := StartTimer(); !tm.start.IsZero() {
		t.Error("StartTimer should return a zero Timer while disabled")
	}
	if c.Value() != 0 || h.Count() != 0 || SpanTotal() != 0 {
		t.Errorf("disabled telemetry recorded: counter=%d hist=%d spans=%d",
			c.Value(), h.Count(), SpanTotal())
	}
	// Nil-safe span methods must not panic.
	var sp *Span
	sp.AddShard(1)
	sp.MarkLogStore()
	sp.SetFanout(1, 2, 3)
	sp.AddBytes(4)
	sp.End()
}

// TestExpositionGolden locks down the Prometheus text format byte for
// byte over a registry with one of each metric kind.
func TestExpositionGolden(t *testing.T) {
	withEnabled(t, func() {
		r := &Registry{}
		reqs := r.NewCounterL("zipg_requests_total", `op="get"`, "Requests served.")
		reqsPut := r.NewCounterL("zipg_requests_total", `op="put"`, "Requests served.")
		inflight := r.NewGauge("zipg_inflight", "In-flight requests.")
		lat := r.NewHistogramL("zipg_latency_ns", "", "Request latency.")

		reqs.Add(5)
		reqsPut.Add(2)
		inflight.Set(3)
		lat.Observe(1)   // bucket le=1
		lat.Observe(3)   // bucket le=4
		lat.Observe(100) // bucket le=128
		lat.Observe(100)

		want := strings.Join([]string{
			`# HELP zipg_inflight In-flight requests.`,
			`# TYPE zipg_inflight gauge`,
			`zipg_inflight 3`,
			`# HELP zipg_latency_ns Request latency.`,
			`# TYPE zipg_latency_ns histogram`,
			`zipg_latency_ns_bucket{le="1"} 1`,
			`zipg_latency_ns_bucket{le="4"} 2`,
			`zipg_latency_ns_bucket{le="128"} 4`,
			`zipg_latency_ns_bucket{le="+Inf"} 4`,
			`zipg_latency_ns_sum 204`,
			`zipg_latency_ns_count 4`,
			`# HELP zipg_requests_total Requests served.`,
			`# TYPE zipg_requests_total counter`,
			`zipg_requests_total{op="get"} 5`,
			`zipg_requests_total{op="put"} 2`,
		}, "\n") + "\n"
		if got := r.Expose(); got != want {
			t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
		}
	})
}

func TestHistogramQuantiles(t *testing.T) {
	withEnabled(t, func() {
		r := &Registry{}
		h := r.NewHistogramL("t_q_ns", "", "")
		// 100 observations: 90 fast (<=64), 10 slow (<=4096).
		for i := 0; i < 90; i++ {
			h.Observe(50)
		}
		for i := 0; i < 10; i++ {
			h.Observe(4000)
		}
		if p := h.P50(); p != 64 {
			t.Errorf("p50 = %d, want 64", p)
		}
		if p := h.P95(); p != 4096 {
			t.Errorf("p95 = %d, want 4096", p)
		}
		if p := h.P99(); p != 4096 {
			t.Errorf("p99 = %d, want 4096", p)
		}
		if m := h.Mean(); m < 440 || m > 450 {
			t.Errorf("mean = %v, want ~445", m)
		}
	})
}

func TestHistogramBucketEdges(t *testing.T) {
	cases := []struct {
		v    int64
		want int
	}{{0, 0}, {1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {1 << 20, 20}, {1<<40 + 1, numBuckets}}
	for _, c := range cases {
		if got := bucketOf(c.v); got != c.want {
			t.Errorf("bucketOf(%d) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestSnapshotDelta(t *testing.T) {
	withEnabled(t, func() {
		r := &Registry{}
		c := r.NewCounterL("t_d_total", "", "")
		h := r.NewHistogramL("t_d_ns", "", "")
		c.Add(3)
		h.Observe(10)
		before := r.Snapshot()
		c.Add(4)
		h.Observe(20)
		h.Observe(40)
		after := r.Snapshot()
		d := Delta(before, after)
		if d["t_d_total"] != 4 {
			t.Errorf("counter delta = %v, want 4", d["t_d_total"])
		}
		if d["t_d_ns.count"] != 2 || d["t_d_ns.sum"] != 60 {
			t.Errorf("hist delta = %v", d)
		}
		if d["t_d_ns.mean"] != 30 {
			t.Errorf("hist mean = %v, want 30", d["t_d_ns.mean"])
		}
	})
}

func TestSpanString(t *testing.T) {
	sp := &Span{
		Op: "store.get_node_props", Duration: 1500 * time.Nanosecond,
		Shards: []int{0, 2}, LogStore: true, NodeFile: true,
		Fanout: 2, Local: 1, Remote: 4, Bytes: 96,
	}
	s := sp.String()
	for _, frag := range []string{"store.get_node_props", "shards=[0 2]", "src=logstore+nodefile", "fanout=2 local=1 remote=4", "bytes=96"} {
		if !strings.Contains(s, frag) {
			t.Errorf("span string %q missing %q", s, frag)
		}
	}
}

// TestSpanSampling verifies the flight recorder records exactly one
// span per sampling period, and that period 1 records everything.
func TestSpanSampling(t *testing.T) {
	withEnabled(t, func() {
		prev := SetSpanSampling(8)
		defer SetSpanSampling(prev)
		ResetSpans()
		spanTick.Store(0)
		for i := 0; i < 80; i++ {
			sp := StartSpan("t.sampled")
			sp.End()
		}
		if got := SpanTotal(); got != 10 {
			t.Errorf("sampled span total = %d, want 10", got)
		}
		SetSpanSampling(1)
		ResetSpans()
		for i := 0; i < 5; i++ {
			sp := StartSpan("t.all")
			if sp == nil {
				t.Fatal("sampling=1 must trace every span")
			}
			sp.End()
		}
		if got := SpanTotal(); got != 5 {
			t.Errorf("unsampled span total = %d, want 5", got)
		}
	})
}

// TestTraceMetricNames locks the trace-layer metric names into the
// default registry's exposition so renames fail CI.
func TestTraceMetricNames(t *testing.T) {
	withEnabled(t, func() {
		expo := Default.Expose()
		for _, want := range []string{
			"zipg_trace_spans_total",
			"zipg_trace_error_spans_total",
			"zipg_trace_slow_total",
		} {
			if !strings.Contains(expo, want) {
				t.Errorf("exposition missing %s", want)
			}
		}
	})
}

// TestErrorSpansBypassSampling verifies a failing query is recorded
// even when the sampling period would have skipped it.
func TestErrorSpansBypassSampling(t *testing.T) {
	withEnabled(t, func() {
		prev := SetSpanSampling(1 << 30) // effectively never sample
		defer SetSpanSampling(prev)
		ResetSpans()
		spanTick.Store(1) // past the period's first tick

		if sp := StartSpan("t.unsampled"); sp != nil {
			t.Fatal("span should have fallen outside the sampling period")
		}
		RecordErrorSpan("t.failed", time.Now(), errTest)
		if got := SpanTotal(); got != 1 {
			t.Fatalf("span total = %d, want 1 (error span must record)", got)
		}
		spans := RecentSpans(1)
		if len(spans) != 1 || spans[0].Err != "boom" {
			t.Fatalf("recorded span = %+v", spans)
		}
		// Failures surface in the slow ring regardless of duration.
		slow := SlowSpans()
		if len(slow) != 1 || slow[0].Err != "boom" {
			t.Fatalf("slow ring = %+v, want the failed span", slow)
		}
	})
}

var errTest = errorString("boom")

type errorString string

func (e errorString) Error() string { return string(e) }

// TestTraceTableAndAssembly builds a three-span tree through the
// context API and checks assembly, ID parsing, and eviction bounds.
func TestTraceTableAndAssembly(t *testing.T) {
	withEnabled(t, func() {
		prev := SetSpanSampling(1)
		defer SetSpanSampling(prev)
		ResetSpans()

		root, ctx := StartSpanCtx(context.Background(), "t.root")
		child, cctx := StartSpanCtx(ctx, "t.child")
		grand, _ := StartSpanCtx(cctx, "t.grand")
		grand.AddPhase("succinct_walk", 5*time.Millisecond)
		grand.End()
		child.End()
		root.End()

		if root.Trace.IsZero() || child.Trace != root.Trace || grand.Trace != root.Trace {
			t.Fatalf("trace IDs diverge: %s %s %s", root.Trace, child.Trace, grand.Trace)
		}
		tree := AssembleTrace(root.Trace)
		if tree == nil || tree.SpanCount != 3 || len(tree.Roots) != 1 {
			t.Fatalf("tree = %+v, want 3 spans under 1 root", tree)
		}
		n := tree.Roots[0]
		if n.Span.Op != "t.root" || len(n.Children) != 1 ||
			n.Children[0].Span.Op != "t.child" || len(n.Children[0].Children) != 1 ||
			n.Children[0].Children[0].Span.Op != "t.grand" {
			t.Fatalf("tree shape wrong: %+v", tree)
		}
		// Round-trip the ID through its string form.
		id, err := ParseTraceID(root.Trace.String())
		if err != nil || id != root.Trace {
			t.Fatalf("ParseTraceID(%s) = %v, %v", root.Trace, id, err)
		}
		// The table is bounded: flooding past maxTraces evicts oldest.
		for i := 0; i < maxTraces+10; i++ {
			sp := StartSpan("t.flood")
			sp.End()
		}
		if AssembleTrace(root.Trace) != nil {
			t.Error("oldest trace should have been evicted")
		}
	})
}

// TestSlowRingThreshold verifies only roots over the threshold enter
// the ring, ordered failures-first.
func TestSlowRingThreshold(t *testing.T) {
	withEnabled(t, func() {
		prev := SetSpanSampling(1)
		defer SetSpanSampling(prev)
		prevTh := SetSlowThreshold(10 * time.Millisecond)
		defer SetSlowThreshold(prevTh)
		ResetSpans()

		fast := StartSpan("t.fast")
		fast.End()
		slow := StartSpan("t.slow")
		slow.Start = slow.Start.Add(-50 * time.Millisecond) // backdate: 50ms "elapsed"
		slow.End()
		failed := StartSpan("t.failed")
		failed.SetError(errTest)
		failed.End()

		got := SlowSpans()
		if len(got) != 2 {
			t.Fatalf("slow ring holds %d spans, want 2 (slow + failed)", len(got))
		}
		if got[0].Op != "t.failed" || got[1].Op != "t.slow" {
			t.Errorf("slow ring order = [%s %s], want failures first", got[0].Op, got[1].Op)
		}
	})
}

func TestVecReuse(t *testing.T) {
	withEnabled(t, func() {
		v := NewCounterVec("t_vec_total", "method", "")
		a1 := v.With("A")
		a2 := v.With("A")
		if a1 != a2 {
			t.Error("CounterVec.With should return the same counter")
		}
		hv := NewHistogramVec("t_vec_ns", "method", "")
		if hv.With("B") != hv.With("B") {
			t.Error("HistogramVec.With should return the same histogram")
		}
	})
}

func BenchmarkCounterParallel(b *testing.B) {
	prev := SetEnabled(true)
	defer SetEnabled(prev)
	r := &Registry{}
	c := r.NewCounterL("b_total", "", "")
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
	if c.Value() != int64(b.N) {
		b.Fatalf("count %d != N %d", c.Value(), b.N)
	}
}

func BenchmarkCounterDisabled(b *testing.B) {
	prev := SetEnabled(false)
	defer SetEnabled(prev)
	r := &Registry{}
	c := r.NewCounterL("b_off_total", "", "")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	prev := SetEnabled(true)
	defer SetEnabled(prev)
	r := &Registry{}
	h := r.NewHistogramL("b_ns", "", "")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i))
	}
}
