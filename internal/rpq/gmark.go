package rpq

import (
	"math/rand"
	"strings"
)

// QueryClass labels the gMark query shapes (Appendix B.1: "linear path
// traversals, branched traversals and highly recursive queries").
type QueryClass int

// The three query classes.
const (
	Linear QueryClass = iota
	Branched
	Recursive
)

// String names the class.
func (c QueryClass) String() string {
	return [...]string{"linear", "branched", "recursive"}[c]
}

// Query is one generated path query.
type Query struct {
	ID    int
	Class QueryClass
	Expr  *Expr
}

// GenerateQueries produces n queries in the gMark style over an
// alphabet of numLabels edge types (the paper's workload uses gMark's
// LDBC Social Network Benchmark schema and generates 50 queries of
// "widely varying nature": linear, branched, and recursive).
func GenerateQueries(seed int64, n, numLabels int) []Query {
	rng := rand.New(rand.NewSource(seed))
	if numLabels < 2 {
		numLabels = 2
	}
	if numLabels > 26 {
		numLabels = 26
	}
	label := func() string { return string(rune('a' + rng.Intn(numLabels))) }
	out := make([]Query, n)
	for i := range out {
		var text string
		var class QueryClass
		switch i % 5 {
		case 0, 1: // 40% linear: 2-4 concatenated labels
			var sb strings.Builder
			for k := 0; k < 2+rng.Intn(3); k++ {
				sb.WriteString(label())
			}
			text, class = sb.String(), Linear
		case 2, 3: // 40% branched: unions inside a chain
			text = "(" + label() + "|" + label() + ")" + label()
			if rng.Intn(2) == 0 {
				text += "(" + label() + "|" + label() + ")"
			}
			class = Branched
		default: // 20% recursive: closures
			switch rng.Intn(3) {
			case 0:
				text = label() + "*" + label()
			case 1:
				text = "(" + label() + label() + ")+"
			default:
				text = label() + "(" + label() + "|" + label() + ")*"
			}
			class = Recursive
		}
		out[i] = Query{ID: i + 1, Class: class, Expr: MustParse(text)}
	}
	return out
}
