package rpq

import (
	"sort"
	"testing"

	"zipg"
	"zipg/internal/graphapi"
	"zipg/internal/refgraph"
)

// chainGraph builds 0 -a-> 1 -b-> 2 -a-> 3 -a-> 4 plus 1 -c-> 5.
// Labels: a=0, b=1, c=2.
func chainGraph(t testing.TB) (graphapi.Store, []graphapi.NodeID) {
	t.Helper()
	var nodes []zipg.Node
	for i := 0; i < 6; i++ {
		nodes = append(nodes, zipg.Node{ID: int64(i)})
	}
	edges := []zipg.Edge{
		{Src: 0, Dst: 1, Type: 0, Timestamp: 1},
		{Src: 1, Dst: 2, Type: 1, Timestamp: 2},
		{Src: 2, Dst: 3, Type: 0, Timestamp: 3},
		{Src: 3, Dst: 4, Type: 0, Timestamp: 4},
		{Src: 1, Dst: 5, Type: 2, Timestamp: 5},
	}
	g, err := zipg.Compress(zipg.GraphData{Nodes: nodes, Edges: edges}, zipg.Options{})
	if err != nil {
		t.Fatal(err)
	}
	all := make([]graphapi.NodeID, 6)
	for i := range all {
		all[i] = int64(i)
	}
	return g, all
}

func pairsEqual(t *testing.T, got []Pair, want []Pair) {
	t.Helper()
	key := func(p Pair) [2]int64 { return [2]int64{p.Start, p.End} }
	gm := map[[2]int64]bool{}
	for _, p := range got {
		gm[key(p)] = true
	}
	if len(gm) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for _, p := range want {
		if !gm[key(p)] {
			t.Fatalf("missing pair %v in %v", p, got)
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{"", "(", "a(", "a)", "A", "a||b", "*", "a**b("} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) should fail", bad)
		}
	}
}

func TestParseValid(t *testing.T) {
	for _, good := range []string{"a", "ab", "a|b", "(ab)*c", "a+b?", "((a|b)|c)d", "a**"} {
		if _, err := Parse(good); err != nil {
			t.Errorf("Parse(%q): %v", good, err)
		}
	}
}

func TestLinearQuery(t *testing.T) {
	g, all := chainGraph(t)
	// "ab": paths 0-a->1-b->2.
	got := MustParse("ab").Eval(g, all, Limits{})
	pairsEqual(t, got, []Pair{{0, 2}})
	// "aa": 2-a->3-a->4.
	got = MustParse("aa").Eval(g, all, Limits{})
	pairsEqual(t, got, []Pair{{2, 4}})
}

func TestUnionQuery(t *testing.T) {
	g, all := chainGraph(t)
	// "b|c" from node 1 reaches 2 and 5.
	got := MustParse("b|c").Eval(g, all, Limits{})
	pairsEqual(t, got, []Pair{{1, 2}, {1, 5}})
}

func TestStarQuery(t *testing.T) {
	g, all := chainGraph(t)
	// "a*b": any number of a's then b. From 0: a then b -> 2. From 1: b -> 2.
	got := MustParse("a*b").Eval(g, all, Limits{})
	pairsEqual(t, got, []Pair{{0, 2}, {1, 2}})
	// "a+": one or more a-steps.
	got = MustParse("a+").Eval(g, all, Limits{})
	pairsEqual(t, got, []Pair{{0, 1}, {2, 3}, {2, 4}, {3, 4}})
}

func TestOptionalQuery(t *testing.T) {
	g, all := chainGraph(t)
	// "a?b": b alone or a then b.
	got := MustParse("a?b").Eval(g, all, Limits{})
	pairsEqual(t, got, []Pair{{0, 2}, {1, 2}})
}

func TestCycleTermination(t *testing.T) {
	// A cycle with a closure must terminate (transitive closure).
	nodes := []zipg.Node{{ID: 0}, {ID: 1}, {ID: 2}}
	edges := []zipg.Edge{
		{Src: 0, Dst: 1, Type: 0, Timestamp: 1},
		{Src: 1, Dst: 2, Type: 0, Timestamp: 2},
		{Src: 2, Dst: 0, Type: 0, Timestamp: 3},
	}
	g, err := zipg.Compress(zipg.GraphData{Nodes: nodes, Edges: edges}, zipg.Options{})
	if err != nil {
		t.Fatal(err)
	}
	got := MustParse("a+").Eval(g, []graphapi.NodeID{0, 1, 2}, Limits{})
	// Every ordered pair including self-loops via the cycle.
	if len(got) != 9 {
		t.Fatalf("a+ on 3-cycle = %d pairs (%v), want 9", len(got), got)
	}
}

func TestMaxResultsLimit(t *testing.T) {
	g, all := chainGraph(t)
	got := MustParse("a").Eval(g, all, Limits{MaxResults: 2})
	if len(got) != 2 {
		t.Fatalf("limit ignored: %d results", len(got))
	}
}

func TestEvalAgreesAcrossStores(t *testing.T) {
	// The same queries over zipg and the reference store agree.
	var nodes []zipg.Node
	for i := 0; i < 30; i++ {
		nodes = append(nodes, zipg.Node{ID: int64(i)})
	}
	var edges []zipg.Edge
	for i := 0; i < 120; i++ {
		edges = append(edges, zipg.Edge{
			Src: int64(i % 30), Dst: int64((i * 7) % 30),
			Type: int64(i % 3), Timestamp: int64(i),
		})
	}
	g, err := zipg.Compress(zipg.GraphData{Nodes: nodes, Edges: edges}, zipg.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var gnodes, genodes []graphapi.Node
	_ = genodes
	for _, n := range nodes {
		gnodes = append(gnodes, n)
	}
	ref := refgraph.New(gnodes, edges)
	all := make([]graphapi.NodeID, 30)
	for i := range all {
		all[i] = int64(i)
	}
	for _, q := range GenerateQueries(77, 20, 3) {
		a := q.Expr.Eval(g, all, Limits{})
		b := q.Expr.Eval(ref, all, Limits{})
		sortPairs(a)
		sortPairs(b)
		if len(a) != len(b) {
			t.Fatalf("q%d %q: zipg %d pairs, ref %d", q.ID, q.Expr.Text, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("q%d %q: pair %d differs: %v vs %v", q.ID, q.Expr.Text, i, a[i], b[i])
			}
		}
	}
}

func sortPairs(ps []Pair) {
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].Start != ps[j].Start {
			return ps[i].Start < ps[j].Start
		}
		return ps[i].End < ps[j].End
	})
}

func TestGenerateQueries(t *testing.T) {
	qs := GenerateQueries(1, 50, 5)
	if len(qs) != 50 {
		t.Fatalf("generated %d queries", len(qs))
	}
	classes := map[QueryClass]int{}
	for _, q := range qs {
		classes[q.Class]++
		if q.Class == Recursive && !q.Expr.IsRecursive() {
			t.Errorf("q%d marked recursive but %q has no closure", q.ID, q.Expr.Text)
		}
		if len(q.Expr.Labels()) == 0 {
			t.Errorf("q%d has no labels", q.ID)
		}
	}
	if classes[Linear] != 20 || classes[Branched] != 20 || classes[Recursive] != 10 {
		t.Errorf("class distribution = %v", classes)
	}
	// Determinism.
	qs2 := GenerateQueries(1, 50, 5)
	for i := range qs {
		if qs[i].Expr.Text != qs2[i].Expr.Text {
			t.Fatal("query generation not deterministic")
		}
	}
}
