package store

import (
	"bytes"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"zipg/internal/bitutil"
	"zipg/internal/graphapi"
	"zipg/internal/layout"
	"zipg/internal/telemetry"
)

// buildFragmentedStore builds a store under the given α and codec
// policy, then fragments it: appends force LogStore rollovers, updates
// create fanned pointers, and node plus edge deletes leave lazy marks.
// The mutation sequence is deterministic so every (α, policy) store
// holds the same logical graph.
func buildFragmentedStore(t *testing.T, alpha int, policy bitutil.CodecPolicy) *Store {
	t.Helper()
	ns, es := testSchemas(t)
	nodes, edges := testGraph(60, 240, 3)
	s, err := New(nodes, edges, ns, es, Config{
		NumShards:         3,
		SamplingRate:      alpha,
		LogStoreThreshold: 2 << 10, // tiny: force rollovers
		Codec:             policy,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		id := int64(i * 2)
		if err := s.AppendNode(id, map[string]string{
			"age": fmt.Sprint(90 + i), "location": "Madison", "name": fmt.Sprintf("upd%d", i),
		}); err != nil {
			t.Fatal(err)
		}
		if err := s.AppendEdge(layout.Edge{
			Src: id, Dst: int64((i * 5) % 60), Type: 1, Timestamp: int64(20000 + i),
			Props: map[string]string{"weight": fmt.Sprint(i)},
		}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 6; i++ {
		s.DeleteNode(int64(i*7 + 1))
	}
	for _, e := range edges[:20] {
		s.DeleteEdges(e.Src, e.Type, e.Dst)
	}
	if s.Rollovers() == 0 {
		t.Fatal("test store failed to fragment (no rollovers)")
	}
	return s
}

// storeAnswers captures one store's answers to a fixed query battery.
type storeAnswers struct {
	props     [][]string
	oks       []bool
	neighbors [][]layout.NodeID
	finds     [][]layout.NodeID
	edges     []int
}

func queryBattery(t *testing.T, s *Store) storeAnswers {
	t.Helper()
	var a storeAnswers
	for id := int64(0); id < 60; id++ {
		vals, ok := s.GetNodeProps(id, nil)
		a.props = append(a.props, vals)
		a.oks = append(a.oks, ok)
		a.neighbors = append(a.neighbors, s.NeighborIDs(id, graphapi.WildcardType, nil))
	}
	for _, city := range []string{"Ithaca", "Berkeley", "Madison", "nowhere"} {
		a.finds = append(a.finds, s.FindNodes(map[string]string{"location": city}))
	}
	for w := 0; w < 5; w++ {
		a.edges = append(a.edges, len(s.FindEdges(map[string]string{"weight": fmt.Sprint(w)})))
	}
	return a
}

// TestCodecAlphaDifferential is the store-level differential suite: a
// fragmented store (rollovers, fanned updates, node and edge deletes)
// must answer an identical query battery under every α ∈ {4, 8, 32} ×
// codec policy, and again (against a post-compaction reference, since
// compaction legitimately changes what lazy deletion marks hide) after
// Compact. The first build is the reference — codecs and sampling
// never change answers.
func TestCodecAlphaDifferential(t *testing.T) {
	policies := []bitutil.CodecPolicy{
		bitutil.CodecForceLegacy, bitutil.CodecAuto,
		bitutil.CodecForceSimple8b, bitutil.CodecForceVarint,
	}
	var ref, refAfter *storeAnswers
	for _, alpha := range []int{4, 8, 32} {
		for _, policy := range policies {
			s := buildFragmentedStore(t, alpha, policy)
			got := queryBattery(t, s)
			if ref == nil {
				ref = &got
			} else if !reflect.DeepEqual(*ref, got) {
				t.Fatalf("alpha=%d policy=%v: answers diverged from reference", alpha, policy)
			}
			if err := s.Compact(); err != nil {
				t.Fatal(err)
			}
			after := queryBattery(t, s)
			if refAfter == nil {
				refAfter = &after
			} else if !reflect.DeepEqual(*refAfter, after) {
				t.Fatalf("alpha=%d policy=%v: answers diverged after compaction", alpha, policy)
			}
		}
	}
}

// TestCodecPersistDifferential: a fragmented codec store survives
// Save/Load with identical answers.
func TestCodecPersistDifferential(t *testing.T) {
	s := buildFragmentedStore(t, 8, bitutil.CodecAuto)
	want := queryBattery(t, s)
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := queryBattery(t, back); !reflect.DeepEqual(want, got) {
		t.Fatal("answers diverged across Save/Load")
	}
}

// TestAutoTuneAlphaLadder drives a skewed read mix at a multi-shard
// store and checks Compact's α ladder: the hottest partition must end
// up sampling denser (smaller α) than base, a cold partition sparser
// (larger α), and answers must be unchanged throughout.
func TestAutoTuneAlphaLadder(t *testing.T) {
	ns, es := testSchemas(t)
	nodes, edges := testGraph(64, 200, 5)
	const numShards, base = 4, 32
	s, err := New(nodes, edges, ns, es, Config{
		NumShards:     numShards,
		SamplingRate:  base,
		AutoTuneAlpha: true,
		Codec:         bitutil.CodecAuto,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Partition the IDs the same way the store does, then read partition
	// 0's nodes heavily (a Zipf-like hot set) and leave one partition
	// completely cold.
	byPart := make([][]int64, numShards)
	for id := int64(0); id < 64; id++ {
		p := int(layout.IDHash(id) % numShards)
		byPart[p] = append(byPart[p], id)
	}
	for i := 0; i < 400; i++ {
		for _, id := range byPart[0] {
			s.GetNodeProps(id, nil)
		}
	}
	for _, id := range byPart[1] {
		s.GetNodeProps(id, nil) // one touch: well under fair share
	}

	reads := s.ShardReads()
	if reads[0] == 0 {
		t.Fatal("hot partition recorded no reads")
	}
	want := queryBattery(t, s)
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	alphas := s.TunedAlphas()
	if len(alphas) != numShards {
		t.Fatalf("TunedAlphas = %v", alphas)
	}
	if alphas[0] >= base {
		t.Errorf("hot partition alpha = %d, want denser than base %d", alphas[0], base)
	}
	for p := 1; p < numShards; p++ {
		if alphas[p] <= base && p != 0 {
			t.Errorf("cold partition %d alpha = %d, want sparser than base %d", p, alphas[p], base)
		}
	}
	// The rebuilt shards really carry the tuned rates, and read
	// counters reset for the next cycle.
	for i, fc := range s.CodecReport()[:numShards] {
		if fc.Alpha != alphas[i] {
			t.Errorf("shard %d built with alpha %d, tuned %d", i, fc.Alpha, alphas[i])
		}
	}
	for p, r := range s.ShardReads() {
		if r != 0 {
			t.Errorf("partition %d read counter = %d after compact, want 0", p, r)
		}
	}
	if got := queryBattery(t, s); !reflect.DeepEqual(want, got) {
		t.Fatal("answers changed across auto-tuned compaction")
	}
	// Without auto-tuning the same skew leaves every partition at base.
	s2, err := New(nodes, edges, ns, es, Config{NumShards: numShards, SamplingRate: base})
	if err != nil {
		t.Fatal(err)
	}
	if err := s2.Compact(); err != nil {
		t.Fatal(err)
	}
	for p, a := range s2.TunedAlphas() {
		if a != base {
			t.Errorf("untuned partition %d alpha = %d, want %d", p, a, base)
		}
	}
}

// TestCodecMetricNames locks the codec- and α-tuning metric names into
// the default registry's exposition so renames fail CI (the same lock
// style as the telemetry package's TestTraceMetricNames). The store
// package links in the succinct codec counters, so both families are
// registered by init.
func TestCodecMetricNames(t *testing.T) {
	prev := telemetry.SetEnabled(true)
	defer telemetry.SetEnabled(prev)
	expo := telemetry.Default.Expose()
	for _, want := range []string{
		"zipg_codec_regions_total",
		"zipg_codec_bytes_total",
		"zipg_codec_trial_ns_total",
		"zipg_alpha_tuned_total",
		`codec="legacy"`,
		`codec="simple8b"`,
		`codec="varint"`,
		`dir="denser"`,
		`dir="sparser"`,
	} {
		if !strings.Contains(expo, want) {
			t.Errorf("exposition missing %s", want)
		}
	}
}
