package store

import (
	"sync"

	"zipg/internal/logstore"
	"zipg/internal/telemetry"
)

// The group-committed write path.
//
// Every append serializing through s.mu individually is the seed
// bottleneck this file replaces: under W concurrent writers the store
// lock is acquired W times per W records, and each acquisition also
// contends with the read paths' RLocks. Group commit amortizes that.
// A writer enqueues its prepared put on its partition's queue and then
// either becomes the *leader* — the one writer holding the commit
// token — or waits for its put's done signal. The leader drains every
// partition queue, publishes the whole batch under ONE s.mu
// acquisition (LogStore puts, update pointers, deletion-mark clears,
// at most one rollover check), signals the batch's waiters, and
// releases the token. Under contention, batches grow with the arrival
// rate and the per-record lock cost approaches zero; a lone writer
// degenerates to leader-of-one with a single extra channel operation.
//
// The commit itself is infallible: every fallible step (schema
// validation, size accounting) ran in logstore.Prepare*Put before the
// put was enqueued, so a leader never has to report another writer's
// error — mirroring logstore.ApplyPuts's contract.

// pendingWrite is one enqueued put plus its completion signal. The
// done channel has capacity 1 and is signalled by send (not close) so
// the value can be pooled and reused across writes.
type pendingWrite struct {
	put  logstore.Put
	part int
	done chan struct{}
}

var pendingPool = sync.Pool{
	New: func() any { return &pendingWrite{done: make(chan struct{}, 1)} },
}

// writeCoordinator is the store's group-commit state: per-partition
// pending queues and the leader-election token.
type writeCoordinator struct {
	qmu     sync.Mutex
	queues  [][]*pendingWrite
	pending int
	// token is the leader election: capacity 1, a successful send makes
	// the sender the leader. Buffered so election never blocks on a
	// receiver.
	token chan struct{}
}

func (w *writeCoordinator) init(nparts int) {
	if nparts <= 0 {
		nparts = 1
	}
	w.queues = make([][]*pendingWrite, nparts)
	w.token = make(chan struct{}, 1)
}

// submitWrite publishes one prepared put through the group committer
// and returns once the put is visible to readers.
func (s *Store) submitWrite(part int, put logstore.Put) error {
	w := &s.wc
	pw := pendingPool.Get().(*pendingWrite)
	pw.put = put
	pw.part = part

	w.qmu.Lock()
	w.queues[part] = append(w.queues[part], pw)
	w.pending++
	w.qmu.Unlock()

	var stall telemetry.Timer
	timed := telemetry.Enabled()
	if timed {
		stall = telemetry.StartTimer()
	}
	for {
		select {
		case <-pw.done:
			// A leader committed our put.
			if timed {
				stall.ObserveInto(mWriteStallNs)
			}
			pendingPool.Put(pw)
			return nil
		case w.token <- struct{}{}:
			// We are the leader. Our own put may already have been
			// committed by the previous leader — commitGroup handles
			// both cases; afterwards our done signal is guaranteed
			// pending if it wasn't consumed above.
			err := s.commitGroup()
			<-w.token
			<-pw.done
			if timed {
				stall.ObserveInto(mWriteStallNs)
			}
			pendingPool.Put(pw)
			return err
		}
	}
}

// commitGroup drains every partition queue and publishes the batch
// under one store-lock acquisition. Only the token holder calls this.
func (s *Store) commitGroup() error {
	w := &s.wc
	w.qmu.Lock()
	if w.pending == 0 {
		w.qmu.Unlock()
		return nil
	}
	batch := make([]*pendingWrite, 0, w.pending)
	for p := range w.queues {
		batch = append(batch, w.queues[p]...)
		w.queues[p] = w.queues[p][:0]
	}
	w.pending = 0
	w.qmu.Unlock()

	puts := make([]logstore.Put, len(batch))
	for i, pw := range batch {
		puts[i] = pw.put
	}

	s.mu.Lock()
	// One LogStore lock acquisition for the whole batch.
	s.log.ApplyPuts(puts)
	gen := s.curGenLocked()
	for i := range puts {
		p := &puts[i]
		if p.IsNode {
			delete(s.deletedNodes, p.NodeID)
			s.addPtrLocked(p.NodeID, gen)
		} else {
			s.addPtrLocked(p.Edge.Src, gen)
		}
	}
	// One event per record, in batch order, published inside the same
	// critical section that made the batch visible: subscribers see the
	// commit's records contiguously and in order.
	s.emitLocked(s.eventsForPuts(puts))
	// At most one rollover check per batch instead of one per record:
	// the threshold overshoot is bounded by one batch's bytes.
	err := s.maybeRolloverLocked()
	s.mu.Unlock()

	for _, pw := range batch {
		pw.done <- struct{}{}
	}
	mGroupBatches.Inc()
	mGroupRecords.Add(int64(len(batch)))
	return err
}
