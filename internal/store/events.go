package store

import (
	"sync"
	"time"

	"zipg/internal/layout"
	"zipg/internal/logstore"
)

// Change events.
//
// Every logical mutation the store accepts — node puts, edge appends,
// node deletes, edge deletes — is published as an Event carrying a
// monotone per-partition sequence number. Events are assigned and
// dispatched inside the same store-lock critical section that makes the
// mutation visible to readers (the group commit's single s.mu
// acquisition publishes one event per record in batch order), so the
// event stream per partition is a total order consistent with what any
// reader can observe: a subscriber that sees Seq n has seen exactly the
// mutations 1..n of that partition, and gaps are provable by simple
// contiguity.
//
// A bounded per-partition tail ring retains recent events so a
// subscriber that fell behind can Catchup(sinceSeq) and receive exactly
// the events a live tail would have delivered — including delete
// tombstones, which flow through the same path. Rollovers, background
// compression and compactions are internal reorganizations and emit
// nothing: the logical graph is unchanged.

// EventKind classifies one change event.
type EventKind uint8

const (
	// EvNodePut is a node insert or property replacement.
	EvNodePut EventKind = iota
	// EvEdgeAdd is an edge append.
	EvEdgeAdd
	// EvNodeDel is a node delete tombstone.
	EvNodeDel
	// EvEdgeDel is an edge delete tombstone: every (Src, Type, Dst)
	// edge existing at publish time is logically removed.
	EvEdgeDel
)

// String names the kind for logs and wire encodings.
func (k EventKind) String() string {
	switch k {
	case EvNodePut:
		return "node_put"
	case EvEdgeAdd:
		return "edge_add"
	case EvNodeDel:
		return "node_del"
	case EvEdgeDel:
		return "edge_del"
	}
	return "unknown"
}

// Event is one published change. Seq is monotone and contiguous per
// partition, starting at 1. At is the publish wall-clock (UnixNano),
// stamped once per commit batch — subscriber delivery lag is measured
// against it.
type Event struct {
	Seq  uint64
	Part int
	Kind EventKind
	Node layout.NodeID // EvNodePut/EvNodeDel target; EvEdgeAdd/EvEdgeDel: the Src
	// Edge carries the full edge for EvEdgeAdd; for EvEdgeDel only
	// Src/Type/Dst are meaningful.
	Edge  layout.Edge
	Props map[string]string // EvNodePut property list (shared; treat as read-only)
	At    int64
}

// DefaultEventTailLen is the per-partition event-tail capacity when
// Config.EventTailLen is zero.
const DefaultEventTailLen = 8192

// EventObserver receives every published event batch, synchronously,
// inside the store's commit critical section. Implementations must be
// fast and non-blocking (bounded ring pushes); the slice is only valid
// for the duration of the call.
type EventObserver func(evs []Event)

// eventPartition is one partition's sequence counter plus its bounded
// tail ring.
type eventPartition struct {
	nextSeq uint64
	ring    []Event
	start   int // index of the oldest retained event
	n       int
}

// eventLog is the store's event state. All mutation happens under the
// store's write lock (s.mu); reads take the read lock.
type eventLog struct {
	parts []eventPartition
	cap   int
	// observers is append-only; guarded by obsMu for registration,
	// snapshotted under it for dispatch (dispatch itself runs under
	// s.mu, serializing deliveries).
	obsMu     sync.RWMutex
	observers []EventObserver
}

func (el *eventLog) init(nparts, tailCap int) {
	if nparts <= 0 {
		nparts = 1
	}
	if tailCap <= 0 {
		tailCap = DefaultEventTailLen
	}
	el.parts = make([]eventPartition, nparts)
	el.cap = tailCap
}

// Observe registers an observer for every future event batch.
func (s *Store) Observe(fn EventObserver) {
	s.events.obsMu.Lock()
	s.events.observers = append(s.events.observers, fn)
	s.events.obsMu.Unlock()
}

// emitLocked assigns sequence numbers and publish timestamps to evs
// (whose Part must be set), appends them to the per-partition tails,
// and dispatches them to observers. Callers hold s.mu; the events
// become visible in exactly the order the mutations did.
func (s *Store) emitLocked(evs []Event) {
	if len(evs) == 0 {
		return
	}
	now := time.Now().UnixNano()
	el := &s.events
	for i := range evs {
		ev := &evs[i]
		p := &el.parts[ev.Part]
		p.nextSeq++
		ev.Seq = p.nextSeq
		ev.At = now
		if len(p.ring) < el.cap {
			p.ring = append(p.ring, *ev)
			p.n++
			continue
		}
		// Ring full: overwrite the oldest (drop-oldest retention).
		p.ring[p.start] = *ev
		p.start = (p.start + 1) % el.cap
	}
	el.obsMu.RLock()
	obs := el.observers
	el.obsMu.RUnlock()
	for _, fn := range obs {
		fn(evs)
	}
}

// NumPartitions returns the store's partition count — the index space
// of Event.Part and the per-partition sequence counters.
func (s *Store) NumPartitions() int { return s.cfg.NumShards }

// PartitionOf returns the partition an event about id lands in.
func (s *Store) PartitionOf(id layout.NodeID) int { return s.partitionOf(id) }

// EventsSince returns the retained events of partition part with
// Seq > sinceSeq, oldest first. The second result is false when the
// tail no longer reaches back to sinceSeq (events were evicted — the
// subscriber must resynchronize by other means); sinceSeq = 0 replays
// the whole retained tail and reports whether it is complete from the
// beginning.
func (s *Store) EventsSince(part int, sinceSeq uint64) ([]Event, bool) {
	if part < 0 || part >= len(s.events.parts) {
		return nil, false
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	p := &s.events.parts[part]
	if p.n == 0 {
		return nil, p.nextSeq == sinceSeq
	}
	oldest := p.ring[p.start].Seq
	if sinceSeq+1 < oldest {
		return nil, false
	}
	out := make([]Event, 0, p.n)
	for i := 0; i < p.n; i++ {
		ev := p.ring[(p.start+i)%len(p.ring)]
		if ev.Seq > sinceSeq {
			out = append(out, ev)
		}
	}
	return out, true
}

// LastSeq returns partition part's most recently assigned sequence
// number (0 before any event).
func (s *Store) LastSeq(part int) uint64 {
	if part < 0 || part >= len(s.events.parts) {
		return 0
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.events.parts[part].nextSeq
}

// eventsForPuts converts one commit batch into events, in batch order.
func (s *Store) eventsForPuts(puts []logstore.Put) []Event {
	evs := make([]Event, len(puts))
	for i := range puts {
		p := &puts[i]
		if p.IsNode {
			evs[i] = Event{Part: s.partitionOf(p.NodeID), Kind: EvNodePut, Node: p.NodeID, Props: p.NodeProps}
		} else {
			evs[i] = Event{Part: s.partitionOf(p.Edge.Src), Kind: EvEdgeAdd, Node: p.Edge.Src, Edge: p.Edge}
		}
	}
	return evs
}
