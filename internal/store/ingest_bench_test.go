package store

import (
	"sync/atomic"
	"testing"

	"zipg/internal/layout"
)

// benchmarkIngest measures concurrent append throughput. The two
// variants isolate the group committer: identical work, with the
// write path either batching via the leader protocol (default) or
// taking the store lock per record (the seed behavior).
func benchmarkIngest(b *testing.B, disableGroupCommit bool) {
	ns, es := testSchemas(b)
	nodes, edges := testGraph(100, 400, 11)
	s, err := New(nodes, edges, ns, es, Config{
		NumShards: 4, SamplingRate: 8, LogStoreThreshold: 1 << 30,
		DisableGroupCommit: disableGroupCommit,
	})
	if err != nil {
		b.Fatal(err)
	}
	_ = edges
	var seq atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		// Each goroutine writes to its own source node so record growth
		// is spread across partitions, like distinct clients would.
		src := 10000 + seq.Add(1)
		i := int64(0)
		for pb.Next() {
			i++
			if err := s.AppendEdge(layout.Edge{Src: src, Dst: 20000 + i, Type: 1, Timestamp: i}); err != nil {
				b.Error(err)
				return
			}
		}
	})
}

func BenchmarkIngestGroupCommit(b *testing.B) { benchmarkIngest(b, false) }
func BenchmarkIngestPerRecord(b *testing.B)   { benchmarkIngest(b, true) }
