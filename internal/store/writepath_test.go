package store

import (
	"bytes"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"zipg/internal/bitutil"
	"zipg/internal/layout"
	"zipg/internal/telemetry"
)

// TestGroupCommitEquivalence drives identical write mixes through the
// group-committed path and the per-record-lock path and checks the
// stores answer identically: group commit is a concurrency-control
// change, not a semantics change.
func TestGroupCommitEquivalence(t *testing.T) {
	run := func(disable bool) *Store {
		ns, es := testSchemas(t)
		nodes, edges := testGraph(30, 120, 2)
		s, err := New(nodes, edges, ns, es, Config{
			NumShards: 3, SamplingRate: 8, LogStoreThreshold: 3000,
			DisableGroupCommit: disable,
		})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 80; i++ {
			if err := s.AppendEdge(layout.Edge{Src: int64(i % 7), Dst: int64(400 + i), Type: 1, Timestamp: int64(50000 + i)}); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.AppendNode(5, map[string]string{"name": "rewritten"}); err != nil {
			t.Fatal(err)
		}
		s.DeleteEdges(edges[3].Src, edges[3].Type, edges[3].Dst)
		s.DeleteNode(11)
		return s
	}
	grouped, perRecord := run(false), run(true)
	for id := int64(0); id < 30; id++ {
		gv, gok := grouped.GetNodeProps(id, nil)
		pv, pok := perRecord.GetNodeProps(id, nil)
		if gok != pok || !reflect.DeepEqual(gv, pv) {
			t.Fatalf("node %d: grouped (%v,%v) != per-record (%v,%v)", id, gv, gok, pv, pok)
		}
	}
	for src := int64(0); src < 10; src++ {
		for ty := int64(0); ty < 3; ty++ {
			gn := grouped.NeighborIDs(src, ty, nil)
			pn := perRecord.NeighborIDs(src, ty, nil)
			if !reflect.DeepEqual(gn, pn) {
				t.Fatalf("neighbors(%d,%d): grouped %v != per-record %v", src, ty, gn, pn)
			}
		}
	}
}

// TestGroupCommitConcurrentWriters hammers the group committer from
// many goroutines and verifies nothing is lost or misattributed.
func TestGroupCommitConcurrentWriters(t *testing.T) {
	ns, es := testSchemas(t)
	nodes, edges := testGraph(20, 40, 3)
	s, err := New(nodes, edges, ns, es, Config{NumShards: 4, SamplingRate: 8, LogStoreThreshold: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	const writers, perWriter = 8, 60
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			src := int64(1000 + g)
			for i := 0; i < perWriter; i++ {
				if err := s.AppendEdge(layout.Edge{Src: src, Dst: int64(2000 + i), Type: 2, Timestamp: int64(i + 1)}); err != nil {
					t.Error(err)
					return
				}
				if err := s.AppendNode(int64(3000+g*perWriter+i), map[string]string{"name": fmt.Sprintf("w%d-%d", g, i)}); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	for g := 0; g < writers; g++ {
		rec, ok := s.GetEdgeRecord(int64(1000+g), 2)
		if !ok || rec.Count() != perWriter {
			t.Fatalf("writer %d: edge count = %v (ok=%v), want %d", g, rec, ok, perWriter)
		}
		for i := 0; i < perWriter; i++ {
			id := int64(3000 + g*perWriter + i)
			vals, ok := s.GetNodeProps(id, []string{"name"})
			if !ok || vals[0] != fmt.Sprintf("w%d-%d", g, i) {
				t.Fatalf("node %d = %v (ok=%v)", id, vals, ok)
			}
		}
	}
}

// mutateForCompact applies a fixed mutation sequence that fragments the
// store across several generations.
func mutateForCompact(t *testing.T, s *Store, edges []layout.Edge) {
	t.Helper()
	for i := 0; i < 150; i++ {
		if err := s.AppendEdge(layout.Edge{Src: int64(i % 8), Dst: int64(300 + i), Type: 0, Timestamp: int64(100000 + i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.AppendNode(3, map[string]string{"name": "updated", "location": "Chicago"}); err != nil {
		t.Fatal(err)
	}
	s.DeleteNode(9)
	s.DeleteEdges(edges[0].Src, edges[0].Type, edges[0].Dst)
	s.DeleteEdges(2, 0, 302)
}

// TestCompactDeterminism locks the determinism of compaction's
// materialize pass: two stores given identical histories must compact
// to byte-identical primary shards. (The codec is pinned: auto-tuning
// trial-times decode speed, which is inherently run-dependent.)
func TestCompactDeterminism(t *testing.T) {
	build := func() *Store {
		ns, es := testSchemas(t)
		nodes, edges := testGraph(25, 100, 4)
		s, err := New(nodes, edges, ns, es, Config{
			NumShards: 3, SamplingRate: 8, LogStoreThreshold: 2500,
			Codec: bitutil.CodecForceLegacy,
		})
		if err != nil {
			t.Fatal(err)
		}
		mutateForCompact(t, s, edges)
		if err := s.Compact(); err != nil {
			t.Fatal(err)
		}
		return s
	}
	a, b := build(), build()
	if len(a.primaries) != len(b.primaries) {
		t.Fatalf("shard counts differ: %d vs %d", len(a.primaries), len(b.primaries))
	}
	for p := range a.primaries {
		ab, err := a.primaries[p].MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		bb, err := b.primaries[p].MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(ab, bb) {
			t.Fatalf("shard %d: serialized bytes differ across identical rebuilds (%d vs %d bytes)", p, len(ab), len(bb))
		}
	}
}

// TestSealedRawGeneration exercises every read path against a sealed
// raw generation (the state between an O(1) rollover and its
// background compression), then compresses it and checks answers are
// unchanged.
func TestSealedRawGeneration(t *testing.T) {
	ns, es := testSchemas(t)
	nodes, edges := testGraph(20, 60, 5)
	s, err := New(nodes, edges, ns, es, Config{NumShards: 2, SamplingRate: 8, LogStoreThreshold: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		if err := s.AppendEdge(layout.Edge{Src: int64(i % 4), Dst: int64(500 + i), Type: 1, Timestamp: int64(9000 + i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.AppendNode(7, map[string]string{"name": "sealed-era", "age": "99"}); err != nil {
		t.Fatal(err)
	}
	// Seal the live log by hand (what a background-mode rollover does).
	s.mu.Lock()
	s.sealLogLocked()
	s.mu.Unlock()

	check := func(phase string) {
		t.Helper()
		vals, ok := s.GetNodeProps(7, []string{"name", "age"})
		if !ok || vals[0] != "sealed-era" || vals[1] != "99" {
			t.Fatalf("%s: node 7 = %v (ok=%v)", phase, vals, ok)
		}
		rec, ok := s.GetEdgeRecord(2, 1)
		if !ok {
			t.Fatalf("%s: edge record (2,1) missing", phase)
		}
		want := 0
		for _, e := range edges {
			if e.Src == 2 && e.Type == 1 {
				want++
			}
		}
		for i := 0; i < 40; i++ {
			if i%4 == 2 {
				want++
			}
		}
		if rec.Count() != want {
			t.Fatalf("%s: edge count (2,1) = %d, want %d", phase, rec.Count(), want)
		}
		found := s.FindNodes(map[string]string{"name": "sealed-era"})
		if len(found) != 1 || found[0] != 7 {
			t.Fatalf("%s: FindNodes = %v", phase, found)
		}
	}
	check("raw")

	// Deletes against the sealed generation tombstone, not mutate.
	if n := s.DeleteEdges(3, 1, 503); n != 1 {
		t.Fatalf("delete against sealed gen removed %d, want 1", n)
	}
	recAfterDel, ok := s.GetEdgeRecord(3, 1)
	if !ok {
		t.Fatal("edge record (3,1) missing after tombstone")
	}
	delCount := recAfterDel.Count()

	// Persistence round-trips raw generations.
	blob, err := s.SaveBytes()
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(bytes.NewReader(blob), nil)
	if err != nil {
		t.Fatal(err)
	}
	if rec, ok := loaded.GetEdgeRecord(3, 1); !ok || rec.Count() != delCount {
		t.Fatalf("loaded store edge count (3,1) = %v, want %d", rec, delCount)
	}

	// Background compression must preserve answers and carry the
	// tombstone over as a deletion mark.
	if !s.compressOnePending() {
		t.Fatal("compressOnePending found nothing to compress")
	}
	s.mu.RLock()
	for g, f := range s.frozen {
		if f.raw != nil {
			t.Fatalf("generation %d still raw after compression", g)
		}
	}
	s.mu.RUnlock()
	check("compressed")
	if rec, ok := s.GetEdgeRecord(3, 1); !ok || rec.Count() != delCount {
		t.Fatalf("post-compression edge count (3,1) = %v, want %d", rec, delCount)
	}
}

// TestWritesRacingCompaction is the online-compaction torture test: 16
// goroutines append and delete continuously while Compact runs in a
// loop. Run under -race this doubles as the memory-model check for the
// snapshot/swap protocol. After quiescing, no write may be lost and a
// final compaction must leave every node whole (FragmentsOf == 1).
func TestWritesRacingCompaction(t *testing.T) {
	ns, es := testSchemas(t)
	nodes, edges := testGraph(30, 100, 6)
	s, err := New(nodes, edges, ns, es, Config{NumShards: 4, SamplingRate: 8, LogStoreThreshold: 4000})
	if err != nil {
		t.Fatal(err)
	}
	const writers = 16
	perWriter := 120
	if testing.Short() {
		perWriter = 50
	}
	stop := make(chan struct{})
	var compactions int
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // compaction loop
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := s.Compact(); err != nil {
				t.Error(err)
				return
			}
			compactions++
			time.Sleep(time.Millisecond)
		}
	}()
	var writersWG sync.WaitGroup
	for g := 0; g < writers; g++ {
		writersWG.Add(1)
		go func(g int) {
			defer writersWG.Done()
			src := int64(5000 + g)
			for i := 0; i < perWriter; i++ {
				e := layout.Edge{Src: src, Dst: int64(6000 + i), Type: 3, Timestamp: int64(i + 1)}
				if err := s.AppendEdge(e); err != nil {
					t.Error(err)
					return
				}
				// Delete every fifth edge right after appending it: the
				// delete frequently lands mid-rebuild and must be
				// replayed at swap, not resurrected.
				if i%5 == 0 {
					if n := s.DeleteEdges(src, 3, e.Dst); n == 0 {
						t.Errorf("writer %d: delete of fresh edge (dst %d) removed nothing", g, e.Dst)
						return
					}
				}
				if err := s.AppendNode(int64(9000+g*perWriter+i), map[string]string{"name": fmt.Sprintf("r%d-%d", g, i)}); err != nil {
					t.Error(err)
					return
				}
				// Concurrent readers on the same keys keep the read
				// paths honest against swaps.
				if i%7 == 0 {
					s.GetNodeProps(src, nil)
					s.NeighborIDs(src, 3, nil)
				}
			}
		}(g)
	}
	writersWG.Wait()
	close(stop)
	wg.Wait()
	if compactions == 0 {
		t.Fatal("compaction loop never ran")
	}

	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	// No lost writes, no resurrected deletes.
	for g := 0; g < writers; g++ {
		src := int64(5000 + g)
		var want []int64
		for i := 0; i < perWriter; i++ {
			if i%5 != 0 {
				want = append(want, int64(6000+i))
			}
		}
		got := s.NeighborIDs(src, 3, nil)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("writer %d: neighbors = %d ids, want %d (first diff: %v)", g, len(got), len(want), firstDiff(got, want))
		}
		for i := 0; i < perWriter; i++ {
			id := int64(9000 + g*perWriter + i)
			if vals, ok := s.GetNodeProps(id, []string{"name"}); !ok || vals[0] != fmt.Sprintf("r%d-%d", g, i) {
				t.Fatalf("node %d = %v (ok=%v)", id, vals, ok)
			}
		}
	}
	// Every node whole again after the quiesced compaction.
	for _, n := range nodes {
		if f := s.FragmentsOf(n.ID); f != 1 {
			t.Fatalf("FragmentsOf(%d) = %d after quiesced compaction, want 1", n.ID, f)
		}
	}
	for g := 0; g < writers; g++ {
		if f := s.FragmentsOf(int64(5000 + g)); f != 1 {
			t.Fatalf("FragmentsOf(%d) = %d after quiesced compaction, want 1", 5000+g, f)
		}
	}
	_ = edges
}

func firstDiff(got, want []int64) string {
	n := len(got)
	if len(want) < n {
		n = len(want)
	}
	for i := 0; i < n; i++ {
		if got[i] != want[i] {
			return fmt.Sprintf("index %d: got %d want %d", i, got[i], want[i])
		}
	}
	return fmt.Sprintf("length: got %d want %d", len(got), len(want))
}

// TestBackgroundCompaction runs the worker end to end: small threshold
// forces O(1) seals, the rollover trigger forces full compactions, and
// after quiescing every answer must match the slow-path store.
func TestBackgroundCompaction(t *testing.T) {
	ns, es := testSchemas(t)
	nodes, _ := testGraph(20, 50, 7)
	s, err := New(nodes, nil, ns, es, Config{
		NumShards: 2, SamplingRate: 8, LogStoreThreshold: 1500,
		CompactAfterRollovers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.bg == nil {
		t.Fatal("background worker not started")
	}
	for i := 0; i < 300; i++ {
		if err := s.AppendEdge(layout.Edge{Src: int64(i % 5), Dst: int64(700 + i), Type: 0, Timestamp: int64(i + 1)}); err != nil {
			t.Fatal(err)
		}
	}
	if s.Rollovers() == 0 {
		t.Fatal("no rollover despite tiny threshold")
	}
	// Quiesce: wait for the worker to drain raw generations and fire
	// any pending compaction trigger.
	deadline := time.Now().Add(10 * time.Second)
	for {
		s.mu.RLock()
		raw := 0
		for _, f := range s.frozen {
			if f.raw != nil {
				raw++
			}
		}
		pending := s.rolloversSinceCompact
		s.mu.RUnlock()
		if raw == 0 && pending < 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("worker did not quiesce: %d raw gens, %d rollovers pending", raw, pending)
		}
		s.bg.kick()
		time.Sleep(10 * time.Millisecond)
	}
	for src := int64(0); src < 5; src++ {
		rec, ok := s.GetEdgeRecord(src, 0)
		want := 60
		if !ok || rec.Count() != want {
			t.Fatalf("src %d: count = %v (ok=%v), want %d", src, rec, ok, want)
		}
	}
	for _, n := range nodes {
		if vals, ok := s.GetNodeProps(n.ID, []string{"name"}); !ok || vals[0] != n.Props["name"] {
			t.Fatalf("node %d = %v (ok=%v)", n.ID, vals, ok)
		}
	}
}

// TestWritePathMetricNames locks the write-path and online-compaction
// metric names into the default registry's exposition so renames fail
// CI (same style as TestCodecMetricNames).
func TestWritePathMetricNames(t *testing.T) {
	prev := telemetry.SetEnabled(true)
	defer telemetry.SetEnabled(prev)
	// Touch the series so histograms register non-trivially.
	mGroupBatches.Inc()
	mGroupRecords.Add(2)
	mWriteStallNs.Observe(1)
	mCompactionPauseNs.Observe(1)
	expo := telemetry.Default.Expose()
	for _, want := range []string{
		"zipg_group_commit_batches_total",
		"zipg_group_commit_records_total",
		"zipg_write_stall_ns",
		"zipg_compaction_pause_ns",
	} {
		if !strings.Contains(expo, want) {
			t.Errorf("exposition missing %s", want)
		}
	}
}
