package store

import (
	"time"

	"zipg/internal/core"
	"zipg/internal/logstore"
	"zipg/internal/telemetry"
)

// backgroundCompactor is the store's maintenance goroutine. It owns
// two jobs, both serialized with Compact through buildMu:
//
//   - compressing sealed raw generations: a threshold rollover with
//     background compaction enabled is an O(1) seal under the lock;
//     the actual suffix-array build happens here, off the write path,
//     and the compressed shard is swapped in under a brief lock.
//   - triggering full online compactions, either every CompactInterval
//     or once CompactAfterRollovers rollovers have accumulated.
//
// kick() is called (non-blocking) by the write path whenever a seal
// happens; the interval ticker covers stores that go idle with work
// pending.
type backgroundCompactor struct {
	s        *Store
	interval time.Duration
	kickCh   chan struct{}
	stopCh   chan struct{}
	doneCh   chan struct{}
}

func startBackground(s *Store, interval time.Duration) *backgroundCompactor {
	b := &backgroundCompactor{
		s:        s,
		interval: interval,
		kickCh:   make(chan struct{}, 1),
		stopCh:   make(chan struct{}),
		doneCh:   make(chan struct{}),
	}
	go b.run()
	return b
}

// kick wakes the worker without blocking; a kick while one is already
// pending is a no-op (the worker drains all pending work per pass).
func (b *backgroundCompactor) kick() {
	select {
	case b.kickCh <- struct{}{}:
	default:
	}
}

// stop shuts the worker down and waits for it to exit. Work already
// inside a buildMu critical section finishes; queued work is dropped
// (a later Compact, or Save, handles leftover raw generations).
func (b *backgroundCompactor) stop() {
	close(b.stopCh)
	<-b.doneCh
}

func (b *backgroundCompactor) run() {
	defer close(b.doneCh)
	var tick <-chan time.Time
	if b.interval > 0 {
		t := time.NewTicker(b.interval)
		defer t.Stop()
		tick = t.C
	}
	for {
		select {
		case <-b.stopCh:
			return
		case <-b.kickCh:
			b.pass(false)
		case <-tick:
			b.pass(true)
		}
	}
}

// pass drains pending maintenance: compress every sealed raw
// generation, then run a full compaction if a trigger fires.
func (b *backgroundCompactor) pass(intervalFired bool) {
	for b.s.compressOnePending() {
		select {
		case <-b.stopCh:
			return
		default:
		}
	}
	after := b.s.cfg.CompactAfterRollovers
	if intervalFired || (after > 0 && b.s.rolloversPending() >= after) {
		// Compaction failure leaves the store fully serviceable (the
		// fragments it would have merged stay live); the next trigger
		// retries.
		_ = b.s.Compact()
	}
}

// rolloversPending returns rollovers since the last full compaction.
func (s *Store) rolloversPending() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.rolloversSinceCompact
}

// compressOnePending finds the oldest sealed raw generation, builds
// its compressed shard outside the store lock, and swaps it in,
// converting the generation's delete tombstones into lazy per-position
// marks on the new shard. Returns false when no raw generation
// remains (or the build failed — the raw generation stays live and
// readable either way).
func (s *Store) compressOnePending() bool {
	s.buildMu.Lock()
	defer s.buildMu.Unlock()

	s.mu.RLock()
	g := -1
	var raw *logstore.LogStore
	for i, f := range s.frozen {
		if f.raw != nil {
			g, raw = i, f.raw
			break
		}
	}
	s.mu.RUnlock()
	if g < 0 {
		return false
	}

	// The sealed log is immutable (only its tombstones in s.rawDels
	// move, and those are re-read at swap), so no replay machinery is
	// needed: build from the full contents, then carry the current
	// tombstone set over as deletion marks.
	tm := telemetry.StartTimer()
	nodes, edges := raw.Contents()
	sh, err := core.Build(nodes, edges, s.nodeSchema, s.edgeSchema,
		core.Options{SamplingRate: s.cfg.SamplingRate, Medium: s.cfg.Medium, Codec: s.cfg.Codec})
	if err != nil {
		return false
	}
	tm.ObserveInto(mRolloverNs)

	pause := telemetry.StartTimer()
	s.mu.Lock()
	// Index g is still valid: rollovers only append to s.frozen, and
	// buildMu excludes the only operations that drop or reorder
	// generations (Compact).
	frozen := append([]fragment(nil), s.frozen...)
	frozen[g] = fragment{shard: sh}
	s.frozen = frozen
	for t := range s.rawDels[raw] {
		s.markShardEdgesLocked(sh, t)
	}
	delete(s.rawDels, raw)
	s.mu.Unlock()
	pause.ObserveInto(mCompactionPauseNs)
	return true
}
