package store

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
	"sync/atomic"

	"zipg/internal/core"
	"zipg/internal/layout"
	"zipg/internal/logstore"
	"zipg/internal/memsim"
	"zipg/internal/parallel"
)

// This file implements §4.1's data persistence: the store serializes its
// compressed shards, the live LogStore's contents, the update pointers
// and the deletion state as flat sections, and can be reconstructed from
// them. (The paper mmaps the same serialized files; here loading
// re-registers the structures on a fresh medium.)

// persistHeader leads the stream and pins the format.
const persistMagic = "ZIPGSTORE1"

// storeWire is the gob envelope for the store's mutable state.
type storeWire struct {
	NumShards    int
	SamplingRate int
	Threshold    int64
	NodeSchema   layout.SchemaSpec
	EdgeSchema   layout.SchemaSpec

	Primaries [][]byte // serialized shards
	// Frozen holds one entry per frozen generation; a nil blob marks a
	// sealed raw generation whose contents live in RawGens instead.
	Frozen  [][]byte
	RawGens []rawGenWire

	LogNodes []layout.Node
	LogEdges []layout.Edge

	Ptrs         map[layout.NodeID][]int
	DeletedNodes []layout.NodeID
	// Deleted physical edge positions, keyed by (fragment index, src,
	// etype). Fragment indexes: 0..NumShards-1 are primaries, then
	// frozen generations.
	DeletedPhys []deletedPhysWire

	Rollovers int
}

type deletedPhysWire struct {
	Fragment int
	Src      layout.NodeID
	EType    layout.EdgeType
	Indexes  []int
}

// rawGenWire is one sealed-but-uncompressed generation. Its delete
// tombstones are applied at save time, so the persisted contents are
// already clean.
type rawGenWire struct {
	Gen   int
	Nodes []layout.Node
	Edges []layout.Edge
}

// Save serializes the entire store (shards, LogStore contents, update
// pointers, deletion state) to w.
func (s *Store) Save(w io.Writer) error {
	s.mu.RLock()
	defer s.mu.RUnlock()

	wire := storeWire{
		NumShards:    s.cfg.NumShards,
		SamplingRate: s.cfg.SamplingRate,
		Threshold:    s.cfg.LogStoreThreshold,
		NodeSchema:   s.nodeSchema.Spec(),
		EdgeSchema:   s.edgeSchema.Spec(),
		Ptrs:         s.ptrs,
		Rollovers:    s.rollovers,
	}
	fragIndex := make(map[*core.Shard]int)
	for i, sh := range s.primaries {
		blob, err := sh.MarshalBinary()
		if err != nil {
			return fmt.Errorf("store: save primary %d: %w", i, err)
		}
		wire.Primaries = append(wire.Primaries, blob)
		fragIndex[sh] = i
	}
	for g, f := range s.frozen {
		if f.raw != nil {
			rn, re := f.raw.Contents()
			if dels := s.rawDels[f.raw]; len(dels) > 0 {
				kept := re[:0]
				for _, e := range re {
					if !dels[edgeTriple{e.Src, e.Type, e.Dst}] {
						kept = append(kept, e)
					}
				}
				re = kept
			}
			wire.Frozen = append(wire.Frozen, nil)
			wire.RawGens = append(wire.RawGens, rawGenWire{Gen: g, Nodes: rn, Edges: re})
			continue
		}
		blob, err := f.shard.MarshalBinary()
		if err != nil {
			return fmt.Errorf("store: save frozen %d: %w", g, err)
		}
		wire.Frozen = append(wire.Frozen, blob)
		fragIndex[f.shard] = s.cfg.NumShards + g
	}
	wire.LogNodes, wire.LogEdges = s.log.Contents()
	for id := range s.deletedNodes {
		wire.DeletedNodes = append(wire.DeletedNodes, id)
	}
	for ref, idxs := range s.deletedPhys {
		fi, ok := fragIndex[ref.shard]
		if !ok {
			continue
		}
		dw := deletedPhysWire{Fragment: fi, Src: ref.src, EType: ref.etype}
		for i := range idxs {
			dw.Indexes = append(dw.Indexes, i)
		}
		wire.DeletedPhys = append(wire.DeletedPhys, dw)
	}

	if _, err := io.WriteString(w, persistMagic); err != nil {
		return err
	}
	return gob.NewEncoder(w).Encode(wire)
}

// Load reconstructs a store serialized by Save, placing it on med
// (nil = unlimited).
func Load(r io.Reader, med *memsim.Medium) (*Store, error) {
	magic := make([]byte, len(persistMagic))
	if _, err := io.ReadFull(r, magic); err != nil {
		return nil, fmt.Errorf("store: load: %w", err)
	}
	if string(magic) != persistMagic {
		return nil, fmt.Errorf("store: bad magic %q", magic)
	}
	var wire storeWire
	if err := gob.NewDecoder(r).Decode(&wire); err != nil {
		return nil, fmt.Errorf("store: load: %w", err)
	}
	nodeSchema, err := wire.NodeSchema.Build()
	if err != nil {
		return nil, err
	}
	edgeSchema, err := wire.EdgeSchema.Build()
	if err != nil {
		return nil, err
	}
	s := &Store{
		cfg: Config{
			NumShards:         wire.NumShards,
			SamplingRate:      wire.SamplingRate,
			Medium:            med,
			LogStoreThreshold: wire.Threshold,
		},
		nodeSchema:   nodeSchema,
		edgeSchema:   edgeSchema,
		ptrs:         wire.Ptrs,
		deletedNodes: make(map[layout.NodeID]bool, len(wire.DeletedNodes)),
		deletedPhys:  make(map[shardEdgeRef]map[int]bool),
		rawDels:      make(map[*logstore.LogStore]map[edgeTriple]bool),
		shardReads:   make([]atomic.Int64, wire.NumShards),
		rollovers:    wire.Rollovers,
	}
	s.wc.init(wire.NumShards)
	// Event sequences are runtime state: a reloaded store starts every
	// partition's sequence at 0 (subscribers cannot span a restart).
	s.events.init(wire.NumShards, 0)
	if s.cfg.LogStoreThreshold <= 0 {
		s.cfg.LogStoreThreshold = DefaultLogStoreThreshold
	}
	if s.ptrs == nil {
		s.ptrs = make(map[layout.NodeID][]int)
	}
	// Every fragment blob deserializes independently; fan the unmarshals
	// out over the shared pool (frags keeps the primaries-then-frozen
	// order the DeletedPhys fragment indexes were saved against).
	nPrim := len(wire.Primaries)
	frags, err := parallel.MapErr("store.load_shards", nPrim+len(wire.Frozen), func(i int) (*core.Shard, error) {
		if i < nPrim {
			sh, err := core.UnmarshalShard(wire.Primaries[i], med)
			if err != nil {
				return nil, fmt.Errorf("store: load primary %d: %w", i, err)
			}
			return sh, nil
		}
		if wire.Frozen[i-nPrim] == nil {
			return nil, nil // sealed raw generation, reconstructed below
		}
		sh, err := core.UnmarshalShard(wire.Frozen[i-nPrim], med)
		if err != nil {
			return nil, fmt.Errorf("store: load frozen %d: %w", i-nPrim, err)
		}
		return sh, nil
	})
	if err != nil {
		return nil, err
	}
	s.primaries = frags[:nPrim:nPrim]
	rawByGen := make(map[int]rawGenWire, len(wire.RawGens))
	for _, rg := range wire.RawGens {
		rawByGen[rg.Gen] = rg
	}
	s.frozen = make([]fragment, len(wire.Frozen))
	for g := range wire.Frozen {
		if sh := frags[nPrim+g]; sh != nil {
			s.frozen[g] = fragment{shard: sh}
			continue
		}
		rg, ok := rawByGen[g]
		if !ok {
			return nil, fmt.Errorf("store: load: raw generation %d missing", g)
		}
		raw := logstore.New(nodeSchema, edgeSchema, med, g)
		for _, n := range rg.Nodes {
			if err := raw.AddNode(n.ID, n.Props); err != nil {
				return nil, fmt.Errorf("store: load raw gen %d node %d: %w", g, n.ID, err)
			}
		}
		for _, e := range rg.Edges {
			if err := raw.AddEdge(e); err != nil {
				return nil, fmt.Errorf("store: load raw gen %d edge: %w", g, err)
			}
		}
		s.frozen[g] = fragment{raw: raw}
	}
	s.log = logstore.New(nodeSchema, edgeSchema, med, len(s.frozen))
	for _, n := range wire.LogNodes {
		if err := s.log.AddNode(n.ID, n.Props); err != nil {
			return nil, fmt.Errorf("store: load log node %d: %w", n.ID, err)
		}
	}
	for _, e := range wire.LogEdges {
		if err := s.log.AddEdge(e); err != nil {
			return nil, fmt.Errorf("store: load log edge: %w", err)
		}
	}
	for _, id := range wire.DeletedNodes {
		s.deletedNodes[id] = true
	}
	for _, dw := range wire.DeletedPhys {
		if dw.Fragment < 0 || dw.Fragment >= len(frags) {
			return nil, fmt.Errorf("store: load: fragment index %d out of range", dw.Fragment)
		}
		if frags[dw.Fragment] == nil {
			continue // raw generations carry no positional marks
		}
		ref := shardEdgeRef{frags[dw.Fragment], dw.Src, dw.EType}
		m := make(map[int]bool, len(dw.Indexes))
		for _, i := range dw.Indexes {
			m[i] = true
		}
		s.deletedPhys[ref] = m
	}
	return s, nil
}

// SaveBytes is Save into a byte slice.
func (s *Store) SaveBytes() ([]byte, error) {
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}
