package store

import (
	"fmt"

	"zipg/internal/core"
	"zipg/internal/layout"
	"zipg/internal/logstore"
	"zipg/internal/parallel"
	"zipg/internal/succinct"
	"zipg/internal/telemetry"
)

// Compact is the periodic garbage collection of §4.1: it merges every
// fragment — the primary shards, all frozen LogStore generations and the
// live LogStore — into fresh primary shards, physically dropping
// lazily-deleted nodes and edges and resetting every update pointer.
// After compaction each node's data is whole again (FragmentsOf returns
// 1 for every node) and reads touch exactly one shard.
//
// Compaction holds the store's write lock for the duration (the paper
// runs it periodically in the background on dedicated capacity; this
// implementation favours simplicity).
func (s *Store) Compact() error {
	tm := telemetry.StartTimer()
	defer func() {
		mCompactions.Inc()
		tm.ObserveInto(mCompactionNs)
	}()
	s.mu.Lock()
	defer s.mu.Unlock()

	nodes, edges, err := s.materializeLocked()
	if err != nil {
		return err
	}

	partNodes := make([][]layout.Node, s.cfg.NumShards)
	partEdges := make([][]layout.Edge, s.cfg.NumShards)
	for _, n := range nodes {
		p := s.partitionOf(n.ID)
		partNodes[p] = append(partNodes[p], n)
	}
	for _, e := range edges {
		p := s.partitionOf(e.Src)
		partEdges[p] = append(partEdges[p], e)
	}
	alphas := s.tuneAlphasLocked()
	// The fresh shards are independent, so their suffix-array builds fan
	// out over the shared pool; none of them touches s.mu, so holding the
	// write lock here is safe.
	fresh, err := parallel.MapErr("store.compact_shards", s.cfg.NumShards, func(p int) (*core.Shard, error) {
		sh, err := core.Build(partNodes[p], partEdges[p], s.nodeSchema, s.edgeSchema,
			core.Options{SamplingRate: alphas[p], Medium: s.cfg.Medium, Codec: s.cfg.Codec})
		if err != nil {
			return nil, fmt.Errorf("store: compact shard %d: %w", p, err)
		}
		return sh, nil
	})
	if err != nil {
		return err
	}

	s.primaries = fresh
	s.tunedAlpha = alphas
	for p := range s.shardReads {
		s.shardReads[p].Store(0)
	}
	s.frozen = nil
	s.log = logstore.New(s.nodeSchema, s.edgeSchema, s.cfg.Medium, 0)
	s.ptrs = make(map[layout.NodeID][]int)
	s.deletedNodes = make(map[layout.NodeID]bool)
	s.deletedPhys = make(map[shardEdgeRef]map[int]bool)
	return nil
}

// tuneAlphasLocked picks each partition's sampling rate α for the next
// shard generation. Without AutoTuneAlpha (or before any reads) every
// partition keeps the configured base α. With it, partitions are graded
// against their fair share of the reads accumulated since the last
// compaction: a partition drawing ≥2× its fair share samples 4× denser
// (α/4 — random access there is latency-critical), one merely above fair
// samples 2× denser, and one below half its fair share compresses 2×
// harder (2α) — trading cold-shard latency nobody observes for space,
// the α knob of §3.2 turned per shard instead of globally. α is clamped
// to [4, 128]. Callers hold s.mu.
func (s *Store) tuneAlphasLocked() []int {
	base := s.cfg.SamplingRate
	if base <= 0 {
		base = succinct.DefaultSamplingRate
	}
	alphas := make([]int, s.cfg.NumShards)
	for p := range alphas {
		alphas[p] = base
	}
	if !s.cfg.AutoTuneAlpha {
		return alphas
	}
	var total int64
	for p := range s.shardReads {
		total += s.shardReads[p].Load()
	}
	if total == 0 {
		return alphas
	}
	fair := float64(total) / float64(s.cfg.NumShards)
	for p := range alphas {
		reads := float64(s.shardReads[p].Load())
		switch {
		case reads >= 2*fair:
			alphas[p] = max(4, base/4)
			mAlphaDenser.Inc()
		case reads > fair:
			alphas[p] = max(4, base/2)
			mAlphaDenser.Inc()
		case reads < fair/2:
			alphas[p] = min(128, base*2)
			mAlphaSparser.Inc()
		default:
			mAlphaBase.Inc()
		}
	}
	return alphas
}

// materializeLocked reconstructs the live logical graph: every live
// node's current property list and every live edge. Callers hold s.mu.
func (s *Store) materializeLocked() ([]layout.Node, []layout.Edge, error) {
	// Collect candidate node IDs from every fragment.
	ids := make(map[layout.NodeID]bool)
	for _, sh := range s.primaries {
		for _, id := range sh.Nodes().IDs() {
			ids[id] = true
		}
	}
	for _, sh := range s.frozen {
		for _, id := range sh.Nodes().IDs() {
			ids[id] = true
		}
	}
	logNodes, _ := s.log.Contents()
	for _, n := range logNodes {
		ids[n.ID] = true
	}
	// A node with edges but no property record anywhere still exists
	// (implicit endpoints); its edges are discovered below and need no
	// node record entry here beyond what resolution finds.

	var nodes []layout.Node
	for id := range ids {
		if s.deletedNodes[id] {
			continue
		}
		props, ok := s.resolveNodeLocked(id)
		if !ok {
			continue
		}
		nodes = append(nodes, layout.Node{ID: id, Props: props})
	}

	// Edges: walk every (src, etype) record in every fragment, honoring
	// physical deletion marks; LogStore edges come from its contents.
	var edges []layout.Edge
	appendFromShard := func(sh *core.Shard) error {
		for _, src := range sh.EdgeSources() {
			if s.deletedNodes[src] {
				continue
			}
			for _, ref := range sh.Edges().GetEdgeRecords(src) {
				deleted := s.deletedPhys[shardEdgeRef{sh, src, ref.Type}]
				for i := 0; i < ref.Count; i++ {
					if deleted[i] {
						continue
					}
					d, err := sh.Edges().GetEdgeData(&ref, i)
					if err != nil {
						return fmt.Errorf("store: compact: edge (%d,%d)[%d]: %w", src, ref.Type, i, err)
					}
					edges = append(edges, layout.Edge{
						Src: src, Dst: d.Dst, Type: ref.Type,
						Timestamp: d.Timestamp, Props: d.Props,
					})
				}
			}
		}
		return nil
	}
	for _, sh := range s.primaries {
		if err := appendFromShard(sh); err != nil {
			return nil, nil, err
		}
	}
	for _, sh := range s.frozen {
		if err := appendFromShard(sh); err != nil {
			return nil, nil, err
		}
	}
	_, logEdges := s.log.Contents()
	for _, e := range logEdges {
		if s.deletedNodes[e.Src] {
			continue
		}
		edges = append(edges, e)
	}
	return nodes, edges, nil
}

// resolveNodeLocked returns the newest live property map for id, like
// GetNodeProps but lock-free-internally for use during compaction.
func (s *Store) resolveNodeLocked(id layout.NodeID) (map[string]string, bool) {
	for _, g := range s.nodeGensLocked(id) {
		if g == len(s.frozen) {
			if props, ok := s.log.NodeProps(id); ok {
				return props, true
			}
			continue
		}
		if g > len(s.frozen) {
			continue
		}
		if props, ok := s.frozen[g].Nodes().GetAllProps(id); ok {
			return props, true
		}
	}
	return s.primaries[s.partitionOf(id)].Nodes().GetAllProps(id)
}
