package store

import (
	"fmt"
	"runtime"
	"sort"

	"zipg/internal/core"
	"zipg/internal/layout"
	"zipg/internal/logstore"
	"zipg/internal/parallel"
	"zipg/internal/succinct"
	"zipg/internal/telemetry"
)

// Compact is the periodic garbage collection of §4.1: it merges every
// fragment — the primary shards, all frozen generations and the live
// LogStore — into fresh primary shards, physically dropping
// lazily-deleted nodes and edges and resetting every update pointer.
// After compaction each node's data is whole again (FragmentsOf returns
// 1 for every node) and reads touch exactly one shard.
//
// Compaction is online: the store's write lock is held only for two
// brief windows (both observed into zipg_compaction_pause_ns) —
//
//	Phase 1 (seal + snapshot): seal the live LogStore into an immutable
//	  raw generation, snapshot the fragment set and the deletion state,
//	  and turn on delete-replay recording.
//	Phase 2 (rebuild, NO store lock): materialize the live graph from
//	  the immutable snapshot and build fresh primary shards on the
//	  shared worker pool. Queries and writes proceed concurrently; the
//	  paper runs GC "in the background on dedicated capacity" — this is
//	  that, minus the dedicated capacity.
//	Phase 3 (swap): install the fresh primaries, drop the consumed
//	  generations, renumber the survivors (generations sealed during
//	  the rebuild), remap update pointers, and replay the deletes that
//	  arrived during the rebuild onto the fresh shards so nothing
//	  deleted is resurrected.
//
// Appends never need replay: an append lands in the live LogStore,
// which is by construction newer than every generation the rebuild
// consumed. Deletes do — a delete during the rebuild targets data the
// rebuild is busy baking into the fresh primaries — so they are
// recorded (s.replay*) and re-applied at swap as lazy deletion marks.
//
// buildMu serializes Compact with the background worker's generation
// compression: at most one rebuild is in flight, which is what lets
// the replay log attribute its entries to exactly one pending swap.
func (s *Store) Compact() error {
	s.buildMu.Lock()
	defer s.buildMu.Unlock()
	tm := telemetry.StartTimer()
	defer func() {
		mCompactions.Inc()
		tm.ObserveInto(mCompactionNs)
	}()

	// Phase 1: seal + snapshot under a brief write lock.
	pause := telemetry.StartTimer()
	s.mu.Lock()
	s.sealForCompactLocked()
	snap := s.snapshotForCompactLocked()
	s.replaying = true
	s.replayEdgeDels = nil
	s.replayNodeDels = make(map[layout.NodeID]bool)
	s.mu.Unlock()
	pause.ObserveInto(mCompactionPauseNs)

	// Phase 2: rebuild outside the store lock.
	fresh, err := snap.build(s)
	if err != nil {
		s.mu.Lock()
		s.replaying = false
		s.replayEdgeDels = nil
		s.replayNodeDels = nil
		s.mu.Unlock()
		return err
	}

	// Phase 3: swap under a brief write lock.
	pause = telemetry.StartTimer()
	s.mu.Lock()
	s.swapCompactedLocked(snap, fresh)
	s.mu.Unlock()
	pause.ObserveInto(mCompactionPauseNs)
	return nil
}

// compactSnapshot is the immutable fragment-epoch a rebuild runs
// against: the fragment set as of the seal, with the deletion state
// deep-copied so concurrent deletes (which mutate the live maps) can't
// leak into the materialized graph mid-pass.
type compactSnapshot struct {
	primaries    []*core.Shard
	frozen       []fragment
	cut          int // == len(frozen): generations the rebuild consumes
	alphas       []int
	deletedNodes map[layout.NodeID]bool
	deletedPhys  map[shardEdgeRef]map[int]bool
	rawDels      map[*logstore.LogStore]map[edgeTriple]bool
}

// sealForCompactLocked freezes the live LogStore into a raw generation
// so the whole pre-compaction state is immutable. Unlike a threshold
// rollover this is not counted in Rollovers() — it is bookkeeping
// internal to one compaction, not a capacity event. Callers hold s.mu.
func (s *Store) sealForCompactLocked() {
	frozen := make([]fragment, len(s.frozen), len(s.frozen)+1)
	copy(frozen, s.frozen)
	s.frozen = append(frozen, fragment{raw: s.log})
	s.log = logstore.New(s.nodeSchema, s.edgeSchema, s.cfg.Medium, len(s.frozen))
}

// snapshotForCompactLocked captures the rebuild's input epoch. The
// shard and fragment slices are copy-on-write (safe to hold as-is);
// the deletion maps are mutable and get deep-copied. Callers hold s.mu.
func (s *Store) snapshotForCompactLocked() *compactSnapshot {
	snap := &compactSnapshot{
		primaries:    s.primaries,
		frozen:       s.frozen,
		cut:          len(s.frozen),
		alphas:       s.tuneAlphasLocked(),
		deletedNodes: make(map[layout.NodeID]bool, len(s.deletedNodes)),
		deletedPhys:  make(map[shardEdgeRef]map[int]bool, len(s.deletedPhys)),
		rawDels:      make(map[*logstore.LogStore]map[edgeTriple]bool, len(s.rawDels)),
	}
	for id := range s.deletedNodes {
		snap.deletedNodes[id] = true
	}
	for k, m := range s.deletedPhys {
		snap.deletedPhys[k] = copyDeleted(m)
	}
	for raw, m := range s.rawDels {
		cp := make(map[edgeTriple]bool, len(m))
		for t := range m {
			cp[t] = true
		}
		snap.rawDels[raw] = cp
	}
	return snap
}

// build materializes the snapshot's live graph and compresses it into
// fresh primary shards on the shared pool. No store lock is held.
func (c *compactSnapshot) build(s *Store) ([]*core.Shard, error) {
	nodes, edges, err := c.materialize(s)
	if err != nil {
		return nil, err
	}
	partNodes := make([][]layout.Node, s.cfg.NumShards)
	partEdges := make([][]layout.Edge, s.cfg.NumShards)
	for _, n := range nodes {
		p := s.partitionOf(n.ID)
		partNodes[p] = append(partNodes[p], n)
	}
	for _, e := range edges {
		p := s.partitionOf(e.Src)
		partEdges[p] = append(partEdges[p], e)
	}
	fresh, err := parallel.MapErr("store.compact_shards", s.cfg.NumShards, func(p int) (*core.Shard, error) {
		sh, err := core.Build(partNodes[p], partEdges[p], s.nodeSchema, s.edgeSchema,
			core.Options{SamplingRate: c.alphas[p], Medium: s.cfg.Medium, Codec: s.cfg.Codec})
		if err != nil {
			return nil, fmt.Errorf("store: compact shard %d: %w", p, err)
		}
		return sh, nil
	})
	if err != nil {
		return nil, err
	}
	return fresh, nil
}

// swapCompactedLocked installs the rebuilt primaries: drop the
// consumed generations, renumber the survivors, remap update pointers
// and replay the deletes recorded during the rebuild. Callers hold
// s.mu.
func (s *Store) swapCompactedLocked(snap *compactSnapshot, fresh []*core.Shard) {
	cut := snap.cut
	s.primaries = fresh
	s.tunedAlpha = snap.alphas
	for p := range s.shardReads {
		s.shardReads[p].Store(0)
	}
	// Generations sealed during the rebuild survive, renumbered down by
	// cut; so does the live log (its generation is implicitly
	// len(s.frozen) — see curGenLocked).
	s.frozen = append([]fragment(nil), s.frozen[cut:]...)
	for id, gens := range s.ptrs {
		var ng []int
		for _, g := range gens {
			if g >= cut {
				ng = append(ng, g-cut)
			}
		}
		if len(ng) == 0 {
			delete(s.ptrs, id)
		} else {
			s.ptrs[id] = ng
		}
	}
	// Deletion state: everything the rebuild consumed was filtered
	// during materialize, so only marks shadowing *post-snapshot* data
	// survive — node deletes recorded during the rebuild (if still in
	// force), physical marks on shards still referenced, tombstones on
	// raw generations still referenced.
	deletedNodes := make(map[layout.NodeID]bool)
	for id := range s.replayNodeDels {
		if s.deletedNodes[id] {
			deletedNodes[id] = true
		}
	}
	s.deletedNodes = deletedNodes
	liveShards := make(map[*core.Shard]bool, len(fresh)+len(s.frozen))
	for _, sh := range fresh {
		liveShards[sh] = true
	}
	liveRaws := make(map[*logstore.LogStore]bool, len(s.frozen))
	for _, f := range s.frozen {
		if f.shard != nil {
			liveShards[f.shard] = true
		}
		if f.raw != nil {
			liveRaws[f.raw] = true
		}
	}
	for key := range s.deletedPhys {
		if !liveShards[key.shard] {
			delete(s.deletedPhys, key)
		}
	}
	for raw := range s.rawDels {
		if !liveRaws[raw] {
			delete(s.rawDels, raw)
		}
	}
	// Replay: deletes that arrived during the rebuild targeted data the
	// rebuild was baking into the fresh primaries; re-apply them there
	// as lazy marks. (Data appended after the seal lives in newer
	// fragments, which the delete already handled directly — replay
	// touches only the fresh shards, so it cannot kill a re-append.)
	for _, t := range s.replayEdgeDels {
		for _, sh := range fresh {
			s.markShardEdgesLocked(sh, t)
		}
	}
	s.replaying = false
	s.replayEdgeDels = nil
	s.replayNodeDels = nil
	s.rolloversSinceCompact = 0
}

// markShardEdgesLocked lazily deletes every (src, etype, dst) edge
// held by one compressed shard. Callers hold s.mu.
func (s *Store) markShardEdgesLocked(sh *core.Shard, t edgeTriple) int {
	ref, ok := sh.Edges().GetEdgeRecord(t.src, t.etype)
	if !ok {
		return 0
	}
	key := shardEdgeRef{sh, t.src, t.etype}
	n := 0
	for i, d := range sh.Edges().Destinations(&ref) {
		if d != t.dst || s.deletedPhys[key][i] {
			continue
		}
		if s.deletedPhys[key] == nil {
			s.deletedPhys[key] = make(map[int]bool)
		}
		s.deletedPhys[key][i] = true
		n++
	}
	return n
}

// tuneAlphasLocked picks each partition's sampling rate α for the next
// shard generation. Without AutoTuneAlpha (or before any reads) every
// partition keeps the configured base α. With it, partitions are graded
// against their fair share of the reads accumulated since the last
// compaction: a partition drawing ≥2× its fair share samples 4× denser
// (α/4 — random access there is latency-critical), one merely above fair
// samples 2× denser, and one below half its fair share compresses 2×
// harder (2α) — trading cold-shard latency nobody observes for space,
// the α knob of §3.2 turned per shard instead of globally. α is clamped
// to [4, 128]. Callers hold s.mu.
func (s *Store) tuneAlphasLocked() []int {
	base := s.cfg.SamplingRate
	if base <= 0 {
		base = succinct.DefaultSamplingRate
	}
	alphas := make([]int, s.cfg.NumShards)
	for p := range alphas {
		alphas[p] = base
	}
	if !s.cfg.AutoTuneAlpha {
		return alphas
	}
	var total int64
	for p := range s.shardReads {
		total += s.shardReads[p].Load()
	}
	if total == 0 {
		return alphas
	}
	fair := float64(total) / float64(s.cfg.NumShards)
	for p := range alphas {
		reads := float64(s.shardReads[p].Load())
		switch {
		case reads >= 2*fair:
			alphas[p] = max(4, base/4)
			mAlphaDenser.Inc()
		case reads > fair:
			alphas[p] = max(4, base/2)
			mAlphaDenser.Inc()
		case reads < fair/2:
			alphas[p] = min(128, base*2)
			mAlphaSparser.Inc()
		default:
			mAlphaBase.Inc()
		}
	}
	return alphas
}

// materialize reconstructs the snapshot's live logical graph: every
// live node's current property list and every live edge. It runs
// against the immutable snapshot only — no store lock is held — and
// its output is deterministic: nodes ascend by ID, edges are sorted by
// (src, type, timestamp, dst) with collection order breaking ties, so
// two rebuilds of the same snapshot produce byte-identical shards.
func (c *compactSnapshot) materialize(s *Store) ([]layout.Node, []layout.Edge, error) {
	// Collect candidate node IDs from every fragment.
	ids := make(map[layout.NodeID]bool)
	for _, sh := range c.primaries {
		for _, id := range sh.Nodes().IDs() {
			ids[id] = true
		}
	}
	for _, f := range c.frozen {
		if f.raw != nil {
			rawNodes, _ := f.raw.Contents()
			for _, n := range rawNodes {
				ids[n.ID] = true
			}
			continue
		}
		for _, id := range f.shard.Nodes().IDs() {
			ids[id] = true
		}
	}
	// A node with edges but no property record anywhere still exists
	// (implicit endpoints); its edges are discovered below and need no
	// node record entry here beyond what resolution finds.

	sorted := make([]layout.NodeID, 0, len(ids))
	for id := range ids {
		if !c.deletedNodes[id] {
			sorted = append(sorted, id)
		}
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var nodes []layout.Node
	for i, id := range sorted {
		// The rebuild is a CPU-bound background pass racing foreground
		// queries; yield regularly so their latency stays bounded by the
		// gap between yields, not the scheduler's preemption quantum.
		if i&63 == 63 {
			runtime.Gosched()
		}
		props, ok := c.resolveNode(s, id)
		if !ok {
			continue
		}
		nodes = append(nodes, layout.Node{ID: id, Props: props})
	}

	// Edges: walk every (src, etype) record in every fragment, honoring
	// physical deletion marks and raw-generation tombstones.
	var edges []layout.Edge
	appendFromShard := func(sh *core.Shard) error {
		for si, src := range sh.EdgeSources() {
			if si&63 == 63 {
				runtime.Gosched() // see the node loop above
			}
			if c.deletedNodes[src] {
				continue
			}
			for _, ref := range sh.Edges().GetEdgeRecords(src) {
				deleted := c.deletedPhys[shardEdgeRef{sh, src, ref.Type}]
				for i := 0; i < ref.Count; i++ {
					if deleted[i] {
						continue
					}
					d, err := sh.Edges().GetEdgeData(&ref, i)
					if err != nil {
						return fmt.Errorf("store: compact: edge (%d,%d)[%d]: %w", src, ref.Type, i, err)
					}
					edges = append(edges, layout.Edge{
						Src: src, Dst: d.Dst, Type: ref.Type,
						Timestamp: d.Timestamp, Props: d.Props,
					})
				}
			}
		}
		return nil
	}
	for _, sh := range c.primaries {
		if err := appendFromShard(sh); err != nil {
			return nil, nil, err
		}
	}
	for _, f := range c.frozen {
		if f.raw != nil {
			dels := c.rawDels[f.raw]
			_, rawEdges := f.raw.Contents()
			for _, e := range rawEdges {
				if c.deletedNodes[e.Src] || dels[edgeTriple{e.Src, e.Type, e.Dst}] {
					continue
				}
				edges = append(edges, e)
			}
			continue
		}
		if err := appendFromShard(f.shard); err != nil {
			return nil, nil, err
		}
	}
	sort.SliceStable(edges, func(i, j int) bool {
		if edges[i].Src != edges[j].Src {
			return edges[i].Src < edges[j].Src
		}
		if edges[i].Type != edges[j].Type {
			return edges[i].Type < edges[j].Type
		}
		if edges[i].Timestamp != edges[j].Timestamp {
			return edges[i].Timestamp < edges[j].Timestamp
		}
		return edges[i].Dst < edges[j].Dst
	})
	return nodes, edges, nil
}

// resolveNode returns the newest live property map for id within the
// snapshot. Update pointers are not needed: generations are walked
// newest-first (every frozen generation is newer than the primaries),
// so the first record found is the current version.
func (c *compactSnapshot) resolveNode(s *Store, id layout.NodeID) (map[string]string, bool) {
	for g := len(c.frozen) - 1; g >= 0; g-- {
		if raw := c.frozen[g].raw; raw != nil {
			if props, ok := raw.NodeProps(id); ok {
				return props, true
			}
			continue
		}
		if props, ok := c.frozen[g].shard.Nodes().GetAllProps(id); ok {
			return props, true
		}
	}
	return c.primaries[s.partitionOf(id)].Nodes().GetAllProps(id)
}
