package store

import (
	"math/rand"
	"testing"

	"zipg/internal/layout"
)

// Batch-vs-scalar benchmarks over one store; CI's bench smoke runs each
// once so a setup break or hang fails fast.

func benchStore(b *testing.B) (*Store, [][]layout.NodeID, [][]AssocRangeReq) {
	b.Helper()
	s, _, _ := newTestStore(b, 400, 4000, 2)
	rng := rand.New(rand.NewSource(9))
	const size = 64
	ids := make([][]layout.NodeID, 32)
	reqs := make([][]AssocRangeReq, 32)
	for i := range ids {
		ids[i] = make([]layout.NodeID, size)
		reqs[i] = make([]AssocRangeReq, size)
		for k := 0; k < size; k++ {
			ids[i][k] = layout.NodeID(rng.Intn(400))
			reqs[i][k] = AssocRangeReq{
				ID: layout.NodeID(rng.Intn(400)), Type: int64(rng.Intn(3)),
				Idx: 0, Limit: 10,
			}
		}
	}
	return s, ids, reqs
}

func BenchmarkBatchObjGet64(b *testing.B) {
	s, ids, _ := benchStore(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.ObjGetBatch(ids[i%len(ids)])
	}
}

func BenchmarkScalarObjGet64(b *testing.B) {
	s, ids, _ := benchStore(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, id := range ids[i%len(ids)] {
			s.GetNodeProps(id, nil)
		}
	}
}

func BenchmarkBatchAssocRange64(b *testing.B) {
	s, _, reqs := benchStore(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.AssocRangeBatch(reqs[i%len(reqs)]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkScalarAssocRange64(b *testing.B) {
	s, _, reqs := benchStore(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, req := range reqs[i%len(reqs)] {
			if _, err := s.assocRangeScalar(req); err != nil {
				b.Fatal(err)
			}
		}
	}
}
