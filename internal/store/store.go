// Package store implements the single-machine ZipG store: hash-
// partitioned compressed shards (§4.1), a single rolling LogStore for
// writes, fanned update pointers that route queries to exactly the
// fragments holding a node's data (§3.5), and lazy deletes.
//
// Mutable state (update pointers, deletion marks, the LogStore) is
// guarded by one RWMutex; compressed shards are immutable and read
// lock-free — matching the paper's concurrency-control design (§4.1).
package store

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"zipg/internal/bitutil"
	"zipg/internal/core"
	"zipg/internal/layout"
	"zipg/internal/logstore"
	"zipg/internal/memsim"
	"zipg/internal/parallel"
	"zipg/internal/telemetry"
)

// DefaultLogStoreThreshold is the LogStore size that triggers a freeze
// into a compressed shard. The paper used 8 GB on its clusters; the
// default here is scaled to this repository's MB-scale datasets.
const DefaultLogStoreThreshold = 4 << 20

// Config parameterizes a Store.
type Config struct {
	// NumShards is the number of initial hash partitions (the paper's
	// default is one per core). 0 means 1.
	NumShards int
	// SamplingRate is Succinct's α for compressed shards (0 = default).
	SamplingRate int
	// Medium simulates the storage the store's data lives on
	// (nil = unlimited).
	Medium *memsim.Medium
	// LogStoreThreshold triggers rollover (0 = DefaultLogStoreThreshold).
	LogStoreThreshold int64
	// DisableFannedUpdates makes reads consult every fragment instead of
	// following update pointers — the strawman §3.5 argues against.
	// Exists only for the ablation benchmark.
	DisableFannedUpdates bool
	// Codec selects how shard regions (Ψ, SA/ISA samples, offset
	// columns) pick their integer codec. Zero value = bitutil.CodecAuto.
	Codec bitutil.CodecPolicy
	// AutoTuneAlpha lets Compact retune each partition's sampling rate α
	// from its accumulated read counts: hot partitions get denser
	// samples (faster random access), cold ones compress harder.
	AutoTuneAlpha bool
	// DisableGroupCommit makes every append take the store lock
	// individually (the pre-group-commit write path). Exists for the
	// ingest-bench ablation; leave false in production.
	DisableGroupCommit bool
	// BackgroundCompaction moves LogStore rollover compression off the
	// write path: crossing the threshold seals the log into a raw
	// frozen generation (O(1) under the lock) and a background worker
	// compresses it. Implied by CompactInterval/CompactAfterRollovers.
	BackgroundCompaction bool
	// CompactInterval, when positive, runs a full online compaction
	// every interval on the background worker.
	CompactInterval time.Duration
	// CompactAfterRollovers, when positive, runs a full online
	// compaction once that many rollovers have accumulated since the
	// last one.
	CompactAfterRollovers int
	// EventTailLen is the per-partition change-event tail capacity
	// backing Catchup replay (0 = DefaultEventTailLen). See events.go.
	EventTailLen int
}

// backgroundEnabled reports whether the configuration asks for the
// background compaction worker.
func (c Config) backgroundEnabled() bool {
	return c.BackgroundCompaction || c.CompactInterval > 0 || c.CompactAfterRollovers > 0
}

type shardEdgeRef struct {
	shard *core.Shard
	src   layout.NodeID
	etype layout.EdgeType
}

// edgeTriple names one logical delete target: every (src, etype, dst)
// edge. It keys the tombstones laid over sealed raw generations and
// the replay log an online compaction applies at swap.
type edgeTriple struct {
	src   layout.NodeID
	etype layout.EdgeType
	dst   layout.NodeID
}

// fragment is one frozen generation: either a compressed shard or a
// sealed raw LogStore awaiting background compression. Exactly one
// field is non-nil. Fragments are immutable values — every change to
// s.frozen replaces the whole slice (copy-on-write), so readers may
// snapshot the slice header under RLock and keep using it lock-free.
type fragment struct {
	shard *core.Shard
	raw   *logstore.LogStore
}

// Store is a complete single-machine ZipG instance.
type Store struct {
	cfg        Config
	nodeSchema *layout.PropertySchema
	edgeSchema *layout.PropertySchema

	// buildMu serializes heavyweight rebuilds: background compression
	// of sealed generations and online compactions. At most one build
	// is in flight, which is what lets the delete-replay log attribute
	// its entries to exactly one pending swap.
	buildMu sync.Mutex

	mu sync.RWMutex
	// primaries are the current hash partitions. The slice is replaced
	// wholesale (never mutated in place) so read paths may snapshot it
	// under RLock and use it lock-free.
	primaries    []*core.Shard
	frozen       []fragment // rolled-over LogStores, generation order; COW
	log          *logstore.LogStore
	ptrs         map[layout.NodeID][]int // update pointers: node -> generations
	deletedNodes map[layout.NodeID]bool
	deletedPhys  map[shardEdgeRef]map[int]bool // lazily deleted edges in shards
	// rawDels tombstones deletes against sealed raw generations (which
	// are immutable, so their entries cannot be removed in place).
	// Keyed by the sealed LogStore pointer: stable across the
	// generation renumbering a compaction swap performs.
	rawDels map[*logstore.LogStore]map[edgeTriple]bool

	// Delete-replay state for the single in-flight build (see buildMu):
	// deletes that land while a rebuild runs against an older snapshot
	// are recorded here and re-applied to the freshly built fragments
	// at swap, so a rebuild never resurrects deleted data.
	replaying      bool
	replayEdgeDels []edgeTriple
	replayNodeDels map[layout.NodeID]bool

	// shardReads counts reads routed to each primary partition since
	// the last compaction — the per-shard heat signal Compact's α
	// auto-tuner consumes (and then resets). Atomic so the lock-free
	// read paths can bump them.
	shardReads []atomic.Int64
	// tunedAlpha records the per-partition α the last compaction chose
	// (nil until an auto-tuned compaction has run).
	tunedAlpha []int

	rollovers int
	// rolloversSinceCompact drives the background compaction trigger.
	rolloversSinceCompact int

	// events is the change-event state: per-partition sequence counters,
	// bounded tail rings and observers (see events.go). Mutated under
	// s.mu so event order matches mutation visibility order.
	events eventLog

	// wc is the group-commit coordinator for the append path.
	wc writeCoordinator
	// bg is the background compaction worker (nil unless enabled).
	bg        *backgroundCompactor
	closeOnce sync.Once
}

// New builds a store over the initial graph, hash-partitioning nodes (and
// their incident edges) across cfg.NumShards compressed shards.
func New(nodes []layout.Node, edges []layout.Edge, nodeSchema, edgeSchema *layout.PropertySchema, cfg Config) (*Store, error) {
	if cfg.NumShards <= 0 {
		cfg.NumShards = 1
	}
	if cfg.LogStoreThreshold <= 0 {
		cfg.LogStoreThreshold = DefaultLogStoreThreshold
	}
	s := &Store{
		cfg:          cfg,
		nodeSchema:   nodeSchema,
		edgeSchema:   edgeSchema,
		ptrs:         make(map[layout.NodeID][]int),
		deletedNodes: make(map[layout.NodeID]bool),
		deletedPhys:  make(map[shardEdgeRef]map[int]bool),
		rawDels:      make(map[*logstore.LogStore]map[edgeTriple]bool),
		shardReads:   make([]atomic.Int64, cfg.NumShards),
	}
	s.wc.init(cfg.NumShards)
	s.events.init(cfg.NumShards, cfg.EventTailLen)

	partNodes := make([][]layout.Node, cfg.NumShards)
	partEdges := make([][]layout.Edge, cfg.NumShards)
	for _, n := range nodes {
		p := s.partitionOf(n.ID)
		partNodes[p] = append(partNodes[p], n)
	}
	for _, e := range edges {
		// All edge data for a node is co-located with the node (§4.1).
		p := s.partitionOf(e.Src)
		partEdges[p] = append(partEdges[p], e)
	}
	opts := core.Options{SamplingRate: cfg.SamplingRate, Medium: cfg.Medium, Codec: cfg.Codec}
	// Independent shards compress concurrently (each suffix-array build
	// stays sequential internally); the paper builds one shard per core.
	shards, err := parallel.MapErr("store.build_shards", cfg.NumShards, func(p int) (*core.Shard, error) {
		sh, err := core.Build(partNodes[p], partEdges[p], nodeSchema, edgeSchema, opts)
		if err != nil {
			return nil, fmt.Errorf("store: shard %d: %w", p, err)
		}
		return sh, nil
	})
	if err != nil {
		return nil, err
	}
	s.primaries = shards
	s.log = logstore.New(nodeSchema, edgeSchema, cfg.Medium, 0)
	if cfg.backgroundEnabled() {
		s.bg = startBackground(s, cfg.CompactInterval)
	}
	return s, nil
}

// Close stops the background compaction worker (if any) and waits for
// an in-flight rebuild to finish. Safe to call multiple times; a store
// without background compaction needs no Close.
func (s *Store) Close() {
	s.closeOnce.Do(func() {
		if s.bg != nil {
			s.bg.stop()
		}
		// Wait out any rebuild still holding the build lock.
		s.buildMu.Lock()
		s.buildMu.Unlock() //nolint:staticcheck // barrier, not a critical section
	})
}

// partitionOf returns the primary shard index for a node ID. The
// inlined FNV-1a (layout.IDHash) is bit-identical to the hash/fnv
// hasher this used to allocate per call.
func (s *Store) partitionOf(id layout.NodeID) int {
	return int(layout.IDHash(id) % uint32(s.cfg.NumShards))
}

// noteRead attributes one read to a node's primary partition. The
// counters feed Compact's α auto-tuner; one atomic add keeps the read
// paths lock-free.
func (s *Store) noteRead(p int) { s.shardReads[p].Add(1) }

// NodeSchema returns the node property schema.
func (s *Store) NodeSchema() *layout.PropertySchema { return s.nodeSchema }

// EdgeSchema returns the edge property schema.
func (s *Store) EdgeSchema() *layout.PropertySchema { return s.edgeSchema }

// curGen returns the current LogStore generation. Callers hold s.mu.
func (s *Store) curGenLocked() int { return len(s.frozen) }

// addPtrLocked records that gen holds data for node id.
func (s *Store) addPtrLocked(id layout.NodeID, gen int) {
	gens := s.ptrs[id]
	for _, g := range gens {
		if g == gen {
			return
		}
	}
	s.ptrs[id] = append(gens, gen)
}

// AppendNode inserts a new node or replaces an existing node's property
// list (Table 1's append(nodeID, PropertyList); updates are
// delete-followed-by-append per §3.5, which this implements atomically).
//
// Validation and serialization-size accounting run outside any lock;
// publication rides the group committer: the writer enqueues a
// prepared put on its partition's queue and either leads one commit
// (draining every queue into the LogStore in a single short critical
// section) or waits for a concurrent leader to publish it. The
// LogStore append and the update-pointer write still land under the
// same store-lock acquisition: a rollover sneaking between them would
// freeze the data into generation g while the pointer records g+1,
// losing the write.
func (s *Store) AppendNode(id layout.NodeID, props map[string]string) error {
	mOpAppendNode.Inc()
	put, err := logstore.PrepareNodePut(s.nodeSchema, id, props)
	if err != nil {
		return err
	}
	if s.cfg.DisableGroupCommit {
		s.mu.Lock()
		defer s.mu.Unlock()
		if err := s.log.AddNode(id, props); err != nil {
			return err
		}
		delete(s.deletedNodes, id)
		s.addPtrLocked(id, s.curGenLocked())
		s.emitLocked([]Event{{Part: s.partitionOf(id), Kind: EvNodePut, Node: id, Props: props}})
		return s.maybeRolloverLocked()
	}
	return s.submitWrite(s.partitionOf(id), put)
}

// AppendEdge appends one edge (Table 1's append(nodeID, edgeType,
// edgeRecord)). Endpoints that have no node record yet get an empty one
// — the shared semantics across every system in this repository (Neo4j
// and Titan both auto-create endpoints). See AppendNode for the locking
// discipline.
func (s *Store) AppendEdge(e layout.Edge) error {
	mOpAppendEdge.Inc()
	put, err := logstore.PrepareEdgePut(s.edgeSchema, e)
	if err != nil {
		return err
	}
	for _, id := range []layout.NodeID{e.Src, e.Dst} {
		if !s.HasNode(id) {
			if err := s.AppendNode(id, nil); err != nil {
				return err
			}
		}
	}
	if s.cfg.DisableGroupCommit {
		s.mu.Lock()
		defer s.mu.Unlock()
		if err := s.log.AddEdge(e); err != nil {
			return err
		}
		s.addPtrLocked(e.Src, s.curGenLocked())
		s.emitLocked([]Event{{Part: s.partitionOf(e.Src), Kind: EvEdgeAdd, Node: e.Src, Edge: e}})
		return s.maybeRolloverLocked()
	}
	return s.submitWrite(s.partitionOf(e.Src), put)
}

// DeleteNode lazily deletes a node: reads of its properties and edges
// miss from now on. Re-appending the node restores it (and any edges
// that were not individually deleted).
func (s *Store) DeleteNode(id layout.NodeID) {
	mOpDeleteNode.Inc()
	s.mu.Lock()
	s.deletedNodes[id] = true
	// Under the store lock: a rollover swaps s.log, so reading it
	// outside would race (and could drop the removal into a log that
	// was just frozen).
	s.log.RemoveNode(id)
	if s.replaying {
		if s.replayNodeDels == nil {
			s.replayNodeDels = make(map[layout.NodeID]bool)
		}
		s.replayNodeDels[id] = true
	}
	// Tombstone event under the same lock that made the delete visible:
	// subscribers (and Catchup replay) observe deletes in exactly the
	// order readers started missing the node.
	s.emitLocked([]Event{{Part: s.partitionOf(id), Kind: EvNodeDel, Node: id}})
	s.mu.Unlock()
}

// DeleteEdges deletes all (src, etype, dst) edges (Table 1's
// delete(nodeID, edgeType, destinationID)): LogStore entries are removed
// directly; compressed fragments get lazy per-position deletion marks;
// sealed raw generations (immutable) get triple-level tombstones.
func (s *Store) DeleteEdges(src layout.NodeID, etype layout.EdgeType, dst layout.NodeID) int {
	mOpDeleteEdges.Inc()
	s.mu.Lock()
	defer s.mu.Unlock()
	// s.log is only stable under the store lock (rollover swaps it).
	removed := s.log.RemoveEdges(src, etype, dst)
	for _, f := range s.fragmentsOfLocked(src) {
		if f.raw != nil {
			removed += s.tombstoneRawLocked(f.raw, src, etype, dst)
			continue
		}
		sh := f.shard
		ref, ok := sh.Edges().GetEdgeRecord(src, etype)
		if !ok {
			continue
		}
		key := shardEdgeRef{sh, src, etype}
		dsts := sh.Edges().Destinations(&ref)
		for i, d := range dsts {
			if d != dst || s.deletedPhys[key][i] {
				continue
			}
			if s.deletedPhys[key] == nil {
				s.deletedPhys[key] = make(map[int]bool)
			}
			s.deletedPhys[key][i] = true
			removed++
		}
	}
	if s.replaying {
		// A rebuild is running against an older snapshot; record the
		// delete so the swap re-applies it to the fresh fragments.
		s.replayEdgeDels = append(s.replayEdgeDels, edgeTriple{src, etype, dst})
	}
	s.emitLocked([]Event{{
		Part: s.partitionOf(src), Kind: EvEdgeDel, Node: src,
		Edge: layout.Edge{Src: src, Type: etype, Dst: dst},
	}})
	return removed
}

// tombstoneRawLocked records a delete against one sealed raw generation
// and returns how many live edge entries it newly shadows. Callers hold
// s.mu.
func (s *Store) tombstoneRawLocked(raw *logstore.LogStore, src layout.NodeID, etype layout.EdgeType, dst layout.NodeID) int {
	t := edgeTriple{src, etype, dst}
	if s.rawDels[raw][t] {
		return 0
	}
	n := raw.CountEdges(src, etype, dst)
	if n == 0 {
		return 0
	}
	if s.rawDels[raw] == nil {
		s.rawDels[raw] = make(map[edgeTriple]bool)
	}
	s.rawDels[raw][t] = true
	return n
}

// fragmentsOfLocked returns the frozen fragments that may hold data for
// a node: its primary shard plus every frozen generation its update
// pointers name (or, with fanned updates disabled, every frozen
// fragment). Callers hold s.mu.
func (s *Store) fragmentsOfLocked(id layout.NodeID) []fragment {
	p := s.partitionOf(id)
	s.noteRead(p)
	out := []fragment{{shard: s.primaries[p]}}
	if s.cfg.DisableFannedUpdates {
		return append(out, s.frozen...)
	}
	for _, g := range s.ptrs[id] {
		if g < len(s.frozen) {
			out = append(out, s.frozen[g])
		}
	}
	return out
}

// maybeRolloverLocked freezes the LogStore into a new frozen generation
// when it crosses the threshold. With background compaction enabled the
// freeze is O(1): the live log is sealed as an immutable raw fragment
// and the worker compresses it later, off the write path. Otherwise the
// compressed shard is built synchronously under the lock (the seed
// behavior). Callers hold s.mu.
func (s *Store) maybeRolloverLocked() error {
	if s.log.Size() < s.cfg.LogStoreThreshold {
		return nil
	}
	if s.bg != nil {
		s.sealLogLocked()
		s.bg.kick()
		return nil
	}
	tm := telemetry.StartTimer()
	nodes, edges := s.log.Contents()
	sh, err := core.Build(nodes, edges, s.nodeSchema, s.edgeSchema,
		core.Options{SamplingRate: s.cfg.SamplingRate, Medium: s.cfg.Medium, Codec: s.cfg.Codec})
	if err != nil {
		return fmt.Errorf("store: rollover: %w", err)
	}
	frozen := make([]fragment, len(s.frozen), len(s.frozen)+1)
	copy(frozen, s.frozen)
	s.frozen = append(frozen, fragment{shard: sh})
	s.log = logstore.New(s.nodeSchema, s.edgeSchema, s.cfg.Medium, len(s.frozen))
	s.rollovers++
	s.rolloversSinceCompact++
	mRollovers.Inc()
	tm.ObserveInto(mRolloverNs)
	return nil
}

// sealLogLocked freezes the live LogStore into an immutable raw frozen
// generation and starts a fresh live log. The sealed generation keeps
// its generation number (update pointers stay valid: the slot it lands
// in is exactly the gen the live log had). Callers hold s.mu.
func (s *Store) sealLogLocked() {
	frozen := make([]fragment, len(s.frozen), len(s.frozen)+1)
	copy(frozen, s.frozen)
	s.frozen = append(frozen, fragment{raw: s.log})
	s.log = logstore.New(s.nodeSchema, s.edgeSchema, s.cfg.Medium, len(s.frozen))
	s.rollovers++
	s.rolloversSinceCompact++
	mRollovers.Inc()
}

// Rollovers returns how many LogStore freezes have happened.
func (s *Store) Rollovers() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.rollovers
}

// NumFragments returns the total number of fragments (primary shards +
// frozen generations + the live LogStore).
func (s *Store) NumFragments() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.primaries) + len(s.frozen) + 1
}

// FragmentsOf returns how many fragments hold data for node id (1 for
// the primary + one per update-pointer generation). This is the quantity
// Figures 10 and 11 plot.
func (s *Store) FragmentsOf(id layout.NodeID) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return 1 + len(s.ptrs[id])
}

// UpdatePointerStats returns the per-node fragment counts for every node
// that has at least one update pointer.
func (s *Store) UpdatePointerStats() map[layout.NodeID]int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make(map[layout.NodeID]int, len(s.ptrs))
	for id, gens := range s.ptrs {
		out[id] = 1 + len(gens)
	}
	return out
}

// CompressedFootprint returns the total compressed bytes across all
// shards plus the live LogStore's accounted size.
func (s *Store) CompressedFootprint() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var total int64
	for _, sh := range s.primaries {
		total += int64(sh.CompressedSize())
	}
	for _, f := range s.frozen {
		if f.raw != nil {
			total += f.raw.Size()
			continue
		}
		total += int64(f.shard.CompressedSize())
	}
	return total + s.log.Size()
}

// RawSize returns the uncompressed flat-file bytes of the initial shards
// (the denominator of Figure 5's footprint ratio).
func (s *Store) RawSize() int64 {
	var total int64
	for _, sh := range s.primaries {
		total += int64(sh.RawSize())
	}
	return total
}

// nodeGensLocked returns the fragments to consult for node id's property
// record, newest first: LogStore (if pointed at), frozen generations
// descending, then the primary (nil sentinel). Callers hold s.mu.
func (s *Store) nodeGensLocked(id layout.NodeID) []int {
	if s.cfg.DisableFannedUpdates {
		gens := make([]int, len(s.frozen)+1)
		for i := range gens {
			gens[i] = len(s.frozen) - i // current LogStore first, then frozen
		}
		return gens
	}
	gens := append([]int(nil), s.ptrs[id]...)
	sort.Sort(sort.Reverse(sort.IntSlice(gens)))
	return gens
}

// GetNodeProps returns the values of the given properties for node id
// (nil propertyIDs = wildcard: every schema property). The lookup
// consults only the fragments the node's update pointers name — the
// fanned-updates read path.
func (s *Store) GetNodeProps(id layout.NodeID, propertyIDs []string) ([]string, bool) {
	return s.GetNodePropsCtx(context.Background(), id, propertyIDs)
}

// GetNodePropsCtx is GetNodeProps under a trace context: when ctx
// carries an active span (a cluster serve span, say), the read becomes
// a child span in that trace with its time attributed to the logstore
// and succinct_walk phases; otherwise it behaves exactly like
// GetNodeProps (local sampling decision).
func (s *Store) GetNodePropsCtx(ctx context.Context, id layout.NodeID, propertyIDs []string) ([]string, bool) {
	// The disabled path stays free of timers, spans and counter loads —
	// one atomic flag read is the whole overhead.
	if !telemetry.Enabled() {
		return s.getNodeProps(id, propertyIDs, nil)
	}
	// Latency is timed only on span-sampled queries: two time.Now calls
	// per op would dominate the instrumentation budget on a ~µs read,
	// and sampled observations give the same p50/p95/p99. Counters and
	// the fragments histogram still see every operation.
	sp, _ := telemetry.StartSpanCtx(ctx, "store.get_node_props")
	var tm telemetry.Timer
	if sp != nil {
		tm = telemetry.StartTimer()
	}
	vals, ok := s.getNodeProps(id, propertyIDs, sp)
	mOpGetNodeProps.Inc()
	if sp != nil {
		tm.ObserveInto(mLatGetNodeProps)
		sp.End()
	}
	return vals, ok
}

func (s *Store) getNodeProps(id layout.NodeID, propertyIDs []string, sp *telemetry.Span) ([]string, bool) {
	s.noteRead(s.partitionOf(id))
	s.mu.RLock()
	if s.deletedNodes[id] {
		s.mu.RUnlock()
		return nil, false
	}
	gens := s.nodeGensLocked(id)
	log := s.log
	frozen := s.frozen
	primaries := s.primaries
	s.mu.RUnlock()

	consulted := 0
	for _, g := range gens {
		if g == len(frozen) {
			consulted++
			endLog := sp.Phase("logstore")
			props, ok := log.NodeProps(id)
			endLog()
			if ok {
				sp.MarkLogStore()
				observeFragments(sp, consulted)
				return propsToValues(props, propertyIDs, s.nodeSchema), true
			}
			continue
		}
		if g > len(frozen) {
			continue
		}
		consulted++
		if raw := frozen[g].raw; raw != nil {
			endLog := sp.Phase("logstore")
			props, ok := raw.NodeProps(id)
			endLog()
			if ok {
				sp.MarkLogStore()
				observeFragments(sp, consulted)
				return propsToValues(props, propertyIDs, s.nodeSchema), true
			}
			continue
		}
		endWalk := sp.Phase("succinct_walk")
		vals, ok := frozen[g].shard.Nodes().GetProperties(id, propertyIDs)
		endWalk()
		if ok {
			sp.MarkNodeFile()
			sp.AddShard(g)
			recordSuccinctRead(sp, vals)
			observeFragments(sp, consulted)
			return vals, true
		}
	}
	p := s.partitionOf(id)
	endWalk := sp.Phase("succinct_walk")
	vals, ok := primaries[p].Nodes().GetProperties(id, propertyIDs)
	endWalk()
	if ok {
		sp.MarkNodeFile()
		sp.AddShard(p)
		recordSuccinctRead(sp, vals)
	}
	observeFragments(sp, consulted+1)
	return vals, ok
}

// observeFragments records the fragments-per-read distribution on
// span-sampled queries only (the same sampling as latency — see
// GetNodeProps); the distribution's shape and mean are what matters,
// and sampling keeps the per-read cost to one nil check.
func observeFragments(sp *telemetry.Span, consulted int) {
	if sp != nil {
		mFragmentsPerRead.Observe(int64(consulted))
	}
}

// recordSuccinctRead accounts bytes materialized out of a compressed
// shard, on both the global counter and the query's span.
func recordSuccinctRead(sp *telemetry.Span, vals []string) {
	if !telemetry.Enabled() {
		return
	}
	var n int64
	for _, v := range vals {
		n += int64(len(v))
	}
	mSuccinctBytes.Add(n)
	sp.AddBytes(n)
}

// GetAllNodeProps returns the node's full property map.
func (s *Store) GetAllNodeProps(id layout.NodeID) (map[string]string, bool) {
	vals, ok := s.GetNodeProps(id, nil)
	if !ok {
		return nil, false
	}
	props := make(map[string]string)
	for i, pid := range s.nodeSchema.IDs() {
		if vals[i] != "" {
			props[pid] = vals[i]
		}
	}
	return props, true
}

// propsToValues projects a property map onto the requested IDs (nil =
// all schema IDs in order).
func propsToValues(props map[string]string, propertyIDs []string, schema *layout.PropertySchema) []string {
	if len(propertyIDs) == 0 {
		propertyIDs = schema.IDs()
	}
	out := make([]string, len(propertyIDs))
	for i, pid := range propertyIDs {
		out[i] = props[pid]
	}
	return out
}

// pidScratch pools the property-ID slices NodeMatches builds; the
// FindNodes verification step and neighbor property filters call it once
// per candidate node, so the slice churn is worth recycling.
var pidScratch = sync.Pool{New: func() any { return new([]string) }}

// NodeMatches reports whether node id currently has every given
// property value (resolving the newest version of the node).
func (s *Store) NodeMatches(id layout.NodeID, props map[string]string) bool {
	return s.NodeMatchesCtx(context.Background(), id, props)
}

// NodeMatchesCtx is NodeMatches under a trace context (see
// GetNodePropsCtx).
func (s *Store) NodeMatchesCtx(ctx context.Context, id layout.NodeID, props map[string]string) bool {
	if len(props) == 0 {
		return true
	}
	sp := pidScratch.Get().(*[]string)
	pids := (*sp)[:0]
	for pid := range props {
		pids = append(pids, pid)
	}
	*sp = pids
	defer pidScratch.Put(sp)
	vals, ok := s.GetNodePropsCtx(ctx, id, pids)
	if !ok {
		return false
	}
	for i, pid := range pids {
		if vals[i] != props[pid] {
			return false
		}
	}
	return true
}

// FindNodes returns the IDs of all live nodes whose current properties
// match every pair (Table 1's get_node_ids). Per §4.1, this is the one
// query that must touch all fragments — so the per-fragment compressed
// searches fan out over the shared worker pool, as does the stale-match
// re-verification, with nothing but the fragment-set snapshot and the
// final merge running under the store lock. Results are deterministic
// across pool sizes: per-fragment hit lists come back in fragment order
// and the output is sorted by ID.
func (s *Store) FindNodes(props map[string]string) []layout.NodeID {
	if len(props) == 0 {
		return nil
	}
	mOpFindNodes.Inc()
	tm := telemetry.StartTimer()
	defer tm.ObserveInto(mLatFindNodes)
	s.mu.RLock()
	primaries := s.primaries
	frozen := s.frozen
	log := s.log
	s.mu.RUnlock()

	// One task per fragment; each collects hits into its own local
	// slice so the dedup below is a single merge pass.
	nFrags := len(primaries) + len(frozen) + 1
	perFrag := parallel.Map("store.find_nodes", nFrags, func(i int) []layout.NodeID {
		switch {
		case i < len(primaries):
			return primaries[i].Nodes().FindNodes(props)
		case i < len(primaries)+len(frozen):
			f := frozen[i-len(primaries)]
			if f.raw != nil {
				return f.raw.FindNodes(props)
			}
			return f.shard.Nodes().FindNodes(props)
		default:
			return log.FindNodes(props)
		}
	})
	seen := make(map[layout.NodeID]bool)
	var cands []layout.NodeID
	for _, ids := range perFrag {
		for _, id := range ids {
			if !seen[id] {
				seen[id] = true
				cands = append(cands, id)
			}
		}
	}
	// Verify each candidate against the node's current version outside
	// any lock: a match in an old fragment may be stale. Each check is
	// an independent fanned-updates read, so it fans out too.
	matched := parallel.Map("store.verify_nodes", len(cands), func(i int) bool {
		id := cands[i]
		s.mu.RLock()
		deleted := s.deletedNodes[id]
		s.mu.RUnlock()
		return !deleted && s.NodeMatches(id, props)
	})
	var out []layout.NodeID
	for i, ok := range matched {
		if ok {
			out = append(out, cands[i])
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// HasNode reports whether a live property record exists for id.
func (s *Store) HasNode(id layout.NodeID) bool {
	_, ok := s.GetNodeProps(id, []string{})
	return ok
}

// HasNodeCtx is HasNode under a trace context (see GetNodePropsCtx).
func (s *Store) HasNodeCtx(ctx context.Context, id layout.NodeID) bool {
	_, ok := s.GetNodePropsCtx(ctx, id, []string{})
	return ok
}

// edgeHit is one fragment-local edge-search match: the decoded edge
// plus the coordinates needed to check its lazy-deletion mark (shard
// hits) or raw-generation tombstone (sealed-log hits).
type edgeHit struct {
	sh        *core.Shard        // non-nil for a compressed-shard hit
	raw       *logstore.LogStore // non-nil for a sealed raw-generation hit
	timeOrder int
	e         layout.Edge
}

// FindEdges returns every live edge whose property list matches all
// pairs exactly — the edge-property search §3.3 sketches as a NodeFile-
// style extension. Like FindNodes it touches every fragment, so the
// per-fragment compressed scans and edge-data decodes fan out over the
// shared pool against a snapshot of the fragment set; the store lock is
// held only for that snapshot and for one short deletion-filter pass at
// the end. (It used to be held across the entire multi-fragment scan,
// blocking every writer for the duration of a long search.)
func (s *Store) FindEdges(props map[string]string) []layout.Edge {
	if len(props) == 0 {
		return nil
	}
	mOpFindEdges.Inc()
	tm := telemetry.StartTimer()
	defer tm.ObserveInto(mLatFindEdges)
	s.mu.RLock()
	frags := make([]fragment, 0, len(s.primaries)+len(s.frozen))
	for _, sh := range s.primaries {
		frags = append(frags, fragment{shard: sh})
	}
	frags = append(frags, s.frozen...)
	log := s.log
	s.mu.RUnlock()

	perFrag := parallel.Map("store.find_edges", len(frags)+1, func(i int) []edgeHit {
		if i == len(frags) {
			es := log.FindEdges(props)
			hits := make([]edgeHit, 0, len(es))
			for _, e := range es {
				hits = append(hits, edgeHit{e: e})
			}
			return hits
		}
		if raw := frags[i].raw; raw != nil {
			es := raw.FindEdges(props)
			hits := make([]edgeHit, 0, len(es))
			for _, e := range es {
				hits = append(hits, edgeHit{raw: raw, e: e})
			}
			return hits
		}
		sh := frags[i].shard
		var hits []edgeHit
		// Matches cluster by (src, type); locating a record is itself a
		// compressed search, so resolve each record once and share the
		// ref (and its cached field windows) across its matches.
		type srcType struct {
			src layout.NodeID
			t   layout.EdgeType
		}
		refs := make(map[srcType]*layout.EdgeRecordRef)
		for _, m := range sh.FindEdges(props) {
			k := srcType{m.Src, m.Type}
			ref, seen := refs[k]
			if !seen {
				if r, ok := sh.Edges().GetEdgeRecord(m.Src, m.Type); ok {
					ref = &r
				}
				refs[k] = ref
			}
			if ref == nil {
				continue
			}
			d, err := sh.Edges().GetEdgeData(ref, m.TimeOrder)
			if err != nil {
				continue
			}
			hits = append(hits, edgeHit{sh: sh, timeOrder: m.TimeOrder, e: layout.Edge{
				Src: m.Src, Dst: d.Dst, Type: m.Type,
				Timestamp: d.Timestamp, Props: d.Props,
			}})
		}
		return hits
	})

	s.mu.RLock()
	var out []layout.Edge
	for _, hits := range perFrag {
		for _, h := range hits {
			if s.deletedNodes[h.e.Src] {
				continue
			}
			if h.sh != nil && s.deletedPhys[shardEdgeRef{h.sh, h.e.Src, h.e.Type}][h.timeOrder] {
				continue
			}
			if h.raw != nil && s.rawDels[h.raw][edgeTriple{h.e.Src, h.e.Type, h.e.Dst}] {
				continue
			}
			out = append(out, h.e)
		}
	}
	s.mu.RUnlock()
	// Stable sort on a (src, type, ts, dst) key over the fragment-ordered
	// hit lists: identical output at every pool size.
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Src != out[j].Src {
			return out[i].Src < out[j].Src
		}
		if out[i].Type != out[j].Type {
			return out[i].Type < out[j].Type
		}
		if out[i].Timestamp != out[j].Timestamp {
			return out[i].Timestamp < out[j].Timestamp
		}
		return out[i].Dst < out[j].Dst
	})
	return out
}
