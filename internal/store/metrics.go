package store

import "zipg/internal/telemetry"

// Telemetry series for the single-machine store. Instances are resolved
// once at init so the hot path never does a registry lookup; every
// mutator is a no-op while telemetry is disabled (see package
// telemetry).
const (
	helpStoreOps     = "Store operations executed, by Table 1 op."
	helpStoreLatency = "Store operation latency in nanoseconds, by op."
)

var (
	mOpGetNodeProps  = telemetry.NewCounterL("zipg_store_ops_total", `op="get_node_props"`, helpStoreOps)
	mOpNeighborIDs   = telemetry.NewCounterL("zipg_store_ops_total", `op="get_neighbor_ids"`, helpStoreOps)
	mOpFindNodes     = telemetry.NewCounterL("zipg_store_ops_total", `op="get_node_ids"`, helpStoreOps)
	mOpFindEdges     = telemetry.NewCounterL("zipg_store_ops_total", `op="find_edges"`, helpStoreOps)
	mOpGetEdgeRecord = telemetry.NewCounterL("zipg_store_ops_total", `op="get_edge_record"`, helpStoreOps)
	mOpAppendNode    = telemetry.NewCounterL("zipg_store_ops_total", `op="append_node"`, helpStoreOps)
	mOpAppendEdge    = telemetry.NewCounterL("zipg_store_ops_total", `op="append_edge"`, helpStoreOps)
	mOpDeleteNode    = telemetry.NewCounterL("zipg_store_ops_total", `op="delete_node"`, helpStoreOps)
	mOpDeleteEdges   = telemetry.NewCounterL("zipg_store_ops_total", `op="delete_edges"`, helpStoreOps)

	mLatGetNodeProps = telemetry.NewHistogramL("zipg_store_latency_ns", `op="get_node_props"`, helpStoreLatency)
	mLatNeighborIDs  = telemetry.NewHistogramL("zipg_store_latency_ns", `op="get_neighbor_ids"`, helpStoreLatency)
	mLatFindNodes    = telemetry.NewHistogramL("zipg_store_latency_ns", `op="get_node_ids"`, helpStoreLatency)
	mLatFindEdges    = telemetry.NewHistogramL("zipg_store_latency_ns", `op="find_edges"`, helpStoreLatency)

	// mFragmentsPerRead is the paper's fanned-updates quantity: how many
	// fragments (primary + frozen generations + LogStore) one node-prop
	// read consulted (§3.5, Figures 10-11).
	mFragmentsPerRead = telemetry.NewHistogram("zipg_store_fragments_per_read",
		"Fragments consulted per node-property read (fanned updates).")

	// mSuccinctBytes counts property/edge bytes materialized out of
	// Succinct-compressed shards (not LogStore hits).
	mSuccinctBytes = telemetry.NewCounter("zipg_store_succinct_bytes_total",
		"Bytes extracted from Succinct-compressed shards.")

	// Group-commit write path (see groupcommit.go).
	mGroupBatches = telemetry.NewCounter("zipg_group_commit_batches_total",
		"Group-commit batches published (one store-lock acquisition each).")
	mGroupRecords = telemetry.NewCounter("zipg_group_commit_records_total",
		"Records published through group-commit batches.")
	// mWriteStallNs is the time one writer spent between enqueueing its
	// put and the put becoming visible — queueing plus the commit's
	// critical section. The writer-visible cost of the write path.
	mWriteStallNs = telemetry.NewHistogram("zipg_write_stall_ns",
		"Per-write stall from enqueue to visibility, in nanoseconds.")
	// mCompactionPauseNs is the time an online compaction held the store
	// write lock (the seal snapshot plus the swap) — the only windows
	// where queries and writes actually stall. The rebuild itself runs
	// outside the lock and does not count.
	mCompactionPauseNs = telemetry.NewHistogram("zipg_compaction_pause_ns",
		"Store-lock hold time of online compaction's seal and swap phases, in nanoseconds.")

	mRollovers = telemetry.NewCounter("zipg_store_rollovers_total",
		"LogStore freezes into compressed shards.")
	mRolloverNs = telemetry.NewHistogram("zipg_store_rollover_ns",
		"LogStore freeze (compress) duration in nanoseconds.")
	mCompactions = telemetry.NewCounter("zipg_store_compactions_total",
		"Full store compactions (garbage collections).")
	mCompactionNs = telemetry.NewHistogram("zipg_store_compaction_ns",
		"Full compaction duration in nanoseconds.")

	// α auto-tuning decisions at compaction, by direction: denser
	// (smaller α for hot partitions), sparser (larger α for cold ones)
	// or base (kept the configured rate).
	mAlphaDenser = telemetry.NewCounterL("zipg_alpha_tuned_total", `dir="denser"`,
		helpAlphaTuned)
	mAlphaSparser = telemetry.NewCounterL("zipg_alpha_tuned_total", `dir="sparser"`,
		helpAlphaTuned)
	mAlphaBase = telemetry.NewCounterL("zipg_alpha_tuned_total", `dir="base"`,
		helpAlphaTuned)
)

const helpAlphaTuned = "Per-partition sampling-rate retunes at compaction, by direction."
