package store

import (
	"bytes"

	"reflect"
	"strings"
	"testing"

	"zipg/internal/layout"
)

// mutatedStore builds a store with every kind of state to persist:
// multiple shards, rollovers, live LogStore data, update pointers,
// deleted nodes and deleted edges.
func mutatedStore(t *testing.T) *Store {
	t.Helper()
	ns, es := testSchemas(t)
	nodes, edges := testGraph(30, 120, 3)
	s, err := New(nodes, edges, ns, es, Config{
		NumShards:         3,
		SamplingRate:      8,
		LogStoreThreshold: 3000,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 60; i++ {
		if err := s.AppendEdge(layout.Edge{Src: int64(i % 10), Dst: int64(500 + i), Type: 1, Timestamp: int64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.AppendNode(100, map[string]string{"name": "persisted"}); err != nil {
		t.Fatal(err)
	}
	s.DeleteNode(7)
	s.DeleteEdges(edges[0].Src, edges[0].Type, edges[0].Dst)
	if s.Rollovers() == 0 {
		t.Fatal("fixture should have rolled over")
	}
	return s
}

func TestSaveLoadRoundTrip(t *testing.T) {
	s := mutatedStore(t)
	blob, err := s.SaveBytes()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Load(bytes.NewReader(blob), nil)
	if err != nil {
		t.Fatal(err)
	}

	// Every node resolves identically (including deleted and appended).
	for id := int64(0); id < 110; id++ {
		wantProps, wantOK := s.GetNodeProps(id, nil)
		gotProps, gotOK := got.GetNodeProps(id, nil)
		if wantOK != gotOK || !reflect.DeepEqual(wantProps, gotProps) {
			t.Fatalf("node %d: %v,%v want %v,%v", id, gotProps, gotOK, wantProps, wantOK)
		}
	}
	// Edge records agree, including merged fragments and deletions.
	for src := int64(0); src < 30; src++ {
		for ty := int64(0); ty < 3; ty++ {
			wantRec, wantOK := s.GetEdgeRecord(src, ty)
			gotRec, gotOK := got.GetEdgeRecord(src, ty)
			if wantOK != gotOK {
				t.Fatalf("record (%d,%d): ok %v want %v", src, ty, gotOK, wantOK)
			}
			if !wantOK {
				continue
			}
			if wantRec.Count() != gotRec.Count() {
				t.Fatalf("record (%d,%d): count %d want %d", src, ty, gotRec.Count(), wantRec.Count())
			}
			for i := 0; i < wantRec.Count(); i++ {
				wd, _ := wantRec.GetEdgeData(i)
				gd, _ := gotRec.GetEdgeData(i)
				if wd.Timestamp != gd.Timestamp {
					t.Fatalf("record (%d,%d)[%d]: ts %d want %d", src, ty, i, gd.Timestamp, wd.Timestamp)
				}
			}
		}
	}
	// Fragmentation state carried over.
	if got.Rollovers() != s.Rollovers() || got.NumFragments() != s.NumFragments() {
		t.Fatalf("fragments %d/%d want %d/%d",
			got.Rollovers(), got.NumFragments(), s.Rollovers(), s.NumFragments())
	}
	for id := int64(0); id < 10; id++ {
		if got.FragmentsOf(id) != s.FragmentsOf(id) {
			t.Fatalf("FragmentsOf(%d) = %d want %d", id, got.FragmentsOf(id), s.FragmentsOf(id))
		}
	}
	// The loaded store keeps working: writes and rollovers continue.
	for i := 0; i < 50; i++ {
		if err := got.AppendEdge(layout.Edge{Src: 5, Dst: int64(900 + i), Type: 2, Timestamp: int64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	rec, ok := got.GetEdgeRecord(5, 2)
	if !ok || rec.Count() < 50 {
		t.Fatalf("appends after load missing: %v", ok)
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := Load(strings.NewReader("not a store"), nil); err == nil {
		t.Error("bad magic should fail")
	}
	if _, err := Load(strings.NewReader(persistMagic+"garbage"), nil); err == nil {
		t.Error("corrupt body should fail")
	}
	if _, err := Load(strings.NewReader(""), nil); err == nil {
		t.Error("empty stream should fail")
	}
}

func TestSaveDeterministicQueries(t *testing.T) {
	// Save twice; loads must agree with each other query-for-query.
	s := mutatedStore(t)
	b1, err := s.SaveBytes()
	if err != nil {
		t.Fatal(err)
	}
	g1, err := Load(bytes.NewReader(b1), nil)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := s.SaveBytes()
	if err != nil {
		t.Fatal(err)
	}
	g2, err := Load(bytes.NewReader(b2), nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, props := range []map[string]string{{"location": "Ithaca"}, {"name": "persisted"}} {
		if !reflect.DeepEqual(g1.FindNodes(props), g2.FindNodes(props)) {
			t.Fatalf("loads disagree on FindNodes(%v)", props)
		}
	}
}
