package store

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"zipg/internal/layout"
)

func testSchemas(t testing.TB) (ns, es *layout.PropertySchema) {
	t.Helper()
	var err error
	ns, err = layout.NewPropertySchema([]string{"age", "location", "name"}, 100)
	if err != nil {
		t.Fatal(err)
	}
	es, err = layout.NewPropertySchema([]string{"note", "weight"}, 100)
	if err != nil {
		t.Fatal(err)
	}
	return ns, es
}

// testGraph builds a deterministic small graph.
func testGraph(nNodes, nEdges int, seed int64) ([]layout.Node, []layout.Edge) {
	rng := rand.New(rand.NewSource(seed))
	cities := []string{"Ithaca", "Berkeley", "Chicago"}
	nodes := make([]layout.Node, nNodes)
	for i := range nodes {
		nodes[i] = layout.Node{
			ID: int64(i),
			Props: map[string]string{
				"age":      fmt.Sprint(20 + i%40),
				"location": cities[i%3],
				"name":     fmt.Sprintf("user%d", i),
			},
		}
	}
	edges := make([]layout.Edge, nEdges)
	for i := range edges {
		edges[i] = layout.Edge{
			Src:       int64(rng.Intn(nNodes)),
			Dst:       int64(rng.Intn(nNodes)),
			Type:      int64(rng.Intn(3)),
			Timestamp: int64(rng.Intn(10000)),
			Props:     map[string]string{"weight": fmt.Sprint(rng.Intn(10))},
		}
	}
	return nodes, edges
}

func newTestStore(t testing.TB, nNodes, nEdges int, shards int) (*Store, []layout.Node, []layout.Edge) {
	t.Helper()
	ns, es := testSchemas(t)
	nodes, edges := testGraph(nNodes, nEdges, 1)
	s, err := New(nodes, edges, ns, es, Config{NumShards: shards, SamplingRate: 8})
	if err != nil {
		t.Fatal(err)
	}
	return s, nodes, edges
}

func TestGetNodeProps(t *testing.T) {
	s, nodes, _ := newTestStore(t, 50, 200, 4)
	for _, n := range nodes {
		vals, ok := s.GetNodeProps(n.ID, []string{"location", "age"})
		if !ok {
			t.Fatalf("node %d missing", n.ID)
		}
		if vals[0] != n.Props["location"] || vals[1] != n.Props["age"] {
			t.Fatalf("node %d props = %v", n.ID, vals)
		}
		props, _ := s.GetAllNodeProps(n.ID)
		if !reflect.DeepEqual(props, n.Props) {
			t.Fatalf("GetAllNodeProps(%d) = %v, want %v", n.ID, props, n.Props)
		}
	}
	if _, ok := s.GetNodeProps(9999, nil); ok {
		t.Fatal("missing node found")
	}
}

func TestFindNodesAcrossShards(t *testing.T) {
	s, nodes, _ := newTestStore(t, 60, 100, 4)
	got := s.FindNodes(map[string]string{"location": "Ithaca"})
	var want []int64
	for _, n := range nodes {
		if n.Props["location"] == "Ithaca" {
			want = append(want, n.ID)
		}
	}
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("FindNodes = %v, want %v", got, want)
	}
}

// refEdges computes the expected live (src,etype) edges sorted by ts.
func refEdges(edges []layout.Edge, src, etype int64) []layout.Edge {
	var out []layout.Edge
	for _, e := range edges {
		if e.Src == src && e.Type == etype {
			out = append(out, e)
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Timestamp < out[j].Timestamp })
	return out
}

func TestEdgeRecordStatic(t *testing.T) {
	s, _, edges := newTestStore(t, 30, 300, 3)
	for src := int64(0); src < 30; src++ {
		for etype := int64(0); etype < 3; etype++ {
			want := refEdges(edges, src, etype)
			rec, ok := s.GetEdgeRecord(src, etype)
			if len(want) == 0 {
				if ok {
					t.Fatalf("(%d,%d): unexpected record", src, etype)
				}
				continue
			}
			if !ok || rec.Count() != len(want) {
				t.Fatalf("(%d,%d): count=%d want %d", src, etype, rec.Count(), len(want))
			}
			for i, e := range want {
				d, err := rec.GetEdgeData(i)
				if err != nil {
					t.Fatal(err)
				}
				if d.Dst != e.Dst || d.Timestamp != e.Timestamp {
					t.Fatalf("(%d,%d)[%d]: got %+v want dst=%d ts=%d", src, etype, i, d, e.Dst, e.Timestamp)
				}
			}
		}
	}
}

func TestEdgeRecordsWildcard(t *testing.T) {
	s, _, edges := newTestStore(t, 20, 200, 2)
	for src := int64(0); src < 20; src++ {
		types := map[int64]int{}
		for _, e := range edges {
			if e.Src == src {
				types[e.Type]++
			}
		}
		recs := s.GetEdgeRecords(src)
		if len(recs) != len(types) {
			t.Fatalf("src %d: %d records, want %d", src, len(recs), len(types))
		}
		for _, r := range recs {
			if r.Count() != types[r.Type] {
				t.Fatalf("src %d type %d: count %d want %d", src, r.Type, r.Count(), types[r.Type])
			}
		}
	}
}

func TestEdgeRangeAndNeighbors(t *testing.T) {
	s, nodes, edges := newTestStore(t, 40, 400, 2)
	rec, ok := s.GetEdgeRecord(edges[0].Src, edges[0].Type)
	if !ok {
		t.Fatal("record missing")
	}
	want := refEdges(edges, edges[0].Src, edges[0].Type)
	lo, hi := int64(2000), int64(7000)
	beg, end := rec.GetEdgeRange(lo, hi)
	var wantBeg, wantEnd int
	for _, e := range want {
		if e.Timestamp < lo {
			wantBeg++
		}
		if e.Timestamp < hi {
			wantEnd++
		}
	}
	if beg != wantBeg || end != wantEnd {
		t.Fatalf("range [%d,%d) want [%d,%d)", beg, end, wantBeg, wantEnd)
	}

	// Neighbors with a property filter.
	src := edges[0].Src
	gotN := s.NeighborIDs(src, -1, map[string]string{"location": "Berkeley"})
	wantSet := map[int64]bool{}
	for _, e := range edges {
		if e.Src == src && nodes[e.Dst].Props["location"] == "Berkeley" {
			wantSet[e.Dst] = true
		}
	}
	var wantN []int64
	for id := range wantSet {
		wantN = append(wantN, id)
	}
	sort.Slice(wantN, func(i, j int) bool { return wantN[i] < wantN[j] })
	if !reflect.DeepEqual(gotN, wantN) {
		t.Fatalf("NeighborIDs = %v, want %v", gotN, wantN)
	}
}

func TestAppendNodeNewAndUpdate(t *testing.T) {
	s, _, _ := newTestStore(t, 10, 20, 2)
	// Brand-new node lands in the LogStore and is immediately visible.
	if err := s.AppendNode(100, map[string]string{"name": "newbie", "location": "Ithaca"}); err != nil {
		t.Fatal(err)
	}
	props, ok := s.GetAllNodeProps(100)
	if !ok || props["name"] != "newbie" {
		t.Fatalf("new node invisible: %v %v", props, ok)
	}
	// Update of an existing node supersedes the compressed version.
	if err := s.AppendNode(3, map[string]string{"name": "renamed", "location": "Chicago"}); err != nil {
		t.Fatal(err)
	}
	props, _ = s.GetAllNodeProps(3)
	if props["name"] != "renamed" || props["location"] != "Chicago" {
		t.Fatalf("update not visible: %v", props)
	}
	if props["age"] != "" {
		t.Fatalf("replacement should drop old props, got age=%q", props["age"])
	}
	// FindNodes must not return the node for its stale value.
	for _, id := range s.FindNodes(map[string]string{"name": "user3"}) {
		if id == 3 {
			t.Fatal("FindNodes returned stale match")
		}
	}
	// ...but must return it for the new value.
	found := false
	for _, id := range s.FindNodes(map[string]string{"name": "renamed"}) {
		found = found || id == 3
	}
	if !found {
		t.Fatal("FindNodes missed updated node")
	}
	if s.FragmentsOf(3) != 2 {
		t.Fatalf("FragmentsOf(3) = %d, want 2", s.FragmentsOf(3))
	}
}

func TestAppendEdgesMergeWithStatic(t *testing.T) {
	s, _, edges := newTestStore(t, 20, 100, 2)
	src, etype := edges[0].Src, edges[0].Type
	static := refEdges(edges, src, etype)
	// Append one edge with a timestamp in the middle of the static range
	// and one before everything.
	mid := static[len(static)/2].Timestamp + 1
	for _, e := range []layout.Edge{
		{Src: src, Dst: 999, Type: etype, Timestamp: mid},
		{Src: src, Dst: 998, Type: etype, Timestamp: 0},
	} {
		if err := s.AppendEdge(e); err != nil {
			t.Fatal(err)
		}
	}
	rec, ok := s.GetEdgeRecord(src, etype)
	if !ok || rec.Count() != len(static)+2 {
		t.Fatalf("count = %d, want %d", rec.Count(), len(static)+2)
	}
	// Global time order: edge with ts=0 must be first.
	d, err := rec.GetEdgeData(0)
	if err != nil {
		t.Fatal(err)
	}
	if d.Dst != 998 {
		t.Fatalf("first edge dst=%d, want 998 (merged order)", d.Dst)
	}
	// Monotone timestamps across the whole merged record.
	var prev int64 = -1
	for i := 0; i < rec.Count(); i++ {
		d, err := rec.GetEdgeData(i)
		if err != nil {
			t.Fatal(err)
		}
		if d.Timestamp < prev {
			t.Fatalf("merged timestamps unsorted at %d", i)
		}
		prev = d.Timestamp
	}
}

func TestDeleteNode(t *testing.T) {
	s, _, edges := newTestStore(t, 20, 100, 2)
	victim := edges[0].Src
	s.DeleteNode(victim)
	if _, ok := s.GetNodeProps(victim, nil); ok {
		t.Fatal("deleted node readable")
	}
	if _, ok := s.GetEdgeRecord(victim, edges[0].Type); ok {
		t.Fatal("deleted node's edges readable")
	}
	// Deleted node disappears from neighbor lists.
	for src := int64(0); src < 20; src++ {
		for _, n := range s.NeighborIDs(src, -1, nil) {
			if n == victim {
				t.Fatal("deleted node in neighbor list")
			}
		}
	}
	// And from FindNodes.
	for _, id := range s.FindNodes(map[string]string{"name": fmt.Sprintf("user%d", victim)}) {
		if id == victim {
			t.Fatal("deleted node in FindNodes")
		}
	}
	// Re-creating restores it.
	if err := s.AppendNode(victim, map[string]string{"name": "back"}); err != nil {
		t.Fatal(err)
	}
	if props, ok := s.GetAllNodeProps(victim); !ok || props["name"] != "back" {
		t.Fatal("recreated node invisible")
	}
}

func TestDeleteEdges(t *testing.T) {
	s, _, edges := newTestStore(t, 20, 200, 2)
	src, etype := edges[0].Src, edges[0].Type
	static := refEdges(edges, src, etype)
	dst := static[0].Dst
	wantRemoved := 0
	for _, e := range static {
		if e.Dst == dst {
			wantRemoved++
		}
	}
	if got := s.DeleteEdges(src, etype, dst); got != wantRemoved {
		t.Fatalf("DeleteEdges removed %d, want %d", got, wantRemoved)
	}
	rec, ok := s.GetEdgeRecord(src, etype)
	if len(static) == wantRemoved {
		if ok {
			t.Fatal("fully deleted record still present")
		}
		return
	}
	if !ok || rec.Count() != len(static)-wantRemoved {
		t.Fatalf("count after delete = %d, want %d", rec.Count(), len(static)-wantRemoved)
	}
	for i := 0; i < rec.Count(); i++ {
		d, err := rec.GetEdgeData(i)
		if err != nil {
			t.Fatal(err)
		}
		if d.Dst == dst {
			t.Fatal("deleted edge visible")
		}
	}
	// Deleting a LogStore edge too.
	if err := s.AppendEdge(layout.Edge{Src: src, Dst: 777, Type: etype, Timestamp: 42}); err != nil {
		t.Fatal(err)
	}
	if got := s.DeleteEdges(src, etype, 777); got != 1 {
		t.Fatalf("log delete removed %d, want 1", got)
	}
	// Idempotent: deleting again removes nothing.
	if got := s.DeleteEdges(src, etype, dst); got != 0 {
		t.Fatalf("second delete removed %d, want 0", got)
	}
}

func TestRolloverAndFannedUpdates(t *testing.T) {
	ns, es := testSchemas(t)
	nodes, edges := testGraph(20, 50, 2)
	s, err := New(nodes, edges, ns, es, Config{
		NumShards:         2,
		SamplingRate:      8,
		LogStoreThreshold: 2000, // tiny: force frequent rollovers
	})
	if err != nil {
		t.Fatal(err)
	}
	// Write enough to force several rollovers, repeatedly touching node 5.
	for i := 0; i < 200; i++ {
		e := layout.Edge{Src: 5, Dst: int64(1000 + i), Type: 0, Timestamp: int64(i)}
		if err := s.AppendEdge(e); err != nil {
			t.Fatal(err)
		}
		if i%10 == 0 {
			if err := s.AppendNode(int64(2000+i), map[string]string{"name": fmt.Sprint(i)}); err != nil {
				t.Fatal(err)
			}
		}
	}
	if s.Rollovers() == 0 {
		t.Fatal("expected at least one rollover")
	}
	// Node 5's record must contain static edges + all 200 appended ones.
	static := refEdges(edges, 5, 0)
	rec, ok := s.GetEdgeRecord(5, 0)
	if !ok || rec.Count() != len(static)+200 {
		t.Fatalf("count = %d, want %d", rec.Count(), len(static)+200)
	}
	// All appended destinations visible, in time order across fragments.
	dsts := map[int64]bool{}
	var prev int64 = -1
	for i := 0; i < rec.Count(); i++ {
		d, err := rec.GetEdgeData(i)
		if err != nil {
			t.Fatal(err)
		}
		if d.Timestamp < prev {
			t.Fatalf("timestamps unsorted at %d", i)
		}
		prev = d.Timestamp
		dsts[d.Dst] = true
	}
	for i := 0; i < 200; i++ {
		if !dsts[int64(1000+i)] {
			t.Fatalf("appended edge to %d lost after rollover", 1000+i)
		}
	}
	// Fragmentation grows but stays far below the fragment count.
	if f := s.FragmentsOf(5); f < 3 {
		t.Fatalf("FragmentsOf(5) = %d, want >= 3 after rollovers", f)
	}
	// Nodes never written must have exactly one fragment.
	if f := s.FragmentsOf(7); f != 1 {
		t.Fatalf("FragmentsOf(7) = %d, want 1", f)
	}
	// Appended nodes visible after their LogStore froze.
	if props, ok := s.GetAllNodeProps(2000); !ok || props["name"] != "0" {
		t.Fatalf("node 2000 lost after rollover: %v %v", props, ok)
	}
}

func TestGetEdgeRangeWildcards(t *testing.T) {
	s, _, edges := newTestStore(t, 10, 100, 1)
	src, etype := edges[0].Src, edges[0].Type
	rec, _ := s.GetEdgeRecord(src, etype)
	beg, end := rec.GetEdgeRange(0, math.MaxInt64)
	if beg != 0 || end != rec.Count() {
		t.Fatalf("wildcard range = [%d,%d), want [0,%d)", beg, end, rec.Count())
	}
}

func TestEdgeDataOutOfRange(t *testing.T) {
	s, _, edges := newTestStore(t, 10, 50, 1)
	rec, _ := s.GetEdgeRecord(edges[0].Src, edges[0].Type)
	if _, err := rec.GetEdgeData(-1); err == nil {
		t.Error("negative time order should fail")
	}
	if _, err := rec.GetEdgeData(rec.Count()); err == nil {
		t.Error("out-of-range time order should fail")
	}
}

func TestNodeMatches(t *testing.T) {
	s, nodes, _ := newTestStore(t, 10, 10, 2)
	n := nodes[4]
	if !s.NodeMatches(n.ID, map[string]string{"location": n.Props["location"]}) {
		t.Error("should match")
	}
	if s.NodeMatches(n.ID, map[string]string{"location": "Nowhere"}) {
		t.Error("should not match")
	}
	if !s.NodeMatches(n.ID, nil) {
		t.Error("empty filter matches everything")
	}
	if s.NodeMatches(99999, map[string]string{"location": "Ithaca"}) {
		t.Error("missing node must not match")
	}
}

func TestCompact(t *testing.T) {
	ns, es := testSchemas(t)
	nodes, edges := testGraph(25, 100, 4)
	s, err := New(nodes, edges, ns, es, Config{
		NumShards:         3,
		SamplingRate:      8,
		LogStoreThreshold: 2500,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Fragment heavily and mutate. Distinct timestamps keep edge order
	// comparable across the rebuild.
	for i := 0; i < 150; i++ {
		if err := s.AppendEdge(layout.Edge{Src: int64(i % 8), Dst: int64(300 + i), Type: 0, Timestamp: int64(100000 + i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.AppendNode(3, map[string]string{"name": "updated", "location": "Chicago"}); err != nil {
		t.Fatal(err)
	}
	s.DeleteNode(9)
	s.DeleteEdges(edges[0].Src, edges[0].Type, edges[0].Dst)
	if s.Rollovers() == 0 {
		t.Fatal("fixture should have rolled over")
	}

	// Snapshot observable state before compaction.
	type nodeObs struct {
		vals []string
		ok   bool
	}
	nodeBefore := map[int64]nodeObs{}
	for id := int64(0); id < 30; id++ {
		vals, ok := s.GetNodeProps(id, nil)
		nodeBefore[id] = nodeObs{vals, ok}
	}
	recBefore := map[[2]int64][]int64{} // (src,type) -> timestamps
	for src := int64(0); src < 25; src++ {
		for ty := int64(0); ty < 4; ty++ {
			if rec, ok := s.GetEdgeRecord(src, ty); ok {
				var ts []int64
				for i := 0; i < rec.Count(); i++ {
					d, err := rec.GetEdgeData(i)
					if err != nil {
						t.Fatal(err)
					}
					ts = append(ts, d.Timestamp)
				}
				recBefore[[2]int64{src, ty}] = ts
			}
		}
	}

	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}

	// Fragmentation reset.
	if s.NumFragments() != 3+1 {
		t.Fatalf("fragments after compact = %d, want 4", s.NumFragments())
	}
	for id := int64(0); id < 25; id++ {
		if f := s.FragmentsOf(id); f != 1 {
			t.Fatalf("FragmentsOf(%d) = %d after compact", id, f)
		}
	}
	// Observable state unchanged.
	for id, want := range nodeBefore {
		vals, ok := s.GetNodeProps(id, nil)
		if ok != want.ok || !reflect.DeepEqual(vals, want.vals) {
			t.Fatalf("node %d changed by compact: %v,%v want %v,%v", id, vals, ok, want.vals, want.ok)
		}
	}
	for src := int64(0); src < 25; src++ {
		for ty := int64(0); ty < 4; ty++ {
			want, had := recBefore[[2]int64{src, ty}]
			rec, ok := s.GetEdgeRecord(src, ty)
			if ok != had {
				t.Fatalf("record (%d,%d) existence changed: %v want %v", src, ty, ok, had)
			}
			if !ok {
				continue
			}
			if rec.Count() != len(want) {
				t.Fatalf("record (%d,%d) count %d want %d", src, ty, rec.Count(), len(want))
			}
			for i, w := range want {
				d, err := rec.GetEdgeData(i)
				if err != nil {
					t.Fatal(err)
				}
				if d.Timestamp != w {
					t.Fatalf("record (%d,%d)[%d] ts %d want %d", src, ty, i, d.Timestamp, w)
				}
			}
		}
	}
	// The store keeps working after compaction (writes, rollovers).
	for i := 0; i < 80; i++ {
		if err := s.AppendEdge(layout.Edge{Src: 2, Dst: int64(900 + i), Type: 1, Timestamp: int64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	rec, ok := s.GetEdgeRecord(2, 1)
	if !ok || rec.Count() < 80 {
		t.Fatalf("writes after compact lost")
	}
	// Deleted node stays deleted (physically gone now).
	if _, ok := s.GetNodeProps(9, nil); ok {
		t.Fatal("deleted node resurrected by compact")
	}
}
