package store

import (
	"fmt"
	"strings"

	"zipg/internal/succinct"
)

// FragmentCodecs describes one compressed fragment's codec state for
// the admin report (zipg-cli codecs, /debug/codecs): which fragment,
// the α its succinct stores sample at, the reads its primary partition
// has drawn since the last compaction, and every codec-encoded region.
type FragmentCodecs struct {
	// Fragment names the shard: "primary/<p>" or "frozen/<gen>".
	Fragment string
	// Alpha is the sampling rate the fragment was built with.
	Alpha int
	// Reads counts reads attributed to this primary partition since the
	// last compaction (always 0 for frozen generations, which have no
	// partition of their own).
	Reads int64
	// Regions lists the fragment's codec-encoded regions.
	Regions []succinct.RegionCodec
}

// CodecReport describes every compressed fragment's codec choices and
// sampling rate — the data behind the codecs admin surface.
func (s *Store) CodecReport() []FragmentCodecs {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]FragmentCodecs, 0, len(s.primaries)+len(s.frozen))
	for p, sh := range s.primaries {
		out = append(out, FragmentCodecs{
			Fragment: fmt.Sprintf("primary/%d", p),
			Alpha:    sh.SamplingRate(),
			Reads:    s.shardReads[p].Load(),
			Regions:  sh.CodecReport(),
		})
	}
	for g, f := range s.frozen {
		if f.raw != nil {
			// Sealed but not yet compressed: no codec regions to report.
			out = append(out, FragmentCodecs{
				Fragment: fmt.Sprintf("frozen/%d (raw, awaiting compression)", g),
			})
			continue
		}
		out = append(out, FragmentCodecs{
			Fragment: fmt.Sprintf("frozen/%d", g),
			Alpha:    f.shard.SamplingRate(),
			Regions:  f.shard.CodecReport(),
		})
	}
	return out
}

// FormatCodecReport renders a codec report as the text table the
// codecs admin surfaces (zipg-cli codecs, /debug/codecs) print: one
// line per region with its codec, element count, encoded bytes and
// measured decode speed, grouped under per-fragment headers that carry
// α and the partition's accumulated reads.
func FormatCodecReport(report []FragmentCodecs) string {
	var b strings.Builder
	b.WriteString("# per-shard codec report: fragment (alpha, reads) then one line per encoded region\n")
	for _, fc := range report {
		fmt.Fprintf(&b, "%s  alpha=%d  reads=%d\n", fc.Fragment, fc.Alpha, fc.Reads)
		for _, rc := range fc.Regions {
			fmt.Fprintf(&b, "  %-13s %-9s %9d elems %10d bytes  %7.2f ns/elem decode",
				rc.Region, rc.Codec, rc.Elems, rc.Bytes, rc.DecodeNs)
			if len(rc.Trials) > 0 {
				b.WriteString("  [trials:")
				for _, tr := range rc.Trials {
					fmt.Fprintf(&b, " %s=%dB/%.2fns", tr.Name, tr.Bytes, tr.NsPerElem)
				}
				b.WriteString("]")
			}
			b.WriteString("\n")
		}
	}
	return b.String()
}

// TunedAlphas returns the per-partition α chosen by the last
// compaction (nil before the first compaction). Auto-tuned stores see
// the ladder's choices; others see the configured base α everywhere.
func (s *Store) TunedAlphas() []int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.tunedAlpha == nil {
		return nil
	}
	return append([]int(nil), s.tunedAlpha...)
}

// ShardReads returns the per-partition read counts accumulated since
// the last compaction — the α auto-tuner's input signal.
func (s *Store) ShardReads() []int64 {
	out := make([]int64, len(s.shardReads))
	for p := range s.shardReads {
		out[p] = s.shardReads[p].Load()
	}
	return out
}
