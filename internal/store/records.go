package store

import (
	"fmt"
	"sort"

	"zipg/internal/core"
	"zipg/internal/layout"
	"zipg/internal/logstore"
	"zipg/internal/telemetry"
)

// EdgeRecord is the store-level realization of §2.2's EdgeRecord: a
// handle to all live edges of one EdgeType incident on a node, possibly
// fragmented across the primary shard, frozen generations and the live
// LogStore. TimeOrder indexes the live edges across all fragments in
// global timestamp order.
type EdgeRecord struct {
	Src  layout.NodeID
	Type layout.EdgeType

	pieces []recordPiece
	count  int
	merged []mergedEntry // built lazily; nil until needed
}

// recordPiece is one fragment's contribution to an EdgeRecord.
type recordPiece struct {
	shard   *core.Shard          // nil for a LogStore piece
	ref     layout.EdgeRecordRef // valid when shard != nil
	deleted map[int]bool         // physical deletion marks (snapshot)
	edges   []layout.Edge        // LogStore entries, ts-sorted
}

func (p *recordPiece) liveCount() int {
	if p.shard == nil {
		return len(p.edges)
	}
	return p.ref.Count - len(p.deleted)
}

type mergedEntry struct {
	piece int
	idx   int // physical index within the piece
	ts    int64
}

// Count returns the number of live edges (TAO's assoc_count). For the
// common unfragmented, no-deletion case this is a pure metadata read.
func (r *EdgeRecord) Count() int { return r.count }

// GetEdgeRecord returns the merged EdgeRecord for (src, etype), or false
// if the node is deleted or has no such edges. Fanned updates: only the
// fragments named by src's update pointers are consulted.
func (s *Store) GetEdgeRecord(src layout.NodeID, etype layout.EdgeType) (*EdgeRecord, bool) {
	mOpGetEdgeRecord.Inc()
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.getEdgeRecordLocked(src, etype)
}

func (s *Store) getEdgeRecordLocked(src layout.NodeID, etype layout.EdgeType) (*EdgeRecord, bool) {
	if s.deletedNodes[src] {
		return nil, false
	}
	r := &EdgeRecord{Src: src, Type: etype}
	for _, f := range s.fragmentsOfLocked(src) {
		if f.raw != nil {
			if es := s.rawEdgeEntriesLocked(f.raw, src, etype); len(es) > 0 {
				r.pieces = append(r.pieces, recordPiece{edges: es})
			}
			continue
		}
		sh := f.shard
		if ref, ok := sh.Edges().GetEdgeRecord(src, etype); ok {
			r.pieces = append(r.pieces, recordPiece{
				shard:   sh,
				ref:     ref,
				deleted: copyDeleted(s.deletedPhys[shardEdgeRef{sh, src, etype}]),
			})
		}
	}
	if s.hasLogPtrLocked(src) {
		if es := s.log.EdgeEntries(src, etype); len(es) > 0 {
			r.pieces = append(r.pieces, recordPiece{edges: es})
		}
	}
	for i := range r.pieces {
		r.count += r.pieces[i].liveCount()
	}
	if r.count == 0 {
		return nil, false
	}
	return r, true
}

// GetEdgeRecords returns the merged EdgeRecords of every EdgeType
// incident on src (wildcard EdgeType), in ascending type order.
func (s *Store) GetEdgeRecords(src layout.NodeID) []*EdgeRecord {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.deletedNodes[src] {
		return nil
	}
	types := make(map[layout.EdgeType]bool)
	for _, f := range s.fragmentsOfLocked(src) {
		if f.raw != nil {
			for _, t := range f.raw.EdgeTypes(src) {
				types[t] = true
			}
			continue
		}
		for _, ref := range f.shard.Edges().GetEdgeRecords(src) {
			types[ref.Type] = true
		}
	}
	if s.hasLogPtrLocked(src) {
		for _, t := range s.log.EdgeTypes(src) {
			types[t] = true
		}
	}
	sorted := make([]layout.EdgeType, 0, len(types))
	for t := range types {
		sorted = append(sorted, t)
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var out []*EdgeRecord
	for _, t := range sorted {
		if r, ok := s.getEdgeRecordLocked(src, t); ok {
			out = append(out, r)
		}
	}
	return out
}

// rawEdgeEntriesLocked returns one sealed raw generation's (src, etype)
// edges with tombstoned triples filtered out, timestamp-sorted. Callers
// hold s.mu.
func (s *Store) rawEdgeEntriesLocked(raw *logstore.LogStore, src layout.NodeID, etype layout.EdgeType) []layout.Edge {
	es := raw.EdgeEntries(src, etype)
	dels := s.rawDels[raw]
	if len(dels) == 0 {
		return es
	}
	kept := es[:0]
	for _, e := range es {
		if !dels[edgeTriple{e.Src, e.Type, e.Dst}] {
			kept = append(kept, e)
		}
	}
	return kept
}

// hasLogPtrLocked reports whether src has an update pointer into the
// live LogStore. Callers hold s.mu.
func (s *Store) hasLogPtrLocked(src layout.NodeID) bool {
	if s.cfg.DisableFannedUpdates {
		return true
	}
	cur := s.curGenLocked()
	for _, g := range s.ptrs[src] {
		if g == cur {
			return true
		}
	}
	return false
}

func copyDeleted(m map[int]bool) map[int]bool {
	if len(m) == 0 {
		return nil
	}
	cp := make(map[int]bool, len(m))
	for k := range m {
		cp[k] = true
	}
	return cp
}

// ensureMerged builds the global TimeOrder index across pieces.
func (r *EdgeRecord) ensureMerged() {
	if r.merged != nil {
		return
	}
	merged := make([]mergedEntry, 0, r.count)
	for pi := range r.pieces {
		p := &r.pieces[pi]
		if p.shard == nil {
			for i, e := range p.edges {
				merged = append(merged, mergedEntry{pi, i, e.Timestamp})
			}
			continue
		}
		// One extract of the whole timestamp array instead of one per edge.
		ts := p.shard.Edges().Timestamps(&p.ref)
		for i := 0; i < p.ref.Count; i++ {
			if p.deleted[i] {
				continue
			}
			merged = append(merged, mergedEntry{pi, i, ts[i]})
		}
	}
	sort.SliceStable(merged, func(a, b int) bool { return merged[a].ts < merged[b].ts })
	r.merged = merged
}

// singleCleanPiece reports whether the record is a single compressed
// fragment with no deletions — the fast path where physical order is
// TimeOrder.
func (r *EdgeRecord) singleCleanPiece() (*recordPiece, bool) {
	if len(r.pieces) != 1 {
		return nil, false
	}
	p := &r.pieces[0]
	if p.shard != nil && len(p.deleted) == 0 {
		return p, true
	}
	return nil, false
}

// GetEdgeData returns the (destination, timestamp, property list) of the
// edge at the given TimeOrder (§2.2's get_edge_data).
func (r *EdgeRecord) GetEdgeData(timeOrder int) (layout.EdgeData, error) {
	if timeOrder < 0 || timeOrder >= r.count {
		return layout.EdgeData{}, fmt.Errorf("store: time order %d out of range [0,%d)", timeOrder, r.count)
	}
	if p, ok := r.singleCleanPiece(); ok {
		d, err := p.shard.Edges().GetEdgeData(&p.ref, timeOrder)
		recordSuccinctEdgeData(d, err)
		return d, err
	}
	r.ensureMerged()
	m := r.merged[timeOrder]
	p := &r.pieces[m.piece]
	if p.shard == nil {
		e := p.edges[m.idx]
		props := make(map[string]string, len(e.Props))
		for k, v := range e.Props {
			props[k] = v
		}
		if len(props) == 0 {
			props = nil
		}
		return layout.EdgeData{Dst: e.Dst, Timestamp: e.Timestamp, Props: props}, nil
	}
	d, err := p.shard.Edges().GetEdgeData(&p.ref, m.idx)
	recordSuccinctEdgeData(d, err)
	return d, err
}

// recordSuccinctEdgeData accounts the bytes of one edge's data
// extracted from a compressed EdgeFile (destination + timestamp words
// plus the property payload).
func recordSuccinctEdgeData(d layout.EdgeData, err error) {
	if err != nil || !telemetry.Enabled() {
		return
	}
	n := int64(16) // dst + timestamp
	for k, v := range d.Props {
		n += int64(len(k) + len(v))
	}
	mSuccinctBytes.Add(n)
}

// GetEdgeRange returns the TimeOrder range [beg, end) of live edges with
// timestamps in [tLo, tHi) (§2.2's get_edge_range). Wildcard bounds are
// expressed as tLo=0, tHi=math.MaxInt64 by callers.
func (r *EdgeRecord) GetEdgeRange(tLo, tHi int64) (int, int) {
	if p, ok := r.singleCleanPiece(); ok {
		return p.shard.Edges().TimeRange(&p.ref, tLo, tHi)
	}
	// Fragmented records: when every piece carries a timestamp span
	// (hot-header for compressed pieces, first/last entry for log
	// pieces), a window that misses or covers the whole record is
	// answered from metadata — no timestamp arrays are decoded and no
	// merge index is built. The spans are conservative over deletions
	// (live entries are a subset), so the three answers stay exact.
	if r.merged == nil {
		if lo, hi, ok := r.span(); ok {
			switch {
			case tHi <= lo:
				return 0, 0
			case tLo > hi:
				return r.count, r.count
			case tLo <= lo && tHi > hi:
				return 0, r.count
			}
		}
	}
	r.ensureMerged()
	beg := sort.Search(len(r.merged), func(i int) bool { return r.merged[i].ts >= tLo })
	end := sort.Search(len(r.merged), func(i int) bool { return r.merged[i].ts >= tHi })
	return beg, end
}

// span returns the record's overall [min, max] timestamp bounds when
// every piece can report one cheaply: compressed pieces via the
// hot-field header, log pieces via their (timestamp-sorted) first and
// last entries. ok is false if any piece lacks a span (legacy-format
// shards), in which case callers fall back to the merged index.
func (r *EdgeRecord) span() (lo, hi int64, ok bool) {
	first := true
	for pi := range r.pieces {
		p := &r.pieces[pi]
		var plo, phi int64
		if p.shard == nil {
			if len(p.edges) == 0 {
				continue
			}
			plo = p.edges[0].Timestamp
			phi = p.edges[len(p.edges)-1].Timestamp
		} else {
			var hot bool
			if plo, phi, hot = p.ref.HotSpan(); !hot {
				return 0, 0, false
			}
		}
		if first || plo < lo {
			lo = plo
		}
		if first || phi > hi {
			hi = phi
		}
		first = false
	}
	return lo, hi, !first
}

// Destinations returns the destination IDs of all live edges in
// TimeOrder.
func (r *EdgeRecord) Destinations() []layout.NodeID {
	if p, ok := r.singleCleanPiece(); ok {
		return p.shard.Edges().Destinations(&p.ref)
	}
	r.ensureMerged()
	out := make([]layout.NodeID, 0, len(r.merged))
	for _, m := range r.merged {
		p := &r.pieces[m.piece]
		if p.shard == nil {
			out = append(out, p.edges[m.idx].Dst)
		} else {
			out = append(out, p.shard.Edges().Destination(&p.ref, m.idx))
		}
	}
	return out
}

// NeighborIDs returns the IDs of live neighbors of src along etype
// (wildcard: etype < 0) whose current properties match propFilter
// (Table 1's get_neighbor_ids). Per §2.2 it avoids a join: it walks the
// destination list and checks each neighbor's properties.
func (s *Store) NeighborIDs(src layout.NodeID, etype layout.EdgeType, propFilter map[string]string) []layout.NodeID {
	if telemetry.Enabled() {
		mOpNeighborIDs.Inc()
		// Timed only on span-sampled queries (see GetNodeProps).
		if sp := telemetry.StartSpan("store.get_neighbor_ids"); sp != nil {
			sp.MarkEdgeFile()
			tm := telemetry.StartTimer()
			defer func() {
				tm.ObserveInto(mLatNeighborIDs)
				sp.End()
			}()
		}
	}
	var records []*EdgeRecord
	if etype < 0 {
		records = s.GetEdgeRecords(src)
	} else if r, ok := s.GetEdgeRecord(src, etype); ok {
		records = []*EdgeRecord{r}
	}
	seen := make(map[layout.NodeID]bool)
	var out []layout.NodeID
	for _, r := range records {
		for _, dst := range r.Destinations() {
			if seen[dst] {
				continue
			}
			seen[dst] = true
			s.mu.RLock()
			deleted := s.deletedNodes[dst]
			s.mu.RUnlock()
			if deleted {
				continue
			}
			if len(propFilter) > 0 && !s.NodeMatches(dst, propFilter) {
				continue
			}
			out = append(out, dst)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
