package store

import (
	"sort"

	"zipg/internal/layout"
	"zipg/internal/telemetry"
)

// Windowed edge scans.
//
// A temporal query asks for the edges of (src, etype) with timestamps
// in [tLo, tHi). A node's record may be fragmented across the primary
// shard, frozen generations and the live LogStore; each compressed
// piece carries the hot-field header's [TsMin, TsMax] span (PR 5), so
// a window that misses a piece entirely skips it without touching the
// compressed timestamp array at all — the pruning the temporal bench
// measures. Pieces the window overlaps are binary-searched (compressed
// pieces and sealed/live log entries are both timestamp-sorted), and
// only the in-window entries are materialized, minus lazy deletion
// marks and tombstones. The merged output is globally timestamp-sorted
// with fragment order (generation order) breaking ties, matching the
// EdgeRecord TimeOrder semantics.

// Temporal scan counters. Consulted counts every fragment piece a
// windowed scan considered; pruned counts the subset skipped whole via
// the hot-header span; scanned counts edge entries examined inside
// non-pruned pieces.
var (
	mTemporalPieces = telemetry.NewCounter("zipg_temporal_pieces_total",
		"Fragment pieces consulted by windowed scans (incl. pruned).")
	mTemporalShardsPruned = telemetry.NewCounter("zipg_temporal_shards_pruned_total",
		"Fragment pieces skipped whole by the hot-header timestamp span.")
	mTemporalEdgesScanned = telemetry.NewCounter("zipg_temporal_edges_scanned_total",
		"Edge entries examined by windowed scans after pruning.")
)

// WindowStats reports how one windowed scan spent its work.
type WindowStats struct {
	// Pieces is the number of fragment pieces holding (src, etype) data.
	Pieces int
	// Pruned is how many of them the hot-header span skipped whole.
	Pruned int
	// Scanned is the edge entries examined in the remaining pieces.
	Scanned int
}

func (w *WindowStats) add(o WindowStats) {
	w.Pieces += o.Pieces
	w.Pruned += o.Pruned
	w.Scanned += o.Scanned
}

// record publishes the scan's work onto the temporal counters.
func (w WindowStats) record() {
	if !telemetry.Enabled() {
		return
	}
	mTemporalPieces.Add(int64(w.Pieces))
	mTemporalShardsPruned.Add(int64(w.Pruned))
	mTemporalEdgesScanned.Add(int64(w.Scanned))
}

// TemporalScanCounters returns the cumulative (pieces, pruned, scanned)
// counter values — the bench harness reads deltas around a window sweep
// to report the pruned fraction.
func TemporalScanCounters() (pieces, pruned, scanned int64) {
	return mTemporalPieces.Value(), mTemporalShardsPruned.Value(), mTemporalEdgesScanned.Value()
}

// EdgesInWindow returns the live edges of (src, etype) with timestamps
// in [tLo, tHi), globally timestamp-sorted (fragment order breaks
// ties), plus the scan's pruning stats. Deleted nodes yield nil.
func (s *Store) EdgesInWindow(src layout.NodeID, etype layout.EdgeType, tLo, tHi int64) ([]layout.EdgeData, WindowStats) {
	var stats WindowStats
	s.mu.RLock()
	rec, ok := s.getEdgeRecordLocked(src, etype)
	s.mu.RUnlock()
	if !ok || tLo >= tHi {
		stats.record()
		return nil, stats
	}
	var out []layout.EdgeData
	for pi := range rec.pieces {
		p := &rec.pieces[pi]
		stats.Pieces++
		if p.shard == nil {
			beg, end := edgeSliceWindow(p.edges, tLo, tHi)
			stats.Scanned += end - beg
			for _, e := range p.edges[beg:end] {
				out = append(out, layout.EdgeData{Dst: e.Dst, Timestamp: e.Timestamp, Props: copyProps(e.Props)})
			}
			continue
		}
		if lo, hi, ok := p.ref.HotSpan(); ok && (tHi <= lo || tLo > hi) {
			stats.Pruned++
			continue
		}
		beg, end := p.shard.Edges().TimeRange(&p.ref, tLo, tHi)
		stats.Scanned += end - beg
		for i := beg; i < end; i++ {
			if p.deleted[i] {
				continue
			}
			d, err := p.shard.Edges().GetEdgeData(&p.ref, i)
			recordSuccinctEdgeData(d, err)
			if err != nil {
				continue
			}
			out = append(out, d)
		}
	}
	// Pieces were walked in fragment (generation) order and each is
	// timestamp-sorted internally, so a stable sort by timestamp yields
	// the EdgeRecord TimeOrder.
	sort.SliceStable(out, func(i, j int) bool { return out[i].Timestamp < out[j].Timestamp })
	stats.record()
	return out, stats
}

// CountInWindow returns how many live edges of (src, etype) carry
// timestamps in [tLo, tHi). Pieces the span prunes — and clean pieces
// the window fully covers — are answered from metadata without
// materializing any edge data.
func (s *Store) CountInWindow(src layout.NodeID, etype layout.EdgeType, tLo, tHi int64) (int, WindowStats) {
	var stats WindowStats
	s.mu.RLock()
	rec, ok := s.getEdgeRecordLocked(src, etype)
	s.mu.RUnlock()
	if !ok || tLo >= tHi {
		stats.record()
		return 0, stats
	}
	count := 0
	for pi := range rec.pieces {
		p := &rec.pieces[pi]
		stats.Pieces++
		if p.shard == nil {
			beg, end := edgeSliceWindow(p.edges, tLo, tHi)
			count += end - beg
			continue
		}
		if lo, hi, ok := p.ref.HotSpan(); ok && (tHi <= lo || tLo > hi) {
			stats.Pruned++
			continue
		}
		beg, end := p.shard.Edges().TimeRange(&p.ref, tLo, tHi)
		n := end - beg
		for i := range p.deleted {
			if i >= beg && i < end {
				n--
			}
		}
		count += n
	}
	stats.record()
	return count, stats
}

// WindowTypes returns every EdgeType with at least one live in-window
// edge incident on src, ascending — the wildcard-type entry point for
// temporal traversals.
func (s *Store) WindowTypes(src layout.NodeID) []layout.EdgeType {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.deletedNodes[src] {
		return nil
	}
	types := make(map[layout.EdgeType]bool)
	for _, f := range s.fragmentsOfLocked(src) {
		if f.raw != nil {
			for _, t := range f.raw.EdgeTypes(src) {
				types[t] = true
			}
			continue
		}
		for _, ref := range f.shard.Edges().GetEdgeRecords(src) {
			types[ref.Type] = true
		}
	}
	if s.hasLogPtrLocked(src) {
		for _, t := range s.log.EdgeTypes(src) {
			types[t] = true
		}
	}
	out := make([]layout.EdgeType, 0, len(types))
	for t := range types {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// NeighborsInWindow returns the live neighbors reachable from src along
// any edge type through edges with timestamps in [tLo, tHi), sorted by
// ID. Deleted destinations are excluded (the NeighborIDs semantics);
// destination liveness it cannot resolve locally — remote nodes in a
// cluster — is the caller's concern.
func (s *Store) NeighborsInWindow(src layout.NodeID, tLo, tHi int64) ([]layout.NodeID, WindowStats) {
	var stats WindowStats
	seen := make(map[layout.NodeID]bool)
	var out []layout.NodeID
	for _, t := range s.WindowTypes(src) {
		edges, st := s.EdgesInWindow(src, t, tLo, tHi)
		stats.add(st)
		for _, d := range edges {
			if !seen[d.Dst] {
				seen[d.Dst] = true
				out = append(out, d.Dst)
			}
		}
	}
	if len(out) == 0 {
		return nil, stats
	}
	s.mu.RLock()
	kept := out[:0]
	for _, id := range out {
		if !s.deletedNodes[id] {
			kept = append(kept, id)
		}
	}
	s.mu.RUnlock()
	sort.Slice(kept, func(i, j int) bool { return kept[i] < kept[j] })
	return kept, stats
}

// edgeSliceWindow binary-searches a timestamp-sorted edge slice for the
// half-open index range with timestamps in [tLo, tHi).
func edgeSliceWindow(es []layout.Edge, tLo, tHi int64) (int, int) {
	beg := sort.Search(len(es), func(i int) bool { return es[i].Timestamp >= tLo })
	end := sort.Search(len(es), func(i int) bool { return es[i].Timestamp >= tHi })
	return beg, end
}

// copyProps defensively copies an edge property map out of the live
// log's entry (compressed pieces decode fresh maps already).
func copyProps(m map[string]string) map[string]string {
	if len(m) == 0 {
		return nil
	}
	cp := make(map[string]string, len(m))
	for k, v := range m {
		cp[k] = v
	}
	return cp
}
