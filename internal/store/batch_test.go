package store

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"zipg/internal/layout"
)

// newFragmentedStore builds a store whose data is deliberately spread
// across fragments: primary shards, a rolled-over frozen shard, the
// live log, update pointers from re-appended nodes, and lazy deletion
// marks on nodes and physical edges. Batch reads must agree with the
// scalar path on every one of these cases.
func newFragmentedStore(t testing.TB, alpha int) (*Store, []layout.NodeID) {
	t.Helper()
	ns, es := testSchemas(t)
	nodes, edges := testGraph(60, 400, 2)
	// A tiny threshold forces log rollover into frozen shards as we append.
	s, err := New(nodes, edges, ns, es, Config{NumShards: 4, SamplingRate: alpha, LogStoreThreshold: 1 << 10})
	if err != nil {
		t.Fatal(err)
	}
	// Re-append some nodes (update pointers), append fresh nodes and
	// edges (log + rollover), delete some nodes and physical edges.
	for i := 0; i < 20; i++ {
		id := layout.NodeID(i * 3)
		if err := s.AppendNode(id, map[string]string{"age": fmt.Sprint(90 + i), "name": fmt.Sprintf("upd%d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 60; i < 70; i++ {
		if err := s.AppendNode(layout.NodeID(i), map[string]string{"location": "Ithaca"}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 30; i++ {
		if err := s.AppendEdge(layout.Edge{
			Src: layout.NodeID(i % 60), Dst: layout.NodeID((i * 11) % 60), Type: int64(i % 3),
			Timestamp: int64(20000 + i), Props: map[string]string{"weight": fmt.Sprint(i)},
		}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 6; i++ {
		s.DeleteNode(layout.NodeID(i*7 + 1))
	}
	for _, e := range edges[:15] {
		s.DeleteEdges(e.Src, e.Type, e.Dst)
	}
	ids := make([]layout.NodeID, 0, 75)
	for i := 0; i < 75; i++ { // includes IDs that never existed
		ids = append(ids, layout.NodeID(i))
	}
	return s, ids
}

func TestObjGetBatchAgainstScalar(t *testing.T) {
	for _, alpha := range []int{4, 8, 32} {
		s, universe := newFragmentedStore(t, alpha)
		rng := rand.New(rand.NewSource(int64(alpha)))
		for trial := 0; trial < 15; trial++ {
			n := rng.Intn(80)
			batch := make([]layout.NodeID, n)
			for i := range batch {
				if rng.Intn(8) == 0 && i > 0 {
					batch[i] = batch[rng.Intn(i)] // duplicate
				} else {
					batch[i] = universe[rng.Intn(len(universe))]
				}
			}
			gotVals, gotOKs := s.ObjGetBatch(batch)
			for i, id := range batch {
				wantVals, wantOK := s.GetNodeProps(id, nil)
				if gotOKs[i] != wantOK || !reflect.DeepEqual(gotVals[i], wantVals) {
					t.Fatalf("α=%d trial %d batch[%d]=%d: got %v,%v want %v,%v",
						alpha, trial, i, id, gotVals[i], gotOKs[i], wantVals, wantOK)
				}
			}
		}
		vals, oks := s.ObjGetBatch(nil)
		if len(vals) != 0 || len(oks) != 0 {
			t.Fatal("empty batch not empty")
		}
	}
}

func TestNodeMatchesBatchAgainstScalar(t *testing.T) {
	s, universe := newFragmentedStore(t, 8)
	filters := []map[string]string{
		nil,
		{"location": "Ithaca"},
		{"location": "Ithaca", "age": "25"},
		{"name": "upd3"},
		{"nope": "x"},
	}
	for _, props := range filters {
		got := s.NodeMatchesBatch(universe, props)
		for i, id := range universe {
			want := s.HasNode(id) && s.NodeMatches(id, props)
			if got[i] != want {
				t.Fatalf("props %v id %d: got %v want %v", props, id, got[i], want)
			}
		}
	}
}

func TestAssocRangeBatchAgainstScalar(t *testing.T) {
	for _, alpha := range []int{4, 8, 32} {
		s, _ := newFragmentedStore(t, alpha)
		rng := rand.New(rand.NewSource(int64(alpha) * 7))
		for trial := 0; trial < 15; trial++ {
			n := rng.Intn(60)
			reqs := make([]AssocRangeReq, n)
			for i := range reqs {
				reqs[i] = AssocRangeReq{
					ID:    layout.NodeID(rng.Intn(70)), // includes edge-less and deleted nodes
					Type:  int64(rng.Intn(4)),          // includes absent type 3
					Idx:   rng.Intn(12) - 2,            // negative indices too
					Limit: rng.Intn(15),
				}
				if rng.Intn(8) == 0 && i > 0 {
					reqs[i] = reqs[rng.Intn(i)] // duplicate
				}
			}
			got, err := s.AssocRangeBatch(reqs)
			if err != nil {
				t.Fatal(err)
			}
			for i, req := range reqs {
				want, err := s.assocRangeScalar(req)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(got[i], want) {
					t.Fatalf("α=%d trial %d req %+v: got %v want %v", alpha, trial, req, got[i], want)
				}
			}
		}
		out, err := s.AssocRangeBatch(nil)
		if err != nil || len(out) != 0 {
			t.Fatal("empty batch not empty")
		}
	}
}

// TestBatchConcurrentReadWrite runs batch readers against concurrent
// writers; under -race this proves the batch paths take the same
// snapshot discipline as the scalar ones.
func TestBatchConcurrentReadWrite(t *testing.T) {
	s, universe := newFragmentedStore(t, 8)
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for iter := 0; iter < 30; iter++ {
				switch g % 4 {
				case 0: // node writer
					id := universe[rng.Intn(len(universe))]
					if rng.Intn(5) == 0 {
						s.DeleteNode(id)
					} else if err := s.AppendNode(id, map[string]string{"age": fmt.Sprint(iter)}); err != nil {
						t.Error(err)
						return
					}
				case 1: // edge writer
					e := layout.Edge{
						Src: universe[rng.Intn(len(universe))], Dst: universe[rng.Intn(len(universe))],
						Type: int64(rng.Intn(3)), Timestamp: int64(30000 + iter),
						Props: map[string]string{"weight": "1"},
					}
					if rng.Intn(5) == 0 {
						s.DeleteEdges(e.Src, e.Type, e.Dst)
					} else if err := s.AppendEdge(e); err != nil {
						t.Error(err)
						return
					}
				case 2: // node batch reader
					batch := make([]layout.NodeID, 20)
					for i := range batch {
						batch[i] = universe[rng.Intn(len(universe))]
					}
					vals, oks := s.ObjGetBatch(batch)
					for i := range batch {
						if oks[i] && vals[i] == nil {
							t.Errorf("found node %d with nil props", batch[i])
							return
						}
					}
					s.NodeMatchesBatch(batch, map[string]string{"location": "Ithaca"})
				default: // edge batch reader
					reqs := make([]AssocRangeReq, 20)
					for i := range reqs {
						reqs[i] = AssocRangeReq{
							ID: universe[rng.Intn(len(universe))], Type: int64(rng.Intn(3)),
							Idx: 0, Limit: 10,
						}
					}
					if _, err := s.AssocRangeBatch(reqs); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
}
