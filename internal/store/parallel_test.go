package store

import (
	"fmt"
	"reflect"
	"runtime"
	"sync"
	"testing"

	"zipg/internal/layout"
	"zipg/internal/parallel"
)

// fragmentedTestStore builds a store whose data spans many fragments:
// small LogStore threshold, forced rollovers, plus node and physical
// edge deletions — the worst case for the parallel search paths.
func fragmentedTestStore(t testing.TB) *Store {
	t.Helper()
	ns, es := testSchemas(t)
	nodes, edges := testGraph(120, 400, 7)
	s, err := New(nodes, edges, ns, es, Config{
		NumShards:         4,
		SamplingRate:      8,
		LogStoreThreshold: 6 << 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	next := int64(len(nodes))
	for i := 0; s.Rollovers() < 2; i++ {
		src := nodes[i%len(nodes)]
		if err := s.AppendNode(next, src.Props); err != nil {
			t.Fatal(err)
		}
		if err := s.AppendEdge(layout.Edge{
			Src: src.ID, Dst: next, Type: int64(i % 3),
			Timestamp: int64(20000 + i), Props: map[string]string{"weight": "7"},
		}); err != nil {
			t.Fatal(err)
		}
		next++
	}
	for id := int64(0); id < 120; id += 17 {
		s.DeleteNode(id)
	}
	for _, e := range edges[:40] {
		s.DeleteEdges(e.Src, e.Type, e.Dst)
	}
	return s
}

// TestParallelDeterminism is the golden test: FindNodes and FindEdges
// must return byte-identical results at pool sizes 1, 2 and NumCPU on a
// fragmented store (post-rollover, with deletes).
func TestParallelDeterminism(t *testing.T) {
	s := fragmentedTestStore(t)
	queries := []map[string]string{
		{"location": "Ithaca"},
		{"location": "Berkeley", "age": "25"},
		{"name": "user42"},
		{"location": "Chicago"},
	}
	edgeQueries := []map[string]string{
		{"weight": "7"},
		{"weight": "3"},
	}

	sizes := []int{1, 2, runtime.NumCPU()}
	prev := parallel.SetWorkers(1)
	defer parallel.SetWorkers(prev)

	goldenNodes := make([][]layout.NodeID, len(queries))
	for i, q := range queries {
		goldenNodes[i] = s.FindNodes(q)
	}
	goldenEdges := make([][]layout.Edge, len(edgeQueries))
	for i, q := range edgeQueries {
		goldenEdges[i] = s.FindEdges(q)
	}
	if got := len(goldenNodes[0]); got == 0 {
		t.Fatal("golden FindNodes found nothing; queries are not exercising the store")
	}
	if got := len(goldenEdges[0]); got == 0 {
		t.Fatal("golden FindEdges found nothing; queries are not exercising the store")
	}

	for _, w := range sizes {
		parallel.SetWorkers(w)
		for i, q := range queries {
			if got := s.FindNodes(q); !reflect.DeepEqual(got, goldenNodes[i]) {
				t.Fatalf("workers=%d: FindNodes(%v) = %v, want %v", w, q, got, goldenNodes[i])
			}
		}
		for i, q := range edgeQueries {
			if got := s.FindEdges(q); !reflect.DeepEqual(got, goldenEdges[i]) {
				t.Fatalf("workers=%d: FindEdges(%v) diverged from the 1-worker golden", w, q)
			}
		}
	}
}

// TestParallelReadWriteRace mixes the parallel search paths with
// concurrent writes and deletes across 16 goroutines; run under -race
// it validates the snapshot/lock discipline of the fan-out code.
func TestParallelReadWriteRace(t *testing.T) {
	s := fragmentedTestStore(t)
	prev := parallel.SetWorkers(4)
	defer parallel.SetWorkers(prev)

	const goroutines = 16
	const opsEach = 30
	var wg sync.WaitGroup
	errCh := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < opsEach; i++ {
				switch g % 4 {
				case 0:
					s.FindNodes(map[string]string{"location": "Ithaca"})
				case 1:
					s.FindEdges(map[string]string{"weight": "7"})
				case 2:
					id := int64(10000 + g*opsEach + i)
					if err := s.AppendNode(id, map[string]string{
						"age": "30", "location": "Berkeley", "name": fmt.Sprintf("w%d", id),
					}); err != nil {
						errCh <- err
						return
					}
					if err := s.AppendEdge(layout.Edge{
						Src: id, Dst: int64(i), Type: int64(i % 3),
						Timestamp: int64(i), Props: map[string]string{"weight": "1"},
					}); err != nil {
						errCh <- err
						return
					}
				default:
					s.DeleteNode(int64(g*opsEach + i))
				}
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}
