package store

import (
	"testing"

	"zipg/internal/telemetry"
)

// The telemetry acceptance bar: the disabled path must be free (a
// single atomic load per op) and the enabled path must stay within a
// few percent of it on the read hot paths. Run with
//
//	go test ./internal/store -bench 'Telemetry' -benchmem
//
// and compare the Off/On pairs.

func benchGetNodeProps(b *testing.B, s *Store, n int) {
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := s.GetNodeProps(int64(i%n), nil); !ok {
			b.Fatal("node missing")
		}
	}
}

func BenchmarkGetNodePropsTelemetryOff(b *testing.B) {
	const n = 500
	s, _, _ := newTestStore(b, n, 2000, 4)
	prev := telemetry.SetEnabled(false)
	defer telemetry.SetEnabled(prev)
	benchGetNodeProps(b, s, n)
}

func BenchmarkGetNodePropsTelemetryOn(b *testing.B) {
	const n = 500
	s, _, _ := newTestStore(b, n, 2000, 4)
	prev := telemetry.SetEnabled(true)
	defer telemetry.SetEnabled(prev)
	benchGetNodeProps(b, s, n)
}

func benchNeighborIDs(b *testing.B, s *Store, n int) {
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.NeighborIDs(int64(i%n), -1, nil)
	}
}

func BenchmarkNeighborIDsTelemetryOff(b *testing.B) {
	const n = 500
	s, _, _ := newTestStore(b, n, 2000, 4)
	prev := telemetry.SetEnabled(false)
	defer telemetry.SetEnabled(prev)
	benchNeighborIDs(b, s, n)
}

func BenchmarkNeighborIDsTelemetryOn(b *testing.B) {
	const n = 500
	s, _, _ := newTestStore(b, n, 2000, 4)
	prev := telemetry.SetEnabled(true)
	defer telemetry.SetEnabled(prev)
	benchNeighborIDs(b, s, n)
}
