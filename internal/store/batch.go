package store

import (
	"sort"

	"zipg/internal/layout"
	"zipg/internal/parallel"
	"zipg/internal/telemetry"
)

// Vectorized store reads. Each batch entry point takes one snapshot of
// the mutable overlay (update pointers, deletion marks) under the store
// lock, splits the requests into a fast set — IDs whose data provably
// lives only in their immutable primary shard — and a slow set
// (fragmented, deleted-edge or log-resident IDs). Fast requests are
// grouped per shard, deduplicated, and handed to the layout batch
// readers (which ride the succinct locality-sorted kernels) with the
// per-shard groups fanned out on the shared parallel pool; slow requests
// fall back to the scalar path, whose overlay merge is authoritative.
// Results are positional and byte-identical to a scalar loop.

var (
	mBatchRequests = telemetry.NewCounterL("zipg_batch_requests_total", `layer="store"`,
		"Items requested through batch kernels, by layer.")
	mBatchRecords = telemetry.NewCounter("zipg_batch_records_total",
		"Records resolved (found) by store-level batch reads.")
)

// getNodePropsBatch answers GetNodeProps(id, propertyIDs) for every id.
// Shared by ObjGetBatch and NodeMatchesBatch.
func (s *Store) getNodePropsBatch(ids []layout.NodeID, propertyIDs []string) ([][]string, []bool) {
	vals := make([][]string, len(ids))
	oks := make([]bool, len(ids))
	if len(ids) == 0 {
		return vals, oks
	}
	if telemetry.Enabled() {
		mBatchRequests.Add(int64(len(ids)))
	}
	dupOf := make([]int, len(ids))
	slow := make([]int, 0)
	firstIdx := make(map[layout.NodeID]int, len(ids))

	// Snapshot the primaries with the overlay: an online compaction may
	// swap s.primaries while the batch decodes, and the fast-path split
	// below is only valid against the shard set it was computed from.
	s.mu.RLock()
	primaries := s.primaries
	groups := make([][]int, len(primaries)) // request indices per shard
	for i, id := range ids {
		dupOf[i] = -1
		if j, dup := firstIdx[id]; dup {
			dupOf[i] = j
			continue
		}
		firstIdx[id] = i
		if s.deletedNodes[id] {
			continue // (nil, false), like the scalar path
		}
		if s.cfg.DisableFannedUpdates || len(s.ptrs[id]) > 0 {
			slow = append(slow, i)
			continue
		}
		p := s.partitionOf(id)
		s.noteRead(p)
		groups[p] = append(groups[p], i)
	}
	s.mu.RUnlock()

	// Per-shard batches fan out on the shared pool; each group writes
	// only its own request slots.
	parallel.Map("store.batch_node_props", len(groups), func(p int) struct{} {
		g := groups[p]
		if len(g) == 0 {
			return struct{}{}
		}
		gids := make([]layout.NodeID, len(g))
		for k, i := range g {
			gids[k] = ids[i]
		}
		vs, os := primaries[p].Nodes().GetPropertiesBatch(gids, propertyIDs)
		for k, i := range g {
			vals[i], oks[i] = vs[k], os[k]
		}
		return struct{}{}
	})
	for _, i := range slow {
		vals[i], oks[i] = s.GetNodeProps(ids[i], propertyIDs)
	}
	var found int64
	for i := range ids {
		if j := dupOf[i]; j >= 0 {
			vals[i], oks[i] = vals[j], oks[j]
		}
		if oks[i] {
			found++
		}
	}
	if telemetry.Enabled() {
		mBatchRecords.Add(found)
	}
	return vals, oks
}

// ObjGetBatch answers GetNodeProps(id, nil) — TAO's obj_get, all
// properties in schema order — for every id in one vectorized pass.
// Results are positional; duplicate IDs share one resolution and absent
// or deleted IDs yield (nil, false), exactly like a scalar loop.
func (s *Store) ObjGetBatch(ids []layout.NodeID) ([][]string, []bool) {
	return s.getNodePropsBatch(ids, nil)
}

// NodeMatchesBatch reports, for every id, whether the node exists and
// currently has every given property value — the batched form of
// HasNode(id) && NodeMatches(id, props), which is the per-candidate
// check the cluster MatchBatch handler and the aggregator's local
// subquery run. Empty props reduces to a liveness check.
func (s *Store) NodeMatchesBatch(ids []layout.NodeID, props map[string]string) []bool {
	pids := make([]string, 0, len(props))
	for pid := range props {
		pids = append(pids, pid)
	}
	sort.Strings(pids)
	vals, oks := s.getNodePropsBatch(ids, pids)
	out := make([]bool, len(ids))
	for i := range ids {
		if !oks[i] {
			continue
		}
		match := true
		for k, pid := range pids {
			if vals[i][k] != props[pid] {
				match = false
				break
			}
		}
		out[i] = match
	}
	return out
}

// AssocRangeReq names one assoc_range read: up to Limit edges of
// (ID, Type) in time order starting at TimeOrder Idx.
type AssocRangeReq struct {
	ID    layout.NodeID
	Type  layout.EdgeType
	Idx   int
	Limit int
}

// AssocRangeBatch answers TAO assoc_range for every request in one
// vectorized pass. Results are positional and identical to the scalar
// loop (GetEdgeRecord + GetEdgeData over [Idx, min(Idx+Limit, Count)),
// negative indices skipped): missing records yield nil, duplicates share
// one resolution. Requests whose record provably lives only in the
// primary shard with no deletion marks are located by the in-memory
// build index and decoded by the layout batch reader; everything else
// takes the scalar overlay merge.
func (s *Store) AssocRangeBatch(reqs []AssocRangeReq) ([][]layout.EdgeData, error) {
	out := make([][]layout.EdgeData, len(reqs))
	if len(reqs) == 0 {
		return out, nil
	}
	if telemetry.Enabled() {
		mBatchRequests.Add(int64(len(reqs)))
	}
	dupOf := make([]int, len(reqs))
	slow := make([]int, 0)
	type shardGroup struct {
		lreqs []layout.EdgeRangeReq
		back  []int
	}
	firstIdx := make(map[AssocRangeReq]int, len(reqs))

	// Snapshot the primaries with the overlay (see getNodePropsBatch).
	s.mu.RLock()
	primaries := s.primaries
	groups := make([]shardGroup, len(primaries))
	for i, req := range reqs {
		dupOf[i] = -1
		if j, dup := firstIdx[req]; dup {
			dupOf[i] = j
			continue
		}
		firstIdx[req] = i
		if s.deletedNodes[req.ID] {
			continue // nil, like the scalar path
		}
		if s.cfg.DisableFannedUpdates || len(s.ptrs[req.ID]) > 0 {
			slow = append(slow, i)
			continue
		}
		p := s.partitionOf(req.ID)
		s.noteRead(p)
		sh := primaries[p]
		if len(s.deletedPhys[shardEdgeRef{sh, req.ID, req.Type}]) > 0 {
			slow = append(slow, i)
			continue
		}
		off, ok := sh.EdgeRecordOffset(req.ID, req.Type)
		if !ok {
			continue // no record anywhere: nil result
		}
		groups[p].lreqs = append(groups[p].lreqs, layout.EdgeRangeReq{
			Src: req.ID, Type: req.Type, Offset: off, Idx: req.Idx, Limit: req.Limit,
		})
		groups[p].back = append(groups[p].back, i)
	}
	s.mu.RUnlock()

	errs := parallel.Map("store.assoc_range_batch", len(groups), func(p int) error {
		g := groups[p]
		if len(g.lreqs) == 0 {
			return nil
		}
		data, err := primaries[p].Edges().GetEdgeRangeBatch(g.lreqs)
		if err != nil {
			return err
		}
		for k, i := range g.back {
			out[i] = data[k]
		}
		return nil
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	for _, i := range slow {
		data, err := s.assocRangeScalar(reqs[i])
		if err != nil {
			return nil, err
		}
		out[i] = data
	}
	var found int64
	for i := range reqs {
		if j := dupOf[i]; j >= 0 {
			out[i] = out[j]
		}
		if out[i] != nil {
			found++
		}
	}
	if telemetry.Enabled() {
		mBatchRecords.Add(found)
	}
	return out, nil
}

// assocRangeScalar is the overlay-merging fallback: the exact scalar
// loop the batch path must agree with.
func (s *Store) assocRangeScalar(req AssocRangeReq) ([]layout.EdgeData, error) {
	rec, ok := s.GetEdgeRecord(req.ID, req.Type)
	if !ok {
		return nil, nil
	}
	end := req.Idx + req.Limit
	if end > rec.Count() {
		end = rec.Count()
	}
	var out []layout.EdgeData
	for i := req.Idx; i < end; i++ {
		if i < 0 {
			continue
		}
		d, err := rec.GetEdgeData(i)
		if err != nil {
			return nil, err
		}
		out = append(out, d)
	}
	return out, nil
}
