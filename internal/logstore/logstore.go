// Package logstore implements ZipG's write path (§3.5): a single
// query-optimized (rather than memory-optimized) LogStore that absorbs
// all writes. When its size crosses a threshold, the store freezes it
// into a compressed shard and starts a new one — the previously
// compressed data is never touched, which is what keeps writes from
// interfering with reads on compressed shards.
//
// "Query-optimized" here means native hash maps and slices with direct
// lookups; the price is the memory overhead factor below, which is
// exactly the trade the paper makes by dedicating one server to the
// LogStore.
package logstore

import (
	"fmt"
	"sort"
	"sync"

	"zipg/internal/layout"
	"zipg/internal/memsim"
	"zipg/internal/telemetry"
)

// Telemetry series for the write path: append volume and the
// hit/miss split of reads that consult the LogStore (the numerator of
// the LogStore hit rate the bench harness reports).
var (
	mAppendNodes = telemetry.NewCounterL("zipg_logstore_appends_total", `kind="node"`,
		"LogStore appends, by record kind.")
	mAppendEdges = telemetry.NewCounterL("zipg_logstore_appends_total", `kind="edge"`,
		"LogStore appends, by record kind.")
	mAppendBytes = telemetry.NewCounter("zipg_logstore_bytes_total",
		"Serialized-equivalent bytes absorbed by LogStore appends.")
	mReadHits = telemetry.NewCounterL("zipg_logstore_reads_total", `result="hit"`,
		"Reads that consulted the LogStore, by hit/miss.")
	mReadMisses = telemetry.NewCounterL("zipg_logstore_reads_total", `result="miss"`,
		"Reads that consulted the LogStore, by hit/miss.")
)

// recordRead counts one LogStore read against the hit-rate series.
func recordRead(hit bool) {
	if hit {
		mReadHits.Inc()
	} else {
		mReadMisses.Inc()
	}
}

// QueryOptimizedOverhead approximates the space blow-up of the pointer-
// rich in-memory representation relative to the serialized layout. It is
// charged to the medium so footprint comparisons stay honest.
const QueryOptimizedOverhead = 2

type edgeKey struct {
	Src  layout.NodeID
	Type layout.EdgeType
}

// LogStore is a mutable, uncompressed graph fragment. It is safe for
// concurrent use.
type LogStore struct {
	nodeSchema *layout.PropertySchema
	edgeSchema *layout.PropertySchema
	med        *memsim.Medium
	gen        int

	mu    sync.RWMutex
	nodes map[layout.NodeID]map[string]string
	edges map[edgeKey][]layout.Edge
	size  int64 // serialized-equivalent bytes absorbed so far
}

// New creates an empty LogStore with the given generation number (its
// position in the store's fragment chain).
func New(nodeSchema, edgeSchema *layout.PropertySchema, med *memsim.Medium, gen int) *LogStore {
	if med == nil {
		med = memsim.Unlimited()
	}
	return &LogStore{
		nodeSchema: nodeSchema,
		edgeSchema: edgeSchema,
		med:        med,
		gen:        gen,
		nodes:      make(map[layout.NodeID]map[string]string),
		edges:      make(map[edgeKey][]layout.Edge),
	}
}

// Gen returns the LogStore's generation number.
func (l *LogStore) Gen() int { return l.gen }

// Size returns the serialized-equivalent bytes absorbed so far (what the
// rollover threshold is compared against).
func (l *LogStore) Size() int64 {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.size
}

// AddNode inserts or replaces the node's property list.
func (l *LogStore) AddNode(id layout.NodeID, props map[string]string) error {
	if id < 0 {
		return fmt.Errorf("logstore: negative node ID %d", id)
	}
	// Validate against the schema before mutating.
	if _, err := l.nodeSchema.SerializeProps(nil, props); err != nil {
		return err
	}
	cp := make(map[string]string, len(props))
	for k, v := range props {
		cp[k] = v
	}
	grow := int64(l.nodeSchema.PropsEncodedSize(props)) * QueryOptimizedOverhead
	l.mu.Lock()
	l.nodes[id] = cp
	l.size += grow
	l.mu.Unlock()
	l.med.Grow(grow)
	mAppendNodes.Inc()
	mAppendBytes.Add(grow)
	return nil
}

// AddEdge appends one edge.
func (l *LogStore) AddEdge(e layout.Edge) error {
	if e.Src < 0 || e.Dst < 0 || e.Type < 0 || e.Timestamp < 0 {
		return fmt.Errorf("logstore: negative field in edge %+v", e)
	}
	blob, err := l.edgeSchema.SerializeProps(nil, e.Props)
	if err != nil {
		return err
	}
	grow := int64(len(blob)+24) * QueryOptimizedOverhead
	k := edgeKey{e.Src, e.Type}
	l.mu.Lock()
	l.edges[k] = append(l.edges[k], e)
	l.size += grow
	l.mu.Unlock()
	l.med.Grow(grow)
	mAppendEdges.Inc()
	mAppendBytes.Add(grow)
	return nil
}

// RemoveNode drops a node's properties from this fragment (used when the
// node is deleted while its latest version still lives here).
func (l *LogStore) RemoveNode(id layout.NodeID) {
	l.mu.Lock()
	delete(l.nodes, id)
	l.mu.Unlock()
}

// RemoveEdges drops all (src, etype, dst) edges from this fragment and
// reports how many were removed.
func (l *LogStore) RemoveEdges(src layout.NodeID, etype layout.EdgeType, dst layout.NodeID) int {
	k := edgeKey{src, etype}
	l.mu.Lock()
	defer l.mu.Unlock()
	es := l.edges[k]
	kept := es[:0]
	removed := 0
	for _, e := range es {
		if e.Dst == dst {
			removed++
			continue
		}
		kept = append(kept, e)
	}
	if removed > 0 {
		if len(kept) == 0 {
			delete(l.edges, k)
		} else {
			l.edges[k] = kept
		}
	}
	return removed
}

// HasNode reports whether this fragment holds a property record for id.
func (l *LogStore) HasNode(id layout.NodeID) bool {
	l.mu.RLock()
	defer l.mu.RUnlock()
	_, ok := l.nodes[id]
	return ok
}

// NodeProps returns a copy of the node's properties.
func (l *LogStore) NodeProps(id layout.NodeID) (map[string]string, bool) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	props, ok := l.nodes[id]
	recordRead(ok)
	if !ok {
		return nil, false
	}
	cp := make(map[string]string, len(props))
	for k, v := range props {
		cp[k] = v
	}
	return cp, true
}

// FindNodes returns IDs of nodes in this fragment matching all property
// pairs exactly, ascending.
func (l *LogStore) FindNodes(props map[string]string) []layout.NodeID {
	if len(props) == 0 {
		return nil
	}
	l.mu.RLock()
	defer l.mu.RUnlock()
	var out []layout.NodeID
	for id, np := range l.nodes {
		match := true
		for k, v := range props {
			if np[k] != v {
				match = false
				break
			}
		}
		if match {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// EdgeEntries returns the fragment's (src, etype) edges sorted by
// timestamp.
func (l *LogStore) EdgeEntries(src layout.NodeID, etype layout.EdgeType) []layout.Edge {
	l.mu.RLock()
	es := l.edges[edgeKey{src, etype}]
	cp := append([]layout.Edge(nil), es...)
	l.mu.RUnlock()
	recordRead(len(cp) > 0)
	sort.SliceStable(cp, func(i, j int) bool { return cp[i].Timestamp < cp[j].Timestamp })
	return cp
}

// EdgeTypes returns the distinct edge types with entries for src.
func (l *LogStore) EdgeTypes(src layout.NodeID) []layout.EdgeType {
	l.mu.RLock()
	defer l.mu.RUnlock()
	var out []layout.EdgeType
	for k, es := range l.edges {
		if k.Src == src && len(es) > 0 {
			out = append(out, k.Type)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Contents snapshots everything in the fragment for freezing into a
// compressed shard.
func (l *LogStore) Contents() ([]layout.Node, []layout.Edge) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	nodes := make([]layout.Node, 0, len(l.nodes))
	for id, props := range l.nodes {
		cp := make(map[string]string, len(props))
		for k, v := range props {
			cp[k] = v
		}
		nodes = append(nodes, layout.Node{ID: id, Props: cp})
	}
	var edges []layout.Edge
	for _, es := range l.edges {
		edges = append(edges, es...)
	}
	return nodes, edges
}

// FindEdges returns this fragment's edges whose property lists match all
// pairs exactly (the edge-search extension; §3.3).
func (l *LogStore) FindEdges(props map[string]string) []layout.Edge {
	if len(props) == 0 {
		return nil
	}
	l.mu.RLock()
	defer l.mu.RUnlock()
	var out []layout.Edge
	for _, es := range l.edges {
		for _, e := range es {
			match := true
			for k, v := range props {
				if e.Props[k] != v {
					match = false
					break
				}
			}
			if match {
				out = append(out, e)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Src != out[j].Src {
			return out[i].Src < out[j].Src
		}
		if out[i].Type != out[j].Type {
			return out[i].Type < out[j].Type
		}
		return out[i].Timestamp < out[j].Timestamp
	})
	return out
}
