// Package logstore implements ZipG's write path (§3.5): a single
// query-optimized (rather than memory-optimized) LogStore that absorbs
// all writes. When its size crosses a threshold, the store freezes it
// into a compressed shard and starts a new one — the previously
// compressed data is never touched, which is what keeps writes from
// interfering with reads on compressed shards.
//
// "Query-optimized" here means native hash maps and slices with direct
// lookups; the price is the memory overhead factor below, which is
// exactly the trade the paper makes by dedicating one server to the
// LogStore.
package logstore

import (
	"fmt"
	"sort"
	"sync"

	"zipg/internal/layout"
	"zipg/internal/memsim"
	"zipg/internal/telemetry"
)

// Telemetry series for the write path: append volume and the
// hit/miss split of reads that consult the LogStore (the numerator of
// the LogStore hit rate the bench harness reports).
var (
	mAppendNodes = telemetry.NewCounterL("zipg_logstore_appends_total", `kind="node"`,
		"LogStore appends, by record kind.")
	mAppendEdges = telemetry.NewCounterL("zipg_logstore_appends_total", `kind="edge"`,
		"LogStore appends, by record kind.")
	mAppendBytes = telemetry.NewCounter("zipg_logstore_bytes_total",
		"Serialized-equivalent bytes absorbed by LogStore appends.")
	mReadHits = telemetry.NewCounterL("zipg_logstore_reads_total", `result="hit"`,
		"Reads that consulted the LogStore, by hit/miss.")
	mReadMisses = telemetry.NewCounterL("zipg_logstore_reads_total", `result="miss"`,
		"Reads that consulted the LogStore, by hit/miss.")
)

// recordRead counts one LogStore read against the hit-rate series.
func recordRead(hit bool) {
	if hit {
		mReadHits.Inc()
	} else {
		mReadMisses.Inc()
	}
}

// QueryOptimizedOverhead approximates the space blow-up of the pointer-
// rich in-memory representation relative to the serialized layout. It is
// charged to the medium so footprint comparisons stay honest.
const QueryOptimizedOverhead = 2

type edgeKey struct {
	Src  layout.NodeID
	Type layout.EdgeType
}

// LogStore is a mutable, uncompressed graph fragment. It is safe for
// concurrent use.
type LogStore struct {
	nodeSchema *layout.PropertySchema
	edgeSchema *layout.PropertySchema
	med        *memsim.Medium
	gen        int

	mu    sync.RWMutex
	nodes map[layout.NodeID]map[string]string
	edges map[edgeKey][]layout.Edge
	size  int64 // serialized-equivalent bytes absorbed so far
}

// New creates an empty LogStore with the given generation number (its
// position in the store's fragment chain).
func New(nodeSchema, edgeSchema *layout.PropertySchema, med *memsim.Medium, gen int) *LogStore {
	if med == nil {
		med = memsim.Unlimited()
	}
	return &LogStore{
		nodeSchema: nodeSchema,
		edgeSchema: edgeSchema,
		med:        med,
		gen:        gen,
		nodes:      make(map[layout.NodeID]map[string]string),
		edges:      make(map[edgeKey][]layout.Edge),
	}
}

// Gen returns the LogStore's generation number.
func (l *LogStore) Gen() int { return l.gen }

// Size returns the serialized-equivalent bytes absorbed so far (what the
// rollover threshold is compared against).
func (l *LogStore) Size() int64 {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.size
}

// Put is one prepared (validated, schema-checked, size-accounted)
// mutation, ready to be applied to a LogStore without any further
// fallible work. Exactly one of NodeID/Edge is meaningful; NodeProps
// is an already-copied map the LogStore may own. Prepared puts are the
// unit the store's group-committed write path batches: all validation
// and serialization-size work happens outside any lock, and ApplyPuts
// publishes a whole batch in one critical section.
type Put struct {
	IsNode    bool
	NodeID    layout.NodeID
	NodeProps map[string]string
	Edge      layout.Edge
	grow      int64
}

// PrepareNodePut validates a node append against the schema and
// returns a prepared put. No locks are taken.
func PrepareNodePut(schema *layout.PropertySchema, id layout.NodeID, props map[string]string) (Put, error) {
	if id < 0 {
		return Put{}, fmt.Errorf("logstore: negative node ID %d", id)
	}
	if _, err := schema.SerializeProps(nil, props); err != nil {
		return Put{}, err
	}
	cp := make(map[string]string, len(props))
	for k, v := range props {
		cp[k] = v
	}
	grow := int64(schema.PropsEncodedSize(props)) * QueryOptimizedOverhead
	return Put{IsNode: true, NodeID: id, NodeProps: cp, grow: grow}, nil
}

// PrepareEdgePut validates an edge append against the schema and
// returns a prepared put. No locks are taken.
func PrepareEdgePut(schema *layout.PropertySchema, e layout.Edge) (Put, error) {
	if e.Src < 0 || e.Dst < 0 || e.Type < 0 || e.Timestamp < 0 {
		return Put{}, fmt.Errorf("logstore: negative field in edge %+v", e)
	}
	blob, err := schema.SerializeProps(nil, e.Props)
	if err != nil {
		return Put{}, err
	}
	grow := int64(len(blob)+24) * QueryOptimizedOverhead
	return Put{Edge: e, grow: grow}, nil
}

// ApplyPuts publishes a batch of prepared puts under one acquisition
// of the LogStore lock, in order. It cannot fail: every fallible step
// ran in Prepare*Put.
func (l *LogStore) ApplyPuts(puts []Put) {
	if len(puts) == 0 {
		return
	}
	var grow int64
	var nNodes, nEdges int64
	l.mu.Lock()
	for i := range puts {
		p := &puts[i]
		if p.IsNode {
			l.nodes[p.NodeID] = p.NodeProps
			nNodes++
		} else {
			k := edgeKey{p.Edge.Src, p.Edge.Type}
			l.edges[k] = append(l.edges[k], p.Edge)
			nEdges++
		}
		l.size += p.grow
		grow += p.grow
	}
	l.mu.Unlock()
	l.med.Grow(grow)
	mAppendNodes.Add(nNodes)
	mAppendEdges.Add(nEdges)
	mAppendBytes.Add(grow)
}

// AddNode inserts or replaces the node's property list.
func (l *LogStore) AddNode(id layout.NodeID, props map[string]string) error {
	put, err := PrepareNodePut(l.nodeSchema, id, props)
	if err != nil {
		return err
	}
	l.mu.Lock()
	l.nodes[id] = put.NodeProps
	l.size += put.grow
	l.mu.Unlock()
	l.med.Grow(put.grow)
	mAppendNodes.Inc()
	mAppendBytes.Add(put.grow)
	return nil
}

// AddEdge appends one edge.
func (l *LogStore) AddEdge(e layout.Edge) error {
	put, err := PrepareEdgePut(l.edgeSchema, e)
	if err != nil {
		return err
	}
	k := edgeKey{e.Src, e.Type}
	l.mu.Lock()
	l.edges[k] = append(l.edges[k], e)
	l.size += put.grow
	l.mu.Unlock()
	l.med.Grow(put.grow)
	mAppendEdges.Inc()
	mAppendBytes.Add(put.grow)
	return nil
}

// RemoveNode drops a node's properties from this fragment (used when the
// node is deleted while its latest version still lives here).
func (l *LogStore) RemoveNode(id layout.NodeID) {
	l.mu.Lock()
	delete(l.nodes, id)
	l.mu.Unlock()
}

// RemoveEdges drops all (src, etype, dst) edges from this fragment and
// reports how many were removed. The surviving entries go into a fresh
// slice (never compacted in place): snapshot readers may still hold the
// old backing array outside the lock.
func (l *LogStore) RemoveEdges(src layout.NodeID, etype layout.EdgeType, dst layout.NodeID) int {
	k := edgeKey{src, etype}
	l.mu.Lock()
	defer l.mu.Unlock()
	es := l.edges[k]
	removed := 0
	for _, e := range es {
		if e.Dst == dst {
			removed++
		}
	}
	if removed == 0 {
		return 0
	}
	if removed == len(es) {
		delete(l.edges, k)
		return removed
	}
	kept := make([]layout.Edge, 0, len(es)-removed)
	for _, e := range es {
		if e.Dst != dst {
			kept = append(kept, e)
		}
	}
	l.edges[k] = kept
	return removed
}

// HasNode reports whether this fragment holds a property record for id.
func (l *LogStore) HasNode(id layout.NodeID) bool {
	l.mu.RLock()
	defer l.mu.RUnlock()
	_, ok := l.nodes[id]
	return ok
}

// NodeProps returns a copy of the node's properties.
func (l *LogStore) NodeProps(id layout.NodeID) (map[string]string, bool) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	props, ok := l.nodes[id]
	recordRead(ok)
	if !ok {
		return nil, false
	}
	cp := make(map[string]string, len(props))
	for k, v := range props {
		cp[k] = v
	}
	return cp, true
}

// snapshotNodes returns a shallow copy of the node table taken under
// the read lock. The inner property maps are safe to read outside the
// lock: AddNode replaces a node's entry with a freshly built map and
// never mutates the old one.
func (l *LogStore) snapshotNodes() map[layout.NodeID]map[string]string {
	l.mu.RLock()
	cp := make(map[layout.NodeID]map[string]string, len(l.nodes))
	for id, props := range l.nodes {
		cp[id] = props
	}
	l.mu.RUnlock()
	return cp
}

// snapshotEdges returns a shallow copy of the edge table taken under
// the read lock. The entry slices are safe to read outside the lock:
// AddEdge appends beyond the snapshotted length and RemoveEdges
// replaces the slice with a fresh one, so the elements a snapshot can
// see are never rewritten.
func (l *LogStore) snapshotEdges() map[edgeKey][]layout.Edge {
	l.mu.RLock()
	cp := make(map[edgeKey][]layout.Edge, len(l.edges))
	for k, es := range l.edges {
		cp[k] = es
	}
	l.mu.RUnlock()
	return cp
}

// FindNodes returns IDs of nodes in this fragment matching all property
// pairs exactly, ascending. The LogStore lock is held only for a
// shallow table snapshot; the scan itself runs outside it, so a long
// search (or compaction's materialize pass) never stalls appends.
func (l *LogStore) FindNodes(props map[string]string) []layout.NodeID {
	if len(props) == 0 {
		return nil
	}
	var out []layout.NodeID
	for id, np := range l.snapshotNodes() {
		match := true
		for k, v := range props {
			if np[k] != v {
				match = false
				break
			}
		}
		if match {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// EdgeEntries returns the fragment's (src, etype) edges sorted by
// timestamp.
func (l *LogStore) EdgeEntries(src layout.NodeID, etype layout.EdgeType) []layout.Edge {
	l.mu.RLock()
	es := l.edges[edgeKey{src, etype}]
	cp := append([]layout.Edge(nil), es...)
	l.mu.RUnlock()
	recordRead(len(cp) > 0)
	sort.SliceStable(cp, func(i, j int) bool { return cp[i].Timestamp < cp[j].Timestamp })
	return cp
}

// CountEdges returns how many (src, etype, dst) entries this fragment
// holds — what a delete against a sealed (immutable) generation needs
// to size its tombstone.
func (l *LogStore) CountEdges(src layout.NodeID, etype layout.EdgeType, dst layout.NodeID) int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	n := 0
	for _, e := range l.edges[edgeKey{src, etype}] {
		if e.Dst == dst {
			n++
		}
	}
	return n
}

// EdgeTypes returns the distinct edge types with entries for src.
func (l *LogStore) EdgeTypes(src layout.NodeID) []layout.EdgeType {
	l.mu.RLock()
	defer l.mu.RUnlock()
	var out []layout.EdgeType
	for k, es := range l.edges {
		if k.Src == src && len(es) > 0 {
			out = append(out, k.Type)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Contents snapshots everything in the fragment for freezing into a
// compressed shard. The LogStore lock is held only for the shallow
// table snapshots; the deep copy runs outside it, so freezing a large
// fragment does not stall concurrent appends. Output is deterministic:
// nodes ascend by ID and edges are grouped by (src, type) ascending,
// preserving append order within a group.
func (l *LogStore) Contents() ([]layout.Node, []layout.Edge) {
	nodeTab := l.snapshotNodes()
	edgeTab := l.snapshotEdges()

	nodes := make([]layout.Node, 0, len(nodeTab))
	for id, props := range nodeTab {
		cp := make(map[string]string, len(props))
		for k, v := range props {
			cp[k] = v
		}
		nodes = append(nodes, layout.Node{ID: id, Props: cp})
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].ID < nodes[j].ID })

	keys := make([]edgeKey, 0, len(edgeTab))
	for k := range edgeTab {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Src != keys[j].Src {
			return keys[i].Src < keys[j].Src
		}
		return keys[i].Type < keys[j].Type
	})
	var edges []layout.Edge
	for _, k := range keys {
		edges = append(edges, edgeTab[k]...)
	}
	return nodes, edges
}

// FindEdges returns this fragment's edges whose property lists match all
// pairs exactly (the edge-search extension; §3.3). Like FindNodes, the
// scan runs against a shallow snapshot outside the LogStore lock.
func (l *LogStore) FindEdges(props map[string]string) []layout.Edge {
	if len(props) == 0 {
		return nil
	}
	var out []layout.Edge
	for _, es := range l.snapshotEdges() {
		for _, e := range es {
			match := true
			for k, v := range props {
				if e.Props[k] != v {
					match = false
					break
				}
			}
			if match {
				out = append(out, e)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Src != out[j].Src {
			return out[i].Src < out[j].Src
		}
		if out[i].Type != out[j].Type {
			return out[i].Type < out[j].Type
		}
		return out[i].Timestamp < out[j].Timestamp
	})
	return out
}
