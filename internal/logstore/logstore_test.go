package logstore

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"zipg/internal/layout"
)

func testLog(t testing.TB) *LogStore {
	t.Helper()
	ns, err := layout.NewPropertySchema([]string{"a", "b"}, 64)
	if err != nil {
		t.Fatal(err)
	}
	es, err := layout.NewPropertySchema([]string{"w"}, 64)
	if err != nil {
		t.Fatal(err)
	}
	return New(ns, es, nil, 3)
}

func TestNodeLifecycle(t *testing.T) {
	l := testLog(t)
	if l.Gen() != 3 {
		t.Fatalf("gen = %d", l.Gen())
	}
	if err := l.AddNode(7, map[string]string{"a": "x"}); err != nil {
		t.Fatal(err)
	}
	if !l.HasNode(7) || l.HasNode(8) {
		t.Fatal("HasNode wrong")
	}
	props, ok := l.NodeProps(7)
	if !ok || props["a"] != "x" {
		t.Fatalf("NodeProps = %v", props)
	}
	// Replacement.
	if err := l.AddNode(7, map[string]string{"b": "y"}); err != nil {
		t.Fatal(err)
	}
	props, _ = l.NodeProps(7)
	if props["a"] != "" || props["b"] != "y" {
		t.Fatalf("replace failed: %v", props)
	}
	l.RemoveNode(7)
	if l.HasNode(7) {
		t.Fatal("RemoveNode failed")
	}
	// Validation.
	if err := l.AddNode(1, map[string]string{"nope": "x"}); err == nil {
		t.Fatal("unknown property accepted")
	}
	if err := l.AddNode(-1, nil); err == nil {
		t.Fatal("negative ID accepted")
	}
}

func TestEdgeLifecycle(t *testing.T) {
	l := testLog(t)
	for i := 0; i < 10; i++ {
		err := l.AddEdge(layout.Edge{Src: 1, Dst: int64(i), Type: 0, Timestamp: int64(100 - i*10)})
		if err != nil {
			t.Fatal(err)
		}
	}
	es := l.EdgeEntries(1, 0)
	if len(es) != 10 {
		t.Fatalf("entries = %d", len(es))
	}
	for i := 1; i < len(es); i++ {
		if es[i].Timestamp < es[i-1].Timestamp {
			t.Fatal("entries unsorted")
		}
	}
	if got := l.EdgeTypes(1); !reflect.DeepEqual(got, []layout.EdgeType{0}) {
		t.Fatalf("EdgeTypes = %v", got)
	}
	if removed := l.RemoveEdges(1, 0, 5); removed != 1 {
		t.Fatalf("removed %d", removed)
	}
	if len(l.EdgeEntries(1, 0)) != 9 {
		t.Fatal("remove did not shrink")
	}
	if err := l.AddEdge(layout.Edge{Src: 1, Dst: -1}); err == nil {
		t.Fatal("negative dst accepted")
	}
}

func TestFindNodes(t *testing.T) {
	l := testLog(t)
	for i := 0; i < 10; i++ {
		v := "odd"
		if i%2 == 0 {
			v = "even"
		}
		if err := l.AddNode(int64(i), map[string]string{"a": v}); err != nil {
			t.Fatal(err)
		}
	}
	got := l.FindNodes(map[string]string{"a": "even"})
	if !reflect.DeepEqual(got, []layout.NodeID{0, 2, 4, 6, 8}) {
		t.Fatalf("FindNodes = %v", got)
	}
	if l.FindNodes(nil) != nil {
		t.Fatal("empty filter should return nil")
	}
}

func TestSizeGrowsAndContents(t *testing.T) {
	l := testLog(t)
	if l.Size() != 0 {
		t.Fatal("fresh log not empty")
	}
	for i := 0; i < 20; i++ {
		if err := l.AddNode(int64(i), map[string]string{"a": fmt.Sprint(i)}); err != nil {
			t.Fatal(err)
		}
		if err := l.AddEdge(layout.Edge{Src: int64(i), Dst: 0, Type: 0, Timestamp: 1}); err != nil {
			t.Fatal(err)
		}
	}
	if l.Size() == 0 {
		t.Fatal("size did not grow")
	}
	nodes, edges := l.Contents()
	if len(nodes) != 20 || len(edges) != 20 {
		t.Fatalf("contents = %d nodes, %d edges", len(nodes), len(edges))
	}
}

func TestConcurrentUse(t *testing.T) {
	l := testLog(t)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				id := int64(g*1000 + i)
				if err := l.AddNode(id, map[string]string{"a": "v"}); err != nil {
					t.Error(err)
					return
				}
				if err := l.AddEdge(layout.Edge{Src: id % 7, Dst: id, Type: 0, Timestamp: id}); err != nil {
					t.Error(err)
					return
				}
				l.NodeProps(id)
				l.EdgeEntries(id%7, 0)
			}
		}(g)
	}
	wg.Wait()
	nodes, edges := l.Contents()
	if len(nodes) != 800 || len(edges) != 800 {
		t.Fatalf("after concurrent use: %d nodes, %d edges", len(nodes), len(edges))
	}
}
