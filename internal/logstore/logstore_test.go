package logstore

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"zipg/internal/layout"
)

func testLog(t testing.TB) *LogStore {
	t.Helper()
	ns, err := layout.NewPropertySchema([]string{"a", "b"}, 64)
	if err != nil {
		t.Fatal(err)
	}
	es, err := layout.NewPropertySchema([]string{"w"}, 64)
	if err != nil {
		t.Fatal(err)
	}
	return New(ns, es, nil, 3)
}

func TestNodeLifecycle(t *testing.T) {
	l := testLog(t)
	if l.Gen() != 3 {
		t.Fatalf("gen = %d", l.Gen())
	}
	if err := l.AddNode(7, map[string]string{"a": "x"}); err != nil {
		t.Fatal(err)
	}
	if !l.HasNode(7) || l.HasNode(8) {
		t.Fatal("HasNode wrong")
	}
	props, ok := l.NodeProps(7)
	if !ok || props["a"] != "x" {
		t.Fatalf("NodeProps = %v", props)
	}
	// Replacement.
	if err := l.AddNode(7, map[string]string{"b": "y"}); err != nil {
		t.Fatal(err)
	}
	props, _ = l.NodeProps(7)
	if props["a"] != "" || props["b"] != "y" {
		t.Fatalf("replace failed: %v", props)
	}
	l.RemoveNode(7)
	if l.HasNode(7) {
		t.Fatal("RemoveNode failed")
	}
	// Validation.
	if err := l.AddNode(1, map[string]string{"nope": "x"}); err == nil {
		t.Fatal("unknown property accepted")
	}
	if err := l.AddNode(-1, nil); err == nil {
		t.Fatal("negative ID accepted")
	}
}

func TestEdgeLifecycle(t *testing.T) {
	l := testLog(t)
	for i := 0; i < 10; i++ {
		err := l.AddEdge(layout.Edge{Src: 1, Dst: int64(i), Type: 0, Timestamp: int64(100 - i*10)})
		if err != nil {
			t.Fatal(err)
		}
	}
	es := l.EdgeEntries(1, 0)
	if len(es) != 10 {
		t.Fatalf("entries = %d", len(es))
	}
	for i := 1; i < len(es); i++ {
		if es[i].Timestamp < es[i-1].Timestamp {
			t.Fatal("entries unsorted")
		}
	}
	if got := l.EdgeTypes(1); !reflect.DeepEqual(got, []layout.EdgeType{0}) {
		t.Fatalf("EdgeTypes = %v", got)
	}
	if removed := l.RemoveEdges(1, 0, 5); removed != 1 {
		t.Fatalf("removed %d", removed)
	}
	if len(l.EdgeEntries(1, 0)) != 9 {
		t.Fatal("remove did not shrink")
	}
	if err := l.AddEdge(layout.Edge{Src: 1, Dst: -1}); err == nil {
		t.Fatal("negative dst accepted")
	}
}

func TestFindNodes(t *testing.T) {
	l := testLog(t)
	for i := 0; i < 10; i++ {
		v := "odd"
		if i%2 == 0 {
			v = "even"
		}
		if err := l.AddNode(int64(i), map[string]string{"a": v}); err != nil {
			t.Fatal(err)
		}
	}
	got := l.FindNodes(map[string]string{"a": "even"})
	if !reflect.DeepEqual(got, []layout.NodeID{0, 2, 4, 6, 8}) {
		t.Fatalf("FindNodes = %v", got)
	}
	if l.FindNodes(nil) != nil {
		t.Fatal("empty filter should return nil")
	}
}

func TestSizeGrowsAndContents(t *testing.T) {
	l := testLog(t)
	if l.Size() != 0 {
		t.Fatal("fresh log not empty")
	}
	for i := 0; i < 20; i++ {
		if err := l.AddNode(int64(i), map[string]string{"a": fmt.Sprint(i)}); err != nil {
			t.Fatal(err)
		}
		if err := l.AddEdge(layout.Edge{Src: int64(i), Dst: 0, Type: 0, Timestamp: 1}); err != nil {
			t.Fatal(err)
		}
	}
	if l.Size() == 0 {
		t.Fatal("size did not grow")
	}
	nodes, edges := l.Contents()
	if len(nodes) != 20 || len(edges) != 20 {
		t.Fatalf("contents = %d nodes, %d edges", len(nodes), len(edges))
	}
}

func TestConcurrentUse(t *testing.T) {
	l := testLog(t)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				id := int64(g*1000 + i)
				if err := l.AddNode(id, map[string]string{"a": "v"}); err != nil {
					t.Error(err)
					return
				}
				if err := l.AddEdge(layout.Edge{Src: id % 7, Dst: id, Type: 0, Timestamp: id}); err != nil {
					t.Error(err)
					return
				}
				l.NodeProps(id)
				l.EdgeEntries(id%7, 0)
			}
		}(g)
	}
	wg.Wait()
	nodes, edges := l.Contents()
	if len(nodes) != 800 || len(edges) != 800 {
		t.Fatalf("after concurrent use: %d nodes, %d edges", len(nodes), len(edges))
	}
}

func TestPreparedPuts(t *testing.T) {
	l := testLog(t)
	ns, es := l.nodeSchema, l.edgeSchema
	// Validation happens at prepare time, outside any lock.
	if _, err := PrepareNodePut(ns, -1, nil); err == nil {
		t.Fatal("negative node ID accepted")
	}
	if _, err := PrepareNodePut(ns, 1, map[string]string{"nope": "x"}); err == nil {
		t.Fatal("unknown property accepted")
	}
	if _, err := PrepareEdgePut(es, layout.Edge{Src: 1, Dst: -2}); err == nil {
		t.Fatal("negative edge field accepted")
	}
	var puts []Put
	for i := 0; i < 5; i++ {
		p, err := PrepareNodePut(ns, int64(i), map[string]string{"a": fmt.Sprint(i)})
		if err != nil {
			t.Fatal(err)
		}
		puts = append(puts, p)
		ep, err := PrepareEdgePut(es, layout.Edge{Src: int64(i), Dst: 9, Type: 1, Timestamp: int64(i + 1)})
		if err != nil {
			t.Fatal(err)
		}
		puts = append(puts, ep)
	}
	l.ApplyPuts(puts)
	if l.Size() == 0 {
		t.Fatal("ApplyPuts did not grow size")
	}
	nodes, edges := l.Contents()
	if len(nodes) != 5 || len(edges) != 5 {
		t.Fatalf("after ApplyPuts: %d nodes, %d edges", len(nodes), len(edges))
	}
	// A batch must behave exactly like the per-record calls.
	ref := testLog(t)
	for i := 0; i < 5; i++ {
		if err := ref.AddNode(int64(i), map[string]string{"a": fmt.Sprint(i)}); err != nil {
			t.Fatal(err)
		}
		if err := ref.AddEdge(layout.Edge{Src: int64(i), Dst: 9, Type: 1, Timestamp: int64(i + 1)}); err != nil {
			t.Fatal(err)
		}
	}
	rn, re := ref.Contents()
	if !reflect.DeepEqual(nodes, rn) || !reflect.DeepEqual(edges, re) {
		t.Fatal("ApplyPuts contents differ from per-record appends")
	}
	if l.Size() != ref.Size() {
		t.Fatalf("size accounting differs: %d vs %d", l.Size(), ref.Size())
	}
}

func TestCountEdges(t *testing.T) {
	l := testLog(t)
	for i := 0; i < 3; i++ {
		if err := l.AddEdge(layout.Edge{Src: 4, Dst: 8, Type: 2, Timestamp: int64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.AddEdge(layout.Edge{Src: 4, Dst: 9, Type: 2, Timestamp: 5}); err != nil {
		t.Fatal(err)
	}
	if n := l.CountEdges(4, 8, 8); n != 0 {
		t.Fatalf("CountEdges wrong type = %d", n)
	}
	if n := l.CountEdges(4, 2, 8); n != 3 {
		t.Fatalf("CountEdges = %d, want 3", n)
	}
	if n := l.CountEdges(4, 2, 9); n != 1 {
		t.Fatalf("CountEdges = %d, want 1", n)
	}
}

// TestContentsDeterministic locks Contents' ordering contract: nodes
// ascend by ID and edges group by (src, type) ascending — the property
// compaction's byte-identical rebuilds stand on.
func TestContentsDeterministic(t *testing.T) {
	build := func() *LogStore {
		l := testLog(t)
		for _, id := range []int64{9, 3, 7, 1, 5} {
			if err := l.AddNode(id, map[string]string{"a": fmt.Sprint(id)}); err != nil {
				t.Fatal(err)
			}
			if err := l.AddEdge(layout.Edge{Src: id, Dst: id + 1, Type: id % 3, Timestamp: 100 - id}); err != nil {
				t.Fatal(err)
			}
		}
		return l
	}
	n1, e1 := build().Contents()
	for i := 1; i < len(n1); i++ {
		if n1[i-1].ID >= n1[i].ID {
			t.Fatalf("nodes not ascending at %d: %v", i, n1)
		}
	}
	for i := 1; i < len(e1); i++ {
		a, b := e1[i-1], e1[i]
		if a.Src > b.Src || (a.Src == b.Src && a.Type > b.Type) {
			t.Fatalf("edges not grouped ascending at %d", i)
		}
	}
	for trial := 0; trial < 5; trial++ {
		n2, e2 := build().Contents()
		if !reflect.DeepEqual(n1, n2) || !reflect.DeepEqual(e1, e2) {
			t.Fatalf("Contents differ across identical builds (trial %d)", trial)
		}
	}
}
