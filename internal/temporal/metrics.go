package temporal

import "zipg/internal/telemetry"

// Telemetry series for the temporal engine. Pruning and scan-volume
// counters (zipg_temporal_{pieces,shards_pruned,edges_scanned}_total)
// live in the store, where the windowed scans run; this file covers the
// query taxonomy and the subscription delivery path.
const (
	helpTemporalQueries = "Temporal queries executed, by query class."
)

var (
	mQueryRange = telemetry.NewCounterL("zipg_temporal_queries_total", `op="assoc_time_range"`, helpTemporalQueries)
	mQueryCount = telemetry.NewCounterL("zipg_temporal_queries_total", `op="assoc_count_in_window"`, helpTemporalQueries)
	mQueryBatch = telemetry.NewCounterL("zipg_temporal_queries_total", `op="assoc_time_range_batch"`, helpTemporalQueries)
	mQueryPath  = telemetry.NewCounterL("zipg_temporal_queries_total", `op="path_in_window"`, helpTemporalQueries)

	// mSubEvents counts events enqueued onto subscriber rings (one per
	// matching subscriber, not one per published event).
	mSubEvents = telemetry.NewCounter("zipg_sub_events_total",
		"Events enqueued onto subscriber rings.")
	// mSubDropped counts events a full subscriber ring overwrote
	// (drop-oldest backpressure).
	mSubDropped = telemetry.NewCounter("zipg_sub_dropped_total",
		"Events dropped from subscriber rings (drop-oldest backpressure).")
	// mSubLagNs accumulates publish-to-delivery latency; divided by
	// zipg_sub_events_total it yields mean delivery lag.
	mSubLagNs = telemetry.NewCounter("zipg_sub_lag_ns_total",
		"Cumulative publish-to-delivery lag of delivered events, in nanoseconds.")
)

// telemetryEnabled gates the per-delivery clock reads in observeLag.
func telemetryEnabled() bool { return telemetry.Enabled() }

// RecordPathQuery counts a path_in_window query executed outside the
// engine — the cluster's distributed BFS coordinator drives
// BFSInWindow directly and reports here so the per-op taxonomy stays
// complete.
func RecordPathQuery() { mQueryPath.Inc() }
