package temporal_test

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"zipg"
	"zipg/internal/graphapi"
	"zipg/internal/layout"
	"zipg/internal/temporal"
)

// The differential suite: every temporal answer must match a naive
// reference that replays the full mutation history against plain
// slices. The graph under test is driven through heavy fragmentation
// (tiny LogStore threshold), node and edge deletes, and — in the racing
// variant — an online compaction concurrent with the queries, across
// sampling rates α ∈ {4, 8, 32}.

// naiveModel replays mutations against uncompressed state.
type naiveModel struct {
	nodes map[int64]bool
	edges []layout.Edge // live edges, append order
}

func newNaive(nodes []layout.Node, edges []layout.Edge) *naiveModel {
	m := &naiveModel{nodes: make(map[int64]bool)}
	for _, n := range nodes {
		m.nodes[n.ID] = true
	}
	m.edges = append(m.edges, edges...)
	return m
}

func (m *naiveModel) appendNode(id int64) { m.nodes[id] = true }

// appendEdge mirrors the store's endpoint auto-creation: appending an
// edge revives deleted endpoints (re-exposing their non-individually-
// deleted edges, the documented DeleteNode revival semantics).
func (m *naiveModel) appendEdge(e layout.Edge) {
	m.nodes[e.Src] = true
	m.nodes[e.Dst] = true
	m.edges = append(m.edges, e)
}
func (m *naiveModel) deleteNode(id int64) { delete(m.nodes, id) }
func (m *naiveModel) deleteEdges(src, etype, dst int64) {
	kept := m.edges[:0]
	for _, e := range m.edges {
		if e.Src == src && e.Type == etype && e.Dst == dst {
			continue
		}
		kept = append(kept, e)
	}
	m.edges = kept
}

// window returns the live in-window edges of (src, etype), canonically
// ordered.
func (m *naiveModel) window(src, etype, tLo, tHi int64) []layout.EdgeData {
	if !m.nodes[src] {
		return nil
	}
	var out []layout.EdgeData
	for _, e := range m.edges {
		if e.Src == src && e.Type == etype && e.Timestamp >= tLo && e.Timestamp < tHi {
			out = append(out, layout.EdgeData{Dst: e.Dst, Timestamp: e.Timestamp, Props: e.Props})
		}
	}
	canonicalize(out)
	return out
}

// neighbors returns the live in-window neighbor set of src (any type).
func (m *naiveModel) neighbors(src, tLo, tHi int64) []int64 {
	if !m.nodes[src] {
		return nil
	}
	seen := map[int64]bool{}
	var out []int64
	for _, e := range m.edges {
		if e.Src == src && e.Timestamp >= tLo && e.Timestamp < tHi && m.nodes[e.Dst] && !seen[e.Dst] {
			seen[e.Dst] = true
			out = append(out, e.Dst)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// shortestHops runs plain BFS over the naive in-window adjacency;
// returns -1 when dst is unreachable within maxHops.
func (m *naiveModel) shortestHops(src, dst, tLo, tHi int64, maxHops int) int {
	if !m.nodes[src] || !m.nodes[dst] {
		return -1
	}
	if src == dst {
		return 0
	}
	visited := map[int64]bool{src: true}
	frontier := []int64{src}
	for hop := 1; hop <= maxHops && len(frontier) > 0; hop++ {
		var next []int64
		for _, f := range frontier {
			for _, n := range m.neighbors(f, tLo, tHi) {
				if visited[n] {
					continue
				}
				if n == dst {
					return hop
				}
				visited[n] = true
				next = append(next, n)
			}
		}
		frontier = next
	}
	return -1
}

// canonicalize sorts edge data by (timestamp, dst, props fingerprint) —
// the store's tie order among equal timestamps depends on fragment
// placement, which the naive model does not reproduce.
func canonicalize(es []layout.EdgeData) {
	sort.Slice(es, func(i, j int) bool {
		if es[i].Timestamp != es[j].Timestamp {
			return es[i].Timestamp < es[j].Timestamp
		}
		if es[i].Dst != es[j].Dst {
			return es[i].Dst < es[j].Dst
		}
		return propsFP(es[i].Props) < propsFP(es[j].Props)
	})
}

func propsFP(m map[string]string) string {
	keys := make([]string, 0, len(m))
	for k := range m {
		if m[k] != "" {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	s := ""
	for _, k := range keys {
		s += k + "=" + m[k] + ";"
	}
	return s
}

func edgesFP(es []layout.EdgeData) string {
	s := ""
	for _, e := range es {
		s += fmt.Sprintf("(%d,%d,%s)", e.Dst, e.Timestamp, propsFP(e.Props))
	}
	return s
}

// buildDifferential compresses a seed graph and drives both it and the
// naive model through an identical mutation script.
func buildDifferential(t testing.TB, alpha int, seed int64) (*zipg.Graph, *naiveModel) {
	t.Helper()
	const nNodes = 40
	rng := rand.New(rand.NewSource(seed))
	nodes := make([]layout.Node, nNodes)
	for i := range nodes {
		nodes[i] = layout.Node{ID: int64(i), Props: map[string]string{"name": fmt.Sprintf("user%d", i)}}
	}
	var edges []layout.Edge
	for i := 0; i < 150; i++ {
		edges = append(edges, layout.Edge{
			Src: int64(rng.Intn(nNodes)), Dst: int64(rng.Intn(nNodes)),
			Type: int64(rng.Intn(3)), Timestamp: int64(rng.Intn(10000)),
			Props: map[string]string{"weight": fmt.Sprint(rng.Intn(10))},
		})
	}
	g, err := zipg.Compress(zipg.GraphData{Nodes: nodes, Edges: edges},
		zipg.Options{NumShards: 3, SamplingRate: alpha, LogStoreThreshold: 2500})
	if err != nil {
		t.Fatal(err)
	}
	m := newNaive(nodes, edges)

	for op := 0; op < 400; op++ {
		switch r := rng.Intn(100); {
		case r < 60: // append edge (tiny threshold: forces many rollovers)
			e := layout.Edge{
				Src: int64(rng.Intn(nNodes)), Dst: int64(rng.Intn(nNodes)),
				Type: int64(rng.Intn(3)), Timestamp: int64(rng.Intn(10000)),
				Props: map[string]string{"weight": fmt.Sprint(rng.Intn(10))},
			}
			if err := g.AppendEdge(e); err != nil {
				t.Fatal(err)
			}
			m.appendEdge(e)
		case r < 75: // delete one live triple
			if len(m.edges) == 0 {
				continue
			}
			e := m.edges[rng.Intn(len(m.edges))]
			if _, err := g.DeleteEdges(e.Src, e.Type, e.Dst); err != nil {
				t.Fatal(err)
			}
			m.deleteEdges(e.Src, e.Type, e.Dst)
		case r < 90: // rewrite a node's props (revives if deleted)
			id := int64(rng.Intn(nNodes))
			if err := g.AppendNode(id, map[string]string{"name": fmt.Sprintf("rw%d", op)}); err != nil {
				t.Fatal(err)
			}
			m.appendNode(id)
		default: // delete a node (a later append may revive it)
			id := int64(rng.Intn(nNodes))
			if err := g.DeleteNode(id); err != nil {
				t.Fatal(err)
			}
			m.deleteNode(id)
		}
	}
	return g, m
}

// testWindows is the window sample every comparison sweeps: full,
// halves, narrow bands, an empty band, and wildcard bounds.
var testWindows = [][2]int64{
	{0, 10000}, {0, 5000}, {5000, 10000}, {2500, 2600}, {9000, 9001},
	{4000, 4000}, {zipg.WildcardTime, zipg.WildcardTime}, {8000, zipg.WildcardTime},
}

func checkDifferential(t *testing.T, g *zipg.Graph, m *naiveModel, tag string) {
	t.Helper()
	eng := g.Temporal()
	for src := int64(0); src < 40; src++ {
		for etype := int64(0); etype < 3; etype++ {
			for _, w := range testWindows {
				got := eng.AssocTimeRange(src, etype, w[0], w[1], 0)
				canonicalize(got)
				lo, hi := graphapi.TimeBounds(w[0], w[1])
				want := m.window(src, etype, lo, hi)
				if edgesFP(got) != edgesFP(want) {
					t.Fatalf("%s: AssocTimeRange(%d,%d,[%d,%d)) =\n  %s\nwant\n  %s",
						tag, src, etype, w[0], w[1], edgesFP(got), edgesFP(want))
				}
				if n := eng.AssocCountInWindow(src, etype, w[0], w[1]); n != len(want) {
					t.Fatalf("%s: AssocCountInWindow(%d,%d,[%d,%d)) = %d, want %d",
						tag, src, etype, w[0], w[1], n, len(want))
				}
			}
		}
	}
}

func TestTemporalDifferential(t *testing.T) {
	for _, alpha := range []int{4, 8, 32} {
		t.Run(fmt.Sprintf("alpha=%d", alpha), func(t *testing.T) {
			g, m := buildDifferential(t, alpha, int64(alpha)*101)
			defer g.Close()
			checkDifferential(t, g, m, "fragmented")

			// Race an online compaction against the same query sweep,
			// then re-verify on the compacted store.
			done := make(chan error, 1)
			go func() { done <- g.Compact() }()
			checkDifferential(t, g, m, "racing-compaction")
			if err := <-done; err != nil {
				t.Fatal(err)
			}
			checkDifferential(t, g, m, "compacted")
		})
	}
}

// TestTemporalBatchMatchesScalar: the vectorized batch variant must be
// positionally identical to the scalar loop.
func TestTemporalBatchMatchesScalar(t *testing.T) {
	g, _ := buildDifferential(t, 8, 7)
	defer g.Close()
	eng := g.Temporal()
	var reqs []temporal.WindowReq
	for src := int64(0); src < 40; src++ {
		for _, w := range testWindows {
			reqs = append(reqs, temporal.WindowReq{Src: src, Type: src % 3, TLo: w[0], THi: w[1]})
		}
	}
	batch, err := eng.AssocTimeRangeBatch(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != len(reqs) {
		t.Fatalf("batch returned %d results for %d requests", len(batch), len(reqs))
	}
	for i, rq := range reqs {
		want := eng.AssocTimeRange(rq.Src, rq.Type, rq.TLo, rq.THi, 0)
		got := batch[i]
		canonicalize(got)
		canonicalize(want)
		if edgesFP(got) != edgesFP(want) {
			t.Fatalf("req %d (%+v): batch %s != scalar %s", i, rq, edgesFP(got), edgesFP(want))
		}
	}
}

// TestPathInWindowDifferential: Found and minimal hop count must match
// the naive BFS, and any returned path must be walkable through live
// in-window edges.
func TestPathInWindowDifferential(t *testing.T) {
	g, m := buildDifferential(t, 8, 11)
	defer g.Close()
	eng := g.Temporal()
	windows := [][2]int64{{0, 10000}, {0, 3000}, {6000, 10000}, {4000, 4500}}
	for _, w := range windows {
		for src := int64(0); src < 40; src += 3 {
			for dst := int64(1); dst < 40; dst += 7 {
				res := eng.PathInWindow(src, dst, w[0], w[1], 4)
				wantHops := m.shortestHops(src, dst, w[0], w[1], 4)
				if res.Found != (wantHops >= 0) {
					t.Fatalf("PathInWindow(%d,%d,[%d,%d)): found=%v, naive hops=%d",
						src, dst, w[0], w[1], res.Found, wantHops)
				}
				if !res.Found {
					continue
				}
				if res.Hops != wantHops {
					t.Fatalf("PathInWindow(%d,%d,[%d,%d)): hops=%d, naive=%d",
						src, dst, w[0], w[1], res.Hops, wantHops)
				}
				if len(res.Path) != res.Hops+1 || res.Path[0] != src || res.Path[len(res.Path)-1] != dst {
					t.Fatalf("PathInWindow(%d,%d): malformed path %v", src, dst, res.Path)
				}
				for i := 0; i+1 < len(res.Path); i++ {
					if !contains(m.neighbors(res.Path[i], w[0], w[1]), res.Path[i+1]) {
						t.Fatalf("PathInWindow(%d,%d): hop %d->%d not a live in-window edge",
							src, dst, res.Path[i], res.Path[i+1])
					}
				}
			}
		}
	}
}

func contains(ids []int64, id int64) bool {
	for _, v := range ids {
		if v == id {
			return true
		}
	}
	return false
}
