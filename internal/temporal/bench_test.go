package temporal_test

import (
	"fmt"
	"testing"

	"zipg"
)

// benchGraph builds a time-fragmented store: edges append in timestamp
// order through a small LogStore threshold, so frozen generations cover
// disjoint timestamp bands and windowed scans have fragments to prune.
func benchGraph(b *testing.B) (*zipg.Graph, int64, int64) {
	b.Helper()
	g := buildSubGraph(b, 64, 2)
	const perSrc, srcs = 64, 32
	ts := int64(1_000_000)
	for i := 0; i < srcs*perSrc; i++ {
		e := zipg.Edge{Src: int64(i % srcs), Dst: int64((i*7 + 13) % 64), Type: 1, Timestamp: ts}
		if err := g.AppendEdge(e); err != nil {
			b.Fatal(err)
		}
		ts += 100
	}
	return g, int64(1_000_000), ts
}

func BenchmarkAssocTimeRange(b *testing.B) {
	g, lo, hi := benchGraph(b)
	defer g.Close()
	eng := g.Temporal()
	span := hi - lo
	for _, w := range []struct {
		name   string
		lo, hi int64
	}{
		{"narrow", hi - span/32, hi},
		{"full", lo, hi},
	} {
		b.Run(w.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				eng.AssocTimeRange(int64(i%32), 1, w.lo, w.hi, 0)
			}
		})
	}
}

func BenchmarkAssocCountInWindow(b *testing.B) {
	g, lo, hi := benchGraph(b)
	defer g.Close()
	eng := g.Temporal()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.AssocCountInWindow(int64(i%32), 1, lo, hi)
	}
}

func BenchmarkPathInWindow(b *testing.B) {
	g, lo, hi := benchGraph(b)
	defer g.Close()
	eng := g.Temporal()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.PathInWindow(int64(i%32), int64(32+i%32), lo, hi, 3)
	}
}

// BenchmarkSubscribePublish measures the write path's per-mutation cost
// with fanout subscribers attached (the deliver hook runs inside the
// store's commit critical section, so this is the number that must stay
// bounded).
func BenchmarkSubscribePublish(b *testing.B) {
	for _, nSubs := range []int{0, 1, 8} {
		b.Run(fmt.Sprintf("subs=%d", nSubs), func(b *testing.B) {
			g := buildSubGraph(b, 32, 2)
			defer g.Close()
			for i := 0; i < nSubs; i++ {
				sub := g.Subscribe(zipg.SubscriptionFilter{}, 1024)
				defer sub.Close()
				// Leave the ring to wrap: drop-oldest is the steady state
				// of an unconsumed subscriber and must stay O(1).
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e := zipg.Edge{Src: int64(i % 32), Dst: int64((i + 1) % 32), Type: 1, Timestamp: int64(i)}
				if err := g.AppendEdge(e); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
