package temporal

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"

	"zipg/internal/layout"
	"zipg/internal/store"
)

// HTTP change feed: the subscription API exposed over the admin
// listener as a chunked NDJSON stream (the gob RPC fabric is strictly
// request/reply, so streaming rides HTTP). One JSON object per line,
// flushed per delivered batch.

// WireEvent is the JSON shape of one streamed event.
type WireEvent struct {
	Seq   uint64            `json:"seq"`
	Part  int               `json:"part"`
	Kind  string            `json:"kind"`
	Node  layout.NodeID     `json:"node"`
	Src   layout.NodeID     `json:"src,omitempty"`
	Dst   layout.NodeID     `json:"dst,omitempty"`
	EType layout.EdgeType   `json:"etype,omitempty"`
	Ts    int64             `json:"ts,omitempty"`
	Props map[string]string `json:"props,omitempty"`
	At    int64             `json:"at"`
}

// ToWire converts a store event to its streamed form.
func ToWire(ev store.Event) WireEvent {
	w := WireEvent{
		Seq:  ev.Seq,
		Part: ev.Part,
		Kind: ev.Kind.String(),
		Node: ev.Node,
		At:   ev.At,
	}
	if ev.Kind == store.EvEdgeAdd || ev.Kind == store.EvEdgeDel {
		w.Src = ev.Edge.Src
		w.Dst = ev.Edge.Dst
		w.EType = ev.Edge.Type
		w.Ts = ev.Edge.Timestamp
	}
	if len(ev.Props) > 0 {
		w.Props = ev.Props
	}
	return w
}

// StreamHandler serves the engine's change feed as chunked NDJSON.
// Query parameters:
//
//	node=N           filter: events touching node N
//	etype=T          filter: edge events of type T
//	max=N            stop after N events (0/absent: until client leaves)
//	since=S&part=P   first replay partition P's tail past sequence S
//	                 (one {"catchup":...} header line reports whether the
//	                 tail still reached back that far), then go live
//
// Events published between the catchup snapshot and the live
// subscription are not deduplicated; consumers needing exactly-once
// must dedupe on (part, seq).
func StreamHandler(eng *Engine) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query()
		var f Filter
		if v := q.Get("node"); v != "" {
			n, err := strconv.ParseUint(v, 10, 64)
			if err != nil {
				http.Error(w, "bad node: "+err.Error(), http.StatusBadRequest)
				return
			}
			f.Node, f.HasNode = layout.NodeID(n), true
		}
		if v := q.Get("etype"); v != "" {
			t, err := strconv.ParseUint(v, 10, 32)
			if err != nil {
				http.Error(w, "bad etype: "+err.Error(), http.StatusBadRequest)
				return
			}
			f.Type, f.HasType = layout.EdgeType(t), true
		}
		max := 0
		if v := q.Get("max"); v != "" {
			m, err := strconv.Atoi(v)
			if err != nil {
				http.Error(w, "bad max: "+err.Error(), http.StatusBadRequest)
				return
			}
			max = m
		}

		flusher, _ := w.(http.Flusher)
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.Header().Set("X-Content-Type-Options", "nosniff")
		enc := json.NewEncoder(w)

		// Subscribe before catchup so no event can fall between the
		// replayed tail and the live stream.
		sub := eng.Subscribe(f, 0)
		defer sub.Close()

		sent := 0
		if v := q.Get("since"); v != "" {
			since, err := strconv.ParseUint(v, 10, 64)
			if err != nil {
				http.Error(w, "bad since: "+err.Error(), http.StatusBadRequest)
				return
			}
			part := 0
			if pv := q.Get("part"); pv != "" {
				if part, err = strconv.Atoi(pv); err != nil {
					http.Error(w, "bad part: "+err.Error(), http.StatusBadRequest)
					return
				}
			}
			evs, ok := eng.Catchup(part, since, f)
			fmt.Fprintf(w, `{"catchup":%v,"part":%d,"since":%d,"events":%d}`+"\n",
				ok, part, since, len(evs))
			for _, ev := range evs {
				if max > 0 && sent >= max {
					break
				}
				enc.Encode(ToWire(ev))
				sent++
			}
			if flusher != nil {
				flusher.Flush()
			}
		}

		for max <= 0 || sent < max {
			want := 0
			if max > 0 {
				want = max - sent
			}
			evs, err := sub.Next(r.Context(), want)
			if err != nil || len(evs) == 0 {
				return // client gone or subscription closed
			}
			for _, ev := range evs {
				enc.Encode(ToWire(ev))
				sent++
			}
			if flusher != nil {
				flusher.Flush()
			}
		}
	}
}
