// Package temporal is ZipG's temporal query engine: windowed analytics,
// live change subscriptions and bounded temporal reachability, all
// served over the existing compressed + LogStore substrate.
//
// The layout already stores per-record timestamp spans in the hot-field
// edge header and keeps every fragment's edges timestamp-sorted; the
// store already publishes every mutation as a sequence-numbered change
// event from inside its commit critical section. This package composes
// those pieces into three query classes:
//
//   - Windowed analytics (AssocTimeRange, AssocCountInWindow and the
//     batch variant): per-fragment window pruning via the hot-header
//     min/max span, fragment merge with tombstone filtering.
//   - Live subscriptions (Subscribe/Catchup): per-subscriber bounded
//     rings with drop-oldest backpressure, fed synchronously from the
//     store's group-commit batches; Catchup replays the store's event
//     tail so a lagging subscriber re-converges on the live stream.
//   - Temporal reachability (PathInWindow): bounded-hop BFS that only
//     traverses edges whose timestamps fall in the window, fanned
//     per-hop over the shared worker pool.
package temporal

import (
	"sort"
	"sync"

	"zipg/internal/graphapi"
	"zipg/internal/layout"
	"zipg/internal/parallel"
	"zipg/internal/store"
)

// Engine serves temporal queries over one store and fans its change
// events out to subscribers. Safe for concurrent use.
type Engine struct {
	st *store.Store

	mu     sync.Mutex
	subs   map[uint64]*Subscription
	nextID uint64
}

// NewEngine builds an engine over st and taps its event stream. One
// engine per store is the intended shape (the zipg.Graph accessor and
// the cluster server each hold one).
func NewEngine(st *store.Store) *Engine {
	e := &Engine{st: st, subs: make(map[uint64]*Subscription)}
	st.Observe(e.deliver)
	return e
}

// Store returns the engine's underlying store.
func (e *Engine) Store() *store.Store { return e.st }

// AssocTimeRange returns the live edges of (src, etype) with timestamps
// in [tLo, tHi), timestamp-sorted, at most limit entries (limit <= 0:
// unbounded). Wildcard bounds follow graphapi.TimeBounds.
func (e *Engine) AssocTimeRange(src layout.NodeID, etype layout.EdgeType, tLo, tHi int64, limit int) []layout.EdgeData {
	mQueryRange.Inc()
	tLo, tHi = graphapi.TimeBounds(tLo, tHi)
	out, _ := e.st.EdgesInWindow(src, etype, tLo, tHi)
	if limit > 0 && len(out) > limit {
		out = out[:limit]
	}
	return out
}

// AssocCountInWindow returns how many live edges of (src, etype) carry
// timestamps in [tLo, tHi). Fragments the window misses are answered
// from the hot-header span; clean fully-covered fragments from record
// metadata — no edge data is materialized.
func (e *Engine) AssocCountInWindow(src layout.NodeID, etype layout.EdgeType, tLo, tHi int64) int {
	mQueryCount.Inc()
	tLo, tHi = graphapi.TimeBounds(tLo, tHi)
	n, _ := e.st.CountInWindow(src, etype, tLo, tHi)
	return n
}

// WindowReq names one windowed range read for the batch variant.
type WindowReq struct {
	Src  layout.NodeID
	Type layout.EdgeType
	TLo  int64
	THi  int64
}

// AssocTimeRangeBatch answers AssocTimeRange for every request in one
// vectorized pass: each request's window is resolved to a TimeOrder
// index range through the span-short-circuited GetEdgeRange, and the
// edge data for all requests is decoded by the store's locality-sorted
// batch kernel (the PR 5 vectorized path). Results are positional and
// identical to a scalar AssocTimeRange loop with no limit.
func (e *Engine) AssocTimeRangeBatch(reqs []WindowReq) ([][]layout.EdgeData, error) {
	mQueryBatch.Inc()
	rngs := make([]store.AssocRangeReq, len(reqs))
	for i, rq := range reqs {
		tLo, tHi := graphapi.TimeBounds(rq.TLo, rq.THi)
		rngs[i] = store.AssocRangeReq{ID: rq.Src, Type: rq.Type}
		rec, ok := e.st.GetEdgeRecord(rq.Src, rq.Type)
		if !ok || tLo >= tHi {
			continue // Limit 0: yields nil, matching the scalar miss
		}
		beg, end := rec.GetEdgeRange(tLo, tHi)
		rngs[i].Idx, rngs[i].Limit = beg, end-beg
	}
	return e.st.AssocRangeBatch(rngs)
}

// PathResult is one PathInWindow answer. When Found, Path holds the
// node sequence src..dst (Hops = len(Path)-1, minimal for the window).
type PathResult struct {
	Found bool
	Hops  int
	Path  []layout.NodeID
}

// PathInWindow searches for a path from src to dst of at most maxHops
// edges, every edge's timestamp in [tLo, tHi), traversing only live
// nodes. BFS per hop; each frontier's expansions fan out over the
// shared worker pool, and the answer is deterministic (lowest-ID parent
// wins ties, so the returned path is the lexicographically-least among
// minimal-hop paths).
func (e *Engine) PathInWindow(src, dst layout.NodeID, tLo, tHi int64, maxHops int) PathResult {
	mQueryPath.Inc()
	tLo, tHi = graphapi.TimeBounds(tLo, tHi)
	if !e.st.HasNode(src) || !e.st.HasNode(dst) {
		return PathResult{}
	}
	if src == dst {
		return PathResult{Found: true, Hops: 0, Path: []layout.NodeID{src}}
	}
	expand := func(frontier []layout.NodeID) [][]layout.NodeID {
		return parallelNeighbors(frontier, func(id layout.NodeID) []layout.NodeID {
			nbrs, _ := e.st.NeighborsInWindow(id, tLo, tHi)
			return nbrs
		})
	}
	return BFSInWindow(src, dst, maxHops, expand)
}

// parallelNeighbors expands every frontier node concurrently on the
// shared worker pool, results index-aligned with the frontier.
func parallelNeighbors(frontier []layout.NodeID, nbrs func(layout.NodeID) []layout.NodeID) [][]layout.NodeID {
	return parallel.Map("temporal.expand_hop", len(frontier), func(i int) []layout.NodeID {
		return nbrs(frontier[i])
	})
}

// BFSInWindow is the shared BFS skeleton: expand is handed each sorted
// frontier and returns, per frontier node, its in-window neighbors.
// The cluster aggregator reuses it with a function-shipping expand.
func BFSInWindow(src, dst layout.NodeID, maxHops int, expand func([]layout.NodeID) [][]layout.NodeID) PathResult {
	visited := map[layout.NodeID]bool{src: true}
	parent := make(map[layout.NodeID]layout.NodeID)
	frontier := []layout.NodeID{src}
	for hop := 1; hop <= maxHops && len(frontier) > 0; hop++ {
		perNode := expand(frontier)
		var next []layout.NodeID
		for fi, nbrs := range perNode {
			for _, n := range nbrs {
				if visited[n] {
					continue
				}
				visited[n] = true
				parent[n] = frontier[fi]
				if n == dst {
					return PathResult{Found: true, Hops: hop, Path: rebuildPath(parent, src, dst)}
				}
				next = append(next, n)
			}
		}
		sort.Slice(next, func(i, j int) bool { return next[i] < next[j] })
		frontier = next
	}
	return PathResult{}
}

// rebuildPath walks the parent links dst -> src and reverses.
func rebuildPath(parent map[layout.NodeID]layout.NodeID, src, dst layout.NodeID) []layout.NodeID {
	path := []layout.NodeID{dst}
	for cur := dst; cur != src; {
		cur = parent[cur]
		path = append(path, cur)
	}
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path
}
