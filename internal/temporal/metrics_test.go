package temporal_test

import (
	"strings"
	"testing"

	"zipg"
	"zipg/internal/telemetry"
	"zipg/internal/temporal"
)

// TestTemporalMetricNames locks the temporal-layer metric names into
// the default registry's exposition so renames fail CI. Real traffic
// is generated first so the counters carry non-zero samples.
func TestTemporalMetricNames(t *testing.T) {
	was := telemetry.SetEnabled(true)
	defer telemetry.SetEnabled(was)

	g := buildSubGraph(t, 8, 2)
	defer g.Close()
	sub := g.Subscribe(zipg.SubscriptionFilter{}, 16)
	defer sub.Close()
	eng := g.Temporal()

	for i := 0; i < 6; i++ {
		if err := g.AppendEdge(zipg.Edge{Src: int64(i % 4), Dst: int64(4 + i%4), Type: 1, Timestamp: int64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	eng.AssocTimeRange(0, 1, 0, 100, 0)
	eng.AssocCountInWindow(0, 1, 0, 100)
	eng.AssocTimeRangeBatch([]temporal.WindowReq{{Src: 1, Type: 1, TLo: 0, THi: 100}})
	eng.PathInWindow(0, 5, 0, 100, 3)
	sub.Poll(0)

	expo := telemetry.Default.Expose()
	for _, want := range []string{
		"zipg_temporal_queries_total",
		"zipg_temporal_pieces_total",
		"zipg_temporal_shards_pruned_total",
		"zipg_temporal_edges_scanned_total",
		"zipg_sub_events_total",
		"zipg_sub_dropped_total",
		"zipg_sub_lag_ns_total",
	} {
		if !strings.Contains(expo, want) {
			t.Errorf("exposition missing %s", want)
		}
	}
	// The query counter is labeled per op; lock the op labels too.
	for _, op := range []string{"assoc_time_range", "assoc_count_in_window", "assoc_time_range_batch", "path_in_window"} {
		if !strings.Contains(expo, `op="`+op+`"`) {
			t.Errorf("exposition missing zipg_temporal_queries_total op=%q label", op)
		}
	}
}
