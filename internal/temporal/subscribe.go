package temporal

import (
	"context"
	"time"

	"sync"

	"zipg/internal/layout"
	"zipg/internal/store"
)

// Live subscriptions.
//
// The store publishes one Event per mutation from inside its commit
// critical section; the engine's observer fans each batch out to every
// subscriber whose filter matches. A subscriber owns a bounded ring
// with drop-oldest backpressure: a slow consumer loses the OLDEST
// undelivered events (and can prove it — the per-partition sequence
// numbers stop being contiguous, and Dropped() counts the loss), never
// stalls the write path, and re-converges via Catchup(sinceSeq), which
// replays the store's own event tail. Because tombstone events ride
// the same path as appends, a Catchup replay is indistinguishable from
// having watched the live tail.

// Filter selects the events a subscription receives. The zero Filter
// is the firehose (every event). Node filters match node events about
// the node and edge events touching it (as source or destination);
// Type filters match edge events of that type.
type Filter struct {
	Node    layout.NodeID
	HasNode bool
	Type    layout.EdgeType
	HasType bool
}

// FilterNode subscribes to everything touching one node.
func FilterNode(id layout.NodeID) Filter { return Filter{Node: id, HasNode: true} }

// FilterType subscribes to edge events of one type.
func FilterType(t layout.EdgeType) Filter { return Filter{Type: t, HasType: true} }

// Matches reports whether ev passes the filter.
func (f Filter) Matches(ev store.Event) bool {
	if f.HasNode {
		switch ev.Kind {
		case store.EvNodePut, store.EvNodeDel:
			if ev.Node != f.Node {
				return false
			}
		default:
			if ev.Edge.Src != f.Node && ev.Edge.Dst != f.Node {
				return false
			}
		}
	}
	if f.HasType {
		if ev.Kind != store.EvEdgeAdd && ev.Kind != store.EvEdgeDel {
			return false
		}
		if ev.Edge.Type != f.Type {
			return false
		}
	}
	return true
}

// DefaultSubscriptionBuffer is the ring capacity Subscribe uses when
// the caller passes 0.
const DefaultSubscriptionBuffer = 1024

// Subscription is one subscriber's bounded event ring.
type Subscription struct {
	id  uint64
	eng *Engine
	f   Filter

	mu      sync.Mutex
	ring    []store.Event
	start   int
	n       int
	dropped uint64
	closed  bool
	// notify has capacity 1; push signals it without blocking so a
	// waiting Next wakes exactly when events (or Close) arrive.
	notify chan struct{}
}

// Subscribe registers a subscription with the given filter and ring
// capacity (0 = DefaultSubscriptionBuffer). The subscription starts
// receiving events published after this call returns; pair it with
// Catchup to also replay the recent past.
func (e *Engine) Subscribe(f Filter, bufCap int) *Subscription {
	if bufCap <= 0 {
		bufCap = DefaultSubscriptionBuffer
	}
	sub := &Subscription{
		eng:    e,
		f:      f,
		ring:   make([]store.Event, bufCap),
		notify: make(chan struct{}, 1),
	}
	e.mu.Lock()
	e.nextID++
	sub.id = e.nextID
	e.subs[sub.id] = sub
	e.mu.Unlock()
	return sub
}

// deliver is the engine's store observer: it runs inside the store's
// commit critical section, so it must stay bounded — per subscriber, a
// filter check and a ring write per event, no locks beyond the
// subscription's own.
func (e *Engine) deliver(evs []store.Event) {
	e.mu.Lock()
	if len(e.subs) == 0 {
		e.mu.Unlock()
		return
	}
	subs := make([]*Subscription, 0, len(e.subs))
	for _, s := range e.subs {
		subs = append(subs, s)
	}
	e.mu.Unlock()
	for _, s := range subs {
		s.push(evs)
	}
}

// push appends the matching events of one published batch.
func (s *Subscription) push(evs []store.Event) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	pushed, droppedNow := 0, 0
	for _, ev := range evs {
		if !s.f.Matches(ev) {
			continue
		}
		pushed++
		if s.n < len(s.ring) {
			s.ring[(s.start+s.n)%len(s.ring)] = ev
			s.n++
			continue
		}
		// Full: drop the oldest undelivered event.
		s.ring[s.start] = ev
		s.start = (s.start + 1) % len(s.ring)
		droppedNow++
	}
	s.dropped += uint64(droppedNow)
	s.mu.Unlock()
	if pushed > 0 {
		mSubEvents.Add(int64(pushed - droppedNow))
		if droppedNow > 0 {
			mSubDropped.Add(int64(droppedNow))
		}
		select {
		case s.notify <- struct{}{}:
		default:
		}
	}
}

// Poll drains up to max pending events (max <= 0: all), oldest first.
// It never blocks; an empty return means the ring is drained.
func (s *Subscription) Poll(max int) []store.Event {
	s.mu.Lock()
	if s.n == 0 {
		s.mu.Unlock()
		return nil
	}
	take := s.n
	if max > 0 && take > max {
		take = max
	}
	out := make([]store.Event, take)
	for i := 0; i < take; i++ {
		out[i] = s.ring[(s.start+i)%len(s.ring)]
	}
	s.start = (s.start + take) % len(s.ring)
	s.n -= take
	s.mu.Unlock()
	observeLag(out)
	return out
}

// Next blocks until at least one event is pending (returning up to max,
// as Poll) or ctx is done or the subscription is closed. A nil slice
// with nil error means the subscription was closed.
func (s *Subscription) Next(ctx context.Context, max int) ([]store.Event, error) {
	for {
		if evs := s.Poll(max); len(evs) > 0 {
			return evs, nil
		}
		s.mu.Lock()
		closed := s.closed
		s.mu.Unlock()
		if closed {
			return nil, nil
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-s.notify:
		}
	}
}

// Dropped returns how many events this subscription's backpressure has
// discarded so far.
func (s *Subscription) Dropped() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dropped
}

// Pending returns how many events are queued for delivery.
func (s *Subscription) Pending() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n
}

// Close deregisters the subscription. Pending events remain pollable;
// blocked Next calls return.
func (s *Subscription) Close() {
	s.eng.mu.Lock()
	delete(s.eng.subs, s.id)
	s.eng.mu.Unlock()
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	select {
	case s.notify <- struct{}{}:
	default:
	}
}

// Catchup replays the store's retained event tail for one partition:
// every event with Seq > sinceSeq that matches the filter, oldest
// first. The second result is false when the tail has already evicted
// events past sinceSeq — the subscriber missed more than the store
// retains and must resynchronize with a full read.
func (e *Engine) Catchup(part int, sinceSeq uint64, f Filter) ([]store.Event, bool) {
	evs, ok := e.st.EventsSince(part, sinceSeq)
	if !ok {
		return nil, false
	}
	kept := evs[:0]
	for _, ev := range evs {
		if f.Matches(ev) {
			kept = append(kept, ev)
		}
	}
	return kept, true
}

// observeLag accounts publish-to-delivery latency for delivered events.
func observeLag(evs []store.Event) {
	if len(evs) == 0 || !telemetryEnabled() {
		return
	}
	now := time.Now().UnixNano()
	var total int64
	for i := range evs {
		if d := now - evs[i].At; d > 0 {
			total += d
		}
	}
	mSubLagNs.Add(total)
}
